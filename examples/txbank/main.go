// The txbank example exercises the pmlib transactional API (the PMDK
// substitute) on the classic crash-consistency workload: transferring
// balance between two accounts so the sum is invariant across any
// crash. It contrasts the buggy as-shipped library (whose redo-log
// stores are missing flushes, Table 2 rows #33–#35) with the fixed
// library, and shows the §6.4 checksum annotations silencing the
// harmless torn-log reports.
//
// Run with: go run ./examples/txbank
package main

import (
	"fmt"

	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
	"repro/internal/pmlib"
)

const poolBase = memmodel.Addr(0x800000)

// transfer moves amount between the two accounts in one transaction.
func transfer(p *pmlib.Pool, th *pmem.Thread, accA, accB memmodel.Addr, amount memmodel.Value) {
	a := th.Load(accA, "read account A")
	b := th.Load(accB, "read account B")
	tx := p.TxBegin(th)
	tx.Set(accA, a-amount)
	tx.Set(accB, b+amount)
	tx.Commit()
}

// program: open a pool, seed two accounts with 100 each, run three
// transfers, crash, recover, and verify the invariant.
func program(opt pmlib.Options) explore.Program {
	name := fmt.Sprintf("txbank-%s", opt.Variant)
	if opt.AnnotateChecksums {
		name += "-annotated"
	}
	return &explore.FuncProgram{
		ProgName: name,
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				p := pmlib.Create(th, poolBase, opt)
				accounts := p.AllocLines(th, 1)
				p.SetRoot(th, accounts)
				th.Store(accounts, 100, "seed account A")
				th.Store(accounts+memmodel.WordSize, 100, "seed account B")
				th.Persist(accounts, 2*memmodel.WordSize, "persist seeds")
				for i := 0; i < 3; i++ {
					transfer(p, th, accounts, accounts+memmodel.WordSize, 10)
				}
			},
			func(w *pmem.World) {
				th := w.Thread(0)
				p, ok := pmlib.Open(th, poolBase, opt)
				if !ok {
					return
				}
				p.Recover(th)
				accounts := p.Root(th)
				if accounts == 0 {
					return
				}
				a := th.Load(accounts, "recovered account A")
				b := th.Load(accounts+memmodel.WordSize, "recovered account B")
				if a+b != 200 {
					w.RecordAssertFailure(fmt.Sprintf("invariant broken: %d + %d != 200", uint64(a), uint64(b)))
				}
			},
		},
	}
}

func run(opt pmlib.Options) {
	res := explore.Run(program(opt), explore.Options{
		Mode:       explore.Random,
		Executions: 600,
		Seed:       7,
	})
	fmt.Printf("  %s\n", res)
	seen := map[string]bool{}
	for _, v := range res.Violations {
		if !seen[v.MissingFlush.Loc] {
			seen[v.MissingFlush.Loc] = true
			fmt.Printf("    library bug: %s\n", v.MissingFlush.Loc)
		}
	}
}

func main() {
	fmt.Println("buggy library (as shipped):")
	run(pmlib.Options{Variant: bench.Buggy})
	fmt.Println("buggy library + checksum annotations (§6.4): torn-log reads are harmless:")
	run(pmlib.Options{Variant: bench.Buggy, AnnotateChecksums: true})
	fmt.Println("fixed library:")
	run(pmlib.Options{Variant: bench.Fixed})
}
