// The quickstart example walks the paper's Figure 1 end to end: a
// persistent linked-list addChild written twice — once with the proper
// flush discipline, once with the data flush missing — and shows how
// PSan's robustness check certifies the first and localizes the bug in
// the second, suggesting the exact flush to insert.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/pmem"
)

// addChild appends a node to a persistent singly-linked list: fill the
// node, (optionally) flush it, then publish it through the commit store
// to the parent's child pointer.
func addChild(th *pmem.Thread, node, parentChild memmodel.Addr, data memmodel.Value, flushData bool) {
	th.Store(node, data, "tmp->data = data")
	if flushData {
		th.Flush(node, "clflush(tmp)")
	}
	th.Store(parentChild, memmodel.Value(node), "ptr->child = tmp")
	// The crash in this demo hits right here — before the commit
	// store's own flush, which is the interesting window.
}

// readChild is the post-crash reader: if the child pointer is set, the
// data must be there.
func readChild(th *pmem.Thread, parentChild memmodel.Addr) {
	child := memmodel.Addr(th.Load(parentChild, "readChild: ptr->child"))
	if child != 0 {
		th.Load(child, "readChild: child->data")
	}
}

// demo runs one variant, steering the post-crash reads to the
// interesting outcome (child pointer persisted, data possibly not).
func demo(flushData bool) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	node := w.Heap.AllocLines(1)
	parentChild := w.Heap.AllocLines(1)
	addChild(th, node, parentChild, 42, flushData)
	w.Crash()

	// Read the commit store fresh, then the data as stale as the
	// machine allows — the adversarial outcome.
	ptrLoc := w.M.Intern("readChild: ptr->child")
	for _, c := range w.M.LoadCandidates(0, parentChild) {
		if !c.Store.Initial {
			w.M.Load(0, parentChild, c, ptrLoc)
			w.Checker.ObserveRead(0, parentChild, c.Store, ptrLoc)
			break
		}
	}
	dataLoc := w.M.Intern("readChild: child->data")
	cands := w.M.LoadCandidates(0, node)
	oldest := cands[len(cands)-1]
	w.M.Load(0, node, oldest, dataLoc)
	w.Checker.ObserveRead(0, node, oldest.Store, dataLoc)

	if vs := w.Checker.Violations(); len(vs) == 0 {
		fmt.Println("  robust: every post-crash execution matches a strictly-persistent one")
	} else {
		for _, v := range vs {
			fmt.Printf("  %s", v)
		}
	}
}

func main() {
	fmt.Println("addChild WITH the data flush (Figure 1 as published):")
	demo(true)
	fmt.Println()
	fmt.Println("addChild WITHOUT the data flush (missing clflush(tmp)):")
	demo(false)
	fmt.Println()
	// The full exploration story — crash points and read choices
	// enumerated automatically — is what the explore package adds; see
	// examples/explorer and cmd/psan.
	_ = readChild
}
