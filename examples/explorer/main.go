// The explorer example checks a small persistent ring-buffer journal —
// the motivating shape for log-based PM systems — under both of PSan's
// exploration strategies (§6.1). The writer appends records as
// (payload, sequence) pairs where the sequence store is the commit
// store; the buggy variant delays the payload flush until after the
// commit store, the classic ordering mistake the paper's robustness
// condition was designed to catch.
//
// Run with: go run ./examples/explorer
package main

import (
	"fmt"

	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

const (
	slots      = 4
	journal    = memmodel.Addr(0x20000) // payload[i] at +i*64, one line each
	seqBase    = memmodel.Addr(0x30000) // seq[i], one line each
	headAddr   = memmodel.Addr(0x40000) // persisted head counter
	markerAddr = memmodel.Addr(0x50000)
)

func payloadAddr(i int) memmodel.Addr { return journal + memmodel.Addr(i*memmodel.CacheLineSize) }
func seqAddr(i int) memmodel.Addr     { return seqBase + memmodel.Addr(i*memmodel.CacheLineSize) }

// appendRecord writes one journal record. In the correct protocol the
// payload is persisted before the sequence word (the commit store)
// lands; the buggy writer flushes both only at the end.
func appendRecord(th *pmem.Thread, i int, payload memmodel.Value, buggy bool) {
	th.Store(payloadAddr(i), payload, "journal payload store")
	if !buggy {
		th.Persist(payloadAddr(i), memmodel.WordSize, "persist payload")
	}
	th.Store(seqAddr(i), memmodel.Value(i+1), "journal seq commit store")
	th.Persist(seqAddr(i), memmodel.WordSize, "persist seq")
	if buggy {
		// Too late: the commit store is already persistent.
		th.Persist(payloadAddr(i), memmodel.WordSize, "late payload persist")
	}
	th.Store(headAddr, memmodel.Value(i+1), "journal head update")
	th.Persist(headAddr, memmodel.WordSize, "persist head")
}

// program builds the two-phase test: appends, crash, recovery scan.
func program(buggy bool) explore.Program {
	name := "journal-correct"
	if buggy {
		name = "journal-buggy"
	}
	return &explore.FuncProgram{
		ProgName: name,
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				for i := 0; i < slots; i++ {
					appendRecord(th, i, memmodel.Value(1000+i), buggy)
				}
				th.Store(markerAddr, slots, "driver marker")
				th.Persist(markerAddr, memmodel.WordSize, "persist marker")
			},
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Load(markerAddr, "read marker")
				th.Load(headAddr, "read head")
				// Journal recovery scans every slot for a committed
				// sequence word — the head is advisory; records past it
				// may have committed right before the crash.
				for i := 0; i < slots; i++ {
					seq := th.Load(seqAddr(i), "scan seq")
					pay := th.Load(payloadAddr(i), "scan payload")
					if seq != 0 && pay == 0 {
						w.RecordAssertFailure(fmt.Sprintf("record %d committed with empty payload", i))
					}
				}
			},
		},
	}
}

func run(buggy bool, mode explore.Mode) {
	res := explore.Run(program(buggy), explore.Options{
		Mode:       mode,
		Executions: 2000,
		Seed:       42,
	})
	fmt.Printf("  %s\n", res)
	for _, v := range res.Violations {
		fmt.Printf("    bug: %s missing flush before %s\n", v.MissingFlush.Loc, v.Persisted.Loc)
		for _, f := range v.Fixes {
			if f.Primary {
				fmt.Printf("    fix: %s\n", f)
			}
		}
	}
}

func main() {
	fmt.Println("correct journal, model checking:")
	run(false, explore.ModelCheck)
	fmt.Println("buggy journal (payload flushed after commit store), model checking:")
	run(true, explore.ModelCheck)
	fmt.Println("buggy journal, random search:")
	run(true, explore.Random)
}
