// The pqueue example is the paper's §3.3 story: for lock-free data
// structures, robustness plus lock-freedom suffices for crash
// consistency. It builds a Michael-Scott-style persistent queue whose
// nodes are published with CAS, runs two concurrent producers under the
// cooperative scheduler, and checks robustness across crash points.
//
// The buggy variant publishes a node before persisting its contents —
// the classic unflushed-payload-behind-a-commit-CAS bug; the fixed
// variant persists the node first. PSan localizes the missing flush to
// the exact store and suggests placing it before the linking CAS.
//
// Run with: go run ./examples/pqueue
package main

import (
	"fmt"

	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

const (
	headAddr   = pmem.RootAddr
	tailAddr   = pmem.RootAddr + 8
	markerAddr = pmem.RootAddr + memmodel.CacheLineSize

	nodeValOff  = 0
	nodeNextOff = 8
)

// enqueue appends a value with the lock-free protocol: fill the node,
// (fixed: persist it), then CAS it onto the tail's next pointer — the
// commit store — and swing the tail.
func enqueue(th *pmem.Thread, val memmodel.Value, fixed bool) {
	w := th.World()
	node := w.Heap.AllocLines(1)
	th.Store(node+nodeValOff, val, "node value in enqueue")
	th.Store(node+nodeNextOff, 0, "node next init in enqueue")
	if fixed {
		th.Persist(node, 2*memmodel.WordSize, "persist node before publish")
	}
	for {
		tail := memmodel.Addr(th.Load(tailAddr, "read tail in enqueue"))
		next := th.Load(tail+nodeNextOff, "read tail->next in enqueue")
		if next != 0 {
			// Help swing the lagging tail.
			th.CAS(tailAddr, memmodel.Value(tail), next, "help swing tail")
			continue
		}
		if _, ok := th.CAS(tail+nodeNextOff, 0, memmodel.Value(node), "link CAS in enqueue"); ok {
			th.Persist(tail+nodeNextOff, memmodel.WordSize, "persist link")
			th.CAS(tailAddr, memmodel.Value(tail), memmodel.Value(node), "swing tail in enqueue")
			th.Persist(tailAddr, memmodel.WordSize, "persist tail")
			return
		}
	}
}

// program builds the two-phase test: a durable sentinel plus two
// concurrent producers, then a crash and a recovery walk.
func program(fixed bool) explore.Program {
	name := "pqueue-buggy"
	if fixed {
		name = "pqueue-fixed"
	}
	return &explore.FuncProgram{
		ProgName: name,
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				init := w.Thread(0)
				sentinel := w.Heap.AllocLines(1)
				// The sentinel is persisted before head/tail publish it —
				// an ordering PSan itself flagged in an earlier version
				// of this example that persisted after.
				init.Store(sentinel+nodeNextOff, 0, "sentinel next init")
				init.Persist(sentinel, 2*memmodel.WordSize, "persist sentinel")
				init.Store(headAddr, memmodel.Value(sentinel), "head init")
				init.Store(tailAddr, memmodel.Value(sentinel), "tail init")
				init.Persist(headAddr, 2*memmodel.WordSize, "persist head/tail")
				init.Store(markerAddr, 1, "driver marker")
				init.Persist(markerAddr, memmodel.WordSize, "persist driver marker")
				w.Spawn(1, func(th *pmem.Thread) {
					for v := memmodel.Value(10); v < 13; v++ {
						enqueue(th, v, fixed)
					}
				})
				w.Spawn(2, func(th *pmem.Thread) {
					for v := memmodel.Value(20); v < 23; v++ {
						enqueue(th, v, fixed)
					}
				})
				w.RunThreads()
			},
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Load(markerAddr, "read driver marker in recovery")
				node := memmodel.Addr(th.Load(headAddr, "read head in recovery"))
				for hops := 0; node != 0 && hops < 16; hops++ {
					next := memmodel.Addr(th.Load(node+nodeNextOff, "read next in recovery"))
					if next != 0 {
						if v := th.Load(next+nodeValOff, "read value in recovery"); v == 0 {
							w.RecordAssertFailure(fmt.Sprintf("linked node %v has empty value", next))
						}
					}
					node = next
				}
			},
		},
	}
}

func main() {
	for _, fixed := range []bool{false, true} {
		res := explore.Run(program(fixed), explore.Options{
			Mode:       explore.Random,
			Executions: 1500,
			Seed:       3,
		})
		fmt.Printf("%s\n", res)
		seen := map[string]bool{}
		for _, v := range res.Violations {
			if seen[v.MissingFlush.Loc] {
				continue
			}
			seen[v.MissingFlush.Loc] = true
			fmt.Printf("  missing flush: %s\n", v.MissingFlush.Loc)
			for _, f := range v.Fixes {
				fmt.Printf("    %s\n", f)
				break
			}
		}
	}
	fmt.Println("robustness + lock-freedom => crash consistency (§3.3): the fixed queue is clean")
}
