package repro

// Determinism regression tests for the parallel exploration engine:
// for every benchmark in the registry, a run with many workers must be
// byte-identical to the serial run — same violation keys, same
// execution counts, same abort counts — in both exploration modes, and
// the model-check state cache must never change verdicts.

import (
	"os"
	"reflect"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
)

// quickTest reports whether PSAN_TEST_QUICK=1 is set — the CI race run
// uses it to keep the heavy exploration tests under a few minutes.
func quickTest() bool {
	return os.Getenv("PSAN_TEST_QUICK") != ""
}

// scaled returns n, cut down in quick mode.
func scaled(n int) int {
	if quickTest() {
		return n / 5
	}
	return n
}

func assertSameOutcome(t *testing.T, context string, a, b *explore.Result) {
	t.Helper()
	if !reflect.DeepEqual(a.ViolationKeys(), b.ViolationKeys()) {
		t.Fatalf("%s: ViolationKeys differ\n  %d workers: %v\n  %d workers: %v",
			context, a.Workers, a.ViolationKeys(), b.Workers, b.ViolationKeys())
	}
	if a.Executions != b.Executions {
		t.Fatalf("%s: Executions %d vs %d", context, a.Executions, b.Executions)
	}
	if a.ExecutionsToAllBugs != b.ExecutionsToAllBugs {
		t.Fatalf("%s: ExecutionsToAllBugs %d vs %d", context, a.ExecutionsToAllBugs, b.ExecutionsToAllBugs)
	}
	if a.Aborted != b.Aborted {
		t.Fatalf("%s: Aborted %d vs %d", context, a.Aborted, b.Aborted)
	}
}

// TestParallelDeterminismRandom: Workers:8 random search reproduces the
// Workers:1 result bit for bit on every registered benchmark.
func TestParallelDeterminismRandom(t *testing.T) {
	execs := scaled(200)
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			opt := explore.Options{Mode: explore.Random, Executions: execs, Seed: 11}
			opt.Workers = 1
			serial := explore.Run(b.Build(bench.Buggy), opt)
			opt.Workers = 8
			parallel := explore.Run(b.Build(bench.Buggy), opt)
			assertSameOutcome(t, b.Name, serial, parallel)
		})
	}
}

// TestParallelDeterminismModelCheck: the frontier-split DFS with 8
// workers reproduces the serial sub-DFS exactly, including where the
// Executions cap truncates the search.
func TestParallelDeterminismModelCheck(t *testing.T) {
	execs := scaled(400)
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			opt := explore.Options{Mode: explore.ModelCheck, Executions: execs}
			opt.Workers = 1
			serial := explore.Run(b.Build(bench.Buggy), opt)
			opt.Workers = 8
			parallel := explore.Run(b.Build(bench.Buggy), opt)
			assertSameOutcome(t, b.Name, serial, parallel)
			if serial.Executions == 0 {
				t.Fatal("no executions ran")
			}
		})
	}
}

// TestStateCacheSoundOnBenchmarks: pruning crash points with identical
// surviving images must never lose a bug. Under a binding Executions
// cap the cached run advances further through the decision tree and may
// legitimately find additional bugs, so the invariant is one-sided:
// every violation the uncached run reports, the cached run reports too.
func TestStateCacheSoundOnBenchmarks(t *testing.T) {
	execs := scaled(400)
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			cached := explore.Run(b.Build(bench.Buggy), explore.Options{
				Mode: explore.ModelCheck, Executions: execs, Workers: 1,
			})
			uncached := explore.Run(b.Build(bench.Buggy), explore.Options{
				Mode: explore.ModelCheck, Executions: execs, Workers: 1, NoStateCache: true,
			})
			have := make(map[string]bool)
			for _, k := range cached.ViolationKeys() {
				have[k] = true
			}
			for _, k := range uncached.ViolationKeys() {
				if !have[k] {
					t.Fatalf("state cache lost violation %s\n  cached:   %v\n  uncached: %v",
						k, cached.ViolationKeys(), uncached.ViolationKeys())
				}
			}
			if cached.CacheHits+cached.CacheMisses == 0 {
				t.Fatal("cache saw no lookups")
			}
		})
	}
}
