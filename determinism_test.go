package repro

// Determinism regression tests for the parallel exploration engine:
// for every benchmark in the registry, a run with many workers must be
// byte-identical to the serial run — same violation keys, same
// execution counts, same abort counts — in both exploration modes, and
// the model-check state cache must never change verdicts.

import (
	"context"
	"os"
	"reflect"
	"sort"
	"testing"
	"time"

	"repro/internal/benchmarks"
	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
)

// quickTest reports whether PSAN_TEST_QUICK=1 is set — the CI race run
// uses it to keep the heavy exploration tests under a few minutes.
func quickTest() bool {
	return os.Getenv("PSAN_TEST_QUICK") != ""
}

// scaled returns n, cut down in quick mode.
func scaled(n int) int {
	if quickTest() {
		return n / 5
	}
	return n
}

func assertSameOutcome(t *testing.T, context string, a, b *explore.Result) {
	t.Helper()
	if !reflect.DeepEqual(a.ViolationKeys(), b.ViolationKeys()) {
		t.Fatalf("%s: ViolationKeys differ\n  %d workers: %v\n  %d workers: %v",
			context, a.Workers, a.ViolationKeys(), b.Workers, b.ViolationKeys())
	}
	if a.Executions != b.Executions {
		t.Fatalf("%s: Executions %d vs %d", context, a.Executions, b.Executions)
	}
	if a.ExecutionsToAllBugs != b.ExecutionsToAllBugs {
		t.Fatalf("%s: ExecutionsToAllBugs %d vs %d", context, a.ExecutionsToAllBugs, b.ExecutionsToAllBugs)
	}
	if a.Aborted != b.Aborted {
		t.Fatalf("%s: Aborted %d vs %d", context, a.Aborted, b.Aborted)
	}
}

// TestParallelDeterminismRandom: Workers:8 random search reproduces the
// Workers:1 result bit for bit on every registered benchmark.
func TestParallelDeterminismRandom(t *testing.T) {
	execs := scaled(200)
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			opt := explore.Options{Mode: explore.Random, Executions: execs, Seed: 11}
			opt.Workers = 1
			serial := explore.Run(b.Build(bench.Buggy), opt)
			opt.Workers = 8
			parallel := explore.Run(b.Build(bench.Buggy), opt)
			assertSameOutcome(t, b.Name, serial, parallel)
		})
	}
}

// reductionVariants names the two reduction settings the model-check
// determinism tests must hold under: the default (snapshots + DPOR on)
// and the -reduction none escape hatch.
var reductionVariants = []struct {
	name    string
	disable bool
}{
	{"reduced", false},
	{"unreduced", true},
}

// TestParallelDeterminismModelCheck: the frontier-split DFS with 8
// workers reproduces the serial sub-DFS exactly, including where the
// Executions cap truncates the search — with the reductions on and off.
func TestParallelDeterminismModelCheck(t *testing.T) {
	execs := scaled(400)
	for _, v := range reductionVariants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for _, b := range benchmarks.All() {
				b := b
				t.Run(b.Name, func(t *testing.T) {
					opt := explore.Options{
						Mode: explore.ModelCheck, Executions: execs,
						DisableSnapshots: v.disable, DisableDPOR: v.disable,
					}
					opt.Workers = 1
					serial := explore.Run(b.Build(bench.Buggy), opt)
					opt.Workers = 8
					parallel := explore.Run(b.Build(bench.Buggy), opt)
					assertSameOutcome(t, b.Name, serial, parallel)
					if serial.Executions == 0 {
						t.Fatal("no executions ran")
					}
				})
			}
		})
	}
}

// mergeKeys folds a result's violation keys into a set.
func mergeKeys(into map[string]bool, res *explore.Result) {
	for _, k := range res.ViolationKeys() {
		into[k] = true
	}
}

func sortedKeys(set map[string]bool) []string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TestCancelResumeDeterminismRandom: for every benchmark, cancel a
// random campaign mid-run via its context, resume from the checkpoint,
// and check the merged outcome is byte-identical to the uninterrupted
// run — same violation key set, same cumulative execution and abort
// counts.
func TestCancelResumeDeterminismRandom(t *testing.T) {
	execs := scaled(200)
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			opt := explore.Options{Mode: explore.Random, Executions: execs, Seed: 11, Workers: 4}
			full := explore.Run(b.Build(bench.Buggy), opt)

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			popt := opt
			popt.Context = ctx
			// Cancel early enough that the in-flight window (Workers ×
			// collector slack) cannot carry the run to completion.
			cancelAt := execs / 8
			if cancelAt < 1 {
				cancelAt = 1
			}
			popt.Progress = func(exec int) {
				if exec == cancelAt {
					cancel()
				}
			}
			partial := explore.Run(b.Build(bench.Buggy), popt)
			if !partial.Partial {
				// The run won the race against the cancellation; it must
				// then simply equal the uninterrupted run.
				assertSameOutcome(t, b.Name+" (cancel raced)", full, partial)
				return
			}
			if partial.Checkpoint == nil {
				t.Fatalf("partial run carries no checkpoint: %s", partial)
			}
			if err := partial.Checkpoint.Validate(full.Program, opt); err != nil {
				t.Fatalf("checkpoint rejected: %v", err)
			}
			ropt := opt
			ropt.Resume = partial.Checkpoint
			resumed := explore.Run(b.Build(bench.Buggy), ropt)
			if resumed.Partial {
				t.Fatalf("resumed run did not complete: %s", resumed)
			}
			if resumed.Executions != full.Executions || resumed.Aborted != full.Aborted {
				t.Fatalf("cumulative counts diverge: %s vs %s", resumed, full)
			}
			merged := make(map[string]bool)
			mergeKeys(merged, partial)
			mergeKeys(merged, resumed)
			if !reflect.DeepEqual(sortedKeys(merged), full.ViolationKeys()) {
				t.Fatalf("merged violations differ\n  merged: %v\n  full:   %v",
					sortedKeys(merged), full.ViolationKeys())
			}
		})
	}
}

// TestCancelResumeDeterminismModelCheck: for every benchmark, interrupt
// the frontier-split DFS under escalating deadlines and chain resumes
// until the campaign ends; the merged outcome must match the
// uninterrupted run — with the reductions on and off. A leg that ends
// on the execution budget (no checkpoint) is terminal by construction —
// the uninterrupted run ends the same way at the same canonical prefix.
func TestCancelResumeDeterminismModelCheck(t *testing.T) {
	execs := scaled(400)
	for _, v := range reductionVariants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for _, b := range benchmarks.All() {
				b := b
				t.Run(b.Name, func(t *testing.T) {
					opt := explore.Options{
						Mode: explore.ModelCheck, Executions: execs, Workers: 4,
						DisableSnapshots: v.disable, DisableDPOR: v.disable,
					}
					full := explore.Run(b.Build(bench.Buggy), opt)

					merged := make(map[string]bool)
					copt := opt
					copt.Deadline = 200 * time.Microsecond
					legs := 0
					var last *explore.Result
					for leg := 0; ; leg++ {
						if leg > 60 {
							t.Fatal("resume chain did not converge in 60 legs")
						}
						legs = leg + 1
						last = explore.Run(b.Build(bench.Buggy), copt)
						mergeKeys(merged, last)
						if !last.Partial || last.Checkpoint == nil {
							break
						}
						if err := last.Checkpoint.Validate(full.Program, opt); err != nil {
							t.Fatalf("leg %d checkpoint rejected: %v", leg, err)
						}
						copt.Resume = last.Checkpoint
						copt.Deadline *= 2
					}
					if last.Executions != full.Executions || last.Aborted != full.Aborted {
						t.Fatalf("cumulative counts diverge: %s vs %s", last, full)
					}
					if !reflect.DeepEqual(sortedKeys(merged), full.ViolationKeys()) {
						t.Fatalf("merged violations differ\n  merged: %v\n  full:   %v",
							sortedKeys(merged), full.ViolationKeys())
					}
					t.Logf("%s: converged in %d leg(s)", b.Name, legs)
				})
			}
		})
	}
}

// TestStealDeterminismModelCheck: steal-heavy schedules must assemble
// the same canonical stream as the never-stealing engine. ForceSteals
// makes the scheduler donate a work unit at every sub-DFS loop top with
// a donatable trail cut — the densest unit tree the work-stealing
// machinery can produce, reproducibly at any worker count — and the
// result must match a DisableStealing serial run bit for bit, at 1, 4,
// and 16 workers, with the reductions on and off, including where the
// Executions cap truncates the search.
func TestStealDeterminismModelCheck(t *testing.T) {
	execs := scaled(400)
	for _, v := range reductionVariants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			for _, b := range benchmarks.All() {
				b := b
				t.Run(b.Name, func(t *testing.T) {
					opt := explore.Options{
						Mode: explore.ModelCheck, Executions: execs,
						DisableSnapshots: v.disable, DisableDPOR: v.disable,
					}
					opt.Workers = 1
					opt.DisableStealing = true
					baseline := explore.Run(b.Build(bench.Buggy), opt)
					opt.DisableStealing = false
					opt.ForceSteals = true
					for _, workers := range []int{1, 4, 16} {
						opt.Workers = workers
						stolen := explore.Run(b.Build(bench.Buggy), opt)
						assertSameOutcome(t, b.Name, baseline, stolen)
					}
					if baseline.Executions == 0 {
						t.Fatal("no executions ran")
					}
				})
			}
		})
	}
}

// TestStateCacheSoundOnBenchmarks: pruning crash points with identical
// surviving images must never lose a bug. Under a binding Executions
// cap the cached run advances further through the decision tree and may
// legitimately find additional bugs, so the invariant is one-sided:
// every violation the uncached run reports, the cached run reports too.
func TestStateCacheSoundOnBenchmarks(t *testing.T) {
	execs := scaled(400)
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			cached := explore.Run(b.Build(bench.Buggy), explore.Options{
				Mode: explore.ModelCheck, Executions: execs, Workers: 1,
			})
			uncached := explore.Run(b.Build(bench.Buggy), explore.Options{
				Mode: explore.ModelCheck, Executions: execs, Workers: 1, NoStateCache: true,
			})
			have := make(map[string]bool)
			for _, k := range cached.ViolationKeys() {
				have[k] = true
			}
			for _, k := range uncached.ViolationKeys() {
				if !have[k] {
					t.Fatalf("state cache lost violation %s\n  cached:   %v\n  uncached: %v",
						k, cached.ViolationKeys(), uncached.ViolationKeys())
				}
			}
			if cached.CacheHits+cached.CacheMisses == 0 {
				t.Fatal("cache saw no lookups")
			}
		})
	}
}
