package repro

// Benchmark harness: one target per table of the paper's evaluation
// (§6), plus micro-benchmarks for the checker's own costs. The table
// benchmarks wrap the same report-package runs that cmd/psan-bench
// renders, so `go test -bench .` regenerates every number.

import (
	"fmt"
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/benchmarks/bench"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/intervals"
	"repro/internal/lang"
	"repro/internal/litmus"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/pmem"
	"repro/internal/px86"
	"repro/internal/repair"
	"repro/internal/report"
	"repro/internal/vclock"
)

// BenchmarkTable1Comparison measures the live tool-comparison demo:
// the two litmus traces checked by every approach.
func BenchmarkTable1Comparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := report.Table1()
		if !rows[0].FindsCommit || !rows[0].FindsFig7 {
			b.Fatal("PSan row regressed")
		}
	}
}

// BenchmarkTable2BugDetection measures full bug detection per benchmark
// port: one exploration campaign (the port's preferred mode and budget)
// per iteration, reporting bugs found per campaign.
func BenchmarkTable2BugDetection(b *testing.B) {
	for _, bm := range benchmarks.All() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			var found int
			for i := 0; i < b.N; i++ {
				res := explore.Run(bm.Build(bench.Buggy), explore.Options{
					Mode:       bm.PreferredMode,
					Executions: bm.Executions,
					Seed:       int64(i + 1),
				})
				covered, _ := bench.MatchExpected(bm.Expected, res.Violations)
				found = len(covered)
			}
			b.ReportMetric(float64(found), "bugs/campaign")
		})
	}
}

// BenchmarkTable3PSan and BenchmarkTable3Jaaru measure the per-execution
// cost of random exploration with the robustness checker on (PSan) and
// off (Jaaru, the bare simulator) — the paper's Table 3 columns. The
// reproduced claim is the ratio ≈ 1.
func BenchmarkTable3PSan(b *testing.B) {
	benchTable3(b, false)
}

// BenchmarkTable3Jaaru is the checker-off baseline.
func BenchmarkTable3Jaaru(b *testing.B) {
	benchTable3(b, true)
}

func benchTable3(b *testing.B, disableChecker bool) {
	const perRun = 20
	for _, bm := range benchmarks.Indexes() {
		bm := bm
		b.Run(bm.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				explore.Run(bm.Build(bench.Buggy), explore.Options{
					Mode:           explore.Random,
					Executions:     perRun,
					Seed:           int64(i + 1),
					DisableChecker: disableChecker,
					// Both sides use the plain read policy so the delta
					// is exactly the checker's constraint maintenance
					// (the paper's Table 3 methodology).
					NoSteering: true,
				})
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*perRun), "ns/execution")
		})
	}
}

// BenchmarkExploreParallel measures random-mode throughput of the
// worker pool on FAST_FAIR at 1/2/4/8 workers. The results are
// identical at every width (see determinism_test.go); only wall-clock
// changes, and only on multi-core hardware.
func BenchmarkExploreParallel(b *testing.B) {
	bm := benchmarks.ByName("FAST_FAIR")
	if bm == nil {
		b.Fatal("FAST_FAIR not registered")
	}
	const perRun = 100
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := explore.Run(bm.Build(bench.Buggy), explore.Options{
					Mode:       explore.Random,
					Executions: perRun,
					Seed:       int64(i + 1),
					Workers:    workers,
				})
				if res.Executions != perRun {
					b.Fatalf("ran %d executions, want %d", res.Executions, perRun)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*perRun), "ns/execution")
		})
	}
}

// BenchmarkExploreModelCheckParallel measures model-check throughput
// of the work-stealing scheduler on the CCEH and FAST_FAIR ports at
// 1/2/4/8 workers. Every width assembles the identical canonical
// stream (see TestStealDeterminismModelCheck); only wall-clock
// changes, and only on multi-core hardware — on one core the wider
// rows price the scheduler's overhead instead. The steal=off rows are
// the -steal=false A/B: one pinned unit per crash-target subtree.
func BenchmarkExploreModelCheckParallel(b *testing.B) {
	for _, name := range []string{"CCEH", "FAST_FAIR"} {
		bm := benchmarks.ByName(name)
		if bm == nil {
			b.Fatalf("%s not registered", name)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			workers := workers
			b.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res := explore.Run(bm.Build(bench.Buggy), explore.Options{
						Mode:       explore.ModelCheck,
						Executions: 200,
						Workers:    workers,
					})
					if res.Executions == 0 {
						b.Fatal("no executions ran")
					}
				}
			})
		}
		b.Run(fmt.Sprintf("%s/workers=8/steal=off", name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := explore.Run(bm.Build(bench.Buggy), explore.Options{
					Mode:            explore.ModelCheck,
					Executions:      200,
					Workers:         8,
					DisableStealing: true,
				})
				if res.Executions == 0 {
					b.Fatal("no executions ran")
				}
			}
		})
	}
}

// BenchmarkExploreRandomSerial measures one serial (Workers=1)
// random-mode campaign per iteration on a few registered benchmarks.
// Run with -benchmem: allocs/op is the hot-path health metric the
// allocation-free steady-state work (location interning, event arenas,
// machine/trace reuse) is measured by.
func BenchmarkExploreRandomSerial(b *testing.B) {
	for _, name := range []string{"CCEH", "FAST_FAIR", "P-CLHT"} {
		bm := benchmarks.ByName(name)
		if bm == nil {
			b.Fatalf("%s not registered", name)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := explore.Run(bm.Build(bench.Buggy), explore.Options{
					Mode:       explore.Random,
					Executions: 50,
					Seed:       7,
					Workers:    1,
				})
				if res.Executions != 50 {
					b.Fatalf("ran %d executions, want 50", res.Executions)
				}
			}
		})
	}
}

// BenchmarkExploreModelCheckSerial is the exhaustive-mode counterpart of
// BenchmarkExploreRandomSerial: one capped serial DFS per iteration.
func BenchmarkExploreModelCheckSerial(b *testing.B) {
	for _, name := range []string{"CCEH", "FAST_FAIR"} {
		bm := benchmarks.ByName(name)
		if bm == nil {
			b.Fatalf("%s not registered", name)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := explore.Run(bm.Build(bench.Buggy), explore.Options{
					Mode:       explore.ModelCheck,
					Executions: 200,
					Workers:    1,
				})
				if res.Executions == 0 {
					b.Fatal("no executions ran")
				}
			}
		})
	}
}

// BenchmarkExploreObservability measures the telemetry tax on the
// serial random campaign of BenchmarkExploreRandomSerial (FAST_FAIR):
// `off` (nil observer) and `empty-observer` (non-nil observer, nil
// sinks — the flags-parsed-but-unused shape) must be allocation-
// identical (TestObservabilityDisabledAllocIdentity asserts it), while
// the enabled rows price the metrics registry alone and the full stack
// (registry + span tracer + provenance capture) separately.
func BenchmarkExploreObservability(b *testing.B) {
	bm := benchmarks.ByName("FAST_FAIR")
	if bm == nil {
		b.Fatal("FAST_FAIR not registered")
	}
	for _, cfg := range []struct {
		name     string
		observer func() *obs.Observer
		prov     bool
	}{
		{"off", func() *obs.Observer { return nil }, false},
		{"empty-observer", func() *obs.Observer { return &obs.Observer{} }, false},
		{"metrics", func() *obs.Observer {
			return &obs.Observer{Metrics: obs.NewRegistry()}
		}, false},
		{"metrics+trace+provenance", func() *obs.Observer {
			return &obs.Observer{Metrics: obs.NewRegistry(), Tracer: obs.NewTracer()}
		}, true},
	} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := explore.Run(bm.Build(bench.Buggy), explore.Options{
					Mode:       explore.Random,
					Executions: 50,
					Seed:       7,
					Workers:    1,
					Obs:        cfg.observer(),
					Provenance: cfg.prov,
				})
				if res.Executions != 50 {
					b.Fatalf("ran %d executions, want 50", res.Executions)
				}
			}
		})
	}
}

// BenchmarkStateCache measures model checking on FAST_FAIR with the
// post-crash state cache on and off: the cached run prunes sub-DFS
// subtrees whose surviving persistent image was already explored.
func BenchmarkStateCache(b *testing.B) {
	bm := benchmarks.ByName("FAST_FAIR")
	if bm == nil {
		b.Fatal("FAST_FAIR not registered")
	}
	const cap = 400
	for _, cfg := range []struct {
		name    string
		noCache bool
	}{{"on", false}, {"off", true}} {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			var hits, misses int
			for i := 0; i < b.N; i++ {
				res := explore.Run(bm.Build(bench.Buggy), explore.Options{
					Mode:         explore.ModelCheck,
					Executions:   cap,
					Workers:      1,
					NoStateCache: cfg.noCache,
				})
				hits, misses = res.CacheHits, res.CacheMisses
			}
			b.ReportMetric(float64(hits), "cache-hits")
			b.ReportMetric(float64(misses), "cache-misses")
		})
	}
}

// BenchmarkLitmusSuite measures the full figure suite (the paper's
// worked examples) end to end.
func BenchmarkLitmusSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sc := range litmus.Scenarios() {
			vs := sc.Run(discard{})
			if (len(vs) > 0) != sc.WantViolation {
				b.Fatalf("%s verdict regressed", sc.Name)
			}
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// --- micro-benchmarks ---

// BenchmarkPx86StoreFlushCrashRead measures the simulator's core loop:
// store, flush, crash, candidate enumeration, read.
func BenchmarkPx86StoreFlushCrashRead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		m := px86.New(px86.Config{})
		m.Store(0, 0x1000, 1, m.Intern("s"))
		m.Flush(0, 0x1000, m.Intern("f"))
		m.Crash()
		c := m.LoadCandidates(0, 0x1000)
		m.Load(0, 0x1000, c[0], m.Intern("r"))
	}
}

// BenchmarkCheckerObserveRead measures the LOAD-PREV constraint update
// on a cross-crash read — the per-load cost PSan adds over the
// simulator.
func BenchmarkCheckerObserveRead(b *testing.B) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	for i := 0; i < 64; i++ {
		th.Store(memmodel.Addr(0x1000+64*i), memmodel.Value(i), "s")
	}
	w.Crash()
	cands := w.M.LoadCandidates(0, 0x1000)
	rf := cands[0].Store
	checker := core.New(w.M.Trace())
	benchLoc := w.M.Intern("bench read")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		checker.CheckRead(0, 0x1000, rf, benchLoc)
	}
}

// BenchmarkVClockJoin measures the happens-before lattice operation.
func BenchmarkVClockJoin(b *testing.B) {
	x := vclock.Bottom().Inc(0).Inc(1).Inc(2).Inc(3)
	y := vclock.Bottom().Inc(2).Inc(3).Inc(4).Inc(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.Join(y)
	}
}

// BenchmarkIntervalConstrain measures the crash-interval conjunction.
func BenchmarkIntervalConstrain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		iv := intervals.New()
		iv, _ = iv.ConstrainLo(5, nil)
		iv, _ = iv.ConstrainHi(9, nil)
		if iv.Empty() {
			b.Fatal("should be satisfiable")
		}
	}
}

// BenchmarkLangParse measures the Figure 9 front end.
func BenchmarkLangParse(b *testing.B) {
	src := `
phase {
  thread 0 {
    x = 1;
    flushopt x;
    sfence;
    let r = cas(x, 1, 2);
    repeat 4 { faa(y, r); }
    if (r == 1) { y = 2; } else { y = 3; }
  }
}
phase { thread 0 { let s = load(y); assert(s > 0); } }`
	for i := 0; i < b.N; i++ {
		if _, err := lang.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkModelCheckFigure2 measures the exhaustive exploration of the
// paper's smallest non-robust program.
func BenchmarkModelCheckFigure2(b *testing.B) {
	prog := &explore.FuncProgram{
		ProgName: "fig2",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Store(0x1000, 1, "x=1")
				th.Store(0x2000, 1, "y=1")
				th.Store(0x1000, 2, "x=2")
				th.Store(0x2000, 2, "y=2")
			},
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Load(0x1000, "r1=x")
				th.Load(0x2000, "r2=y")
			},
		},
	}
	for i := 0; i < b.N; i++ {
		res := explore.Run(prog, explore.Options{Mode: explore.ModelCheck, Executions: 10000})
		if len(res.Violations) == 0 {
			b.Fatal("figure 2 bug regressed")
		}
	}
}

// BenchmarkAblations measures the §4.2 ablations against the full
// algorithm on the benchmark suite: the run cost is similar, but the
// naïve variants get the litmus verdicts wrong (see
// internal/core/ablation_test.go); this target tracks their costs so
// the full algorithm's overhead is visibly justified.
func BenchmarkAblations(b *testing.B) {
	configs := []struct {
		name string
		opt  core.Options
	}{
		{"full", core.Options{}},
		{"no-hb-closure", core.Options{NoHBClosure: true}},
		{"global-interval", core.Options{GlobalInterval: true}},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m := px86.New(px86.Config{})
				ck := core.NewWithOptions(m.Trace(), cfg.opt)
				for j := 0; j < 32; j++ {
					m.Store(memmodel.ThreadID(j%2), memmodel.Addr(0x1000+64*(j%8)), memmodel.Value(j+1), m.Intern("s"))
				}
				m.Crash()
				for j := 0; j < 8; j++ {
					a := memmodel.Addr(0x1000 + 64*j)
					cands := m.LoadCandidates(0, a)
					m.Load(0, a, cands[0], m.Intern("r"))
					ck.ObserveRead(0, a, cands[0].Store, m.Intern("r"))
				}
			}
		})
	}
}

// BenchmarkRepairLoop measures the automated fix loop on Figure 2:
// explore, apply, re-explore until clean.
func BenchmarkRepairLoop(b *testing.B) {
	src := `
phase {
  thread 0 {
    x = 1;
    y = 1;
    x = 2;
    y = 2;
  }
}
phase {
  thread 0 {
    let r1 = load(x);
    let r2 = load(y);
  }
}`
	for i := 0; i < b.N; i++ {
		prog, err := lang.Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		res, err := repair.Loop("fig2", prog, explore.Options{Mode: explore.ModelCheck, Executions: 10000}, 10)
		if err != nil || !res.Clean {
			b.Fatalf("repair failed: %v clean=%v", err, res != nil && res.Clean)
		}
	}
}

// BenchmarkOracleAgreement measures the Definition 2 ground-truth
// enumeration used to validate the checker.
func BenchmarkOracleAgreement(b *testing.B) {
	prog := &explore.FuncProgram{
		ProgName: "oracle-shape",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				for j := 0; j < 6; j++ {
					th.Store(memmodel.Addr(0x1000+64*(j%3)), memmodel.Value(j+1), "s")
				}
			},
			func(w *pmem.World) {
				th := w.Thread(0)
				for j := 0; j < 3; j++ {
					th.Load(memmodel.Addr(0x1000+64*j), "r")
				}
			},
		},
	}
	for i := 0; i < b.N; i++ {
		explore.Run(prog, explore.Options{Mode: explore.ModelCheck, Executions: 10000})
	}
}
