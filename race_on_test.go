//go:build race

package repro

// raceEnabled reports whether the race detector instruments this build;
// exact-allocation assertions are skipped when it does.
const raceEnabled = true
