package repro

// Cross-model differential checks over the registered benchmarks: the
// two weak backends must agree on every verdict, and strict persistency
// must act as a clean oracle. These are the repo-level acceptance tests
// for the pluggable persistency-model layer.

import (
	"testing"

	"repro/internal/benchmarks"
	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/interp"
	"repro/internal/persist"
)

// TestDifferentialPx86PTSOsyn: px86 and ptsosyn surface identical
// violation key sets and execution counts on every registered
// benchmark, in both exploration modes. The two formulations are
// observationally equivalent; any divergence is a backend bug.
func TestDifferentialPx86PTSOsyn(t *testing.T) {
	for _, mode := range []explore.Mode{explore.Random, explore.ModelCheck} {
		mode := mode
		for _, b := range benchmarks.All() {
			b := b
			t.Run(mode.String()+"/"+b.Name, func(t *testing.T) {
				execs := scaled(b.Executions)
				if mode == explore.ModelCheck {
					execs = scaled(400)
				}
				d := explore.DiffModels(b.Build(bench.Buggy), explore.Options{
					Mode: mode, Executions: execs, Seed: 11,
				}, persist.Config{Name: "px86"}, persist.Config{Name: "ptsosyn"})
				if d.Divergent() {
					t.Fatalf("models diverge: %s", d)
				}
			})
		}
	}
}

// TestDifferentialTestdataPrograms extends the weak-model agreement to
// the shipped .pm programs, exercising the interpreter front end too.
func TestDifferentialTestdataPrograms(t *testing.T) {
	for _, tc := range testdataPrograms {
		tc := tc
		t.Run(tc.file, func(t *testing.T) {
			prog := loadProgram(t, tc.file)
			d := explore.DiffModels(interp.New(tc.file, prog), explore.Options{
				Mode: tc.mode, Executions: scaled(tc.executions), Seed: 1,
			}, persist.Config{Name: "px86"}, persist.Config{Name: "ptsosyn"})
			if d.Divergent() {
				t.Fatalf("models diverge: %s", d)
			}
		})
	}
}

// TestStrictOracleNoViolations: the strict backend persists every store
// at commit, so no stale post-crash read is reachable and PSan must
// report zero violations on any program — even the buggy variants.
func TestStrictOracleNoViolations(t *testing.T) {
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			for _, variant := range []bench.Variant{bench.Buggy, bench.Fixed} {
				res := explore.Run(b.Build(variant), explore.Options{
					Mode: b.PreferredMode, Executions: scaled(b.Executions), Seed: 11,
					Model: persist.Config{Name: "strict"},
				})
				if len(res.Violations) != 0 {
					t.Fatalf("strict backend reported violations on %v variant: %v",
						variant, res.ViolationKeys())
				}
				if res.Executions == 0 {
					t.Fatal("no executions ran")
				}
			}
		})
	}
}

// TestStrictOracleHeapAgreement: a robust (Fixed) program computes the
// same final heap whether every store persists instantly (strict) or
// under px86 with newest-candidate reads — the defining property of
// robustness. The buggy variants are exactly the programs where this
// can fail, so only Fixed is asserted.
func TestStrictOracleHeapAgreement(t *testing.T) {
	for _, b := range benchmarks.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			diffs := explore.DiffFinalHeaps(b.Build(bench.Fixed), 12,
				persist.Config{Name: "strict"}, persist.Config{Name: "px86"})
			if len(diffs) != 0 {
				t.Fatalf("robust program's final heap differs from strict oracle: %v", diffs)
			}
		})
	}
}

// TestDifferentialDetectsDisagreement sanity-checks the harness itself:
// strict vs px86 on a buggy benchmark must be reported as divergent
// (px86 finds violations, strict cannot). A differential runner that
// never fires is worse than none.
func TestDifferentialDetectsDisagreement(t *testing.T) {
	b := benchmarks.All()[0]
	d := explore.DiffModels(b.Build(bench.Buggy), explore.Options{
		Mode: b.PreferredMode, Executions: scaled(b.Executions), Seed: 11,
	}, persist.Config{Name: "px86"}, persist.Config{Name: "strict"})
	if len(d.A.Violations) == 0 {
		t.Skipf("%s found no violations under this budget; cannot probe divergence", b.Name)
	}
	if !d.Divergent() {
		t.Fatalf("px86 found %d violation(s) but strict comparison reports agreement",
			len(d.A.Violations))
	}
}
