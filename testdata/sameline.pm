// Cache-line colocation: with x and y on one line their stores persist
// in TSO order, so the Figure 2 pattern needs no flushes at all.
sameline x y;
phase {
  thread 0 {
    x = 1;
    y = 1;
    x = 2;
    y = 2;
  }
}
phase {
  thread 0 {
    let r1 = load(x);
    let r2 = load(y);
  }
}
