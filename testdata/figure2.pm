// The paper's Figure 2: four stores with no flushes; the post-crash
// reads r1=1, r2=2 have no strictly-persistent equivalent.
phase {
  thread 0 {
    x = 1;
    y = 1;
    x = 2;
    y = 2;
  }
}
phase {
  thread 0 {
    let r1 = load(x);
    let r2 = load(y);
  }
}
