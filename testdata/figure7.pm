// The paper's Figure 7: flushing after every store is not enough.
// Thread 0 may be paused between its store and its flush while thread 1
// reads the store, publishes y, and persists it.
phase {
  thread 0 {
    x = 1;
    flush x;
  }
  thread 1 {
    let r1 = load(x);
    y = r1;
    flush y;
  }
}
phase {
  thread 0 {
    let r2 = load(x);
    let r3 = load(y);
  }
}
