// A crash-logged counter: the log slot is persisted before the commit
// flag, and recovery trusts the flag. The missing flush on the flag's
// reset makes it observable stale. Exercises cas/faa/repeat/if.
phase {
  thread 0 {
    repeat 3 {
      let v = faa(counter, 1);
      log = v + 1;
      flushopt log;
      sfence;
      committed = 1;
      // missing: flushopt committed; sfence;
    }
  }
}
phase {
  thread 0 {
    let c = load(committed);
    if (c == 1) {
      let l = load(log);
      let n = load(counter);
      assert(l <= n + 1);
    }
  }
}
