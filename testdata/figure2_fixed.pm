// Figure 2 with the commit-store discipline applied: every store is
// persisted (clflushopt + sfence) before the next overwrite. Robust.
phase {
  thread 0 {
    x = 1;
    flushopt x;
    sfence;
    y = 1;
    flushopt y;
    sfence;
    x = 2;
    flushopt x;
    sfence;
    y = 2;
    flushopt y;
    sfence;
  }
}
phase {
  thread 0 {
    let r1 = load(x);
    let r2 = load(y);
  }
}
