package lang

import (
	"fmt"
	"strings"
)

// Format renders a program back to concrete syntax. The output parses
// to an equivalent program; the repair loop uses it to emit fixed
// programs.
func Format(p *Program) string {
	var b strings.Builder
	for _, g := range p.SameLine {
		fmt.Fprintf(&b, "sameline %s;\n", strings.Join(g, " "))
	}
	for _, ph := range p.Phases {
		b.WriteString("phase {\n")
		for _, th := range ph.Threads {
			fmt.Fprintf(&b, "  thread %d {\n", th.ID)
			formatStmts(&b, th.Body, "    ")
			b.WriteString("  }\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}

func formatStmts(b *strings.Builder, ss []Stmt, indent string) {
	for _, s := range ss {
		switch x := s.(type) {
		case *IfStmt:
			fmt.Fprintf(b, "%sif (%s) {\n", indent, formatExpr(x.Cond))
			formatStmts(b, x.Then, indent+"  ")
			if len(x.Else) > 0 {
				fmt.Fprintf(b, "%s} else {\n", indent)
				formatStmts(b, x.Else, indent+"  ")
			}
			fmt.Fprintf(b, "%s}\n", indent)
		case *RepeatStmt:
			fmt.Fprintf(b, "%srepeat %d {\n", indent, x.Count)
			formatStmts(b, x.Body, indent+"  ")
			fmt.Fprintf(b, "%s}\n", indent)
		case *WhileStmt:
			fmt.Fprintf(b, "%swhile (%s) {\n", indent, formatExpr(x.Cond))
			formatStmts(b, x.Body, indent+"  ")
			fmt.Fprintf(b, "%s}\n", indent)
		case *LetStmt:
			fmt.Fprintf(b, "%slet %s = %s;\n", indent, x.Reg, formatExpr(x.Expr))
		case *StoreStmt:
			fmt.Fprintf(b, "%s%s = %s;\n", indent, x.Loc, formatExpr(x.Expr))
		case *FlushStmt:
			kw := "flush"
			if x.Opt {
				kw = "flushopt"
			}
			fmt.Fprintf(b, "%s%s %s;\n", indent, kw, x.Loc)
		case *FenceStmt:
			kw := "sfence"
			if x.Full {
				kw = "mfence"
			}
			fmt.Fprintf(b, "%s%s;\n", indent, kw)
		case *AssertStmt:
			fmt.Fprintf(b, "%sassert(%s);\n", indent, formatExpr(x.Expr))
		case *ExprStmt:
			fmt.Fprintf(b, "%s%s;\n", indent, formatExpr(x.Expr))
		default:
			fmt.Fprintf(b, "%s// <unknown statement %T>\n", indent, s)
		}
	}
}

// formatExpr renders an expression without the outermost parentheses
// String() adds to binary nodes.
func formatExpr(e Expr) string {
	s := e.String()
	if x, ok := e.(*BinExpr); ok {
		_ = x
		s = strings.TrimPrefix(s, "(")
		s = strings.TrimSuffix(s, ")")
	}
	return s
}
