package lang

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse failed: %v", err)
	}
	return p
}

func parseErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, err := Parse(src)
	if err == nil {
		t.Fatalf("Parse succeeded, want error containing %q", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error = %q, want substring %q", err, wantSubstr)
	}
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("phase { thread 0 { x = 1; // comment\n } }")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind.String()+":"+tok.Text)
	}
	want := []string{
		"keyword:phase", "punctuation:{", "keyword:thread", "number:0",
		"punctuation:{", "identifier:x", "operator:=", "number:1",
		"punctuation:;", "punctuation:}", "punctuation:}", "EOF:",
	}
	if len(kinds) != len(want) {
		t.Fatalf("tokens = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, kinds[i], want[i])
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("phase\n  {")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Fatalf("first token pos = %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Fatalf("second token pos = %v", toks[1].Pos)
	}
}

func TestLexRejectsGarbage(t *testing.T) {
	if _, err := Lex("phase { thread 0 { x = $1; } }"); err == nil {
		t.Fatal("expected lex error for $")
	}
}

func TestParseFigure2(t *testing.T) {
	p := mustParse(t, `
phase {
  thread 0 {
    x = 1;
    y = 1;
    x = 2;
    y = 2;
  }
}
phase {
  thread 0 {
    let r1 = load(x);
    let r2 = load(y);
  }
}`)
	if len(p.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(p.Phases))
	}
	if got := len(p.Phases[0].Threads[0].Body); got != 4 {
		t.Fatalf("phase 1 statements = %d, want 4", got)
	}
	locs := p.Locations()
	if len(locs) != 2 || locs[0] != "x" || locs[1] != "y" {
		t.Fatalf("locations = %v, want [x y]", locs)
	}
}

func TestParseFullStatementSet(t *testing.T) {
	p := mustParse(t, `
sameline a b;
phase {
  thread 0 {
    a = 1;
    flush a;
    flushopt b;
    sfence;
    mfence;
    let r = load(a);
    let c = cas(a, 1, 2);
    let f = faa(b, 3);
    faa(b, 1);
    if (r == 1 && c != 9) { b = r; } else { b = 0; }
    repeat 3 { b = faa(b, 1); }
    assert(r >= 0 || !(f < 1));
  }
  thread 1 {
    let s = load(b);
  }
}
phase { thread 0 { let t = load(a); } }`)
	if len(p.SameLine) != 1 || len(p.SameLine[0]) != 2 {
		t.Fatalf("sameline = %v", p.SameLine)
	}
	if len(p.Phases[0].Threads) != 2 {
		t.Fatalf("threads = %d, want 2", len(p.Phases[0].Threads))
	}
}

func TestParsePrecedence(t *testing.T) {
	p := mustParse(t, `phase { thread 0 { let r = 1 + 2 * 3 == 7; x = r; } }`)
	let := p.Phases[0].Threads[0].Body[0].(*LetStmt)
	// Must parse as ((1 + (2 * 3)) == 7).
	if got := let.Expr.String(); got != "((1 + (2 * 3)) == 7)" {
		t.Fatalf("expr = %s", got)
	}
}

func TestParseErrors(t *testing.T) {
	parseErr(t, ``, "no phases")
	parseErr(t, `phase { }`, "no threads")
	parseErr(t, `phase { thread 0 { x = ; } }`, "expected expression")
	parseErr(t, `phase { thread 0 { flush 3; } }`, "expected identifier")
	parseErr(t, `phase { thread 0 { repeat 0 { } } }`, "out of range")
	parseErr(t, `bogus`, "expected 'phase'")
	parseErr(t, `sameline a;`, "at least two")
	parseErr(t, `phase { thread 0 { x = 1 } }`, "expected \";\"")
}

func TestCheckRegisterBeforeUse(t *testing.T) {
	parseErr(t, `phase { thread 0 { x = r; } }`, "used before let")
}

func TestCheckLocationReadWithoutLoad(t *testing.T) {
	parseErr(t, `phase { thread 0 { let a = load(x); y = x; } }`, "without load()")
}

func TestCheckRegisterLocationCollision(t *testing.T) {
	parseErr(t, `phase { thread 0 { x = 1; let x = 2; } }`, "must not collide")
}

func TestCheckStoreToRegister(t *testing.T) {
	parseErr(t, `phase { thread 0 { let r = 1; r = 2; } }`, "use let")
}

func TestCheckFlushRegister(t *testing.T) {
	parseErr(t, `phase { thread 0 { let r = 1; flush r; x = r; } }`, "cannot flush register")
}

func TestCheckDuplicateThreads(t *testing.T) {
	parseErr(t, `phase { thread 0 { x = 1; } thread 0 { y = 1; } }`, "declared twice")
}

func TestCheckSamelineOverflow(t *testing.T) {
	parseErr(t, `sameline a b c d e f g h i;
phase { thread 0 { a = 1; } }`, "exceeds one cache line")
}

func TestCheckSamelineOverlap(t *testing.T) {
	parseErr(t, `sameline a b;
sameline b c;
phase { thread 0 { a = 1; } }`, "two sameline groups")
}

func TestCheckBranchScoping(t *testing.T) {
	// A register defined in only one branch is not visible after the if.
	parseErr(t, `phase { thread 0 {
  let c = load(x);
  if (c) { let r = 1; } else { }
  y = r;
} }`, "used before let")
	// Defined in both branches: visible.
	mustParse(t, `phase { thread 0 {
  let c = load(x);
  if (c) { let r = 1; } else { let r = 2; }
  y = r;
} }`)
}

func TestRegisterRebindAllowed(t *testing.T) {
	mustParse(t, `phase { thread 0 { let r = 1; let r = 2; x = r; } }`)
}

func TestHexNumbers(t *testing.T) {
	p := mustParse(t, `phase { thread 0 { x = 0x10; } }`)
	st := p.Phases[0].Threads[0].Body[0].(*StoreStmt)
	if st.Expr.(*NumExpr).Val != 16 {
		t.Fatalf("hex literal = %d, want 16", st.Expr.(*NumExpr).Val)
	}
}

func TestProgramString(t *testing.T) {
	p := mustParse(t, `sameline a b;
phase { thread 0 { a = 1; } }`)
	s := p.String()
	if !strings.Contains(s, "sameline a b;") || !strings.Contains(s, "thread 0") {
		t.Fatalf("String() = %q", s)
	}
}

func TestParseWhile(t *testing.T) {
	p := mustParse(t, `
phase {
  thread 0 {
    let r = load(x);
    while (r < 3) {
      let r = faa(x, 1);
    }
  }
}`)
	ws, ok := p.Phases[0].Threads[0].Body[1].(*WhileStmt)
	if !ok {
		t.Fatalf("statement 2 is %T, want *WhileStmt", p.Phases[0].Threads[0].Body[1])
	}
	if ws.String() != "while ((r < 3)) { ... }" {
		t.Fatalf("String() = %q", ws.String())
	}
}

func TestWhileBodyRegistersDoNotEscape(t *testing.T) {
	parseErr(t, `phase { thread 0 {
  let c = load(x);
  while (c) { let r = 1; }
  y = r;
} }`, "used before let")
}

func TestFormatRoundTripsFullLanguage(t *testing.T) {
	src := `sameline a b;
phase {
  thread 0 {
    a = 1;
    flush a;
    flushopt b;
    sfence;
    mfence;
    let r = load(a);
    let c = cas(a, 1, 2);
    faa(b, 3);
    if (r == 1 && c != 9) {
      b = r;
    } else {
      b = 0;
    }
    repeat 3 {
      faa(b, 1);
    }
    while (load(b) < 10) {
      faa(b, 1);
    }
    assert(r >= 0);
  }
}
phase {
  thread 0 {
    let t = load(a);
  }
}`
	p1 := mustParse(t, src)
	formatted := Format(p1)
	p2, err := Parse(formatted)
	if err != nil {
		t.Fatalf("formatted program does not parse: %v\n%s", err, formatted)
	}
	// Idempotence: formatting the reparsed program is stable.
	if again := Format(p2); again != formatted {
		t.Fatalf("Format not idempotent:\n--- first\n%s\n--- second\n%s", formatted, again)
	}
}

// Property: the parser never panics — arbitrary byte soup yields a
// value or an error, not a crash.
func TestParseNeverPanics(t *testing.T) {
	check := func(src string) (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = nil
				t.Fatalf("Parse panicked on %q: %v", src, r)
			}
		}()
		_, _ = Parse(src)
		return nil
	}
	seeds := []string{
		"", "phase", "phase {", "phase { thread", "phase { thread 0 {",
		"phase { thread 0 { x = ", "sameline", "sameline ;", "}}}}",
		"phase { thread 0 { if (load(x)) { } }", "\x00\xff\xfe",
		"phase { thread 0 { let = 1; } }",
		"phase { thread 0 { repeat 99999999999999999999 { } } }",
		"phase { thread 18446744073709551615 { x = 1; } }",
		"phase { thread 0 { x = cas(y, 1; } }",
		"phase { thread 0 { while } }",
	}
	for _, s := range seeds {
		check(s)
	}
	// Mutations of a valid program: truncations and byte flips.
	valid := `sameline a b;
phase { thread 0 { a = 1; flush a; let r = load(b); if (r) { b = r; } } }`
	for i := 0; i < len(valid); i += 3 {
		check(valid[:i])
		mutated := []byte(valid)
		mutated[i] ^= 0x5a
		check(string(mutated))
	}
}
