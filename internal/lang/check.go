package lang

import "fmt"

// Check performs the static semantic checks: registers are defined (by a
// let) before use, register names do not collide with location names,
// thread identifiers are unique within a phase, and sameline groups fit
// within one cache line and do not overlap.
func Check(p *Program) error {
	// Pre-collect names that are unambiguously locations: sameline
	// groups and load/cas/faa targets. Store and flush targets are
	// classified sequentially during the walk, so that mistakes like
	// assigning a register without let get a precise diagnosis.
	locs := map[string]bool{}
	for _, g := range p.SameLine {
		for _, n := range g {
			locs[n] = true
		}
	}
	collectLoadTargets(p, locs)
	inGroup := map[string]int{}
	for i, g := range p.SameLine {
		if len(g) > 8 {
			return errf(Pos{1, 1}, "sameline group of %d locations exceeds one cache line (8 words)", len(g))
		}
		for _, n := range g {
			if prev, ok := inGroup[n]; ok && prev != i {
				return errf(Pos{1, 1}, "location %q appears in two sameline groups", n)
			}
			inGroup[n] = i
		}
	}
	for pi, ph := range p.Phases {
		ids := map[int]Pos{}
		for _, th := range ph.Threads {
			if prev, ok := ids[th.ID]; ok {
				return errf(th.Pos, "thread %d declared twice in phase %d (first at %s)", th.ID, pi+1, prev)
			}
			ids[th.ID] = th.Pos
			regs := map[string]bool{}
			if err := checkStmts(th.Body, regs, locs); err != nil {
				return err
			}
		}
	}
	return nil
}

func checkStmts(ss []Stmt, regs map[string]bool, locs map[string]bool) error {
	for _, s := range ss {
		switch x := s.(type) {
		case *LetStmt:
			if locs[x.Reg] {
				return errf(x.Pos, "%q is a memory location; registers and locations must not collide", x.Reg)
			}
			if err := checkExpr(x.Expr, regs, locs); err != nil {
				return err
			}
			regs[x.Reg] = true
		case *StoreStmt:
			if regs[x.Loc] {
				return errf(x.Pos, "%q is a register; use let to assign it", x.Loc)
			}
			locs[x.Loc] = true
			if err := checkExpr(x.Expr, regs, locs); err != nil {
				return err
			}
		case *FlushStmt:
			if regs[x.Loc] {
				return errf(x.Pos, "cannot flush register %q", x.Loc)
			}
			locs[x.Loc] = true
		case *FenceStmt:
			// nothing to check
		case *IfStmt:
			if err := checkExpr(x.Cond, regs, locs); err != nil {
				return err
			}
			// Branches see the registers defined so far; registers
			// defined inside a branch stay visible afterwards only if
			// both branches define them. For simplicity (and to keep
			// programs obvious), each branch checks against a copy and
			// only commonly-defined registers survive.
			thenRegs := copyRegs(regs)
			if err := checkStmts(x.Then, thenRegs, locs); err != nil {
				return err
			}
			elseRegs := copyRegs(regs)
			if err := checkStmts(x.Else, elseRegs, locs); err != nil {
				return err
			}
			for r := range thenRegs {
				if elseRegs[r] {
					regs[r] = true
				}
			}
		case *RepeatStmt:
			if err := checkStmts(x.Body, regs, locs); err != nil {
				return err
			}
		case *WhileStmt:
			if err := checkExpr(x.Cond, regs, locs); err != nil {
				return err
			}
			// Registers defined inside a while body may not execute;
			// they do not escape (check against a copy).
			if err := checkStmts(x.Body, copyRegs(regs), locs); err != nil {
				return err
			}
		case *AssertStmt:
			if err := checkExpr(x.Expr, regs, locs); err != nil {
				return err
			}
		case *ExprStmt:
			if err := checkExpr(x.Expr, regs, locs); err != nil {
				return err
			}
		default:
			return fmt.Errorf("lang: unknown statement %T", s)
		}
	}
	return nil
}

func checkExpr(e Expr, regs map[string]bool, locs map[string]bool) error {
	switch x := e.(type) {
	case *NumExpr:
	case *RegExpr:
		if !regs[x.Name] {
			if locs[x.Name] {
				return errf(x.Pos, "location %q read without load(); write load(%s)", x.Name, x.Name)
			}
			return errf(x.Pos, "register %q used before let", x.Name)
		}
	case *LoadExpr:
		if regs[x.Loc] {
			return errf(x.Pos, "cannot load register %q", x.Loc)
		}
	case *CASExpr:
		if regs[x.Loc] {
			return errf(x.Pos, "cannot cas register %q", x.Loc)
		}
		if err := checkExpr(x.Expected, regs, locs); err != nil {
			return err
		}
		return checkExpr(x.New, regs, locs)
	case *FAAExpr:
		if regs[x.Loc] {
			return errf(x.Pos, "cannot faa register %q", x.Loc)
		}
		return checkExpr(x.Delta, regs, locs)
	case *BinExpr:
		if err := checkExpr(x.L, regs, locs); err != nil {
			return err
		}
		return checkExpr(x.R, regs, locs)
	case *NotExpr:
		return checkExpr(x.E, regs, locs)
	default:
		return fmt.Errorf("lang: unknown expression %T", e)
	}
	return nil
}

// collectLoadTargets adds every load/cas/faa target in the program to
// locs.
func collectLoadTargets(p *Program, locs map[string]bool) {
	var walkExpr func(Expr)
	var walkStmts func([]Stmt)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *LoadExpr:
			locs[x.Loc] = true
		case *CASExpr:
			locs[x.Loc] = true
			walkExpr(x.Expected)
			walkExpr(x.New)
		case *FAAExpr:
			locs[x.Loc] = true
			walkExpr(x.Delta)
		case *BinExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case *NotExpr:
			walkExpr(x.E)
		}
	}
	walkStmts = func(ss []Stmt) {
		for _, s := range ss {
			switch x := s.(type) {
			case *LetStmt:
				walkExpr(x.Expr)
			case *StoreStmt:
				walkExpr(x.Expr)
			case *IfStmt:
				walkExpr(x.Cond)
				walkStmts(x.Then)
				walkStmts(x.Else)
			case *RepeatStmt:
				walkStmts(x.Body)
			case *WhileStmt:
				walkExpr(x.Cond)
				walkStmts(x.Body)
			case *AssertStmt:
				walkExpr(x.Expr)
			case *ExprStmt:
				walkExpr(x.Expr)
			}
		}
	}
	for _, ph := range p.Phases {
		for _, th := range ph.Threads {
			walkStmts(th.Body)
		}
	}
}

func copyRegs(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
