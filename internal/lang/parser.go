package lang

import "strconv"

// parser is a recursive-descent parser over the token stream.
type parser struct {
	toks []Token
	pos  int
}

// Parse lexes and parses a program.
func Parse(src string) (*Program, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	if err := Check(prog); err != nil {
		return nil, err
	}
	return prog, nil
}

func (p *parser) cur() Token  { return p.toks[p.pos] }
func (p *parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) accept(kind TokKind, text string) bool {
	if p.cur().Kind == kind && p.cur().Text == text {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	t := p.cur()
	if t.Kind != kind || t.Text != text {
		return t, errf(t.Pos, "expected %q, found %q", text, t.Text)
	}
	p.pos++
	return t, nil
}

func (p *parser) expectIdent() (Token, error) {
	t := p.cur()
	if t.Kind != TokIdent {
		return t, errf(t.Pos, "expected identifier, found %q", t.Text)
	}
	p.pos++
	return t, nil
}

func (p *parser) expectNumber() (uint64, Pos, error) {
	t := p.cur()
	if t.Kind != TokNumber {
		return 0, t.Pos, errf(t.Pos, "expected number, found %q", t.Text)
	}
	p.pos++
	v, err := strconv.ParseUint(t.Text, 0, 64)
	if err != nil {
		return 0, t.Pos, errf(t.Pos, "malformed number %q", t.Text)
	}
	return v, t.Pos, nil
}

func (p *parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for p.cur().Kind != TokEOF {
		switch {
		case p.cur().Kind == TokKeyword && p.cur().Text == "sameline":
			p.next()
			var group []string
			for p.cur().Kind == TokIdent {
				group = append(group, p.next().Text)
			}
			if len(group) < 2 {
				return nil, errf(p.cur().Pos, "sameline needs at least two locations")
			}
			if _, err := p.expect(TokPunct, ";"); err != nil {
				return nil, err
			}
			prog.SameLine = append(prog.SameLine, group)
		case p.cur().Kind == TokKeyword && p.cur().Text == "phase":
			ph, err := p.parsePhase()
			if err != nil {
				return nil, err
			}
			prog.Phases = append(prog.Phases, ph)
		default:
			return nil, errf(p.cur().Pos, "expected 'phase' or 'sameline', found %q", p.cur().Text)
		}
	}
	if len(prog.Phases) == 0 {
		return nil, errf(Pos{1, 1}, "program has no phases")
	}
	return prog, nil
}

func (p *parser) parsePhase() (*Phase, error) {
	start, err := p.expect(TokKeyword, "phase")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	ph := &Phase{Pos: start.Pos}
	for !p.accept(TokPunct, "}") {
		th, err := p.parseThread()
		if err != nil {
			return nil, err
		}
		ph.Threads = append(ph.Threads, th)
	}
	if len(ph.Threads) == 0 {
		return nil, errf(start.Pos, "phase has no threads")
	}
	return ph, nil
}

func (p *parser) parseThread() (*ThreadDecl, error) {
	start, err := p.expect(TokKeyword, "thread")
	if err != nil {
		return nil, err
	}
	id, _, err := p.expectNumber()
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &ThreadDecl{Pos: start.Pos, ID: int(id), Body: body}, nil
}

func (p *parser) parseBlock() ([]Stmt, error) {
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.accept(TokPunct, "}") {
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, nil
}

func (p *parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == TokKeyword && t.Text == "let":
		p.next()
		reg, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokOp, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &LetStmt{Pos: t.Pos, Reg: reg.Text, Expr: e}, nil

	case t.Kind == TokKeyword && (t.Text == "flush" || t.Text == "flushopt"):
		p.next()
		loc, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &FlushStmt{Pos: t.Pos, Loc: loc.Text, Opt: t.Text == "flushopt"}, nil

	case t.Kind == TokKeyword && (t.Text == "sfence" || t.Text == "mfence"):
		p.next()
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &FenceStmt{Pos: t.Pos, Full: t.Text == "mfence"}, nil

	case t.Kind == TokKeyword && t.Text == "if":
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.accept(TokKeyword, "else") {
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{Pos: t.Pos, Cond: cond, Then: then, Else: els}, nil

	case t.Kind == TokKeyword && t.Text == "repeat":
		p.next()
		n, npos, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		if n == 0 || n > 1<<16 {
			return nil, errf(npos, "repeat count %d out of range [1, 65536]", n)
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &RepeatStmt{Pos: t.Pos, Count: int(n), Body: body}, nil

	case t.Kind == TokKeyword && t.Text == "while":
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: t.Pos, Cond: cond, Body: body}, nil

	case t.Kind == TokKeyword && t.Text == "assert":
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &AssertStmt{Pos: t.Pos, Expr: e}, nil

	case t.Kind == TokKeyword && (t.Text == "cas" || t.Text == "faa"):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: t.Pos, Expr: e}, nil

	case t.Kind == TokIdent:
		// A store: loc = expr;
		loc := p.next()
		if _, err := p.expect(TokOp, "="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &StoreStmt{Pos: loc.Pos, Loc: loc.Text, Expr: e}, nil
	}
	return nil, errf(t.Pos, "expected statement, found %q", t.Text)
}

// Operator precedence, lowest first: || < && < comparisons < additive <
// multiplicative.
var precedence = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3, "<": 3, "<=": 3, ">": 3, ">=": 3,
	"+": 4, "-": 4,
	"*": 5, "/": 5, "%": 5,
}

func (p *parser) parseExpr() (Expr, error) {
	return p.parseBinary(1)
}

func (p *parser) parseBinary(minPrec int) (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		prec, ok := precedence[t.Text]
		if t.Kind != TokOp || !ok || prec < minPrec {
			return left, nil
		}
		p.next()
		right, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &BinExpr{Pos: t.Pos, Op: t.Text, L: left, R: right}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	if t.Kind == TokOp && t.Text == "!" {
		p.next()
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Pos: t.Pos, E: e}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokNumber:
		v, pos, err := p.expectNumber()
		if err != nil {
			return nil, err
		}
		return &NumExpr{Pos: pos, Val: v}, nil

	case t.Kind == TokKeyword && t.Text == "load":
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		loc, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return &LoadExpr{Pos: t.Pos, Loc: loc.Text}, nil

	case t.Kind == TokKeyword && t.Text == "cas":
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		loc, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ","); err != nil {
			return nil, err
		}
		expd, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ","); err != nil {
			return nil, err
		}
		newV, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return &CASExpr{Pos: t.Pos, Loc: loc.Text, Expected: expd, New: newV}, nil

	case t.Kind == TokKeyword && t.Text == "faa":
		p.next()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		loc, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ","); err != nil {
			return nil, err
		}
		delta, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return &FAAExpr{Pos: t.Pos, Loc: loc.Text, Delta: delta}, nil

	case t.Kind == TokIdent:
		p.next()
		return &RegExpr{Pos: t.Pos, Name: t.Text}, nil

	case t.Kind == TokPunct && t.Text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, errf(t.Pos, "expected expression, found %q", t.Text)
}
