package lang

import (
	"fmt"
	"strings"
)

// Program is a parsed PM test program: layout directives plus one or
// more crash-delimited phases (the paper's sub-executions). Following
// Figure 9, Prog maps thread identifiers to sequential commands; we
// additionally partition the execution into phases so crash events can
// separate them (§3's Exec = e1 C1 e2 C2 ... en+1).
type Program struct {
	// SameLine groups location names that share a cache line.
	SameLine [][]string
	// Phases holds the crash-delimited phases, pre-crash first.
	Phases []*Phase
}

// Phase is one sub-execution: a set of threads run concurrently.
type Phase struct {
	Pos     Pos
	Threads []*ThreadDecl
}

// ThreadDecl is one thread's sequential program within a phase.
type ThreadDecl struct {
	Pos  Pos
	ID   int
	Body []Stmt
}

// Stmt is a statement node (the Com grammar of Figure 9).
type Stmt interface {
	stmtNode()
	// StmtPos returns the statement's source position.
	StmtPos() Pos
	// String renders the statement in source-like form.
	String() string
}

// Expr is an expression node (the Exp grammar of Figure 9, plus the
// memory-reading primitives which Figure 9 classifies as PCom but which
// read most naturally as expressions).
type Expr interface {
	exprNode()
	// ExprPos returns the expression's source position.
	ExprPos() Pos
	String() string
}

// --- statements ---

// LetStmt binds (or rebinds) a register: let r = expr;
type LetStmt struct {
	Pos  Pos
	Reg  string
	Expr Expr
}

// StoreStmt writes a location: x = expr;
type StoreStmt struct {
	Pos  Pos
	Loc  string
	Expr Expr
}

// FlushStmt is `flush x;` (clflush) or `flushopt x;` (clflushopt/clwb),
// selected by Opt.
type FlushStmt struct {
	Pos Pos
	Loc string
	Opt bool
}

// FenceStmt is `sfence;` or `mfence;`, selected by Full.
type FenceStmt struct {
	Pos  Pos
	Full bool
}

// IfStmt is `if (cond) { then } else { els }`; Else may be nil.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then []Stmt
	Else []Stmt
}

// RepeatStmt is `repeat n { body }` with a constant iteration count —
// Figure 9's repeat bounded so model checking terminates.
type RepeatStmt struct {
	Pos   Pos
	Count int
	Body  []Stmt
}

// WhileStmt is `while (cond) { body }` — Figure 9's unbounded repeat
// with an exit condition. The simulator's per-execution operation
// budget bounds runaway loops.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body []Stmt
}

// AssertStmt is `assert(expr);`. Failures are recorded by the
// interpreter; the Jaaru-style baseline reports bugs only through them.
type AssertStmt struct {
	Pos  Pos
	Expr Expr
}

// ExprStmt evaluates an expression for effect (a bare cas/faa call).
type ExprStmt struct {
	Pos  Pos
	Expr Expr
}

func (*LetStmt) stmtNode()    {}
func (*StoreStmt) stmtNode()  {}
func (*FlushStmt) stmtNode()  {}
func (*FenceStmt) stmtNode()  {}
func (*IfStmt) stmtNode()     {}
func (*RepeatStmt) stmtNode() {}
func (*WhileStmt) stmtNode()  {}
func (*AssertStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}

// StmtPos implementations.
func (s *LetStmt) StmtPos() Pos    { return s.Pos }
func (s *StoreStmt) StmtPos() Pos  { return s.Pos }
func (s *FlushStmt) StmtPos() Pos  { return s.Pos }
func (s *FenceStmt) StmtPos() Pos  { return s.Pos }
func (s *IfStmt) StmtPos() Pos     { return s.Pos }
func (s *RepeatStmt) StmtPos() Pos { return s.Pos }
func (s *WhileStmt) StmtPos() Pos  { return s.Pos }
func (s *AssertStmt) StmtPos() Pos { return s.Pos }
func (s *ExprStmt) StmtPos() Pos   { return s.Pos }

func (s *LetStmt) String() string   { return fmt.Sprintf("let %s = %s;", s.Reg, s.Expr) }
func (s *StoreStmt) String() string { return fmt.Sprintf("%s = %s;", s.Loc, s.Expr) }
func (s *FlushStmt) String() string {
	if s.Opt {
		return fmt.Sprintf("flushopt %s;", s.Loc)
	}
	return fmt.Sprintf("flush %s;", s.Loc)
}
func (s *FenceStmt) String() string {
	if s.Full {
		return "mfence;"
	}
	return "sfence;"
}
func (s *IfStmt) String() string {
	if len(s.Else) > 0 {
		return fmt.Sprintf("if (%s) { ... } else { ... }", s.Cond)
	}
	return fmt.Sprintf("if (%s) { ... }", s.Cond)
}
func (s *RepeatStmt) String() string { return fmt.Sprintf("repeat %d { ... }", s.Count) }
func (s *WhileStmt) String() string  { return fmt.Sprintf("while (%s) { ... }", s.Cond) }
func (s *AssertStmt) String() string { return fmt.Sprintf("assert(%s);", s.Expr) }
func (s *ExprStmt) String() string   { return s.Expr.String() + ";" }

// --- expressions ---

// NumExpr is an integer literal.
type NumExpr struct {
	Pos Pos
	Val uint64
}

// RegExpr reads a register.
type RegExpr struct {
	Pos  Pos
	Name string
}

// LoadExpr is load(x): an atomic read of a location.
type LoadExpr struct {
	Pos Pos
	Loc string
}

// CASExpr is cas(x, expected, new): it evaluates to the value observed.
type CASExpr struct {
	Pos      Pos
	Loc      string
	Expected Expr
	New      Expr
}

// FAAExpr is faa(x, delta): it evaluates to the previous value.
type FAAExpr struct {
	Pos   Pos
	Loc   string
	Delta Expr
}

// BinExpr applies a binary operator. Comparison and logical operators
// yield 0 or 1.
type BinExpr struct {
	Pos  Pos
	Op   string
	L, R Expr
}

// NotExpr is logical negation.
type NotExpr struct {
	Pos Pos
	E   Expr
}

func (*NumExpr) exprNode()  {}
func (*RegExpr) exprNode()  {}
func (*LoadExpr) exprNode() {}
func (*CASExpr) exprNode()  {}
func (*FAAExpr) exprNode()  {}
func (*BinExpr) exprNode()  {}
func (*NotExpr) exprNode()  {}

// ExprPos implementations.
func (e *NumExpr) ExprPos() Pos  { return e.Pos }
func (e *RegExpr) ExprPos() Pos  { return e.Pos }
func (e *LoadExpr) ExprPos() Pos { return e.Pos }
func (e *CASExpr) ExprPos() Pos  { return e.Pos }
func (e *FAAExpr) ExprPos() Pos  { return e.Pos }
func (e *BinExpr) ExprPos() Pos  { return e.Pos }
func (e *NotExpr) ExprPos() Pos  { return e.Pos }

func (e *NumExpr) String() string  { return fmt.Sprintf("%d", e.Val) }
func (e *RegExpr) String() string  { return e.Name }
func (e *LoadExpr) String() string { return fmt.Sprintf("load(%s)", e.Loc) }
func (e *CASExpr) String() string {
	return fmt.Sprintf("cas(%s, %s, %s)", e.Loc, e.Expected, e.New)
}
func (e *FAAExpr) String() string { return fmt.Sprintf("faa(%s, %s)", e.Loc, e.Delta) }
func (e *BinExpr) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }
func (e *NotExpr) String() string { return fmt.Sprintf("!%s", e.E) }

// Locations returns every location name the program mentions, in first-
// appearance order.
func (p *Program) Locations() []string {
	var names []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, group := range p.SameLine {
		for _, n := range group {
			add(n)
		}
	}
	var walkExpr func(Expr)
	var walkStmts func([]Stmt)
	walkExpr = func(e Expr) {
		switch x := e.(type) {
		case *LoadExpr:
			add(x.Loc)
		case *CASExpr:
			add(x.Loc)
			walkExpr(x.Expected)
			walkExpr(x.New)
		case *FAAExpr:
			add(x.Loc)
			walkExpr(x.Delta)
		case *BinExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case *NotExpr:
			walkExpr(x.E)
		}
	}
	walkStmts = func(ss []Stmt) {
		for _, s := range ss {
			switch x := s.(type) {
			case *LetStmt:
				walkExpr(x.Expr)
			case *StoreStmt:
				add(x.Loc)
				walkExpr(x.Expr)
			case *FlushStmt:
				add(x.Loc)
			case *IfStmt:
				walkExpr(x.Cond)
				walkStmts(x.Then)
				walkStmts(x.Else)
			case *RepeatStmt:
				walkStmts(x.Body)
			case *WhileStmt:
				walkExpr(x.Cond)
				walkStmts(x.Body)
			case *AssertStmt:
				walkExpr(x.Expr)
			case *ExprStmt:
				walkExpr(x.Expr)
			}
		}
	}
	for _, ph := range p.Phases {
		for _, th := range ph.Threads {
			walkStmts(th.Body)
		}
	}
	return names
}

// String pretty-prints the program structure (for -dump debugging).
func (p *Program) String() string {
	var b strings.Builder
	for _, g := range p.SameLine {
		fmt.Fprintf(&b, "sameline %s;\n", strings.Join(g, " "))
	}
	for _, ph := range p.Phases {
		b.WriteString("phase {\n")
		for _, th := range ph.Threads {
			fmt.Fprintf(&b, "  thread %d { %d statements }\n", th.ID, len(th.Body))
		}
		b.WriteString("}\n")
	}
	return b.String()
}
