// Package lang implements the concurrent programming language of the
// paper's Figure 9, with a concrete syntax for writing crash-consistency
// litmus tests and small PM programs:
//
//	sameline x y;            // optional layout directive
//	phase {
//	  thread 0 {
//	    x = 1;
//	    flush x;             // clflush
//	    flushopt y;          // clflushopt / clwb
//	    sfence;
//	    let r = load(x);
//	    let c = cas(x, 1, 2);
//	    let f = faa(y, 1);
//	    if (r == 1) { y = r; } else { y = 0; }
//	    repeat 3 { y = faa(y, 1); }
//	    assert(r != 0);
//	  }
//	}
//	phase { thread 0 { let s = load(y); } }
//
// Phases are crash-delimited: the exploration harness injects a crash
// within (or after) every phase except the last. Memory locations are
// identifiers; each gets its own cache line unless a `sameline`
// directive groups them onto one line.
package lang

import "fmt"

// TokKind classifies lexical tokens.
type TokKind int

// Token kinds. Keywords are distinguished from identifiers by the lexer.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokKeyword
	TokPunct // ; { } ( ) ,
	TokOp    // = == != < <= > >= + - * / % && || !
)

var tokKindNames = [...]string{
	TokEOF:     "EOF",
	TokIdent:   "identifier",
	TokNumber:  "number",
	TokKeyword: "keyword",
	TokPunct:   "punctuation",
	TokOp:      "operator",
}

// String names the token kind.
func (k TokKind) String() string {
	if int(k) < len(tokKindNames) {
		return tokKindNames[k]
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

// Token is one lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

// Pos is a line/column source position (1-based).
type Pos struct {
	Line, Col int
}

// String renders the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// keywords of the language. `load`, `cas`, and `faa` are expression
// keywords; the rest introduce statements or program structure.
var keywords = map[string]bool{
	"phase":    true,
	"thread":   true,
	"let":      true,
	"if":       true,
	"else":     true,
	"repeat":   true,
	"while":    true,
	"load":     true,
	"cas":      true,
	"faa":      true,
	"flush":    true,
	"flushopt": true,
	"sfence":   true,
	"mfence":   true,
	"assert":   true,
	"sameline": true,
}

// Error is a lexical, syntactic, or semantic error with its position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
