package lang

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzParse asserts the parser's contract under arbitrary input:
// malformed programs must return an error, never panic — the psan CLI
// feeds user files straight into Parse, and a parser panic would be
// classified as an internal error (exit 2) instead of a parse
// diagnostic. Accepted programs must additionally survive a
// format/re-parse round trip, which shakes out formatter/parser
// disagreements on accepted-but-odd shapes.
func FuzzParse(f *testing.F) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.pm"))
	if err != nil || len(paths) == 0 {
		f.Fatalf("seed corpus missing: %v (%d files)", err, len(paths))
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(src))
	}
	for _, s := range []string{
		"",
		"program",
		"program p { thread t0 {",
		"x = ;",
		"store x 1; flush x; sfence;",
		"while (x {",
		"// comment only\n",
		"program p { phase { store x = 1; } phase { r1 = load x; } }",
		"\x00\xff\xfe",
		"program \xf0\x28\x8c\x28 {}", // invalid UTF-8 identifier
		"program p { phase { assert(1 == } }",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Parse(src)
		if err != nil {
			return // rejected cleanly — that is the contract
		}
		formatted := Format(prog)
		reparsed, err := Parse(formatted)
		if err != nil {
			t.Fatalf("accepted program failed to re-parse after Format: %v\nformatted:\n%s", err, formatted)
		}
		if again := Format(reparsed); again != formatted {
			t.Fatalf("Format is not a fixed point:\nfirst:\n%s\nsecond:\n%s", formatted, again)
		}
	})
}
