package lang

import (
	"strings"
	"unicode"
)

// lexer turns source text into tokens. It is a straightforward
// hand-written scanner; the language is small enough that no generator
// is warranted.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (lx *lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) advance() byte {
	b := lx.src[lx.off]
	lx.off++
	if b == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return b
}

// skipSpaceAndComments consumes whitespace and // line comments.
func (lx *lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		b := lx.peekByte()
		switch {
		case b == ' ' || b == '\t' || b == '\r' || b == '\n':
			lx.advance()
		case b == '/' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '/':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(b byte) bool {
	return b == '_' || unicode.IsLetter(rune(b))
}

func isIdentPart(b byte) bool {
	return b == '_' || unicode.IsLetter(rune(b)) || unicode.IsDigit(rune(b))
}

// Lex tokenizes the whole source, returning the tokens (terminated by a
// TokEOF token) or the first lexical error.
func Lex(src string) ([]Token, error) {
	lx := newLexer(src)
	var toks []Token
	for {
		lx.skipSpaceAndComments()
		pos := lx.pos()
		if lx.off >= len(lx.src) {
			toks = append(toks, Token{Kind: TokEOF, Pos: pos})
			return toks, nil
		}
		b := lx.peekByte()
		switch {
		case isIdentStart(b):
			start := lx.off
			for lx.off < len(lx.src) && isIdentPart(lx.peekByte()) {
				lx.advance()
			}
			text := lx.src[start:lx.off]
			kind := TokIdent
			if keywords[text] {
				kind = TokKeyword
			}
			toks = append(toks, Token{Kind: kind, Text: text, Pos: pos})
		case unicode.IsDigit(rune(b)):
			start := lx.off
			for lx.off < len(lx.src) && (isIdentPart(lx.peekByte())) {
				lx.advance()
			}
			text := lx.src[start:lx.off]
			if strings.IndexFunc(text, func(r rune) bool { return !unicode.IsDigit(r) && r != 'x' && !unicode.Is(unicode.Hex_Digit, r) }) >= 0 {
				return nil, errf(pos, "malformed number %q", text)
			}
			toks = append(toks, Token{Kind: TokNumber, Text: text, Pos: pos})
		case strings.IndexByte(";{}(),", b) >= 0:
			lx.advance()
			toks = append(toks, Token{Kind: TokPunct, Text: string(b), Pos: pos})
		default:
			op, ok := lx.scanOp()
			if !ok {
				return nil, errf(pos, "unexpected character %q", string(b))
			}
			toks = append(toks, Token{Kind: TokOp, Text: op, Pos: pos})
		}
	}
}

// scanOp consumes the longest matching operator.
func (lx *lexer) scanOp() (string, bool) {
	two := ""
	if lx.off+1 < len(lx.src) {
		two = lx.src[lx.off : lx.off+2]
	}
	switch two {
	case "==", "!=", "<=", ">=", "&&", "||":
		lx.advance()
		lx.advance()
		return two, true
	}
	switch b := lx.peekByte(); b {
	case '=', '<', '>', '+', '-', '*', '/', '%', '!':
		lx.advance()
		return string(b), true
	}
	return "", false
}
