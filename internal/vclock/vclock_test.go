package vclock

import (
	"testing"
	"testing/quick"

	"repro/internal/memmodel"
)

// genCV builds a deterministic small vector from three seeds so that
// testing/quick can explore the lattice structure.
func genCV(a, b, c uint8) CV {
	v := Bottom()
	v = v.WithClock(0, Clock(a%7))
	v = v.WithClock(1, Clock(b%7))
	v = v.WithClock(2, Clock(c%7))
	return v
}

func TestBottom(t *testing.T) {
	v := Bottom()
	if !v.IsBottom() {
		t.Fatalf("Bottom() is not bottom: %v", v)
	}
	if got := v.At(3); got != 0 {
		t.Fatalf("Bottom().At(3) = %d, want 0", got)
	}
	if s := v.String(); s != "{}" {
		t.Fatalf("Bottom().String() = %q, want {}", s)
	}
}

func TestIncIsPerThread(t *testing.T) {
	v := Bottom().Inc(2).Inc(2).Inc(5)
	if got := v.At(2); got != 2 {
		t.Fatalf("At(2) = %d, want 2", got)
	}
	if got := v.At(5); got != 1 {
		t.Fatalf("At(5) = %d, want 1", got)
	}
	if got := v.At(0); got != 0 {
		t.Fatalf("At(0) = %d, want 0", got)
	}
}

func TestIncDoesNotMutateReceiver(t *testing.T) {
	v := Bottom().Inc(1)
	w := v.Inc(1)
	if v.At(1) != 1 {
		t.Fatalf("receiver mutated: v.At(1) = %d, want 1", v.At(1))
	}
	if w.At(1) != 2 {
		t.Fatalf("w.At(1) = %d, want 2", w.At(1))
	}
}

func TestJoinDoesNotMutate(t *testing.T) {
	v := Bottom().Inc(0)
	w := Bottom().Inc(1)
	u := v.Join(w)
	if v.At(1) != 0 || w.At(0) != 0 {
		t.Fatalf("Join mutated operands: v=%v w=%v", v, w)
	}
	if u.At(0) != 1 || u.At(1) != 1 {
		t.Fatalf("Join result wrong: %v", u)
	}
}

func TestLeqBasic(t *testing.T) {
	v := Bottom().Inc(0)
	w := v.Inc(0).Inc(1)
	if !v.Leq(w) {
		t.Fatalf("v ≤ w expected: v=%v w=%v", v, w)
	}
	if w.Leq(v) {
		t.Fatalf("w ≤ v unexpected: v=%v w=%v", v, w)
	}
	// Incomparable pair.
	a := Bottom().Inc(0)
	b := Bottom().Inc(1)
	if a.Leq(b) || b.Leq(a) {
		t.Fatalf("a, b should be incomparable: a=%v b=%v", a, b)
	}
}

func TestString(t *testing.T) {
	v := Bottom().Inc(1).Inc(0).Inc(1)
	if s := v.String(); s != "{t0:1 t1:2}" {
		t.Fatalf("String() = %q, want {t0:1 t1:2}", s)
	}
}

// Property: Join is commutative, associative, idempotent, with Bottom as
// identity — the lattice laws the happens-before tracking relies on.
func TestJoinLatticeLaws(t *testing.T) {
	commutative := func(a1, b1, c1, a2, b2, c2 uint8) bool {
		x, y := genCV(a1, b1, c1), genCV(a2, b2, c2)
		return x.Join(y).Equal(y.Join(x))
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Errorf("Join not commutative: %v", err)
	}
	associative := func(a1, b1, c1, a2, b2, c2, a3, b3, c3 uint8) bool {
		x, y, z := genCV(a1, b1, c1), genCV(a2, b2, c2), genCV(a3, b3, c3)
		return x.Join(y).Join(z).Equal(x.Join(y.Join(z)))
	}
	if err := quick.Check(associative, nil); err != nil {
		t.Errorf("Join not associative: %v", err)
	}
	idempotent := func(a, b, c uint8) bool {
		x := genCV(a, b, c)
		return x.Join(x).Equal(x)
	}
	if err := quick.Check(idempotent, nil); err != nil {
		t.Errorf("Join not idempotent: %v", err)
	}
	identity := func(a, b, c uint8) bool {
		x := genCV(a, b, c)
		return x.Join(Bottom()).Equal(x) && Bottom().Join(x).Equal(x)
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("Bottom not identity: %v", err)
	}
}

// Property: Join is the least upper bound — both operands are ≤ the join,
// and the join is ≤ any other upper bound.
func TestJoinIsLUB(t *testing.T) {
	upper := func(a1, b1, c1, a2, b2, c2 uint8) bool {
		x, y := genCV(a1, b1, c1), genCV(a2, b2, c2)
		j := x.Join(y)
		return x.Leq(j) && y.Leq(j)
	}
	if err := quick.Check(upper, nil); err != nil {
		t.Errorf("Join not an upper bound: %v", err)
	}
	least := func(a1, b1, c1, a2, b2, c2, a3, b3, c3 uint8) bool {
		x, y := genCV(a1, b1, c1), genCV(a2, b2, c2)
		z := genCV(a3, b3, c3)
		if !(x.Leq(z) && y.Leq(z)) {
			return true // z is not an upper bound; vacuous
		}
		return x.Join(y).Leq(z)
	}
	if err := quick.Check(least, nil); err != nil {
		t.Errorf("Join not least: %v", err)
	}
}

// Property: Leq is a partial order — reflexive, antisymmetric (via Equal),
// transitive.
func TestLeqPartialOrder(t *testing.T) {
	reflexive := func(a, b, c uint8) bool {
		x := genCV(a, b, c)
		return x.Leq(x)
	}
	if err := quick.Check(reflexive, nil); err != nil {
		t.Errorf("Leq not reflexive: %v", err)
	}
	antisym := func(a1, b1, c1, a2, b2, c2 uint8) bool {
		x, y := genCV(a1, b1, c1), genCV(a2, b2, c2)
		if x.Leq(y) && y.Leq(x) {
			return x.Equal(y)
		}
		return true
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Errorf("Leq not antisymmetric: %v", err)
	}
	transitive := func(a1, b1, c1, a2, b2, c2, a3, b3, c3 uint8) bool {
		x, y, z := genCV(a1, b1, c1), genCV(a2, b2, c2), genCV(a3, b3, c3)
		if x.Leq(y) && y.Leq(z) {
			return x.Leq(z)
		}
		return true
	}
	if err := quick.Check(transitive, nil); err != nil {
		t.Errorf("Leq not transitive: %v", err)
	}
}

// Property: Inc strictly increases the vector and only in one component.
func TestIncProperties(t *testing.T) {
	prop := func(a, b, c uint8, tid uint8) bool {
		x := genCV(a, b, c)
		tt := memmodel.ThreadID(tid % 4)
		y := x.Inc(tt)
		if !x.Leq(y) || x.Equal(y) {
			return false
		}
		if y.At(tt) != x.At(tt)+1 {
			return false
		}
		for _, other := range []memmodel.ThreadID{0, 1, 2, 3} {
			if other != tt && y.At(other) != x.At(other) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("Inc properties violated: %v", err)
	}
}
