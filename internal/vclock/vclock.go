// Package vclock implements the clock vectors and sequence numbers of the
// paper's Section 3.4 (Figure 3). Clock vectors track the happens-before
// relation over stores; sequence numbers record the TSO order in which
// stores commit to the cache.
//
// A clock vector maps each thread to a logical clock. The paper defines:
//
//	⊥CV            = λτ.0
//	CV1 ∪ CV2      = λτ.max(CV1(τ), CV2(τ))
//	CV1 ≤ CV2      ⇔ ∀τ. CV1(τ) ≤ CV2(τ)
//	incτ(CV)       = bump component τ by one
//
// Every store in a thread has a unique clock — the τ-th component of its
// clock vector at issue time — because incτ is applied on every store
// issue and loads can only raise the *other* components of the issuing
// thread's vector.
//
// Vectors are represented as short slices of (thread, clock) components,
// sorted by thread and free of zero entries. Executions involve a
// handful of threads, so the slice form beats a map on every operation
// the checker's hot path performs: At and Leq allocate nothing, and
// Inc/Join build the result with a single allocation instead of a map.
package vclock

import (
	"fmt"
	"strings"

	"repro/internal/memmodel"
)

// Clock is a single logical clock value: the per-thread issue counter.
type Clock int64

// Seq is a TSO sequence number: the global order in which stores commit
// to the cache within one sub-execution. Seq 0 means "not yet committed"
// (Figure 3 initializes SEQ[st] to 0 on issue).
type Seq int64

// component is one non-zero entry of a clock vector.
type component struct {
	t memmodel.ThreadID
	c Clock
}

// CV is a clock vector. The zero value is ⊥CV. CVs are persistent-style:
// operations return new vectors and never mutate their receivers, so a
// store's vector can be safely retained in the trace after the issuing
// thread's vector advances.
type CV struct {
	// comps is sorted by thread and contains no zero clocks. It is
	// immutable: every operation that changes the vector allocates a
	// fresh slice, so retained vectors never alias a mutable one.
	comps []component
}

// Bottom returns ⊥CV, the vector that is 0 everywhere.
func Bottom() CV { return CV{} }

// At returns the clock component for thread t (0 if absent).
func (v CV) At(t memmodel.ThreadID) Clock {
	for _, e := range v.comps {
		if e.t == t {
			return e.c
		}
		if e.t > t {
			break
		}
	}
	return 0
}

// IsBottom reports whether every component is zero.
func (v CV) IsBottom() bool { return len(v.comps) == 0 }

// Join returns the component-wise maximum of v and w (the ∪ operator).
func (v CV) Join(w CV) CV {
	if len(w.comps) == 0 {
		return v
	}
	if len(v.comps) == 0 {
		return w
	}
	if v.Geq(w) {
		return v // common case: a thread re-reads its own recent store
	}
	out := make([]component, 0, len(v.comps)+len(w.comps))
	i, j := 0, 0
	for i < len(v.comps) && j < len(w.comps) {
		a, b := v.comps[i], w.comps[j]
		switch {
		case a.t == b.t:
			if b.c > a.c {
				a.c = b.c
			}
			out = append(out, a)
			i++
			j++
		case a.t < b.t:
			out = append(out, a)
			i++
		default:
			out = append(out, b)
			j++
		}
	}
	out = append(out, v.comps[i:]...)
	out = append(out, w.comps[j:]...)
	return CV{comps: out}
}

// Leq reports v ≤ w: every component of v is at most the corresponding
// component of w. For two stores in the same sub-execution,
// SCV(st1) ≤ SCV(st2) means st1 happens before st2 (§3.4).
func (v CV) Leq(w CV) bool {
	j := 0
	for _, a := range v.comps {
		for j < len(w.comps) && w.comps[j].t < a.t {
			j++
		}
		if j >= len(w.comps) || w.comps[j].t != a.t || a.c > w.comps[j].c {
			return false
		}
	}
	return true
}

// Geq reports v ≥ w (every component of w is at most v's).
func (v CV) Geq(w CV) bool { return w.Leq(v) }

// Inc returns v with component t incremented (the incτ operator, applied
// on every store issue by thread t).
func (v CV) Inc(t memmodel.ThreadID) CV {
	return v.WithClock(t, v.At(t)+1)
}

// WithClock returns v with component t set to c. It is used when
// reconstructing vectors in tests and by Inc.
func (v CV) WithClock(t memmodel.ThreadID, c Clock) CV {
	out := make([]component, 0, len(v.comps)+1)
	placed := false
	for _, e := range v.comps {
		if !placed && e.t >= t {
			if c != 0 {
				out = append(out, component{t: t, c: c})
			}
			placed = true
			if e.t == t {
				continue
			}
		}
		out = append(out, e)
	}
	if !placed && c != 0 {
		out = append(out, component{t: t, c: c})
	}
	return CV{comps: out}
}

// Threads returns the threads with non-zero components, in ascending
// order. It is the support of the vector. The returned slice is freshly
// allocated; hot paths should prefer ForEach.
func (v CV) Threads() []memmodel.ThreadID {
	ts := make([]memmodel.ThreadID, 0, len(v.comps))
	for _, e := range v.comps {
		ts = append(ts, e.t)
	}
	return ts
}

// ForEach calls f for every non-zero component in ascending thread
// order, without allocating.
func (v CV) ForEach(f func(t memmodel.ThreadID, c Clock)) {
	for _, e := range v.comps {
		f(e.t, e.c)
	}
}

// String renders the vector as {t0:3 t2:1} with threads in ascending
// order; ⊥CV renders as {}.
func (v CV) String() string {
	var b strings.Builder
	b.WriteByte('{')
	for i, e := range v.comps {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "t%d:%d", int(e.t), int64(e.c))
	}
	b.WriteByte('}')
	return b.String()
}

// Equal reports whether two vectors have identical components.
func (v CV) Equal(w CV) bool {
	if len(v.comps) != len(w.comps) {
		return false
	}
	for i, e := range v.comps {
		if w.comps[i] != e {
			return false
		}
	}
	return true
}
