// Package vclock implements the clock vectors and sequence numbers of the
// paper's Section 3.4 (Figure 3). Clock vectors track the happens-before
// relation over stores; sequence numbers record the TSO order in which
// stores commit to the cache.
//
// A clock vector maps each thread to a logical clock. The paper defines:
//
//	⊥CV            = λτ.0
//	CV1 ∪ CV2      = λτ.max(CV1(τ), CV2(τ))
//	CV1 ≤ CV2      ⇔ ∀τ. CV1(τ) ≤ CV2(τ)
//	incτ(CV)       = bump component τ by one
//
// Every store in a thread has a unique clock — the τ-th component of its
// clock vector at issue time — because incτ is applied on every store
// issue and loads can only raise the *other* components of the issuing
// thread's vector.
package vclock

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/memmodel"
)

// Clock is a single logical clock value: the per-thread issue counter.
type Clock int64

// Seq is a TSO sequence number: the global order in which stores commit
// to the cache within one sub-execution. Seq 0 means "not yet committed"
// (Figure 3 initializes SEQ[st] to 0 on issue).
type Seq int64

// CV is a clock vector. The zero value is ⊥CV. CVs are persistent-style:
// operations return new vectors and never mutate their receivers, so a
// store's vector can be safely retained in the trace after the issuing
// thread's vector advances.
type CV struct {
	clocks map[memmodel.ThreadID]Clock
}

// Bottom returns ⊥CV, the vector that is 0 everywhere.
func Bottom() CV { return CV{} }

// At returns the clock component for thread t (0 if absent).
func (v CV) At(t memmodel.ThreadID) Clock { return v.clocks[t] }

// IsBottom reports whether every component is zero.
func (v CV) IsBottom() bool {
	for _, c := range v.clocks {
		if c != 0 {
			return false
		}
	}
	return true
}

// clone returns a mutable copy of the underlying map.
func (v CV) clone() map[memmodel.ThreadID]Clock {
	m := make(map[memmodel.ThreadID]Clock, len(v.clocks)+1)
	for t, c := range v.clocks {
		if c != 0 {
			m[t] = c
		}
	}
	return m
}

// Join returns the component-wise maximum of v and w (the ∪ operator).
func (v CV) Join(w CV) CV {
	if len(w.clocks) == 0 {
		return v
	}
	if len(v.clocks) == 0 {
		return w
	}
	m := v.clone()
	for t, c := range w.clocks {
		if c > m[t] {
			m[t] = c
		}
	}
	return CV{clocks: m}
}

// Leq reports v ≤ w: every component of v is at most the corresponding
// component of w. For two stores in the same sub-execution,
// SCV(st1) ≤ SCV(st2) means st1 happens before st2 (§3.4).
func (v CV) Leq(w CV) bool {
	for t, c := range v.clocks {
		if c > w.clocks[t] {
			return false
		}
	}
	return true
}

// Inc returns v with component t incremented (the incτ operator, applied
// on every store issue by thread t).
func (v CV) Inc(t memmodel.ThreadID) CV {
	m := v.clone()
	m[t]++
	return CV{clocks: m}
}

// WithClock returns v with component t set to c. It is used when
// reconstructing vectors in tests.
func (v CV) WithClock(t memmodel.ThreadID, c Clock) CV {
	m := v.clone()
	if c == 0 {
		delete(m, t)
	} else {
		m[t] = c
	}
	return CV{clocks: m}
}

// Threads returns the threads with non-zero components, in ascending
// order. It is the support of the vector.
func (v CV) Threads() []memmodel.ThreadID {
	ts := make([]memmodel.ThreadID, 0, len(v.clocks))
	for t, c := range v.clocks {
		if c != 0 {
			ts = append(ts, t)
		}
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}

// String renders the vector as {t0:3 t2:1} with threads in ascending
// order; ⊥CV renders as {}.
func (v CV) String() string {
	ts := v.Threads()
	var b strings.Builder
	b.WriteByte('{')
	for i, t := range ts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "t%d:%d", int(t), int64(v.clocks[t]))
	}
	b.WriteByte('}')
	return b.String()
}

// Equal reports whether two vectors have identical components.
func (v CV) Equal(w CV) bool { return v.Leq(w) && w.Leq(v) }
