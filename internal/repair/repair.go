// Package repair turns PSan's robustness violations into applied bug
// fixes for Figure 9 programs: it locates the statement named by a
// violation's fix window, inserts the suggested flush and drain after
// it, and re-runs the checker until no violations remain — the paper's
// workflow ("we simply applied PSan's suggestions and reran the program
// until no robustness violations were reported", §6.2), automated.
package repair

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/interp"
	"repro/internal/lang"
)

// Applied records one fix insertion.
type Applied struct {
	// Violation is the diagnosis the fix repairs.
	Violation *core.Violation
	// Fix is the chosen suggestion (primary when available).
	Fix core.Fix
	// FlushLoc is the location name whose line the inserted flush
	// covers.
	FlushLoc string
}

// String renders the applied fix.
func (a Applied) String() string {
	return fmt.Sprintf("inserted `flushopt %s; sfence;` after %q (thread %d)", a.FlushLoc, a.Fix.AfterLoc, int(a.Fix.Thread))
}

// Apply inserts the violation's suggested flush+drain into the program,
// returning whether a fix site was found. The program is modified in
// place (statement slices are rewritten).
func Apply(prog *lang.Program, compiled *interp.Program, v *core.Violation) (Applied, bool) {
	fix, ok := pickFix(v)
	if !ok {
		return Applied{}, false
	}
	name := compiled.NameOf(v.MissingFlush.Addr)
	if name == "" {
		return Applied{}, false
	}
	if v.SubExec >= len(prog.Phases) {
		return Applied{}, false
	}
	ph := prog.Phases[v.SubExec]
	for _, th := range ph.Threads {
		if th.ID != int(fix.Thread) {
			continue
		}
		if body, done := insertAfter(th.Body, fix.AfterLoc, name); done {
			th.Body = body
			return Applied{Violation: v, Fix: fix, FlushLoc: name}, true
		}
	}
	return Applied{}, false
}

// pickFix prefers the primary flush window, then any flush window.
func pickFix(v *core.Violation) (core.Fix, bool) {
	for _, f := range v.Fixes {
		if f.Kind == core.FixInsertFlush && f.Primary {
			return f, true
		}
	}
	for _, f := range v.Fixes {
		if f.Kind == core.FixInsertFlush {
			return f, true
		}
	}
	return core.Fix{}, false
}

// insertAfter walks a statement block looking for the statement whose
// own label — or one of whose memory expressions' labels — matches
// afterLoc, and inserts `flushopt name; sfence;` right after it.
func insertAfter(ss []lang.Stmt, afterLoc, name string) ([]lang.Stmt, bool) {
	for i, s := range ss {
		if stmtMatches(s, afterLoc) {
			fixed := make([]lang.Stmt, 0, len(ss)+2)
			fixed = append(fixed, ss[:i+1]...)
			fixed = append(fixed,
				&lang.FlushStmt{Pos: s.StmtPos(), Loc: name, Opt: true},
				&lang.FenceStmt{Pos: s.StmtPos(), Full: false})
			fixed = append(fixed, ss[i+1:]...)
			return fixed, true
		}
		// Recurse into nested blocks.
		switch x := s.(type) {
		case *lang.IfStmt:
			if body, done := insertAfter(x.Then, afterLoc, name); done {
				x.Then = body
				return ss, true
			}
			if body, done := insertAfter(x.Else, afterLoc, name); done {
				x.Else = body
				return ss, true
			}
		case *lang.RepeatStmt:
			if body, done := insertAfter(x.Body, afterLoc, name); done {
				x.Body = body
				return ss, true
			}
		case *lang.WhileStmt:
			if body, done := insertAfter(x.Body, afterLoc, name); done {
				x.Body = body
				return ss, true
			}
		}
	}
	return ss, false
}

// stmtMatches reports whether the statement carries the interpreter
// label afterLoc — either as the statement itself or as one of the
// memory-accessing expressions inside it.
func stmtMatches(s lang.Stmt, afterLoc string) bool {
	if label(s, s.StmtPos()) == afterLoc {
		return true
	}
	match := false
	var walkExpr func(lang.Expr)
	walkExpr = func(e lang.Expr) {
		if match {
			return
		}
		switch x := e.(type) {
		case *lang.LoadExpr:
			if label(x, x.Pos) == afterLoc {
				match = true
			}
		case *lang.CASExpr:
			if label(x, x.Pos) == afterLoc {
				match = true
			}
			walkExpr(x.Expected)
			walkExpr(x.New)
		case *lang.FAAExpr:
			if label(x, x.Pos) == afterLoc {
				match = true
			}
			walkExpr(x.Delta)
		case *lang.BinExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case *lang.NotExpr:
			walkExpr(x.E)
		}
	}
	switch x := s.(type) {
	case *lang.LetStmt:
		walkExpr(x.Expr)
	case *lang.StoreStmt:
		walkExpr(x.Expr)
	case *lang.AssertStmt:
		walkExpr(x.Expr)
	case *lang.ExprStmt:
		walkExpr(x.Expr)
	case *lang.IfStmt:
		walkExpr(x.Cond)
	case *lang.WhileStmt:
		walkExpr(x.Cond)
	}
	return match
}

// label mirrors the interpreter's location format.
func label(s fmt.Stringer, pos lang.Pos) string {
	return fmt.Sprintf("%s @%s", s, pos)
}

// Result summarizes a repair loop.
type Result struct {
	// Program is the final (possibly fixed) program.
	Program *lang.Program
	// Applied lists the fixes inserted, in order.
	Applied []Applied
	// Clean reports whether the final program explored violation-free.
	Clean bool
	// Iterations is the number of explore+apply rounds run.
	Iterations int
}

// Loop repeatedly explores the program and applies the first
// un-repaired violation's suggested fix, until the program is clean or
// maxIters rounds have run. Positions shift as statements are inserted,
// so each round re-parses the formatted program to refresh labels.
func Loop(name string, prog *lang.Program, opt explore.Options, maxIters int) (*Result, error) {
	res := &Result{Program: prog}
	for iter := 0; iter < maxIters; iter++ {
		res.Iterations = iter + 1
		compiled := interp.New(name, res.Program)
		run := explore.Run(compiled, opt)
		if len(run.Violations) == 0 {
			res.Clean = true
			return res, nil
		}
		fixedAny := false
		for _, v := range run.Violations {
			if app, ok := Apply(res.Program, compiled, v); ok {
				res.Applied = append(res.Applied, app)
				fixedAny = true
				break // re-explore: positions and labels changed
			}
		}
		if !fixedAny {
			return res, fmt.Errorf("repair: no applicable fix among %d violations", len(run.Violations))
		}
		// Re-parse so statement positions (and hence labels) are fresh.
		reparsed, err := lang.Parse(lang.Format(res.Program))
		if err != nil {
			return res, fmt.Errorf("repair: reformatted program does not parse: %v", err)
		}
		res.Program = reparsed
	}
	// Final verdict after the last application.
	compiled := interp.New(name, res.Program)
	run := explore.Run(compiled, opt)
	res.Clean = len(run.Violations) == 0
	return res, nil
}
