package repair

import (
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/lang"
)

func mustParse(t *testing.T, src string) *lang.Program {
	t.Helper()
	p, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

const figure2Src = `
phase {
  thread 0 {
    x = 1;
    y = 1;
    x = 2;
    y = 2;
  }
}
phase {
  thread 0 {
    let r1 = load(x);
    let r2 = load(y);
  }
}`

// The repair loop must drive Figure 2 to a clean program by inserting
// the suggested flushes, and the result must still parse and explore
// violation-free.
func TestLoopRepairsFigure2(t *testing.T) {
	prog := mustParse(t, figure2Src)
	res, err := Loop("fig2", prog, explore.Options{Mode: explore.ModelCheck, Executions: 10000}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Fatalf("program not clean after %d iterations:\n%s", res.Iterations, lang.Format(res.Program))
	}
	if len(res.Applied) == 0 {
		t.Fatal("no fixes applied")
	}
	out := lang.Format(res.Program)
	if !strings.Contains(out, "flushopt") || !strings.Contains(out, "sfence") {
		t.Fatalf("fixed program missing flushes:\n%s", out)
	}
}

// Figure 7's fix goes into thread 1, after the load — the inter-thread
// insertion the paper highlights PSan uniquely suggests.
func TestLoopRepairsFigure7InSecondThread(t *testing.T) {
	prog := mustParse(t, `
phase {
  thread 0 {
    x = 1;
    flush x;
  }
  thread 1 {
    let r1 = load(x);
    y = r1;
    flush y;
  }
}
phase {
  thread 0 {
    let r2 = load(x);
    let r3 = load(y);
  }
}`)
	res, err := Loop("fig7", prog, explore.Options{Mode: explore.Random, Executions: 800, Seed: 11}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean {
		t.Fatalf("program not clean:\n%s", lang.Format(res.Program))
	}
	foundThread1 := false
	for _, a := range res.Applied {
		if a.Fix.Thread == 1 && a.FlushLoc == "x" {
			foundThread1 = true
		}
	}
	if !foundThread1 {
		t.Fatalf("expected a flush of x inserted in thread 1, got %v", res.Applied)
	}
	// The fix must sit after the load in thread 1's body.
	out := lang.Format(res.Program)
	t1 := out[strings.Index(out, "thread 1"):]
	loadIdx := strings.Index(t1, "load(x)")
	flushIdx := strings.Index(t1, "flushopt x")
	if loadIdx < 0 || flushIdx < 0 || flushIdx < loadIdx {
		t.Fatalf("flush not inserted after the load:\n%s", out)
	}
}

// A clean program needs no iterations beyond the first exploration.
func TestLoopNoopOnRobustProgram(t *testing.T) {
	prog := mustParse(t, `
sameline x y;
phase { thread 0 { x = 1; y = 1; x = 2; y = 2; } }
phase { thread 0 { let r1 = load(x); let r2 = load(y); } }`)
	res, err := Loop("sameline", prog, explore.Options{Mode: explore.ModelCheck, Executions: 10000}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Clean || len(res.Applied) != 0 || res.Iterations != 1 {
		t.Fatalf("robust program mishandled: %+v", res)
	}
}

// Formatted output of a repaired program must round-trip through the
// parser.
func TestFormatRoundTrip(t *testing.T) {
	prog := mustParse(t, figure2Src)
	res, err := Loop("fig2", prog, explore.Options{Mode: explore.ModelCheck, Executions: 10000}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lang.Parse(lang.Format(res.Program)); err != nil {
		t.Fatalf("round trip failed: %v\n%s", err, lang.Format(res.Program))
	}
}
