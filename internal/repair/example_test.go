package repair_test

import (
	"fmt"

	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/repair"
)

// ExampleLoop repairs the paper's Figure 2 automatically: PSan's
// suggested flushes are inserted and the program re-explored until no
// robustness violations remain.
func ExampleLoop() {
	prog, err := lang.Parse(`
phase {
  thread 0 {
    x = 1;
    y = 1;
    x = 2;
    y = 2;
  }
}
phase {
  thread 0 {
    let r1 = load(x);
    let r2 = load(y);
  }
}`)
	if err != nil {
		panic(err)
	}
	res, err := repair.Loop("figure2", prog, explore.Options{
		Mode:       explore.ModelCheck,
		Executions: 10000,
	}, 10)
	if err != nil {
		panic(err)
	}
	fmt.Printf("clean after %d fixes\n", len(res.Applied))
	fmt.Print(lang.Format(res.Program))
	// Output:
	// clean after 3 fixes
	// phase {
	//   thread 0 {
	//     x = 1;
	//     flushopt x;
	//     sfence;
	//     y = 1;
	//     flushopt y;
	//     sfence;
	//     x = 2;
	//     flushopt x;
	//     sfence;
	//     y = 2;
	//   }
	// }
	// phase {
	//   thread 0 {
	//     let r1 = load(x);
	//     let r2 = load(y);
	//   }
	// }
}
