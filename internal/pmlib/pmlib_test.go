package pmlib

import (
	"testing"

	"repro/internal/benchmarks/bench"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

const poolBase = memmodel.Addr(0x800000)

func fixedPool(t *testing.T) (*pmem.World, *pmem.Thread, *Pool) {
	t.Helper()
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	p := Create(th, poolBase, Options{Variant: bench.Fixed})
	return w, th, p
}

func TestCreateOpenRoundTrip(t *testing.T) {
	w, th, p := fixedPool(t)
	root := p.Alloc(th, 16)
	p.SetRoot(th, root)
	w.Crash()
	p2, ok := Open(th, poolBase, Options{Variant: bench.Fixed})
	if !ok {
		t.Fatal("Open failed after clean create")
	}
	if got := p2.Root(th); got != root {
		t.Fatalf("root = %v, want %v", got, root)
	}
}

func TestOpenRejectsUnformattedPool(t *testing.T) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	if _, ok := Open(th, poolBase, Options{}); ok {
		t.Fatal("Open must fail on an unformatted pool")
	}
}

func TestAllocBumpsAndAligns(t *testing.T) {
	_, th, p := fixedPool(t)
	a := p.Alloc(th, 24)
	b := p.Alloc(th, 8)
	if b < a+24 {
		t.Fatalf("allocations overlap: %v then %v", a, b)
	}
	c := p.AllocLines(th, 1)
	if c%memmodel.CacheLineSize != 0 {
		t.Fatalf("AllocLines not line aligned: %v", c)
	}
}

func TestTxSetCommitApplies(t *testing.T) {
	_, th, p := fixedPool(t)
	cell := p.Alloc(th, 8)
	tx := p.TxBegin(th)
	tx.Set(cell, 42)
	tx.Commit()
	if got := th.Load(cell, "read"); got != 42 {
		t.Fatalf("cell = %d, want 42", got)
	}
}

func TestTxOrCommitApplies(t *testing.T) {
	_, th, p := fixedPool(t)
	cell := p.Alloc(th, 8)
	th.Store(cell, 0b0101, "init")
	th.Persist(cell, 8, "persist init")
	tx := p.TxBegin(th)
	tx.Or(cell, 0b0010)
	tx.Commit()
	if got := th.Load(cell, "read"); got != 0b0111 {
		t.Fatalf("cell = %b, want 111", got)
	}
}

func TestTxOverflowPanics(t *testing.T) {
	_, th, p := fixedPool(t)
	cell := p.Alloc(th, 8)
	tx := p.TxBegin(th)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic at capacity")
		}
	}()
	for i := 0; i <= MaxTxEntries; i++ {
		tx.Set(cell, memmodel.Value(i))
	}
}

// A crash between the log seal and the retire must be replayed by
// Recover: the committed transaction survives.
func TestRecoverReplaysSealedLog(t *testing.T) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	p := Create(th, poolBase, Options{Variant: bench.Fixed})
	cell := p.Alloc(th, 8)
	p.SetRoot(th, cell)

	// Replicate Commit's seal without the apply/retire, simulating the
	// crash window: stage the entry, seal, stop.
	tx := p.TxBegin(th)
	tx.Set(cell, 7)
	gen := th.Load(p.base+ulogGenOff, "gen")
	sealed := append([]memmodel.Value{p.laneValue(gen)}, tx.words...)
	th.Store(p.base+ulogCountOff, memmodel.Value(tx.count), "count")
	th.Store(p.base+ulogCsumOff, checksum(gen, sealed), "seal")
	th.Persist(p.base+ulogCsumOff, memmodel.WordSize, "persist seal")
	th.Persist(p.base+laneOff, memmodel.WordSize, "persist lane")
	th.Persist(p.base+ulogEntriesOff, 2*memmodel.WordSize*MaxTxEntries, "persist entries")
	w.Crash()

	p2, ok := Open(th, poolBase, Options{Variant: bench.Fixed})
	if !ok {
		t.Fatal("Open failed")
	}
	if !p2.Recover(th) {
		t.Fatal("Recover should replay the sealed log")
	}
	if got := th.Load(cell, "read"); got != 7 {
		t.Fatalf("cell = %d after replay, want 7", got)
	}
}

// A retired log (gen already bumped) must not be replayed twice.
func TestRecoverSkipsRetiredLog(t *testing.T) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	p := Create(th, poolBase, Options{Variant: bench.Fixed})
	cell := p.Alloc(th, 8)
	tx := p.TxBegin(th)
	tx.Set(cell, 7)
	tx.Commit()
	// Overwrite the cell outside any tx, then "crash" and recover: the
	// old log must not clobber the newer value.
	th.Store(cell, 9, "direct overwrite")
	th.Persist(cell, 8, "persist overwrite")
	w.Crash()
	p2, _ := Open(th, poolBase, Options{Variant: bench.Fixed})
	if p2.Recover(th) {
		t.Fatal("Recover replayed a retired log")
	}
	if got := th.Load(cell, "read"); got != 9 {
		t.Fatalf("cell = %d, want 9", got)
	}
}

// A torn log (entries not persisted, checksum mismatch post-crash) is
// discarded.
func TestRecoverDiscardsTornLog(t *testing.T) {
	// Use the buggy variant (entries unflushed) and read with a
	// stale-preferring chooser so the torn entries are observed.
	w2 := pmem.NewWorld(pmem.Config{CrashTarget: -1, Chooser: pmem.ChooseOldest})
	th := w2.Thread(0)
	p := Create(th, poolBase, Options{Variant: bench.Buggy})
	cell := p.Alloc(th, 8)
	tx := p.TxBegin(th)
	tx.Set(cell, 7)
	gen := th.Load(p.base+ulogGenOff, "gen")
	sealed := append([]memmodel.Value{p.laneValue(gen)}, tx.words...)
	th.Store(p.base+ulogCountOff, memmodel.Value(tx.count), "count")
	th.Store(p.base+ulogCsumOff, checksum(gen, sealed), "seal")
	th.Persist(p.base+ulogCsumOff, memmodel.WordSize, "persist seal")
	// Entries NOT persisted: a crash tears them.
	w2.Crash()
	p2, ok := Open(th, poolBase, Options{Variant: bench.Buggy})
	if !ok {
		t.Fatal("Open failed")
	}
	if p2.Recover(th) {
		t.Fatal("Recover replayed a torn log")
	}
}

func TestChecksumChangesWithGenAndContent(t *testing.T) {
	a := checksum(1, []memmodel.Value{1, 2})
	b := checksum(2, []memmodel.Value{1, 2})
	c := checksum(1, []memmodel.Value{1, 3})
	if a == b || a == c {
		t.Fatalf("checksum collisions: %x %x %x", a, b, c)
	}
	if checksum(0, nil) == 0 {
		t.Fatal("checksum must never be zero (zero marks no seal)")
	}
}

// An undo transaction that crashes mid-update rolls back: the snapshot
// was persisted before the mutation, so recovery restores the
// pre-image.
func TestUndoRollbackOnCrash(t *testing.T) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	p := Create(th, poolBase, Options{Variant: bench.Fixed})
	cell := p.Alloc(th, 8)
	th.Store(cell, 5, "init")
	th.Persist(cell, 8, "persist init")

	utx := p.UndoTxBegin(th)
	utx.Snapshot(cell)
	th.Store(cell, 9, "mutate")
	th.Persist(cell, 8, "persist mutate")
	// Crash before Commit: the mutation must be rolled back.
	w.Crash()
	p2, _ := Open(th, poolBase, Options{Variant: bench.Fixed})
	if !p2.RecoverUndo(th) {
		t.Fatal("RecoverUndo should roll back the pending tx")
	}
	if got := th.Load(cell, "read"); got != 5 {
		t.Fatalf("cell = %d after rollback, want 5", got)
	}
}

// A committed undo transaction is not rolled back.
func TestUndoCommitSticks(t *testing.T) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	p := Create(th, poolBase, Options{Variant: bench.Fixed})
	cell := p.Alloc(th, 8)
	utx := p.UndoTxBegin(th)
	utx.Snapshot(cell)
	th.Store(cell, 9, "mutate")
	th.Persist(cell, 8, "persist mutate")
	utx.Commit()
	w.Crash()
	p2, _ := Open(th, poolBase, Options{Variant: bench.Fixed})
	if p2.RecoverUndo(th) {
		t.Fatal("RecoverUndo rolled back a committed tx")
	}
	if got := th.Load(cell, "read"); got != 9 {
		t.Fatalf("cell = %d, want 9", got)
	}
}

// Multiple snapshots roll back in reverse order, restoring every word.
func TestUndoMultiWordRollback(t *testing.T) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	p := Create(th, poolBase, Options{Variant: bench.Fixed})
	a, b := p.Alloc(th, 8), p.Alloc(th, 8)
	th.Store(a, 1, "a init")
	th.Store(b, 2, "b init")
	th.Persist(a, 8, "pa")
	th.Persist(b, 8, "pb")
	utx := p.UndoTxBegin(th)
	utx.Snapshot(a)
	th.Store(a, 11, "a mutate")
	th.Persist(a, 8, "pa2")
	utx.Snapshot(b)
	th.Store(b, 22, "b mutate")
	th.Persist(b, 8, "pb2")
	w.Crash()
	p2, _ := Open(th, poolBase, Options{Variant: bench.Fixed})
	if !p2.RecoverUndo(th) {
		t.Fatal("rollback expected")
	}
	if av, bv := th.Load(a, "ra"), th.Load(b, "rb"); av != 1 || bv != 2 {
		t.Fatalf("(a, b) = (%d, %d), want (1, 2)", av, bv)
	}
}

// Sequential undo transactions do not interfere: a retired log never
// validates against the next generation.
func TestUndoSequentialTransactions(t *testing.T) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	p := Create(th, poolBase, Options{Variant: bench.Fixed})
	cell := p.Alloc(th, 8)
	for i := memmodel.Value(1); i <= 3; i++ {
		utx := p.UndoTxBegin(th)
		utx.Snapshot(cell)
		th.Store(cell, i*10, "mutate")
		th.Persist(cell, 8, "persist")
		utx.Commit()
	}
	w.Crash()
	p2, _ := Open(th, poolBase, Options{Variant: bench.Fixed})
	if p2.RecoverUndo(th) {
		t.Fatal("no pending tx; nothing to roll back")
	}
	if got := th.Load(cell, "read"); got != 30 {
		t.Fatalf("cell = %d, want 30", got)
	}
}

func TestUndoSnapshotCapacityPanics(t *testing.T) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	p := Create(th, poolBase, Options{Variant: bench.Fixed})
	cell := p.Alloc(th, 8)
	utx := p.UndoTxBegin(th)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic at snapshot capacity")
		}
	}()
	for i := 0; i <= MaxUndoEntries; i++ {
		utx.Snapshot(cell)
	}
}

// Abort restores the pre-images immediately and retires the log.
func TestUndoAbortRestores(t *testing.T) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	p := Create(th, poolBase, Options{Variant: bench.Fixed})
	a, b := p.Alloc(th, 8), p.Alloc(th, 8)
	th.Store(a, 1, "a init")
	th.Store(b, 2, "b init")
	th.Persist(a, 8, "pa")
	th.Persist(b, 8, "pb")
	utx := p.UndoTxBegin(th)
	utx.Snapshot(a)
	th.Store(a, 11, "a mutate")
	utx.Snapshot(b)
	th.Store(b, 22, "b mutate")
	utx.Abort()
	if av, bv := th.Load(a, "ra"), th.Load(b, "rb"); av != 1 || bv != 2 {
		t.Fatalf("(a, b) = (%d, %d) after abort, want (1, 2)", av, bv)
	}
	// The aborted log must not replay after a crash.
	w.Crash()
	p2, _ := Open(th, poolBase, Options{Variant: bench.Fixed})
	if p2.RecoverUndo(th) {
		t.Fatal("aborted log replayed")
	}
}
