package pmlib

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/pmem"
)

// Tx is a redo-log transaction: Set and Or operations are staged in the
// pool's ulog and applied at Commit. The protocol mirrors libpmemobj:
//
//  1. the active ulog is stored into the transaction lane (bug #33: the
//     store is not flushed);
//  2. each operation appends a ulog_entry_base (bugs #34/#35: the entry
//     "memcpy" is not flushed before the checksum commits);
//  3. Commit seals the log with a checksum over the entries (persisted),
//     applies the staged stores to their targets (persisted), and
//     retires the log by bumping gen_num (persisted).
//
// A crash between (3)'s seal and retire is recovered by replaying the
// log; the checksum rejects torn logs.
type Tx struct {
	p       *Pool
	th      *pmem.Thread
	count   int
	words   []memmodel.Value // staged entry words for the checksum
	applied bool
}

// laneValue tags the ulog address with the generation, as libpmemobj
// lanes reference the specific ulog incarnation they fill; a lane from
// an older generation therefore fails the seal's checksum.
func (p *Pool) laneValue(gen memmodel.Value) memmodel.Value {
	return memmodel.Value(p.base+ulogEntriesOff) | gen<<48
}

// TxBegin opens a transaction on the pool.
func (p *Pool) TxBegin(th *pmem.Thread) *Tx {
	tx := &Tx{p: p, th: th}
	gen := th.Load(p.base+ulogGenOff, "read ulog gen_num in tx_begin")
	// "store the ulog": the lane points at the log being filled —
	// bug #33: not flushed.
	th.Store(p.base+laneOff, p.laneValue(gen), "storing ulog in libpmemobj library") // bug #33
	p.persistIfFixed(th, p.base+laneOff, memmodel.WordSize, "persist tx lane")
	return tx
}

// append stages one ulog entry.
func (tx *Tx) append(op int, target memmodel.Addr, operand memmodel.Value, loc string) {
	if tx.count >= MaxTxEntries {
		panic(fmt.Sprintf("pmlib: transaction exceeds %d entries", MaxTxEntries))
	}
	ea := tx.p.entryAddr(tx.count)
	w0 := memmodel.Value(op)<<56 | memmodel.Value(target)
	tx.th.Store(ea, w0, loc)
	tx.th.Store(ea+memmodel.WordSize, operand, loc)
	tx.p.persistIfFixed(tx.th, ea, 2*memmodel.WordSize, "persist ulog entry")
	tx.words = append(tx.words, w0, operand)
	tx.count++
}

// Set stages a word store of val to target (ULOG_OPERATION_SET); the
// entry write is the "memcpy ... on a single ulog_entry_base" — bug #34.
func (tx *Tx) Set(target memmodel.Addr, val memmodel.Value) {
	tx.append(opSet, target, val, "memcpy on a single ulog_entry_base in libpmemobj") // bug #34
}

// Or stages target |= mask (ULOG_OPERATION_OR) — bug #35.
func (tx *Tx) Or(target memmodel.Addr, mask memmodel.Value) {
	tx.append(opOr, target, mask, "ULOG_OPERATION_OR on a single ulog_entry_base in libpmemobj") // bug #35
}

// Commit seals, applies, and retires the transaction.
func (tx *Tx) Commit() {
	th, p := tx.th, tx.p
	gen := th.Load(p.base+ulogGenOff, "read ulog gen_num in commit")
	// Seal: count and checksum, persisted together (they share the ulog
	// header line, so one flush covers both — as in the original). The
	// checksum covers the lane pointer as well as the entries, the way
	// libpmemobj's ulog header checksum covers its chain pointer.
	sealed := append([]memmodel.Value{p.laneValue(gen)}, tx.words...)
	th.Store(p.base+ulogCountOff, memmodel.Value(tx.count), "ulog count in commit")
	th.Store(p.base+ulogCsumOff, checksum(gen, sealed), "ulog checksum seal in commit")
	th.Persist(p.base+ulogCsumOff, memmodel.WordSize, "persist ulog seal")
	// Apply the staged operations to their targets, durably.
	tx.apply(gen)
	// Retire: bump the generation so the sealed log is no longer valid.
	th.Store(p.base+ulogGenOff, gen+1, "ulog gen_num retire in commit")
	th.Persist(p.base+ulogGenOff, memmodel.WordSize, "persist ulog retire")
	tx.applied = true
}

// apply replays the staged entries from the transaction's own buffer.
func (tx *Tx) apply(gen memmodel.Value) {
	th := tx.th
	for i := 0; i < tx.count; i++ {
		w0, w1 := tx.words[2*i], tx.words[2*i+1]
		target := memmodel.Addr(w0 & (1<<56 - 1))
		op := int(w0 >> 56)
		switch op {
		case opSet:
			th.Store(target, w1, "tx apply set")
		case opOr:
			old := th.Load(target, "tx apply or read")
			th.Store(target, old|w1, "tx apply or")
		}
		th.Persist(target, memmodel.WordSize, "persist tx apply")
	}
	_ = gen
}

// Recover replays a sealed-but-unretired redo log after a crash,
// validating the checksum first. With checksum annotations enabled, the
// log reads are deferred (§6.4) so torn-log observations are harmless;
// without them PSan reports rows #33–#35. It returns whether a log was
// replayed.
func (p *Pool) Recover(th *pmem.Thread) bool {
	gen := th.Load(p.base+ulogGenOff, "read ulog gen_num in recovery")
	count := int(th.Load(p.base+ulogCountOff, "read ulog count in recovery"))
	seal := th.Load(p.base+ulogCsumOff, "read ulog checksum in recovery")
	if seal == 0 || count < 0 || count > MaxTxEntries {
		return false
	}
	if p.annotate {
		th.BeginChecksum()
	}
	lane := th.Load(p.base+laneOff, "read tx lane in recovery")
	words := make([]memmodel.Value, 0, 2*count)
	for i := 0; i < count; i++ {
		ea := p.entryAddr(i)
		words = append(words,
			th.Load(ea, "read ulog entry word0 in recovery"),
			th.Load(ea+memmodel.WordSize, "read ulog entry word1 in recovery"))
	}
	valid := checksum(gen, append([]memmodel.Value{lane}, words...)) == seal
	if p.annotate {
		th.EndChecksum(valid)
	}
	if !valid {
		// Torn log: discard, exactly like libpmemobj.
		return false
	}
	for i := 0; i < count; i++ {
		w0, w1 := words[2*i], words[2*i+1]
		target := memmodel.Addr(w0 & (1<<56 - 1))
		switch int(w0 >> 56) {
		case opSet:
			th.Store(target, w1, "recovery replay set")
		case opOr:
			old := th.Load(target, "recovery replay or read")
			th.Store(target, old|w1, "recovery replay or")
		default:
			return false
		}
		th.Persist(target, memmodel.WordSize, "persist recovery replay")
	}
	// Retire the replayed log.
	th.Store(p.base+ulogGenOff, gen+1, "ulog gen_num retire in recovery")
	th.Persist(p.base+ulogGenOff, memmodel.WordSize, "persist recovery retire")
	return true
}
