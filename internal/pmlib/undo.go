package pmlib

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/pmem"
)

// Undo-log transactions: libpmemobj's other log flavor. Where the redo
// log stages new values and applies them at commit, the undo log
// snapshots pre-images (pmemobj_tx_add_range) so a crash mid-update can
// roll the object back. Snapshots are persisted synchronously before
// the caller mutates the covered word — the invariant the whole scheme
// rests on — and recovery rolls back any sealed-but-uncommitted log in
// reverse order.

const (
	// Undo area layout, after the redo entries and before the heap
	// header: header line + entry lines.
	undoGenOff     = 8*memmodel.CacheLineSize + 0
	undoCsumOff    = 8*memmodel.CacheLineSize + 8
	undoCountOff   = 8*memmodel.CacheLineSize + 16
	undoEntriesOff = 9 * memmodel.CacheLineSize
	// MaxUndoEntries is the snapshot capacity per transaction.
	MaxUndoEntries = 16
)

// UndoTx is an open undo-log transaction.
type UndoTx struct {
	p     *Pool
	th    *pmem.Thread
	count int
	words []memmodel.Value
	gen   memmodel.Value
}

func (p *Pool) undoEntryAddr(i int) memmodel.Addr {
	return p.base + undoEntriesOff + memmodel.Addr(i*2*memmodel.WordSize)
}

// UndoTxBegin opens an undo transaction. The log header is reset
// durably so stale entries from earlier generations cannot validate.
func (p *Pool) UndoTxBegin(th *pmem.Thread) *UndoTx {
	gen := th.Load(p.base+undoGenOff, "read undo gen in tx_begin")
	th.Store(p.base+undoCountOff, 0, "undo count reset in tx_begin")
	th.Store(p.base+undoCsumOff, 0, "undo checksum reset in tx_begin")
	th.Persist(p.base+undoCsumOff, memmodel.WordSize, "persist undo reset")
	return &UndoTx{p: p, th: th, gen: gen}
}

// Snapshot records target's current value in the undo log and persists
// the entry and the reseal before returning — only then may the caller
// overwrite the word (pmemobj_tx_add_range's contract).
func (utx *UndoTx) Snapshot(target memmodel.Addr) {
	if utx.count >= MaxUndoEntries {
		panic(fmt.Sprintf("pmlib: undo transaction exceeds %d snapshots", MaxUndoEntries))
	}
	th, p := utx.th, utx.p
	pre := th.Load(target, "read pre-image in tx_add_range")
	ea := p.undoEntryAddr(utx.count)
	th.Store(ea, memmodel.Value(target), "undo entry target in tx_add_range")
	th.Store(ea+memmodel.WordSize, pre, "undo entry pre-image in tx_add_range")
	th.Persist(ea, 2*memmodel.WordSize, "persist undo entry")
	utx.words = append(utx.words, memmodel.Value(target), pre)
	utx.count++
	// Reseal the header over the extended entry list, durably, so the
	// log is valid the instant the caller may mutate.
	th.Store(p.base+undoCountOff, memmodel.Value(utx.count), "undo count in tx_add_range")
	th.Store(p.base+undoCsumOff, checksum(utx.gen, utx.words), "undo checksum in tx_add_range")
	th.Persist(p.base+undoCsumOff, memmodel.WordSize, "persist undo seal")
}

// Commit retires the undo log: the generation bump invalidates the
// seal, so recovery will not roll back.
func (utx *UndoTx) Commit() {
	th, p := utx.th, utx.p
	th.Store(p.base+undoGenOff, utx.gen+1, "undo gen retire in tx_commit")
	th.Persist(p.base+undoGenOff, memmodel.WordSize, "persist undo retire")
}

// Abort rolls the transaction back immediately (pmemobj_tx_abort): the
// pre-images are restored in reverse order, durably, and the log is
// retired.
func (utx *UndoTx) Abort() {
	th, p := utx.th, utx.p
	for i := utx.count - 1; i >= 0; i-- {
		target := memmodel.Addr(utx.words[2*i])
		th.Store(target, utx.words[2*i+1], "undo abort restore")
		th.Persist(target, memmodel.WordSize, "persist undo abort")
	}
	th.Store(p.base+undoGenOff, utx.gen+1, "undo gen retire in tx_abort")
	th.Persist(p.base+undoGenOff, memmodel.WordSize, "persist undo abort retire")
}

// RecoverUndo rolls back a pending undo transaction after a crash: if
// the sealed log validates against the current generation, the
// pre-images are restored in reverse order and persisted, then the log
// is retired. It reports whether a rollback happened.
func (p *Pool) RecoverUndo(th *pmem.Thread) bool {
	gen := th.Load(p.base+undoGenOff, "read undo gen in recovery")
	count := int(th.Load(p.base+undoCountOff, "read undo count in recovery"))
	seal := th.Load(p.base+undoCsumOff, "read undo checksum in recovery")
	if seal == 0 || count <= 0 || count > MaxUndoEntries {
		return false
	}
	if p.annotate {
		th.BeginChecksum()
	}
	words := make([]memmodel.Value, 0, 2*count)
	for i := 0; i < count; i++ {
		ea := p.undoEntryAddr(i)
		words = append(words,
			th.Load(ea, "read undo entry target in recovery"),
			th.Load(ea+memmodel.WordSize, "read undo entry pre-image in recovery"))
	}
	valid := checksum(gen, words) == seal
	if p.annotate {
		th.EndChecksum(valid)
	}
	if !valid {
		return false
	}
	for i := count - 1; i >= 0; i-- {
		target := memmodel.Addr(words[2*i])
		th.Store(target, words[2*i+1], "undo rollback restore")
		th.Persist(target, memmodel.WordSize, "persist undo rollback")
	}
	th.Store(p.base+undoGenOff, gen+1, "undo gen retire in recovery")
	th.Persist(p.base+undoGenOff, memmodel.WordSize, "persist undo recovery retire")
	return true
}
