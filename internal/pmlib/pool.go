// Package pmlib is a PMDK-like persistent memory library built on the
// simulated Px86 machine: a pool with a header and root object (libpmem/
// libpmemobj's PMEMobjpool), a pool allocator, and a redo-log ("ulog")
// transaction API with checksummed log entries.
//
// The Buggy variant reproduces the library-level violations of the
// paper's Table 2:
//
//	#32 PMEMobjpool     memcpy operation on pool object in libpmemobj
//	#33 ulog            storing ulog in libpmemobj library
//	#34 ulog_entry_base memcpy in applying modifications on a single ulog_entry_base
//	#35 ulog_entry_base applying ULOG_OPERATION_OR on a single ulog_entry_base
//
// Violations #33–#35 are the paper's "harmless" class (§6.4): the redo
// log is validated by a checksum, and torn log contents are discarded by
// recovery. With checksum annotations enabled, PSan defers the log reads
// until validation and reports nothing for them; without annotations the
// three rows are reported, exactly as Table 2 does.
package pmlib

import (
	"repro/internal/benchmarks/bench"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

const (
	// Pool header (lines 0–1 of the pool): the magic word on its own
	// line, then the layout descriptor written by the pmemobj_create
	// "memcpy". The real PMEMobjpool header spans many cache lines, so
	// persisting the magic never covers the descriptor.
	hdrMagicOff   = 0
	hdrLayout0Off = memmodel.CacheLineSize
	hdrLayout1Off = memmodel.CacheLineSize + 8
	hdrVersionOff = memmodel.CacheLineSize + 16

	// PoolMagic marks an initialized pool header.
	PoolMagic = 0x504d454d // "PMEM"

	// Ulog header line (line 2): generation number, checksum, entry
	// count.
	ulogGenOff   = 2*memmodel.CacheLineSize + 0
	ulogCsumOff  = 2*memmodel.CacheLineSize + 8
	ulogCountOff = 2*memmodel.CacheLineSize + 16

	// Transaction lane line (line 3): the slot the active ulog is
	// "stored" into when a transaction begins (bug #33's store).
	laneOff = 3 * memmodel.CacheLineSize

	// Ulog entries (lines 4..7): two words each — (op<<56 | target
	// offset) and the operand.
	ulogEntriesOff = 4 * memmodel.CacheLineSize
	// MaxTxEntries is the redo-log capacity per transaction.
	MaxTxEntries = 16

	// The undo log occupies lines 8–12 (see undo.go); the heap
	// allocator header and heap base follow it.
	heapHdrOff  = 13 * memmodel.CacheLineSize
	heapBaseOff = 14 * memmodel.CacheLineSize

	// Root object pointer cell lives in the heap header line.
	rootPtrOff = heapHdrOff + 8

	opSet = 0
	opOr  = 1
)

// Pool is an open simulated persistent-memory pool.
type Pool struct {
	base memmodel.Addr
	v    bench.Variant
	// annotate enables the §6.4 checksum annotations during recovery.
	annotate bool
}

// Options configures pool creation and recovery.
type Options struct {
	// Variant selects the buggy (as-shipped) or fixed library.
	Variant bench.Variant
	// AnnotateChecksums marks the redo-log validation reads as a
	// checksum region so PSan treats torn-log observations as harmless.
	AnnotateChecksums bool
}

func (p *Pool) persistIfFixed(th *pmem.Thread, a memmodel.Addr, size int, loc string) {
	if p.v == bench.Fixed {
		th.Persist(a, size, loc)
	}
}

// Create formats a pool at base: it writes the pool header (the
// PMEMobjpool "memcpy", bug #32), initializes the ulog and the heap, and
// returns the open pool.
func Create(th *pmem.Thread, base memmodel.Addr, opt Options) *Pool {
	p := &Pool{base: base, v: opt.Variant, annotate: opt.AnnotateChecksums}
	// pmemobj_create copies the layout descriptor into the pool object
	// with a plain memcpy — bug #32: no flush.
	th.Store(base+hdrLayout0Off, 0x6c61796f, "memcpy on pool object in libpmemobj (layout[0])") // bug #32
	th.Store(base+hdrLayout1Off, 0x75740000, "memcpy on pool object in libpmemobj (layout[1])") // bug #32
	th.Store(base+hdrVersionOff, 1, "memcpy on pool object in libpmemobj (version)")            // bug #32
	p.persistIfFixed(th, base+hdrLayout0Off, 3*memmodel.WordSize, "persist pool header body")
	// The magic word is the commit store for the header and is
	// persisted even in the original.
	th.Store(base+hdrMagicOff, PoolMagic, "pool header magic in libpmemobj")
	th.Persist(base+hdrMagicOff, memmodel.WordSize, "persist pool header magic")
	// Ulog and heap bootstrap are zero-initialized and persisted.
	th.Store(base+ulogGenOff, 1, "ulog gen_num init")
	th.Store(base+ulogCsumOff, 0, "ulog checksum init")
	th.Store(base+ulogCountOff, 0, "ulog count init")
	th.Persist(base+ulogGenOff, 3*memmodel.WordSize, "persist ulog header init")
	th.Store(base+heapHdrOff, memmodel.Value(base+heapBaseOff), "heap next init")
	th.Persist(base+heapHdrOff, memmodel.WordSize, "persist heap next init")
	return p
}

// Open reattaches to an existing pool after a crash. It reads the header
// the way pmemobj_open does, which is where bug #32 becomes observable.
func Open(th *pmem.Thread, base memmodel.Addr, opt Options) (*Pool, bool) {
	p := &Pool{base: base, v: opt.Variant, annotate: opt.AnnotateChecksums}
	magic := th.Load(base+hdrMagicOff, "read pool magic in pmemobj_open")
	th.Load(base+hdrLayout0Off, "read pool layout[0] in pmemobj_open")
	th.Load(base+hdrLayout1Off, "read pool layout[1] in pmemobj_open")
	th.Load(base+hdrVersionOff, "read pool version in pmemobj_open")
	if magic != PoolMagic {
		return nil, false
	}
	return p, true
}

// Base returns the pool's base address.
func (p *Pool) Base() memmodel.Addr { return p.base }

// Alloc carves size bytes (word aligned) out of the pool heap, bumping
// the persistent heap cursor.
func (p *Pool) Alloc(th *pmem.Thread, size int) memmodel.Addr {
	next := memmodel.Addr(th.Load(p.base+heapHdrOff, "read heap next in pmemobj_alloc"))
	aligned := (next + memmodel.WordSize - 1) &^ (memmodel.WordSize - 1)
	th.Store(p.base+heapHdrOff, memmodel.Value(aligned+memmodel.Addr(size)), "heap next bump in pmemobj_alloc")
	th.Persist(p.base+heapHdrOff, memmodel.WordSize, "persist heap next bump")
	return aligned
}

// AllocLines carves whole cache lines, line aligned.
func (p *Pool) AllocLines(th *pmem.Thread, n int) memmodel.Addr {
	next := memmodel.Addr(th.Load(p.base+heapHdrOff, "read heap next in pmemobj_alloc"))
	aligned := (next + memmodel.CacheLineSize - 1) &^ (memmodel.CacheLineSize - 1)
	th.Store(p.base+heapHdrOff, memmodel.Value(aligned+memmodel.Addr(n*memmodel.CacheLineSize)), "heap next bump in pmemobj_alloc")
	th.Persist(p.base+heapHdrOff, memmodel.WordSize, "persist heap next bump")
	return aligned
}

// SetRoot durably publishes the pool's root object pointer.
func (p *Pool) SetRoot(th *pmem.Thread, root memmodel.Addr) {
	th.Store(p.base+rootPtrOff, memmodel.Value(root), "pool root publish")
	th.Persist(p.base+rootPtrOff, memmodel.WordSize, "persist pool root")
}

// Root reads the pool's root object pointer.
func (p *Pool) Root(th *pmem.Thread) memmodel.Addr {
	return memmodel.Addr(th.Load(p.base+rootPtrOff, "read pool root"))
}

func (p *Pool) entryAddr(i int) memmodel.Addr {
	return p.base + ulogEntriesOff + memmodel.Addr(i*2*memmodel.WordSize)
}

// checksum is the redo log's content hash: a simple word mix over the
// entry stream, seeded with the generation number the way libpmemobj
// folds gen_num into the ulog checksum.
func checksum(gen memmodel.Value, words []memmodel.Value) memmodel.Value {
	h := memmodel.Value(0x9e3779b97f4a7c15) ^ gen
	for _, w := range words {
		h ^= w
		h *= 0x100000001b3
	}
	if h == 0 {
		h = 1
	}
	return h
}
