package intervals

import (
	"testing"
	"testing/quick"

	"repro/internal/vclock"
)

func TestNewIsUnconstrained(t *testing.T) {
	iv := New()
	if !iv.Unconstrained() {
		t.Fatalf("New() not unconstrained: %v", iv)
	}
	if iv.Empty() {
		t.Fatalf("New() empty: %v", iv)
	}
	if !iv.Contains(0) || !iv.Contains(1<<40) {
		t.Fatalf("New() should contain all crash points")
	}
}

func TestConstrainLo(t *testing.T) {
	iv := New()
	iv, moved := iv.ConstrainLo(5, "s5")
	if !moved {
		t.Fatal("ConstrainLo(5) should move the bound")
	}
	if iv.Lo.Clock != 5 || iv.Lo.Store != "s5" {
		t.Fatalf("Lo = %+v, want clock 5 set by s5", iv.Lo)
	}
	// Weaker constraint does not move the bound or clobber provenance.
	iv2, moved := iv.ConstrainLo(3, "s3")
	if moved || iv2.Lo.Store != "s5" {
		t.Fatalf("weaker ConstrainLo moved bound: %+v", iv2.Lo)
	}
	// Equal constraint keeps the original provenance.
	iv3, moved := iv.ConstrainLo(5, "other")
	if moved || iv3.Lo.Store != "s5" {
		t.Fatalf("equal ConstrainLo replaced provenance: %+v", iv3.Lo)
	}
}

func TestConstrainHi(t *testing.T) {
	iv := New()
	iv, moved := iv.ConstrainHi(7, "s7")
	if !moved || iv.Hi.Clock != 7 || iv.Hi.Store != "s7" {
		t.Fatalf("ConstrainHi(7) wrong: %+v moved=%v", iv, moved)
	}
	iv2, moved := iv.ConstrainHi(9, "s9")
	if moved || iv2.Hi.Store != "s7" {
		t.Fatalf("weaker ConstrainHi moved bound: %+v", iv2.Hi)
	}
}

// The Figure 2 scenario: r1 = 1 constrains x to [1, 2) — crash after
// x=1 (clock 1) and before x=2 (clock 3). r2 = 2 constrains [4, ∞).
// The conjunction is empty, so the execution is not robust.
func TestFigure2Unsatisfiable(t *testing.T) {
	// Single-threaded clocks: x=1 has clock 1, y=1 clock 2, x=2 clock 3,
	// y=2 clock 4.
	iv := New()
	iv, _ = iv.ConstrainLo(1, "x=1") // read x=1: crashed after x=1
	iv, _ = iv.ConstrainHi(3, "x=2") // ...and before x=2
	if iv.Empty() {
		t.Fatalf("interval [1,3) should be satisfiable")
	}
	iv, moved := iv.ConstrainLo(4, "y=2") // read y=2: crashed after y=2
	if !moved {
		t.Fatal("ConstrainLo(4) should move the bound")
	}
	if !iv.Empty() {
		t.Fatalf("conjunction should be empty: %v", iv)
	}
	// Diagnosis: the new lower bound (y=2) conflicts with the upper
	// bound set by x=2 — the too-new case of §5.2.
	if iv.Lo.Store != "y=2" || iv.Hi.Store != "x=2" {
		t.Fatalf("provenance lost: lo=%v hi=%v", iv.Lo.Store, iv.Hi.Store)
	}
}

// The Figure 5 scenario in the order the paper narrates it: reading y=2
// gives [2, 4); reading x=5 gives [5, ∞); conjunction unsatisfiable.
func TestFigure5Unsatisfiable(t *testing.T) {
	// Clocks: x=1:1, y=2:2, x=3:3, y=4:4, x=5:5.
	iv := New()
	iv, _ = iv.ConstrainLo(2, "y=2")
	iv, _ = iv.ConstrainHi(4, "y=4")
	if iv.String() != "[2, 4)" {
		t.Fatalf("interval = %v, want [2, 4)", iv)
	}
	iv, _ = iv.ConstrainLo(5, "x=5")
	if !iv.Empty() {
		t.Fatalf("conjunction should be empty: %v", iv)
	}
}

func TestContains(t *testing.T) {
	iv := New()
	iv, _ = iv.ConstrainLo(2, nil)
	iv, _ = iv.ConstrainHi(4, nil)
	for p, want := range map[vclock.Clock]bool{1: false, 2: true, 3: true, 4: false} {
		if got := iv.Contains(p); got != want {
			t.Errorf("Contains(%d) = %v, want %v", p, got, want)
		}
	}
}

func TestString(t *testing.T) {
	iv := New()
	if s := iv.String(); s != "[0, ∞)" {
		t.Fatalf("String() = %q", s)
	}
	iv, _ = iv.ConstrainLo(3, nil)
	iv, _ = iv.ConstrainHi(9, nil)
	if s := iv.String(); s != "[3, 9)" {
		t.Fatalf("String() = %q", s)
	}
}

// Property: conjunction order does not matter — applying any sequence of
// constraints yields the intersection, so satisfiability is independent
// of the order loads are processed in.
func TestConjunctionIsIntersection(t *testing.T) {
	prop := func(los, his []uint8) bool {
		iv := New()
		maxLo, minHi := vclock.Clock(0), Infinity
		for _, l := range los {
			c := vclock.Clock(l % 32)
			iv, _ = iv.ConstrainLo(c, nil)
			if c > maxLo {
				maxLo = c
			}
		}
		for _, h := range his {
			c := vclock.Clock(h % 32)
			iv, _ = iv.ConstrainHi(c, nil)
			if c < minHi {
				minHi = c
			}
		}
		if iv.Lo.Clock != maxLo || iv.Hi.Clock != minHi {
			return false
		}
		return iv.Empty() == (maxLo >= minHi)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("conjunction not an intersection: %v", err)
	}
}

// Property: constraining never widens the interval (monotonicity), so a
// violation once detected cannot be un-detected by later loads.
func TestConstrainMonotone(t *testing.T) {
	prop := func(seed []uint8) bool {
		iv := New()
		for i, s := range seed {
			prev := iv
			c := vclock.Clock(s % 64)
			if i%2 == 0 {
				iv, _ = iv.ConstrainLo(c, nil)
			} else {
				iv, _ = iv.ConstrainHi(c, nil)
			}
			if iv.Lo.Clock < prev.Lo.Clock || iv.Hi.Clock > prev.Hi.Clock {
				return false
			}
			if prev.Empty() && !iv.Empty() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Errorf("constrain not monotone: %v", err)
	}
}
