// Package intervals implements potential-crash-interval constraints, the
// core constraint domain of PSan (paper §4.1).
//
// A constraint for one (sub-execution, thread) pair describes where an
// equivalent strictly-persistent execution of that thread may have
// crashed. Each interval is half open, [Lo, Hi), measured in the clocks
// of the thread's stores (§3.4): the equivalent execution must crash
// after the store with clock Lo commits to the cache and before the store
// with clock Hi commits.
//
// A conjunction of such intervals is itself an interval, so the
// constraint state is a single [Lo, Hi) pair per thread together with
// provenance: which store set each endpoint. Provenance is what turns an
// unsatisfiable conjunction into the paper's bug report — a pair of
// stores, the earlier one missing a flush (§5.2).
package intervals

import (
	"fmt"
	"math"

	"repro/internal/vclock"
)

// Infinity is the upper endpoint of an unconstrained interval: the
// equivalent execution may have crashed arbitrarily late.
const Infinity vclock.Clock = math.MaxInt64

// Endpoint records one bound of a crash interval together with the store
// that set it. Store is opaque to this package (the checker passes
// *trace.Store); a nil Store means the bound is the trivial one.
type Endpoint struct {
	Clock vclock.Clock
	Store any
}

// Interval is a potential crash interval [Lo.Clock, Hi.Clock) for one
// thread of one sub-execution. The zero value is NOT meaningful; use New.
type Interval struct {
	Lo Endpoint
	Hi Endpoint
}

// New returns the unconstrained interval [0, ∞): any strictly-persistent
// crash point of the thread is still possible.
func New() Interval {
	return Interval{Lo: Endpoint{Clock: 0}, Hi: Endpoint{Clock: Infinity}}
}

// Empty reports whether the interval contains no crash point: no integer
// p satisfies Lo ≤ p < Hi.
func (iv Interval) Empty() bool { return iv.Lo.Clock >= iv.Hi.Clock }

// Unconstrained reports whether the interval is still the full [0, ∞).
func (iv Interval) Unconstrained() bool {
	return iv.Lo.Clock == 0 && iv.Hi.Clock == Infinity
}

// ConstrainLo conjoins [c, ∞) set by store: the equivalent execution must
// have crashed after the store with clock c commits (implications 4.1 and
// 4.3). It returns the narrowed interval and whether the bound actually
// moved. Provenance is only replaced when the bound moves, so the
// earliest store that justifies the tightest bound is retained.
func (iv Interval) ConstrainLo(c vclock.Clock, store any) (Interval, bool) {
	if c <= iv.Lo.Clock {
		return iv, false
	}
	iv.Lo = Endpoint{Clock: c, Store: store}
	return iv, true
}

// ConstrainHi conjoins [0, c) set by store: the equivalent execution must
// have crashed before the store with clock c commits (implication 4.2).
func (iv Interval) ConstrainHi(c vclock.Clock, store any) (Interval, bool) {
	if c >= iv.Hi.Clock {
		return iv, false
	}
	iv.Hi = Endpoint{Clock: c, Store: store}
	return iv, true
}

// Contains reports whether crash point p (the clock of the last committed
// store of the thread) satisfies the interval.
func (iv Interval) Contains(p vclock.Clock) bool {
	return iv.Lo.Clock <= p && p < iv.Hi.Clock
}

// String renders [lo, hi) with ∞ for the unbounded upper endpoint.
func (iv Interval) String() string {
	if iv.Hi.Clock == Infinity {
		return fmt.Sprintf("[%d, ∞)", int64(iv.Lo.Clock))
	}
	return fmt.Sprintf("[%d, %d)", int64(iv.Lo.Clock), int64(iv.Hi.Clock))
}
