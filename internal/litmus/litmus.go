// Package litmus encodes the paper's worked examples (Figures 1, 2,
// 4–8, 11, and 12) as executable scenarios that narrate PSan's
// constraint derivations: after every post-crash load, the affected
// potential-crash intervals are printed, and violations are reported
// with their localized bug pair and suggested fixes. The psan-litmus
// command renders them; the tests pin the verdicts to the paper's.
package litmus

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/persist"
	"repro/internal/pmem"
)

// Scenario is one worked example.
type Scenario struct {
	// Name is the figure identifier, e.g. "fig2".
	Name string
	// Title summarizes what the figure demonstrates.
	Title string
	// WantViolation is the expected verdict under a weak persistency
	// model (the paper's). Use Expect for the verdict under an
	// arbitrary backend.
	WantViolation bool

	run func(w io.Writer, model persist.Config) []*core.Violation
}

// Run executes the scenario under the default (px86) backend,
// narrating to w, and returns the violations found.
func (s Scenario) Run(w io.Writer) []*core.Violation {
	return s.run(w, persist.Config{})
}

// RunModel executes the scenario under the given backend. Scripted
// stale reads that the model makes unreachable (strict persistency has
// exactly one candidate per word) fall back to the newest candidate,
// with the substitution narrated.
func (s Scenario) RunModel(w io.Writer, model persist.Config) []*core.Violation {
	return s.run(w, model)
}

// Expect is the expected verdict under the given backend: the paper's
// verdict on weak models, and "robust" everywhere under non-weak ones —
// strict persistency is the robustness reference, so no litmus test
// can violate against it.
func (s Scenario) Expect(model persist.Config) bool {
	return s.WantViolation && persist.IsWeak(model.Name)
}

// driver wires a world to a narration writer.
type driver struct {
	w     *pmem.World
	out   io.Writer
	model persist.Config
	// named addresses for narration.
	names map[memmodel.Addr]string
}

func newDriver(out io.Writer, model persist.Config) *driver {
	return &driver{
		w:     pmem.NewWorld(pmem.Config{CrashTarget: -1, Model: model}),
		out:   out,
		model: model,
		names: map[memmodel.Addr]string{},
	}
}

// loc declares a named memory location on its own cache line.
func (d *driver) loc(name string, line int) memmodel.Addr {
	a := memmodel.Addr(0x10000 + line*memmodel.CacheLineSize)
	d.names[a] = name
	return a
}

func (d *driver) printf(format string, args ...any) {
	fmt.Fprintf(d.out, format, args...)
}

// read performs a post-crash load choosing the store with the given
// value (or the initial store), narrates the constraint state, and
// returns any violations.
func (d *driver) read(t memmodel.ThreadID, a memmodel.Addr, v memmodel.Value, initial bool, loc string) []*core.Violation {
	lid := d.w.M.Intern(loc)
	for _, c := range d.w.M.LoadCandidates(t, a) {
		if c.Store.Initial == initial && (initial || c.Store.Value == v) {
			d.w.M.Load(t, a, c, lid)
			vs := d.w.Checker.ObserveRead(t, a, c.Store, lid)
			d.printf("  %s reads %v\n", loc, c.Store)
			d.narrateIntervals()
			for _, viol := range vs {
				d.printf("  !! %s", indent(viol.String(), "  "))
			}
			return vs
		}
	}
	if !persist.IsWeak(d.model.Name) {
		// The scripted stale image does not exist under this model
		// (strict persistency: one candidate per word). Read what is
		// there and narrate the substitution — the scenario's point is
		// then exactly that the weak behavior is gone.
		cands := d.w.M.LoadCandidates(t, a)
		c := cands[0]
		d.w.M.Load(t, a, c, lid)
		vs := d.w.Checker.ObserveRead(t, a, c.Store, lid)
		d.printf("  %s reads %v (scripted stale image unreachable under %q)\n", loc, c.Store, d.w.M.Name())
		d.narrateIntervals()
		for _, viol := range vs {
			d.printf("  !! %s", indent(viol.String(), "  "))
		}
		return vs
	}
	panic(fmt.Sprintf("litmus: no candidate %d (initial=%v) at %s", v, initial, a))
}

// narrateIntervals prints the non-trivial crash intervals.
func (d *driver) narrateIntervals() {
	tr := d.w.M.Trace()
	type key struct {
		sub int
		t   memmodel.ThreadID
	}
	var keys []key
	for e := 0; e < len(tr.SubExecs()); e++ {
		for t := memmodel.ThreadID(0); t < 4; t++ {
			keys = append(keys, key{e, t})
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].sub != keys[j].sub {
			return keys[i].sub < keys[j].sub
		}
		return keys[i].t < keys[j].t
	})
	for _, k := range keys {
		iv := d.w.Checker.Interval(k.sub, k.t)
		if !iv.Unconstrained() {
			d.printf("    C(e%d)(t%d) = %v\n", k.sub+1, int(k.t), iv)
		}
	}
}

func indent(s, pad string) string {
	return strings.ReplaceAll(s, "\n", "\n"+pad) + "\n"
}

// Scenarios returns every figure scenario in paper order.
func Scenarios() []Scenario {
	return []Scenario{
		{Name: "fig1", Title: "Figure 1: flushed commit-store pattern is robust", WantViolation: false, run: fig1},
		{Name: "fig1-broken", Title: "Figure 1 without the data flush: not robust", WantViolation: true, run: fig1Broken},
		{Name: "fig2", Title: "Figure 2: r1=1, r2=2 has no strict equivalent", WantViolation: true, run: fig2},
		{Name: "fig4", Title: "Figures 4/5: interval [2,4) meets [5,inf)", WantViolation: true, run: fig4},
		{Name: "fig6", Title: "Figure 6: per-thread intervals make r1=0, r2=1 robust", WantViolation: false, run: fig6},
		{Name: "fig7", Title: "Figure 7: happens-before closure; fix goes in thread 2", WantViolation: true, run: fig7},
		{Name: "fig8", Title: "Figure 8: multiple crash events, C(e1) unsatisfiable", WantViolation: true, run: fig8},
		{Name: "fig11", Title: "Figure 11: reading from a store that is too old", WantViolation: true, run: fig11},
		{Name: "fig12", Title: "Figure 12: reading from a store that is too new", WantViolation: true, run: fig12},
		{Name: "flushopt-no-drain", Title: "clflushopt without a drain is not complete at the crash", WantViolation: true, run: flushoptNoDrain},
		{Name: "flushopt-sfence", Title: "clflushopt + sfence completes: robust", WantViolation: false, run: flushoptSFence},
		{Name: "rmw-drain", Title: "§1.1(5): an existing RMW serves as the needed drain", WantViolation: false, run: rmwDrain},
		{Name: "temporary", Title: "§1.1(4): unflushed temporaries never read post-crash are fine", WantViolation: false, run: temporary},
	}
}

// ByName finds a scenario.
func ByName(name string) *Scenario {
	for _, s := range Scenarios() {
		if s.Name == name {
			sc := s
			return &sc
		}
	}
	return nil
}

func fig1(out io.Writer, model persist.Config) []*core.Violation {
	d := newDriver(out, model)
	data, child := d.loc("tmp->data", 0), d.loc("ptr->child", 1)
	th := d.w.Thread(0)
	th.Store(data, 42, "tmp->data = data")
	th.Flush(data, "clflush(tmp)")
	th.Store(child, 1, "ptr->child = tmp")
	d.printf("pre-crash: data stored+flushed, commit store issued; crash before its flush\n")
	d.w.Crash()
	var vs []*core.Violation
	vs = append(vs, d.read(0, child, 1, false, "readChild: ptr->child")...)
	vs = append(vs, d.read(0, data, 42, false, "readChild: child->data")...)
	return vs
}

func fig1Broken(out io.Writer, model persist.Config) []*core.Violation {
	d := newDriver(out, model)
	data, child := d.loc("tmp->data", 0), d.loc("ptr->child", 1)
	th := d.w.Thread(0)
	th.Store(data, 42, "tmp->data = data")
	// missing: clflush(tmp)
	th.Store(child, 1, "ptr->child = tmp")
	th.Flush(child, "clflush(&ptr->child)")
	d.printf("pre-crash: data store NOT flushed before the commit store\n")
	d.w.Crash()
	var vs []*core.Violation
	vs = append(vs, d.read(0, child, 1, false, "readChild: ptr->child")...)
	vs = append(vs, d.read(0, data, 0, true, "readChild: child->data")...)
	return vs
}

func fig2(out io.Writer, model persist.Config) []*core.Violation {
	d := newDriver(out, model)
	x, y := d.loc("x", 0), d.loc("y", 1)
	th := d.w.Thread(0)
	th.Store(x, 1, "x = 1")
	th.Store(y, 1, "y = 1")
	th.Store(x, 2, "x = 2")
	th.Store(y, 2, "y = 2")
	d.printf("pre-crash: x=1; y=1; x=2; y=2 (no flushes)\n")
	d.w.Crash()
	var vs []*core.Violation
	vs = append(vs, d.read(0, x, 1, false, "r1 = x")...)
	vs = append(vs, d.read(0, y, 2, false, "r2 = y")...)
	return vs
}

func fig4(out io.Writer, model persist.Config) []*core.Violation {
	d := newDriver(out, model)
	x, y := d.loc("x", 0), d.loc("y", 1)
	th := d.w.Thread(0)
	th.Store(x, 1, "x = 1")
	th.Store(y, 2, "y = 2")
	th.Store(x, 3, "x = 3")
	th.Store(y, 4, "y = 4")
	th.Store(x, 5, "x = 5")
	d.printf("pre-crash: x=1; y=2; x=3; y=4; x=5 (clocks 1..5)\n")
	d.w.Crash()
	var vs []*core.Violation
	vs = append(vs, d.read(0, y, 2, false, "r1 = y")...)
	vs = append(vs, d.read(0, x, 5, false, "r2 = x")...)
	return vs
}

func fig6(out io.Writer, model persist.Config) []*core.Violation {
	d := newDriver(out, model)
	x, y := d.loc("x", 0), d.loc("y", 1)
	t0, t1 := d.w.Thread(0), d.w.Thread(1)
	t0.Store(x, 1, "t1: x = 1")
	// thread 0 is paused before its flush
	t1.Store(y, 1, "t2: y = 1")
	t1.Flush(y, "t2: flush y")
	d.printf("pre-crash: t1 paused before flush x; t2 stored and flushed y\n")
	d.w.Crash()
	var vs []*core.Violation
	vs = append(vs, d.read(0, x, 0, true, "r1 = x")...)
	vs = append(vs, d.read(0, y, 1, false, "r2 = y")...)
	return vs
}

func fig7(out io.Writer, model persist.Config) []*core.Violation {
	d := newDriver(out, model)
	x, y := d.loc("x", 0), d.loc("y", 1)
	t0, t1 := d.w.Thread(0), d.w.Thread(1)
	t0.Store(x, 1, "t1: x = 1")
	r1 := t1.Load(x, "t2: r1 = x")
	t1.Store(y, r1, "t2: y = r1")
	t1.Flush(y, "t2: flush y")
	d.printf("pre-crash: t1 paused before flush x; t2 read x, stored y=r1, flushed y\n")
	d.w.Crash()
	var vs []*core.Violation
	vs = append(vs, d.read(0, x, 0, true, "r2 = x")...)
	vs = append(vs, d.read(0, y, 1, false, "r3 = y")...)
	return vs
}

func fig8(out io.Writer, model persist.Config) []*core.Violation {
	d := newDriver(out, model)
	x, y := d.loc("x", 0), d.loc("y", 1)
	th := d.w.Thread(0)
	th.Store(x, 1, "e1: x = 1")
	th.Store(y, 1, "e1: y = 1")
	d.printf("sub-execution e1: x=1; y=1; crash\n")
	d.w.Crash()
	th.Store(y, 2, "e2: y = 2")
	var vs []*core.Violation
	vs = append(vs, d.read(0, x, 0, true, "e2: r = x")...)
	d.printf("sub-execution e2: y=2; r=x; crash\n")
	d.w.Crash()
	vs = append(vs, d.read(0, y, 1, false, "e3: s = y")...)
	return vs
}

func flushoptNoDrain(out io.Writer, model persist.Config) []*core.Violation {
	d := newDriver(out, model)
	x, y := d.loc("x", 0), d.loc("y", 1)
	th := d.w.Thread(0)
	th.Store(x, 1, "x = 1")
	th.FlushOpt(x, "clflushopt x (no drain)")
	th.Store(y, 1, "y = 1")
	th.Flush(y, "clflush y")
	d.printf("pre-crash: clflushopt x never drained; y flushed synchronously\n")
	d.w.Crash()
	var vs []*core.Violation
	vs = append(vs, d.read(0, y, 1, false, "r1 = y")...)
	vs = append(vs, d.read(0, x, 0, true, "r2 = x (flushopt incomplete)")...)
	return vs
}

func flushoptSFence(out io.Writer, model persist.Config) []*core.Violation {
	d := newDriver(out, model)
	x, y := d.loc("x", 0), d.loc("y", 1)
	th := d.w.Thread(0)
	th.Store(x, 1, "x = 1")
	th.FlushOpt(x, "clflushopt x")
	th.SFence("sfence")
	th.Store(y, 1, "y = 1")
	th.Flush(y, "clflush y")
	d.printf("pre-crash: clflushopt x completed by sfence before y\n")
	d.w.Crash()
	var vs []*core.Violation
	vs = append(vs, d.read(0, y, 1, false, "r1 = y")...)
	// x=1 is guaranteed: the only candidate is the store itself.
	vs = append(vs, d.read(0, x, 1, false, "r2 = x")...)
	return vs
}

func rmwDrain(out io.Writer, model persist.Config) []*core.Violation {
	d := newDriver(out, model)
	x, y, z := d.loc("x", 0), d.loc("y", 1), d.loc("z", 2)
	th := d.w.Thread(0)
	th.Store(x, 1, "x = 1")
	th.FlushOpt(x, "clflushopt x")
	th.FAA(z, 1, "faa z (locked RMW: a drain)")
	th.Store(y, 1, "y = 1")
	th.Flush(y, "clflush y")
	d.printf("pre-crash: the locked RMW completes the clflushopt — no sfence needed (§1.1 point 5)\n")
	d.w.Crash()
	var vs []*core.Violation
	vs = append(vs, d.read(0, y, 1, false, "r1 = y")...)
	vs = append(vs, d.read(0, x, 1, false, "r2 = x")...)
	return vs
}

func temporary(out io.Writer, model persist.Config) []*core.Violation {
	d := newDriver(out, model)
	tmp, commit := d.loc("scratch", 0), d.loc("commit", 1)
	th := d.w.Thread(0)
	th.Store(tmp, 99, "scratch = 99 (never flushed, never read post-crash)")
	th.Store(commit, 1, "commit = 1")
	th.Flush(commit, "clflush commit")
	d.printf("pre-crash: the scratch store is unflushed; recovery never reads it\n")
	d.w.Crash()
	// Recovery reads only the committed word: robust, even though a
	// flush-presence scanner (pmemcheck) would flag the scratch store.
	return d.read(0, commit, 1, false, "r = commit")
}

func fig11(out io.Writer, model persist.Config) []*core.Violation {
	d := newDriver(out, model)
	x, y := d.loc("x", 0), d.loc("y", 1)
	th := d.w.Thread(0)
	th.Store(y, 1, "st1<y>")
	th.Store(y, 2, "st2<y> (missing flush)")
	th.Store(x, 1, "st<x>")
	th.Flush(x, "flush x")
	d.printf("pre-crash: st1<y>; st2<y> unflushed; st<x> flushed\n")
	d.w.Crash()
	var vs []*core.Violation
	// Reading x pins the crash interval after st<x>; then reading the
	// old st1<y> moves the interval end before st2<y>: too old.
	vs = append(vs, d.read(0, x, 1, false, "ld<x>")...)
	vs = append(vs, d.read(0, y, 1, false, "ld<y> (too old)")...)
	return vs
}

func fig12(out io.Writer, model persist.Config) []*core.Violation {
	d := newDriver(out, model)
	y, z := d.loc("y", 0), d.loc("z", 1)
	th := d.w.Thread(0)
	th.Store(y, 1, "st1<y>")
	th.Store(y, 2, "st2<y> (missing flush)")
	th.Store(z, 1, "st3<z>")
	th.Flush(z, "flush z")
	d.printf("pre-crash: st1<y>; st2<y> unflushed; st3<z> flushed, st2 hb st3\n")
	d.w.Crash()
	var vs []*core.Violation
	// Reading the old st1<y> first sets the interval end before st2<y>;
	// then reading st3<z> moves the start past it: too new.
	vs = append(vs, d.read(0, y, 1, false, "ld<y>")...)
	vs = append(vs, d.read(0, z, 1, false, "ld<z> (too new)")...)
	return vs
}
