package litmus

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
)

// Every scenario's verdict must match the paper's.
func TestScenarioVerdicts(t *testing.T) {
	for _, sc := range Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			var buf bytes.Buffer
			vs := sc.Run(&buf)
			if got := len(vs) > 0; got != sc.WantViolation {
				t.Fatalf("%s: violation=%v, want %v\n%s", sc.Name, got, sc.WantViolation, buf.String())
			}
		})
	}
}

func TestByName(t *testing.T) {
	if ByName("fig2") == nil {
		t.Fatal("fig2 missing")
	}
	if ByName("fig99") != nil {
		t.Fatal("fig99 should not exist")
	}
}

// fig11 must diagnose the read-too-old case, fig12 the read-too-new
// case — the two §5.2 shapes.
func TestDiagnosisKinds(t *testing.T) {
	var buf bytes.Buffer
	vs := ByName("fig11").Run(&buf)
	if len(vs) == 0 || vs[0].Kind != core.ReadTooOld {
		t.Fatalf("fig11 kind = %v, want read-too-old", vs)
	}
	buf.Reset()
	vs = ByName("fig12").Run(&buf)
	if len(vs) == 0 || vs[0].Kind != core.ReadTooNew {
		t.Fatalf("fig12 kind = %v, want read-too-new", vs)
	}
}

// The narration for Figure 4 must show the paper's [2, 4) interval.
func TestFig4NarratesInterval(t *testing.T) {
	var buf bytes.Buffer
	ByName("fig4").Run(&buf)
	if !strings.Contains(buf.String(), "[2, 4)") {
		t.Fatalf("narration missing [2, 4):\n%s", buf.String())
	}
}

// Figure 7's narration must include the alternate fix in thread 1.
func TestFig7NarratesAlternateFix(t *testing.T) {
	var buf bytes.Buffer
	vs := ByName("fig7").Run(&buf)
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1", len(vs))
	}
	found := false
	for _, f := range vs[0].Fixes {
		if f.Kind == core.FixInsertFlush && f.Thread == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no thread-1 fix: %v", vs[0].Fixes)
	}
}
