package pmem

import (
	"fmt"

	"repro/internal/memmodel"
)

// RootAddr is the fixed address of the persistent root word. Recovery
// code reads the root to rediscover data structures after a crash, the
// way PMDK programs use a pool's root object.
const RootAddr = memmodel.Addr(0x1000)

// heapBase is where dynamic allocations start; the gap below it is
// reserved for roots and statically-placed test variables.
const heapBase = memmodel.Addr(0x100000)

// Heap is a bump allocator over the simulated persistent address space.
// Allocation metadata is harness state (it survives crashes the way a
// reopened pool's layout does); the benchmarks that the paper reports
// allocator bugs in carry their own PM-resident allocator state on top.
type Heap struct {
	next memmodel.Addr
}

// NewHeap returns a heap with no allocations.
func NewHeap() *Heap { return &Heap{next: heapBase} }

// Reset forgets every allocation, returning the heap to its initial
// state for a reused World.
func (h *Heap) Reset() { h.next = heapBase }

// Alloc reserves size bytes, word aligned, and returns the base address.
// Fresh memory reads as zero.
func (h *Heap) Alloc(size int) memmodel.Addr {
	return h.AllocAligned(size, memmodel.WordSize)
}

// AllocAligned reserves size bytes at the given power-of-two alignment.
func (h *Heap) AllocAligned(size, align int) memmodel.Addr {
	if size <= 0 || align <= 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("pmem: bad allocation size=%d align=%d", size, align))
	}
	a := (h.next + memmodel.Addr(align-1)) &^ memmodel.Addr(align-1)
	h.next = a + memmodel.Addr(size)
	return a
}

// AllocLines reserves n whole cache lines, line aligned. Data structures
// that rely on cache-line atomicity (CCEH segments, CLHT buckets,
// FAST_FAIR headers) allocate through it.
func (h *Heap) AllocLines(n int) memmodel.Addr {
	return h.AllocAligned(n*memmodel.CacheLineSize, memmodel.CacheLineSize)
}

// Used reports the number of bytes allocated so far.
func (h *Heap) Used() int { return int(h.next - heapBase) }
