package pmem

import (
	"testing"

	"repro/internal/memmodel"
	"repro/internal/persist"
)

// The store-buffering (SB) litmus test: under TSO with store buffers,
// both threads can read 0 — the buffered stores have not committed when
// the cross reads execute. With immediate commit this outcome is
// unreachable; with delayed commit and random drains it must appear.
func runSB(seed int64, delayed bool) (r1, r2 memmodel.Value) {
	cfg := Config{CrashTarget: -1, Seed: seed}
	if delayed {
		cfg.Model = persist.Config{DelayedCommit: true}
		cfg.RandomDrainPercent = 20
	}
	w := NewWorld(cfg)
	done := make([]memmodel.Value, 2)
	w.Spawn(0, func(th *Thread) {
		th.Store(0x2000, 1, "x=1")
		done[0] = th.Load(0x3000, "r1=y")
	})
	w.Spawn(1, func(th *Thread) {
		th.Store(0x3000, 1, "y=1")
		done[1] = th.Load(0x2000, "r2=x")
	})
	w.RunThreads()
	return done[0], done[1]
}

func TestSBForbiddenWithImmediateCommit(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		r1, r2 := runSB(seed, false)
		if r1 == 0 && r2 == 0 {
			t.Fatalf("seed %d: r1=r2=0 must be unreachable with immediate commit", seed)
		}
	}
}

func TestSBReachableWithStoreBuffers(t *testing.T) {
	both := false
	for seed := int64(0); seed < 500 && !both; seed++ {
		r1, r2 := runSB(seed, true)
		if r1 == 0 && r2 == 0 {
			both = true
		}
	}
	if !both {
		t.Fatal("r1=r2=0 never observed with store buffers — TSO buffering not exercised")
	}
}

// With store buffers, a thread must still see its own buffered store
// (forwarding), so r = 1 always on the same thread.
func TestStoreBufferSelfVisibility(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		w := NewWorld(Config{
			CrashTarget: -1, Seed: seed,
			Model:              persist.Config{DelayedCommit: true},
			RandomDrainPercent: 30,
		})
		th := w.Thread(0)
		th.Store(0x2000, 7, "x=7")
		if got := th.Load(0x2000, "r=x"); got != 7 {
			t.Fatalf("seed %d: own store invisible: %d", seed, got)
		}
	}
}

// A fence makes buffered stores globally visible: after thread 0's
// sfence, thread 1 must read the new value.
func TestFencePublishesBufferedStores(t *testing.T) {
	w := NewWorld(Config{CrashTarget: -1, Model: persist.Config{DelayedCommit: true}})
	t0, t1 := w.Thread(0), w.Thread(1)
	t0.Store(0x2000, 5, "x=5")
	t0.SFence("sfence")
	if got := t1.Load(0x2000, "r=x"); got != 5 {
		t.Fatalf("r = %d, want 5 after sfence", got)
	}
}
