// Package pmem provides the instrumented persistent-memory programming
// interface that benchmark ports and example programs are written
// against. It plays the role of Jaaru's LLVM instrumentation in the
// original system: every load, store, flush, and fence is routed through
// the configured persistency-model backend (px86 by default; see
// internal/persist) and observed by the PSan checker.
//
// A World couples one simulated machine with one checker and a read
// policy. Simulated threads are either inline (the test driver scripts
// the interleaving itself) or spawned (cooperative goroutines scheduled
// one operation at a time, so executions stay serialized and
// reproducible).
//
// Crash points follow the paper's §6.1: the exploration harness sets a
// crash target k, and the world injects a crash immediately before the
// k-th fence-like operation of the phase (or after the last operation
// when k is past the end).
package pmem

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/persist"
	_ "repro/internal/persist/backends" // link all built-in models
	"repro/internal/trace"
)

// CrashSignal is the panic value used to unwind a phase when the
// simulated machine crashes. Benchmark code must let it propagate.
type CrashSignal struct{}

// AbortSignal unwinds an execution that exceeded its operation budget
// (for example, a spin lock whose holder crashed). The exploration
// harness discards such executions.
type AbortSignal struct{ Reason string }

// ReadChooser selects which store a load reads from when the crash image
// leaves more than one possibility. It is the hook where exploration
// strategies (random, model checking, violation avoidance) plug in.
// Candidates are model-neutral (persist.Candidate), so choosers work
// unchanged against every backend.
type ReadChooser func(w *World, t memmodel.ThreadID, addr memmodel.Addr, cands []persist.Candidate, loc trace.LocID) persist.Candidate

// ChooseNewest picks the newest legal store — the behavior of an
// execution in which everything persisted.
func ChooseNewest(_ *World, _ memmodel.ThreadID, _ memmodel.Addr, cands []persist.Candidate, _ trace.LocID) persist.Candidate {
	return persist.Newest(cands)
}

// ChooseOldest picks the oldest legal store — the behavior of an
// execution in which as little as possible persisted. Useful in tests
// that want the worst surviving image.
func ChooseOldest(_ *World, _ memmodel.ThreadID, _ memmodel.Addr, cands []persist.Candidate, _ trace.LocID) persist.Candidate {
	return persist.Oldest(cands)
}

// ChooseRandom picks uniformly among the legal stores using the world's
// random source.
func ChooseRandom(w *World, _ memmodel.ThreadID, _ memmodel.Addr, cands []persist.Candidate, _ trace.LocID) persist.Candidate {
	return persist.Random(w.rng, cands)
}

// ChooseAvoidingViolations wraps another chooser with PSan's multi-bug
// strategy (§5.2 Implementation): candidates whose read would create a
// robustness violation are avoided when a consistent candidate exists,
// letting one execution surface several independent bugs. When every
// candidate violates, the inner chooser picks among all of them and the
// violation is reported.
func ChooseAvoidingViolations(inner ReadChooser) ReadChooser {
	return func(w *World, t memmodel.ThreadID, addr memmodel.Addr, cands []persist.Candidate, loc trace.LocID) persist.Candidate {
		clean := w.steer[:0]
		for _, c := range cands {
			if !w.Checker.WouldViolate(t, c.Store) {
				clean = append(clean, c)
			} else {
				// Record the diagnosis even though the execution will
				// steer around it: the outcome is reachable.
				w.Checker.FlagRead(t, addr, c.Store, loc)
			}
		}
		w.steer = clean
		if len(clean) > 0 {
			return inner(w, t, addr, clean, loc)
		}
		return inner(w, t, addr, cands, loc)
	}
}

// Config parameterizes a World.
type Config struct {
	// Model selects and configures the persistency-model backend; the
	// zero value selects px86 with immediate commit.
	Model persist.Config
	// Seed seeds the world's random source (scheduling and ChooseRandom).
	Seed int64
	// Chooser is the read policy; nil means ChooseNewest.
	Chooser ReadChooser
	// CrashTarget injects a crash before the CrashTarget-th fence-like
	// operation of the current phase; negative disables injection.
	CrashTarget int
	// OpLimit bounds the operations per execution; 0 means 1 << 20.
	OpLimit int
	// RandomDrainPercent, with the machine in delayed-commit mode,
	// drains one random store-buffer entry before an operation with the
	// given percent probability (0–100), exposing TSO store-buffer
	// interleavings to exploration.
	RandomDrainPercent int
	// Provenance makes the checker capture a structured obs.Provenance
	// record (the racing store, its flush/fence context, the crash, the
	// post-crash read) for every violation it flags. Costs a few
	// allocations per distinct violation; leave off for benchmarks.
	Provenance bool
}

// World is one simulated persistent-memory system under test. A World
// is fully self-contained — machine, trace, checker, heap, scheduler,
// and random source — so concurrent executions on distinct Worlds never
// share mutable state; within one World, operations must stay on a
// single goroutine.
type World struct {
	M       persist.Model
	Checker *core.Checker
	Heap    *Heap

	chooser     ReadChooser
	rng         *rand.Rand
	crashTarget int
	fenceOps    int
	ops         int
	isteps      int
	opLimit     int
	drainPct    int
	threadIDs   []memmodel.ThreadID
	crashed     bool

	// Bounded-window retirement (persist.Config.Window > 0): every
	// retireEvery scheduled operations the world asks the model to
	// retire trace history behind the frontier. retire is the model's
	// Retirable face and retireExtra the checker's root hook, both
	// resolved once at construction so the trigger path allocates
	// nothing. retireEvery starts at the window and stretches with the
	// live set (a quarter of the last sweep's walked entries) so a
	// workload whose persistent footprint grows — every pinned store is
	// re-walked each sweep — pays amortized O(1) retirement work per
	// operation instead of a quadratic rescan. Both the operation count
	// and the sweep-work measure are deterministic, so retirement
	// happens at identical trace points across replays of one schedule.
	window      int
	retireEvery int
	sinceRetire int
	retire      persist.Retirable
	retireExtra func(mark func(*trace.Store))

	spawned []*simThread

	// steer is ChooseAvoidingViolations' scratch for the clean-candidate
	// subset, reused across loads.
	steer []persist.Candidate

	// probe, when non-nil, runs before every operation with the world's
	// running operation count. The exploration layer installs probes for
	// per-execution watchdogs (step timeouts raise AbortSignal) and chaos
	// fault injection (deliberate panics); nil costs one branch per op.
	probe func(ops int)

	// assertFailures records failed program assertions ("assert(e)" in
	// the Figure 9 language, or Assert calls from benchmark ports). The
	// Jaaru-style baseline detects bugs only through these.
	assertFailures []string

	// sweepNanos accumulates this execution's retirement-sweep wall
	// time (bounded-window mode only); a timing diagnostic, never part
	// of any determinism contract.
	sweepNanos int64

	// wobs holds the world-level observability counters (schedule steps,
	// interpreter steps). The zero value (all-nil instruments) makes every
	// increment a nil-check no-op; it survives Reset like the rest of the
	// configuration.
	wobs obs.WorldMetrics
}

// RecordAssertFailure notes a failed program assertion.
func (w *World) RecordAssertFailure(loc string) {
	w.assertFailures = append(w.assertFailures, loc)
}

// AssertFailures returns the assertion failures recorded this execution.
func (w *World) AssertFailures() []string { return w.assertFailures }

// NewWorld builds a fresh world: zeroed persistent memory, an empty
// trace, and an unconstrained checker.
func NewWorld(cfg Config) *World {
	m := persist.MustNew(cfg.Model)
	chooser := cfg.Chooser
	if chooser == nil {
		chooser = ChooseNewest
	}
	limit := cfg.OpLimit
	if limit == 0 {
		limit = 1 << 20
	}
	w := &World{
		M:           m,
		Checker:     core.New(m.Trace()),
		Heap:        NewHeap(),
		chooser:     chooser,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
		crashTarget: cfg.CrashTarget,
		opLimit:     limit,
		drainPct:    cfg.RandomDrainPercent,
		wobs:        obs.WorldInstruments(cfg.Model.Obs.Reg()),
	}
	w.Checker.SetProvenance(cfg.Provenance)
	if cfg.Model.Window > 0 {
		if r, ok := m.(persist.Retirable); ok {
			w.window = cfg.Model.Window
			w.retireEvery = w.window
			w.retire = r
			w.retireExtra = w.Checker.MarkRetireRoots
		}
	}
	return w
}

// Reset returns the world to its initial state — zeroed memory, empty
// trace, unconstrained checker, fresh heap — reseeding the random source
// so the world replays exactly as a new one built with the same seed.
// The configured chooser, op limit, and drain percentage persist.
// Allocations made by previous executions (trace arenas, intern table,
// epoch pools, scratch buffers) are retained for reuse.
func (w *World) Reset(seed int64) {
	w.M.Reset()
	w.Checker.Reset()
	w.Heap.Reset()
	w.rng.Seed(seed)
	w.crashTarget = -1
	w.fenceOps = 0
	w.ops = 0
	w.isteps = 0
	w.crashed = false
	w.sinceRetire = 0
	w.retireEvery = w.window
	w.sweepNanos = 0
	w.threadIDs = w.threadIDs[:0]
	w.spawned = nil
	w.assertFailures = nil
	w.probe = nil
}

// SetProbe installs (or, with nil, removes) the per-operation probe for
// the next execution. Reset clears it: harnesses that want one must
// re-install it each execution.
func (w *World) SetProbe(p func(ops int)) { w.probe = p }

// Rand returns the world's random source (shared by schedulers and
// random read policies so one seed reproduces the whole execution).
func (w *World) Rand() *rand.Rand { return w.rng }

// FenceOps returns the number of fence-like operations executed in the
// current phase; the harness uses a pilot run to size the crash-point
// range (§6.1 model checking mode).
func (w *World) FenceOps() int { return w.fenceOps }

// Ops returns the number of operations the current execution has
// performed so far — the op-budget position. The explorer folds it into
// its partial-order-reduction key so two crash states are only merged
// when their continuations also abort at the same point.
func (w *World) Ops() int { return w.ops }

// SetCrashTarget re-arms crash injection for the next phase.
func (w *World) SetCrashTarget(k int) {
	w.crashTarget = k
	w.fenceOps = 0
}

// Crashed reports whether the current phase hit its crash target.
func (w *World) Crashed() bool { return w.crashed }

// RunPhase executes one phase function, converting an injected crash
// into a normal return. It returns true if the phase crashed. The
// machine-level crash itself (persist.Model.Crash) is the caller's
// responsibility, so a harness can decide to crash even after a phase
// that ran to completion.
func (w *World) RunPhase(phase func(*World)) (crashed bool) {
	w.crashed = false
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(CrashSignal); ok {
				crashed = true
				return
			}
			panic(r)
		}
	}()
	phase(w)
	return false
}

// Crash crashes the machine and starts the next sub-execution.
func (w *World) Crash() {
	w.M.Crash()
	w.crashed = false
	w.fenceOps = 0
}

// Thread returns an inline simulated thread: its operations execute
// immediately in the caller's control flow, letting drivers script exact
// interleavings.
func (w *World) Thread(id memmodel.ThreadID) *Thread {
	w.registerThread(id)
	return &Thread{ID: id, w: w}
}

// step enforces the operation budget and the crash target, and in
// delayed-commit mode randomly drains store buffers. It runs before
// every operation of every thread.
func (w *World) step(kind memmodel.OpKind) {
	if w.crashed {
		panic(CrashSignal{})
	}
	w.wobs.ScheduleSteps.Inc()
	w.ops++
	if w.ops > w.opLimit {
		panic(AbortSignal{Reason: fmt.Sprintf("operation budget %d exceeded", w.opLimit)})
	}
	if w.probe != nil {
		w.probe(w.ops)
	}
	if w.drainPct > 0 && len(w.threadIDs) > 0 && w.rng.Intn(100) < w.drainPct {
		w.M.DrainOne(w.threadIDs[w.rng.Intn(len(w.threadIDs))])
	}
	if kind.IsFenceLike() {
		if w.crashTarget >= 0 && w.fenceOps == w.crashTarget {
			w.crashed = true
			panic(CrashSignal{})
		}
		w.fenceOps++
	}
	if w.window > 0 {
		if w.sinceRetire++; w.sinceRetire >= w.retireEvery {
			w.sinceRetire = 0
			w.retireNow()
		}
	}
}

// retireNow runs one bounded-window retirement and folds the sweep's
// deltas into the world's instruments.
func (w *World) retireNow() {
	tr := w.M.Trace()
	before := tr.Retired()
	// Two clock reads per sweep are noise next to the O(live set) walk
	// they bracket, so the sweep is timed unconditionally: the total
	// rides into Result diagnostics even without an obs registry.
	sweepStart := time.Now()
	w.retire.Retire(w.retireExtra)
	sweepNS := time.Since(sweepStart).Nanoseconds()
	w.sweepNanos += sweepNS
	w.wobs.SweepNanos.Observe(sweepNS)
	after := tr.Retired()
	w.wobs.Retirements.Inc()
	w.wobs.RetiredStores.Add(int64(after.RetiredStores - before.RetiredStores))
	w.wobs.RetiredEvents.Add(int64(after.RetiredEvents - before.RetiredEvents))
	w.wobs.WindowRetained.Set(int64(after.RetainedEvents))
	w.wobs.PinnedRoots.Set(int64(after.PinnedRoots))
	// Amortize: each sweep walks the whole live set, so the next sweep
	// is deferred until the work it would redo has been "paid for" by
	// fresh operations. LastSweepWork is deterministic, so the stretched
	// cadence replays identically.
	w.retireEvery = w.window
	if q := tr.LastSweepWork() / 4; q > w.retireEvery {
		w.retireEvery = q
	}
}

// Window returns the configured retirement window (0: unbounded).
func (w *World) Window() int { return w.window }

// SweepNanos returns this execution's accumulated retirement-sweep
// wall time (0 in unbounded mode).
func (w *World) SweepNanos() int64 { return w.sweepNanos }

// interpProbeMask throttles the interpreter-step watchdog probe: with a
// probe installed it also runs once every 1024 interpreted statements,
// so an execution hung in a loop that issues no memory operations (pure
// register spinning in the interpreted program) still reaches the
// exploration layer's per-execution watchdog. Without a probe the extra
// cost is one nil check per statement.
const interpProbeMask = 1<<10 - 1

// CountInterpStep counts one interpreted statement toward the interp
// instrument; the interpreter calls it once per statement executed.
// It doubles as a watchdog poll site (see interpProbeMask): the
// per-operation probe alone has a blind spot for statement loops that
// never issue an operation.
func (w *World) CountInterpStep() {
	w.wobs.InterpSteps.Inc()
	if w.probe != nil {
		w.isteps++
		if w.isteps&interpProbeMask == 0 {
			w.probe(w.ops)
		}
	}
}

// registerThread tracks thread IDs for the random drain scheduler.
func (w *World) registerThread(id memmodel.ThreadID) {
	for _, t := range w.threadIDs {
		if t == id {
			return
		}
	}
	w.threadIDs = append(w.threadIDs, id)
}

// Thread is a handle for issuing operations as one simulated thread.
type Thread struct {
	ID  memmodel.ThreadID
	w   *World
	sim *simThread
}

// World returns the world the thread belongs to.
func (t *Thread) World() *World { return t.w }

func (t *Thread) step(kind memmodel.OpKind) {
	if t.sim != nil {
		t.sim.parkAndWait()
	}
	t.w.step(kind)
}

// Store writes v to word a.
func (t *Thread) Store(a memmodel.Addr, v memmodel.Value, loc string) {
	t.step(memmodel.OpStore)
	t.w.M.Store(t.ID, a, v, t.w.M.Intern(loc))
}

// Load reads word a, resolving post-crash nondeterminism through the
// world's read policy and reporting the read to the checker.
func (t *Thread) Load(a memmodel.Addr, loc string) memmodel.Value {
	t.step(memmodel.OpLoad)
	w := t.w
	lid := w.M.Intern(loc)
	cands := w.M.LoadCandidates(t.ID, a)
	chosen := cands[0]
	if len(cands) > 1 {
		chosen = w.chooser(w, t.ID, a, cands, lid)
	}
	v := w.M.Load(t.ID, a, chosen, lid)
	w.Checker.ObserveRead(t.ID, a, chosen.Store, lid)
	return v
}

// Flush issues clflush on the line containing a.
func (t *Thread) Flush(a memmodel.Addr, loc string) {
	t.step(memmodel.OpFlush)
	t.w.M.Flush(t.ID, a, t.w.M.Intern(loc))
}

// FlushOpt issues clflushopt/clwb on the line containing a.
func (t *Thread) FlushOpt(a memmodel.Addr, loc string) {
	t.step(memmodel.OpFlushOpt)
	t.w.M.FlushOpt(t.ID, a, t.w.M.Intern(loc))
}

// SFence issues a store fence (a drain operation).
func (t *Thread) SFence(loc string) {
	t.step(memmodel.OpSFence)
	t.w.M.SFence(t.ID, t.w.M.Intern(loc))
}

// MFence issues a full fence (a drain operation).
func (t *Thread) MFence(loc string) {
	t.step(memmodel.OpMFence)
	t.w.M.MFence(t.ID, t.w.M.Intern(loc))
}

// Persist is the idiomatic "make it durable" sequence: clflushopt
// followed by sfence, covering every cache line of [a, a+size).
func (t *Thread) Persist(a memmodel.Addr, size int, loc string) {
	for line := a.Line(); line < a+memmodel.Addr(size); line += memmodel.CacheLineSize {
		t.FlushOpt(line, loc)
	}
	t.SFence(loc)
}

// CAS atomically compares word a with expected and, on a match, writes
// newV. It returns the observed value and whether the swap happened.
func (t *Thread) CAS(a memmodel.Addr, expected, newV memmodel.Value, loc string) (memmodel.Value, bool) {
	t.step(memmodel.OpCAS)
	w := t.w
	lid := w.M.Intern(loc)
	cands := w.M.LoadCandidates(t.ID, a)
	chosen := cands[0]
	if len(cands) > 1 {
		chosen = w.chooser(w, t.ID, a, cands, lid)
	}
	old, ok := w.M.CAS(t.ID, a, chosen, expected, newV, lid)
	w.Checker.ObserveRead(t.ID, a, chosen.Store, lid)
	return old, ok
}

// FAA atomically adds delta to word a, returning the previous value.
func (t *Thread) FAA(a memmodel.Addr, delta memmodel.Value, loc string) memmodel.Value {
	t.step(memmodel.OpFAA)
	w := t.w
	lid := w.M.Intern(loc)
	cands := w.M.LoadCandidates(t.ID, a)
	chosen := cands[0]
	if len(cands) > 1 {
		chosen = w.chooser(w, t.ID, a, cands, lid)
	}
	old := w.M.FAA(t.ID, a, chosen, delta, lid)
	w.Checker.ObserveRead(t.ID, a, chosen.Store, lid)
	return old
}

// BeginChecksum marks the start of a checksum-validated read region for
// this thread (§6.4): cross-crash reads are deferred until EndChecksum.
func (t *Thread) BeginChecksum() { t.w.Checker.BeginChecksumRegion(t.ID) }

// EndChecksum finishes the region; valid reports whether the checksum
// matched. Invalid regions discard their reads (the program discards the
// data), so they constrain nothing.
func (t *Thread) EndChecksum(valid bool) { t.w.Checker.EndChecksumRegion(t.ID, valid) }
