package pmem

import (
	"testing"

	"repro/internal/memmodel"
)

const (
	addrX = memmodel.Addr(0x2000)
	addrY = memmodel.Addr(0x3000)
)

func TestInlineStoreLoad(t *testing.T) {
	w := NewWorld(Config{CrashTarget: -1})
	th := w.Thread(0)
	th.Store(addrX, 7, "x=7")
	if got := th.Load(addrX, "r=x"); got != 7 {
		t.Fatalf("load = %d, want 7", got)
	}
}

func TestCrashTargetStopsPhase(t *testing.T) {
	w := NewWorld(Config{CrashTarget: 1}) // crash before the 2nd fence-like op
	reached := false
	crashed := w.RunPhase(func(w *World) {
		th := w.Thread(0)
		th.Store(addrX, 1, "x=1")
		th.Flush(addrX, "flush 0") // fence-like op #0
		th.Store(addrY, 1, "y=1")
		th.Flush(addrY, "flush 1") // fence-like op #1: crash fires here
		reached = true
	})
	if !crashed {
		t.Fatal("phase should have crashed")
	}
	if reached {
		t.Fatal("code after the crash point must not run")
	}
	w.Crash()
	// x was flushed before the crash; y's flush never executed.
	th := w.Thread(0)
	if got := th.Load(addrX, "r=x"); got != 1 {
		t.Fatalf("x = %d, want 1 (flushed)", got)
	}
}

func TestCrashTargetPastEndRunsToCompletion(t *testing.T) {
	w := NewWorld(Config{CrashTarget: 100})
	crashed := w.RunPhase(func(w *World) {
		th := w.Thread(0)
		th.Store(addrX, 1, "x=1")
		th.Flush(addrX, "flush")
	})
	if crashed {
		t.Fatal("phase must complete when the target is past the end")
	}
	if w.FenceOps() != 1 {
		t.Fatalf("FenceOps = %d, want 1", w.FenceOps())
	}
}

func TestPersistHelperCoversRange(t *testing.T) {
	w := NewWorld(Config{CrashTarget: -1})
	th := w.Thread(0)
	base := w.Heap.AllocLines(2) // two cache lines
	th.Store(base, 1, "a")
	th.Store(base+memmodel.CacheLineSize, 2, "b")
	th.Persist(base, 2*memmodel.CacheLineSize, "persist")
	w.Crash()
	if got := th.Load(base, "ra"); got != 1 {
		t.Fatalf("first line = %d, want 1", got)
	}
	if got := th.Load(base+memmodel.CacheLineSize, "rb"); got != 2 {
		t.Fatalf("second line = %d, want 2", got)
	}
}

func TestSpawnedThreadsInterleaveDeterministically(t *testing.T) {
	run := func(seed int64) []memmodel.Value {
		w := NewWorld(Config{CrashTarget: -1, Seed: seed})
		var order []memmodel.Value
		w.Spawn(0, func(th *Thread) {
			th.Store(addrX, 1, "a1")
			th.Store(addrX, 2, "a2")
		})
		w.Spawn(1, func(th *Thread) {
			th.Store(addrX, 3, "b1")
			th.Store(addrX, 4, "b2")
		})
		w.RunThreads()
		for _, st := range w.M.Trace().Sub(0).Stores {
			order = append(order, st.Value)
		}
		return order
	}
	a1, a2 := run(42), run(42)
	if len(a1) != 4 {
		t.Fatalf("stores = %d, want 4", len(a1))
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("same seed produced different interleavings: %v vs %v", a1, a2)
		}
	}
	// Different seeds eventually produce a different interleaving.
	diff := false
	for seed := int64(0); seed < 32 && !diff; seed++ {
		b := run(seed)
		for i := range b {
			if b[i] != a1[i] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("no seed produced a different interleaving")
	}
}

func TestSpawnedThreadCrashUnwindsAll(t *testing.T) {
	w := NewWorld(Config{CrashTarget: 0, Seed: 1})
	after := false
	w.Spawn(0, func(th *Thread) {
		th.Store(addrX, 1, "x=1")
		th.Flush(addrX, "flush") // crash target 0 fires here
		after = true
	})
	w.Spawn(1, func(th *Thread) {
		for i := 0; i < 100; i++ {
			th.Store(addrY, memmodel.Value(i), "y")
		}
	})
	crashed := w.RunPhase(func(w *World) { w.RunThreads() })
	if !crashed {
		t.Fatal("RunThreads must propagate the crash")
	}
	if after {
		t.Fatal("operations after the crash point must not run")
	}
}

func TestOpBudgetAborts(t *testing.T) {
	w := NewWorld(Config{CrashTarget: -1, OpLimit: 100})
	defer func() {
		if _, ok := recover().(AbortSignal); !ok {
			t.Fatal("expected AbortSignal")
		}
	}()
	th := w.Thread(0)
	for {
		th.Load(addrX, "spin")
	}
}

func TestChooseAvoidingViolationsFindsBugAndSteersAround(t *testing.T) {
	w := NewWorld(Config{CrashTarget: -1, Chooser: ChooseAvoidingViolations(ChooseNewest)})
	th := w.Thread(0)
	th.Store(addrX, 1, "x=1")
	th.Store(addrY, 1, "y=1")
	th.Store(addrX, 2, "x=2")
	th.Store(addrY, 2, "y=2")
	w.Crash()
	// Read x=1 first: any later y=2 read would violate. The chooser must
	// flag the violation but return a consistent value.
	cands := w.M.LoadCandidates(0, addrX)
	for _, c := range cands {
		if c.Store.Value == 1 {
			w.M.Load(0, addrX, c, w.M.Intern("r1=x"))
			w.Checker.ObserveRead(0, addrX, c.Store, w.M.Intern("r1=x"))
		}
	}
	got := th.Load(addrY, "r2=y")
	if got == 2 {
		t.Fatalf("chooser picked the violating store y=2")
	}
	if n := len(w.Checker.Violations()); n != 1 {
		t.Fatalf("violations = %d, want 1 (flagged while steering around)", n)
	}
}

func TestHeapAlignment(t *testing.T) {
	h := NewHeap()
	a := h.Alloc(24)
	if a%memmodel.WordSize != 0 {
		t.Fatalf("Alloc not word aligned: %v", a)
	}
	b := h.AllocLines(1)
	if b%memmodel.CacheLineSize != 0 {
		t.Fatalf("AllocLines not line aligned: %v", b)
	}
	c := h.Alloc(8)
	if c < b+memmodel.CacheLineSize {
		t.Fatalf("allocations overlap: %v then %v", b, c)
	}
	if h.Used() == 0 {
		t.Fatal("Used() should be positive")
	}
}

func TestHeapBadArgsPanic(t *testing.T) {
	h := NewHeap()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two alignment")
		}
	}()
	h.AllocAligned(8, 3)
}

func TestCASAndFAAThroughThread(t *testing.T) {
	w := NewWorld(Config{CrashTarget: -1})
	th := w.Thread(0)
	th.Store(addrX, 10, "x=10")
	if old, ok := th.CAS(addrX, 10, 20, "cas"); !ok || old != 10 {
		t.Fatalf("CAS = (%d, %v), want (10, true)", old, ok)
	}
	if old := th.FAA(addrX, 5, "faa"); old != 20 {
		t.Fatalf("FAA = %d, want 20", old)
	}
	if got := th.Load(addrX, "r"); got != 25 {
		t.Fatalf("x = %d, want 25", got)
	}
}

func TestChecksumRegionThroughThread(t *testing.T) {
	w := NewWorld(Config{CrashTarget: -1})
	th := w.Thread(0)
	th.Store(addrX, 1, "x=1")
	th.Store(addrY, 1, "y=1")
	th.Store(addrX, 2, "x=2")
	th.Store(addrY, 2, "y=2")
	w.Crash()
	th.BeginChecksum()
	// These reads would violate, but the checksum will fail.
	for _, c := range w.M.LoadCandidates(0, addrX) {
		if c.Store.Value == 1 {
			w.M.Load(0, addrX, c, w.M.Intern("r1=x"))
			w.Checker.ObserveRead(0, addrX, c.Store, w.M.Intern("r1=x"))
		}
	}
	for _, c := range w.M.LoadCandidates(0, addrY) {
		if c.Store.Value == 2 {
			w.M.Load(0, addrY, c, w.M.Intern("r2=y"))
			w.Checker.ObserveRead(0, addrY, c.Store, w.M.Intern("r2=y"))
		}
	}
	th.EndChecksum(false)
	if n := len(w.Checker.Violations()); n != 0 {
		t.Fatalf("violations = %d, want 0 (checksum failed, data discarded)", n)
	}
}
