package pmem

import (
	"repro/internal/memmodel"
)

// simThread is a spawned cooperative thread. The goroutine running the
// body parks before every operation; the scheduler grants one operation
// at a time, so the whole simulation stays serialized: no two simulated
// operations ever run concurrently.
type simThread struct {
	t    *Thread
	body func(*Thread)
	run  chan struct{} // scheduler -> thread: perform one step
	park chan struct{} // thread -> scheduler: parked at a boundary (or done)
	done bool
	err  any // non-crash panic from the body, re-raised by the scheduler
}

// parkAndWait is called from Thread.step for spawned threads: hand
// control back to the scheduler and wait to be granted the next step.
func (st *simThread) parkAndWait() {
	st.park <- struct{}{}
	<-st.run
}

// Spawn registers a simulated thread whose body runs under the
// cooperative scheduler. Call RunThreads to execute all spawned threads.
// Spawned threads must issue all shared-state accesses through their
// Thread handle; plain Go state must stay thread-local.
func (w *World) Spawn(id memmodel.ThreadID, body func(*Thread)) {
	st := &simThread{
		body: body,
		run:  make(chan struct{}),
		park: make(chan struct{}),
	}
	st.t = &Thread{ID: id, w: w, sim: st}
	w.registerThread(id)
	w.spawned = append(w.spawned, st)
}

// RunThreads executes every spawned thread to completion, interleaving
// them one operation at a time. The schedule is drawn from the world's
// random source, so a seed fully determines the interleaving. If any
// thread hits the crash target, every other thread is unwound and
// RunThreads panics with CrashSignal, crashing the phase.
func (w *World) RunThreads() {
	threads := w.spawned
	w.spawned = nil
	if len(threads) == 0 {
		return
	}
	for _, st := range threads {
		go func(st *simThread) {
			defer func() {
				if r := recover(); r != nil {
					switch r.(type) {
					case CrashSignal, AbortSignal:
						// Crash/abort unwound the body; the scheduler
						// raises the signal on the phase's stack.
					default:
						st.err = r
					}
				}
				st.done = true
				st.park <- struct{}{}
			}()
			<-st.run // wait for the first grant
			st.body(st.t)
		}(st)
	}
	live := append([]*simThread(nil), threads...)
	aborted := false
	for len(live) > 0 {
		st := live[w.rng.Intn(len(live))]
		st.run <- struct{}{}
		<-st.park
		if st.done {
			if st.err != nil {
				// Unwind the remaining threads before re-raising, so no
				// goroutine is left blocked on its run channel.
				w.crashed = true
				drainThreads(live, st)
				panic(st.err)
			}
			live = remove(live, st)
		}
		if w.crashed || w.ops > w.opLimit {
			aborted = w.ops > w.opLimit
			drainThreads(live, st)
			live = nil
		}
	}
	if aborted {
		panic(AbortSignal{Reason: "operation budget exceeded in RunThreads"})
	}
	if w.crashed {
		panic(CrashSignal{})
	}
}

// drainThreads wakes every live thread except skip so each one observes
// the crash in step, unwinds, and parks done.
func drainThreads(live []*simThread, skip *simThread) {
	for _, other := range live {
		if other == skip || other.done {
			continue
		}
		other.run <- struct{}{}
		<-other.park
	}
}

func remove(live []*simThread, st *simThread) []*simThread {
	out := live[:0]
	for _, x := range live {
		if x != st {
			out = append(out, x)
		}
	}
	return out
}
