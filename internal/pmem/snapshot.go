package pmem

import (
	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/persist"
	"repro/internal/trace"
)

// WorldSnapshot captures a World at a crash boundary so exploration can
// resume from that point instead of replaying the whole prefix. Take it
// only immediately after Crash: store buffers, pending flushes, the
// volatile cache, and the spawned-thread list are then all empty, so the
// snapshot reduces to the crash image's sealed bounds, the checker's
// constraint state, a trace mark, and a handful of counters — O(sealed
// epochs + constraints), not O(world).
type WorldSnapshot struct {
	model          *persist.ImageSnapshot
	checker        *core.Snapshot
	trace          trace.TraceMark
	heapNext       memmodel.Addr
	ops            int
	threads        int
	assertFailures int
}

// Snapshot captures the world's state for later Restores. See
// WorldSnapshot for the call-point contract.
func (w *World) Snapshot() *WorldSnapshot {
	return &WorldSnapshot{
		model:          w.M.Snapshot(),
		checker:        w.Checker.Snapshot(),
		trace:          w.M.Trace().Mark(),
		heapNext:       w.Heap.next,
		ops:            w.ops,
		threads:        len(w.threadIDs),
		assertFailures: len(w.assertFailures),
	}
}

// Restore rewinds the world to a previously captured Snapshot,
// discarding everything executed since. A snapshot may be restored any
// number of times. The per-operation probe is cleared (as with Reset,
// harnesses re-install it each execution), and the random source is NOT
// rewound: Restore is meant for deterministic model-check exploration,
// whose worlds never draw from it.
func (w *World) Restore(s *WorldSnapshot) {
	w.M.Restore(s.model)
	w.M.Trace().Rewind(s.trace)
	w.Checker.Restore(s.checker)
	w.Heap.next = s.heapNext
	w.ops = s.ops
	// The snapshot point is immediately after Crash, which zeroes the
	// fence counter and the crashed flag; spawned threads are always
	// drained by then.
	w.fenceOps = 0
	w.crashed = false
	w.spawned = nil
	w.threadIDs = w.threadIDs[:s.threads]
	// Cap capacity so a post-restore append reallocates instead of
	// overwriting entries a harness may have retained from executions
	// since the snapshot.
	w.assertFailures = w.assertFailures[:s.assertFailures:s.assertFailures]
	w.probe = nil
}
