package pmem_test

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/pmem"
)

// ExampleWorld walks the Figure 1 commit-store pattern by hand: fill a
// node, flush it, publish it — then crash and observe that the commit
// store's visibility implies the data survived.
func ExampleWorld() {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	data, commit := w.Heap.AllocLines(1), w.Heap.AllocLines(1)

	th.Store(data, 42, "tmp->data = 42")
	th.Flush(data, "clflush(tmp)")
	th.Store(commit, memmodel.Value(data), "ptr->child = tmp")
	th.Flush(commit, "clflush(&ptr->child)")
	w.Crash()

	if child := th.Load(commit, "readChild: ptr->child"); child != 0 {
		fmt.Println("data:", th.Load(data, "readChild: child->data"))
	}
	fmt.Println("violations:", len(w.Checker.Violations()))
	// Output:
	// data: 42
	// violations: 0
}
