package obs

import (
	"os"
	"strings"
	"testing"
)

// TestReadmeMetricsTable: the "Exported metrics" table in README.md is
// generated from the catalog and must match it exactly. On drift,
// regenerate with:
//
//	PSAN_WRITE_METRICS_TABLE=/tmp/table.md go test ./internal/obs -run TestWriteCatalogTable
//
// and splice /tmp/table.md between the metrics-table markers.
func TestReadmeMetricsTable(t *testing.T) {
	data, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("read README.md: %v", err)
	}
	readme := string(data)
	const start = "<!-- metrics-table-start -->\n"
	const end = "<!-- metrics-table-end -->"
	i := strings.Index(readme, start)
	j := strings.Index(readme, end)
	if i < 0 || j < 0 || j < i {
		t.Fatal("README.md metrics-table markers missing or out of order")
	}
	got := readme[i+len(start) : j]
	want := CatalogMarkdown()
	if got != want {
		t.Errorf("README metrics table is stale; regenerate from the catalog (see test comment)\n--- README ---\n%s--- catalog ---\n%s", got, want)
	}
}
