package obs

import (
	"reflect"
	"testing"
)

// workload drives a registry through a deterministic mix of counter,
// gauge, and histogram traffic. reps lets tests produce the "same work
// done twice" shape a worker redelivery creates.
func workload(r *Registry, reps int) {
	for i := 0; i < reps; i++ {
		r.Counter("explore.executions_started").Add(7)
		r.Counter("persist.epoch.stores").Add(31)
		r.Gauge("pmem.window_retained").Set(int64(40 + i))
		h := r.Histogram("explore.execution_ns", DurationBuckets)
		h.Observe(1500)
		h.Observe(2_000_000)
	}
}

// TestDiffApplyRoundTrip: shipping a worker registry as a sequence of
// snapshot diffs and applying them supervisor-side reproduces the
// worker's totals exactly — the delta pipeline loses nothing across
// ship boundaries.
func TestDiffApplyRoundTrip(t *testing.T) {
	worker := NewRegistry()
	sup := NewRegistry()
	var shipped Snapshot
	for i := 0; i < 3; i++ {
		workload(worker, 1)
		cur := worker.Snapshot()
		sup.ApplyDelta(cur.Diff(shipped), 1)
		shipped = cur
	}
	want, got := worker.Snapshot(), sup.Snapshot()
	if !reflect.DeepEqual(want.Counters, got.Counters) {
		t.Errorf("counters: worker %v, supervisor %v", want.Counters, got.Counters)
	}
	if !reflect.DeepEqual(want.Histograms, got.Histograms) {
		t.Errorf("histograms: worker %v, supervisor %v", want.Histograms, got.Histograms)
	}
	// Gauges high-water-merge; with a monotonically rising gauge the
	// high water is the final value.
	if want.Gauges["pmem.window_retained"] != got.Gauges["pmem.window_retained"] {
		t.Errorf("gauges: worker %v, supervisor %v", want.Gauges, got.Gauges)
	}
}

// TestRollbackCancelsExactly: accumulating every delta from a delivery
// attempt and applying the accumulation with sign -1 restores the
// supervisor registry to its pre-attempt state — counters and
// histograms to the bit. This is the redelivery path: the killed
// attempt's partial telemetry vanishes.
func TestRollbackCancelsExactly(t *testing.T) {
	sup := NewRegistry()
	workload(sup, 2) // pre-existing fleet state
	before := sup.Snapshot()

	worker := NewRegistry()
	var shipped Snapshot
	var acc Snapshot
	for i := 0; i < 2; i++ { // two heartbeat ships mid-attempt
		workload(worker, 1)
		cur := worker.Snapshot()
		d := cur.Diff(shipped)
		sup.ApplyDelta(d, 1)
		acc.Accumulate(d)
		shipped = cur
	}
	sup.ApplyDelta(acc, -1) // attempt died: roll it back

	after := sup.Snapshot()
	if !reflect.DeepEqual(before.Counters, after.Counters) {
		t.Errorf("counters not restored: before %v, after %v", before.Counters, after.Counters)
	}
	if !reflect.DeepEqual(before.Histograms, after.Histograms) {
		t.Errorf("histograms not restored: before %v, after %v", before.Histograms, after.Histograms)
	}
}

// TestDiffOmitsIdle: a diff across an idle stretch carries no counter
// or histogram deltas — only the gauges' current values ride along
// (they are last-value instruments, so "no change" still means "this
// is the level").
func TestDiffOmitsIdle(t *testing.T) {
	r := NewRegistry()
	workload(r, 1)
	snap := r.Snapshot()
	d := snap.Diff(snap)
	if len(d.Counters) != 0 || len(d.Histograms) != 0 {
		t.Errorf("self-diff has additive deltas: %+v", d)
	}
	if d.Gauges["pmem.window_retained"] != snap.Gauges["pmem.window_retained"] {
		t.Errorf("self-diff gauge = %v, want current value %v", d.Gauges, snap.Gauges)
	}
	if d := snap.Diff(Snapshot{}); d.Empty() {
		t.Error("diff against zero base is empty, want full snapshot")
	}
}

// TestGaugeHighWater: ApplyDelta keeps the maximum gauge value across
// processes and ignores gauges on rollback — fleet gauges are advisory
// maxima, never part of the exactness contract.
func TestGaugeHighWater(t *testing.T) {
	sup := NewRegistry()
	sup.Gauge("pmem.window_retained").Set(50)
	low := Snapshot{Gauges: map[string]int64{"pmem.window_retained": 20}}
	high := Snapshot{Gauges: map[string]int64{"pmem.window_retained": 90}}
	sup.ApplyDelta(low, 1)
	if v := sup.Gauge("pmem.window_retained").Value(); v != 50 {
		t.Errorf("gauge after lower apply = %d, want 50", v)
	}
	sup.ApplyDelta(high, 1)
	if v := sup.Gauge("pmem.window_retained").Value(); v != 90 {
		t.Errorf("gauge after higher apply = %d, want 90", v)
	}
	sup.ApplyDelta(high, -1)
	if v := sup.Gauge("pmem.window_retained").Value(); v != 90 {
		t.Errorf("gauge after rollback = %d, want 90 (rollback must not touch gauges)", v)
	}
}

// TestApplyDeltaNilSafe: the supervisor applies deltas through possibly
// absent sinks; nil receivers and empty deltas must be no-ops.
func TestApplyDeltaNilSafe(t *testing.T) {
	var r *Registry
	r.ApplyDelta(Snapshot{Counters: map[string]int64{"x": 1}}, 1) // must not panic
	live := NewRegistry()
	live.ApplyDelta(Snapshot{}, 1)
	if got := live.Snapshot(); len(got.Counters) != 0 {
		t.Errorf("empty delta created counters: %v", got.Counters)
	}
}

// TestHistogramDeltaBucketMismatch: a delta whose bucket layout differs
// from the live histogram's folds into the overflow bucket instead of
// corrupting per-bucket counts; Count and Sum stay additive.
func TestHistogramDeltaBucketMismatch(t *testing.T) {
	sup := NewRegistry()
	h := sup.Histogram("weird", []int64{10, 100})
	h.Observe(5)
	d := Snapshot{Histograms: map[string]HistogramSnapshot{
		"weird": {Bounds: []int64{1, 2, 3}, Counts: []int64{1, 1, 1, 1}, Sum: 42, Count: 4},
	}}
	sup.ApplyDelta(d, 1)
	got := sup.Snapshot().Histograms["weird"]
	if got.Count != 5 || got.Sum != 47 {
		t.Errorf("count/sum = %d/%d, want 5/47", got.Count, got.Sum)
	}
	var total int64
	for _, c := range got.Counts {
		total += c
	}
	if total != 5 {
		t.Errorf("bucket counts sum to %d, want 5", total)
	}
}
