package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestFlightRingWraps: the ring retains exactly the last capacity
// events in recording order, Total keeps counting past the wrap, and
// the sequence numbers of the retained tail are contiguous.
func TestFlightRingWraps(t *testing.T) {
	f := NewFlightRecorder(4)
	for i := 0; i < 10; i++ {
		f.Record("dispatch", "redeliver", i, fmt.Sprintf("ev%d", i))
	}
	if f.Total() != 10 {
		t.Errorf("Total = %d, want 10", f.Total())
	}
	evs := f.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		wantSeq := uint64(7 + i) // events 7..10 survive
		if ev.Seq != wantSeq {
			t.Errorf("event %d: Seq = %d, want %d", i, ev.Seq, wantSeq)
		}
		if ev.Unit != int(wantSeq)-1 {
			t.Errorf("event %d: Unit = %d, want %d", i, ev.Unit, wantSeq-1)
		}
	}
}

// TestFlightUnitSentinel: unit 0 is a real dispatch unit id and must
// survive JSON round-trips; "no unit" is the explicit -1 sentinel, and
// negative inputs clamp to it.
func TestFlightUnitSentinel(t *testing.T) {
	f := NewFlightRecorder(8)
	f.Record("dispatch", "redeliver", 0, "unit zero")
	f.Record("dispatch", "stop", -7, "no unit")
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if !strings.Contains(lines[0], `"unit":0`) {
		t.Errorf("unit 0 not serialized explicitly: %s", lines[0])
	}
	if !strings.Contains(lines[1], `"unit":-1`) {
		t.Errorf("no-unit sentinel not -1: %s", lines[1])
	}
}

// TestFlightIngest: events shipped from a worker keep their origin pid
// and payload but are resequenced into the local stream, interleaving
// with locally recorded events.
func TestFlightIngest(t *testing.T) {
	worker := NewFlightRecorder(8)
	worker.SetPid(4242)
	worker.Record("explore", "quarantine", 3, "contained panic")
	worker.Record("pmem", "retire", -1, "sweep")

	sup := NewFlightRecorder(8)
	sup.SetPid(1)
	sup.Record("dispatch", "spawn", -1, "slot 0")
	sup.Ingest(worker.Events())
	sup.Record("dispatch", "stop", -1, "complete")

	evs := sup.Events()
	if len(evs) != 4 {
		t.Fatalf("retained %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if ev.Seq != uint64(i+1) {
			t.Errorf("event %d: Seq = %d, want %d (resequenced locally)", i, ev.Seq, i+1)
		}
	}
	if evs[1].Pid != 4242 || evs[2].Pid != 4242 {
		t.Errorf("ingested events lost origin pid: %d, %d", evs[1].Pid, evs[2].Pid)
	}
	if evs[1].Cat != "explore" || evs[1].Name != "quarantine" || evs[1].Unit != 3 {
		t.Errorf("ingested payload mangled: %+v", evs[1])
	}
	if sup.Total() != 4 {
		t.Errorf("Total = %d, want 4", sup.Total())
	}
}

// TestFlightNilSafe: every method is a no-op on a nil recorder, so
// instrumented code never branches on enablement.
func TestFlightNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.SetPid(1)
	f.Record("x", "y", 0, "z")
	f.Ingest([]FlightEvent{{Name: "n"}})
	if f.Events() != nil || f.Total() != 0 {
		t.Error("nil recorder retained events")
	}
}

// TestFlightJSONLWellFormed: every dumped line is a standalone JSON
// object carrying the required fields.
func TestFlightJSONLWellFormed(t *testing.T) {
	f := NewFlightRecorder(16)
	f.SetPid(99)
	for i := 0; i < 5; i++ {
		f.Record("dispatch", "lease-expired", i, "")
	}
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	n := 0
	for sc.Scan() {
		var ev FlightEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", n+1, err)
		}
		if ev.Seq == 0 || ev.TS == 0 || ev.Cat == "" || ev.Name == "" || ev.Pid != 99 {
			t.Errorf("line %d missing required fields: %+v", n+1, ev)
		}
		n++
	}
	if n != 5 {
		t.Errorf("dumped %d lines, want 5", n)
	}
}
