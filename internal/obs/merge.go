package obs

// Cross-process snapshot merging: the fleet-telemetry machinery that
// lets the dispatch supervisor fold worker-process registries into its
// own. Workers ship *deltas* — the difference between two registry
// snapshots bracketing a stretch of work — and the supervisor applies
// them with a sign, so a killed delivery attempt's partial telemetry
// can be rolled back exactly and the surviving totals equal one clean
// run per merged unit (the fleet-exactness property the dispatch chaos
// tests pin).
//
// Merge semantics per instrument kind:
//
//   - counters and histograms are additive: Diff subtracts, ApplyDelta
//     adds sign*delta, and rollback (sign -1) cancels a prior apply to
//     the bit.
//   - gauges are last-value instruments with no additive meaning across
//     processes; Diff carries the *current* value and ApplyDelta
//     high-water-merges it (and ignores it on rollback). Fleet gauges
//     are therefore advisory maxima, which is what a dashboard wants
//     from e.g. pmem.window_retained, and they are excluded from the
//     exactness contract.

// Diff returns the instrument-wise difference s - base: the telemetry
// produced between the two snapshots. Counters and histogram
// counts/sums subtract; zero-delta instruments are omitted, so a diff
// over an idle stretch is empty. Gauges carry s's current value
// (omitted when zero and absent from base).
func (s Snapshot) Diff(base Snapshot) Snapshot {
	d := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	for name, v := range s.Counters {
		if dv := v - base.Counters[name]; dv != 0 {
			d.Counters[name] = dv
		}
	}
	for name, v := range s.Gauges {
		if _, had := base.Gauges[name]; had || v != 0 {
			d.Gauges[name] = v
		}
	}
	for name, h := range s.Histograms {
		bh, had := base.Histograms[name]
		if !had {
			if h.Count != 0 {
				d.Histograms[name] = h
			}
			continue
		}
		if h.Count == bh.Count && h.Sum == bh.Sum {
			continue
		}
		dh := HistogramSnapshot{
			Bounds: h.Bounds,
			Counts: make([]int64, len(h.Counts)),
			Sum:    h.Sum - bh.Sum,
			Count:  h.Count - bh.Count,
		}
		for i := range h.Counts {
			dh.Counts[i] = h.Counts[i]
			if i < len(bh.Counts) {
				dh.Counts[i] -= bh.Counts[i]
			}
		}
		d.Histograms[name] = dh
	}
	return d
}

// Empty reports whether the snapshot carries no instruments at all.
func (s Snapshot) Empty() bool {
	return len(s.Counters) == 0 && len(s.Gauges) == 0 && len(s.Histograms) == 0
}

// Accumulate folds delta into s (both delta-shaped): counters and
// histograms add, gauges high-water-merge. The dispatch supervisor
// accumulates every delta applied for a delivery attempt so a failure
// can roll the whole attempt back with one ApplyDelta(acc, -1).
func (s *Snapshot) Accumulate(delta Snapshot) {
	if s.Counters == nil {
		s.Counters = map[string]int64{}
	}
	if s.Gauges == nil {
		s.Gauges = map[string]int64{}
	}
	if s.Histograms == nil {
		s.Histograms = map[string]HistogramSnapshot{}
	}
	for name, v := range delta.Counters {
		s.Counters[name] += v
	}
	for name, v := range delta.Gauges {
		if cur, ok := s.Gauges[name]; !ok || v > cur {
			s.Gauges[name] = v
		}
	}
	for name, h := range delta.Histograms {
		cur, ok := s.Histograms[name]
		if !ok {
			cp := HistogramSnapshot{
				Bounds: append([]int64(nil), h.Bounds...),
				Counts: append([]int64(nil), h.Counts...),
				Sum:    h.Sum, Count: h.Count,
			}
			s.Histograms[name] = cp
			continue
		}
		cur.Sum += h.Sum
		cur.Count += h.Count
		for i := range cur.Counts {
			if i < len(h.Counts) {
				cur.Counts[i] += h.Counts[i]
			}
		}
		s.Histograms[name] = cur
	}
}

// ApplyDelta folds a delta snapshot into the registry with the given
// sign (+1 apply, -1 rollback): counters and histograms add
// sign*delta, gauges high-water-merge on apply and are left untouched
// on rollback. Instruments absent from the registry are created, so a
// supervisor registry accretes the worker-side catalog as deltas
// arrive. No-op on a nil registry.
func (r *Registry) ApplyDelta(d Snapshot, sign int64) {
	if r == nil {
		return
	}
	for name, v := range d.Counters {
		r.Counter(name).Add(sign * v)
	}
	if sign > 0 {
		for name, v := range d.Gauges {
			g := r.Gauge(name)
			if v > g.Value() {
				g.Set(v)
			}
		}
	}
	for name, h := range d.Histograms {
		r.Histogram(name, h.Bounds).applyDelta(h, sign)
	}
}

// applyDelta folds a histogram delta in with the given sign. Bucket
// layouts always agree in practice (both sides resolve the same
// catalog); a skewed delta keeps Sum/Count exact and folds the
// mismatched buckets into the overflow bucket rather than dropping
// them.
func (h *Histogram) applyDelta(d HistogramSnapshot, sign int64) {
	if h == nil {
		return
	}
	if len(d.Counts) == len(h.counts) {
		for i, c := range d.Counts {
			h.counts[i].Add(sign * c)
		}
	} else {
		total := int64(0)
		for _, c := range d.Counts {
			total += c
		}
		h.counts[len(h.counts)-1].Add(sign * total)
	}
	h.sum.Add(sign * d.Sum)
	h.n.Add(sign * d.Count)
}
