package obs

import (
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// expvar publication: the "psan" var reads whichever registry was published
// most recently. Publish panics on duplicate names, so registration happens
// once per process and the registry pointer is swapped atomically.
var (
	publishOnce sync.Once
	published   atomic.Pointer[Registry]
)

// PublishExpvar exposes r's snapshot as the expvar variable "psan"
// (visible at /debug/vars on any expvar-serving mux). Subsequent calls
// replace the registry being read. No-op for a nil registry.
func PublishExpvar(r *Registry) {
	if r == nil {
		return
	}
	published.Store(r)
	publishOnce.Do(func() {
		expvar.Publish("psan", expvar.Func(func() any {
			return published.Load().Snapshot()
		}))
	})
}

// MetricsServer is a minimal HTTP server exposing metric snapshots.
type MetricsServer struct {
	// Addr is the bound address (useful with ":0" listeners).
	Addr string
	ln   net.Listener
	srv  *http.Server
}

// OpenMetricsContentType is the Content-Type of the /metrics endpoint.
const OpenMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

// ServeMetrics publishes r via expvar and serves it over HTTP at addr:
//
//	/debug/vars    — the standard expvar page (includes the "psan" var)
//	/metrics       — the OpenMetrics text exposition of r (HELP/TYPE
//	                 metadata, deterministic name mapping; see catalog.go)
//	/metrics.json  — an indented JSON snapshot of r alone
//
// A dedicated mux keeps this off http.DefaultServeMux. The server runs until
// Close. Returns an error if the listener cannot bind.
func ServeMetrics(addr string, r *Registry) (*MetricsServer, error) {
	PublishExpvar(r)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", OpenMetricsContentType)
		WriteOpenMetrics(w, r.Snapshot())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	ms := &MetricsServer{Addr: ln.Addr().String(), ln: ln, srv: srv}
	go srv.Serve(ln)
	return ms, nil
}

// Close shuts the server down.
func (m *MetricsServer) Close() error {
	if m == nil {
		return nil
	}
	return m.srv.Close()
}
