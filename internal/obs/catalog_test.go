package obs

import (
	"strings"
	"testing"
)

// fullyInstrumentedRegistry resolves every instrument bundle the
// codebase uses into one registry, so tests can walk the complete
// exported-name surface.
func fullyInstrumentedRegistry() *Registry {
	r := NewRegistry()
	ExploreInstruments(r)
	CacheInstruments(r)
	PersistInstruments(r, "epoch")
	PersistInstruments(r, "strict")
	WorldInstruments(r)
	DispatchInstruments(r)
	WorkerInstruments(r, 1)
	WorkerInstruments(r, 12)
	return r
}

// TestCatalogCoversInstruments: every instrument any bundle registers
// resolves to a cataloged family of the right kind — no metric can
// reach /metrics without HELP/TYPE metadata and a README row.
func TestCatalogCoversInstruments(t *testing.T) {
	r := fullyInstrumentedRegistry()
	snap := r.Snapshot()
	check := func(name, kind string) {
		t.Helper()
		family, _ := ResolveName(name)
		def, ok := catalogHelp(family)
		if !ok {
			t.Errorf("instrument %s resolves to family %s, which is not cataloged", name, family)
			return
		}
		if def.Type != kind {
			t.Errorf("instrument %s: catalog says %s, registry says %s", name, def.Type, kind)
		}
		if def.Help == "" {
			t.Errorf("family %s has no HELP text", family)
		}
	}
	for name := range snap.Counters {
		check(name, "counter")
	}
	for name := range snap.Gauges {
		check(name, "gauge")
	}
	for name := range snap.Histograms {
		check(name, "histogram")
	}
}

// TestCatalogFamiliesReachable: the inverse direction — every cataloged
// family is actually produced by some instrument bundle, so the catalog
// (and the README table generated from it) carries no dead rows.
func TestCatalogFamiliesReachable(t *testing.T) {
	snap := fullyInstrumentedRegistry().Snapshot()
	reachable := map[string]bool{}
	for _, names := range []map[string]bool{
		keysOf(snap.Counters), gaugeKeys(snap.Gauges), histKeys(snap.Histograms),
	} {
		for name := range names {
			family, _ := ResolveName(name)
			reachable[family] = true
		}
	}
	for _, def := range Catalog() {
		if !reachable[def.Family] {
			t.Errorf("cataloged family %s is not produced by any instrument bundle", def.Family)
		}
	}
}

func keysOf(m map[string]int64) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

func gaugeKeys(m map[string]int64) map[string]bool { return keysOf(m) }

func histKeys(m map[string]HistogramSnapshot) map[string]bool {
	out := make(map[string]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// TestResolveNameMapping pins the documented mapping rules: per-model
// persist ops and per-worker pool counters become labeled families;
// everything else is psan_ + dots-to-underscores. The mapping must be
// deterministic (same input, byte-identical output).
func TestResolveNameMapping(t *testing.T) {
	cases := []struct {
		in, family string
		labels     []Label
	}{
		{"explore.executions_started", "psan_explore_executions_started", nil},
		{"persist.epoch.stores", "psan_persist_stores", []Label{{"model", "epoch"}}},
		{"persist.strict.candidates_resolved", "psan_persist_candidates_resolved", []Label{{"model", "strict"}}},
		{"pool.worker7.busy_ns", "psan_pool_worker_busy_ns", []Label{{"worker", "7"}}},
		{"pool.worker12.dispatches", "psan_pool_worker_dispatches", []Label{{"worker", "12"}}},
		{"dispatch.unit_ns", "psan_dispatch_unit_ns", nil},
		{"weird-name.with.dashes", "psan_weird_name_with_dashes", nil},
	}
	for _, tc := range cases {
		family, labels := ResolveName(tc.in)
		if family != tc.family {
			t.Errorf("ResolveName(%q) family = %q, want %q", tc.in, family, tc.family)
		}
		if len(labels) != len(tc.labels) {
			t.Errorf("ResolveName(%q) labels = %v, want %v", tc.in, labels, tc.labels)
			continue
		}
		for i := range labels {
			if labels[i] != tc.labels[i] {
				t.Errorf("ResolveName(%q) label %d = %v, want %v", tc.in, i, labels[i], tc.labels[i])
			}
		}
		again, _ := ResolveName(tc.in)
		if again != family {
			t.Errorf("ResolveName(%q) not deterministic: %q then %q", tc.in, family, again)
		}
	}
	for _, tc := range cases {
		if !strings.HasPrefix(tc.family, "psan_") {
			t.Errorf("family %q lacks the psan_ namespace prefix", tc.family)
		}
	}
}
