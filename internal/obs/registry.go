package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Registry owns named instruments. Lookup takes a mutex but happens once per
// instrument per campaign (instrument bundles are resolved up front); the
// update path is pure atomics. A nil *Registry hands out nil instruments, so
// a bundle built from it is a complete no-op.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use. Returns nil on
// a nil registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use. Returns nil on a
// nil registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bounds on
// first use. Returns nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// HistogramSnapshot is the JSON-serializable state of one histogram.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1; last bucket is overflow
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
}

// Snapshot is a point-in-time, JSON-serializable copy of every instrument.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every instrument. Safe on a nil registry (returns empty
// maps so callers can serialize unconditionally).
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// WriteJSON writes an indented JSON snapshot.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// CounterNames returns the sorted names of all registered counters.
func (s Snapshot) CounterNames() []string {
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
