package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// ProgressConfig configures the live progress ticker.
type ProgressConfig struct {
	Out      io.Writer     // destination (typically stderr)
	Registry *Registry     // snapshot source
	Interval time.Duration // tick period; <= 0 defaults to 2s
	Total    int64         // execution budget for ETA; 0 = unknown (mc mode)
}

// StartProgress launches a goroutine that prints a progress line every
// Interval built from registry snapshots: execution rate, ETA (from the
// remaining budget, falling back to the frontier-depth gauge), cache hit
// ratio, and per-model persist counters. The returned stop function halts the
// ticker, prints one final line, and waits for the goroutine to exit; it is
// idempotent. Returns a no-op stop when Out or Registry is nil.
func StartProgress(cfg ProgressConfig) (stop func()) {
	if cfg.Out == nil || cfg.Registry == nil {
		return func() {}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(done)
		tick := time.NewTicker(cfg.Interval)
		defer tick.Stop()
		var lastDone int64
		lastAt := start
		for {
			select {
			case <-quit:
				printProgress(cfg, start, &lastDone, &lastAt, true)
				return
			case <-tick.C:
				printProgress(cfg, start, &lastDone, &lastAt, false)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			<-done
		})
	}
}

func printProgress(cfg ProgressConfig, start time.Time, lastDone *int64, lastAt *time.Time, final bool) {
	snap := cfg.Registry.Snapshot()
	now := time.Now()
	done := snap.Counters["explore.executions_completed"] +
		snap.Counters["explore.executions_aborted"] +
		snap.Counters["explore.executions_quarantined"] +
		snap.Counters["explore.executions_pruned"]

	// Instantaneous rate over the last tick, falling back to the campaign
	// average on the first line.
	interval := now.Sub(*lastAt).Seconds()
	rate := 0.0
	if interval > 0 {
		rate = float64(done-*lastDone) / interval
	}
	if *lastDone == 0 && done > 0 {
		if el := now.Sub(start).Seconds(); el > 0 {
			rate = float64(done) / el
		}
	}
	*lastDone, *lastAt = done, now

	var b strings.Builder
	fmt.Fprintf(&b, "progress: %d execs", done)
	if rate > 0 {
		fmt.Fprintf(&b, " (%.0f/s)", rate)
	}
	remaining := int64(-1)
	if cfg.Total > 0 {
		remaining = cfg.Total - done
	} else if fd, ok := snap.Gauges["explore.frontier_depth"]; ok {
		remaining = fd
	}
	if remaining >= 0 && !final {
		if rate > 0 {
			eta := time.Duration(float64(remaining) / rate * float64(time.Second)).Round(time.Second)
			fmt.Fprintf(&b, ", frontier %d, eta %s", remaining, eta)
		} else {
			fmt.Fprintf(&b, ", frontier %d", remaining)
		}
	}
	if probes := snap.Counters["statecache.probes"]; probes > 0 {
		fmt.Fprintf(&b, ", cache %.0f%%", 100*float64(snap.Counters["statecache.hits"])/float64(probes))
	}
	for _, m := range persistModels(snap) {
		fmt.Fprintf(&b, ", %s[st=%d fl=%d fe=%d]",
			m,
			snap.Counters["persist."+m+".stores"],
			snap.Counters["persist."+m+".flushes"],
			snap.Counters["persist."+m+".fences"])
	}
	if final {
		fmt.Fprintf(&b, " — done in %s", now.Sub(start).Round(time.Millisecond))
	}
	fmt.Fprintln(cfg.Out, b.String())
}

// persistModels extracts the sorted model names present in a snapshot's
// persist.* counters.
func persistModels(s Snapshot) []string {
	set := map[string]bool{}
	for name := range s.Counters {
		rest, ok := strings.CutPrefix(name, "persist.")
		if !ok {
			continue
		}
		if model, _, ok := strings.Cut(rest, "."); ok {
			set[model] = true
		}
	}
	models := make([]string, 0, len(set))
	for m := range set {
		models = append(models, m)
	}
	sort.Strings(models)
	return models
}
