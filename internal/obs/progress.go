package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// ProgressConfig configures the live progress ticker.
type ProgressConfig struct {
	Out      io.Writer     // destination (typically stderr)
	Registry *Registry     // snapshot source
	Interval time.Duration // tick period; <= 0 defaults to 2s
	Total    int64         // execution budget for ETA; 0 = unknown (mc mode)
}

// StartProgress launches a goroutine that prints a progress line every
// Interval built from registry snapshots: execution rate, ETA (from the
// remaining budget, falling back to the frontier-depth gauge), cache hit
// ratio, and per-model persist counters. The returned stop function halts the
// ticker, prints one final line, and waits for the goroutine to exit; it is
// idempotent. Returns a no-op stop when Out or Registry is nil.
func StartProgress(cfg ProgressConfig) (stop func()) {
	if cfg.Out == nil || cfg.Registry == nil {
		return func() {}
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	quit := make(chan struct{})
	done := make(chan struct{})
	start := time.Now()
	go func() {
		defer close(done)
		tick := time.NewTicker(cfg.Interval)
		defer tick.Stop()
		st := &progressState{lastAt: start}
		for {
			select {
			case <-quit:
				printProgress(cfg, start, st, true)
				return
			case <-tick.C:
				printProgress(cfg, start, st, false)
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(quit)
			<-done
		})
	}
}

// progressState carries the between-tick deltas the rate estimates
// need: executions and scheduled memory operations at the last tick.
type progressState struct {
	lastDone int64
	lastOps  int64
	lastAt   time.Time
}

func printProgress(cfg ProgressConfig, start time.Time, st *progressState, final bool) {
	snap := cfg.Registry.Snapshot()
	now := time.Now()
	done := snap.Counters["explore.executions_completed"] +
		snap.Counters["explore.executions_aborted"] +
		snap.Counters["explore.executions_quarantined"] +
		snap.Counters["explore.executions_pruned"]
	ops := snap.Counters["pmem.schedule_steps"]

	// Instantaneous rates over the last tick, falling back to the
	// campaign average on the first line. The ops/s rate is what keeps a
	// long single-execution workload (window mode driving millions of
	// operations in one execution) from looking stalled: executions/s is
	// zero for minutes while ops/s is not.
	interval := now.Sub(st.lastAt).Seconds()
	rate, opsRate := 0.0, 0.0
	if interval > 0 {
		rate = float64(done-st.lastDone) / interval
		opsRate = float64(ops-st.lastOps) / interval
	}
	if st.lastDone == 0 && done > 0 {
		if el := now.Sub(start).Seconds(); el > 0 {
			rate = float64(done) / el
		}
	}
	if st.lastOps == 0 && ops > 0 {
		if el := now.Sub(start).Seconds(); el > 0 && opsRate == 0 {
			opsRate = float64(ops) / el
		}
	}
	st.lastDone, st.lastOps, st.lastAt = done, ops, now

	var b strings.Builder
	fmt.Fprintf(&b, "progress: %d execs", done)
	if rate > 0 {
		fmt.Fprintf(&b, " (%.0f/s)", rate)
	}
	if opsRate > 0 {
		fmt.Fprintf(&b, ", %s ops/s", humanCount(int64(opsRate)))
	}
	if ret := snap.Counters["pmem.retirements"]; ret > 0 {
		fmt.Fprintf(&b, ", window %d live (%d retirements)",
			snap.Gauges["pmem.window_retained"], ret)
	}
	remaining := int64(-1)
	if cfg.Total > 0 {
		remaining = cfg.Total - done
	} else if fd, ok := snap.Gauges["explore.frontier_depth"]; ok {
		remaining = fd
	}
	if remaining >= 0 && !final {
		if rate > 0 {
			eta := time.Duration(float64(remaining) / rate * float64(time.Second)).Round(time.Second)
			fmt.Fprintf(&b, ", frontier %d, eta %s", remaining, eta)
		} else {
			fmt.Fprintf(&b, ", frontier %d", remaining)
		}
	}
	if probes := snap.Counters["statecache.probes"]; probes > 0 {
		fmt.Fprintf(&b, ", cache %.0f%%", 100*float64(snap.Counters["statecache.hits"])/float64(probes))
	}
	for _, m := range persistModels(snap) {
		fmt.Fprintf(&b, ", %s[st=%d fl=%d fe=%d]",
			m,
			snap.Counters["persist."+m+".stores"],
			snap.Counters["persist."+m+".flushes"],
			snap.Counters["persist."+m+".fences"])
	}
	if final {
		fmt.Fprintf(&b, " — done in %s", now.Sub(start).Round(time.Millisecond))
	}
	fmt.Fprintln(cfg.Out, b.String())
}

// humanCount renders a count with a k/M suffix for progress lines.
func humanCount(n int64) string {
	switch {
	case n >= 10_000_000:
		return fmt.Sprintf("%dM", n/1_000_000)
	case n >= 1_000_000:
		return fmt.Sprintf("%.1fM", float64(n)/1_000_000)
	case n >= 10_000:
		return fmt.Sprintf("%dk", n/1_000)
	case n >= 1_000:
		return fmt.Sprintf("%.1fk", float64(n)/1_000)
	default:
		return fmt.Sprintf("%d", n)
	}
}

// persistModels extracts the sorted model names present in a snapshot's
// persist.* counters.
func persistModels(s Snapshot) []string {
	set := map[string]bool{}
	for name := range s.Counters {
		rest, ok := strings.CutPrefix(name, "persist.")
		if !ok {
			continue
		}
		if model, _, ok := strings.Cut(rest, "."); ok {
			set[model] = true
		}
	}
	models := make([]string, 0, len(set))
	for m := range set {
		models = append(models, m)
	}
	sort.Strings(models)
	return models
}
