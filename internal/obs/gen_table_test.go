package obs

import (
	"os"
	"testing"
)

// TestWriteCatalogTable is a generator escape hatch, not a check: run
// with PSAN_WRITE_METRICS_TABLE=<path> to dump the README table after
// editing the catalog. Skips otherwise.
func TestWriteCatalogTable(t *testing.T) {
	path := os.Getenv("PSAN_WRITE_METRICS_TABLE")
	if path == "" {
		t.Skip("set PSAN_WRITE_METRICS_TABLE to regenerate the README table")
	}
	if err := os.WriteFile(path, []byte(CatalogMarkdown()), 0o644); err != nil {
		t.Fatal(err)
	}
}
