package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// OpenMetrics text exposition for a registry snapshot: the /metrics
// format Prometheus-compatible scrapers consume. The rendering is
// deterministic — families sorted by name, samples sorted by label
// value, integer-rendered values — so two scrapes of identical
// registries are byte-identical, which is what the fleet-exactness
// tests and CI diffs rely on.

// omSample is one resolved sample: a dotted instrument mapped onto its
// family with labels attached.
type omSample struct {
	labels []Label
	value  int64
	hist   *HistogramSnapshot // histogram families only
}

// omFamily groups a family's samples with its metadata.
type omFamily struct {
	def     MetricDef
	samples []omSample
}

// WriteOpenMetrics renders the snapshot in OpenMetrics text format:
// HELP/TYPE metadata per family, `_total`-suffixed counter samples,
// histogram `_bucket`/`_sum`/`_count` series with cumulative `le`
// buckets, and the terminating `# EOF` line.
func WriteOpenMetrics(w io.Writer, s Snapshot) error {
	fams := map[string]*omFamily{}
	get := func(name, typ string) *omFamily {
		family, _ := ResolveName(name)
		f, ok := fams[family]
		if !ok {
			def, known := catalogHelp(family)
			if !known {
				def = MetricDef{Family: family, Type: typ, Help: "(uncataloged instrument " + name + ")"}
			}
			f = &omFamily{def: def}
			fams[family] = f
		}
		return f
	}
	for name, v := range s.Counters {
		_, labels := ResolveName(name)
		f := get(name, "counter")
		f.samples = append(f.samples, omSample{labels: labels, value: v})
	}
	for name, v := range s.Gauges {
		_, labels := ResolveName(name)
		f := get(name, "gauge")
		f.samples = append(f.samples, omSample{labels: labels, value: v})
	}
	for name := range s.Histograms {
		h := s.Histograms[name]
		_, labels := ResolveName(name)
		f := get(name, "histogram")
		f.samples = append(f.samples, omSample{labels: labels, hist: &h})
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)

	bw := bufio.NewWriter(w)
	for _, fn := range names {
		f := fams[fn]
		sort.Slice(f.samples, func(i, j int) bool {
			return labelString(f.samples[i].labels) < labelString(f.samples[j].labels)
		})
		fmt.Fprintf(bw, "# HELP %s %s\n", fn, f.def.Help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", fn, f.def.Type)
		for _, smp := range f.samples {
			switch f.def.Type {
			case "counter":
				fmt.Fprintf(bw, "%s_total%s %d\n", fn, labelString(smp.labels), smp.value)
			case "histogram":
				writeHistogramSample(bw, fn, smp.labels, *smp.hist)
			default:
				fmt.Fprintf(bw, "%s%s %d\n", fn, labelString(smp.labels), smp.value)
			}
		}
	}
	fmt.Fprint(bw, "# EOF\n")
	return bw.Flush()
}

// writeHistogramSample renders one histogram series: cumulative
// `le`-labeled buckets (the final +Inf bucket equals _count), then the
// _sum and _count samples.
func writeHistogramSample(w io.Writer, family string, labels []Label, h HistogramSnapshot) {
	cum := int64(0)
	for i, bound := range h.Bounds {
		if i < len(h.Counts) {
			cum += h.Counts[i]
		}
		le := append(append([]Label(nil), labels...), Label{"le", strconv.FormatInt(bound, 10)})
		fmt.Fprintf(w, "%s_bucket%s %d\n", family, labelString(le), cum)
	}
	le := append(append([]Label(nil), labels...), Label{"le", "+Inf"})
	fmt.Fprintf(w, "%s_bucket%s %d\n", family, labelString(le), h.Count)
	fmt.Fprintf(w, "%s_sum%s %d\n", family, labelString(labels), h.Sum)
	fmt.Fprintf(w, "%s_count%s %d\n", family, labelString(labels), h.Count)
}

// labelString renders a label set as {k="v",...}; empty set renders as
// the empty string.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the exposition-format label escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}
