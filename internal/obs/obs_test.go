package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilInstrumentsAreNoOps(t *testing.T) {
	// Every method on every nil instrument must be callable and allocation-free.
	var (
		c *Counter
		g *Gauge
		h *Histogram
		r *Registry
		o *Observer
		x *Tracer
	)
	allocs := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(5)
		_ = c.Value()
		g.Set(3)
		g.Add(-1)
		_ = g.Value()
		h.Observe(42)
		_ = h.Count()
		_ = r.Counter("x")
		_ = r.Gauge("x")
		_ = r.Histogram("x", DurationBuckets)
		_ = o.Reg()
		_ = o.Trace()
		_ = o.Enabled()
		x.Complete(1, "c", "n", time.Time{}, 0, 0)
		x.Instant(1, "c", "n", "")
		x.NameThread(1, "w")
	})
	if allocs != 0 {
		t.Fatalf("nil instruments allocated: %v allocs/op", allocs)
	}
	em := ExploreInstruments(nil)
	em.Started.Inc()
	em.Steals.Inc()
	em.StealFailures.Inc()
	em.WorkerIdle.Add(1234)
	cm := CacheInstruments(nil)
	cm.Probes.Inc()
	cm.ShardProbes.Inc()
	pm := PersistInstruments(nil, "px86")
	pm.Stores.Inc()
	wm := WorldInstruments(nil)
	wm.ScheduleSteps.Inc()
	km := WorkerInstruments(nil, 1)
	km.BusyNanos.Add(7)
	dm := DispatchInstruments(nil)
	dm.LeasesGranted.Inc()
	dm.LeasesExpired.Inc()
	dm.Redeliveries.Inc()
	dm.BackoffNanos.Add(1_000_000)
	dm.WorkerRestarts.Inc()
	dm.PoisonUnits.Inc()
	dm.WorkersLive.Set(4)
	dm.UnitNanos.Observe(99)
}

func TestEmptyObserverDisabled(t *testing.T) {
	o := &Observer{}
	if o.Enabled() {
		t.Fatal("observer with no sinks must report disabled")
	}
	if o.Reg() != nil || o.Trace() != nil {
		t.Fatal("empty observer must hand out nil sinks")
	}
}

func TestRegistryInstrumentsAndSnapshot(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("explore.executions_started")
	if c2 := r.Counter("explore.executions_started"); c2 != c {
		t.Fatal("counter lookup must be stable")
	}
	c.Inc()
	c.Add(2)
	r.Gauge("explore.frontier_depth").Set(17)
	h := r.Histogram("explore.execution_ns", DurationBuckets)
	h.Observe(500)           // bucket 0 (<=1µs)
	h.Observe(2_000_000_000) // overflow
	snap := r.Snapshot()
	if got := snap.Counters["explore.executions_started"]; got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if got := snap.Gauges["explore.frontier_depth"]; got != 17 {
		t.Fatalf("gauge = %d, want 17", got)
	}
	hs := snap.Histograms["explore.execution_ns"]
	if hs.Count != 2 || hs.Sum != 2_000_000_500 {
		t.Fatalf("histogram count/sum = %d/%d", hs.Count, hs.Sum)
	}
	if hs.Counts[0] != 1 || hs.Counts[len(hs.Counts)-1] != 1 {
		t.Fatalf("histogram buckets = %v", hs.Counts)
	}
	// Snapshot must serialize cleanly.
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["explore.executions_started"] != 3 {
		t.Fatal("snapshot did not round-trip through JSON")
	}
}

func TestCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
}

func TestTracerChromeAndJSONL(t *testing.T) {
	tr := NewTracer()
	tr.NameThread(0, "campaign")
	tr.NameThread(1, "worker-1")
	start := tr.Now()
	tr.Complete(1, "explore", "execution", start, 1500*time.Microsecond, 7)
	tr.Complete(0, "explore", "checkpoint-write", start, 10*time.Microsecond, -1)
	tr.Instant(0, "explore", "stop", "deadline")

	var chrome bytes.Buffer
	if err := tr.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	var env struct {
		TraceEvents []SpanEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	// 2 metadata + 3 events.
	if len(env.TraceEvents) != 5 {
		t.Fatalf("chrome events = %d, want 5", len(env.TraceEvents))
	}
	if env.TraceEvents[0].Ph != "M" || env.TraceEvents[0].Args.Name != "campaign" {
		t.Fatalf("first event should be campaign thread_name metadata, got %+v", env.TraceEvents[0])
	}
	var exec *SpanEvent
	for i := range env.TraceEvents {
		if env.TraceEvents[i].Name == "execution" {
			exec = &env.TraceEvents[i]
		}
	}
	if exec == nil || exec.Ph != "X" || exec.Dur != 1500 || exec.Args.Exec != 7 {
		t.Fatalf("execution span malformed: %+v", exec)
	}

	var jsonl bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(jsonl.String(), "\n")
	if lines != 5 {
		t.Fatalf("jsonl lines = %d, want 5", lines)
	}
}

func TestProvenanceNarrative(t *testing.T) {
	p := &Provenance{
		Kind: "read-too-old",
		Events: []ProvEvent{
			{Role: "racing-store", Op: "store", Loc: "x = 1", Thread: 0, SubExec: 0, Addr: "x", Value: 1, Note: "racing store"},
			{Role: "crash", Thread: 0, SubExec: 0, Note: "crash ended sub-execution 0"},
			{Role: "post-crash-read", Op: "load", Loc: "r = x", Thread: 0, SubExec: 1, Addr: "x", Note: "observed stale value"},
		},
	}
	n := p.Narrative()
	for _, want := range []string{"provenance (read-too-old)", "1. [sub-exec 0, thread 0] store x at \"x = 1\"", "racing store", "3."} {
		if !strings.Contains(n, want) {
			t.Fatalf("narrative missing %q:\n%s", want, n)
		}
	}
	var nilProv *Provenance
	if !nilProv.Empty() || nilProv.Narrative() != "" {
		t.Fatal("nil provenance must be empty")
	}
}

func TestProgressTicker(t *testing.T) {
	r := NewRegistry()
	r.Counter("explore.executions_completed").Add(50)
	r.Counter("statecache.probes").Add(10)
	r.Counter("statecache.hits").Add(4)
	r.Counter("persist.px86.stores").Add(123)
	var buf syncBuffer
	stop := StartProgress(ProgressConfig{Out: &buf, Registry: r, Interval: 10 * time.Millisecond, Total: 100})
	time.Sleep(35 * time.Millisecond)
	stop()
	stop() // idempotent
	out := buf.String()
	if !strings.Contains(out, "progress: 50 execs") {
		t.Fatalf("missing exec count:\n%s", out)
	}
	if !strings.Contains(out, "cache 40%") {
		t.Fatalf("missing cache ratio:\n%s", out)
	}
	if !strings.Contains(out, "px86[st=123") {
		t.Fatalf("missing per-model counters:\n%s", out)
	}
	if !strings.Contains(out, "— done in") {
		t.Fatalf("missing final line:\n%s", out)
	}
	// Nil config is a no-op.
	StartProgress(ProgressConfig{})()
}

type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestServeMetrics(t *testing.T) {
	r := NewRegistry()
	r.Counter("explore.executions_started").Add(9)
	srv, err := ServeMetrics("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) string {
		resp, err := http.Get(fmt.Sprintf("http://%s%s", srv.Addr, path))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	vars := get("/debug/vars")
	if !strings.Contains(vars, `"psan"`) || !strings.Contains(vars, "explore.executions_started") {
		t.Fatalf("expvar endpoint missing psan snapshot:\n%.400s", vars)
	}
	metrics := get("/metrics")
	if !strings.Contains(metrics, "psan_explore_executions_started_total 9") {
		t.Fatalf("/metrics missing OpenMetrics counter sample:\n%.400s", metrics)
	}
	if !strings.HasSuffix(metrics, "# EOF\n") {
		t.Fatalf("/metrics exposition not terminated with # EOF:\n%.400s", metrics)
	}
	jsonMetrics := get("/metrics.json")
	var snap Snapshot
	if err := json.Unmarshal([]byte(jsonMetrics), &snap); err != nil {
		t.Fatalf("/metrics.json is not a JSON snapshot: %v", err)
	}
	if snap.Counters["explore.executions_started"] != 9 {
		t.Fatalf("snapshot counter = %d, want 9", snap.Counters["explore.executions_started"])
	}
}
