package obs

import (
	"fmt"
	"strings"
)

// Provenance is the minimal event sub-trace explaining one robustness
// violation: the racing store, its flush/fence context, the crash point, and
// the post-crash read that observed the inconsistency. It is captured by the
// checker at flag time (the trace is recycled afterwards, so every field is a
// frozen copy) and rendered by report as an annotated narrative.
type Provenance struct {
	Kind   string      `json:"kind"`
	Events []ProvEvent `json:"events"`
}

// ProvEvent is one step of the violation's story.
type ProvEvent struct {
	// Role classifies the step: racing-store, flush-context, fence-context,
	// persisted-store, crash, post-crash-read.
	Role string `json:"role"`
	// Op is the instruction kind (store, clflush, clflushopt, sfence, ...).
	Op string `json:"op,omitempty"`
	// Loc is the source location ("file:line" or statement text).
	Loc string `json:"loc,omitempty"`
	// Thread and SubExec place the step on the execution timeline.
	Thread  int `json:"thread"`
	SubExec int `json:"sub_exec"`
	// Addr/Value identify the cell involved, when meaningful.
	Addr  string `json:"addr,omitempty"`
	Value uint64 `json:"value,omitempty"`
	// Note is the human-readable annotation for the narrative.
	Note string `json:"note"`
}

// Empty reports whether the record carries no events.
func (p *Provenance) Empty() bool {
	return p == nil || len(p.Events) == 0
}

// Narrative renders the record as an indented, numbered story suitable for
// appending under a violation report line.
func (p *Provenance) Narrative() string {
	if p.Empty() {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "    provenance (%s):\n", p.Kind)
	for i, ev := range p.Events {
		fmt.Fprintf(&b, "      %d. [sub-exec %d, thread %d]", i+1, ev.SubExec, ev.Thread)
		if ev.Op != "" {
			fmt.Fprintf(&b, " %s", ev.Op)
		}
		if ev.Addr != "" {
			fmt.Fprintf(&b, " %s", ev.Addr)
		}
		if ev.Loc != "" {
			fmt.Fprintf(&b, " at %q", ev.Loc)
		}
		if ev.Note != "" {
			fmt.Fprintf(&b, " — %s", ev.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
