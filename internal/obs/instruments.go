package obs

import "strconv"

// This file is the instrument catalog: every named instrument the stack emits
// is declared here, resolved once per campaign via the *Instruments
// constructors. Building a bundle from a nil registry yields all-nil
// instruments, i.e. a complete no-op bundle.

// ExploreMetrics covers the exploration engines (both modes).
type ExploreMetrics struct {
	Started     *Counter // explore.executions_started
	Completed   *Counter // explore.executions_completed
	Aborted     *Counter // explore.executions_aborted (deadline/cancel/op-budget)
	Quarantined *Counter // explore.executions_quarantined (panic containment)
	Pruned      *Counter // explore.executions_pruned (state-cache or DPOR prune, mc mode)

	SnapshotsTaken    *Counter // explore.snapshots_taken (crash-boundary world snapshots)
	SnapshotsRestored *Counter // explore.snapshots_restored (executions resumed from one)
	DPORPruned        *Counter // explore.dpor_pruned (deeper-crash prunes; subset of Pruned)

	Steals        *Counter // explore.steals (work units donated to idle workers, mc mode)
	StealFailures *Counter // explore.steal_failures (workers that went hungry and exited unfed)
	WorkerIdle    *Counter // explore.worker_idle_ns (aggregate idle time across all workers)

	StopDeadline *Counter // explore.stops_deadline
	StopCanceled *Counter // explore.stops_canceled

	FrontierDepth *Gauge     // explore.frontier_depth
	ExecNanos     *Histogram // explore.execution_ns
}

// ExploreInstruments resolves the explore bundle from r (all-nil if r is nil).
func ExploreInstruments(r *Registry) ExploreMetrics {
	if r == nil {
		return ExploreMetrics{}
	}
	return ExploreMetrics{
		Started:           r.Counter("explore.executions_started"),
		Completed:         r.Counter("explore.executions_completed"),
		Aborted:           r.Counter("explore.executions_aborted"),
		Quarantined:       r.Counter("explore.executions_quarantined"),
		Pruned:            r.Counter("explore.executions_pruned"),
		SnapshotsTaken:    r.Counter("explore.snapshots_taken"),
		SnapshotsRestored: r.Counter("explore.snapshots_restored"),
		DPORPruned:        r.Counter("explore.dpor_pruned"),
		Steals:            r.Counter("explore.steals"),
		StealFailures:     r.Counter("explore.steal_failures"),
		WorkerIdle:        r.Counter("explore.worker_idle_ns"),
		StopDeadline:      r.Counter("explore.stops_deadline"),
		StopCanceled:      r.Counter("explore.stops_canceled"),
		FrontierDepth:     r.Gauge("explore.frontier_depth"),
		ExecNanos:         r.Histogram("explore.execution_ns", DurationBuckets),
	}
}

// CacheMetrics covers the post-crash state cache. Misses are split by
// fingerprint class: a miss whose persistence fingerprint was never seen
// before (new image) versus one whose image was seen but paired with a new
// heap size (new heap). Evictions is always 0 today — the cache has no
// eviction policy — but is part of the catalog so dashboards don't special-
// case its absence.
type CacheMetrics struct {
	Probes       *Counter // statecache.probes
	Hits         *Counter // statecache.hits
	Misses       *Counter // statecache.misses
	MissNewImage *Counter // statecache.misses_new_image
	MissNewHeap  *Counter // statecache.misses_new_heap
	Evictions    *Counter // statecache.evictions
	Entries      *Gauge   // statecache.entries
	ShardProbes  *Counter // statecache.shard_probes (shard-lock acquisitions)
}

// CacheInstruments resolves the state-cache bundle from r.
func CacheInstruments(r *Registry) CacheMetrics {
	if r == nil {
		return CacheMetrics{}
	}
	return CacheMetrics{
		Probes:       r.Counter("statecache.probes"),
		Hits:         r.Counter("statecache.hits"),
		Misses:       r.Counter("statecache.misses"),
		MissNewImage: r.Counter("statecache.misses_new_image"),
		MissNewHeap:  r.Counter("statecache.misses_new_heap"),
		Evictions:    r.Counter("statecache.evictions"),
		Entries:      r.Gauge("statecache.entries"),
		ShardProbes:  r.Counter("statecache.shard_probes"),
	}
}

// PersistMetrics covers one persistency-model backend. Instruments are named
// persist.<model>.<op> so differential campaigns report per-model counters.
type PersistMetrics struct {
	Stores    *Counter // persist.<model>.stores
	Flushes   *Counter // persist.<model>.flushes
	FlushOpts *Counter // persist.<model>.flushopts
	Fences    *Counter // persist.<model>.fences (sfence + mfence)
	Drains    *Counter // persist.<model>.drains (scheduler-chosen buffer commits)
	Crashes   *Counter // persist.<model>.crashes
	Resolved  *Counter // persist.<model>.candidates_resolved
}

// PersistInstruments resolves the backend bundle for the named model from r.
func PersistInstruments(r *Registry, model string) PersistMetrics {
	if r == nil {
		return PersistMetrics{}
	}
	p := "persist." + model + "."
	return PersistMetrics{
		Stores:    r.Counter(p + "stores"),
		Flushes:   r.Counter(p + "flushes"),
		FlushOpts: r.Counter(p + "flushopts"),
		Fences:    r.Counter(p + "fences"),
		Drains:    r.Counter(p + "drains"),
		Crashes:   r.Counter(p + "crashes"),
		Resolved:  r.Counter(p + "candidates_resolved"),
	}
}

// WorldMetrics covers the simulated machine shared by interp and pmem.
// The retirement instruments move only under bounded-window mode
// (persist.Config.Window > 0); they stay zero on unbounded campaigns.
type WorldMetrics struct {
	ScheduleSteps *Counter // pmem.schedule_steps (one per scheduled memory op)
	InterpSteps   *Counter // interp.steps (one per interpreted statement)

	Retirements    *Counter   // pmem.retirements (completed window sweeps)
	RetiredStores  *Counter   // pmem.retired_stores (store records released)
	RetiredEvents  *Counter   // pmem.retired_events (event records released)
	WindowRetained *Gauge     // pmem.window_retained (event-log occupancy after the last sweep)
	PinnedRoots    *Gauge     // pmem.pinned_roots (pin-closure size of the last sweep)
	SweepNanos     *Histogram // pmem.retire_sweep_ns (per-sweep wall time)
}

// WorldInstruments resolves the world bundle from r.
func WorldInstruments(r *Registry) WorldMetrics {
	if r == nil {
		return WorldMetrics{}
	}
	return WorldMetrics{
		ScheduleSteps:  r.Counter("pmem.schedule_steps"),
		InterpSteps:    r.Counter("interp.steps"),
		Retirements:    r.Counter("pmem.retirements"),
		RetiredStores:  r.Counter("pmem.retired_stores"),
		RetiredEvents:  r.Counter("pmem.retired_events"),
		WindowRetained: r.Gauge("pmem.window_retained"),
		PinnedRoots:    r.Gauge("pmem.pinned_roots"),
		SweepNanos:     r.Histogram("pmem.retire_sweep_ns", DurationBuckets),
	}
}

// DispatchMetrics covers the process-isolation supervisor
// (internal/dispatch). These are supervisor-side instruments; the
// per-execution explore.*/pmem.*/persist.* counters accrue in the
// worker processes' registries and are merged into the supervisor's
// via snapshot deltas on the heartbeat/result wire messages, so the
// supervisor registry carries the whole fleet's telemetry.
type DispatchMetrics struct {
	UnitsDispatched *Counter   // dispatch.units_dispatched (unit deliveries, incl. redeliveries)
	UnitsMerged     *Counter   // dispatch.units_merged (unit results assembled)
	LeasesGranted   *Counter   // dispatch.leases_granted
	LeasesExpired   *Counter   // dispatch.leases_expired (heartbeat deadline passed)
	Redeliveries    *Counter   // dispatch.redeliveries (failed/expired units re-enqueued)
	BackoffNanos    *Counter   // dispatch.backoff_ns (aggregate redelivery delay)
	WorkerRestarts  *Counter   // dispatch.worker_restarts (replacement processes spawned)
	PoisonUnits     *Counter   // dispatch.poison_units (units quarantined past the retry budget)
	Degraded        *Counter   // dispatch.degraded (fallbacks to in-process execution)
	WorkersLive     *Gauge     // dispatch.workers_live
	UnitNanos       *Histogram // dispatch.unit_ns (delivery-to-merge latency)
}

// DispatchInstruments resolves the supervisor bundle from r.
func DispatchInstruments(r *Registry) DispatchMetrics {
	if r == nil {
		return DispatchMetrics{}
	}
	return DispatchMetrics{
		UnitsDispatched: r.Counter("dispatch.units_dispatched"),
		UnitsMerged:     r.Counter("dispatch.units_merged"),
		LeasesGranted:   r.Counter("dispatch.leases_granted"),
		LeasesExpired:   r.Counter("dispatch.leases_expired"),
		Redeliveries:    r.Counter("dispatch.redeliveries"),
		BackoffNanos:    r.Counter("dispatch.backoff_ns"),
		WorkerRestarts:  r.Counter("dispatch.worker_restarts"),
		PoisonUnits:     r.Counter("dispatch.poison_units"),
		Degraded:        r.Counter("dispatch.degraded"),
		WorkersLive:     r.Gauge("dispatch.workers_live"),
		UnitNanos:       r.Histogram("dispatch.unit_ns", DurationBuckets),
	}
}

// WorkerMetrics covers one pool worker. Instruments are named
// pool.worker<N>.<field>; N is the 1-based worker id that also serves as the
// trace timeline tid.
type WorkerMetrics struct {
	BusyNanos  *Counter // pool.worker<N>.busy_ns
	IdleNanos  *Counter // pool.worker<N>.idle_ns
	Dispatches *Counter // pool.worker<N>.dispatches
}

// WorkerInstruments resolves the bundle for worker id (1-based) from r.
func WorkerInstruments(r *Registry, id int) WorkerMetrics {
	if r == nil {
		return WorkerMetrics{}
	}
	p := "pool.worker" + strconv.Itoa(id) + "."
	return WorkerMetrics{
		BusyNanos:  r.Counter(p + "busy_ns"),
		IdleNanos:  r.Counter(p + "idle_ns"),
		Dispatches: r.Counter(p + "dispatches"),
	}
}
