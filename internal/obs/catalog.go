package obs

import (
	"sort"
	"strings"
)

// The exported-metric catalog: the deterministic mapping from the
// dotted instrument names of instruments.go to OpenMetrics metric
// families, plus the HELP/TYPE metadata the /metrics exposition and the
// README reference table are generated from.
//
// Mapping rules (ResolveName):
//
//	persist.<model>.<op>  -> psan_persist_<op>{model="<model>"}
//	pool.worker<N>.<f>    -> psan_pool_worker_<f>{worker="<N>"}
//	anything else         -> psan_ + name with '.' -> '_'
//
// The mapping is injective over the catalog: every dotted name resolves
// to exactly one (family, label set), and resolving the same name twice
// yields byte-identical output, so scrapes diff cleanly across runs.

// MetricDef describes one OpenMetrics metric family.
type MetricDef struct {
	Family string   // e.g. "psan_explore_executions_started"
	Type   string   // "counter", "gauge", or "histogram"
	Labels []string // label keys, e.g. ["model"]; nil for none
	Help   string
}

// Label is one resolved label pair.
type Label struct {
	Key, Value string
}

// ResolveName maps a dotted instrument name to its OpenMetrics family
// and labels per the catalog rules above.
func ResolveName(name string) (string, []Label) {
	if rest, ok := strings.CutPrefix(name, "persist."); ok {
		if model, op, ok := strings.Cut(rest, "."); ok {
			return "psan_persist_" + sanitizeMetric(op), []Label{{"model", model}}
		}
	}
	if rest, ok := strings.CutPrefix(name, "pool.worker"); ok {
		if i := strings.IndexByte(rest, '.'); i > 0 && isDigits(rest[:i]) {
			return "psan_pool_worker_" + sanitizeMetric(rest[i+1:]), []Label{{"worker", rest[:i]}}
		}
	}
	return "psan_" + sanitizeMetric(name), nil
}

func isDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// sanitizeMetric rewrites a dotted-name fragment into the OpenMetrics
// name alphabet: dots become underscores, anything outside
// [a-zA-Z0-9_] becomes '_'.
func sanitizeMetric(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// catalog is the authoritative family list. Keep it in sync with
// instruments.go: TestCatalogCoversInstruments walks a fully-resolved
// registry and fails on any instrument whose family is missing here,
// and the README "Exported metrics" table is checked against it.
var catalog = []MetricDef{
	{"psan_explore_executions_started", "counter", nil, "Executions started by the exploration engines."},
	{"psan_explore_executions_completed", "counter", nil, "Executions that ran to completion."},
	{"psan_explore_executions_aborted", "counter", nil, "Executions aborted on a deadline, cancellation, or op budget."},
	{"psan_explore_executions_quarantined", "counter", nil, "Executions quarantined after a contained panic."},
	{"psan_explore_executions_pruned", "counter", nil, "Model-check executions pruned by the state cache or DPOR."},
	{"psan_explore_snapshots_taken", "counter", nil, "Crash-boundary world snapshots taken."},
	{"psan_explore_snapshots_restored", "counter", nil, "Executions resumed from a world snapshot."},
	{"psan_explore_dpor_pruned", "counter", nil, "Deeper-crash states pruned by partial-order reduction."},
	{"psan_explore_steals", "counter", nil, "Work units donated to idle workers (model-check mode)."},
	{"psan_explore_steal_failures", "counter", nil, "Workers that went hungry and exited unfed."},
	{"psan_explore_worker_idle_ns", "counter", nil, "Aggregate worker idle time in nanoseconds."},
	{"psan_explore_stops_deadline", "counter", nil, "Campaign stops latched by the wall-clock deadline."},
	{"psan_explore_stops_canceled", "counter", nil, "Campaign stops latched by context cancellation."},
	{"psan_explore_frontier_depth", "gauge", nil, "Unexplored frontier remaining (random mode: executions left)."},
	{"psan_explore_execution_ns", "histogram", nil, "Per-execution wall time in nanoseconds."},

	{"psan_statecache_probes", "counter", nil, "Post-crash state-cache lookups."},
	{"psan_statecache_hits", "counter", nil, "State-cache hits (subtree already explored)."},
	{"psan_statecache_misses", "counter", nil, "State-cache misses."},
	{"psan_statecache_misses_new_image", "counter", nil, "Misses whose persistence fingerprint was never seen."},
	{"psan_statecache_misses_new_heap", "counter", nil, "Misses whose image was seen with a different heap size."},
	{"psan_statecache_evictions", "counter", nil, "State-cache evictions (always 0: no eviction policy)."},
	{"psan_statecache_entries", "gauge", nil, "Live state-cache entries."},
	{"psan_statecache_shard_probes", "counter", nil, "State-cache shard-lock acquisitions."},

	{"psan_persist_stores", "counter", []string{"model"}, "Persistent stores issued, per persistency-model backend."},
	{"psan_persist_flushes", "counter", []string{"model"}, "Cache-line flushes (clflush) per backend."},
	{"psan_persist_flushopts", "counter", []string{"model"}, "Optimized flushes (clflushopt/clwb) per backend."},
	{"psan_persist_fences", "counter", []string{"model"}, "Store fences (sfence + mfence) per backend."},
	{"psan_persist_drains", "counter", []string{"model"}, "Scheduler-chosen store-buffer commits per backend."},
	{"psan_persist_crashes", "counter", []string{"model"}, "Simulated crashes per backend."},
	{"psan_persist_candidates_resolved", "counter", []string{"model"}, "Post-crash read candidates resolved per backend."},

	{"psan_pmem_schedule_steps", "counter", nil, "Scheduled memory operations in the simulated machine."},
	{"psan_interp_steps", "counter", nil, "Interpreted statements executed."},
	{"psan_pmem_retirements", "counter", nil, "Completed bounded-window retirement sweeps."},
	{"psan_pmem_retired_stores", "counter", nil, "Store records released by retirement sweeps."},
	{"psan_pmem_retired_events", "counter", nil, "Event records released by retirement sweeps."},
	{"psan_pmem_window_retained", "gauge", nil, "Event-log occupancy after the last retirement sweep."},
	{"psan_pmem_pinned_roots", "gauge", nil, "Pin-closure size (stores kept live) of the last retirement sweep."},
	{"psan_pmem_retire_sweep_ns", "histogram", nil, "Wall time of each bounded-window retirement sweep in nanoseconds."},

	{"psan_dispatch_units_dispatched", "counter", nil, "Work-unit deliveries to worker processes, redeliveries included."},
	{"psan_dispatch_units_merged", "counter", nil, "Work-unit results assembled into the campaign stream."},
	{"psan_dispatch_leases_granted", "counter", nil, "Unit leases granted."},
	{"psan_dispatch_leases_expired", "counter", nil, "Leases expired after heartbeat silence."},
	{"psan_dispatch_redeliveries", "counter", nil, "Failed or expired units re-enqueued for redelivery."},
	{"psan_dispatch_backoff_ns", "counter", nil, "Aggregate redelivery backoff delay in nanoseconds."},
	{"psan_dispatch_worker_restarts", "counter", nil, "Replacement worker processes spawned."},
	{"psan_dispatch_poison_units", "counter", nil, "Units quarantined as poison past the retry budget."},
	{"psan_dispatch_degraded", "counter", nil, "Fallbacks to in-process (degraded) execution."},
	{"psan_dispatch_workers_live", "gauge", nil, "Live worker processes."},
	{"psan_dispatch_unit_ns", "histogram", nil, "Unit delivery-to-merge latency in nanoseconds."},

	{"psan_pool_worker_busy_ns", "counter", []string{"worker"}, "Per-pool-worker busy time in nanoseconds."},
	{"psan_pool_worker_idle_ns", "counter", []string{"worker"}, "Per-pool-worker idle time in nanoseconds."},
	{"psan_pool_worker_dispatches", "counter", []string{"worker"}, "Per-pool-worker execution dispatches."},
}

// Catalog returns the exported-metric catalog sorted by family name.
func Catalog() []MetricDef {
	out := make([]MetricDef, len(catalog))
	copy(out, catalog)
	sort.Slice(out, func(i, j int) bool { return out[i].Family < out[j].Family })
	return out
}

// CatalogMarkdown renders the catalog as the markdown table embedded
// in README.md under "Exported metrics". TestReadmeMetricsTable
// regenerates it and fails on drift, so the README row set is always
// exactly the exported family set.
func CatalogMarkdown() string {
	var b strings.Builder
	b.WriteString("| Metric | Type | Labels | Description |\n")
	b.WriteString("|---|---|---|---|\n")
	for _, d := range Catalog() {
		labels := ""
		if len(d.Labels) > 0 {
			labels = "`" + strings.Join(d.Labels, "`, `") + "`"
		}
		b.WriteString("| `" + d.Family + "` | " + d.Type + " | " + labels + " | " + d.Help + " |\n")
	}
	return b.String()
}

// catalogHelp returns the family's catalog entry, if any.
func catalogHelp(family string) (MetricDef, bool) {
	for _, d := range catalog {
		if d.Family == family {
			return d, true
		}
	}
	return MetricDef{}, false
}
