package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Tracer records campaign spans and renders them as JSONL (one event per
// line) or Chrome trace_event JSON loadable in chrome://tracing / Perfetto.
//
// Timelines are keyed by tid: tid 0 is the campaign/collector thread, worker
// tids are 1-based. Timestamps are microseconds since the tracer was created,
// as the trace_event format expects. A nil *Tracer is a no-op; recording
// takes one mutex acquisition and one slice append per span, which is
// acceptable because tracing is opt-in (-trace-out).
type Tracer struct {
	start time.Time

	mu     sync.Mutex
	events []SpanEvent
	names  map[int]string // tid -> timeline name
}

// SpanEvent is one Chrome trace_event record. Ph "X" is a complete span with
// a duration; "i" is an instant; "M" is metadata (thread names).
type SpanEvent struct {
	Name string    `json:"name"`
	Cat  string    `json:"cat,omitempty"`
	Ph   string    `json:"ph"`
	Pid  int       `json:"pid"`
	Tid  int       `json:"tid"`
	Ts   int64     `json:"ts"`            // µs since tracer start
	Dur  int64     `json:"dur,omitempty"` // µs, "X" events only
	Args *SpanArgs `json:"args,omitempty"`
}

// SpanArgs carries the span's structured payload.
type SpanArgs struct {
	Exec int64  `json:"exec,omitempty"`
	Name string `json:"name,omitempty"`
	Note string `json:"note,omitempty"`
}

// NewTracer returns a tracer whose clock starts now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now(), names: make(map[int]string)}
}

// Now returns the tracer's current timestamp origin for starting a span.
// Returns the zero time on a nil tracer so disabled spans cost a nil check.
func (t *Tracer) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

func (t *Tracer) ts(at time.Time) int64 {
	d := at.Sub(t.start)
	if d < 0 {
		d = 0
	}
	return d.Microseconds()
}

// Complete records a finished span on timeline tid. exec < 0 omits the exec
// arg. No-op on a nil tracer.
func (t *Tracer) Complete(tid int, cat, name string, start time.Time, dur time.Duration, exec int64) {
	if t == nil {
		return
	}
	ev := SpanEvent{
		Name: name, Cat: cat, Ph: "X",
		Tid: tid, Ts: t.ts(start), Dur: dur.Microseconds(),
	}
	if exec >= 0 {
		ev.Args = &SpanArgs{Exec: exec}
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// CompleteSince records a finished span whose start came from Now(),
// measuring the duration itself. On a nil tracer it is a no-op, and the
// paired Now() returned the zero time — the disabled path reads no clock.
func (t *Tracer) CompleteSince(tid int, cat, name string, start time.Time, exec int64) {
	if t == nil {
		return
	}
	t.Complete(tid, cat, name, start, time.Since(start), exec)
}

// Instant records a point event on timeline tid. No-op on a nil tracer.
func (t *Tracer) Instant(tid int, cat, name, note string) {
	if t == nil {
		return
	}
	ev := SpanEvent{Name: name, Cat: cat, Ph: "i", Tid: tid, Ts: t.ts(time.Now())}
	if note != "" {
		ev.Args = &SpanArgs{Note: note}
	}
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// NameThread labels timeline tid (e.g. "worker-3", "campaign"). No-op on a
// nil tracer.
func (t *Tracer) NameThread(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.names[tid] = name
	t.mu.Unlock()
}

// Events returns a copy of the recorded spans in recording order.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanEvent, len(t.events))
	copy(out, t.events)
	return out
}

// all returns spans plus synthesized thread_name metadata events.
func (t *Tracer) all() []SpanEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanEvent, 0, len(t.events)+len(t.names))
	tids := make([]int, 0, len(t.names))
	for tid := range t.names {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		out = append(out, SpanEvent{
			Name: "thread_name", Ph: "M", Tid: tid,
			Args: &SpanArgs{Name: t.names[tid]},
		})
	}
	out = append(out, t.events...)
	return out
}

// WriteJSONL writes one JSON event per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.all() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteChrome writes the Chrome trace_event envelope:
// {"traceEvents":[...], "displayTimeUnit":"ms"}.
func (t *Tracer) WriteChrome(w io.Writer) error {
	env := struct {
		TraceEvents     []SpanEvent `json:"traceEvents"`
		DisplayTimeUnit string      `json:"displayTimeUnit"`
	}{t.all(), "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(env)
}

// WriteFiles writes the Chrome trace to path and the JSONL form to
// path+".jsonl".
func (t *Tracer) WriteFiles(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return fmt.Errorf("write chrome trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	jf, err := os.Create(path + ".jsonl")
	if err != nil {
		return err
	}
	if err := t.WriteJSONL(jf); err != nil {
		jf.Close()
		return fmt.Errorf("write jsonl trace: %w", err)
	}
	return jf.Close()
}
