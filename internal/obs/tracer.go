package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Tracer records campaign spans and renders them as JSONL (one event per
// line) or Chrome trace_event JSON loadable in chrome://tracing / Perfetto.
//
// Timelines are keyed by (pid, tid): tid 0 is the campaign/collector thread,
// worker tids are 1-based. Pid 0 is this process unless SetPid assigns one
// (worker processes stamp their OS pid so fleet-merged traces keep their
// timelines apart). Timestamps are microseconds since the tracer was created,
// as the trace_event format expects. A nil *Tracer is a no-op; recording
// takes one mutex acquisition and one slice append per span, which is
// acceptable because tracing is opt-in (-trace-out).
type Tracer struct {
	start time.Time

	mu        sync.Mutex
	pid       int
	events    []SpanEvent
	names     map[timelineKey]string // (pid, tid) -> timeline name
	procNames map[int]string         // pid -> process name
}

// timelineKey identifies one timeline in a (possibly fleet-merged) trace.
type timelineKey struct{ pid, tid int }

// SpanEvent is one Chrome trace_event record. Ph "X" is a complete span with
// a duration; "i" is an instant; "M" is metadata (thread names).
type SpanEvent struct {
	Name string    `json:"name"`
	Cat  string    `json:"cat,omitempty"`
	Ph   string    `json:"ph"`
	Pid  int       `json:"pid"`
	Tid  int       `json:"tid"`
	Ts   int64     `json:"ts"`            // µs since tracer start
	Dur  int64     `json:"dur,omitempty"` // µs, "X" events only
	Args *SpanArgs `json:"args,omitempty"`
}

// SpanArgs carries the span's structured payload.
type SpanArgs struct {
	Exec int64  `json:"exec,omitempty"`
	Name string `json:"name,omitempty"`
	Note string `json:"note,omitempty"`
	// Unit tags a span with the dispatch work-unit id it ran under
	// (fleet-merged traces; 0 when untagged — unit ids on the wire are
	// offset by one so unit 0 survives omitempty).
	Unit int `json:"unit,omitempty"`
}

// NewTracer returns a tracer whose clock starts now.
func NewTracer() *Tracer {
	return &Tracer{
		start:     time.Now(),
		names:     make(map[timelineKey]string),
		procNames: make(map[int]string),
	}
}

// SetPid stamps subsequently recorded spans with pid. Worker processes
// call it once at startup so their shipped spans land on distinct
// process rows in the merged trace. No-op on a nil tracer.
func (t *Tracer) SetPid(pid int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.pid = pid
	t.mu.Unlock()
}

// StartUnixNano returns the tracer's clock origin as Unix nanoseconds
// (0 on a nil tracer). Workers report it in the ready handshake so the
// supervisor can rebase their relative timestamps.
func (t *Tracer) StartUnixNano() int64 {
	if t == nil {
		return 0
	}
	return t.start.UnixNano()
}

// Now returns the tracer's current timestamp origin for starting a span.
// Returns the zero time on a nil tracer so disabled spans cost a nil check.
func (t *Tracer) Now() time.Time {
	if t == nil {
		return time.Time{}
	}
	return time.Now()
}

func (t *Tracer) ts(at time.Time) int64 {
	d := at.Sub(t.start)
	if d < 0 {
		d = 0
	}
	return d.Microseconds()
}

// Complete records a finished span on timeline tid. exec < 0 omits the exec
// arg. No-op on a nil tracer.
func (t *Tracer) Complete(tid int, cat, name string, start time.Time, dur time.Duration, exec int64) {
	if t == nil {
		return
	}
	ev := SpanEvent{
		Name: name, Cat: cat, Ph: "X",
		Tid: tid, Ts: t.ts(start), Dur: dur.Microseconds(),
	}
	if exec >= 0 {
		ev.Args = &SpanArgs{Exec: exec}
	}
	t.mu.Lock()
	ev.Pid = t.pid
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// CompleteSince records a finished span whose start came from Now(),
// measuring the duration itself. On a nil tracer it is a no-op, and the
// paired Now() returned the zero time — the disabled path reads no clock.
func (t *Tracer) CompleteSince(tid int, cat, name string, start time.Time, exec int64) {
	if t == nil {
		return
	}
	t.Complete(tid, cat, name, start, time.Since(start), exec)
}

// Instant records a point event on timeline tid. No-op on a nil tracer.
func (t *Tracer) Instant(tid int, cat, name, note string) {
	if t == nil {
		return
	}
	ev := SpanEvent{Name: name, Cat: cat, Ph: "i", Tid: tid, Ts: t.ts(time.Now())}
	if note != "" {
		ev.Args = &SpanArgs{Note: note}
	}
	t.mu.Lock()
	ev.Pid = t.pid
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// NameThread labels this process's timeline tid (e.g. "worker-3",
// "campaign"). No-op on a nil tracer.
func (t *Tracer) NameThread(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.names[timelineKey{t.pid, tid}] = name
	t.mu.Unlock()
}

// NameThreadFor labels timeline tid of process pid — the supervisor
// uses it to label ingested worker timelines. No-op on a nil tracer.
func (t *Tracer) NameThreadFor(pid, tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.names[timelineKey{pid, tid}] = name
	t.mu.Unlock()
}

// NameProcess labels a process row in the merged trace. No-op on a nil
// tracer.
func (t *Tracer) NameProcess(pid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.procNames[pid] = name
	t.mu.Unlock()
}

// Events returns a copy of the recorded spans in recording order.
func (t *Tracer) Events() []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanEvent, len(t.events))
	copy(out, t.events)
	return out
}

// EventCount returns how many spans have been recorded so far (0 on a
// nil tracer). With EventsSince it forms the incremental-shipping
// cursor worker processes use.
func (t *Tracer) EventCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// EventsSince returns a copy of the spans recorded at index n and
// later (the tail past an EventCount cursor).
func (t *Tracer) EventsSince(n int) []SpanEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n >= len(t.events) {
		return nil
	}
	out := make([]SpanEvent, len(t.events)-n)
	copy(out, t.events[n:])
	return out
}

// Ingest appends spans recorded by another process's tracer, rebasing
// their timestamps from that tracer's clock onto this one via the
// remote clock origin (StartUnixNano from the worker's ready
// handshake; both clocks are the same machine's wall clock). Rebased
// timestamps that land before this tracer started clamp to 0. No-op on
// a nil tracer.
func (t *Tracer) Ingest(events []SpanEvent, remoteStartUnixNs int64) {
	if t == nil || len(events) == 0 {
		return
	}
	offsetMicros := (remoteStartUnixNs - t.start.UnixNano()) / 1_000
	t.mu.Lock()
	for _, ev := range events {
		ev.Ts += offsetMicros
		if ev.Ts < 0 {
			ev.Ts = 0
		}
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// all returns spans plus synthesized process_name/thread_name metadata
// events, ordered process rows first then timelines by (pid, tid).
func (t *Tracer) all() []SpanEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanEvent, 0, len(t.events)+len(t.names)+len(t.procNames))
	pids := make([]int, 0, len(t.procNames))
	for pid := range t.procNames {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		out = append(out, SpanEvent{
			Name: "process_name", Ph: "M", Pid: pid,
			Args: &SpanArgs{Name: t.procNames[pid]},
		})
	}
	keys := make([]timelineKey, 0, len(t.names))
	for k := range t.names {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].tid < keys[j].tid
	})
	for _, k := range keys {
		out = append(out, SpanEvent{
			Name: "thread_name", Ph: "M", Pid: k.pid, Tid: k.tid,
			Args: &SpanArgs{Name: t.names[k]},
		})
	}
	out = append(out, t.events...)
	return out
}

// WriteJSONL writes one JSON event per line.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range t.all() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteChrome writes the Chrome trace_event envelope:
// {"traceEvents":[...], "displayTimeUnit":"ms"}.
func (t *Tracer) WriteChrome(w io.Writer) error {
	env := struct {
		TraceEvents     []SpanEvent `json:"traceEvents"`
		DisplayTimeUnit string      `json:"displayTimeUnit"`
	}{t.all(), "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(env)
}

// WriteFiles writes the Chrome trace to path and the JSONL form to
// path+".jsonl".
func (t *Tracer) WriteFiles(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteChrome(f); err != nil {
		f.Close()
		return fmt.Errorf("write chrome trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	jf, err := os.Create(path + ".jsonl")
	if err != nil {
		return err
	}
	if err := t.WriteJSONL(jf); err != nil {
		jf.Close()
		return fmt.Errorf("write jsonl trace: %w", err)
	}
	return jf.Close()
}
