package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// The campaign flight recorder: a bounded in-memory ring of structured
// events covering the moments a post-mortem needs — work-unit steals,
// lease redeliveries, poison quarantines, retirement sweeps, state-
// cache evictions, stop-reason transitions. Recording is cheap (one
// mutex + ring slot write, no allocation after warm-up) and the ring is
// bounded, so the recorder can run for the whole campaign and be
// dumped only when something goes wrong (poison, ExecError, SIGQUIT)
// or when asked (-flight-out).
//
// Like every obs instrument, a nil *FlightRecorder is a no-op, so
// instrumented code records unconditionally and the disabled path costs
// a nil check.

// DefaultFlightEvents is the ring capacity CLIs use.
const DefaultFlightEvents = 4096

// FlightEvent is one recorded moment.
type FlightEvent struct {
	// Seq is the 1-based global sequence number; gaps at the front of a
	// dump mean the ring wrapped and older events were dropped.
	Seq uint64 `json:"seq"`
	// TS is the wall-clock time in Unix nanoseconds.
	TS int64 `json:"ts"`
	// Pid distinguishes processes in a fleet-merged dump (0: this
	// process never set one).
	Pid int `json:"pid,omitempty"`
	// Cat groups events ("dispatch", "explore", "pmem", ...).
	Cat string `json:"cat"`
	// Name is the event kind ("steal", "redelivery", "poison", ...).
	Name string `json:"name"`
	// Unit is the dispatch work-unit id the event concerns (-1: none).
	// It is serialized explicitly — unit 0 is a real id.
	Unit int `json:"unit"`
	// Note carries free-form detail.
	Note string `json:"note,omitempty"`
}

// FlightRecorder is the bounded ring. The zero value is unusable; use
// NewFlightRecorder.
type FlightRecorder struct {
	mu    sync.Mutex
	buf   []FlightEvent
	next  int    // ring write position
	total uint64 // events ever recorded
	pid   int
}

// NewFlightRecorder returns a recorder holding the last capacity
// events (capacity <= 0 uses DefaultFlightEvents).
func NewFlightRecorder(capacity int) *FlightRecorder {
	if capacity <= 0 {
		capacity = DefaultFlightEvents
	}
	return &FlightRecorder{buf: make([]FlightEvent, 0, capacity)}
}

// SetPid stamps subsequent events with pid (for fleet-merged dumps).
// No-op on a nil recorder.
func (f *FlightRecorder) SetPid(pid int) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.pid = pid
	f.mu.Unlock()
}

// Record appends one event. unit < 0 means the event concerns no
// dispatch unit. No-op on a nil recorder.
func (f *FlightRecorder) Record(cat, name string, unit int, note string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.total++
	if unit < 0 {
		unit = -1
	}
	ev := FlightEvent{
		Seq: f.total, TS: time.Now().UnixNano(), Pid: f.pid,
		Cat: cat, Name: name, Unit: unit, Note: note,
	}
	if len(f.buf) < cap(f.buf) {
		f.buf = append(f.buf, ev)
	} else {
		f.buf[f.next] = ev
		f.next = (f.next + 1) % len(f.buf)
	}
	f.mu.Unlock()
}

// Events returns the retained events in recording order.
func (f *FlightRecorder) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, len(f.buf))
	if len(f.buf) == cap(f.buf) {
		out = append(out, f.buf[f.next:]...)
		out = append(out, f.buf[:f.next]...)
	} else {
		out = append(out, f.buf...)
	}
	return out
}

// Ingest copies events recorded in another process (a dispatch worker)
// into this ring, preserving their origin pid, timestamps, and payload;
// sequence numbers are reassigned locally. No-op on a nil recorder.
func (f *FlightRecorder) Ingest(events []FlightEvent) {
	if f == nil || len(events) == 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ev := range events {
		f.total++
		ev.Seq = f.total
		if len(f.buf) < cap(f.buf) {
			f.buf = append(f.buf, ev)
		} else {
			f.buf[f.next] = ev
			f.next = (f.next + 1) % len(f.buf)
		}
	}
}

// Total returns how many events were ever recorded (retained or not).
func (f *FlightRecorder) Total() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total
}

// WriteJSONL writes the retained events, one JSON object per line.
func (f *FlightRecorder) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range f.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DumpFile writes the retained events as JSONL to path.
func (f *FlightRecorder) DumpFile(path string) error {
	out, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteJSONL(out); err != nil {
		out.Close()
		return fmt.Errorf("write flight record: %w", err)
	}
	return out.Close()
}
