package validate

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func sampleTracer() *obs.Tracer {
	tr := obs.NewTracer()
	tr.NameThread(0, "campaign")
	tr.NameThread(1, "worker-1")
	start := tr.Now()
	tr.Complete(1, "explore", "execution", start, time.Millisecond, 0)
	tr.Complete(1, "pmem", "crash-resolution", start, 100*time.Microsecond, 0)
	tr.Instant(0, "explore", "stop", "deadline")
	return tr
}

func TestValidateTracerOutput(t *testing.T) {
	tr := sampleTracer()

	var chrome bytes.Buffer
	if err := tr.WriteChrome(&chrome); err != nil {
		t.Fatal(err)
	}
	cs, err := Chrome(&chrome)
	if err != nil {
		t.Fatalf("chrome trace rejected: %v", err)
	}
	if cs.Spans != 2 || cs.Timeline != 1 {
		t.Fatalf("chrome stats = %+v", cs)
	}

	var jsonl bytes.Buffer
	if err := tr.WriteJSONL(&jsonl); err != nil {
		t.Fatal(err)
	}
	js, err := JSONL(&jsonl)
	if err != nil {
		t.Fatalf("jsonl trace rejected: %v", err)
	}
	if js.Spans != cs.Spans || js.Events != cs.Events {
		t.Fatalf("jsonl stats %+v != chrome stats %+v", js, cs)
	}
}

func TestValidateRejectsMalformed(t *testing.T) {
	cases := []struct {
		name  string
		input string
		want  string
	}{
		{"not json", "{", "parse chrome trace"},
		{"missing traceEvents", `{"other":1}`, "missing traceEvents"},
		{"no spans", `{"traceEvents":[{"name":"thread_name","ph":"M","pid":0,"tid":0,"ts":0}]}`, "no complete"},
		{"bad ph", `{"traceEvents":[{"name":"e","ph":"Z","pid":0,"tid":0,"ts":0}]}`, "unsupported ph"},
		{"missing ts", `{"traceEvents":[{"name":"e","ph":"X","pid":0,"tid":0}]}`, "missing pid/tid/ts"},
		{"negative dur", `{"traceEvents":[{"name":"e","ph":"X","pid":0,"tid":0,"ts":1,"dur":-5}]}`, "negative dur"},
	}
	for _, tc := range cases {
		_, err := Chrome(strings.NewReader(tc.input))
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
	if _, err := JSONL(strings.NewReader(`{"name":"e","ph":"X"`)); err == nil {
		t.Error("JSONL accepted malformed line")
	}
	if _, err := JSONL(strings.NewReader("")); err == nil {
		t.Error("JSONL accepted empty trace")
	}
}
