package validate

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestExpositionAcceptsRealOutput: whatever obs.WriteOpenMetrics emits
// for a busy registry must pass the exposition linter — the same check
// CI runs against a live /metrics scrape.
func TestExpositionAcceptsRealOutput(t *testing.T) {
	r := obs.NewRegistry()
	em := obs.ExploreInstruments(r)
	em.Started.Add(120)
	em.Completed.Add(118)
	em.FrontierDepth.Set(3)
	em.ExecNanos.Observe(1800)
	em.ExecNanos.Observe(2_500_000)
	pm := obs.PersistInstruments(r, "epoch")
	pm.Stores.Add(960)
	pm.Fences.Add(240)
	pm2 := obs.PersistInstruments(r, "strict")
	pm2.Stores.Add(11)
	wm := obs.WorkerInstruments(r, 4)
	wm.Dispatches.Add(30)
	dm := obs.DispatchInstruments(r)
	dm.UnitNanos.Observe(5_000_000)

	var buf bytes.Buffer
	if err := obs.WriteOpenMetrics(&buf, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	stats, err := Exposition(strings.NewReader(text))
	if err != nil {
		t.Fatalf("linter rejected real output: %v\n%s", err, text)
	}
	if stats.Families < 5 {
		t.Errorf("Families = %d, want >= 5", stats.Families)
	}
	if stats.Samples <= stats.Families {
		t.Errorf("Samples = %d with %d families; histograms and labels should multiply samples",
			stats.Samples, stats.Families)
	}
	// Spot-check the wire format the mapping promises.
	for _, want := range []string{
		"# TYPE psan_explore_executions_started counter",
		"psan_explore_executions_started_total 120",
		`psan_persist_stores_total{model="epoch"} 960`,
		`psan_persist_stores_total{model="strict"} 11`,
		`psan_pool_worker_dispatches_total{worker="4"} 30`,
		`psan_explore_execution_ns_bucket{le="+Inf"}`,
		"psan_explore_frontier_depth 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Error("exposition does not end with # EOF")
	}
}

// TestExpositionDeterministic: two scrapes of identical registries are
// byte-identical (sorted families, sorted label values).
func TestExpositionDeterministic(t *testing.T) {
	build := func() *obs.Registry {
		r := obs.NewRegistry()
		obs.ExploreInstruments(r).Started.Add(9)
		obs.PersistInstruments(r, "epoch").Stores.Add(4)
		obs.PersistInstruments(r, "strict").Stores.Add(2)
		return r
	}
	var a, b bytes.Buffer
	if err := obs.WriteOpenMetrics(&a, build().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if err := obs.WriteOpenMetrics(&b, build().Snapshot()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("two scrapes differ:\n--- a ---\n%s--- b ---\n%s", a.String(), b.String())
	}
}

// TestExpositionRejectsMalformed: the linter catches the classic
// exposition bugs a hand-rolled writer can introduce.
func TestExpositionRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"missing EOF", "# TYPE x counter\nx_total 1\n"},
		{"counter without _total", "# TYPE x counter\nx 1\n# EOF\n"},
		{"negative counter", "# TYPE x counter\nx_total -4\n# EOF\n"},
		{"duplicate series", "# TYPE x gauge\nx 1\nx 2\n# EOF\n"},
		{"duplicate family", "# TYPE x gauge\n# TYPE x gauge\nx 1\n# EOF\n"},
		{"content after EOF", "# TYPE x gauge\nx 1\n# EOF\nx 2\n"},
		{"blank line", "# TYPE x gauge\n\nx 1\n# EOF\n"},
		{"bad type", "# TYPE x sparkline\nx 1\n# EOF\n"},
		{"unparseable sample", "# TYPE x gauge\nx one\n# EOF\n"},
		{"histogram buckets not cumulative",
			"# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" +
				`h_bucket{le="+Inf"} 3` + "\n" +
				"h_sum 9\nh_count 3\n# EOF\n"},
		{"histogram Inf bucket disagrees with count",
			"# TYPE h histogram\n" +
				`h_bucket{le="1"} 1` + "\n" +
				`h_bucket{le="+Inf"} 3` + "\n" +
				"h_sum 9\nh_count 4\n# EOF\n"},
		{"empty exposition", "# EOF\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Exposition(strings.NewReader(tc.text)); err == nil {
				t.Errorf("linter accepted malformed exposition:\n%s", tc.text)
			}
		})
	}
}
