// OpenMetrics exposition linting: a parser-level check of the /metrics
// text format written by obs.WriteOpenMetrics, used by the obs-smoke CI
// job so a malformed exposition fails the build before a scraper ever
// sees it.
package validate

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// MetricStats summarizes a validated exposition.
type MetricStats struct {
	Families int // metric families (TYPE declarations)
	Samples  int // sample lines
}

var metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// histKey identifies one histogram series: family plus its labels with
// the le label stripped.
type histKey struct {
	family string
	labels string
}

// histSeries accumulates one histogram's bucket samples for the
// cumulative/count cross-checks.
type histSeries struct {
	les    []float64
	counts []float64
	sum    *float64
	count  *float64
}

// Exposition validates an OpenMetrics text exposition: every family
// declares a TYPE before its samples, sample names match their family
// and type (counters end in _total, histograms expose _bucket/_sum/
// _count), histogram buckets are cumulative and end at +Inf with the
// series count, no series repeats, and the document ends with # EOF.
func Exposition(r io.Reader) (MetricStats, error) {
	var s MetricStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)

	types := map[string]string{} // family -> counter|gauge|histogram
	seen := map[string]bool{}    // name{labels} -> dup check
	hists := map[histKey]*histSeries{}
	sawEOF := false
	line := 0

	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			return s, fmt.Errorf("line %d: blank line in exposition", line)
		}
		if sawEOF {
			return s, fmt.Errorf("line %d: content after # EOF", line)
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.SplitN(text, " ", 4)
			switch {
			case text == "# EOF":
				sawEOF = true
			case len(fields) >= 3 && fields[1] == "TYPE":
				family, typ := fields[2], ""
				if len(fields) == 4 {
					typ = fields[3]
				}
				if !metricNameRe.MatchString(family) {
					return s, fmt.Errorf("line %d: bad family name %q", line, family)
				}
				switch typ {
				case "counter", "gauge", "histogram":
				default:
					return s, fmt.Errorf("line %d: family %s: unsupported type %q", line, family, typ)
				}
				if _, dup := types[family]; dup {
					return s, fmt.Errorf("line %d: family %s declared twice", line, family)
				}
				types[family] = typ
				s.Families++
			case len(fields) >= 3 && fields[1] == "HELP":
				if !metricNameRe.MatchString(fields[2]) {
					return s, fmt.Errorf("line %d: bad HELP name %q", line, fields[2])
				}
			default:
				return s, fmt.Errorf("line %d: unrecognized comment %q", line, text)
			}
			continue
		}
		name, labels, value, err := parseSample(text)
		if err != nil {
			return s, fmt.Errorf("line %d: %w", line, err)
		}
		series := name + "{" + labels + "}"
		if seen[series] {
			return s, fmt.Errorf("line %d: duplicate series %s", line, series)
		}
		seen[series] = true
		s.Samples++

		family, suffix := familyOf(name, types)
		if family == "" {
			return s, fmt.Errorf("line %d: sample %s has no TYPE declaration", line, name)
		}
		typ := types[family]
		switch typ {
		case "counter":
			if suffix != "_total" {
				return s, fmt.Errorf("line %d: counter sample %s must end in _total", line, name)
			}
			if value < 0 {
				return s, fmt.Errorf("line %d: counter %s is negative (%g)", line, name, value)
			}
		case "gauge":
			if suffix != "" {
				return s, fmt.Errorf("line %d: gauge sample %s has unexpected suffix %q", line, name, suffix)
			}
		case "histogram":
			le, rest, err := splitLE(labels)
			if err != nil {
				return s, fmt.Errorf("line %d: %s: %w", line, name, err)
			}
			k := histKey{family, rest}
			h := hists[k]
			if h == nil {
				h = &histSeries{}
				hists[k] = h
			}
			switch suffix {
			case "_bucket":
				if math.IsNaN(le) {
					return s, fmt.Errorf("line %d: %s: bucket without le label", line, name)
				}
				h.les = append(h.les, le)
				h.counts = append(h.counts, value)
			case "_sum":
				v := value
				h.sum = &v
			case "_count":
				v := value
				h.count = &v
			default:
				return s, fmt.Errorf("line %d: histogram sample %s has unexpected suffix %q", line, name, suffix)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return s, err
	}
	if !sawEOF {
		return s, fmt.Errorf("exposition does not end with # EOF")
	}
	for k, h := range hists {
		if err := checkHistogram(k, h); err != nil {
			return s, err
		}
	}
	if s.Families == 0 {
		return s, fmt.Errorf("exposition has no metric families")
	}
	return s, nil
}

// parseSample splits `name{labels} value` (labels optional).
func parseSample(text string) (name, labels string, value float64, err error) {
	rest := text
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		j := strings.LastIndexByte(rest, '}')
		if j < i {
			return "", "", 0, fmt.Errorf("unterminated label set in %q", text)
		}
		labels = rest[i+1 : j]
		rest = strings.TrimSpace(rest[j+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return "", "", 0, fmt.Errorf("malformed sample %q", text)
		}
		name, rest = fields[0], fields[1]
	}
	if !metricNameRe.MatchString(name) {
		return "", "", 0, fmt.Errorf("bad metric name %q", name)
	}
	value, err = strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return "", "", 0, fmt.Errorf("bad sample value in %q: %v", text, err)
	}
	return name, labels, value, nil
}

// familyOf resolves a sample name to its declared family and the
// leftover suffix ("", "_total", "_bucket", "_sum", "_count"). The
// longest declared family wins, so psan_foo_total resolves against
// family psan_foo even if psan is also declared.
func familyOf(name string, types map[string]string) (family, suffix string) {
	fams := make([]string, 0, len(types))
	for f := range types {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return len(fams[i]) > len(fams[j]) })
	for _, f := range fams {
		if name == f {
			return f, ""
		}
		if strings.HasPrefix(name, f+"_") {
			return f, name[len(f):]
		}
	}
	return "", ""
}

// splitLE extracts the le label value (NaN when absent) and returns the
// remaining labels in their original order.
func splitLE(labels string) (le float64, rest string, err error) {
	le = math.NaN()
	if labels == "" {
		return le, "", nil
	}
	var kept []string
	for _, part := range strings.Split(labels, ",") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			return le, "", fmt.Errorf("malformed label %q", part)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return le, "", fmt.Errorf("unquoted label value %q", part)
		}
		if k == "le" {
			uv := v[1 : len(v)-1]
			if uv == "+Inf" {
				le = math.Inf(1)
			} else if le, err = strconv.ParseFloat(uv, 64); err != nil {
				return le, "", fmt.Errorf("bad le value %q", uv)
			}
			continue
		}
		kept = append(kept, part)
	}
	return le, strings.Join(kept, ","), nil
}

// checkHistogram verifies one histogram series: le values strictly
// increasing and ending at +Inf, bucket counts cumulative, and the +Inf
// bucket equal to the _count sample.
func checkHistogram(k histKey, h *histSeries) error {
	id := k.family
	if k.labels != "" {
		id += "{" + k.labels + "}"
	}
	if len(h.les) == 0 {
		return fmt.Errorf("histogram %s has no buckets", id)
	}
	for i := 1; i < len(h.les); i++ {
		if !(h.les[i] > h.les[i-1]) {
			return fmt.Errorf("histogram %s: le values not increasing (%g after %g)", id, h.les[i], h.les[i-1])
		}
		if h.counts[i] < h.counts[i-1] {
			return fmt.Errorf("histogram %s: bucket counts not cumulative (%g after %g)", id, h.counts[i], h.counts[i-1])
		}
	}
	if !math.IsInf(h.les[len(h.les)-1], 1) {
		return fmt.Errorf("histogram %s: last bucket le is %g, want +Inf", id, h.les[len(h.les)-1])
	}
	if h.sum == nil || h.count == nil {
		return fmt.Errorf("histogram %s: missing _sum or _count", id)
	}
	if inf := h.counts[len(h.counts)-1]; inf != *h.count {
		return fmt.Errorf("histogram %s: +Inf bucket %g != count %g", id, inf, *h.count)
	}
	return nil
}
