// Command validate-trace checks observability artifacts: the Chrome
// trace_event JSON and JSONL span log written by -trace-out, and (with
// -metrics) an OpenMetrics text exposition scraped from /metrics.
//
//	go run ./internal/obs/validate/cmd trace.json [trace.json.jsonl]
//	go run ./internal/obs/validate/cmd -metrics metrics.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs/validate"
)

func main() {
	metrics := flag.Bool("metrics", false, "validate an OpenMetrics exposition instead of a trace")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: validate-trace <chrome-trace.json> [spans.jsonl]")
		fmt.Fprintln(os.Stderr, "       validate-trace -metrics <exposition.txt>")
	}
	flag.Parse()
	args := flag.Args()
	fail := func(what string, err error) {
		fmt.Fprintf(os.Stderr, "validate-trace: %s: %v\n", what, err)
		os.Exit(1)
	}

	if *metrics {
		if len(args) != 1 {
			flag.Usage()
			os.Exit(2)
		}
		mf, err := os.Open(args[0])
		if err != nil {
			fail("open", err)
		}
		ms, err := validate.Exposition(mf)
		mf.Close()
		if err != nil {
			fail(args[0], err)
		}
		fmt.Printf("exposition ok: %d families, %d samples\n", ms.Families, ms.Samples)
		return
	}

	if len(args) < 1 || len(args) > 2 {
		flag.Usage()
		os.Exit(2)
	}
	cf, err := os.Open(args[0])
	if err != nil {
		fail("open", err)
	}
	cs, err := validate.Chrome(cf)
	cf.Close()
	if err != nil {
		fail(args[0], err)
	}
	fmt.Printf("chrome trace ok: %d events, %d spans, %d timelines, %d processes\n",
		cs.Events, cs.Spans, cs.Timeline, cs.Procs)

	if len(args) == 2 {
		jf, err := os.Open(args[1])
		if err != nil {
			fail("open", err)
		}
		js, err := validate.JSONL(jf)
		jf.Close()
		if err != nil {
			fail(args[1], err)
		}
		if js.Spans != cs.Spans {
			fail(args[1], fmt.Errorf("span count %d does not match chrome trace %d", js.Spans, cs.Spans))
		}
		fmt.Printf("jsonl trace ok: %d events, %d spans, %d timelines, %d processes\n",
			js.Events, js.Spans, js.Timeline, js.Procs)
	}
}
