// Command validate-trace checks traces written by -trace-out: the Chrome
// trace_event JSON and (optionally) the JSONL span log.
//
//	go run ./internal/obs/validate/cmd trace.json [trace.json.jsonl]
package main

import (
	"fmt"
	"os"

	"repro/internal/obs/validate"
)

func main() {
	if len(os.Args) < 2 || len(os.Args) > 3 {
		fmt.Fprintln(os.Stderr, "usage: validate-trace <chrome-trace.json> [spans.jsonl]")
		os.Exit(2)
	}
	fail := func(what string, err error) {
		fmt.Fprintf(os.Stderr, "validate-trace: %s: %v\n", what, err)
		os.Exit(1)
	}

	cf, err := os.Open(os.Args[1])
	if err != nil {
		fail("open", err)
	}
	cs, err := validate.Chrome(cf)
	cf.Close()
	if err != nil {
		fail(os.Args[1], err)
	}
	fmt.Printf("chrome trace ok: %d events, %d spans, %d timelines\n", cs.Events, cs.Spans, cs.Timeline)

	if len(os.Args) == 3 {
		jf, err := os.Open(os.Args[2])
		if err != nil {
			fail("open", err)
		}
		js, err := validate.JSONL(jf)
		jf.Close()
		if err != nil {
			fail(os.Args[2], err)
		}
		if js.Spans != cs.Spans {
			fail(os.Args[2], fmt.Errorf("span count %d does not match chrome trace %d", js.Spans, cs.Spans))
		}
		fmt.Printf("jsonl trace ok: %d events, %d spans, %d timelines\n", js.Events, js.Spans, js.Timeline)
	}
}
