// Package validate checks traces emitted by internal/obs: the Chrome
// trace_event JSON written for chrome://tracing and the JSONL span log. It is
// used by the obs-smoke CI job and by tests to catch malformed output before
// a human ever loads it in a trace viewer.
package validate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// event mirrors the subset of trace_event fields we validate.
type event struct {
	Name string          `json:"name"`
	Ph   string          `json:"ph"`
	Pid  *int            `json:"pid"`
	Tid  *int            `json:"tid"`
	Ts   *int64          `json:"ts"`
	Dur  int64           `json:"dur"`
	Args json.RawMessage `json:"args"`
}

// Stats summarizes a validated trace.
type Stats struct {
	Events   int // total events, metadata included
	Spans    int // ph "X" complete spans
	Timeline int // distinct (pid, tid) timelines carrying spans
	Procs    int // distinct pids carrying spans
}

func checkEvent(i int, ev event) error {
	if ev.Name == "" {
		return fmt.Errorf("event %d: missing name", i)
	}
	switch ev.Ph {
	case "X", "i", "I", "M", "B", "E":
	default:
		return fmt.Errorf("event %d (%s): unsupported ph %q", i, ev.Name, ev.Ph)
	}
	if ev.Ph == "M" {
		return nil // metadata events carry no timestamp requirements
	}
	if ev.Pid == nil || ev.Tid == nil || ev.Ts == nil {
		return fmt.Errorf("event %d (%s): missing pid/tid/ts", i, ev.Name)
	}
	if *ev.Ts < 0 {
		return fmt.Errorf("event %d (%s): negative ts %d", i, ev.Name, *ev.Ts)
	}
	if *ev.Tid < 0 {
		return fmt.Errorf("event %d (%s): negative tid %d", i, ev.Name, *ev.Tid)
	}
	if ev.Ph == "X" && ev.Dur < 0 {
		return fmt.Errorf("event %d (%s): negative dur %d", i, ev.Name, ev.Dur)
	}
	return nil
}

func tally(events []event) (Stats, error) {
	s := Stats{Events: len(events)}
	// Fleet-merged traces interleave several processes: timelines are
	// (pid, tid) pairs, never bare tids — two workers both using tid 1
	// are two timelines.
	type timeline struct{ pid, tid int }
	tids := map[timeline]bool{}
	pids := map[int]bool{}
	for i, ev := range events {
		if err := checkEvent(i, ev); err != nil {
			return s, err
		}
		if ev.Ph == "X" {
			s.Spans++
			tids[timeline{*ev.Pid, *ev.Tid}] = true
			pids[*ev.Pid] = true
		}
	}
	s.Timeline = len(tids)
	s.Procs = len(pids)
	if s.Spans == 0 {
		return s, fmt.Errorf("trace has no complete (ph=X) spans")
	}
	return s, nil
}

// Chrome validates a Chrome trace_event JSON document: a top-level object
// with a traceEvents array, every event well-formed, and at least one
// complete span.
func Chrome(r io.Reader) (Stats, error) {
	var env struct {
		TraceEvents *[]event `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&env); err != nil {
		return Stats{}, fmt.Errorf("parse chrome trace: %w", err)
	}
	if env.TraceEvents == nil {
		return Stats{}, fmt.Errorf("chrome trace: missing traceEvents array")
	}
	return tally(*env.TraceEvents)
}

// JSONL validates a JSONL span log: every line a well-formed event, at least
// one complete span.
func JSONL(r io.Reader) (Stats, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var events []event
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return Stats{}, fmt.Errorf("jsonl line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return Stats{}, err
	}
	return tally(events)
}
