// Package obs is the observability layer for exploration campaigns: a
// lock-cheap metrics registry (atomic counters, gauges, fixed-bucket
// histograms), a span-based campaign tracer (JSONL + Chrome trace_event),
// structured violation provenance, a live progress ticker, and an expvar/HTTP
// snapshot endpoint.
//
// Every instrument is a nil-safe no-op: methods on a nil *Counter, *Gauge,
// *Histogram, *Registry, *Tracer, or *Observer do nothing and allocate
// nothing. Code under instrumentation therefore calls instruments
// unconditionally; when observability is off the calls reduce to a nil check,
// keeping the allocation-free hot path byte-identical.
package obs

import "sync/atomic"

// Observer bundles the sinks a campaign may carry. A nil Observer — or one
// with nil fields — disables the corresponding subsystem.
type Observer struct {
	// Metrics receives counter/gauge/histogram updates when non-nil.
	Metrics *Registry
	// Tracer receives span events when non-nil.
	Tracer *Tracer
	// Flight receives flight-recorder events when non-nil.
	Flight *FlightRecorder
}

// Reg returns the metrics registry, or nil. Safe on a nil receiver.
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Trace returns the tracer, or nil. Safe on a nil receiver.
func (o *Observer) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// Recorder returns the flight recorder, or nil. Safe on a nil receiver.
func (o *Observer) Recorder() *FlightRecorder {
	if o == nil {
		return nil
	}
	return o.Flight
}

// Enabled reports whether any sink is attached. An Observer with no sinks
// behaves identically to a nil Observer.
func (o *Observer) Enabled() bool {
	return o != nil && (o.Metrics != nil || o.Tracer != nil || o.Flight != nil)
}

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomically updated instantaneous value. The zero value is ready
// to use; a nil *Gauge is a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adjusts the value by delta (negative deltas decrease it).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 for a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram over int64 observations (typically
// nanoseconds). Bucket i counts observations <= Bounds[i]; the final implicit
// bucket counts the overflow. A nil *Histogram is a no-op.
type Histogram struct {
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1
	sum    atomic.Int64
	n      atomic.Int64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds []int64) *Histogram {
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// DurationBuckets is the default bucket layout for nanosecond timings:
// 1µs, 10µs, 100µs, 1ms, 10ms, 100ms, 1s (+overflow).
var DurationBuckets = []int64{
	1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000,
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of observations (0 for a nil histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// snapshot returns a point-in-time copy of the histogram state.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    h.sum.Load(),
		Count:  h.n.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}
