package px86

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memmodel"
	"repro/internal/trace"
)

// randomProgram drives a machine through a pseudo-random pre-crash
// program derived from the seed: stores, flushes, flushopts, fences,
// and RMWs over a handful of words spread across two cache lines.
func randomProgram(m *Machine, seed int64, alwaysFlush bool) {
	rng := rand.New(rand.NewSource(seed))
	words := []memmodel.Addr{0x1000, 0x1008, 0x1040, 0x1048}
	n := 5 + rng.Intn(20)
	for i := 0; i < n; i++ {
		t := memmodel.ThreadID(rng.Intn(2))
		a := words[rng.Intn(len(words))]
		switch rng.Intn(6) {
		case 0, 1, 2:
			m.Store(t, a, memmodel.Value(rng.Intn(100)+1), m.Intern("store"))
			if alwaysFlush {
				m.Flush(t, a, m.Intern("flush-after-store"))
			}
		case 3:
			m.Flush(t, a, m.Intern("flush"))
		case 4:
			m.FlushOpt(t, a, m.Intern("flushopt"))
			if rng.Intn(2) == 0 {
				m.SFence(t, m.Intern("sfence"))
			}
		case 5:
			c := m.LoadCandidates(t, a)
			m.FAA(t, a, c[0], 1, m.Intern("faa"))
			if alwaysFlush {
				m.Flush(t, a, m.Intern("flush-after-faa"))
			}
		}
	}
}

// Property: after a crash, every line's readable image is a TSO-order
// prefix — reading word w fresh pins every same-line word written
// earlier to a value at least as new as its last pre-w store.
func TestPropertySameLinePrefix(t *testing.T) {
	prop := func(seed int64) bool {
		m := New(Config{})
		randomProgram(m, seed, false)
		// Two same-line words.
		w1, w2 := memmodel.Addr(0x1000), memmodel.Addr(0x1008)
		// Record the full line history order before crashing.
		stores := append([]*trace.Store(nil), m.Trace().Current().StoresTo(w1)...)
		stores2 := m.Trace().Current().StoresTo(w2)
		if len(stores) == 0 || len(stores2) == 0 {
			return true // nothing to check
		}
		last1, last2 := stores[len(stores)-1], stores2[len(stores2)-1]
		m.Crash()
		// Force the newest store of w1.
		var chosen Candidate
		found := false
		for _, c := range m.LoadCandidates(0, w1) {
			if c.Store == last1 {
				chosen, found = c, true
			}
		}
		if !found {
			return true // newest excluded by flush bookkeeping elsewhere
		}
		m.Load(0, w1, chosen, m.Intern("r1"))
		// If last1 committed after last2, then last2 must have persisted
		// too: w2 must now read exactly last2.
		if last1.Seq > last2.Seq {
			c2 := m.LoadCandidates(0, w2)
			return len(c2) == 1 && c2[0].Store == last2
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("same-line prefix property violated: %v", err)
	}
}

// Property: flushing after every store makes the post-crash image
// deterministic — exactly one candidate everywhere (strict persistency
// by construction).
func TestPropertyFullyFlushedIsDeterministic(t *testing.T) {
	prop := func(seed int64) bool {
		m := New(Config{})
		randomProgram(m, seed, true)
		m.Crash()
		for _, a := range []memmodel.Addr{0x1000, 0x1008, 0x1040, 0x1048} {
			if len(m.LoadCandidates(0, a)) != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("fully-flushed image not deterministic: %v", err)
	}
}

// Property: adding flushes never widens the candidate sets — flushes
// only remove surviving-image nondeterminism.
func TestPropertyFlushMonotone(t *testing.T) {
	prop := func(seed int64) bool {
		base := New(Config{})
		randomProgram(base, seed, false)
		base.Crash()
		flushed := New(Config{})
		randomProgram(flushed, seed, true)
		flushed.Crash()
		for _, a := range []memmodel.Addr{0x1000, 0x1008, 0x1040, 0x1048} {
			if len(flushed.LoadCandidates(0, a)) > len(base.LoadCandidates(0, a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("flushes not monotone: %v", err)
	}
}

// Property: resolution is consistent — once every word has been read,
// re-reading yields the same stores (the crash image is a fixed image).
func TestPropertyResolutionStable(t *testing.T) {
	prop := func(seed int64, picks []uint8) bool {
		m := New(Config{})
		randomProgram(m, seed, false)
		m.Crash()
		words := []memmodel.Addr{0x1000, 0x1008, 0x1040, 0x1048}
		first := make([]*trace.Store, len(words))
		for i, a := range words {
			cands := m.LoadCandidates(0, a)
			pick := 0
			if len(picks) > i {
				pick = int(picks[i]) % len(cands)
			}
			first[i] = cands[pick].Store
			m.Load(0, a, cands[pick], m.Intern("r"))
		}
		for i, a := range words {
			cands := m.LoadCandidates(0, a)
			if len(cands) != 1 || cands[0].Store != first[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("resolution not stable: %v", err)
	}
}

// Property: the guaranteed-persist count never exceeds the number of
// committed stores and never decreases within a sub-execution.
func TestPropertyGuaranteeBounds(t *testing.T) {
	prop := func(seed int64) bool {
		m := New(Config{})
		rng := rand.New(rand.NewSource(seed))
		line := memmodel.Addr(0x1000)
		committed, prevG := 0, 0
		for i := 0; i < 30; i++ {
			switch rng.Intn(4) {
			case 0, 1:
				m.Store(0, line+memmodel.Addr(8*rng.Intn(4)), 1, m.Intern("s"))
				committed++
			case 2:
				m.Flush(0, line, m.Intern("f"))
			case 3:
				m.FlushOpt(0, line, m.Intern("fo"))
				m.SFence(0, m.Intern("sf"))
			}
			g := m.GuaranteedPersistCount(line)
			if g < prevG || g > committed {
				return false
			}
			prevG = g
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("guarantee bounds violated: %v", err)
	}
}
