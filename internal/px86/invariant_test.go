package px86

import (
	"strings"
	"testing"
)

// TestInvariantErrorPanicValue corrupts a resolved candidate's prefix
// range and checks the machine panics with the typed InvariantError —
// carrying the check name, address, and interned source location — so
// the explorer can classify and quarantine the schedule instead of
// dying on an anonymous string panic.
func TestInvariantErrorPanicValue(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.Flush(0, addrX, m.Intern("flush x"))
	m.Crash()
	cands := m.LoadCandidates(0, addrX)
	var bad Candidate
	for _, c := range cands {
		if c.Resolve && c.Epoch >= 0 {
			bad = c
		}
	}
	if !bad.Resolve {
		t.Fatal("no resolving sealed-epoch candidate to corrupt")
	}
	bad.LoNew, bad.HiNew = 2, 1 // inverted range: internal inconsistency
	defer func() {
		r := recover()
		ie, ok := r.(InvariantError)
		if !ok {
			t.Fatalf("panic value %T (%v), want InvariantError", r, r)
		}
		if ie.Check != "prefix range" {
			t.Fatalf("Check = %q, want \"prefix range\"", ie.Check)
		}
		if ie.Addr != addrX.Word() {
			t.Fatalf("Addr = %v, want %v", ie.Addr, addrX.Word())
		}
		if !strings.Contains(ie.Loc, "r=x") {
			t.Fatalf("Loc = %q, want the access location", ie.Loc)
		}
		for _, want := range []string{"px86", "prefix range", "invariant"} {
			if !strings.Contains(ie.Error(), want) {
				t.Fatalf("Error() = %q missing %q", ie.Error(), want)
			}
		}
	}()
	m.resolveChoice(addrX.Word(), bad, m.Intern("r=x"))
	t.Fatal("corrupted candidate did not trip the invariant")
}
