package px86

import (
	"testing"

	"repro/internal/memmodel"
)

// Distinct cache lines: x and y never interact through line flushes.
const (
	addrX = memmodel.Addr(0x1000)
	addrY = memmodel.Addr(0x2000)
)

// Same cache line as addrX (offset 8 within the 64-byte line).
const addrX2 = addrX + 8

func values(cands []Candidate) []memmodel.Value {
	var vs []memmodel.Value
	for _, c := range cands {
		vs = append(vs, c.Store.Value)
	}
	return vs
}

func hasValue(cands []Candidate, v memmodel.Value) bool {
	for _, c := range cands {
		if c.Store.Value == v {
			return true
		}
	}
	return false
}

func hasInitial(cands []Candidate) bool {
	for _, c := range cands {
		if c.Store.Initial {
			return true
		}
	}
	return false
}

func TestVolatileLoadSeesLatestStore(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.Store(0, addrX, 2, m.Intern("x=2"))
	if got := m.LoadDefault(1, addrX, m.Intern("r=x")); got != 2 {
		t.Fatalf("load = %d, want 2", got)
	}
}

func TestStoreBufferForwarding(t *testing.T) {
	m := New(Config{DelayedCommit: true})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	// Thread 0 sees its own buffered store; thread 1 sees the initial 0.
	if got := m.LoadDefault(0, addrX, m.Intern("own")); got != 1 {
		t.Fatalf("own load = %d, want 1 (buffer forwarding)", got)
	}
	if got := m.LoadDefault(1, addrX, m.Intern("other")); got != 0 {
		t.Fatalf("other load = %d, want 0 (not yet committed)", got)
	}
	m.DrainAll(0)
	if got := m.LoadDefault(1, addrX, m.Intern("other2")); got != 1 {
		t.Fatalf("after drain, other load = %d, want 1", got)
	}
}

func TestUnflushedStoreMayOrMayNotSurviveCrash(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.Crash()
	cands := m.LoadCandidates(0, addrX)
	if !hasValue(cands, 1) || !hasInitial(cands) {
		t.Fatalf("candidates = %v, want both x=1 and initial", values(cands))
	}
}

func TestClflushGuaranteesPersistence(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.Flush(0, addrX, m.Intern("flush x"))
	m.Crash()
	cands := m.LoadCandidates(0, addrX)
	if len(cands) != 1 || cands[0].Store.Value != 1 {
		t.Fatalf("candidates = %v, want exactly [1]", values(cands))
	}
}

func TestClflushOptAloneDoesNotGuarantee(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.FlushOpt(0, addrX, m.Intern("flushopt x"))
	// No drain: the flush may not have completed at the crash.
	m.Crash()
	cands := m.LoadCandidates(0, addrX)
	if !hasInitial(cands) {
		t.Fatalf("candidates = %v, want initial still possible", values(cands))
	}
}

func TestClflushOptPlusSFenceGuarantees(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.FlushOpt(0, addrX, m.Intern("flushopt x"))
	m.SFence(0, m.Intern("sfence"))
	m.Crash()
	cands := m.LoadCandidates(0, addrX)
	if len(cands) != 1 || cands[0].Store.Value != 1 {
		t.Fatalf("candidates = %v, want exactly [1]", values(cands))
	}
}

func TestClflushOptPlusRMWGuarantees(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.FlushOpt(0, addrX, m.Intern("flushopt x"))
	// A locked RMW on an unrelated location is a drain operation.
	c := m.LoadCandidates(0, addrY)
	m.FAA(0, addrY, c[0], 1, m.Intern("faa y"))
	m.Crash()
	cands := m.LoadCandidates(0, addrX)
	if len(cands) != 1 || cands[0].Store.Value != 1 {
		t.Fatalf("candidates = %v, want exactly [1]", values(cands))
	}
}

func TestDrainByOtherThreadDoesNotComplete(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.FlushOpt(0, addrX, m.Intern("flushopt x"))
	m.SFence(1, m.Intern("sfence by other thread"))
	m.Crash()
	cands := m.LoadCandidates(0, addrX)
	if !hasInitial(cands) {
		t.Fatalf("candidates = %v: another thread's drain must not complete t0's flushopt", values(cands))
	}
}

func TestFlushCoversWholeLine(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.Store(0, addrX2, 2, m.Intern("x2=2")) // same line
	m.Flush(0, addrX, m.Intern("flush line"))
	m.Crash()
	c1 := append([]Candidate(nil), m.LoadCandidates(0, addrX)...)
	c2 := m.LoadCandidates(0, addrX2)
	if len(c1) != 1 || len(c2) != 1 || c1[0].Store.Value != 1 || c2[0].Store.Value != 2 {
		t.Fatalf("line flush must persist both words: %v %v", values(c1), values(c2))
	}
}

func TestFlushDoesNotCoverOtherLines(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.Store(0, addrY, 2, m.Intern("y=2"))
	m.Flush(0, addrX, m.Intern("flush x only"))
	m.Crash()
	cands := m.LoadCandidates(0, addrY)
	if !hasInitial(cands) {
		t.Fatalf("candidates = %v: y is unflushed, initial must be possible", values(cands))
	}
}

func TestFlushDoesNotCoverLaterStores(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.Flush(0, addrX, m.Intern("flush"))
	m.Store(0, addrX, 2, m.Intern("x=2")) // after the flush: not covered
	m.Crash()
	cands := m.LoadCandidates(0, addrX)
	if !hasValue(cands, 1) || !hasValue(cands, 2) {
		t.Fatalf("candidates = %v, want {1, 2}", values(cands))
	}
	if hasInitial(cands) {
		t.Fatalf("candidates = %v: x=1 is guaranteed, initial impossible", values(cands))
	}
}

// Same-line stores persist in TSO order: if the newer store survived, the
// older one did too — so reading the older store then the newer one from
// one line is consistent, but resolving the newer first pins the prefix.
func TestSameLinePrefixConsistency(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.Store(0, addrX2, 2, m.Intern("x2=2"))
	m.Crash()
	// Choose x2 = 2 (the second store persisted) — then x MUST be 1.
	cands := m.LoadCandidates(0, addrX2)
	var chosen Candidate
	found := false
	for _, c := range cands {
		if c.Store.Value == 2 {
			chosen, found = c, true
		}
	}
	if !found {
		t.Fatalf("no candidate with value 2: %v", values(cands))
	}
	m.Load(0, addrX2, chosen, m.Intern("r=x2"))
	after := m.LoadCandidates(0, addrX)
	if len(after) != 1 || after[0].Store.Value != 1 {
		t.Fatalf("after resolving x2=2, x candidates = %v, want exactly [1]", values(after))
	}
}

func TestSameLinePrefixConsistencyReverse(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.Store(0, addrX2, 2, m.Intern("x2=2"))
	m.Crash()
	// Choose x = initial (nothing persisted) — then x2 must be initial.
	cands := m.LoadCandidates(0, addrX)
	var init Candidate
	found := false
	for _, c := range cands {
		if c.Store.Initial {
			init, found = c, true
		}
	}
	if !found {
		t.Fatal("initial candidate missing")
	}
	m.Load(0, addrX, init, m.Intern("r=x"))
	after := m.LoadCandidates(0, addrX2)
	if len(after) != 1 || !after[0].Store.Initial {
		t.Fatalf("after resolving x=init, x2 candidates = %v, want [initial]", values(after))
	}
}

// Different lines are independent: Figure 4's r1=2, r2=5 outcome.
func TestFigure4Readable(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.Store(0, addrY, 2, m.Intern("y=2"))
	m.Store(0, addrX, 3, m.Intern("x=3"))
	m.Store(0, addrY, 4, m.Intern("y=4"))
	m.Store(0, addrX, 5, m.Intern("x=5"))
	m.Crash()
	ycands := m.LoadCandidates(0, addrY)
	if !hasValue(ycands, 2) {
		t.Fatalf("y candidates = %v, want 2 possible", values(ycands))
	}
	for _, c := range ycands {
		if c.Store.Value == 2 {
			m.Load(0, addrY, c, m.Intern("r1=y"))
		}
	}
	xcands := m.LoadCandidates(0, addrX)
	if !hasValue(xcands, 5) {
		t.Fatalf("x candidates = %v, want 5 still possible (different line)", values(xcands))
	}
}

func TestRepeatedReadsAreStable(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.Store(0, addrX, 2, m.Intern("x=2"))
	m.Crash()
	cands := m.LoadCandidates(0, addrX)
	if len(cands) != 3 { // x=2, x=1, initial
		t.Fatalf("candidates = %v, want 3", values(cands))
	}
	// Pick the middle store x=1.
	for _, c := range cands {
		if c.Store.Value == 1 {
			m.Load(0, addrX, c, m.Intern("r=x"))
		}
	}
	again := m.LoadCandidates(0, addrX)
	if len(again) != 1 || again[0].Store.Value != 1 {
		t.Fatalf("second read candidates = %v, want exactly [1]", values(again))
	}
}

func TestPostCrashStoreShadowsUnresolved(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.Crash()
	m.Store(0, addrX, 9, m.Intern("x=9"))
	cands := m.LoadCandidates(0, addrX)
	if len(cands) != 1 || cands[0].Store.Value != 9 {
		t.Fatalf("candidates = %v, want exactly [9] (TSO within sub-execution)", values(cands))
	}
}

// The Figure 8 scenario: e1 stores x=1; y=1, crash, e2 stores y=2 and
// reads x, crash, e3 reads y. Reading y=1 in e3 must be possible (y=2
// unpersisted, y=1 persisted).
func TestFigure8MultiCrashReadability(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.Store(0, addrY, 1, m.Intern("y=1"))
	m.Crash()
	m.Store(0, addrY, 2, m.Intern("y=2"))
	// r = x reads initial 0.
	xc := m.LoadCandidates(0, addrX)
	if !hasInitial(xc) {
		t.Fatalf("x candidates = %v, want initial possible", values(xc))
	}
	for _, c := range xc {
		if c.Store.Initial {
			m.Load(0, addrX, c, m.Intern("r=x"))
		}
	}
	m.Crash()
	yc := m.LoadCandidates(0, addrY)
	if !hasValue(yc, 1) || !hasValue(yc, 2) || !hasInitial(yc) {
		t.Fatalf("y candidates = %v, want {2, 1, initial}", values(yc))
	}
	// Choose y=1 from the first sub-execution.
	for _, c := range yc {
		if c.Store.Value == 1 {
			m.Load(0, addrY, c, m.Intern("s=y"))
		}
	}
	again := m.LoadCandidates(0, addrY)
	if len(again) != 1 || again[0].Store.Value != 1 {
		t.Fatalf("resolution not sticky: %v", values(again))
	}
}

// Once a newer epoch guarantees a store to a word, older epochs become
// unreachable for that word.
func TestGuaranteedStoreBlocksOlderEpochs(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrY, 1, m.Intern("e0:y=1"))
	m.Crash()
	m.Store(0, addrY, 2, m.Intern("e1:y=2"))
	m.Flush(0, addrY, m.Intern("flush"))
	m.Crash()
	cands := m.LoadCandidates(0, addrY)
	if len(cands) != 1 || cands[0].Store.Value != 2 {
		t.Fatalf("candidates = %v, want exactly [2]", values(cands))
	}
}

func TestCASSemantics(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 5, m.Intern("x=5"))
	c := m.LoadCandidates(0, addrX)
	old, ok := m.CAS(0, addrX, c[0], 5, 6, m.Intern("cas"))
	if !ok || old != 5 {
		t.Fatalf("CAS success path: old=%d ok=%v", old, ok)
	}
	c = m.LoadCandidates(0, addrX)
	old, ok = m.CAS(0, addrX, c[0], 5, 7, m.Intern("cas2"))
	if ok || old != 6 {
		t.Fatalf("CAS failure path: old=%d ok=%v", old, ok)
	}
	if got := m.LoadDefault(0, addrX, m.Intern("r")); got != 6 {
		t.Fatalf("x = %d, want 6", got)
	}
}

func TestFAASemantics(t *testing.T) {
	m := New(Config{})
	c := m.LoadCandidates(0, addrX)
	if old := m.FAA(0, addrX, c[0], 3, m.Intern("faa")); old != 0 {
		t.Fatalf("FAA old = %d, want 0", old)
	}
	c = m.LoadCandidates(0, addrX)
	if old := m.FAA(0, addrX, c[0], 4, m.Intern("faa2")); old != 3 {
		t.Fatalf("FAA old = %d, want 3", old)
	}
	if got := m.LoadDefault(0, addrX, m.Intern("r")); got != 7 {
		t.Fatalf("x = %d, want 7", got)
	}
}

func TestRMWDrainsStoreBuffer(t *testing.T) {
	m := New(Config{DelayedCommit: true})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	if m.BufferLen(0) != 1 {
		t.Fatalf("buffer len = %d, want 1", m.BufferLen(0))
	}
	c := m.LoadCandidates(0, addrY)
	m.FAA(0, addrY, c[0], 1, m.Intern("faa"))
	if m.BufferLen(0) != 0 {
		t.Fatal("RMW must drain the store buffer")
	}
	if got := m.LoadDefault(1, addrX, m.Intern("r")); got != 1 {
		t.Fatalf("x = %d after RMW drain, want 1", got)
	}
}

func TestBufferedStoresLostAtCrash(t *testing.T) {
	m := New(Config{DelayedCommit: true})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.Crash()
	cands := m.LoadCandidates(0, addrX)
	if len(cands) != 1 || !cands[0].Store.Initial {
		t.Fatalf("candidates = %v, want only initial (store never committed)", values(cands))
	}
}

func TestBufferedFlushLostAtCrash(t *testing.T) {
	m := New(Config{DelayedCommit: true})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.DrainOne(0) // store commits
	m.Flush(0, addrX, m.Intern("flush"))
	// Flush still in the buffer at crash: it never executed.
	m.Crash()
	cands := m.LoadCandidates(0, addrX)
	if !hasInitial(cands) {
		t.Fatalf("candidates = %v, want initial possible (flush never left buffer)", values(cands))
	}
}

func TestTraceRecordsSubExecutions(t *testing.T) {
	m := New(Config{})
	m.Store(0, addrX, 1, m.Intern("x=1"))
	m.Crash()
	m.Store(0, addrX, 2, m.Intern("x=2"))
	tr := m.Trace()
	if tr.NumCrashes() != 1 || len(tr.SubExecs()) != 2 {
		t.Fatalf("trace shape wrong: crashes=%d subs=%d", tr.NumCrashes(), len(tr.SubExecs()))
	}
	if len(tr.Sub(0).Stores) != 1 || len(tr.Sub(1).Stores) != 1 {
		t.Fatal("stores not attributed to sub-executions")
	}
}
