// Package px86 simulates the Intel-x86 persistency model following the
// Px86sim semantics of Raad et al. (POPL 2020), which the paper builds on
// (§2). It is the default persistency-model backend behind the
// persist.Model interface. The simulated machine provides:
//
//   - TSO volatile semantics with per-thread store buffers;
//   - cache-line granular persistence: clflush persists its line
//     synchronously when it leaves the store buffer; clflushopt/clwb are
//     asynchronous and only guaranteed complete after a subsequent drain
//     (mfence, sfence, or a locked RMW) by the same thread;
//   - crash events after which the persistent image of each cache line is
//     some TSO-order prefix of the line's committed stores, no shorter
//     than the prefix guaranteed by completed flushes.
//
// Crash images are resolved lazily, read by read: a post-crash load asks
// the machine for the set of stores it may legally read (LoadCandidates),
// an exploration policy picks one, and the machine narrows the remaining
// nondeterminism so later reads stay consistent with the choice. This is
// the same read-centric exploration style as the Jaaru model checker the
// paper builds PSan upon. The sealed-epoch bookkeeping itself lives in
// persist.Image, shared with the other backends.
package px86

import (
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/trace"
)

// InvariantError is the typed panic raised on crash-image inconsistency;
// it now lives in persist so every backend shares the explorer's panic
// classification. Kept as an alias for existing call sites.
type InvariantError = persist.InvariantError

// Candidate is the model-neutral post-crash read candidate; kept as an
// alias for existing call sites.
type Candidate = persist.Candidate

// Config controls simulation behavior.
type Config struct {
	// DelayedCommit keeps stores in per-thread store buffers until a
	// fence, RMW, or explicit Drain call commits them, exposing TSO
	// store-buffer effects. When false (the default), stores commit to
	// the cache immediately after issue, which is a legal TSO behavior
	// and keeps model-checking tractable.
	DelayedCommit bool
	// Window, when positive, puts the machine's trace in bounded-window
	// (streaming) mode; see persist.Config.Window.
	Window int
	// Metrics receives per-instruction counters. The zero value (all-nil
	// instruments) disables counting; every increment is then a nil-check
	// no-op.
	Metrics obs.PersistMetrics
}

func init() {
	persist.Register(persist.Info{
		Name:        "px86",
		Description: "Px86sim (Raad et al.): TSO buffers, async clflushopt completed by drains",
		Weak:        true,
	}, func(cfg persist.Config) persist.Model {
		return New(Config{
			DelayedCommit: cfg.DelayedCommit,
			Window:        cfg.Window,
			Metrics:       obs.PersistInstruments(cfg.Obs.Reg(), "px86"),
		})
	})
}

// bufEntry is one store-buffer slot: a pending store or a pending flush.
type bufEntry struct {
	kind  memmodel.OpKind
	store *trace.Store  // for OpStore/OpCAS/OpFAA
	line  memmodel.Addr // for OpFlush/OpFlushOpt
	loc   trace.LocID
}

// pendingFlush is a clflushopt that has left the store buffer but whose
// persistence is not yet guaranteed by a drain.
type pendingFlush struct {
	line     memmodel.Addr
	coverage int // line-history length at buffer exit
}

// Machine is a simulated Px86 multiprocessor with persistent memory.
// It is not safe for concurrent use: simulated threads are interleaved
// by the caller (the exploration harness), not by goroutines. A Machine
// holds no package-level state, so distinct Machines may be driven from
// distinct goroutines concurrently — the parallel exploration engine
// relies on exactly this one-world-per-goroutine discipline.
type Machine struct {
	cfg     Config
	tr      *trace.Trace
	mem     map[memmodel.Addr]*trace.Store // volatile cache: last committed store per word, this sub-execution
	buffers map[memmodel.ThreadID][]bufEntry
	pending map[memmodel.ThreadID][]pendingFlush
	img     persist.Image

	// cands is the scratch buffer LoadCandidates returns; see its
	// contract.
	cands []Candidate
}

// New returns a machine with all of persistent memory zero-initialized.
func New(cfg Config) *Machine {
	m := &Machine{
		cfg:     cfg,
		tr:      trace.New(),
		mem:     make(map[memmodel.Addr]*trace.Store),
		buffers: make(map[memmodel.ThreadID][]bufEntry),
		pending: make(map[memmodel.ThreadID][]pendingFlush),
	}
	m.img.Init("px86")
	m.tr.SetWindow(cfg.Window)
	return m
}

// Name implements persist.Model.
func (m *Machine) Name() string { return "px86" }

// Trace returns the execution trace recorded so far.
func (m *Machine) Trace() *trace.Trace { return m.tr }

// Intern maps a source label to the trace's dense LocID, the form every
// instruction method takes.
func (m *Machine) Intern(loc string) trace.LocID { return m.tr.Intern(loc) }

// Reset rewinds the machine (and its trace) to the freshly-constructed
// state, recycling the trace arenas, the cache-line records, and the
// sealed epochs. The trace's intern table is kept. Pointers previously
// obtained from the machine or its trace become invalid.
func (m *Machine) Reset() {
	clear(m.mem)
	clear(m.buffers)
	clear(m.pending)
	m.img.Reset()
	m.tr.Reset()
}

// --- store buffer mechanics ---

// exitEntry applies the oldest store-buffer entry of thread t to the
// cache, per the Px86sim buffer-exit transitions.
func (m *Machine) exitEntry(t memmodel.ThreadID, e bufEntry) {
	switch e.kind {
	case memmodel.OpFlush:
		// clflush persists the line synchronously at buffer exit: every
		// store committed to the line so far is guaranteed persistent.
		m.img.Guarantee(e.line)
	case memmodel.OpFlushOpt:
		// clflushopt writes the line back asynchronously; completion is
		// guaranteed only by a later drain of the same thread. Record
		// the coverage (stores committed at buffer exit).
		m.pending[t] = append(m.pending[t], pendingFlush{line: e.line, coverage: m.img.LiveLen(e.line)})
	default:
		m.commit(e.store)
	}
}

// commit applies [STORE COMMIT]: the store becomes globally visible and
// joins its cache line's history.
func (m *Machine) commit(st *trace.Store) {
	m.tr.StoreCommit(st)
	m.mem[st.Addr] = st
	m.img.Commit(st)
}

// DrainAll commits every pending entry of thread t's store buffer, in
// FIFO order.
func (m *Machine) DrainAll(t memmodel.ThreadID) {
	for _, e := range m.buffers[t] {
		m.exitEntry(t, e)
	}
	m.buffers[t] = nil
}

// DrainOne commits the oldest pending entry of thread t's store buffer,
// reporting whether there was one. Exploration harnesses use it to
// exercise store-buffer interleavings in delayed-commit mode.
func (m *Machine) DrainOne(t memmodel.ThreadID) bool {
	buf := m.buffers[t]
	if len(buf) == 0 {
		return false
	}
	m.cfg.Metrics.Drains.Inc()
	m.exitEntry(t, buf[0])
	m.buffers[t] = buf[1:]
	return true
}

// BufferLen returns the number of pending entries in t's store buffer.
func (m *Machine) BufferLen(t memmodel.ThreadID) int { return len(m.buffers[t]) }

// drainCompletes marks thread t's exited clflushopt operations as
// guaranteed persistent (a drain instruction committed).
func (m *Machine) drainCompletes(t memmodel.ThreadID) {
	for _, pf := range m.pending[t] {
		m.img.GuaranteeUpTo(pf.line, pf.coverage)
	}
	m.pending[t] = nil
}

// --- instruction interface ---

// Store issues a store of v to word a by thread t. In delayed-commit
// mode the store waits in t's buffer; otherwise it commits immediately.
func (m *Machine) Store(t memmodel.ThreadID, a memmodel.Addr, v memmodel.Value, loc trace.LocID) *trace.Store {
	m.cfg.Metrics.Stores.Inc()
	st := m.tr.StoreIssue(t, a, v, memmodel.OpStore, loc)
	if m.cfg.DelayedCommit {
		m.buffers[t] = append(m.buffers[t], bufEntry{kind: memmodel.OpStore, store: st, loc: loc})
	} else {
		m.commit(st)
	}
	return st
}

// Flush issues a clflush of the line containing a. It enters the store
// buffer like a store (clflush is ordered like a store, §2).
func (m *Machine) Flush(t memmodel.ThreadID, a memmodel.Addr, loc trace.LocID) {
	m.cfg.Metrics.Flushes.Inc()
	m.tr.Fence(t, memmodel.OpFlush, a.Line(), loc)
	e := bufEntry{kind: memmodel.OpFlush, line: a.Line(), loc: loc}
	if m.cfg.DelayedCommit {
		m.buffers[t] = append(m.buffers[t], e)
	} else {
		m.exitEntry(t, e)
	}
}

// FlushOpt issues a clflushopt/clwb of the line containing a. Its
// persistence is guaranteed only after a subsequent drain by t.
func (m *Machine) FlushOpt(t memmodel.ThreadID, a memmodel.Addr, loc trace.LocID) {
	m.cfg.Metrics.FlushOpts.Inc()
	m.tr.Fence(t, memmodel.OpFlushOpt, a.Line(), loc)
	e := bufEntry{kind: memmodel.OpFlushOpt, line: a.Line(), loc: loc}
	if m.cfg.DelayedCommit {
		m.buffers[t] = append(m.buffers[t], e)
	} else {
		m.exitEntry(t, e)
	}
}

// SFence issues a store fence: it drains t's store buffer and completes
// t's outstanding clflushopt operations.
func (m *Machine) SFence(t memmodel.ThreadID, loc trace.LocID) {
	m.cfg.Metrics.Fences.Inc()
	m.tr.Fence(t, memmodel.OpSFence, 0, loc)
	m.DrainAll(t)
	m.drainCompletes(t)
}

// MFence issues a full fence; for persistency purposes it behaves like
// SFence (both are drain operations).
func (m *Machine) MFence(t memmodel.ThreadID, loc trace.LocID) {
	m.cfg.Metrics.Fences.Inc()
	m.tr.Fence(t, memmodel.OpMFence, 0, loc)
	m.DrainAll(t)
	m.drainCompletes(t)
}

// --- loads and crash-image resolution ---

// LoadCandidates returns the stores a load of word a by thread t may
// read, newest-possible first. Volatile reads (own store buffer, or a
// word written in the current sub-execution) have exactly one candidate.
// Post-crash reads of unresolved words may have several; reading the
// zero-initialized original contents is represented by the synthetic
// initial store.
// The returned slice is a machine-owned scratch buffer, valid only until
// the next LoadCandidates call on the same machine; callers that keep
// more than one candidate set alive must copy.
func (m *Machine) LoadCandidates(t memmodel.ThreadID, a memmodel.Addr) []Candidate {
	a = a.Word()
	cands := m.cands[:0]
	// TSO store-buffer forwarding: newest buffered store to a by t.
	buf := m.buffers[t]
	for i := len(buf) - 1; i >= 0; i-- {
		if e := buf[i]; e.store != nil && e.store.Addr == a {
			m.cands = append(cands, Candidate{Store: e.store, Epoch: -1})
			return m.cands
		}
	}
	// Committed this sub-execution: the cache holds a definite value.
	if st, ok := m.mem[a]; ok {
		m.cands = append(cands, Candidate{Store: st, Epoch: -1})
		return m.cands
	}
	// Unresolved: walk sealed epochs newest-first.
	cands, blocked := m.img.AppendSealedCandidates(cands, a)
	if !blocked {
		cands = append(cands, Candidate{Store: m.tr.Initial(a), Resolve: true, Epoch: -1})
	}
	m.cands = cands
	return cands
}

// resolveChoice narrows epoch ranges so that future reads agree with the
// chosen candidate. loc is the access's interned location, carried into
// the InvariantError panic raised when narrowing exposes an internal
// inconsistency.
func (m *Machine) resolveChoice(a memmodel.Addr, c Candidate, loc trace.LocID) {
	if c.Resolve {
		m.cfg.Metrics.Resolved.Inc()
	}
	m.img.Resolve(a, c, m.tr, loc)
}

// Load performs a load of word a by thread t reading from the chosen
// candidate, which must come from LoadCandidates for the same (t, a).
// It returns the loaded value.
func (m *Machine) Load(t memmodel.ThreadID, a memmodel.Addr, c Candidate, loc trace.LocID) memmodel.Value {
	a = a.Word()
	m.resolveChoice(a, c, loc)
	m.tr.Load(t, a, c.Store, memmodel.OpLoad, loc)
	return c.Store.Value
}

// LoadDefault performs a load reading the newest legal store — the
// behavior of an execution where everything persisted. It is the
// convenient entry point for code running before any crash.
func (m *Machine) LoadDefault(t memmodel.ThreadID, a memmodel.Addr, loc trace.LocID) memmodel.Value {
	cands := m.LoadCandidates(t, a)
	return m.Load(t, a, cands[0], loc)
}

// rmwBegin drains the thread's store buffer (locked instructions flush
// the buffer) and completes its pending clflushopt operations: locked
// RMW operations are drain operations (§2).
func (m *Machine) rmwBegin(t memmodel.ThreadID) {
	m.DrainAll(t)
	m.drainCompletes(t)
}

// CAS performs an atomic compare-and-swap on word a: it reads from the
// chosen candidate, and if the value equals expected, commits a store of
// newV. It returns the value read and whether the swap happened. CAS is
// analyzed as a load immediately followed by a store (§5) and acts as a
// drain either way.
func (m *Machine) CAS(t memmodel.ThreadID, a memmodel.Addr, c Candidate, expected, newV memmodel.Value, loc trace.LocID) (memmodel.Value, bool) {
	a = a.Word()
	m.rmwBegin(t)
	m.resolveChoice(a, c, loc)
	m.tr.Load(t, a, c.Store, memmodel.OpCAS, loc)
	old := c.Store.Value
	if old != expected {
		return old, false
	}
	st := m.tr.StoreIssue(t, a, newV, memmodel.OpCAS, loc)
	m.commit(st)
	return old, true
}

// FAA performs an atomic fetch-and-add on word a reading from the chosen
// candidate, returning the previous value. Like CAS it drains.
func (m *Machine) FAA(t memmodel.ThreadID, a memmodel.Addr, c Candidate, delta memmodel.Value, loc trace.LocID) memmodel.Value {
	a = a.Word()
	m.rmwBegin(t)
	m.resolveChoice(a, c, loc)
	m.tr.Load(t, a, c.Store, memmodel.OpFAA, loc)
	old := c.Store.Value
	st := m.tr.StoreIssue(t, a, old+delta, memmodel.OpFAA, loc)
	m.commit(st)
	return old
}

// Crash simulates a power failure: store buffers and outstanding
// clflushopt operations are lost, the volatile cache vanishes, and each
// cache line's committed history is sealed into an epoch whose persisted
// prefix is any length from the flush-guaranteed lower bound up to the
// full history. A new sub-execution begins.
func (m *Machine) Crash() {
	m.cfg.Metrics.Crashes.Inc()
	clear(m.buffers)
	clear(m.pending)
	clear(m.mem)
	m.img.Seal()
	m.tr.Crash()
}

// PersistFingerprint hashes the machine's persistent state: every cache
// line's sealed store history (IDs and values) together with its
// persisted-prefix bounds. Call it immediately after Crash, when the
// live epochs are empty — two machines with equal fingerprints then
// present identical candidate sets to every future post-crash load.
// Store IDs are deterministic per instruction-stream prefix, so across
// executions of one deterministically replayed program, equal
// fingerprints mean the surviving images are the same image, not merely
// similar ones.
func (m *Machine) PersistFingerprint() uint64 { return m.img.Fingerprint() }

// Snapshot captures the machine's persistent state for a later Restore.
// Call it only immediately after Crash: store buffers, pending flushes,
// and the volatile cache are then empty, so the crash image's sealed
// bounds are the whole machine state.
func (m *Machine) Snapshot() *persist.ImageSnapshot { return m.img.Snapshot() }

// Restore rewinds the machine to a previously captured Snapshot. The
// volatile state rebuilt since the snapshot is dropped (it was empty at
// the snapshot point) and the crash image is rewound. The shared trace
// is rewound by the caller.
func (m *Machine) Restore(snap *persist.ImageSnapshot) {
	clear(m.buffers)
	clear(m.pending)
	clear(m.mem)
	m.img.Restore(snap)
}

// Retire implements persist.Retirable: one bounded-window retirement of
// the machine's trace. The machine's own roots are the volatile cache
// (newest committed store per word), buffered stores still waiting to
// commit, and every crash-image entry that can still become a read
// candidate (the image kills the provably dead ones as it marks);
// pending clflushopt records hold line coverage counts, not stores.
// extraRoots lets the caller pin checker-owned stores before the sweep.
func (m *Machine) Retire(extraRoots func(mark func(*trace.Store))) {
	m.tr.BeginRetire()
	mark := m.tr.MarkRetireRoot
	for _, st := range m.mem {
		mark(st)
	}
	for _, buf := range m.buffers {
		for _, e := range buf {
			if e.store != nil {
				mark(e.store)
			}
		}
	}
	m.img.Retire(mark)
	if extraRoots != nil {
		extraRoots(mark)
	}
	m.tr.FinishRetire()
}

// GuaranteedPersistCount returns how many committed stores to the line
// containing a are guaranteed persistent in the current sub-execution.
// It exists for tests and diagnostics.
func (m *Machine) GuaranteedPersistCount(a memmodel.Addr) int {
	return m.img.GuaranteedCount(a)
}
