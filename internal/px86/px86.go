// Package px86 simulates the Intel-x86 persistency model following the
// Px86sim semantics of Raad et al. (POPL 2020), which the paper builds on
// (§2). The simulated machine provides:
//
//   - TSO volatile semantics with per-thread store buffers;
//   - cache-line granular persistence: clflush persists its line
//     synchronously when it leaves the store buffer; clflushopt/clwb are
//     asynchronous and only guaranteed complete after a subsequent drain
//     (mfence, sfence, or a locked RMW) by the same thread;
//   - crash events after which the persistent image of each cache line is
//     some TSO-order prefix of the line's committed stores, no shorter
//     than the prefix guaranteed by completed flushes.
//
// Crash images are resolved lazily, read by read: a post-crash load asks
// the machine for the set of stores it may legally read (LoadCandidates),
// an exploration policy picks one, and the machine narrows the remaining
// nondeterminism so later reads stay consistent with the choice. This is
// the same read-centric exploration style as the Jaaru model checker the
// paper builds PSan upon.
package px86

import (
	"fmt"
	"sort"

	"repro/internal/memmodel"
	"repro/internal/trace"
)

// InvariantError is the panic value raised when the machine detects an
// internal inconsistency — a crash-image prefix range that became empty
// or contradictory. These are engine bugs, never program-under-test
// bugs, and the value is typed so the exploration layer's panic
// isolation can classify the record it quarantines (explore.ExecError)
// instead of losing the whole campaign to one broken schedule.
type InvariantError struct {
	// Check names the violated invariant ("crash-image resolution",
	// "prefix range").
	Check string
	// Addr is the word whose line state exposed the inconsistency.
	Addr memmodel.Addr
	// Loc is the materialized (interned) source location of the access
	// being resolved when the invariant tripped; empty when unknown.
	Loc string
}

// Error implements error, so the panic value reads well in logs.
func (e InvariantError) Error() string {
	if e.Loc == "" {
		return fmt.Sprintf("px86: %s invariant violated for %s", e.Check, e.Addr)
	}
	return fmt.Sprintf("px86: %s invariant violated for %s at %s", e.Check, e.Addr, e.Loc)
}

// String mirrors Error for %v rendering of the bare panic value.
func (e InvariantError) String() string { return e.Error() }

// Config controls simulation behavior.
type Config struct {
	// DelayedCommit keeps stores in per-thread store buffers until a
	// fence, RMW, or explicit Drain call commits them, exposing TSO
	// store-buffer effects. When false (the default), stores commit to
	// the cache immediately after issue, which is a legal TSO behavior
	// and keeps model-checking tractable.
	DelayedCommit bool
}

// bufEntry is one store-buffer slot: a pending store or a pending flush.
type bufEntry struct {
	kind  memmodel.OpKind
	store *trace.Store  // for OpStore/OpCAS/OpFAA
	line  memmodel.Addr // for OpFlush/OpFlushOpt
	loc   trace.LocID
}

// pendingFlush is a clflushopt that has left the store buffer but whose
// persistence is not yet guaranteed by a drain.
type pendingFlush struct {
	line     memmodel.Addr
	coverage int // line-history length at buffer exit
}

// epoch is the committed store history of one cache line within one
// crash-delimited sub-execution, together with the unresolved range of
// prefixes that may have persisted. A prefix length p with lo ≤ p ≤ hi
// means the first p stores of the epoch reached persistent memory.
type epoch struct {
	stores []*trace.Store
	lo, hi int
}

// indexOfFirst returns the index of the first store to word w, or -1.
func (ep *epoch) indexOfFirst(w memmodel.Addr) int {
	for i, s := range ep.stores {
		if s.Addr == w {
			return i
		}
	}
	return -1
}

// lineState is the full persistence state of one cache line: sealed
// epochs from previous sub-executions (oldest first) plus the live epoch
// of the current sub-execution. For the live epoch, lo is the number of
// stores guaranteed persistent by completed flushes; hi is unused until
// the epoch is sealed by a crash.
type lineState struct {
	sealed []*epoch
	live   *epoch
}

// Machine is a simulated Px86 multiprocessor with persistent memory.
// It is not safe for concurrent use: simulated threads are interleaved
// by the caller (the exploration harness), not by goroutines. A Machine
// holds no package-level state, so distinct Machines may be driven from
// distinct goroutines concurrently — the parallel exploration engine
// relies on exactly this one-world-per-goroutine discipline.
type Machine struct {
	cfg     Config
	tr      *trace.Trace
	mem     map[memmodel.Addr]*trace.Store // volatile cache: last committed store per word, this sub-execution
	buffers map[memmodel.ThreadID][]bufEntry
	pending map[memmodel.ThreadID][]pendingFlush
	lines   map[memmodel.Addr]*lineState

	// epochFree recycles sealed epochs across Reset; Crash draws from it
	// before allocating.
	epochFree []*epoch
	// cands is the scratch buffer LoadCandidates returns; see its
	// contract.
	cands []Candidate
	// candIdxs is LoadCandidates' per-epoch store-index scratch.
	candIdxs []int
}

// New returns a machine with all of persistent memory zero-initialized.
func New(cfg Config) *Machine {
	return &Machine{
		cfg:     cfg,
		tr:      trace.New(),
		mem:     make(map[memmodel.Addr]*trace.Store),
		buffers: make(map[memmodel.ThreadID][]bufEntry),
		pending: make(map[memmodel.ThreadID][]pendingFlush),
		lines:   make(map[memmodel.Addr]*lineState),
	}
}

// Trace returns the execution trace recorded so far.
func (m *Machine) Trace() *trace.Trace { return m.tr }

// Intern maps a source label to the trace's dense LocID, the form every
// instruction method takes.
func (m *Machine) Intern(loc string) trace.LocID { return m.tr.Intern(loc) }

// Reset rewinds the machine (and its trace) to the freshly-constructed
// state, recycling the trace arenas, the cache-line records, and the
// sealed epochs. The trace's intern table is kept. Pointers previously
// obtained from the machine or its trace become invalid.
func (m *Machine) Reset() {
	clear(m.mem)
	clear(m.buffers)
	clear(m.pending)
	for _, ls := range m.lines {
		m.epochFree = append(m.epochFree, ls.sealed...)
		ls.sealed = ls.sealed[:0]
		if ls.live != nil {
			m.epochFree = append(m.epochFree, ls.live)
		}
		ls.live = m.newEpoch()
	}
	m.tr.Reset()
}

// newEpoch returns a zeroed epoch, recycled when possible.
func (m *Machine) newEpoch() *epoch {
	if n := len(m.epochFree); n > 0 {
		ep := m.epochFree[n-1]
		m.epochFree = m.epochFree[:n-1]
		ep.stores = ep.stores[:0]
		ep.lo, ep.hi = 0, 0
		return ep
	}
	return &epoch{}
}

func (m *Machine) line(a memmodel.Addr) *lineState {
	l := a.Line()
	ls, ok := m.lines[l]
	if !ok {
		ls = &lineState{live: &epoch{}}
		m.lines[l] = ls
	}
	return ls
}

// --- store buffer mechanics ---

// exitEntry applies the oldest store-buffer entry of thread t to the
// cache, per the Px86sim buffer-exit transitions.
func (m *Machine) exitEntry(t memmodel.ThreadID, e bufEntry) {
	switch e.kind {
	case memmodel.OpFlush:
		ls := m.line(e.line)
		// clflush persists the line synchronously at buffer exit: every
		// store committed to the line so far is guaranteed persistent.
		if n := len(ls.live.stores); n > ls.live.lo {
			ls.live.lo = n
		}
	case memmodel.OpFlushOpt:
		ls := m.line(e.line)
		// clflushopt writes the line back asynchronously; completion is
		// guaranteed only by a later drain of the same thread. Record
		// the coverage (stores committed at buffer exit).
		m.pending[t] = append(m.pending[t], pendingFlush{line: e.line, coverage: len(ls.live.stores)})
	default:
		m.commit(e.store)
	}
}

// commit applies [STORE COMMIT]: the store becomes globally visible and
// joins its cache line's history.
func (m *Machine) commit(st *trace.Store) {
	m.tr.StoreCommit(st)
	m.mem[st.Addr] = st
	ls := m.line(st.Addr)
	ls.live.stores = append(ls.live.stores, st)
}

// DrainAll commits every pending entry of thread t's store buffer, in
// FIFO order.
func (m *Machine) DrainAll(t memmodel.ThreadID) {
	for _, e := range m.buffers[t] {
		m.exitEntry(t, e)
	}
	m.buffers[t] = nil
}

// DrainOne commits the oldest pending entry of thread t's store buffer,
// reporting whether there was one. Exploration harnesses use it to
// exercise store-buffer interleavings in delayed-commit mode.
func (m *Machine) DrainOne(t memmodel.ThreadID) bool {
	buf := m.buffers[t]
	if len(buf) == 0 {
		return false
	}
	m.exitEntry(t, buf[0])
	m.buffers[t] = buf[1:]
	return true
}

// BufferLen returns the number of pending entries in t's store buffer.
func (m *Machine) BufferLen(t memmodel.ThreadID) int { return len(m.buffers[t]) }

// drainCompletes marks thread t's exited clflushopt operations as
// guaranteed persistent (a drain instruction committed).
func (m *Machine) drainCompletes(t memmodel.ThreadID) {
	for _, pf := range m.pending[t] {
		ls := m.line(pf.line)
		if pf.coverage > ls.live.lo {
			ls.live.lo = pf.coverage
		}
	}
	m.pending[t] = nil
}

// --- instruction interface ---

// Store issues a store of v to word a by thread t. In delayed-commit
// mode the store waits in t's buffer; otherwise it commits immediately.
func (m *Machine) Store(t memmodel.ThreadID, a memmodel.Addr, v memmodel.Value, loc trace.LocID) *trace.Store {
	st := m.tr.StoreIssue(t, a, v, memmodel.OpStore, loc)
	if m.cfg.DelayedCommit {
		m.buffers[t] = append(m.buffers[t], bufEntry{kind: memmodel.OpStore, store: st, loc: loc})
	} else {
		m.commit(st)
	}
	return st
}

// Flush issues a clflush of the line containing a. It enters the store
// buffer like a store (clflush is ordered like a store, §2).
func (m *Machine) Flush(t memmodel.ThreadID, a memmodel.Addr, loc trace.LocID) {
	m.tr.Fence(t, memmodel.OpFlush, a.Line(), loc)
	e := bufEntry{kind: memmodel.OpFlush, line: a.Line(), loc: loc}
	if m.cfg.DelayedCommit {
		m.buffers[t] = append(m.buffers[t], e)
	} else {
		m.exitEntry(t, e)
	}
}

// FlushOpt issues a clflushopt/clwb of the line containing a. Its
// persistence is guaranteed only after a subsequent drain by t.
func (m *Machine) FlushOpt(t memmodel.ThreadID, a memmodel.Addr, loc trace.LocID) {
	m.tr.Fence(t, memmodel.OpFlushOpt, a.Line(), loc)
	e := bufEntry{kind: memmodel.OpFlushOpt, line: a.Line(), loc: loc}
	if m.cfg.DelayedCommit {
		m.buffers[t] = append(m.buffers[t], e)
	} else {
		m.exitEntry(t, e)
	}
}

// SFence issues a store fence: it drains t's store buffer and completes
// t's outstanding clflushopt operations.
func (m *Machine) SFence(t memmodel.ThreadID, loc trace.LocID) {
	m.tr.Fence(t, memmodel.OpSFence, 0, loc)
	m.DrainAll(t)
	m.drainCompletes(t)
}

// MFence issues a full fence; for persistency purposes it behaves like
// SFence (both are drain operations).
func (m *Machine) MFence(t memmodel.ThreadID, loc trace.LocID) {
	m.tr.Fence(t, memmodel.OpMFence, 0, loc)
	m.DrainAll(t)
	m.drainCompletes(t)
}

// --- loads and crash-image resolution ---

// Candidate describes one store a post-crash load may read, along with
// the epoch bookkeeping needed to commit the choice.
type Candidate struct {
	Store *trace.Store
	// resolve marks candidates that narrow crash-image nondeterminism
	// when chosen: stores surviving from sealed epochs and the initial
	// value. Volatile reads (store-buffer forwarding and words written
	// in the current sub-execution) are uniquely determined and resolve
	// nothing.
	resolve bool
	// epochIdx is the index into lineState.sealed, or -1 for the
	// initial value.
	epochIdx int
	// loNew/hiNew are the narrowed prefix range for that epoch.
	loNew, hiNew int
}

// LoadCandidates returns the stores a load of word a by thread t may
// read, newest-possible first. Volatile reads (own store buffer, or a
// word written in the current sub-execution) have exactly one candidate.
// Post-crash reads of unresolved words may have several; reading the
// zero-initialized original contents is represented by the synthetic
// initial store.
// The returned slice is a machine-owned scratch buffer, valid only until
// the next LoadCandidates call on the same machine; callers that keep
// more than one candidate set alive must copy.
func (m *Machine) LoadCandidates(t memmodel.ThreadID, a memmodel.Addr) []Candidate {
	a = a.Word()
	cands := m.cands[:0]
	// TSO store-buffer forwarding: newest buffered store to a by t.
	buf := m.buffers[t]
	for i := len(buf) - 1; i >= 0; i-- {
		if e := buf[i]; e.store != nil && e.store.Addr == a {
			m.cands = append(cands, Candidate{Store: e.store, epochIdx: -1})
			return m.cands
		}
	}
	// Committed this sub-execution: the cache holds a definite value.
	if st, ok := m.mem[a]; ok {
		m.cands = append(cands, Candidate{Store: st, epochIdx: -1})
		return m.cands
	}
	// Unresolved: walk sealed epochs newest-first.
	ls := m.lines[a.Line()]
	var sealed []*epoch
	if ls != nil {
		sealed = ls.sealed
	}
	blocked := false
	for j := len(sealed) - 1; j >= 0 && !blocked; j-- {
		ep := sealed[j]
		// Indices of stores to a within this epoch.
		idxs := m.candIdxs[:0]
		for i, s := range ep.stores {
			if s.Addr == a {
				idxs = append(idxs, i)
			}
		}
		m.candIdxs = idxs
		for k, i := range idxs {
			// Store at index i is visible for prefix lengths in
			// [i+1, next], where next is the index of the next store to
			// a (exclusive upper bound on prefixes that still show i).
			next := len(ep.stores)
			if k+1 < len(idxs) {
				next = idxs[k+1]
			}
			lo := max(ep.lo, i+1)
			hi := min(ep.hi, next)
			if lo <= hi {
				cands = append(cands, Candidate{Store: ep.stores[i], resolve: true, epochIdx: j, loNew: lo, hiNew: hi})
			}
		}
		if len(idxs) > 0 {
			// Older epochs are visible only if this epoch's prefix can
			// exclude all stores to a.
			if ep.lo > idxs[0] {
				blocked = true
			}
		}
	}
	if !blocked {
		cands = append(cands, Candidate{Store: m.tr.Initial(a), resolve: true, epochIdx: -1})
	}
	m.cands = cands
	return cands
}

// resolveChoice narrows epoch ranges so that future reads agree with the
// chosen candidate. loc is the access's interned location, carried into
// the InvariantError panic raised when narrowing exposes an internal
// inconsistency.
func (m *Machine) resolveChoice(a memmodel.Addr, c Candidate, loc trace.LocID) {
	if !c.resolve {
		return // volatile read: nothing to narrow
	}
	ls := m.lines[a.Line()]
	if ls == nil {
		return
	}
	// All epochs newer than the chosen one must exclude their stores
	// to a; for the initial value (epochIdx -1 via sealed path) every
	// epoch must.
	from := len(ls.sealed) - 1
	for j := from; j > c.epochIdx; j-- {
		ep := ls.sealed[j]
		if first := ep.indexOfFirst(a); first >= 0 && ep.hi > first {
			ep.hi = first
			if ep.lo > ep.hi {
				panic(InvariantError{Check: "crash-image resolution", Addr: a, Loc: m.tr.LocString(loc)})
			}
		}
	}
	if c.epochIdx >= 0 {
		ep := ls.sealed[c.epochIdx]
		ep.lo, ep.hi = c.loNew, c.hiNew
		if ep.lo > ep.hi {
			panic(InvariantError{Check: "prefix range", Addr: a, Loc: m.tr.LocString(loc)})
		}
	}
}

// Load performs a load of word a by thread t reading from the chosen
// candidate, which must come from LoadCandidates for the same (t, a).
// It returns the loaded value.
func (m *Machine) Load(t memmodel.ThreadID, a memmodel.Addr, c Candidate, loc trace.LocID) memmodel.Value {
	a = a.Word()
	m.resolveChoice(a, c, loc)
	m.tr.Load(t, a, c.Store, memmodel.OpLoad, loc)
	return c.Store.Value
}

// LoadDefault performs a load reading the newest legal store — the
// behavior of an execution where everything persisted. It is the
// convenient entry point for code running before any crash.
func (m *Machine) LoadDefault(t memmodel.ThreadID, a memmodel.Addr, loc trace.LocID) memmodel.Value {
	cands := m.LoadCandidates(t, a)
	return m.Load(t, a, cands[0], loc)
}

// rmwBegin drains the thread's store buffer (locked instructions flush
// the buffer) and completes its pending clflushopt operations: locked
// RMW operations are drain operations (§2).
func (m *Machine) rmwBegin(t memmodel.ThreadID) {
	m.DrainAll(t)
	m.drainCompletes(t)
}

// CAS performs an atomic compare-and-swap on word a: it reads from the
// chosen candidate, and if the value equals expected, commits a store of
// newV. It returns the value read and whether the swap happened. CAS is
// analyzed as a load immediately followed by a store (§5) and acts as a
// drain either way.
func (m *Machine) CAS(t memmodel.ThreadID, a memmodel.Addr, c Candidate, expected, newV memmodel.Value, loc trace.LocID) (memmodel.Value, bool) {
	a = a.Word()
	m.rmwBegin(t)
	m.resolveChoice(a, c, loc)
	m.tr.Load(t, a, c.Store, memmodel.OpCAS, loc)
	old := c.Store.Value
	if old != expected {
		return old, false
	}
	st := m.tr.StoreIssue(t, a, newV, memmodel.OpCAS, loc)
	m.commit(st)
	return old, true
}

// FAA performs an atomic fetch-and-add on word a reading from the chosen
// candidate, returning the previous value. Like CAS it drains.
func (m *Machine) FAA(t memmodel.ThreadID, a memmodel.Addr, c Candidate, delta memmodel.Value, loc trace.LocID) memmodel.Value {
	a = a.Word()
	m.rmwBegin(t)
	m.resolveChoice(a, c, loc)
	m.tr.Load(t, a, c.Store, memmodel.OpFAA, loc)
	old := c.Store.Value
	st := m.tr.StoreIssue(t, a, old+delta, memmodel.OpFAA, loc)
	m.commit(st)
	return old
}

// Crash simulates a power failure: store buffers and outstanding
// clflushopt operations are lost, the volatile cache vanishes, and each
// cache line's committed history is sealed into an epoch whose persisted
// prefix is any length from the flush-guaranteed lower bound up to the
// full history. A new sub-execution begins.
func (m *Machine) Crash() {
	clear(m.buffers)
	clear(m.pending)
	clear(m.mem)
	for _, ls := range m.lines {
		if len(ls.live.stores) > 0 || ls.live.lo > 0 {
			ls.live.hi = len(ls.live.stores)
			ls.sealed = append(ls.sealed, ls.live)
			ls.live = m.newEpoch()
		} else {
			// Nothing to seal: keep the (empty) live epoch.
			ls.live.lo, ls.live.hi = 0, 0
		}
	}
	m.tr.Crash()
}

// PersistFingerprint hashes the machine's persistent state: every cache
// line's sealed store history (IDs and values) together with its
// persisted-prefix bounds. Call it immediately after Crash, when the
// live epochs are empty — two machines with equal fingerprints then
// present identical candidate sets to every future post-crash load.
// Store IDs are deterministic per instruction-stream prefix, so across
// executions of one deterministically replayed program, equal
// fingerprints mean the surviving images are the same image, not merely
// similar ones.
func (m *Machine) PersistFingerprint() uint64 {
	lines := make([]memmodel.Addr, 0, len(m.lines))
	for l, ls := range m.lines {
		if len(ls.sealed) > 0 {
			lines = append(lines, l)
		}
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		// FNV-1a over the value's bytes, low to high.
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, l := range lines {
		ls := m.lines[l]
		mix(uint64(l))
		mix(uint64(len(ls.sealed)))
		for _, ep := range ls.sealed {
			mix(uint64(ep.lo))
			mix(uint64(ep.hi))
			mix(uint64(len(ep.stores)))
			for _, s := range ep.stores {
				mix(uint64(s.ID))
				mix(uint64(s.Value))
			}
		}
	}
	return h
}

// GuaranteedPersistCount returns how many committed stores to the line
// containing a are guaranteed persistent in the current sub-execution.
// It exists for tests and diagnostics.
func (m *Machine) GuaranteedPersistCount(a memmodel.Addr) int {
	if ls := m.lines[a.Line()]; ls != nil {
		return ls.live.lo
	}
	return 0
}
