package trace

import (
	"testing"

	"repro/internal/memmodel"
)

const (
	addrX = memmodel.Addr(0x1000)
	addrY = memmodel.Addr(0x2000)
)

// issueCommit is a helper that issues and immediately commits a store.
func issueCommit(tr *Trace, t memmodel.ThreadID, a memmodel.Addr, v memmodel.Value, loc string) *Store {
	st := tr.StoreIssue(t, a, v, memmodel.OpStore, tr.Intern(loc))
	tr.StoreCommit(st)
	return st
}

func TestClocksArePerThreadAndUnique(t *testing.T) {
	tr := New()
	s1 := issueCommit(tr, 0, addrX, 1, "s1")
	s2 := issueCommit(tr, 0, addrY, 2, "s2")
	s3 := issueCommit(tr, 1, addrX, 3, "s3")
	if s1.Clock != 1 || s2.Clock != 2 {
		t.Fatalf("thread 0 clocks = %d, %d; want 1, 2", s1.Clock, s2.Clock)
	}
	if s3.Clock != 1 {
		t.Fatalf("thread 1 clock = %d; want 1", s3.Clock)
	}
}

func TestSeqTracksCommitOrderNotIssueOrder(t *testing.T) {
	tr := New()
	a := tr.StoreIssue(0, addrX, 1, memmodel.OpStore, tr.Intern("a"))
	b := tr.StoreIssue(1, addrY, 2, memmodel.OpStore, tr.Intern("b"))
	// b commits before a: TSO order is b, a even though a issued first.
	tr.StoreCommit(b)
	tr.StoreCommit(a)
	if b.Seq != 1 || a.Seq != 2 {
		t.Fatalf("seq: b=%d a=%d; want b=1 a=2", b.Seq, a.Seq)
	}
	got := tr.Current().Stores
	if len(got) != 2 || got[0] != b || got[1] != a {
		t.Fatalf("commit order wrong: %v", got)
	}
}

func TestUncommittedStoreHasZeroSeq(t *testing.T) {
	tr := New()
	st := tr.StoreIssue(0, addrX, 1, memmodel.OpStore, tr.Intern("st"))
	if st.Seq != 0 {
		t.Fatalf("issued store has Seq %d, want 0", st.Seq)
	}
	if len(tr.Current().StoresTo(addrX)) != 0 {
		t.Fatal("uncommitted store appears in per-location history")
	}
}

func TestDoubleCommitPanics(t *testing.T) {
	tr := New()
	st := tr.StoreIssue(0, addrX, 1, memmodel.OpStore, tr.Intern("st"))
	tr.StoreCommit(st)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double commit")
		}
	}()
	tr.StoreCommit(st)
}

func TestLoadMergesStoreCVWithinSubExec(t *testing.T) {
	tr := New()
	s1 := issueCommit(tr, 0, addrX, 1, "x=1")
	// Thread 1 reads x=1, then stores y: the y-store must carry the
	// happens-before edge from x=1 (the Figure 7 pattern).
	tr.Load(1, addrX, s1, memmodel.OpLoad, tr.Intern("r1=x"))
	s2 := issueCommit(tr, 1, addrY, 1, "y=r1")
	if !s1.HappensBefore(s2) {
		t.Fatalf("x=1 should happen before y=r1: s1.CV=%v s2.CV=%v", s1.CV, s2.CV)
	}
	if s2.HappensBefore(s1) {
		t.Fatal("happens-before must be asymmetric")
	}
}

func TestLoadAcrossCrashDoesNotMergeCV(t *testing.T) {
	tr := New()
	s1 := issueCommit(tr, 0, addrX, 1, "x=1")
	tr.Crash()
	tr.Load(0, addrX, s1, memmodel.OpLoad, tr.Intern("post r=x"))
	s2 := issueCommit(tr, 0, addrY, 7, "post y=7")
	if s1.HappensBefore(s2) {
		t.Fatal("stores in different sub-executions are not hb-related")
	}
	// The post-crash thread's CV must not contain pre-crash clocks.
	if got := s2.CV.At(0); got != 1 {
		t.Fatalf("post-crash thread clock = %d, want 1 (fresh)", got)
	}
}

func TestCrashResetsSeqAndStartsNewSubExec(t *testing.T) {
	tr := New()
	issueCommit(tr, 0, addrX, 1, "x=1")
	issueCommit(tr, 0, addrX, 2, "x=2")
	tr.Crash()
	if tr.NumCrashes() != 1 {
		t.Fatalf("NumCrashes = %d, want 1", tr.NumCrashes())
	}
	s3 := issueCommit(tr, 0, addrX, 3, "x=3")
	if s3.Seq != 1 {
		t.Fatalf("post-crash seq = %d, want 1 (reset)", s3.Seq)
	}
	if s3.SubExec != 1 {
		t.Fatalf("post-crash SubExec = %d, want 1", s3.SubExec)
	}
	if s3.Clock != 1 {
		t.Fatalf("post-crash clock = %d, want 1 (CV map reset)", s3.Clock)
	}
}

func TestInitialStore(t *testing.T) {
	tr := New()
	i1 := tr.Initial(addrX)
	i2 := tr.Initial(addrX + 3) // same word
	if i1 != i2 {
		t.Fatal("Initial must be cached per word")
	}
	if !i1.Initial || i1.Seq != 0 || i1.Clock != 0 || !i1.CV.IsBottom() {
		t.Fatalf("initial store malformed: %+v", i1)
	}
	st := issueCommit(tr, 0, addrX, 1, "x=1")
	if !i1.HappensBefore(st) {
		t.Fatal("initial store must happen before every store")
	}
	if st.HappensBefore(i1) {
		t.Fatal("no store happens before an initial store")
	}
}

func TestNextWithinSubExec(t *testing.T) {
	tr := New()
	s1 := issueCommit(tr, 0, addrX, 1, "x=1") // read-from store
	s2 := issueCommit(tr, 0, addrX, 2, "x=2") // first after, thread 0
	issueCommit(tr, 0, addrX, 3, "x=3")       // not first
	s4 := issueCommit(tr, 1, addrX, 4, "x=4") // first after, thread 1
	issueCommit(tr, 0, addrY, 9, "y=9")       // different location
	tr.Crash()
	got := tr.Next(s1, 1)
	if len(got) != 2 || got[0] != s2 || got[1] != s4 {
		t.Fatalf("Next = %v, want [x=2 x=4]", got)
	}
}

func TestNextFromInitialStore(t *testing.T) {
	tr := New()
	s1 := issueCommit(tr, 0, addrX, 1, "x=1")
	tr.Crash()
	init := tr.Initial(addrX)
	got := tr.Next(init, 1)
	if len(got) != 1 || got[0] != s1 {
		t.Fatalf("Next(init) = %v, want [x=1]", got)
	}
}

func TestNextSpansInterveningSubExecs(t *testing.T) {
	tr := New()
	s1 := issueCommit(tr, 0, addrX, 1, "e0:x=1")
	tr.Crash()
	s2 := issueCommit(tr, 0, addrX, 2, "e1:x=2")
	issueCommit(tr, 0, addrX, 3, "e1:x=3")
	tr.Crash()
	// Load in e2 reading s1 from e0: next must include the first store
	// to x TSO-after s1 in e0 (none) and the first store to x per thread
	// in e1 (s2).
	got := tr.Next(s1, 2)
	if len(got) != 1 || got[0] != s2 {
		t.Fatalf("Next = %v, want [e1:x=2]", got)
	}
}

func TestNextExcludesCurrentSubExec(t *testing.T) {
	tr := New()
	s1 := issueCommit(tr, 0, addrX, 1, "e0:x=1")
	tr.Crash()
	issueCommit(tr, 0, addrX, 5, "e1:x=5")
	// Load in e1 reading s1: the e1 store must NOT appear via the
	// intervening-sub-execution clause (it is handled by TSO-within-e1
	// memory semantics, not by crash constraints)... but it IS TSO
	// ordered after s1? No: s1 is in e0, the e1 store is in a different
	// sub-execution that equals ecur, so it is excluded.
	got := tr.Next(s1, 1)
	if len(got) != 0 {
		t.Fatalf("Next = %v, want []", got)
	}
}

func TestGetExec(t *testing.T) {
	tr := New()
	s1 := issueCommit(tr, 0, addrX, 1, "x=1")
	tr.Crash()
	s2 := issueCommit(tr, 0, addrX, 2, "x=2")
	if tr.GetExec(s1).Index != 0 || tr.GetExec(s2).Index != 1 {
		t.Fatalf("GetExec wrong: %d, %d", tr.GetExec(s1).Index, tr.GetExec(s2).Index)
	}
}

func TestEventsOf(t *testing.T) {
	tr := New()
	issueCommit(tr, 0, addrX, 1, "a")
	issueCommit(tr, 1, addrY, 2, "b")
	tr.Load(0, addrY, nil, memmodel.OpLoad, tr.Intern("c"))
	evs := tr.EventsOf(0, 0)
	if len(evs) != 2 || tr.LocString(evs[0].Loc) != "a" || tr.LocString(evs[1].Loc) != "c" {
		t.Fatalf("EventsOf(0,0) = %v", evs)
	}
}

func TestRMWStoreKind(t *testing.T) {
	tr := New()
	st := tr.StoreIssue(0, addrX, 5, memmodel.OpCAS, tr.Intern("cas"))
	tr.StoreCommit(st)
	if st.Kind != memmodel.OpCAS {
		t.Fatalf("kind = %v, want cas", st.Kind)
	}
}

// The store CV includes the issuing thread's own new clock — SCV(st)(τ)
// is the clock of st itself (§5.1).
func TestStoreCVIncludesOwnClock(t *testing.T) {
	tr := New()
	s1 := issueCommit(tr, 0, addrX, 1, "s1")
	s2 := issueCommit(tr, 0, addrY, 2, "s2")
	if s1.CV.At(0) != s1.Clock || s2.CV.At(0) != s2.Clock {
		t.Fatal("SCV(st)(τ) must equal getcl(st)")
	}
	if !s1.HappensBefore(s2) {
		t.Fatal("program order implies happens-before")
	}
}

// SCV(st)(τ′) for τ′ ≠ τ is the clock of the last store of τ′ that
// happens before st — the property LOAD-PREV relies on (§5.1).
func TestStoreCVRecordsLastHBStoreOfOtherThreads(t *testing.T) {
	tr := New()
	a1 := issueCommit(tr, 0, addrX, 1, "a1")
	a2 := issueCommit(tr, 0, addrY, 2, "a2")
	tr.Load(1, addrY, a2, memmodel.OpLoad, tr.Intern("r=y"))
	b1 := issueCommit(tr, 1, addrX, 3, "b1")
	if got := b1.CV.At(0); got != a2.Clock {
		t.Fatalf("SCV(b1)(t0) = %d, want %d (clock of a2)", got, a2.Clock)
	}
	if !a1.HappensBefore(b1) || !a2.HappensBefore(b1) {
		t.Fatal("both a1 and a2 must happen before b1")
	}
}

func TestLoadEventRecordsValue(t *testing.T) {
	tr := New()
	s := issueCommit(tr, 0, addrX, 42, "x=42")
	ev := tr.Load(1, addrX, s, memmodel.OpLoad, tr.Intern("r=x"))
	if ev.Value != 42 || ev.RF != s {
		t.Fatalf("load event = %+v", ev)
	}
}
