package trace

import (
	"fmt"
	"io"

	"repro/internal/memmodel"
)

// Dump writes a human-readable listing of the execution — the trace a
// developer would otherwise inspect by hand to localize a bug (§4: such
// traces "can contain millions of operations"; PSan's reports point
// into them). Sub-executions are numbered from 1 as in the paper's
// e1 C1 e2 ... notation. On a bounded-window trace only the retained
// tail is listed: retired slots (released to the GC) are skipped behind
// a banner, and sub-execution numbering accounts for crashes that were
// retired with them.
func (tr *Trace) Dump(w io.Writer) {
	sub := tr.retired.Crashes
	if tr.eventFloor > 0 {
		fmt.Fprintf(w, "... %d events retired (window %d); listing resumes at event %d ...\n",
			tr.retired.Events, tr.window, tr.eventFloor)
	}
	fmt.Fprintf(w, "=== sub-execution e%d ===\n", sub+1)
	for _, ev := range tr.events[tr.eventFloor-tr.eventBase:] {
		if ev == nil {
			continue
		}
		if ev.Kind == memmodel.OpCrash {
			sub++
			fmt.Fprintf(w, "--- crash C%d ---\n=== sub-execution e%d ===\n", sub, sub+1)
			continue
		}
		fmt.Fprintf(w, "%5d  t%-2d %-10s", ev.Index, int(ev.Thread), ev.Kind)
		switch {
		case ev.Store != nil:
			fmt.Fprintf(w, " %s = %-6d clk=%-3d seq=%-3d", ev.Addr, uint64(ev.Value), int64(ev.Store.Clock), int64(ev.Store.Seq))
		case ev.RF != nil:
			from := "init"
			if !ev.RF.Initial {
				from = fmt.Sprintf("e%d clk%d", ev.RF.SubExec+1, int64(ev.RF.Clock))
			}
			fmt.Fprintf(w, " %s -> %-6d rf=%s", ev.Addr, uint64(ev.Value), from)
		case ev.Kind == memmodel.OpFlush || ev.Kind == memmodel.OpFlushOpt:
			fmt.Fprintf(w, " line %s", ev.Addr)
		}
		if ev.Loc != NoLoc {
			fmt.Fprintf(w, "  ; %s", tr.LocString(ev.Loc))
		}
		fmt.Fprintln(w)
	}
}

// Stats summarizes an execution trace. On a bounded-window trace the
// per-kind counts still cover the WHOLE execution (retired events are
// folded in from the retirement totals, so they match an unbounded run
// of the same schedule), while the Retained/Retired fields split the
// totals into what is still resident versus what the window released.
type Stats struct {
	Events, Stores, Loads, Flushes, Fences, RMWs, Crashes int

	// Retirements counts completed window sweeps (0: unbounded trace;
	// all the remaining fields are zero in that case and the segment
	// suffix is omitted from String()).
	Retirements int
	// RetainedEvents/RetiredEvents and RetainedStores/RetiredStores
	// partition the execution's records into resident vs released.
	RetainedEvents, RetiredEvents int
	RetainedStores, RetiredStores int
	// RetainedBytes/RetiredBytes estimate the record memory on each
	// side of the frontier (records only; index spines excluded).
	RetainedBytes, RetiredBytes int64
}

// Stats computes summary counts over the event log without touching
// released memory: retired slots are nil holes that the walk skips, and
// their kind counts come from the totals the sweeps accumulated.
func (tr *Trace) Stats() Stats {
	s := tr.retired
	s.Events = tr.eventBase + len(tr.events)
	retainedStores := 0
	for _, ev := range tr.events[tr.eventFloor-tr.eventBase:] {
		if ev == nil {
			continue
		}
		if ev.Store != nil {
			retainedStores++
		}
		switch ev.Kind {
		case memmodel.OpStore:
			s.Stores++
		case memmodel.OpLoad:
			s.Loads++
		case memmodel.OpFlush, memmodel.OpFlushOpt:
			s.Flushes++
		case memmodel.OpSFence, memmodel.OpMFence:
			s.Fences++
		case memmodel.OpCAS, memmodel.OpFAA:
			s.RMWs++
		case memmodel.OpCrash:
			s.Crashes++
		}
	}
	if tr.retirements > 0 {
		s.Retirements = tr.retirements
		s.RetainedEvents = tr.eventBase + len(tr.events) - tr.eventFloor
		s.RetiredEvents = tr.retired.Events
		s.RetainedStores = retainedStores + len(tr.initials)
		s.RetiredStores = tr.retiredStores
		s.RetainedBytes = int64(s.RetainedEvents)*eventBytes + int64(s.RetainedStores)*storeBytes
		s.RetiredBytes = int64(s.RetiredEvents)*eventBytes + int64(s.RetiredStores)*storeBytes
	}
	return s
}

// String renders the stats on one line; a segmented (windowed) trace
// appends the retained/retired split so long-trace runs can see what
// the frontier released. Unbounded traces render exactly as before.
func (s Stats) String() string {
	base := fmt.Sprintf("%d events: %d stores, %d loads, %d flushes, %d fences, %d RMWs, %d crashes",
		s.Events, s.Stores, s.Loads, s.Flushes, s.Fences, s.RMWs, s.Crashes)
	if s.Retirements == 0 {
		return base
	}
	return fmt.Sprintf("%s | %d retirements: %d events/%d stores retained (%d B), %d events/%d stores retired (%d B)",
		base, s.Retirements, s.RetainedEvents, s.RetainedStores, s.RetainedBytes,
		s.RetiredEvents, s.RetiredStores, s.RetiredBytes)
}
