package trace

import (
	"fmt"
	"io"

	"repro/internal/memmodel"
)

// Dump writes a human-readable listing of the execution — the trace a
// developer would otherwise inspect by hand to localize a bug (§4: such
// traces "can contain millions of operations"; PSan's reports point
// into them). Sub-executions are numbered from 1 as in the paper's
// e1 C1 e2 ... notation.
func (tr *Trace) Dump(w io.Writer) {
	sub := 0
	fmt.Fprintf(w, "=== sub-execution e1 ===\n")
	for _, ev := range tr.events {
		if ev.Kind == memmodel.OpCrash {
			sub++
			fmt.Fprintf(w, "--- crash C%d ---\n=== sub-execution e%d ===\n", sub, sub+1)
			continue
		}
		fmt.Fprintf(w, "%5d  t%-2d %-10s", ev.Index, int(ev.Thread), ev.Kind)
		switch {
		case ev.Store != nil:
			fmt.Fprintf(w, " %s = %-6d clk=%-3d seq=%-3d", ev.Addr, uint64(ev.Value), int64(ev.Store.Clock), int64(ev.Store.Seq))
		case ev.RF != nil:
			from := "init"
			if !ev.RF.Initial {
				from = fmt.Sprintf("e%d clk%d", ev.RF.SubExec+1, int64(ev.RF.Clock))
			}
			fmt.Fprintf(w, " %s -> %-6d rf=%s", ev.Addr, uint64(ev.Value), from)
		case ev.Kind == memmodel.OpFlush || ev.Kind == memmodel.OpFlushOpt:
			fmt.Fprintf(w, " line %s", ev.Addr)
		}
		if ev.Loc != NoLoc {
			fmt.Fprintf(w, "  ; %s", tr.LocString(ev.Loc))
		}
		fmt.Fprintln(w)
	}
}

// Stats summarizes an execution trace.
type Stats struct {
	Events, Stores, Loads, Flushes, Fences, RMWs, Crashes int
}

// Stats computes summary counts over the event log.
func (tr *Trace) Stats() Stats {
	var s Stats
	s.Events = len(tr.events)
	for _, ev := range tr.events {
		switch ev.Kind {
		case memmodel.OpStore:
			s.Stores++
		case memmodel.OpLoad:
			s.Loads++
		case memmodel.OpFlush, memmodel.OpFlushOpt:
			s.Flushes++
		case memmodel.OpSFence, memmodel.OpMFence:
			s.Fences++
		case memmodel.OpCAS, memmodel.OpFAA:
			s.RMWs++
		case memmodel.OpCrash:
			s.Crashes++
		}
	}
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("%d events: %d stores, %d loads, %d flushes, %d fences, %d RMWs, %d crashes",
		s.Events, s.Stores, s.Loads, s.Flushes, s.Fences, s.RMWs, s.Crashes)
}
