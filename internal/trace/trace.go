// Package trace records executions of the simulated Px86 machine: the
// complete sequence of memory operations, fences, cache flushes, and
// crash events, partitioned into sub-executions by crashes
// (Exec = e1 C1 e2 C2 ... en Cn en+1, paper §3).
//
// The package also implements the Figure 3 state machine that maintains
// clock vectors (tracking the happens-before relation over stores) and
// sequence numbers (tracking the TSO commit order), and the getexec/next
// helpers used by the LOAD-PREV rule in Figure 10.
package trace

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/vclock"
)

// Store is one store operation in an execution. RMW operations contribute
// a Store for their write half. The synthetic Initial store represents a
// location's pre-execution contents (conventionally zero).
type Store struct {
	// ID is unique across the whole execution, including crashes.
	ID int64
	// Addr is the word-aligned location written.
	Addr memmodel.Addr
	// Value is the value written.
	Value memmodel.Value
	// Thread is the issuing thread (NoThread for Initial stores).
	Thread memmodel.ThreadID
	// SubExec is the index of the sub-execution the store was issued in.
	// Initial stores carry sub-execution 0 and precede all of its stores.
	SubExec int
	// Clock is the store's clock: the Thread-component of its clock
	// vector at issue time (getcl in the paper). It orders the stores of
	// one thread by issue.
	Clock vclock.Clock
	// CV is the store's clock vector SCV(st) at issue time. For τ′ ≠
	// Thread, CV.At(τ′) is the clock of the last store of thread τ′ that
	// happens before this store (§5.1).
	CV vclock.CV
	// Seq is the TSO sequence number assigned when the store commits to
	// the cache; 0 means not yet committed (Figure 3).
	Seq vclock.Seq
	// Kind is OpStore, OpCAS, or OpFAA.
	Kind memmodel.OpKind
	// Loc is the source label of the store site, used for bug reports.
	Loc string
	// Initial marks the synthetic pre-execution store.
	Initial bool
}

// String renders a short identification of the store for diagnostics.
func (s *Store) String() string {
	if s == nil {
		return "<nil store>"
	}
	if s.Initial {
		return fmt.Sprintf("init[%s]", s.Addr)
	}
	loc := s.Loc
	if loc == "" {
		loc = fmt.Sprintf("store#%d", s.ID)
	}
	return fmt.Sprintf("%s(%s=%d @t%d e%d clk%d)", loc, s.Addr, uint64(s.Value), int(s.Thread), s.SubExec, int64(s.Clock))
}

// HappensBefore reports whether s happens before t: both stores are in
// the same sub-execution and SCV(s) ≤ SCV(t) (§3.4). Initial stores
// happen before every store.
func (s *Store) HappensBefore(t *Store) bool {
	if s == t || t == nil {
		return false
	}
	if s.Initial {
		return true
	}
	if t.Initial || s.SubExec != t.SubExec {
		return false
	}
	return s.CV.Leq(t.CV)
}

// Event is one entry in the flat event log. Loads carry the store they
// read from (RF); stores and RMWs carry their Store object.
type Event struct {
	// Index is the event's position in the global log.
	Index int
	// Kind is the operation performed.
	Kind memmodel.OpKind
	// Thread is the executing thread (NoThread for crashes).
	Thread memmodel.ThreadID
	// Addr is the accessed location or flushed line base (zero for
	// fences and crashes).
	Addr memmodel.Addr
	// Value is the value loaded or stored, when applicable.
	Value memmodel.Value
	// Store is the store object for store/RMW events.
	Store *Store
	// RF is the store a load or RMW read from.
	RF *Store
	// SubExec is the sub-execution index.
	SubExec int
	// Loc is the source label of the operation.
	Loc string
	// CV is the executing thread's clock vector immediately after the
	// event, used to compute fix windows (§5.2).
	CV vclock.CV
}

// SubExec is one crash-delimited portion of an execution.
type SubExec struct {
	// Index is the sub-execution's position (0-based).
	Index int
	// Stores holds the committed stores in TSO (commit) order.
	Stores []*Store
	// byLoc indexes committed stores per location, in commit order.
	byLoc map[memmodel.Addr][]*Store
	// byThread indexes every issued store per thread; the store with
	// clock c sits at index c-1 (clocks are dense per thread).
	byThread map[memmodel.ThreadID][]*Store
	// threadCV is the CV map of Figure 3, reset at each crash.
	threadCV map[memmodel.ThreadID]vclock.CV
	// seq is the strictly increasing commit counter, reset at crashes.
	seq vclock.Seq
	// events are the indices of this sub-execution's events in the log.
	events []int
}

// StoresTo returns the committed stores to addr in TSO order.
func (e *SubExec) StoresTo(addr memmodel.Addr) []*Store { return e.byLoc[addr.Word()] }

// StoreByClock returns thread t's store with the given clock, or nil if
// no such store was issued. It resolves interval endpoints back to the
// stores that set them.
func (e *SubExec) StoreByClock(t memmodel.ThreadID, c vclock.Clock) *Store {
	sts := e.byThread[t]
	if c < 1 || int(c) > len(sts) {
		return nil
	}
	return sts[c-1]
}

// ThreadCV returns thread t's current clock vector.
func (e *SubExec) ThreadCV(t memmodel.ThreadID) vclock.CV { return e.threadCV[t] }

// Trace is a recorded execution. It is not safe for concurrent use: the
// simulated machine serializes all operations (simulated threads are
// interleaved by the explorer, not by goroutines).
type Trace struct {
	subs        []*SubExec
	events      []*Event
	initials    map[memmodel.Addr]*Store
	nextStoreID int64
}

// New returns an empty trace with one (initial) sub-execution.
func New() *Trace {
	t := &Trace{initials: make(map[memmodel.Addr]*Store)}
	t.pushSubExec()
	return t
}

func (tr *Trace) pushSubExec() {
	tr.subs = append(tr.subs, &SubExec{
		Index:    len(tr.subs),
		byLoc:    make(map[memmodel.Addr][]*Store),
		byThread: make(map[memmodel.ThreadID][]*Store),
		threadCV: make(map[memmodel.ThreadID]vclock.CV),
	})
}

// Current returns the current (last) sub-execution.
func (tr *Trace) Current() *SubExec { return tr.subs[len(tr.subs)-1] }

// SubExecs returns all sub-executions, oldest first.
func (tr *Trace) SubExecs() []*SubExec { return tr.subs }

// Sub returns the i-th sub-execution.
func (tr *Trace) Sub(i int) *SubExec { return tr.subs[i] }

// NumCrashes returns the number of crash events recorded so far.
func (tr *Trace) NumCrashes() int { return len(tr.subs) - 1 }

// Events returns the full event log.
func (tr *Trace) Events() []*Event { return tr.events }

// Initial returns (creating on first use) the synthetic initial store
// for addr. Initial stores have clock 0, bottom clock vector, and
// sequence 0: they are TSO-before and happen-before everything.
func (tr *Trace) Initial(addr memmodel.Addr) *Store {
	addr = addr.Word()
	if s, ok := tr.initials[addr]; ok {
		return s
	}
	s := &Store{
		ID:      -int64(len(tr.initials)) - 1,
		Addr:    addr,
		Thread:  memmodel.NoThread,
		SubExec: 0,
		Initial: true,
	}
	tr.initials[addr] = s
	return s
}

func (tr *Trace) appendEvent(ev *Event) *Event {
	ev.Index = len(tr.events)
	ev.SubExec = tr.Current().Index
	tr.events = append(tr.events, ev)
	cur := tr.Current()
	cur.events = append(cur.events, ev.Index)
	return ev
}

// StoreIssue applies the [STORE ISSUE] rule: it increments the thread's
// clock vector, creates the store with that vector and a zero sequence
// number, and logs the event. The returned store is not yet committed.
func (tr *Trace) StoreIssue(t memmodel.ThreadID, addr memmodel.Addr, v memmodel.Value, kind memmodel.OpKind, loc string) *Store {
	cur := tr.Current()
	cv := cur.threadCV[t].Inc(t)
	cur.threadCV[t] = cv
	tr.nextStoreID++
	st := &Store{
		ID:      tr.nextStoreID,
		Addr:    addr.Word(),
		Value:   v,
		Thread:  t,
		SubExec: cur.Index,
		Clock:   cv.At(t),
		CV:      cv,
		Kind:    kind,
		Loc:     loc,
	}
	cur.byThread[t] = append(cur.byThread[t], st)
	tr.appendEvent(&Event{Kind: kind, Thread: t, Addr: st.Addr, Value: v, Store: st, Loc: loc, CV: cv})
	return st
}

// StoreCommit applies the [STORE COMMIT] rule: the store leaves its store
// buffer and takes the next TSO sequence number of the current
// sub-execution. Committing a store twice or committing a store issued in
// an earlier sub-execution is a programming error in the simulator.
func (tr *Trace) StoreCommit(st *Store) {
	cur := tr.Current()
	if st.Seq != 0 {
		panic(fmt.Sprintf("trace: store %v committed twice", st))
	}
	if st.SubExec != cur.Index {
		panic(fmt.Sprintf("trace: store %v commits in sub-execution %d", st, cur.Index))
	}
	cur.seq++
	st.Seq = cur.seq
	cur.Stores = append(cur.Stores, st)
	cur.byLoc[st.Addr] = append(cur.byLoc[st.Addr], st)
}

// Load applies the [LOAD] rule: it logs the read and, when the store read
// from belongs to the current sub-execution, merges the store's clock
// vector into the reading thread's vector (establishing happens-before).
// Reads that cross a crash boundary do not merge vectors — recovery
// threads are fresh threads; those reads are instead checked by the
// LOAD-PREV rule of the robustness checker.
func (tr *Trace) Load(t memmodel.ThreadID, addr memmodel.Addr, rf *Store, kind memmodel.OpKind, loc string) *Event {
	cur := tr.Current()
	if rf != nil && !rf.Initial && rf.SubExec == cur.Index {
		cur.threadCV[t] = cur.threadCV[t].Join(rf.CV)
	}
	var v memmodel.Value
	if rf != nil {
		v = rf.Value
	}
	return tr.appendEvent(&Event{Kind: kind, Thread: t, Addr: addr.Word(), Value: v, RF: rf, Loc: loc, CV: cur.threadCV[t]})
}

// Fence logs a fence, flush, or flush-opt event.
func (tr *Trace) Fence(t memmodel.ThreadID, kind memmodel.OpKind, addr memmodel.Addr, loc string) *Event {
	return tr.appendEvent(&Event{Kind: kind, Thread: t, Addr: addr, Loc: loc, CV: tr.Current().threadCV[t]})
}

// Crash applies the [CRASH] rule: it logs the crash event and begins a
// new sub-execution with a fresh CV map and sequence counter.
func (tr *Trace) Crash() {
	tr.appendEvent(&Event{Kind: memmodel.OpCrash, Thread: memmodel.NoThread})
	tr.pushSubExec()
}

// GetExec returns the sub-execution containing the store (getexec in the
// paper's Figure 10).
func (tr *Trace) GetExec(st *Store) *SubExec { return tr.subs[st.SubExec] }

// Next implements next(st, e) from Figure 10: the smallest set of stores
// containing (1) the first store to st's location in each thread that is
// TSO ordered after st within getexec(st), and (2) the first store to the
// location in each thread of every sub-execution after getexec(st) and
// before the sub-execution with index ecur.
//
// Only committed stores participate: a store still sitting in a store
// buffer at the crash never reached the cache, cannot have persisted, and
// therefore constrains nothing.
func (tr *Trace) Next(st *Store, ecur int) []*Store {
	var out []*Store
	firstPerThread := func(stores []*Store, after vclock.Seq) {
		seen := make(map[memmodel.ThreadID]bool)
		for _, s := range stores {
			if s.Seq > after && !seen[s.Thread] {
				seen[s.Thread] = true
				out = append(out, s)
			}
		}
	}
	start := st.SubExec + 1
	if st.Initial {
		// The initial store precedes all stores of sub-execution 0.
		firstPerThread(tr.subs[st.SubExec].byLoc[st.Addr], 0)
	} else {
		firstPerThread(tr.subs[st.SubExec].byLoc[st.Addr], st.Seq)
	}
	for i := start; i < ecur && i < len(tr.subs); i++ {
		firstPerThread(tr.subs[i].byLoc[st.Addr], 0)
	}
	return out
}

// SubEvents returns all events of sub-execution e in execution order.
func (tr *Trace) SubEvents(e int) []*Event {
	out := make([]*Event, 0, len(tr.subs[e].events))
	for _, idx := range tr.subs[e].events {
		out = append(out, tr.events[idx])
	}
	return out
}

// EventsOf returns the events of sub-execution e executed by thread t, in
// program order. It is used to compute fix windows.
func (tr *Trace) EventsOf(e int, t memmodel.ThreadID) []*Event {
	var out []*Event
	for _, idx := range tr.subs[e].events {
		ev := tr.events[idx]
		if ev.Thread == t {
			out = append(out, ev)
		}
	}
	return out
}
