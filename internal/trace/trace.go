// Package trace records executions of the simulated Px86 machine: the
// complete sequence of memory operations, fences, cache flushes, and
// crash events, partitioned into sub-executions by crashes
// (Exec = e1 C1 e2 C2 ... en Cn en+1, paper §3).
//
// The package also implements the Figure 3 state machine that maintains
// clock vectors (tracking the happens-before relation over stores) and
// sequence numbers (tracking the TSO commit order), and the getexec/next
// helpers used by the LOAD-PREV rule in Figure 10.
//
// Store and Event records are allocated from per-trace arenas and source
// labels are interned to LocIDs, so a trace can be recycled across
// executions with Reset in O(1) heap traffic. Pointers into a trace
// (stores, events, Next results) are valid only until the next Reset;
// consumers that outlive an execution must copy what they keep.
package trace

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/vclock"
)

// Store is one store operation in an execution. RMW operations contribute
// a Store for their write half. The synthetic Initial store represents a
// location's pre-execution contents (conventionally zero).
type Store struct {
	// ID is unique across the whole execution, including crashes.
	ID int64
	// Addr is the word-aligned location written.
	Addr memmodel.Addr
	// Value is the value written.
	Value memmodel.Value
	// Thread is the issuing thread (NoThread for Initial stores).
	Thread memmodel.ThreadID
	// SubExec is the index of the sub-execution the store was issued in.
	// Initial stores carry sub-execution 0 and precede all of its stores.
	SubExec int
	// Clock is the store's clock: the Thread-component of its clock
	// vector at issue time (getcl in the paper). It orders the stores of
	// one thread by issue.
	Clock vclock.Clock
	// CV is the store's clock vector SCV(st) at issue time. For τ′ ≠
	// Thread, CV.At(τ′) is the clock of the last store of thread τ′ that
	// happens before this store (§5.1).
	CV vclock.CV
	// Seq is the TSO sequence number assigned when the store commits to
	// the cache; 0 means not yet committed (Figure 3).
	Seq vclock.Seq
	// Kind is OpStore, OpCAS, or OpFAA.
	Kind memmodel.OpKind
	// Loc is the interned source label of the store site, used for bug
	// reports; resolve it with the owning trace's LocString.
	Loc LocID
	// Initial marks the synthetic pre-execution store.
	Initial bool

	// mark is the retirement mark generation: the store is pinned by the
	// current retirement exactly when mark equals the trace's markGen.
	// Comparing a field beats any side table — the retirement sweep
	// touches every index-structure entry once, so the per-entry test
	// must be a load and a compare. Zero (never marked) sorts with "not
	// pinned", which is correct: generation numbers start at 1.
	mark uint64
}

// String renders a short identification of the store for diagnostics.
// The source label is interned in the owning trace, so it is not shown
// here; report-level types carry the materialized label instead.
func (s *Store) String() string {
	if s == nil {
		return "<nil store>"
	}
	if s.Initial {
		return fmt.Sprintf("init[%s]", s.Addr)
	}
	return fmt.Sprintf("store#%d(%s=%d @t%d e%d clk%d)", s.ID, s.Addr, uint64(s.Value), int(s.Thread), s.SubExec, int64(s.Clock))
}

// HappensBefore reports whether s happens before t: both stores are in
// the same sub-execution and SCV(s) ≤ SCV(t) (§3.4). Initial stores
// happen before every store.
func (s *Store) HappensBefore(t *Store) bool {
	if s == t || t == nil {
		return false
	}
	if s.Initial {
		return true
	}
	if t.Initial || s.SubExec != t.SubExec {
		return false
	}
	return s.CV.Leq(t.CV)
}

// Event is one entry in the flat event log. Loads carry the store they
// read from (RF); stores and RMWs carry their Store object.
type Event struct {
	// Index is the event's position in the global log.
	Index int
	// Kind is the operation performed.
	Kind memmodel.OpKind
	// Thread is the executing thread (NoThread for crashes).
	Thread memmodel.ThreadID
	// Addr is the accessed location or flushed line base (zero for
	// fences and crashes).
	Addr memmodel.Addr
	// Value is the value loaded or stored, when applicable.
	Value memmodel.Value
	// Store is the store object for store/RMW events.
	Store *Store
	// RF is the store a load or RMW read from.
	RF *Store
	// SubExec is the sub-execution index.
	SubExec int
	// Loc is the interned source label of the operation.
	Loc LocID
	// CV is the executing thread's clock vector immediately after the
	// event, used to compute fix windows (§5.2).
	CV vclock.CV
}

// SubExec is one crash-delimited portion of an execution.
type SubExec struct {
	// Index is the sub-execution's position (0-based).
	Index int
	// Stores holds the committed stores in TSO (commit) order.
	Stores []*Store
	// byLoc indexes committed stores per location, in commit order.
	byLoc map[memmodel.Addr][]*Store
	// byThread indexes every issued store per thread; the store with
	// clock c sits at index c-1 (clocks are dense per thread).
	byThread map[memmodel.ThreadID][]*Store
	// threadCV is the CV map of Figure 3, reset at each crash.
	threadCV map[memmodel.ThreadID]vclock.CV
	// seq is the strictly increasing commit counter, reset at crashes.
	seq vclock.Seq
	// events are the indices of this sub-execution's events in the log.
	events []int
}

// reset rewinds the sub-execution for reuse at position idx. Map entries
// are kept with emptied values rather than deleted: an empty store list
// behaves exactly like an absent one (StoresTo, StoreByClock, and
// ThreadCV all treat them identically), and keeping the entries lets the
// backing arrays be reused when the same addresses and threads reappear
// in the next execution.
func (e *SubExec) reset(idx int) {
	e.Index = idx
	e.Stores = e.Stores[:0]
	for k, v := range e.byLoc {
		e.byLoc[k] = v[:0]
	}
	for k, v := range e.byThread {
		e.byThread[k] = v[:0]
	}
	for k := range e.threadCV {
		e.threadCV[k] = vclock.CV{}
	}
	e.seq = 0
	e.events = e.events[:0]
}

// StoresTo returns the committed stores to addr in TSO order.
func (e *SubExec) StoresTo(addr memmodel.Addr) []*Store { return e.byLoc[addr.Word()] }

// StoreByClock returns thread t's store with the given clock, or nil if
// no such store was issued. It resolves interval endpoints back to the
// stores that set them.
func (e *SubExec) StoreByClock(t memmodel.ThreadID, c vclock.Clock) *Store {
	sts := e.byThread[t]
	if c < 1 || int(c) > len(sts) {
		return nil
	}
	return sts[c-1]
}

// ThreadCV returns thread t's current clock vector.
func (e *SubExec) ThreadCV(t memmodel.ThreadID) vclock.CV { return e.threadCV[t] }

// Trace is a recorded execution. It is not safe for concurrent use: the
// simulated machine serializes all operations (simulated threads are
// interleaved by the explorer, not by goroutines).
type Trace struct {
	subs        []*SubExec // active prefix of subPool
	subPool     []*SubExec // every sub-execution ever created, reused by Reset
	events      []*Event
	initials    map[memmodel.Addr]*Store
	nextStoreID int64

	interner *Interner
	stores   arena[Store]
	evs      arena[Event]

	// nextOut/nextSeen are the scratch buffers of Next; see its contract.
	nextOut  []*Store
	nextSeen []memmodel.ThreadID

	// --- bounded-window (streaming) state; see window.go ---

	// window is the retirement window in operations; 0 (the default)
	// keeps the classic unbounded arena pipeline, byte-identical to a
	// trace without windowing. When positive, Store and Event records
	// are allocated from the GC heap instead of the arenas so the
	// retirement sweep can actually release them.
	window int
	// markGen is the current retirement mark generation (see Store.mark).
	markGen uint64
	// eventFloor is the lowest possibly-live logical index in events:
	// everything below it has been retired by a previous sweep.
	eventFloor int
	// eventBase is the logical index of events[0]: sweeps physically
	// drop the retired prefix, so physical index = logical - eventBase.
	// Always 0 in unbounded mode.
	eventBase int
	// lastSweepWork is the index-entry count the most recent sweep
	// walked; the machine stretches its retirement cadence with it.
	lastSweepWork int
	// retired accumulates the per-kind counts of retired events;
	// retiredStores and retirements feed Stats and the explorer's window
	// diagnostics.
	retired       Stats
	retiredStores int
	retirements   int
	// lastPinned counts the stores the current (or most recent) sweep's
	// mark closure pinned; maxPinned is the execution-wide maximum.
	lastPinned int
	maxPinned  int
	// markScratch is FinishRetire's reusable first-per-thread scratch.
	markScratch []memmodel.ThreadID
}

// New returns an empty trace with one (initial) sub-execution.
func New() *Trace {
	t := &Trace{
		initials: make(map[memmodel.Addr]*Store),
		interner: NewInterner(),
	}
	t.pushSubExec()
	return t
}

// Reset rewinds the trace to the empty state for the next execution,
// recycling every Store, Event, and SubExec. The intern table is kept:
// labels retain their IDs across the executions of one reused world.
// All pointers previously handed out (stores, events, Next results)
// become invalid.
func (tr *Trace) Reset() {
	for _, s := range tr.subs {
		s.reset(s.Index)
	}
	tr.subs = tr.subPool[:0]
	tr.events = tr.events[:0]
	clear(tr.initials)
	tr.nextStoreID = 0
	tr.stores.reset()
	tr.evs.reset()
	tr.eventFloor = 0
	tr.eventBase = 0
	tr.lastSweepWork = 0
	tr.retired = Stats{}
	tr.retiredStores = 0
	tr.retirements = 0
	tr.lastPinned = 0
	tr.maxPinned = 0
	tr.pushSubExec()
}

// Intern maps a source label to its dense per-trace LocID.
func (tr *Trace) Intern(loc string) LocID { return tr.interner.Intern(loc) }

// LocString materializes an interned label.
func (tr *Trace) LocString(id LocID) string { return tr.interner.Str(id) }

// Interner exposes the trace's intern table (shared with the machine and
// checker attached to this trace).
func (tr *Trace) Interner() *Interner { return tr.interner }

func (tr *Trace) pushSubExec() {
	n := len(tr.subs)
	if n < len(tr.subPool) {
		tr.subPool[n].reset(n)
		tr.subs = tr.subPool[:n+1]
		return
	}
	tr.subPool = append(tr.subPool, &SubExec{
		Index:    n,
		byLoc:    make(map[memmodel.Addr][]*Store),
		byThread: make(map[memmodel.ThreadID][]*Store),
		threadCV: make(map[memmodel.ThreadID]vclock.CV),
	})
	tr.subs = tr.subPool
}

// Current returns the current (last) sub-execution.
func (tr *Trace) Current() *SubExec { return tr.subs[len(tr.subs)-1] }

// SubExecs returns all sub-executions, oldest first.
func (tr *Trace) SubExecs() []*SubExec { return tr.subs }

// Sub returns the i-th sub-execution.
func (tr *Trace) Sub(i int) *SubExec { return tr.subs[i] }

// NumCrashes returns the number of crash events recorded so far.
func (tr *Trace) NumCrashes() int { return len(tr.subs) - 1 }

// Events returns the full event log.
func (tr *Trace) Events() []*Event { return tr.events }

// Initial returns (creating on first use) the synthetic initial store
// for addr. Initial stores have clock 0, bottom clock vector, and
// sequence 0: they are TSO-before and happen-before everything.
func (tr *Trace) Initial(addr memmodel.Addr) *Store {
	addr = addr.Word()
	if s, ok := tr.initials[addr]; ok {
		return s
	}
	s := tr.newStore()
	s.ID = -int64(len(tr.initials)) - 1
	s.Addr = addr
	s.Thread = memmodel.NoThread
	s.SubExec = 0
	s.Initial = true
	tr.initials[addr] = s
	return s
}

func (tr *Trace) appendEvent(ev *Event) *Event {
	ev.Index = tr.eventBase + len(tr.events)
	ev.SubExec = tr.Current().Index
	tr.events = append(tr.events, ev)
	cur := tr.Current()
	cur.events = append(cur.events, ev.Index)
	return ev
}

// StoreIssue applies the [STORE ISSUE] rule: it increments the thread's
// clock vector, creates the store with that vector and a zero sequence
// number, and logs the event. The returned store is not yet committed.
func (tr *Trace) StoreIssue(t memmodel.ThreadID, addr memmodel.Addr, v memmodel.Value, kind memmodel.OpKind, loc LocID) *Store {
	cur := tr.Current()
	cv := cur.threadCV[t].Inc(t)
	cur.threadCV[t] = cv
	tr.nextStoreID++
	st := tr.newStore()
	st.ID = tr.nextStoreID
	st.Addr = addr.Word()
	st.Value = v
	st.Thread = t
	st.SubExec = cur.Index
	st.Clock = cv.At(t)
	st.CV = cv
	st.Kind = kind
	st.Loc = loc
	cur.byThread[t] = append(cur.byThread[t], st)
	ev := tr.newEvent()
	ev.Kind = kind
	ev.Thread = t
	ev.Addr = st.Addr
	ev.Value = v
	ev.Store = st
	ev.Loc = loc
	ev.CV = cv
	tr.appendEvent(ev)
	return st
}

// StoreCommit applies the [STORE COMMIT] rule: the store leaves its store
// buffer and takes the next TSO sequence number of the current
// sub-execution. Committing a store twice or committing a store issued in
// an earlier sub-execution is a programming error in the simulator.
func (tr *Trace) StoreCommit(st *Store) {
	cur := tr.Current()
	if st.Seq != 0 {
		panic(fmt.Sprintf("trace: store %v committed twice", st))
	}
	if st.SubExec != cur.Index {
		panic(fmt.Sprintf("trace: store %v commits in sub-execution %d", st, cur.Index))
	}
	cur.seq++
	st.Seq = cur.seq
	cur.Stores = append(cur.Stores, st)
	cur.byLoc[st.Addr] = append(cur.byLoc[st.Addr], st)
}

// Load applies the [LOAD] rule: it logs the read and, when the store read
// from belongs to the current sub-execution, merges the store's clock
// vector into the reading thread's vector (establishing happens-before).
// Reads that cross a crash boundary do not merge vectors — recovery
// threads are fresh threads; those reads are instead checked by the
// LOAD-PREV rule of the robustness checker.
func (tr *Trace) Load(t memmodel.ThreadID, addr memmodel.Addr, rf *Store, kind memmodel.OpKind, loc LocID) *Event {
	cur := tr.Current()
	if rf != nil && !rf.Initial && rf.SubExec == cur.Index {
		cur.threadCV[t] = cur.threadCV[t].Join(rf.CV)
	}
	var v memmodel.Value
	if rf != nil {
		v = rf.Value
	}
	ev := tr.newEvent()
	ev.Kind = kind
	ev.Thread = t
	ev.Addr = addr.Word()
	ev.Value = v
	ev.RF = rf
	ev.Loc = loc
	ev.CV = cur.threadCV[t]
	return tr.appendEvent(ev)
}

// Fence logs a fence, flush, or flush-opt event.
func (tr *Trace) Fence(t memmodel.ThreadID, kind memmodel.OpKind, addr memmodel.Addr, loc LocID) *Event {
	ev := tr.newEvent()
	ev.Kind = kind
	ev.Thread = t
	ev.Addr = addr
	ev.Loc = loc
	ev.CV = tr.Current().threadCV[t]
	return tr.appendEvent(ev)
}

// Crash applies the [CRASH] rule: it logs the crash event and begins a
// new sub-execution with a fresh CV map and sequence counter.
func (tr *Trace) Crash() {
	ev := tr.newEvent()
	ev.Kind = memmodel.OpCrash
	ev.Thread = memmodel.NoThread
	tr.appendEvent(ev)
	tr.pushSubExec()
}

// TraceMark is a resumable position in a trace, captured by Mark and
// restored by Rewind. A mark is only meaningful at a crash boundary:
// immediately after Crash the current sub-execution is empty, so the
// mark cleanly separates a committed prefix from the suffix a later
// Rewind discards.
type TraceMark struct {
	subs        int
	events      int
	initials    int
	nextStoreID int64
	stores      arenaMark
	evs         arenaMark
}

// Mark captures the trace's position for a later Rewind. Call it only
// immediately after Crash (see TraceMark). Marks are an arena-position
// mechanism and are incompatible with bounded-window mode, whose
// retirement sweep invalidates positions behind the frontier; the
// explorer forces snapshots off under a window, so reaching this panic
// indicates a harness bug, not a user error.
func (tr *Trace) Mark() TraceMark {
	if tr.window > 0 {
		panic("trace: Mark is unavailable in bounded-window mode")
	}
	return TraceMark{
		subs:        len(tr.subs),
		events:      len(tr.events),
		initials:    len(tr.initials),
		nextStoreID: tr.nextStoreID,
		stores:      tr.stores.mark(),
		evs:         tr.evs.mark(),
	}
}

// Rewind returns the trace to a previously captured mark, recycling
// every Store, Event, and SubExec recorded since. Pointers handed out
// after the mark was taken become invalid; pointers from before it stay
// valid (the prefix is untouched). The intern table is kept, as with
// Reset.
func (tr *Trace) Rewind(m TraceMark) {
	if tr.window > 0 {
		panic("trace: Rewind is unavailable in bounded-window mode")
	}
	for i := m.subs; i < len(tr.subs); i++ {
		tr.subs[i].reset(i)
	}
	tr.subs = tr.subPool[:m.subs]
	// The current-at-mark sub-execution was empty when the mark was
	// taken (marks sit at crash boundaries); anything it accumulated
	// since belongs to the discarded suffix.
	tr.subs[m.subs-1].reset(m.subs - 1)
	tr.events = tr.events[:m.events]
	for a, s := range tr.initials {
		// Initial stores are numbered -1, -2, ... in creation order, so
		// the ones created after the mark are exactly those below
		// -m.initials.
		if s.ID < -int64(m.initials) {
			delete(tr.initials, a)
		}
	}
	tr.nextStoreID = m.nextStoreID
	tr.stores.rewind(m.stores)
	tr.evs.rewind(m.evs)
}

// CommittedFingerprint hashes everything about the trace's committed
// stores that downstream consumers (Next, StoreByClock, the checker's
// LOAD-PREV scan) can observe: per sub-execution, the committed stores
// in TSO order with their identity, location, value, issuing thread,
// clock, and sequence number. Two traces with equal fingerprints drive
// those consumers identically. The explorer uses this as one component
// of its partial-order-reduction key.
func (tr *Trace) CommittedFingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(uint64(len(tr.subs)))
	for _, sub := range tr.subs {
		mix(uint64(len(sub.Stores)))
		for _, s := range sub.Stores {
			mix(uint64(s.ID))
			mix(uint64(s.Addr))
			mix(uint64(s.Value))
			mix(uint64(int64(s.Thread)))
			mix(uint64(s.Clock))
			mix(uint64(s.Seq))
		}
	}
	return h
}

// GetExec returns the sub-execution containing the store (getexec in the
// paper's Figure 10).
func (tr *Trace) GetExec(st *Store) *SubExec { return tr.subs[st.SubExec] }

// Next implements next(st, e) from Figure 10: the smallest set of stores
// containing (1) the first store to st's location in each thread that is
// TSO ordered after st within getexec(st), and (2) the first store to the
// location in each thread of every sub-execution after getexec(st) and
// before the sub-execution with index ecur.
//
// Only committed stores participate: a store still sitting in a store
// buffer at the crash never reached the cache, cannot have persisted, and
// therefore constrains nothing.
//
// The returned slice is a trace-owned scratch buffer, valid only until
// the next Next call on the same trace.
func (tr *Trace) Next(st *Store, ecur int) []*Store {
	tr.nextOut = tr.nextOut[:0]
	start := st.SubExec + 1
	if st.Initial {
		// The initial store precedes all stores of sub-execution 0.
		tr.firstPerThread(tr.subs[st.SubExec].byLoc[st.Addr], 0)
	} else {
		tr.firstPerThread(tr.subs[st.SubExec].byLoc[st.Addr], st.Seq)
	}
	for i := start; i < ecur && i < len(tr.subs); i++ {
		tr.firstPerThread(tr.subs[i].byLoc[st.Addr], 0)
	}
	return tr.nextOut
}

// firstPerThread appends to nextOut the first store per thread with
// Seq > after. Each call starts with a fresh per-thread seen set; the
// thread count is tiny, so a linear scan beats a map.
func (tr *Trace) firstPerThread(stores []*Store, after vclock.Seq) {
	tr.nextSeen = tr.nextSeen[:0]
	for _, s := range stores {
		if s.Seq <= after {
			continue
		}
		dup := false
		for _, t := range tr.nextSeen {
			if t == s.Thread {
				dup = true
				break
			}
		}
		if !dup {
			tr.nextSeen = append(tr.nextSeen, s.Thread)
			tr.nextOut = append(tr.nextOut, s)
		}
	}
}

// SubEvents returns all events of sub-execution e in execution order.
func (tr *Trace) SubEvents(e int) []*Event {
	out := make([]*Event, 0, len(tr.subs[e].events))
	for _, idx := range tr.subs[e].events {
		out = append(out, tr.events[idx-tr.eventBase])
	}
	return out
}

// EventsOf returns the events of sub-execution e executed by thread t, in
// program order. It is used to compute fix windows.
func (tr *Trace) EventsOf(e int, t memmodel.ThreadID) []*Event {
	var out []*Event
	for _, idx := range tr.subs[e].events {
		ev := tr.events[idx-tr.eventBase]
		if ev.Thread == t {
			out = append(out, ev)
		}
	}
	return out
}
