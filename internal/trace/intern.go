package trace

// LocID is an interned source-location label. Events, violation keys,
// and fix windows compare locations by LocID; the string is materialized
// only when a report is rendered. IDs are dense and private to one
// Interner (one exploration world): the same label may receive different
// IDs in different worlds, so cross-world identity must go through the
// string form.
type LocID int32

// NoLoc is the LocID of the empty label.
const NoLoc LocID = 0

// Interner maps source-location labels to dense LocIDs and back. The
// zero value is not ready for use; it is created by trace.New and shared
// by everything attached to that trace. An Interner survives Trace.Reset
// so labels keep their IDs across the executions of one reused world —
// nothing observable depends on the numeric values, only on within-world
// consistency.
type Interner struct {
	ids  map[string]LocID
	strs []string
}

// NewInterner returns an interner holding only the empty label (NoLoc).
func NewInterner() *Interner {
	return &Interner{
		ids:  map[string]LocID{"": NoLoc},
		strs: []string{""},
	}
}

// Intern returns the LocID for s, assigning the next dense ID on first
// sight. It never allocates for labels already seen.
func (in *Interner) Intern(s string) LocID {
	if id, ok := in.ids[s]; ok {
		return id
	}
	id := LocID(len(in.strs))
	in.ids[s] = id
	in.strs = append(in.strs, s)
	return id
}

// Str returns the label for id. NoLoc maps to "".
func (in *Interner) Str(id LocID) string { return in.strs[id] }

// Len returns the number of distinct labels interned (including "").
func (in *Interner) Len() int { return len(in.strs) }
