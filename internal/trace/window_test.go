package trace

import (
	"strings"
	"testing"

	"repro/internal/memmodel"
)

// retire runs one full retirement cycle marking the newest committed
// store per word as a root — the minimal machine contract (the real
// backends additionally pin store buffers and live crash-image epochs).
func retire(tr *Trace) {
	tr.BeginRetire()
	newest := map[memmodel.Addr]*Store{}
	for _, sub := range tr.SubExecs() {
		for _, s := range sub.Stores {
			newest[s.Addr] = s
		}
	}
	for _, s := range newest {
		tr.MarkRetireRoot(s)
	}
	tr.FinishRetire()
}

// TestWindowRetirementCompactsEventLog: after a sweep, the physical
// event log holds only the window tail, logical indices keep counting
// from the execution start, and SubEvents/EventsOf resolve retained
// events through the compacted log.
func TestWindowRetirementCompactsEventLog(t *testing.T) {
	tr := New()
	tr.SetWindow(4)
	const n = 32
	var last *Store
	for i := 0; i < n; i++ {
		last = issueCommit(tr, 0, memmodel.Addr(0x1000+8*(i%3)), memmodel.Value(i), "s")
	}
	retire(tr)

	if got := len(tr.Events()); got != 4 {
		t.Fatalf("physical event log holds %d entries, want window 4", got)
	}
	rs := tr.Retired()
	if rs.Retirements != 1 || rs.RetainedEvents != 4 || rs.RetiredEvents != n-4 {
		t.Fatalf("Retired() = %+v", rs)
	}
	if tr.LastSweepWork() == 0 {
		t.Fatal("LastSweepWork() = 0 after a sweep that dropped events")
	}

	// Logical indices survive compaction: the last event keeps index n-1
	// and is still reachable through the per-sub index lists.
	evs := tr.SubEvents(0)
	if len(evs) == 0 || evs[len(evs)-1].Index != n-1 {
		t.Fatalf("SubEvents tail index = %v, want %d", evs[len(evs)-1].Index, n-1)
	}
	byThread := tr.EventsOf(0, 0)
	if len(byThread) != 4 {
		t.Fatalf("EventsOf returned %d retained events, want 4", len(byThread))
	}

	// New events appended after the sweep continue the logical numbering.
	tr.Load(0, last.Addr, last, memmodel.OpLoad, tr.Intern("r"))
	evs = tr.SubEvents(0)
	if evs[len(evs)-1].Index != n {
		t.Fatalf("post-sweep event index = %d, want %d", evs[len(evs)-1].Index, n)
	}
}

// TestWindowStatsCountWholeExecution: Stats on a windowed trace must
// report totals over the whole execution (retired events folded in)
// while splitting retained vs retired.
func TestWindowStatsCountWholeExecution(t *testing.T) {
	tr := New()
	tr.SetWindow(4)
	const n = 20
	for i := 0; i < n; i++ {
		issueCommit(tr, 0, 0x1000, memmodel.Value(i), "s")
	}
	retire(tr)
	s := tr.Stats()
	if s.Events != n || s.Stores != n {
		t.Fatalf("whole-execution counts: %d events / %d stores, want %d/%d", s.Events, s.Stores, n, n)
	}
	if s.RetainedEvents != 4 || s.RetiredEvents != n-4 {
		t.Fatalf("retained/retired split = %d/%d, want 4/%d", s.RetainedEvents, s.RetiredEvents, n-4)
	}
	if !strings.Contains(s.String(), "retired") {
		t.Fatalf("String() lacks the retirement suffix: %q", s.String())
	}
}

// TestWindowDumpSkipsRetiredPrefix: Dump announces the retired prefix
// and lists only the retained tail, with original logical indices.
func TestWindowDumpSkipsRetiredPrefix(t *testing.T) {
	tr := New()
	tr.SetWindow(4)
	for i := 0; i < 12; i++ {
		issueCommit(tr, 0, 0x1000, memmodel.Value(i), "s")
	}
	retire(tr)
	var b strings.Builder
	tr.Dump(&b)
	out := b.String()
	if !strings.Contains(out, "8 events retired (window 4)") {
		t.Fatalf("dump lacks retirement banner:\n%s", out)
	}
	if !strings.Contains(out, "   11  t0") || strings.Contains(out, "    0  t0") {
		t.Fatalf("dump should list only the tail with logical indices:\n%s", out)
	}
}

// TestWindowPinsCVClosure: a pinned store keeps its clock-vector
// closure resolvable — StoreByClock on the components of a retained
// store's CV must never return an unlinked entry.
func TestWindowPinsCVClosure(t *testing.T) {
	tr := New()
	tr.SetWindow(2)
	a := issueCommit(tr, 0, 0x1000, 1, "a")
	// Thread 1 reads a, so its next store's CV includes thread 0's clock.
	tr.Load(1, 0x1000, a, memmodel.OpLoad, tr.Intern("r=a"))
	b := issueCommit(tr, 1, 0x2000, 2, "b")
	for i := 0; i < 16; i++ {
		issueCommit(tr, 0, 0x3000, memmodel.Value(i), "pad")
	}
	tr.BeginRetire()
	tr.MarkRetireRoot(b) // pins a transitively through b's CV
	tr.FinishRetire()

	sub := tr.Current()
	var missing bool
	// Resolve b's CV components the way the checker's LOAD-PREV bounds
	// do; each must still be present.
	if got := sub.StoreByClock(0, a.Clock); got != a {
		missing = true
	}
	if got := sub.StoreByClock(1, b.Clock); got != b {
		missing = true
	}
	if missing {
		t.Fatal("CV closure of a pinned store was swept")
	}
}

// TestUnboundedTraceNeverRetires: with window 0 the retirement API is
// inert and Stats/Dump render exactly as the classic pipeline.
func TestUnboundedTraceNeverRetires(t *testing.T) {
	tr := New()
	for i := 0; i < 8; i++ {
		issueCommit(tr, 0, 0x1000, memmodel.Value(i), "s")
	}
	if tr.WindowSize() != 0 {
		t.Fatal("default trace has a window")
	}
	if rs := tr.Retired(); rs != (RetireStats{}) {
		t.Fatalf("unbounded Retired() = %+v", rs)
	}
	if s := tr.Stats(); s.Retirements != 0 || strings.Contains(s.String(), "retired") {
		t.Fatalf("unbounded Stats carries retirement suffix: %q", s.String())
	}
}
