package trace

// arenaChunk is the number of records per arena chunk. Chunks are never
// freed: a run's arenas grow to the high-water mark of one execution and
// then stop allocating entirely.
const arenaChunk = 256

// arena is a chunked allocator for trace records. alloc returns a
// pointer to a zeroed T; reset recycles every record in O(chunks used)
// while keeping the chunks. Pointers returned before a reset must not be
// retained across it — the checker freezes any store it reports into a
// violation for exactly this reason.
type arena[T any] struct {
	chunks [][]T
	ci     int // index of the chunk currently being filled
	n      int // records used in chunk ci
}

func (a *arena[T]) alloc() *T {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]T, arenaChunk))
	}
	p := &a.chunks[a.ci][a.n]
	a.n++
	if a.n == arenaChunk {
		a.ci++
		a.n = 0
	}
	return p
}

// arenaMark is a position in an arena captured by mark and restored by
// rewind.
type arenaMark struct {
	ci, n int
}

// mark captures the arena's current allocation cursor.
func (a *arena[T]) mark() arenaMark { return arenaMark{ci: a.ci, n: a.n} }

// rewind returns the arena to a previously captured mark, zeroing every
// record allocated since the mark. Zeroing is required: alloc hands out
// records without clearing them, relying on the invariant that
// everything beyond the cursor is zero.
func (a *arena[T]) rewind(m arenaMark) {
	var zero T
	for ci := m.ci; ci <= a.ci && ci < len(a.chunks); ci++ {
		c := a.chunks[ci]
		lo, hi := 0, len(c)
		if ci == m.ci {
			lo = m.n
		}
		if ci == a.ci {
			hi = a.n
		}
		for j := lo; j < hi; j++ {
			c[j] = zero
		}
	}
	a.ci, a.n = m.ci, m.n
}

// reset zeroes the used prefix (so recycled records start out as if
// freshly allocated) and rewinds the arena.
func (a *arena[T]) reset() {
	var zero T
	for i := 0; i < a.ci; i++ {
		c := a.chunks[i]
		for j := range c {
			c[j] = zero
		}
	}
	if a.ci < len(a.chunks) {
		c := a.chunks[a.ci]
		for j := 0; j < a.n; j++ {
			c[j] = zero
		}
	}
	a.ci, a.n = 0, 0
}
