package trace

// arenaChunk is the number of records per arena chunk. Chunks are never
// freed: a run's arenas grow to the high-water mark of one execution and
// then stop allocating entirely.
const arenaChunk = 256

// arena is a chunked allocator for trace records. alloc returns a
// pointer to a zeroed T; reset recycles every record in O(chunks used)
// while keeping the chunks. Pointers returned before a reset must not be
// retained across it — the checker freezes any store it reports into a
// violation for exactly this reason.
type arena[T any] struct {
	chunks [][]T
	ci     int // index of the chunk currently being filled
	n      int // records used in chunk ci
}

func (a *arena[T]) alloc() *T {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]T, arenaChunk))
	}
	p := &a.chunks[a.ci][a.n]
	a.n++
	if a.n == arenaChunk {
		a.ci++
		a.n = 0
	}
	return p
}

// reset zeroes the used prefix (so recycled records start out as if
// freshly allocated) and rewinds the arena.
func (a *arena[T]) reset() {
	var zero T
	for i := 0; i < a.ci; i++ {
		c := a.chunks[i]
		for j := range c {
			c[j] = zero
		}
	}
	if a.ci < len(a.chunks) {
		c := a.chunks[a.ci]
		for j := 0; j < a.n; j++ {
			c[j] = zero
		}
	}
	a.ci, a.n = 0, 0
}
