package trace

import (
	"strings"
	"testing"

	"repro/internal/memmodel"
)

func TestDumpListsEventsAndCrashes(t *testing.T) {
	tr := New()
	st := tr.StoreIssue(0, 0x1000, 7, memmodel.OpStore, tr.Intern("x=7"))
	tr.StoreCommit(st)
	tr.Fence(0, memmodel.OpFlush, memmodel.Addr(0x1000).Line(), tr.Intern("flush x"))
	tr.Crash()
	tr.Load(0, 0x1000, st, memmodel.OpLoad, tr.Intern("r=x"))
	var b strings.Builder
	tr.Dump(&b)
	out := b.String()
	for _, want := range []string{
		"sub-execution e1", "crash C1", "sub-execution e2",
		"store", "clflush", "rf=e1 clk1", "; x=7", "; r=x",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
}

func TestStats(t *testing.T) {
	tr := New()
	st := tr.StoreIssue(0, 0x1000, 1, memmodel.OpStore, tr.Intern("s"))
	tr.StoreCommit(st)
	tr.Fence(0, memmodel.OpFlushOpt, 0x1000, tr.Intern("fo"))
	tr.Fence(0, memmodel.OpSFence, 0, tr.Intern("sf"))
	rmw := tr.StoreIssue(0, 0x1000, 2, memmodel.OpCAS, tr.Intern("cas"))
	tr.StoreCommit(rmw)
	tr.Crash()
	tr.Load(0, 0x1000, rmw, memmodel.OpLoad, tr.Intern("r"))
	s := tr.Stats()
	if s.Stores != 1 || s.Loads != 1 || s.Flushes != 1 || s.Fences != 1 || s.RMWs != 1 || s.Crashes != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if !strings.Contains(s.String(), "1 stores") {
		t.Fatalf("String() = %q", s.String())
	}
}
