// Bounded-window (streaming) traces: the retirement machinery that lets
// an execution run millions of operations in bounded memory.
//
// The classic pipeline records the whole trace in per-trace arenas and
// consumes it afterwards; nothing is ever released before Reset. Under a
// window, records are GC-heap allocated instead, and every `window`
// operations the machine runs a *retirement*: everything the remaining
// computation can still observe is pinned, and every unpinned record is
// unlinked from the trace's index structures so the garbage collector
// can reclaim it.
//
// What must stay reachable is exactly the closure of the live roots
// under clock-vector resolution:
//
//   - the persistency model's candidate sources (crash-image epochs that
//     can still produce read candidates, the volatile memory map, store
//     buffers) — marked by the machine (persist.Retirable),
//   - the checker's deferred checksum-region reads — marked through the
//     extra-roots hook,
//   - initial stores and the per-thread clock-vector frontier,
//   - and, transitively, every store a pinned store's clock vector
//     resolves to: the checker's LOAD-PREV lower bounds call
//     SubExec.StoreByClock on the components of a read-from store's CV,
//     so a pinned store pins its CV closure (MarkRetireRoot).
//
// The sweep then rewrites the index structures so that every future
// query — LoadCandidates epoch walks, Next/firstPerThread, StoreByClock,
// SubEvents — returns exactly what it would have returned on the
// unbounded trace. Structures whose *positions* are meaningful (the
// event log, byThread clock indexing, epoch store lists) keep their
// positions and take nil holes; structures that are scanned in order
// with no positional meaning (byLoc, SubExec.Stores, SubExec.events)
// are compacted. The per-list byLoc rule — keep a store if it is its
// thread's first appearance in the list or its Seq is at least the
// oldest pinned Seq in the list — preserves firstPerThread's output for
// every `after` value a future Next call can present (0, or the Seq of
// a pinned store to the same word).
//
// Retirement is O(live entries) per sweep and runs every `window` ops,
// so the amortized cost is a constant per operation; the verdict stream
// is proven identical to unbounded mode by the windowed-equivalence
// property suite (window_test.go) and guarded by the explorer, which
// forces snapshots, DPOR, and the post-crash state cache off (their
// keys hash retired history).
package trace

import (
	"unsafe"

	"repro/internal/memmodel"
	"repro/internal/vclock"
)

// storeBytes/eventBytes size the released-memory estimates in Stats.
const (
	storeBytes = int64(unsafe.Sizeof(Store{}))
	eventBytes = int64(unsafe.Sizeof(Event{}))
)

// SetWindow switches the trace into bounded-window mode (n > 0) or back
// to the unbounded arena pipeline (n == 0). Call it on a fresh or Reset
// trace only: mixing arena-allocated and heap-allocated records within
// one execution would let the sweep unlink records the arena still owns.
func (tr *Trace) SetWindow(n int) {
	if n < 0 {
		n = 0
	}
	tr.window = n
}

// WindowSize returns the configured retirement window (0: unbounded).
func (tr *Trace) WindowSize() int { return tr.window }

// newStore allocates one Store record: from the arena in unbounded mode
// (recycled wholesale by Reset), from the GC heap under a window (so
// retirement can release it individually).
func (tr *Trace) newStore() *Store {
	if tr.window > 0 {
		return &Store{}
	}
	return tr.stores.alloc()
}

// newEvent allocates one Event record; see newStore.
func (tr *Trace) newEvent() *Event {
	if tr.window > 0 {
		return &Event{}
	}
	return tr.evs.alloc()
}

// BeginRetire opens a retirement: it advances the mark generation so
// every store is initially unpinned. The machine then marks its roots
// (MarkRetireRoot), and FinishRetire sweeps.
func (tr *Trace) BeginRetire() {
	tr.markGen++
	tr.lastPinned = 0
}

// MarkRetireRoot pins st and, transitively, every store its clock
// vector resolves to in st's sub-execution. The closure is what keeps
// SubExec.StoreByClock answers stable: the checker resolves the CV
// components of any read-from store back to the stores that set them
// (the LOAD-PREV lower bounds), so those must survive as long as st can
// still be read. Marking is memoized per generation — a store's own CV
// component resolves back to itself, so the recursion terminates.
func (tr *Trace) MarkRetireRoot(st *Store) {
	if st == nil || st.mark == tr.markGen {
		return
	}
	st.mark = tr.markGen
	tr.lastPinned++
	if st.Initial || st.CV.IsBottom() {
		return
	}
	sub := tr.subs[st.SubExec]
	st.CV.ForEach(func(t memmodel.ThreadID, c vclock.Clock) {
		if p := sub.StoreByClock(t, c); p != nil {
			tr.MarkRetireRoot(p)
		}
	})
}

// FinishRetire pins the structural roots the trace itself owns (initial
// stores and each sub-execution's thread clock-vector frontier), then
// sweeps every index structure, unlinking records no root can reach.
func (tr *Trace) FinishRetire() {
	gen := tr.markGen
	for _, s := range tr.initials {
		tr.MarkRetireRoot(s)
	}
	// The per-thread CV frontier resolves through StoreByClock exactly
	// like a store's vector does (Trace.Load joins read-from vectors into
	// it), so its closure is pinned for every sub-execution — older subs'
	// frontiers are frozen and were pinned by the previous sweep, which
	// is what keeps this walk from ever resolving to an unlinked entry.
	for _, sub := range tr.subs {
		sub := sub
		for _, cv := range sub.threadCV {
			cv.ForEach(func(t memmodel.ThreadID, c vclock.Clock) {
				if p := sub.StoreByClock(t, c); p != nil {
					tr.MarkRetireRoot(p)
				}
			})
		}
	}

	// Sweep-work accounting: the entries this sweep walks. The machine
	// uses it to stretch the retirement cadence deterministically when
	// the live set outgrows the window, keeping the amortized sweep cost
	// per operation constant instead of quadratic (see pmem.World).
	work := 0

	// Event log: keep the last window entries. Indices are logical —
	// eventBase is the logical index of tr.events[0] — so the retired
	// prefix is physically dropped, not just nil-holed, and the log's
	// footprint stays at window entries.
	cutoff := tr.eventBase + len(tr.events) - tr.window
	if cutoff > tr.eventFloor {
		for i := tr.eventFloor - tr.eventBase; i < cutoff-tr.eventBase; i++ {
			if ev := tr.events[i]; ev != nil {
				tr.retired.countEvent(ev)
			}
		}
		tr.eventFloor = cutoff
	}
	if drop := tr.eventFloor - tr.eventBase; drop > 0 {
		n := copy(tr.events, tr.events[drop:])
		clear(tr.events[n:])
		tr.events = tr.events[:n]
		tr.eventBase = tr.eventFloor
		work += n + drop
	}

	for _, sub := range tr.subs {
		// Per-sub event index lists: drop retired indices, so SubEvents
		// and EventsOf never meet a hole and stay O(live).
		work += len(sub.events)
		evs := sub.events[:0]
		for _, idx := range sub.events {
			if idx >= tr.eventFloor {
				evs = append(evs, idx)
			}
		}
		sub.events = evs

		// byThread is positional (clock c lives at index c-1): unpinned
		// entries become nil holes. The pin closure guarantees no future
		// StoreByClock query lands on one.
		for _, sts := range sub.byThread {
			work += len(sts)
			for i, s := range sts {
				if s != nil && s.mark != gen {
					sts[i] = nil
					tr.retiredStores++
				}
			}
		}

		// Committed stores in TSO order: scanned, never indexed —
		// compact to the pinned ones. The newest committed store per
		// word is always pinned (it is its line's newest epoch entry),
		// so final-heap reconstructions keep their full address set.
		work += len(sub.Stores)
		sts := sub.Stores[:0]
		for _, s := range sub.Stores {
			if s.mark == gen {
				sts = append(sts, s)
			}
		}
		sub.Stores = sts

		// byLoc feeds firstPerThread; see the package comment for why
		// first-of-thread ∪ Seq ≥ oldest-pinned-Seq preserves its output.
		for a, list := range sub.byLoc {
			work += len(list)
			minPinned := vclock.Seq(int64(^uint64(0) >> 1))
			pinnedAny := false
			for _, s := range list {
				if s.mark == gen && s.Seq > 0 && s.Seq < minPinned {
					minPinned = s.Seq
					pinnedAny = true
				}
			}
			seen := tr.markScratch[:0]
			out := list[:0]
			for _, s := range list {
				first := true
				for _, t := range seen {
					if t == s.Thread {
						first = false
						break
					}
				}
				if first {
					seen = append(seen, s.Thread)
				}
				if first || (pinnedAny && s.Seq >= minPinned) {
					out = append(out, s)
				}
			}
			tr.markScratch = seen[:0]
			sub.byLoc[a] = out
		}
	}
	tr.lastSweepWork = work
	tr.retirements++
	if tr.lastPinned > tr.maxPinned {
		tr.maxPinned = tr.lastPinned
	}
}

// LastSweepWork reports how many index entries the most recent sweep
// walked — a deterministic proxy for the live-set size that the machine
// folds into its retirement cadence.
func (tr *Trace) LastSweepWork() int { return tr.lastSweepWork }

// RetireStats summarizes what windowed retirement has released so far
// in the current execution; all zeros in unbounded mode.
type RetireStats struct {
	// Retirements is the number of completed sweeps.
	Retirements int
	// RetiredEvents and RetiredStores count unlinked records;
	// ReleasedBytes estimates the record memory they gave back.
	RetiredEvents, RetiredStores int
	ReleasedBytes                int64
	// RetainedEvents counts the live (non-hole) entries of the event
	// log — the window occupancy a progress display wants.
	RetainedEvents int
	// PinnedRoots is the pin-closure size of the most recent sweep (the
	// stores marking kept live); MaxPinnedRoots is the largest closure
	// any sweep of this execution pinned. Both are deterministic — the
	// closure depends only on the execution's trace, never on timing.
	PinnedRoots    int
	MaxPinnedRoots int
}

// Retired reports the retirement totals of the current execution.
func (tr *Trace) Retired() RetireStats {
	if tr.window == 0 {
		return RetireStats{}
	}
	return RetireStats{
		Retirements:    tr.retirements,
		RetiredEvents:  tr.retired.Events,
		RetiredStores:  tr.retiredStores,
		ReleasedBytes:  int64(tr.retired.Events)*eventBytes + int64(tr.retiredStores)*storeBytes,
		RetainedEvents: tr.eventBase + len(tr.events) - tr.eventFloor,
		PinnedRoots:    tr.lastPinned,
		MaxPinnedRoots: tr.maxPinned,
	}
}

// countEvent folds one retired event into the per-kind retired totals.
func (s *Stats) countEvent(ev *Event) {
	s.Events++
	switch ev.Kind {
	case memmodel.OpStore:
		s.Stores++
	case memmodel.OpLoad:
		s.Loads++
	case memmodel.OpFlush, memmodel.OpFlushOpt:
		s.Flushes++
	case memmodel.OpSFence, memmodel.OpMFence:
		s.Fences++
	case memmodel.OpCAS, memmodel.OpFAA:
		s.RMWs++
	case memmodel.OpCrash:
		s.Crashes++
	}
}
