package interp

import (
	"strings"
	"testing"

	"repro/internal/explore"
	"repro/internal/lang"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

func compile(t *testing.T, name, src string) *Program {
	t.Helper()
	parsed, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return New(name, parsed)
}

// runDirect executes the program once with no crash injection, returning
// the world (for register-free observations via memory).
func runDirect(t *testing.T, p *Program) *pmem.World {
	t.Helper()
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	for i, phase := range p.Phases() {
		w.SetCrashTarget(-1)
		w.RunPhase(phase)
		if i < len(p.Phases())-1 {
			w.Crash()
		}
	}
	return w
}

func TestArithmeticAndControlFlow(t *testing.T) {
	p := compile(t, "arith", `
phase {
  thread 0 {
    let a = 2 + 3 * 4;       // 14
    let b = a % 5;           // 4
    x = b;
    if (b == 4) { y = 10; } else { y = 20; }
    repeat 5 { faa(z, 2); }
  }
}`)
	w := runDirect(t, p)
	th := w.Thread(9)
	if got := th.Load(p.AddrOf("x"), "rx"); got != 4 {
		t.Fatalf("x = %d, want 4", got)
	}
	if got := th.Load(p.AddrOf("y"), "ry"); got != 10 {
		t.Fatalf("y = %d, want 10", got)
	}
	if got := th.Load(p.AddrOf("z"), "rz"); got != 10 {
		t.Fatalf("z = %d, want 10 (5 × faa 2)", got)
	}
}

func TestCASSemanticsInLanguage(t *testing.T) {
	p := compile(t, "cas", `
phase {
  thread 0 {
    x = 5;
    let o1 = cas(x, 5, 6);   // succeeds, o1 = 5
    let o2 = cas(x, 5, 7);   // fails, o2 = 6
    y = o1;
    z = o2;
  }
}`)
	w := runDirect(t, p)
	th := w.Thread(9)
	if got := th.Load(p.AddrOf("x"), "rx"); got != 6 {
		t.Fatalf("x = %d, want 6", got)
	}
	if got := th.Load(p.AddrOf("y"), "ry"); got != 5 {
		t.Fatalf("y = %d, want 5", got)
	}
	if got := th.Load(p.AddrOf("z"), "rz"); got != 6 {
		t.Fatalf("z = %d, want 6", got)
	}
}

func TestShortCircuitSkipsSideEffects(t *testing.T) {
	p := compile(t, "shortcircuit", `
phase {
  thread 0 {
    let a = 0 && faa(x, 1);  // right side must not run
    let b = 1 || faa(y, 1);  // right side must not run
    z = a + b;
  }
}`)
	w := runDirect(t, p)
	th := w.Thread(9)
	if got := th.Load(p.AddrOf("x"), "rx"); got != 0 {
		t.Fatalf("x = %d, want 0 (short-circuited)", got)
	}
	if got := th.Load(p.AddrOf("y"), "ry"); got != 0 {
		t.Fatalf("y = %d, want 0 (short-circuited)", got)
	}
	if got := th.Load(p.AddrOf("z"), "rz"); got != 1 {
		t.Fatalf("z = %d, want 1", got)
	}
}

func TestAssertFailureRecorded(t *testing.T) {
	p := compile(t, "assert", `
phase {
  thread 0 {
    x = 1;
    let r = load(x);
    assert(r == 2);
  }
}`)
	w := runDirect(t, p)
	if n := len(w.AssertFailures()); n != 1 {
		t.Fatalf("assert failures = %d, want 1", n)
	}
	if !strings.Contains(w.AssertFailures()[0], "assert((r == 2))") {
		t.Fatalf("failure loc = %q", w.AssertFailures()[0])
	}
}

// The paper's Figure 2 written in the Figure 9 language, explored with
// model checking: PSan must find the missing-flush bug.
func TestFigure2ProgramModelCheck(t *testing.T) {
	p := compile(t, "fig2", `
phase {
  thread 0 {
    x = 1;
    y = 1;
    x = 2;
    y = 2;
  }
}
phase {
  thread 0 {
    let r1 = load(x);
    let r2 = load(y);
  }
}`)
	res := explore.Run(p, explore.Options{Mode: explore.ModelCheck, Executions: 10000})
	if len(res.Violations) == 0 {
		t.Fatalf("no violations found: %s", res)
	}
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v.MissingFlush.Loc, "x = 2") || strings.Contains(v.MissingFlush.Loc, "y = 2") {
			found = true
		}
	}
	if !found {
		t.Fatalf("wrong bugs: %v", res.ViolationKeys())
	}
}

// Figure 2 with the commit-store discipline (flush+sfence before each
// overwrite) is robust under full model checking.
func TestRobustProgramModelCheck(t *testing.T) {
	p := compile(t, "fig2-fixed", `
phase {
  thread 0 {
    x = 1;
    flushopt x;
    sfence;
    y = 1;
    flushopt y;
    sfence;
    x = 2;
    flushopt x;
    sfence;
    y = 2;
    flushopt y;
    sfence;
  }
}
phase {
  thread 0 {
    let r1 = load(x);
    let r2 = load(y);
  }
}`)
	res := explore.Run(p, explore.Options{Mode: explore.ModelCheck, Executions: 50000})
	if len(res.Violations) != 0 {
		t.Fatalf("robust program flagged: %v", res.ViolationKeys())
	}
	if res.Executions >= 50000 {
		t.Fatalf("model checking did not terminate: %d executions", res.Executions)
	}
}

// sameline places locations on one cache line, which makes the Figure 2
// pattern robust without any flushes (same-line stores persist in TSO
// order).
func TestSamelineMakesFigure2Robust(t *testing.T) {
	p := compile(t, "fig2-sameline", `
sameline x y;
phase {
  thread 0 {
    x = 1;
    y = 1;
    x = 2;
    y = 2;
  }
}
phase {
  thread 0 {
    let r1 = load(x);
    let r2 = load(y);
  }
}`)
	if memmodel.SameLine(p.AddrOf("x"), p.AddrOf("y")) != true {
		t.Fatal("sameline layout not applied")
	}
	res := explore.Run(p, explore.Options{Mode: explore.ModelCheck, Executions: 10000})
	if len(res.Violations) != 0 {
		t.Fatalf("sameline program flagged: %v", res.ViolationKeys())
	}
}

// Figure 8's three-phase program: model checking must find the multi-
// crash violation.
func TestFigure8ProgramModelCheck(t *testing.T) {
	p := compile(t, "fig8", `
phase {
  thread 0 {
    x = 1;
    y = 1;
  }
}
phase {
  thread 0 {
    y = 2;
    let r = load(x);
  }
}
phase {
  thread 0 {
    let s = load(y);
  }
}`)
	res := explore.Run(p, explore.Options{Mode: explore.ModelCheck, Executions: 10000})
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v.MissingFlush.Loc, "x = 1") && strings.Contains(v.Persisted.Loc, "y = 1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("Figure 8 bug not found: %v", res.ViolationKeys())
	}
}

// Figure 7 as a two-thread program under random exploration.
func TestFigure7ProgramRandom(t *testing.T) {
	p := compile(t, "fig7", `
phase {
  thread 0 {
    x = 1;
    flush x;
  }
  thread 1 {
    let r1 = load(x);
    y = r1;
    flush y;
  }
}
phase {
  thread 0 {
    let r2 = load(x);
    let r3 = load(y);
  }
}`)
	res := explore.Run(p, explore.Options{Mode: explore.Random, Executions: 800, Seed: 11})
	found := false
	for _, v := range res.Violations {
		if strings.Contains(v.MissingFlush.Loc, "x = 1") && strings.Contains(v.Persisted.Loc, "y = r1") {
			found = true
		}
	}
	if !found {
		t.Fatalf("Figure 7 bug not found: %v", res.ViolationKeys())
	}
}

func TestMultiThreadedPhaseRunsUnderScheduler(t *testing.T) {
	p := compile(t, "mt", `
phase {
  thread 0 { repeat 10 { faa(a, 1); } }
  thread 1 { repeat 10 { faa(a, 1); } }
}`)
	w := runDirect(t, p)
	th := w.Thread(9)
	// faa is atomic: twenty increments land regardless of interleaving.
	if got := th.Load(p.AddrOf("a"), "ra"); got != 20 {
		t.Fatalf("a = %d, want 20", got)
	}
}

// A spin lock built from while+cas across two scheduled threads: both
// critical sections must execute (mutual exclusion is the scheduler's
// and CAS's job; this exercises while in a genuinely concurrent phase).
func TestWhileSpinLockAcrossThreads(t *testing.T) {
	p := compile(t, "spinlock", `
phase {
  thread 0 {
    while (cas(lock, 0, 1) != 0) { }
    let v = load(shared);
    shared = v + 1;
    lock = 0;
  }
  thread 1 {
    while (cas(lock, 0, 1) != 0) { }
    let v = load(shared);
    shared = v + 1;
    lock = 0;
  }
}`)
	w := runDirect(t, p)
	th := w.Thread(9)
	if got := th.Load(p.AddrOf("shared"), "r"); got != 2 {
		t.Fatalf("shared = %d, want 2 (both critical sections ran)", got)
	}
	if got := th.Load(p.AddrOf("lock"), "l"); got != 0 {
		t.Fatalf("lock = %d, want 0 (released)", got)
	}
}

// while loops whose condition reads memory stay within the op budget:
// a loop that can never exit aborts instead of hanging.
func TestWhileRunawayAborts(t *testing.T) {
	p := compile(t, "runaway", `
phase {
  thread 0 {
    while (load(x) == 0) { }
  }
}`)
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1, OpLimit: 5000})
	defer func() {
		if _, ok := recover().(pmem.AbortSignal); !ok {
			t.Fatal("expected AbortSignal")
		}
	}()
	p.Phases()[0](w)
}
