// Package interp executes programs in the paper's Figure 9 language
// (parsed by internal/lang) on the simulated Px86 machine, adapting them
// to the exploration harness's Program interface.
//
// Each program location is laid out on its own cache line unless a
// `sameline` directive groups locations onto one line — the layout
// control needed to demonstrate cache-line colocation fixes (§5.2) and
// alignment bugs like FAST_FAIR's (#9 in Table 2).
package interp

import (
	"fmt"

	"repro/internal/lang"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

// InternalError is the panic value raised when the interpreter meets an
// AST shape it has no case for — an interpreter bug (the parser and
// checker only produce known shapes). Typed so the exploration layer's
// panic isolation classifies the quarantined record instead of dying.
type InternalError struct{ Detail string }

// Error implements error.
func (e InternalError) Error() string { return "interp: " + e.Detail }

// InterpInternal marks the type for the explorer's panic classifier,
// which cannot import this package (our tests run through explore).
func (e InternalError) InterpInternal() {}

// Program is a compiled Figure 9 program ready for exploration.
type Program struct {
	name   string
	src    *lang.Program
	layout map[string]memmodel.Addr
	// labels precomputes the source-location string of every memory
	// operation in the program, so the per-operation hot path does no
	// formatting. Read-only after New — Phases may run on many
	// goroutines at once.
	labels map[any]string
}

// New lays out the program's locations and returns an executable
// Program.
func New(name string, src *lang.Program) *Program {
	p := &Program{name: name, src: src, layout: make(map[string]memmodel.Addr), labels: make(map[any]string)}
	// Place sameline groups first: consecutive words of one line.
	base := memmodel.Addr(0x10000)
	for _, group := range src.SameLine {
		for i, loc := range group {
			p.layout[loc] = base + memmodel.Addr(i*memmodel.WordSize)
		}
		base += memmodel.CacheLineSize
	}
	for _, loc := range src.Locations() {
		if _, done := p.layout[loc]; !done {
			p.layout[loc] = base
			base += memmodel.CacheLineSize
		}
	}
	for _, ph := range src.Phases {
		for _, td := range ph.Threads {
			p.walkStmts(td.Body)
		}
	}
	return p
}

// walkStmts precomputes operation labels for every statement and
// expression reachable from ss.
func (p *Program) walkStmts(ss []lang.Stmt) {
	for _, s := range ss {
		switch x := s.(type) {
		case *lang.LetStmt:
			p.walkExpr(x.Expr)
		case *lang.StoreStmt:
			p.label(x, x.Pos)
			p.walkExpr(x.Expr)
		case *lang.FlushStmt:
			p.label(x, x.Pos)
		case *lang.FenceStmt:
			p.label(x, x.Pos)
		case *lang.IfStmt:
			p.walkExpr(x.Cond)
			p.walkStmts(x.Then)
			p.walkStmts(x.Else)
		case *lang.RepeatStmt:
			p.walkStmts(x.Body)
		case *lang.WhileStmt:
			p.walkExpr(x.Cond)
			p.walkStmts(x.Body)
		case *lang.AssertStmt:
			p.label(x, x.Pos)
			p.walkExpr(x.Expr)
		case *lang.ExprStmt:
			p.walkExpr(x.Expr)
		}
	}
}

func (p *Program) walkExpr(e lang.Expr) {
	switch x := e.(type) {
	case *lang.LoadExpr:
		p.label(x, x.Pos)
	case *lang.CASExpr:
		p.label(x, x.Pos)
		p.walkExpr(x.Expected)
		p.walkExpr(x.New)
	case *lang.FAAExpr:
		p.label(x, x.Pos)
		p.walkExpr(x.Delta)
	case *lang.BinExpr:
		p.walkExpr(x.L)
		p.walkExpr(x.R)
	case *lang.NotExpr:
		p.walkExpr(x.E)
	}
}

func (p *Program) label(n fmt.Stringer, pos lang.Pos) {
	p.labels[n] = fmt.Sprintf("%s @%s", n, pos)
}

// Name implements explore.Program.
func (p *Program) Name() string { return p.name }

// AddrOf returns the simulated address of a program location; it is
// exported so reports can translate addresses back to names.
func (p *Program) AddrOf(loc string) memmodel.Addr { return p.layout[loc] }

// NameOf maps a simulated address back to its program location name, or
// "" when the address belongs to no declared location. The repair loop
// uses it to name the flush target of a suggested fix.
func (p *Program) NameOf(a memmodel.Addr) string {
	for name, addr := range p.layout {
		if addr == a.Word() {
			return name
		}
	}
	return ""
}

// PhasesReentrant implements explore.ReentrantPhases: every phase
// closure builds fresh per-thread interpreter state (register files)
// on entry, so all cross-phase state lives in the world and a later
// phase can be re-entered on a restored snapshot.
func (p *Program) PhasesReentrant() bool { return true }

// Phases implements explore.Program: each phase spawns its threads under
// the cooperative scheduler.
func (p *Program) Phases() []func(*pmem.World) {
	phases := make([]func(*pmem.World), len(p.src.Phases))
	for i, ph := range p.src.Phases {
		ph := ph
		phases[i] = func(w *pmem.World) {
			if len(ph.Threads) == 1 {
				// Single-threaded phases run inline: no scheduler
				// nondeterminism to explore.
				td := ph.Threads[0]
				ex := &threadExec{p: p, th: w.Thread(memmodel.ThreadID(td.ID)), regs: map[string]memmodel.Value{}}
				ex.stmts(td.Body)
				return
			}
			for _, td := range ph.Threads {
				td := td
				w.Spawn(memmodel.ThreadID(td.ID), func(th *pmem.Thread) {
					ex := &threadExec{p: p, th: th, regs: map[string]memmodel.Value{}}
					ex.stmts(td.Body)
				})
			}
			w.RunThreads()
		}
	}
	return phases
}

// threadExec is the per-thread interpreter state: the register file and
// the thread handle.
type threadExec struct {
	p    *Program
	th   *pmem.Thread
	regs map[string]memmodel.Value
}

// loc returns the precomputed label for a node, formatting on the fly
// for nodes inserted after New (repair.Apply patches ASTs in place) —
// without writing the shared map, since phases run concurrently.
func (ex *threadExec) loc(stmtOrExpr fmt.Stringer, pos lang.Pos) string {
	if s, ok := ex.p.labels[stmtOrExpr]; ok {
		return s
	}
	return fmt.Sprintf("%s @%s", stmtOrExpr, pos)
}

func (ex *threadExec) stmts(ss []lang.Stmt) {
	for _, s := range ss {
		ex.stmt(s)
	}
}

func (ex *threadExec) stmt(s lang.Stmt) {
	ex.th.World().CountInterpStep()
	switch x := s.(type) {
	case *lang.LetStmt:
		ex.regs[x.Reg] = ex.eval(x.Expr)
	case *lang.StoreStmt:
		v := ex.eval(x.Expr)
		ex.th.Store(ex.p.layout[x.Loc], v, ex.loc(x, x.Pos))
	case *lang.FlushStmt:
		if x.Opt {
			ex.th.FlushOpt(ex.p.layout[x.Loc], ex.loc(x, x.Pos))
		} else {
			ex.th.Flush(ex.p.layout[x.Loc], ex.loc(x, x.Pos))
		}
	case *lang.FenceStmt:
		if x.Full {
			ex.th.MFence(ex.loc(x, x.Pos))
		} else {
			ex.th.SFence(ex.loc(x, x.Pos))
		}
	case *lang.IfStmt:
		if ex.eval(x.Cond) != 0 {
			ex.stmts(x.Then)
		} else {
			ex.stmts(x.Else)
		}
	case *lang.RepeatStmt:
		for i := 0; i < x.Count; i++ {
			ex.stmts(x.Body)
		}
	case *lang.WhileStmt:
		// The world's per-execution operation budget bounds runaway
		// loops (condition evaluation performs at least one op when it
		// touches memory; pure-register loops are bounded by the
		// explicit iteration guard below).
		for i := 0; ex.eval(x.Cond) != 0; i++ {
			if i > 1<<20 {
				panic(pmem.AbortSignal{Reason: "while loop exceeded iteration bound"})
			}
			ex.stmts(x.Body)
		}
	case *lang.AssertStmt:
		if ex.eval(x.Expr) == 0 {
			ex.th.World().RecordAssertFailure(ex.loc(x, x.Pos))
		}
	case *lang.ExprStmt:
		ex.eval(x.Expr)
	default:
		panic(InternalError{Detail: fmt.Sprintf("unknown statement %T", s)})
	}
}

func boolVal(b bool) memmodel.Value {
	if b {
		return 1
	}
	return 0
}

func (ex *threadExec) eval(e lang.Expr) memmodel.Value {
	switch x := e.(type) {
	case *lang.NumExpr:
		return memmodel.Value(x.Val)
	case *lang.RegExpr:
		return ex.regs[x.Name]
	case *lang.LoadExpr:
		return ex.th.Load(ex.p.layout[x.Loc], ex.loc(x, x.Pos))
	case *lang.CASExpr:
		expd := ex.eval(x.Expected)
		newV := ex.eval(x.New)
		old, _ := ex.th.CAS(ex.p.layout[x.Loc], expd, newV, ex.loc(x, x.Pos))
		return old
	case *lang.FAAExpr:
		delta := ex.eval(x.Delta)
		return ex.th.FAA(ex.p.layout[x.Loc], delta, ex.loc(x, x.Pos))
	case *lang.BinExpr:
		// Short-circuit the logical operators: their operands may have
		// memory side effects.
		switch x.Op {
		case "&&":
			if ex.eval(x.L) == 0 {
				return 0
			}
			return boolVal(ex.eval(x.R) != 0)
		case "||":
			if ex.eval(x.L) != 0 {
				return 1
			}
			return boolVal(ex.eval(x.R) != 0)
		}
		l, r := ex.eval(x.L), ex.eval(x.R)
		switch x.Op {
		case "+":
			return l + r
		case "-":
			return l - r
		case "*":
			return l * r
		case "/":
			if r == 0 {
				return 0
			}
			return l / r
		case "%":
			if r == 0 {
				return 0
			}
			return l % r
		case "==":
			return boolVal(l == r)
		case "!=":
			return boolVal(l != r)
		case "<":
			return boolVal(l < r)
		case "<=":
			return boolVal(l <= r)
		case ">":
			return boolVal(l > r)
		case ">=":
			return boolVal(l >= r)
		}
		panic(InternalError{Detail: fmt.Sprintf("unknown operator %q", x.Op)})
	case *lang.NotExpr:
		return boolVal(ex.eval(x.E) == 0)
	default:
		panic(InternalError{Detail: fmt.Sprintf("unknown expression %T", e)})
	}
}
