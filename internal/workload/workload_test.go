package workload

import (
	"testing"

	"repro/internal/memmodel"
	"repro/internal/pmem"
)

// TestGeneratorDeterministic: the same (seed, thread) pair always draws
// the same stream, and distinct threads draw distinct streams.
func TestGeneratorDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Ops: 1000, Keys: 32, ZipfS: 1.2, ReadPct: 40}
	a, b := NewGenerator(cfg, 3), NewGenerator(cfg, 3)
	other := NewGenerator(cfg, 4)
	diverged := false
	for i := 0; i < 200; i++ {
		x, y := a.Next(), b.Next()
		if x != y {
			t.Fatalf("op %d: %+v != %+v", i, x, y)
		}
		if x != other.Next() {
			diverged = true
		}
	}
	if !diverged {
		t.Fatal("threads 3 and 4 drew identical streams")
	}
}

// TestGeneratorShape checks the mix and ranges: keys in 1..Keys, reads
// near ReadPct, SET values nonzero, classes within the histogram.
func TestGeneratorShape(t *testing.T) {
	cfg := Config{Seed: 1, Keys: 16, ReadPct: 30,
		Classes: []SizeClass{{Words: 1, Weight: 3}, {Words: 8, Weight: 1}}}
	g := NewGenerator(cfg, 0)
	reads, classCount := 0, make([]int, 2)
	for i := 0; i < 10000; i++ {
		op := g.Next()
		if op.Key < 1 || op.Key > 16 {
			t.Fatalf("key %d out of range", op.Key)
		}
		if op.Read {
			reads++
			continue
		}
		if op.Val == 0 {
			t.Fatal("SET with zero value")
		}
		classCount[op.Class]++
	}
	if reads < 2500 || reads > 3500 {
		t.Fatalf("read mix %d/10000, want ~3000", reads)
	}
	if classCount[0] < 2*classCount[1] {
		t.Fatalf("class weights not respected: %v", classCount)
	}
}

// TestZipfSkew: a Zipfian keyspace concentrates mass on low keys.
func TestZipfSkew(t *testing.T) {
	g := NewGenerator(Config{Seed: 2, Keys: 1000, ZipfS: 1.5, ReadPct: 1}, 0)
	low := 0
	for i := 0; i < 5000; i++ {
		if g.Next().Key <= 10 {
			low++
		}
	}
	if low < 2500 {
		t.Fatalf("only %d/5000 requests hit the 10 hottest of 1000 keys", low)
	}
}

// countingServer records the requests Drive delivers.
type countingServer struct {
	sets, gets int
}

func (s *countingServer) Set(th *pmem.Thread, key, val memmodel.Value, words int) {
	s.sets++
	th.Store(pmem.RootAddr, val, "set")
	th.Persist(pmem.RootAddr, memmodel.WordSize, "persist set")
}

func (s *countingServer) Get(th *pmem.Thread, key memmodel.Value) (memmodel.Value, bool) {
	s.gets++
	return th.Load(pmem.RootAddr, "get"), true
}

// TestDriveDeliversOps: Drive issues exactly cfg.Ops requests, across
// waves when churn retires threads.
func TestDriveDeliversOps(t *testing.T) {
	for _, churn := range []int{0, 10} {
		srv := &countingServer{}
		w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
		Drive(w, Config{Seed: 3, Ops: 100, Threads: 3, Churn: churn}, srv)
		if srv.sets+srv.gets != 100 {
			t.Fatalf("churn %d: delivered %d requests, want 100", churn, srv.sets+srv.gets)
		}
	}
}
