// Package workload generates deterministic server-class request
// streams for the Redis- and memcached-style benchmark ports: Zipfian
// or uniform keyspaces, read/write mixes, value-size histograms, and
// client-thread churn. A stream is a pure function of its Config — each
// client thread draws from its own seeded source, so the per-thread
// request sequence is identical under every scheduler interleaving —
// which is what lets the windowed-equivalence suite compare bounded and
// unbounded runs of the same workload execution by execution.
//
// The generator exists to drive *long* executions: where the litmus
// corpus and the Table 2 ports run tens of operations per execution,
// a workload run streams millions through one world, the regime the
// bounded-window trace pipeline is built for.
package workload

import (
	"math/rand"

	"repro/internal/memmodel"
	"repro/internal/pmem"
)

// SizeClass is one bar of the value-size histogram: values of Words
// machine words drawn with relative weight Weight.
type SizeClass struct {
	Words  int
	Weight int
}

// Config describes a request stream. The zero value of any field picks
// the default documented on it.
type Config struct {
	// Seed seeds the per-thread request sources. The same Seed always
	// yields the same per-thread streams.
	Seed int64
	// Ops is the total request count across all client threads
	// (default 256).
	Ops int
	// Keys is the keyspace size; keys are 1..Keys (default 64).
	Keys int
	// ZipfS is the Zipfian skew exponent; values <= 1 select a uniform
	// keyspace (rand.Zipf requires s > 1).
	ZipfS float64
	// ReadPct is the percentage of requests that are GETs, 0–100
	// (default 50).
	ReadPct int
	// Threads is the number of concurrent client threads per wave
	// (default 2).
	Threads int
	// Churn, when positive, retires each client thread after Churn
	// requests and spawns a replacement wave until Ops is exhausted —
	// the connection-churn pattern of a real server. 0 runs one wave to
	// completion.
	Churn int
	// Classes is the value-size histogram (default: one 1-word class).
	Classes []SizeClass
}

func (c Config) withDefaults() Config {
	if c.Ops <= 0 {
		c.Ops = 256
	}
	if c.Keys <= 0 {
		c.Keys = 64
	}
	if c.ReadPct < 0 {
		c.ReadPct = 0
	}
	if c.ReadPct == 0 {
		c.ReadPct = 50
	}
	if c.ReadPct > 100 {
		c.ReadPct = 100
	}
	if c.Threads <= 0 {
		c.Threads = 2
	}
	if len(c.Classes) == 0 {
		c.Classes = []SizeClass{{Words: 1, Weight: 1}}
	}
	return c
}

// Op is one generated request.
type Op struct {
	// Read selects GET; otherwise SET.
	Read bool
	// Key is in 1..Keys.
	Key memmodel.Value
	// Class indexes Config.Classes for a SET's value size.
	Class int
	// Val is the (nonzero) value a SET writes.
	Val memmodel.Value
}

// Generator draws one thread's request stream.
type Generator struct {
	cfg     Config
	rng     *rand.Rand
	zipf    *rand.Zipf
	weights []int
	total   int
	seq     memmodel.Value
}

// NewGenerator builds the stream for one client thread. Distinct
// (seed, thread) pairs draw independent streams; the same pair always
// draws the same stream.
func NewGenerator(cfg Config, thread int) *Generator {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(thread+1)*0x5851F42D4C957F2D))
	g := &Generator{cfg: cfg, rng: rng}
	if cfg.ZipfS > 1 {
		g.zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Keys-1))
	}
	for _, sc := range cfg.Classes {
		w := sc.Weight
		if w <= 0 {
			w = 1
		}
		g.weights = append(g.weights, w)
		g.total += w
	}
	return g
}

// Next draws the thread's next request.
func (g *Generator) Next() Op {
	var key uint64
	if g.zipf != nil {
		key = g.zipf.Uint64()
	} else {
		key = uint64(g.rng.Intn(g.cfg.Keys))
	}
	op := Op{Key: memmodel.Value(key + 1)}
	if g.rng.Intn(100) < g.cfg.ReadPct {
		op.Read = true
		return op
	}
	pick := g.rng.Intn(g.total)
	for i, w := range g.weights {
		if pick < w {
			op.Class = i
			break
		}
		pick -= w
	}
	g.seq++
	op.Val = op.Key*1_000_003 + g.seq
	return op
}

// Server is the request interface the drivers speak: the two ports
// (internal/benchmarks/redislog, internal/benchmarks/slabcache)
// implement it over their persistence skeletons.
type Server interface {
	// Set stores val (whose size class indexes Config.Classes) under key.
	Set(th *pmem.Thread, key, val memmodel.Value, words int)
	// Get looks key up.
	Get(th *pmem.Thread, key memmodel.Value) (memmodel.Value, bool)
}

// Drive runs the configured request stream against srv on w's
// cooperative scheduler: Threads client threads per wave, each serving
// its own generated stream, waves repeating under Churn until Ops
// requests have been issued. A crash injection unwinds through the
// scheduler exactly as in the Table 2 ports.
func Drive(w *pmem.World, cfg Config, srv Server) {
	cfg = cfg.withDefaults()
	perWave := cfg.Ops
	if cfg.Churn > 0 && cfg.Threads*cfg.Churn < perWave {
		perWave = cfg.Threads * cfg.Churn
	}
	issued, wave := 0, 0
	for issued < cfg.Ops {
		n := cfg.Ops - issued
		if n > perWave {
			n = perWave
		}
		for t := 0; t < cfg.Threads; t++ {
			quota := n / cfg.Threads
			if t < n%cfg.Threads {
				quota++
			}
			if quota == 0 {
				continue
			}
			g := NewGenerator(cfg, wave*cfg.Threads+t)
			w.Spawn(memmodel.ThreadID(t), func(th *pmem.Thread) {
				for i := 0; i < quota; i++ {
					op := g.Next()
					if op.Read {
						srv.Get(th, op.Key)
					} else {
						srv.Set(th, op.Key, op.Val, cfg.Classes[op.Class].Words)
					}
				}
			})
		}
		w.RunThreads()
		issued += n
		wave++
	}
}
