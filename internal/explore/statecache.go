// Post-crash state cache for model-checking mode.
//
// Two crash points that leave behind the same surviving persistent
// image lead to identical continuations: every post-crash load sees the
// same candidate set, the heap hands out the same addresses, and — at
// the *first* crash of an execution — the checker carries no constraint
// state yet (constraints only arise from reads of earlier
// sub-executions, and sub-execution 0 has none before it). So once one
// phase-0 crash target's post-crash enumeration has been explored,
// every later target with the same image can be pruned wholesale. This
// happens constantly in the ported benchmarks: any fence window that
// contains only loads, or flushes of already-persisted lines, yields
// the image of its neighbor.
//
// The key is (persistent-image hash, allocator mark):
//
//   - the image hash is the backend's PersistFingerprint. Every
//     built-in backend derives it from the shared persist.Image: per
//     cache line in address order, every sealed epoch's store history
//     (store IDs and values) and its persisted-prefix bounds [lo, hi].
//     Model-checking runs a fixed seed, so the pre-crash prefix is the
//     same instruction stream in every execution and store IDs name
//     identical stores. A future backend with extra post-crash-visible
//     state (anything that changes a later LoadCandidates result) must
//     fold that state into its fingerprint, or equal keys would merge
//     genuinely different continuations — see DESIGN.md,
//     "Persistency-model backends";
//   - the allocator mark (heap bytes used) distinguishes crash points
//     that differ only in volatile allocations, which post-crash phases
//     would re-allocate at different addresses.
//
// The cache is consulted once per subtree (all executions of a subtree
// share one phase-0 prefix, hence one image), and the spawn chain in
// pool.go registers images in subtree order, so the hit/miss pattern —
// and with it every count in Result — is identical for any worker
// count. Deeper crashes (programs with three or more phases) are not
// cached: their keys would also need the checker's constraint state and
// the pending crash-target choices of unreached phases.
//
// Known approximation: the op-budget counter is not part of the key, so
// a continuation that aborts on its budget could be deduplicated
// against one that would abort slightly later. Budgets are a safety
// net two orders of magnitude above real executions, so this does not
// affect verdicts.
package explore

import (
	"sync"

	"repro/internal/obs"
	"repro/internal/pmem"
)

// cacheKey identifies a surviving persistent image.
type cacheKey struct {
	image uint64 // persist.Model.PersistFingerprint
	heap  int    // pmem.Heap.Used
}

// stateKey computes the cache key of a just-crashed world.
func stateKey(w *pmem.World) cacheKey {
	return cacheKey{image: w.M.PersistFingerprint(), heap: w.Heap.Used()}
}

// stateCache records explored crash images. The spawn chain already
// serializes lookups, but the mutex keeps the structure safe under any
// call pattern.
type stateCache struct {
	mu           sync.Mutex
	seen         map[cacheKey]struct{}
	hits, misses int
	met          obs.CacheMetrics
	// images tracks distinct persistence fingerprints to split misses by
	// class (new image vs. seen image with a new heap mark). It is only
	// allocated when metrics are live, so the disabled path stays
	// byte-identical to a build without observability.
	images map[uint64]struct{}
}

func newStateCache(met obs.CacheMetrics) *stateCache {
	c := &stateCache{seen: make(map[cacheKey]struct{}), met: met}
	if met.Probes != nil {
		c.images = make(map[uint64]struct{})
	}
	return c
}

// lookupOrRegister reports whether the key was already explored,
// registering it if not.
func (c *stateCache) lookupOrRegister(k cacheKey) (hit bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.met.Probes.Inc()
	if _, ok := c.seen[k]; ok {
		c.hits++
		c.met.Hits.Inc()
		return true
	}
	c.seen[k] = struct{}{}
	c.misses++
	c.met.Misses.Inc()
	if c.images != nil {
		if _, ok := c.images[k.image]; ok {
			c.met.MissNewHeap.Inc()
		} else {
			c.images[k.image] = struct{}{}
			c.met.MissNewImage.Inc()
		}
	}
	c.met.Entries.Set(int64(len(c.seen)))
	return false
}

// stats returns the hit/miss counters.
func (c *stateCache) stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// prime registers a key without touching the counters: checkpoint
// resume replays the pre-cut registrations so post-cut lookups see
// exactly the cache an uninterrupted run would have had.
func (c *stateCache) prime(k cacheKey) {
	c.mu.Lock()
	c.seen[k] = struct{}{}
	if c.images != nil {
		// Replay the fingerprint too, so post-resume misses classify
		// against the same image set an uninterrupted run would have.
		c.images[k.image] = struct{}{}
	}
	c.met.Entries.Set(int64(len(c.seen)))
	c.mu.Unlock()
}

// seed adds a resumed checkpoint's counters so final stats are
// cumulative across the interrupted and resumed runs.
func (c *stateCache) seed(hits, misses int) {
	c.mu.Lock()
	c.hits += hits
	c.misses += misses
	c.mu.Unlock()
}
