// Post-crash state cache for model-checking mode.
//
// Two crash points that leave behind the same surviving persistent
// image lead to identical continuations: every post-crash load sees the
// same candidate set, the heap hands out the same addresses, and — at
// the *first* crash of an execution — the checker carries no constraint
// state yet (constraints only arise from reads of earlier
// sub-executions, and sub-execution 0 has none before it). So once one
// phase-0 crash target's post-crash enumeration has been explored,
// every later target with the same image can be pruned wholesale. This
// happens constantly in the ported benchmarks: any fence window that
// contains only loads, or flushes of already-persisted lines, yields
// the image of its neighbor.
//
// The key is (persistent-image hash, allocator mark):
//
//   - the image hash is the backend's PersistFingerprint. Every
//     built-in backend derives it from the shared persist.Image: per
//     cache line in address order, every sealed epoch's store history
//     (store IDs and values) and its persisted-prefix bounds [lo, hi].
//     Model-checking runs a fixed seed, so the pre-crash prefix is the
//     same instruction stream in every execution and store IDs name
//     identical stores. A future backend with extra post-crash-visible
//     state (anything that changes a later LoadCandidates result) must
//     fold that state into its fingerprint, or equal keys would merge
//     genuinely different continuations — see DESIGN.md,
//     "Persistency-model backends";
//   - the allocator mark (heap bytes used) distinguishes crash points
//     that differ only in volatile allocations, which post-crash phases
//     would re-allocate at different addresses.
//
// The cache is consulted once per subtree (all executions of a subtree
// share one phase-0 prefix, hence one image), and the spawn chain in
// pool.go registers images in subtree order, so the hit/miss pattern —
// and with it every count in Result — is identical for any worker
// count. Deeper crashes (programs with three or more phases) are not
// cached: their keys would also need the checker's constraint state and
// the pending crash-target choices of unreached phases.
//
// The cache is sharded: keys are striped over cacheShards independently
// locked segments by the low bits of the image hash, so concurrent
// workers probing different images never serialize on one mutex. The
// hit/miss verdict for a given key is decided entirely inside its
// shard, so sharding cannot change any verdict — only which lock a
// probe takes. Per-shard hit/miss tallies are summed by stats().
//
// Known approximation: the op-budget counter is not part of the key, so
// a continuation that aborts on its budget could be deduplicated
// against one that would abort slightly later. Budgets are a safety
// net two orders of magnitude above real executions, so this does not
// affect verdicts.
package explore

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/pmem"
)

// cacheShards is the stripe count. Shard selection uses the low bits of
// the image hash (PersistFingerprint output is well-mixed), so the
// count must stay a power of two.
const cacheShards = 16

// cacheKey identifies a surviving persistent image.
type cacheKey struct {
	image uint64 // persist.Model.PersistFingerprint
	heap  int    // pmem.Heap.Used
}

// shard returns the stripe index the key lives in.
func (k cacheKey) shard() int {
	return int(k.image & (cacheShards - 1))
}

// stateKey computes the cache key of a just-crashed world.
func stateKey(w *pmem.World) cacheKey {
	return cacheKey{image: w.M.PersistFingerprint(), heap: w.Heap.Used()}
}

// cacheShard is one independently locked stripe of the cache.
type cacheShard struct {
	mu           sync.Mutex
	seen         map[cacheKey]struct{}
	hits, misses int
	// images tracks distinct persistence fingerprints to split misses by
	// class (new image vs. seen image with a new heap mark). It is only
	// allocated when metrics are live, so the disabled path stays
	// byte-identical to a build with observability off.
	images map[uint64]struct{}
}

// stateCache records explored crash images, striped over cacheShards
// segments keyed by image fingerprint. The spawn chain already
// serializes classification lookups, but the per-shard mutexes keep the
// structure safe — and uncontended — under any call pattern.
type stateCache struct {
	shards  [cacheShards]cacheShard
	entries atomic.Int64 // total keys across shards (Entries gauge)
	met     obs.CacheMetrics
}

func newStateCache(met obs.CacheMetrics) *stateCache {
	c := &stateCache{met: met}
	// Shard maps are allocated lazily on first touch, so a run that only
	// probes a few images pays for the shards it uses.
	return c
}

// lookupOrRegister reports whether the key was already explored,
// registering it if not. The verdict is decided entirely inside the
// key's shard.
func (c *stateCache) lookupOrRegister(k cacheKey) (hit bool) {
	s := &c.shards[k.shard()]
	s.mu.Lock()
	defer s.mu.Unlock()
	c.met.ShardProbes.Inc()
	c.met.Probes.Inc()
	if s.seen == nil {
		s.seen = make(map[cacheKey]struct{})
	}
	if _, ok := s.seen[k]; ok {
		s.hits++
		c.met.Hits.Inc()
		return true
	}
	s.seen[k] = struct{}{}
	s.misses++
	c.met.Misses.Inc()
	if c.met.Probes != nil {
		if s.images == nil {
			s.images = make(map[uint64]struct{})
		}
		if _, ok := s.images[k.image]; ok {
			c.met.MissNewHeap.Inc()
		} else {
			s.images[k.image] = struct{}{}
			c.met.MissNewImage.Inc()
		}
	}
	c.met.Entries.Set(c.entries.Add(1))
	return false
}

// stats returns the hit/miss counters summed across shards.
func (c *stateCache) stats() (hits, misses int) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}

// prime registers a key without touching the counters: checkpoint
// resume replays the pre-cut registrations so post-cut lookups see
// exactly the cache an uninterrupted run would have had.
func (c *stateCache) prime(k cacheKey) {
	s := &c.shards[k.shard()]
	s.mu.Lock()
	c.met.ShardProbes.Inc()
	if s.seen == nil {
		s.seen = make(map[cacheKey]struct{})
	}
	if _, ok := s.seen[k]; !ok {
		s.seen[k] = struct{}{}
		c.met.Entries.Set(c.entries.Add(1))
	}
	if c.met.Probes != nil {
		if s.images == nil {
			s.images = make(map[uint64]struct{})
		}
		// Replay the fingerprint too, so post-resume misses classify
		// against the same image set an uninterrupted run would have.
		s.images[k.image] = struct{}{}
	}
	s.mu.Unlock()
}

// seed adds a resumed checkpoint's counters so final stats are
// cumulative across the interrupted and resumed runs.
func (c *stateCache) seed(hits, misses int) {
	s := &c.shards[0]
	s.mu.Lock()
	s.hits += hits
	s.misses += misses
	s.mu.Unlock()
}
