// Panic isolation for the exploration engines.
//
// A PSan campaign re-executes the program under test tens of thousands
// of times; one schedule that trips an engine invariant (a backend's
// crash-image resolution, an interpreter hole, an index bug in a
// benchmark port) must not kill the whole run and discard every result
// collected so far. The engines therefore recover any panic that
// escapes an execution, convert it into a structured ExecError carrying
// enough of the schedule to reproduce it (the derived seed in random
// mode, the decision-trail prefix in model-check mode) plus a stack
// snapshot, quarantine that schedule, and keep exploring. Crash and
// abort signals (pmem.CrashSignal, pmem.AbortSignal) are the engine's
// normal control flow and are never converted.
//
// Quarantine semantics: the execution contributes no violations (its
// world is in an undefined state and is discarded, never reused), its
// index still counts toward Result.Executions, and in model-check mode
// the unexplored decisions below the panic point are skipped — they
// would deterministically re-panic, so the whole sub-schedule is
// quarantined, exactly like larger crash targets beyond an abort.
package explore

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/persist"
)

// execErrorCap bounds how many full ExecError records a Result retains;
// Result.Quarantined keeps the true count when the cap is exceeded.
const execErrorCap = 64

// ExecError is one contained engine panic: a quarantined schedule.
type ExecError struct {
	// Program and Mode identify the run.
	Program string
	Mode    Mode
	// Exec is the 0-based canonical execution index (-1 before the
	// collector assigns it).
	Exec int
	// Seed is the execution's derived seed (random mode; 0 in mc mode):
	// rerunning the program with this seed reproduces the panic.
	Seed int64
	// Prefix is the decision trail at the panic (model-check mode): the
	// crash targets followed by the read-choice ordinals replayed up to
	// the panic point.
	Prefix []int
	// Kind classifies the panic value: "<model>-invariant" (e.g.
	// "px86-invariant"), "interp-internal", "injected-fault", "stall"
	// (hard-watchdog timeout), "runtime", or "panic".
	Kind string
	// Value is the rendered panic value.
	Value string
	// Stack is the goroutine stack at recovery time.
	Stack string
}

// Error implements error with a one-line summary (no stack).
func (e *ExecError) Error() string {
	where := fmt.Sprintf("execution %d", e.Exec)
	if e.Mode == ModelCheck {
		where = fmt.Sprintf("execution %d (prefix %v)", e.Exec, e.Prefix)
	} else if e.Seed != 0 {
		where = fmt.Sprintf("execution %d (seed %d)", e.Exec, e.Seed)
	}
	return fmt.Sprintf("[%s] quarantined %s: %s", e.Kind, where, e.Value)
}

// injectedFault is the panic value the chaos harness (Options.InjectFault)
// raises inside the engine, distinguishable from real invariant panics.
type injectedFault struct {
	exec, op int
}

func (f injectedFault) Error() string {
	return fmt.Sprintf("injected fault at op %d of execution ordinal %d", f.op, f.exec)
}

// stallFault is the hard watchdog's panic value (installProbe): an
// execution that kept running hardWatchdogFactor step-timeouts past its
// soft abort. Unlike pmem.AbortSignal it is never swallowed by thread
// unwinding — it propagates through the ExecError path and quarantines
// the schedule, since a schedule whose abort doesn't terminate it would
// deterministically hang again.
type stallFault struct {
	elapsed, limit time.Duration
}

func (f stallFault) Error() string {
	return fmt.Sprintf("execution stalled: ran %v with step timeout %v and survived the soft abort", f.elapsed, f.limit)
}

// classifyPanic maps a recovered panic value to an ExecError kind. The
// interpreter's InternalError is matched through its marker method
// rather than its type: explore cannot import interp (interp's tests
// run programs through explore).
func classifyPanic(r any) string {
	switch v := r.(type) {
	case persist.InvariantError:
		return v.Model + "-invariant"
	case interface{ InterpInternal() }:
		return "interp-internal"
	case injectedFault:
		return "injected-fault"
	case stallFault:
		return "stall"
	case runtime.Error:
		return "runtime"
	default:
		return "panic"
	}
}

// captureExecError freezes a recovered panic into an ExecError. The
// caller fills in the schedule fields (Exec, Seed, Prefix) it knows.
func captureExecError(r any) *ExecError {
	return &ExecError{
		Exec:  -1,
		Kind:  classifyPanic(r),
		Value: fmt.Sprintf("%v", r),
		Stack: string(debug.Stack()),
	}
}
