package explore_test

import (
	"fmt"

	"repro/internal/explore"
	"repro/internal/pmem"
)

// ExampleRun checks the paper's Figure 2 under exhaustive model
// checking: every crash point and post-crash read is explored, and the
// missing flush is localized to the exact store pair.
func ExampleRun() {
	prog := &explore.FuncProgram{
		ProgName: "figure2",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Store(0x1000, 1, "x = 1")
				th.Store(0x2000, 1, "y = 1")
				th.Store(0x1000, 2, "x = 2")
				th.Store(0x2000, 2, "y = 2")
			},
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Load(0x1000, "r1 = x")
				th.Load(0x2000, "r2 = y")
			},
		},
	}
	res := explore.Run(prog, explore.Options{Mode: explore.ModelCheck, Executions: 10000})
	v := res.Violations[0]
	fmt.Printf("%s: store %q needs a flush before %q commits\n",
		v.Kind, v.MissingFlush.Loc, v.Persisted.Loc)
	// Output:
	// read-too-new: store "x = 2" needs a flush before "y = 2" commits
}
