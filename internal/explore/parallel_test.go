package explore

import (
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/pmem"
)

// sameOutcome asserts the determinism contract between two runs: the
// violation set, the execution counts, and the abort count must match
// byte for byte.
func sameOutcome(t *testing.T, a, b *Result) {
	t.Helper()
	if !reflect.DeepEqual(a.ViolationKeys(), b.ViolationKeys()) {
		t.Fatalf("ViolationKeys differ:\n  %d workers: %v\n  %d workers: %v",
			a.Workers, a.ViolationKeys(), b.Workers, b.ViolationKeys())
	}
	if a.Executions != b.Executions {
		t.Fatalf("Executions differ: %d vs %d", a.Executions, b.Executions)
	}
	if a.ExecutionsToAllBugs != b.ExecutionsToAllBugs {
		t.Fatalf("ExecutionsToAllBugs differ: %d vs %d", a.ExecutionsToAllBugs, b.ExecutionsToAllBugs)
	}
	if a.Aborted != b.Aborted {
		t.Fatalf("Aborted differ: %d vs %d", a.Aborted, b.Aborted)
	}
}

func TestRandomParallelMatchesSerial(t *testing.T) {
	for _, prog := range []func() Program{figure2, figure7} {
		serial := Run(prog(), Options{Mode: Random, Executions: 300, Seed: 7, Workers: 1})
		parallel := Run(prog(), Options{Mode: Random, Executions: 300, Seed: 7, Workers: 4})
		sameOutcome(t, serial, parallel)
	}
}

func TestModelCheckParallelMatchesSerial(t *testing.T) {
	for _, workers := range []int{2, 8} {
		serial := Run(figure2(), Options{Mode: ModelCheck, Executions: 10000, Workers: 1})
		parallel := Run(figure2(), Options{Mode: ModelCheck, Executions: 10000, Workers: workers})
		sameOutcome(t, serial, parallel)
	}
}

// The Executions safety cap must bind identically for every worker
// count: the parallel engine assembles the canonical first-N prefix of
// the serial DFS order even when subtrees overshoot concurrently.
func TestModelCheckParallelCapDeterministic(t *testing.T) {
	for _, cap := range []int{1, 2, 3, 5} {
		serial := Run(figure2(), Options{Mode: ModelCheck, Executions: cap, Workers: 1})
		parallel := Run(figure2(), Options{Mode: ModelCheck, Executions: cap, Workers: 8})
		sameOutcome(t, serial, parallel)
		if serial.Executions != cap {
			t.Fatalf("cap %d: serial ran %d executions", cap, serial.Executions)
		}
	}
}

// Progress must arrive serialized with strictly increasing 1-based
// indices, regardless of worker count or mode.
func TestProgressSerializedMonotone(t *testing.T) {
	for _, tc := range []struct {
		name string
		opt  Options
	}{
		{"random-parallel", Options{Mode: Random, Executions: 120, Seed: 3, Workers: 8}},
		{"model-check-parallel", Options{Mode: ModelCheck, Executions: 10000, Workers: 8}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var calls []int
			var inFlight int32
			tc.opt.Progress = func(exec int) {
				if atomic.AddInt32(&inFlight, 1) != 1 {
					t.Error("Progress invoked concurrently")
				}
				calls = append(calls, exec)
				atomic.AddInt32(&inFlight, -1)
			}
			res := Run(figure2(), tc.opt)
			if len(calls) != res.Executions {
				t.Fatalf("%d Progress calls for %d executions", len(calls), res.Executions)
			}
			for i, got := range calls {
				if got != i+1 {
					t.Fatalf("call %d reported index %d, want %d", i, got, i+1)
				}
			}
		})
	}
}

// AfterExecution keeps its serialized in-order contract under parallel
// random mode: the worlds arrive in execution-index order.
func TestAfterExecutionOrderedUnderParallelism(t *testing.T) {
	count := 0
	res := Run(figure2(), Options{
		Mode: Random, Executions: 80, Seed: 5, Workers: 8,
		AfterExecution: func(w *pmem.World) { count++ },
	})
	if count != res.Executions {
		t.Fatalf("AfterExecution ran %d times for %d executions", count, res.Executions)
	}
}

// TestStateCachePrunesIdenticalImages uses a program with two
// fence-like operations and no persistent-state change between them
// (the window between the flush and the sfence holds nothing), so the
// crash targets on either side of the sfence seal identical images:
// the model checker must explore one and prune the other.
func TestStateCachePrunesIdenticalImages(t *testing.T) {
	prog := &FuncProgram{
		ProgName: "cache-collapse",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Store(addrX, 1, "x=1")
				th.Flush(addrX, "flush x")
				th.SFence("sfence")
			},
			func(w *pmem.World) {
				w.Thread(0).Load(addrX, "r=x")
			},
		},
	}
	// Crash targets: 0 (before the flush: x unresolved, 2 read choices),
	// 1 (before the sfence: x persisted, 1 choice), 2 (past the end:
	// image identical to target 1 — pruned by the cache).
	cached := Run(prog, Options{Mode: ModelCheck, Executions: 10000, Workers: 1})
	if cached.Executions != 3 {
		t.Fatalf("cached run: %d executions, want 3", cached.Executions)
	}
	if cached.CacheHits != 1 || cached.CacheMisses != 2 {
		t.Fatalf("cache hits/misses = %d/%d, want 1/2", cached.CacheHits, cached.CacheMisses)
	}
	uncached := Run(prog, Options{Mode: ModelCheck, Executions: 10000, Workers: 1, NoStateCache: true})
	if uncached.Executions != 4 {
		t.Fatalf("uncached run: %d executions, want 4", uncached.Executions)
	}
	if uncached.CacheHits != 0 || uncached.CacheMisses != 0 {
		t.Fatalf("uncached run reported cache traffic: %d/%d", uncached.CacheHits, uncached.CacheMisses)
	}
	if !reflect.DeepEqual(cached.ViolationKeys(), uncached.ViolationKeys()) {
		t.Fatalf("cache changed verdicts: %v vs %v", cached.ViolationKeys(), uncached.ViolationKeys())
	}
}

// Workers: 0 resolves to NumCPU and is recorded in the result.
func TestWorkersDefaultResolved(t *testing.T) {
	res := Run(figure2(), Options{Mode: Random, Executions: 10, Seed: 1})
	if res.Workers < 1 {
		t.Fatalf("resolved workers = %d", res.Workers)
	}
}

// A chooser-visible sanity check that parallel model checking still
// enumerates reads: the two-flushes program from the serial test keeps
// its exact execution count under 8 workers with the cache on (all
// three images are distinct).
func TestModelCheckParallelEnumerationCount(t *testing.T) {
	prog := &FuncProgram{
		ProgName: "two-flushes",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Store(addrX, 1, "x=1")
				th.Flush(addrX, "f1")
				th.Store(addrY, 1, "y=1")
				th.Flush(addrY, "f2")
			},
			func(w *pmem.World) {
				w.Thread(0).Load(addrX, "r=x")
			},
		},
	}
	res := Run(prog, Options{Mode: ModelCheck, Executions: 10000, Workers: 8})
	if res.Executions != 4 {
		t.Fatalf("executions = %d, want 4", res.Executions)
	}
	if res.CacheMisses != 3 || res.CacheHits != 0 {
		t.Fatalf("cache misses/hits = %d/%d, want 3/0", res.CacheMisses, res.CacheHits)
	}
}
