// Checkpoint/resume for interrupted campaigns.
//
// A partial run (deadline, context cancellation, SIGINT) returns a
// Checkpoint describing exactly where the canonical execution stream
// was cut, and a later run started with Options.Resume continues from
// that cut. Determinism is inherited from the engines: random mode's
// seed depends only on the execution index, so the cursor is just the
// number of executions collected; model-check mode's cut is the first
// unfinished subtree in canonical (subtree-ordinal) order, resumed from
// its sub-DFS decision trail with the state cache re-primed so the
// hit/miss pattern — and therefore the execution stream — is identical
// to an uninterrupted run's. The union of the partial run's and the
// resumed run's violation key sets equals the uninterrupted run's set.
//
// The checkpoint does not persist full Violation records (they freeze
// trace state that is meaningless across processes); it persists their
// canonical keys, which is what cross-execution deduplication and the
// convergence guarantee are defined over. A resumed Result therefore
// reports only violations first found after the cut; merge its key set
// with the partial run's to recover the campaign total.
package explore

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/persist"
)

// resolveModel maps the empty model name to the default backend.
func resolveModel(name string) string {
	if name == "" {
		return persist.DefaultModel
	}
	return name
}

// checkpointVersion guards the serialized format. Version 2 switched
// the model-check trail to lazy crash-target consumption (decision
// order = use order) and added the cut subtree's partial-order-
// reduction registrations; version-1 trails describe a different
// decision ordering and cannot be resumed. Version 3 added the
// process-isolation supervisor's campaign state (Dispatch) and made the
// format double as the supervisor↔worker wire vocabulary — a work unit
// is described to a worker as a checkpoint-shaped cut, which the worker
// Validates before running.
const checkpointVersion = 3

// CheckpointVersion is the current format version, exported for the
// dispatch supervisor, which shapes work units as checkpoints.
const CheckpointVersion = checkpointVersion

// Checkpoint is the resume state of a partial exploration run.
type Checkpoint struct {
	Version int    `json:"version"`
	Program string `json:"program"`
	Mode    string `json:"mode"`
	Seed    int64  `json:"seed"`
	// Model is the persistency-model backend the campaign ran under
	// (empty in pre-model checkpoints, meaning the default backend).
	// Verdicts and decision trees are model-relative, so resuming under
	// a different backend would merge incomparable results.
	Model string `json:"model,omitempty"`
	// Window records the retirement-window size the campaign ran under
	// (0 = unbounded). A bounded window forces snapshots, DPOR, and the
	// state cache off, which changes which executions the canonical
	// stream contains, so a resume must use the same window.
	Window int `json:"window,omitempty"`
	// DPOR records whether the campaign ran with partial-order
	// reduction. The reduction changes which executions the canonical
	// stream contains, so a resume must run the same way; snapshots, by
	// contrast, never change the stream and need no validation.
	DPOR bool `json:"dpor,omitempty"`
	// Collected is the canonical execution cursor: how many executions
	// of the uninterrupted stream were collected before the cut. Random
	// mode resumes at exactly this index.
	Collected   int `json:"collected"`
	Aborted     int `json:"aborted"`
	Quarantined int `json:"quarantined"`
	// ViolationKeys are the canonical keys (core.Violation.Key) of every
	// violation found before the cut, priming the resumed run's
	// cross-execution dedup.
	ViolationKeys []string      `json:"violationKeys,omitempty"`
	MC            *MCCheckpoint `json:"mc,omitempty"`
	// Dispatch carries the process-isolation supervisor's campaign state
	// (internal/dispatch, version 3): cumulative redelivery and restart
	// totals plus the poison quarantine, so a resumed -isolate campaign
	// reports cumulatively and re-attempts quarantined units with a
	// fresh retry budget. In-process resumes ignore it.
	Dispatch *DispatchCheckpoint `json:"dispatch,omitempty"`
}

// DispatchCheckpoint is the supervisor-specific resume state.
type DispatchCheckpoint struct {
	Redeliveries   int            `json:"redeliveries"`
	WorkerRestarts int            `json:"workerRestarts"`
	Poison         []PoisonRecord `json:"poison,omitempty"`
}

// PoisonRecord is the serialized identity of a quarantined work unit.
// The canonical cut always falls at or before the first poisoned unit,
// so a resume re-attempts it; the record preserves the campaign's
// failure history across that restart.
type PoisonRecord struct {
	Kind     string `json:"kind"` // "mc" or "random"
	Subtree  int    `json:"subtree,omitempty"`
	Lo       int    `json:"lo,omitempty"`
	Hi       int    `json:"hi,omitempty"`
	Attempts int    `json:"attempts"`
	LastErr  string `json:"lastError,omitempty"`
}

// MCCheckpoint is the model-check-specific resume state: the cut
// subtree and everything needed to replay the engine's determinism.
type MCCheckpoint struct {
	// Subtree is the ordinal (phase-0 crash target) of the first
	// unfinished subtree — the cut point of the canonical stream.
	Subtree int `json:"subtree"`
	// Started reports whether the cut subtree ran any executions; if so,
	// Trail is its sub-DFS decision trail, positioned at the next
	// unexplored execution.
	Started bool         `json:"started"`
	Trail   []TrailEntry `json:"trail,omitempty"`
	// SpawnNext records whether the cut subtree's first execution fired
	// its phase-0 crash injection — i.e. whether subtree Subtree+1
	// exists and must be explored after the cut subtree.
	SpawnNext bool `json:"spawnNext"`
	// CacheKeys are the state-cache registrations made by subtrees up to
	// and including the cut subtree, in registration order; priming them
	// reproduces the uninterrupted run's prune pattern for the subtrees
	// explored after resume.
	CacheKeys []CacheEntry `json:"cacheKeys,omitempty"`
	// CacheHits and CacheMisses seed the resumed run's counters so its
	// final stats are cumulative.
	CacheHits   int `json:"cacheHits"`
	CacheMisses int `json:"cacheMisses"`
	// DPORKeys are the cut subtree's partial-order-reduction
	// registrations (the set is subtree-local; completed subtrees need
	// none and unexplored ones rebuild theirs). Priming them reproduces
	// the uninterrupted run's deeper-crash prune pattern after resume.
	// Every component is path-deterministic (store IDs, label strings —
	// never interner IDs), so the keys compare across processes.
	DPORKeys []DPORKey `json:"dporKeys,omitempty"`
}

// DPORKey is one serialized partial-order-reduction registration: a
// fully identified deeper crash state (see pool.go's dporKey).
type DPORKey struct {
	Phase   int    `json:"phase"`
	Image   uint64 `json:"image"`
	Heap    int    `json:"heap"`
	Ops     int    `json:"ops"`
	Checker uint64 `json:"checker"`
	Trace   uint64 `json:"trace"`
}

// TrailEntry is one serialized DFS decision.
type TrailEntry struct {
	Val    int `json:"v"`
	Domain int `json:"d"`
}

// CacheEntry is one serialized state-cache key.
type CacheEntry struct {
	Image uint64 `json:"image"`
	Heap  int    `json:"heap"`
}

// Save writes the checkpoint to path as JSON, atomically (write to a
// temp file in the same directory, then rename).
func (c *Checkpoint) Save(path string) error {
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint written by Save.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("checkpoint %s: %w", path, err)
	}
	if c.Version != checkpointVersion {
		return nil, fmt.Errorf("checkpoint %s: %w", path, &MismatchError{
			Field: "version",
			Have:  fmt.Sprintf("%d", c.Version),
			Want:  fmt.Sprintf("%d", checkpointVersion),
		})
	}
	return &c, nil
}

// MismatchError is a typed checkpoint-validation failure: the named
// field disagrees between the checkpoint (Have) and the run trying to
// resume it (Want). It names both sides because the error is no longer
// just a CLI nit — the dispatch supervisor speaks the checkpoint format
// to its worker processes, and a worker that rejects a unit spec must
// say exactly which field disagreed for the supervisor's poison record
// to be actionable.
type MismatchError struct {
	Field string // "version", "program", "mode", "seed", "model", "window", "dpor", "mc-state"
	Have  string // the checkpoint's side
	Want  string // the resuming run's side
}

func (e *MismatchError) Error() string {
	return fmt.Sprintf("checkpoint %s mismatch: checkpoint has %s, run wants %s", e.Field, e.Have, e.Want)
}

// Validate checks that the checkpoint belongs to the same campaign the
// options describe; resuming a mismatched checkpoint would silently
// explore garbage. Every failure is a *MismatchError naming the field
// and both sides.
func (c *Checkpoint) Validate(program string, opt Options) error {
	if c.Program != program {
		return &MismatchError{Field: "program", Have: fmt.Sprintf("%q", c.Program), Want: fmt.Sprintf("%q", program)}
	}
	if c.Mode != opt.Mode.String() {
		return &MismatchError{Field: "mode", Have: c.Mode, Want: opt.Mode.String()}
	}
	if opt.Mode == Random && c.Seed != opt.Seed {
		return &MismatchError{Field: "seed", Have: fmt.Sprintf("%d", c.Seed), Want: fmt.Sprintf("%d", opt.Seed)}
	}
	if resolveModel(c.Model) != resolveModel(opt.Model.Name) {
		return &MismatchError{Field: "model", Have: resolveModel(c.Model), Want: resolveModel(opt.Model.Name)}
	}
	if c.Window != opt.Model.Window {
		return &MismatchError{Field: "window", Have: fmt.Sprintf("%d", c.Window), Want: fmt.Sprintf("%d", opt.Model.Window)}
	}
	if c.Mode == ModelCheck.String() && c.MC == nil {
		return &MismatchError{Field: "mc-state", Have: "absent", Want: "present"}
	}
	if c.Mode == ModelCheck.String() && c.DPOR == opt.DisableDPOR {
		return &MismatchError{Field: "dpor", Have: onOff(c.DPOR), Want: onOff(!opt.DisableDPOR)}
	}
	return nil
}

func onOff(v bool) string {
	if v {
		return "on"
	}
	return "off"
}

// trailFromCheckpoint rebuilds a controller trail.
func trailFromCheckpoint(es []TrailEntry) []decision {
	trail := make([]decision, len(es))
	for i, e := range es {
		trail[i] = decision{val: e.Val, domain: e.Domain}
	}
	return trail
}

// trailToCheckpoint serializes a controller trail.
func trailToCheckpoint(trail []decision) []TrailEntry {
	es := make([]TrailEntry, len(trail))
	for i, d := range trail {
		es[i] = TrailEntry{Val: d.val, Domain: d.domain}
	}
	return es
}
