package explore

// Work-stealing scheduler tests: donations must actually fire under the
// ForceSteals hook, must never change the assembled canonical stream,
// and must survive the checkpoint/resume chain, a binding execution
// budget, and a mid-steal stop. The cross-benchmark determinism sweep
// lives in the repo-root determinism suite
// (TestStealDeterminismModelCheck); these tests pin the engine-local
// invariants the sweep cannot see, like Result.Steals and
// FrontierRemaining.

import (
	"reflect"
	"testing"
	"time"
)

// TestStealsFire proves the donation path actually runs: ForceSteals
// makes every loop top with a donatable cut carve a unit, so a
// multi-unit program must report Steals > 0 — and the stolen schedule
// must still match the never-stealing baseline bit for bit.
func TestStealsFire(t *testing.T) {
	base := Run(figure2(), Options{
		Mode: ModelCheck, Executions: 10000, Workers: 1, DisableStealing: true,
	})
	if base.Steals != 0 {
		t.Fatalf("DisableStealing run reported %d steals", base.Steals)
	}
	for _, workers := range []int{1, 8} {
		res := Run(figure2(), Options{
			Mode: ModelCheck, Executions: 10000, Workers: workers, ForceSteals: true,
		})
		if res.Steals == 0 {
			t.Fatalf("workers=%d: ForceSteals run donated nothing", workers)
		}
		if !reflect.DeepEqual(res.ViolationKeys(), base.ViolationKeys()) ||
			res.Executions != base.Executions || res.Aborted != base.Aborted {
			t.Fatalf("workers=%d: stolen schedule diverged: %s vs %s", workers, res, base)
		}
	}
}

// TestStealDemandDonationParallel exercises the production trigger (a
// hungry peer, not the test hook): with more workers than root
// subtrees, idle workers go hungry and busy ones donate. The donation
// count is timing-dependent, so only the assembled stream is pinned.
func TestStealDemandDonationParallel(t *testing.T) {
	base := Run(figure2(), Options{
		Mode: ModelCheck, Executions: 10000, Workers: 1, DisableStealing: true,
	})
	res := Run(figure2(), Options{Mode: ModelCheck, Executions: 10000, Workers: 16})
	if !reflect.DeepEqual(res.ViolationKeys(), base.ViolationKeys()) ||
		res.Executions != base.Executions || res.Aborted != base.Aborted {
		t.Fatalf("demand-stolen schedule diverged: %s vs %s", res, base)
	}
}

// TestStealCheckpointResumeChain interrupts a steal-heavy campaign
// under doubling deadlines and chains resumes to completion: the
// cumulative counts, cache stats, and merged violation set must equal
// the uninterrupted never-stealing run. This crosses the two hardest
// checkpoint paths — a cut landing inside a stolen unit, and a resumed
// root that immediately re-donates.
func TestStealCheckpointResumeChain(t *testing.T) {
	full := Run(figure7(), Options{Mode: ModelCheck, Executions: 10000, Workers: 1, DisableStealing: true})
	res, merged := runToCompletion(t, figure7(), Options{
		Mode: ModelCheck, Executions: 10000, Workers: 4, ForceSteals: true,
		Deadline: 500 * time.Microsecond,
	})
	if res.Executions != full.Executions || res.Aborted != full.Aborted {
		t.Fatalf("cumulative counts diverge: %s vs %s", res, full)
	}
	if res.CacheHits != full.CacheHits || res.CacheMisses != full.CacheMisses {
		t.Fatalf("cumulative cache stats diverge: %d/%d vs %d/%d",
			res.CacheHits, res.CacheMisses, full.CacheHits, full.CacheMisses)
	}
	if !reflect.DeepEqual(merged, full.ViolationKeys()) {
		t.Fatalf("merged keys %v != uninterrupted %v", merged, full.ViolationKeys())
	}
}

// TestStealBudgetCapDeterminism pins the allowance rule where it
// binds: with the Executions cap cutting the enumeration short, the
// steal-heavy engine must truncate at exactly the same canonical
// prefix as the serial never-stealing one, at any worker count.
func TestStealBudgetCapDeterminism(t *testing.T) {
	// Pilot the full enumeration to pick a cap that genuinely binds.
	total := Run(figure7(), Options{Mode: ModelCheck, Executions: 10000, Workers: 1}).Executions
	if total < 4 {
		t.Fatalf("figure7 enumerates only %d executions, cap cannot bind", total)
	}
	cap := total / 2
	base := Run(figure7(), Options{
		Mode: ModelCheck, Executions: cap, Workers: 1, DisableStealing: true,
	})
	if base.Executions != cap {
		t.Fatalf("baseline ran %d executions under a cap of %d", base.Executions, cap)
	}
	for _, workers := range []int{1, 4, 16} {
		res := Run(figure7(), Options{
			Mode: ModelCheck, Executions: cap, Workers: workers, ForceSteals: true,
		})
		if !reflect.DeepEqual(res.ViolationKeys(), base.ViolationKeys()) ||
			res.Executions != base.Executions || res.Aborted != base.Aborted ||
			res.ExecutionsToAllBugs != base.ExecutionsToAllBugs {
			t.Fatalf("workers=%d: capped stolen schedule diverged: %s vs %s", workers, res, base)
		}
	}
}

// TestStealFrontierRemainingMidStop pins FrontierRemaining across a
// stop landing mid-steal: a partial steal-heavy leg must report
// unexplored work and carry a checkpoint, and the final leg of the
// chain must report a drained frontier.
func TestStealFrontierRemainingMidStop(t *testing.T) {
	opt := Options{
		Mode: ModelCheck, Executions: 10000, Workers: 4, ForceSteals: true,
		// Small enough to trip mid-enumeration; the chain doubles it each
		// leg so the run always converges.
		Deadline: 50 * time.Microsecond,
	}
	p := figure7()
	sawPartial := false
	for leg := 0; ; leg++ {
		if leg > 50 {
			t.Fatal("resume chain did not converge in 50 legs")
		}
		res := Run(p, opt)
		if !res.Partial {
			if res.FrontierRemaining != 0 {
				t.Fatalf("complete leg reports %d frontier units remaining", res.FrontierRemaining)
			}
			break
		}
		sawPartial = true
		if res.FrontierRemaining == 0 {
			t.Fatalf("partial leg reports a drained frontier: %s", res)
		}
		if res.Checkpoint == nil {
			t.Fatalf("partial leg without a checkpoint: %s", res)
		}
		opt.Resume = res.Checkpoint
		opt.Deadline *= 2
	}
	if !sawPartial {
		t.Skip("deadline never interrupted the run; nothing to pin")
	}
}
