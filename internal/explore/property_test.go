package explore

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memmodel"
	"repro/internal/pmem"
)

// genProgram builds a pseudo-random two-phase program from a seed. The
// pre-crash phase performs stores, RMWs, and (when strict is true) a
// persist after every mutation; the recovery phase reads every word.
func genProgram(seed int64, strict bool) Program {
	words := []memmodel.Addr{0x2000, 0x2008, 0x2040, 0x3000, 0x3008}
	return &FuncProgram{
		ProgName: "generated",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				rng := rand.New(rand.NewSource(seed))
				th := w.Thread(0)
				n := 4 + rng.Intn(12)
				for i := 0; i < n; i++ {
					a := words[rng.Intn(len(words))]
					switch rng.Intn(4) {
					case 0, 1:
						th.Store(a, memmodel.Value(rng.Intn(50)+1), "gen store")
					case 2:
						th.FAA(a, 1, "gen faa")
					case 3:
						th.Load(a, "gen load")
						continue
					}
					if strict {
						th.Persist(a, memmodel.WordSize, "gen persist")
					}
				}
			},
			func(w *pmem.World) {
				th := w.Thread(0)
				for _, a := range words {
					th.Load(a, "recovery read")
				}
				// Second pass: re-reads must stay consistent too.
				for _, a := range words {
					th.Load(a, "recovery re-read")
				}
			},
		},
	}
}

// Property (soundness direction): a program that persists every store
// before the next operation runs under strict persistency by
// construction — PSan must never flag it, across every crash point and
// read choice.
func TestPropertyStrictProgramsNeverFlagged(t *testing.T) {
	prop := func(seed int64) bool {
		res := Run(genProgram(seed, true), Options{Mode: ModelCheck, Executions: 20000})
		return len(res.Violations) == 0 && res.Executions < 20000
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Errorf("strict program flagged (unsound): %v", err)
	}
}

// Property: random exploration never reports violations the exhaustive
// mode cannot also reach — random-found bug keys are a subset of
// model-check-found keys on the same (unflushed) generated program.
func TestPropertyRandomSubsetOfModelCheck(t *testing.T) {
	prop := func(seed int64) bool {
		prog := genProgram(seed, false)
		mc := Run(prog, Options{Mode: ModelCheck, Executions: 60000})
		if mc.Executions >= 60000 {
			return true // state space too large to enumerate; vacuous
		}
		random := Run(prog, Options{Mode: Random, Executions: 150, Seed: seed})
		mcKeys := map[string]bool{}
		for _, v := range mc.Violations {
			mcKeys[v.Key()] = true
		}
		for _, v := range random.Violations {
			if !mcKeys[v.Key()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Errorf("random mode found a bug model checking cannot: %v", err)
	}
}

// Property: the checker is deterministic — the same seed yields the
// same violation set.
func TestPropertyDeterministicReplay(t *testing.T) {
	prop := func(seed int64) bool {
		a := Run(genProgram(seed, false), Options{Mode: Random, Executions: 60, Seed: seed})
		b := Run(genProgram(seed, false), Options{Mode: Random, Executions: 60, Seed: seed})
		ak, bk := a.ViolationKeys(), b.ViolationKeys()
		if len(ak) != len(bk) {
			return false
		}
		for i := range ak {
			if ak[i] != bk[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Errorf("exploration not deterministic: %v", err)
	}
}
