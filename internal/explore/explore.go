// Package explore is the execution-exploration harness that plays the
// role of the Jaaru model checker in the original system (§4, §6.1).
//
// It supports the paper's two strategies:
//
//   - Random mode: explores random executions with random crash points,
//     random thread interleavings, and random post-crash reads, steering
//     loads away from already-diagnosed violations so one execution can
//     expose several bugs.
//   - Model-checking mode: systematically inserts crashes before each
//     fence-like operation and after the last operation of every
//     non-final phase, and exhaustively explores every store each
//     post-crash load can read, via depth-first search over the
//     execution's decision points.
//
// Programs under test are sequences of phases separated by crashes; the
// final phase is the recovery/reader code and runs to completion.
package explore

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/pmem"
	"repro/internal/px86"
)

// Program is a persistent-memory test program: one or more crash-
// delimited phases. The explorer injects a crash inside (or at the end
// of) every phase except the last, then runs the next phase on the
// surviving persistent image. Phase functions must be deterministic
// given the world (all nondeterminism flows through the world's random
// source and read policy).
type Program interface {
	// Name identifies the program in reports.
	Name() string
	// Phases returns the phase functions, pre-crash first.
	Phases() []func(*pmem.World)
}

// FuncProgram adapts plain functions to the Program interface.
type FuncProgram struct {
	ProgName  string
	PhaseFns  []func(*pmem.World)
	SetupNote string
}

// Name implements Program.
func (p *FuncProgram) Name() string { return p.ProgName }

// Phases implements Program.
func (p *FuncProgram) Phases() []func(*pmem.World) { return p.PhaseFns }

// Mode selects the exploration strategy.
type Mode int

const (
	// Random explores randomized executions (§6.1 random search mode).
	Random Mode = iota
	// ModelCheck exhaustively enumerates crash points and post-crash
	// reads (§6.1 model checking mode).
	ModelCheck
)

// String names the mode.
func (m Mode) String() string {
	if m == ModelCheck {
		return "model-check"
	}
	return "random"
}

// Options configures an exploration run.
type Options struct {
	Mode Mode
	// Executions bounds the number of executions: the exact count in
	// Random mode, a safety cap in ModelCheck mode. 0 means 1000.
	Executions int
	// Seed seeds Random mode; ModelCheck is deterministic.
	Seed int64
	// Px86 configures the simulated machine.
	Px86 px86.Config
	// OpLimit bounds operations per execution (0: pmem default).
	OpLimit int
	// DisableChecker turns PSan off, leaving only the simulator — the
	// Jaaru baseline of Table 3.
	DisableChecker bool
	// NoSteering uses the plain random read policy instead of
	// violation-avoidance steering. Timing comparisons set it on both
	// sides so the measured difference is exactly the checker's
	// constraint updates, matching the paper's Table 3 methodology.
	NoSteering bool
	// StoreBuffers runs the machine in delayed-commit mode with random
	// store-buffer drains (random mode only), exposing TSO buffering —
	// stores that were issued but never reached the cache before the
	// crash.
	StoreBuffers bool
	// Progress, when non-nil, receives one call per execution.
	Progress func(exec int)
	// AfterExecution, when non-nil, receives each execution's world
	// after its phases complete, letting post-hoc analyses (the baseline
	// checkers of §6.4) inspect the trace.
	AfterExecution func(*pmem.World)
}

// Result summarizes an exploration run.
type Result struct {
	Program    string
	Mode       Mode
	Executions int
	// ExecutionsToAllBugs is the 1-based index of the execution that
	// found the last new violation (0 when none were found) — the
	// "# total executions" column of Table 3.
	ExecutionsToAllBugs int
	Aborted             int
	Elapsed             time.Duration
	// Violations are deduplicated across executions by bug identity
	// (store-site pair + diagnosis kind), in first-found order.
	Violations []*core.Violation
}

// PerExecution returns the mean wall-clock time per execution.
func (r *Result) PerExecution() time.Duration {
	if r.Executions == 0 {
		return 0
	}
	return r.Elapsed / time.Duration(r.Executions)
}

// ViolationKeys returns the sorted bug identities, for stable assertions.
func (r *Result) ViolationKeys() []string {
	keys := make([]string, 0, len(r.Violations))
	for _, v := range r.Violations {
		keys = append(keys, v.Key())
	}
	sort.Strings(keys)
	return keys
}

// String renders a short human-readable summary.
func (r *Result) String() string {
	return fmt.Sprintf("%s [%s]: %d executions (%d aborted), %d violations, %s total",
		r.Program, r.Mode, r.Executions, r.Aborted, len(r.Violations), r.Elapsed)
}

// Run explores the program under the given options.
func Run(p Program, opt Options) *Result {
	if opt.Executions == 0 {
		opt.Executions = 1000
	}
	switch opt.Mode {
	case ModelCheck:
		return runModelCheck(p, opt)
	default:
		return runRandom(p, opt)
	}
}

// mergeViolations folds an execution's violations into the result.
func (r *Result) mergeViolations(seen map[string]bool, vs []*core.Violation, execIndex int) {
	for _, v := range vs {
		if !seen[v.Key()] {
			seen[v.Key()] = true
			r.Violations = append(r.Violations, v)
			r.ExecutionsToAllBugs = execIndex
		}
	}
}

// runPhases executes the program's phases in one world, injecting
// crashes per crashTargets (one entry per non-final phase; a negative
// target crashes at the end of the phase without injection). It reports
// whether the execution aborted on its op budget, and for each non-final
// phase whether the crash injection actually fired (false means the
// phase ran to completion and crashed at its end).
func runPhases(p Program, w *pmem.World, crashTargets []int) (aborted bool, injected []bool) {
	injected = make([]bool, len(crashTargets))
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(pmem.AbortSignal); ok {
				aborted = true
				return
			}
			panic(r)
		}
	}()
	phases := p.Phases()
	for i, phase := range phases {
		last := i == len(phases)-1
		if last {
			w.SetCrashTarget(-1)
		} else {
			w.SetCrashTarget(crashTargets[i])
		}
		crashed := w.RunPhase(phase)
		if !last {
			injected[i] = crashed
			w.Crash()
		}
	}
	return false, injected
}

// runRandom implements random search mode.
func runRandom(p Program, opt Options) *Result {
	res := &Result{Program: p.Name(), Mode: Random}
	seen := make(map[string]bool)
	start := time.Now()
	numPre := len(p.Phases()) - 1

	// Pilot execution: run crash-free to size the crash-point ranges.
	pilotCounts := make([]int, numPre)
	pilot := pmem.NewWorld(pmem.Config{Px86: opt.Px86, Seed: opt.Seed, OpLimit: opt.OpLimit})
	pilot.Checker.SetEnabled(false)
	countingPilot(p, pilot, pilotCounts)

	chooser := pmem.ChooseAvoidingViolations(pmem.ChooseRandom)
	if opt.NoSteering {
		chooser = pmem.ChooseRandom
	}
	px := opt.Px86
	drainPct := 0
	if opt.StoreBuffers {
		px.DelayedCommit = true
		drainPct = 25
	}
	for exec := 0; exec < opt.Executions; exec++ {
		seed := opt.Seed + int64(exec)*2654435761
		w := pmem.NewWorld(pmem.Config{
			Px86:               px,
			Seed:               seed,
			OpLimit:            opt.OpLimit,
			Chooser:            chooser,
			RandomDrainPercent: drainPct,
		})
		if opt.DisableChecker {
			w.Checker.SetEnabled(false)
		}
		targets := make([]int, numPre)
		for i := range targets {
			// Uniform over [0, count]: before each fence-like op, or
			// past the end (crash after the last operation).
			targets[i] = w.Rand().Intn(pilotCounts[i] + 1)
		}
		if aborted, _ := runPhases(p, w, targets); aborted {
			res.Aborted++
		}
		res.mergeViolations(seen, w.Checker.Violations(), exec+1)
		res.Executions++
		if opt.AfterExecution != nil {
			opt.AfterExecution(w)
		}
		if opt.Progress != nil {
			opt.Progress(exec)
		}
	}
	res.Elapsed = time.Since(start)
	return res
}

// countingPilot runs the program crash-free and records how many
// fence-like operations each non-final phase performs.
func countingPilot(p Program, w *pmem.World, counts []int) {
	defer func() {
		// An aborted pilot still yields usable counts.
		if r := recover(); r != nil {
			if _, ok := r.(pmem.AbortSignal); !ok {
				panic(r)
			}
		}
	}()
	phases := p.Phases()
	for i, phase := range phases {
		w.SetCrashTarget(-1)
		w.RunPhase(phase)
		if i < len(counts) {
			counts[i] = w.FenceOps()
		}
		if i < len(phases)-1 {
			w.Crash()
		}
	}
}

// --- model checking mode: DFS over decision points ---

// decision is one recorded choice in the DFS trail. domain < 0 marks an
// open-ended crash-target decision whose range is discovered when a run
// no longer crashes.
type decision struct {
	val    int
	domain int
}

// controller replays a decision trail and extends it at new decision
// points, always choosing the first alternative.
type controller struct {
	trail []decision
	pos   int
}

func (c *controller) next(domain int) int {
	if c.pos < len(c.trail) {
		d := c.trail[c.pos]
		c.pos++
		return d.val
	}
	c.trail = append(c.trail, decision{val: 0, domain: domain})
	c.pos++
	return 0
}

// closeCurrent marks the most recently consumed decision's domain (used
// when a crash-target decision turns out to be past the phase's end).
func (c *controller) closeCurrent(idx int, domain int) {
	c.trail[idx].domain = domain
}

// backtrack advances the trail to the next unexplored branch, returning
// false when the search space is exhausted.
func (c *controller) backtrack() bool {
	for len(c.trail) > 0 {
		last := &c.trail[len(c.trail)-1]
		if last.domain < 0 || last.val+1 < last.domain {
			last.val++
			c.pos = 0
			return true
		}
		c.trail = c.trail[:len(c.trail)-1]
	}
	return false
}

// runModelCheck implements the exhaustive mode.
func runModelCheck(p Program, opt Options) *Result {
	res := &Result{Program: p.Name(), Mode: ModelCheck}
	seen := make(map[string]bool)
	start := time.Now()
	ctl := &controller{}
	numPre := len(p.Phases()) - 1

	for {
		ctl.pos = 0
		w := pmem.NewWorld(pmem.Config{
			Px86:    opt.Px86,
			Seed:    0,
			OpLimit: opt.OpLimit,
			Chooser: func(_ *pmem.World, _ memmodel.ThreadID, _ memmodel.Addr, cands []px86.Candidate, _ string) px86.Candidate {
				return cands[ctl.next(len(cands))]
			},
		})
		if opt.DisableChecker {
			w.Checker.SetEnabled(false)
		}
		// Crash-target decisions come first in the trail, one per
		// non-final phase, so their indices are stable.
		targets := make([]int, numPre)
		decIdx := make([]int, numPre)
		for i := range targets {
			decIdx[i] = ctl.pos
			targets[i] = ctl.next(-1)
		}
		aborted, injected := runPhases(p, w, targets)
		if aborted {
			res.Aborted++
		}
		// Close any crash-target decision whose injection did not fire:
		// the phase ran to completion, so larger targets are equivalent
		// to this one ("crash after the last operation", §6.1).
		for i, fired := range injected {
			if !fired && ctl.trail[decIdx[i]].domain < 0 {
				ctl.closeCurrent(decIdx[i], targets[i]+1)
			}
		}
		res.mergeViolations(seen, w.Checker.Violations(), res.Executions+1)
		res.Executions++
		if opt.AfterExecution != nil {
			opt.AfterExecution(w)
		}
		if opt.Progress != nil {
			opt.Progress(res.Executions)
		}
		if res.Executions >= opt.Executions {
			break
		}
		if !ctl.backtrack() {
			break
		}
	}
	res.Elapsed = time.Since(start)
	return res
}
