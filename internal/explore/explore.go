// Package explore is the execution-exploration harness that plays the
// role of the Jaaru model checker in the original system (§4, §6.1).
//
// It supports the paper's two strategies:
//
//   - Random mode: explores random executions with random crash points,
//     random thread interleavings, and random post-crash reads, steering
//     loads away from already-diagnosed violations so one execution can
//     expose several bugs.
//   - Model-checking mode: systematically inserts crashes before each
//     fence-like operation and after the last operation of every
//     non-final phase, and exhaustively explores every store each
//     post-crash load can read, via depth-first search over the
//     execution's decision points.
//
// Programs under test are sequences of phases separated by crashes; the
// final phase is the recovery/reader code and runs to completion.
package explore

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/pmem"
	"repro/internal/trace"
)

// Program is a persistent-memory test program: one or more crash-
// delimited phases. The explorer injects a crash inside (or at the end
// of) every phase except the last, then runs the next phase on the
// surviving persistent image. Phase functions must be deterministic
// given the world (all nondeterminism flows through the world's random
// source and read policy).
type Program interface {
	// Name identifies the program in reports.
	Name() string
	// Phases returns the phase functions, pre-crash first.
	Phases() []func(*pmem.World)
}

// FuncProgram adapts plain functions to the Program interface.
type FuncProgram struct {
	ProgName  string
	PhaseFns  []func(*pmem.World)
	SetupNote string
}

// Name implements Program.
func (p *FuncProgram) Name() string { return p.ProgName }

// Phases implements Program.
func (p *FuncProgram) Phases() []func(*pmem.World) { return p.PhaseFns }

// InstancedProgram builds a fresh set of phase closures for every
// execution. Ports whose phase functions mutate receiver state (pointer
// mirrors filled in during the pre-crash phase) use it so concurrent
// executions never share that state: the harness calls Phases once per
// execution, and each call gets its own instance.
type InstancedProgram struct {
	ProgName string
	// New returns a freshly instantiated phase slice. It must be safe
	// to call from multiple goroutines and each returned slice must be
	// independent of every other.
	New func() []func(*pmem.World)
}

// Name implements Program.
func (p *InstancedProgram) Name() string { return p.ProgName }

// Phases implements Program.
func (p *InstancedProgram) Phases() []func(*pmem.World) { return p.New() }

// ReentrantPhases is an optional Program capability: a program reports
// true when its phase functions derive all cross-phase state from the
// World — no mutable receiver or captured state carried from one phase
// into the next — so the explorer may re-enter a later phase on a
// restored world snapshot without re-running the earlier ones.
//
// FuncProgram qualifies by construction: the parallel engine already
// calls the same closures concurrently from many workers, so they
// cannot carry mutable shared state. InstancedProgram exists precisely
// for ports that mutate per-execution receiver state (pointer mirrors
// filled in pre-crash) and reports false. Programs that do not
// implement the interface are conservatively treated as non-reentrant.
type ReentrantPhases interface {
	PhasesReentrant() bool
}

// PhasesReentrant implements ReentrantPhases: plain phase functions are
// shared across concurrent workers and so must already be world-pure.
func (p *FuncProgram) PhasesReentrant() bool { return true }

// PhasesReentrant implements ReentrantPhases: instanced ports mutate
// per-execution receiver state, so a later phase cannot be re-entered
// without re-running the phases that populated it.
func (p *InstancedProgram) PhasesReentrant() bool { return false }

// phasesReentrant resolves the capability with the conservative default.
func phasesReentrant(p Program) bool {
	r, ok := p.(ReentrantPhases)
	return ok && r.PhasesReentrant()
}

// Mode selects the exploration strategy.
type Mode int

const (
	// Random explores randomized executions (§6.1 random search mode).
	Random Mode = iota
	// ModelCheck exhaustively enumerates crash points and post-crash
	// reads (§6.1 model checking mode).
	ModelCheck
)

// String names the mode.
func (m Mode) String() string {
	if m == ModelCheck {
		return "model-check"
	}
	return "random"
}

// Options configures an exploration run.
type Options struct {
	Mode Mode
	// Executions bounds the number of executions: the exact count in
	// Random mode, a safety cap in ModelCheck mode. 0 means 1000.
	Executions int
	// Seed seeds Random mode; ModelCheck is deterministic.
	Seed int64
	// Workers is the number of parallel exploration workers: 0 uses
	// runtime.NumCPU(), 1 runs the exact serial algorithm. Any worker
	// count produces bit-identical results: in Random mode each
	// execution's seed is derived from its index alone (never a shared
	// RNG), and in ModelCheck mode per-subtree results are assembled in
	// canonical depth-first order, so scheduling cannot leak into
	// Violations, ExecutionsToAllBugs, or Aborted.
	Workers int
	// NoStateCache disables the post-crash state cache (ModelCheck
	// mode): crash points whose surviving persistent image is identical
	// to one already explored are normally pruned, since they present
	// identical read candidates to every post-crash load. See
	// statecache.go for the key definition and the soundness argument.
	NoStateCache bool
	// DisableSnapshots makes the model-check engine replay every
	// execution from the program start instead of restoring a world
	// snapshot taken at its deepest still-valid crash boundary.
	// Results are bit-identical either way (the snapshot property test
	// asserts it); the option exists for A/B timing and for debugging
	// suspected restore bugs. Snapshots only apply to programs whose
	// phases are reentrant (see ReentrantPhases) and never to
	// FreshWorlds runs.
	DisableSnapshots bool
	// DisableDPOR turns off crash-state partial-order reduction
	// (ModelCheck mode): a deeper crash (phase >= 1) whose complete
	// post-crash state — persistent image, allocator mark, op count,
	// checker constraint state, committed trace — matches one already
	// explored within the same subtree is normally pruned, because its
	// continuation tree is identical to the one already enumerated.
	// Unlike DisableSnapshots this changes Result.Executions (fewer
	// executions run); the violation key set is unaffected. See
	// DESIGN.md, "Prefix snapshots and partial-order reduction".
	DisableDPOR bool
	// DisableStealing turns off work stealing in the parallel model-check
	// engine: when a worker's queue drains it normally carves the
	// shallowest unexplored decision-trail cut off the busiest peer and
	// runs it as an independent work unit. Results are bit-identical
	// either way (the assembly walk reorders unit streams into canonical
	// DFS order); the escape hatch exists for A/B timing and for
	// debugging suspected scheduler bugs. See DESIGN.md, "Work-stealing
	// scheduler".
	DisableStealing bool
	// ForceSteals is a test hook: the model-check engine donates a work
	// unit at every sub-DFS loop top where the trail has a donatable cut,
	// whether or not any worker is hungry. Donation decisions then depend
	// only on the decision trail — never on scheduler timing — so the
	// resulting work-unit tree is identical at any worker count, which is
	// what lets the determinism and chaos suites drive steal-heavy
	// schedules reproducibly. Production runs leave it false.
	ForceSteals bool
	// Model selects and configures the persistency-model backend
	// (persist.Config zero value: px86, immediate commit). It is the
	// single model-config path — pmem.Config receives exactly this
	// value, so the two layers cannot disagree.
	Model persist.Config
	// OpLimit bounds operations per execution (0: pmem default).
	OpLimit int
	// DisableChecker turns PSan off, leaving only the simulator — the
	// Jaaru baseline of Table 3.
	DisableChecker bool
	// NoSteering uses the plain random read policy instead of
	// violation-avoidance steering. Timing comparisons set it on both
	// sides so the measured difference is exactly the checker's
	// constraint updates, matching the paper's Table 3 methodology.
	NoSteering bool
	// StoreBuffers runs the machine in delayed-commit mode with random
	// store-buffer drains (random mode only), exposing TSO buffering —
	// stores that were issued but never reached the cache before the
	// crash.
	StoreBuffers bool
	// Progress, when non-nil, receives one call per completed execution
	// with its 1-based execution index. Even with Workers > 1 the calls
	// are serialized through the result collector: they never run
	// concurrently and the indices are strictly increasing (1, 2, …),
	// regardless of the order worker goroutines finish in.
	Progress func(exec int)
	// FreshWorlds builds a new World for every execution instead of
	// resetting and reusing a per-worker one. Results are bit-identical
	// either way (World.Reset restores the initial state exactly, and the
	// reuse property test asserts it); the option exists for that test
	// and for debugging suspected reuse bugs.
	FreshWorlds bool
	// AfterExecution, when non-nil, receives each execution's world
	// after its phases complete, letting post-hoc analyses (the baseline
	// checkers of §6.4) inspect the trace. Like Progress it is
	// serialized through the collector and called in execution-index
	// order. In ModelCheck mode setting it forces the serial engine
	// (Workers is ignored and the state cache is off), since the
	// parallel engine does not retain worlds.
	AfterExecution func(*pmem.World)

	// --- failure containment ---

	// Context, when non-nil, cancels the run early: once it is done, no
	// new executions start, in-flight workers drain, and Run returns a
	// partial Result (Partial, StopReason, Checkpoint). Executions
	// already running are never interrupted mid-flight — the collected
	// stream stays a prefix of the uninterrupted run's.
	Context context.Context
	// Deadline bounds the run's wall-clock time (0: none) with the same
	// graceful-degradation semantics as Context cancellation.
	Deadline time.Duration
	// StepTimeout bounds one execution's wall-clock time (0: none). An
	// execution that exceeds it is aborted via the world's per-operation
	// watchdog and counted in Result.Aborted, exactly like an op-budget
	// abort. It keeps a single stuck schedule (a spin loop whose lock
	// holder crashed, a pathological interleaving) from starving the
	// campaign; because it is timing-dependent, a tripped timeout can
	// make results differ from an untimed run — leave it 0 when
	// bit-reproducibility matters more than liveness.
	StepTimeout time.Duration
	// InjectFault is the chaos-testing hook: when non-nil it is asked,
	// per execution, for a fault plan the engine then deliberately
	// triggers from inside the execution (panics through the pmem/px86
	// stack, slow steps). The argument is a deterministic schedule
	// ordinal — the execution index in Random mode, the work-unit-local
	// execution ordinal in ModelCheck mode — so injection is independent
	// of worker count. Arming it disables demand-driven work stealing
	// (donations would make unit-local ordinals depend on scheduler
	// timing); combine it with ForceSteals to chaos-test steal-heavy
	// schedules, whose trail-driven unit tree keeps ordinals
	// deterministic. Production runs leave it nil.
	InjectFault func(ordinal int) Fault
	// --- observability ---

	// Obs carries the campaign's observability sinks (metrics registry
	// and span tracer, internal/obs). nil — or an Observer whose sinks
	// are nil — disables all instrumentation: every instrument resolves
	// to a nil-receiver no-op and the hot path is allocation-identical
	// to a run without observability. Run propagates the observer to the
	// persistency backend via Model.Obs unless the caller set one.
	Obs *obs.Observer
	// Provenance makes the checker capture a structured obs.Provenance
	// sub-trace for every distinct violation (the racing store, its
	// flush/fence context, the crash point, the post-crash read). It
	// costs a few allocations per distinct violation and nothing on the
	// per-operation path; leave it off for benchmarks.
	Provenance bool

	// em, tr, and fr are the instrument bundle, tracer, and flight
	// recorder resolved once in Run from Obs; all-nil (no-op) when
	// observability is off.
	em obs.ExploreMetrics
	tr *obs.Tracer
	fr *obs.FlightRecorder

	// Resume continues a previously checkpointed partial run: the
	// engines skip (without re-executing) everything the checkpoint
	// already collected and continue the canonical stream from the cut.
	// Callers should Validate the checkpoint first. The resumed Result's
	// counts (Executions, Aborted, Quarantined, cache stats) are
	// cumulative; its Violations contain only bugs first found after the
	// cut — merge key sets with the partial run's for the campaign total.
	Resume *Checkpoint
}

// applyWindowConstraints forces off every feature a bounded window is
// incompatible with. Bounded-window mode releases trace history behind
// the retirement frontier, so every feature whose keys or replays reach
// into retired state must go: crash-boundary snapshots (Trace.Mark is
// unavailable once stores retire), DPOR and the post-crash state cache
// (their keys hash committed history and persistent images whose
// retired entries are gone). Verdicts are unaffected — the windowed-
// equivalence suite proves the violation sets and final heaps
// identical. Every engine entry point (Run, RunUnit, NewAssembler)
// calls this, so window semantics are uniform across in-process,
// worker, and supervisor paths.
func (o *Options) applyWindowConstraints() {
	if o.Model.Window > 0 {
		o.DisableSnapshots = true
		o.DisableDPOR = true
		o.NoStateCache = true
	}
}

// ParseReduction maps a -reduction flag value onto the two disable
// options, the one vocabulary both CLIs share:
//
//	all        snapshots and DPOR on (the default)
//	snapshots  snapshots only (DPOR off)
//	dpor       DPOR only (snapshots off)
//	none       both off — the pre-reduction engine, for A/B timing
func ParseReduction(name string) (disableSnapshots, disableDPOR bool, err error) {
	switch name {
	case "", "all":
		return false, false, nil
	case "snapshots":
		return false, true, nil
	case "dpor":
		return true, false, nil
	case "none":
		return true, true, nil
	default:
		return false, false, fmt.Errorf("unknown reduction %q (want all, snapshots, dpor, or none)", name)
	}
}

// Fault is one execution's chaos-injection plan (Options.InjectFault).
// The zero Fault injects nothing.
type Fault struct {
	// PanicAtOp, when positive, panics (with an internal injectedFault
	// value, classified as "injected-fault") when the execution reaches
	// that operation count — exercising the panic-isolation path from
	// inside the engine.
	PanicAtOp int
	// DelayAtOp, when positive, sleeps Delay once when the execution
	// reaches that operation count — exercising StepTimeout.
	DelayAtOp int
	Delay     time.Duration
}

// Result summarizes an exploration run.
type Result struct {
	Program    string
	Mode       Mode
	Executions int
	// ExecutionsToAllBugs is the 1-based index of the execution that
	// found the last new violation (0 when none were found) — the
	// "# total executions" column of Table 3.
	ExecutionsToAllBugs int
	Aborted             int
	Elapsed             time.Duration
	// Workers is the resolved worker count the run used.
	Workers int
	// WorkerTime is the summed per-execution wall-clock time across all
	// workers. PerExecution divides by it when set, so per-execution
	// cost (the Table 3 methodology) stays meaningful under
	// parallelism: each execution is still timed on its own worker.
	WorkerTime time.Duration
	// CacheHits and CacheMisses count post-crash state-cache lookups in
	// ModelCheck mode: a hit is a crash point whose surviving
	// persistent image was already explored, pruning its entire
	// post-crash enumeration.
	CacheHits, CacheMisses int
	// SnapshotRestores counts executions the ModelCheck engine resumed
	// from a crash-boundary world snapshot instead of replaying from the
	// program start. It is a throughput diagnostic: results are
	// bit-identical with snapshots disabled.
	SnapshotRestores int
	// Steals counts work units the ModelCheck engine's work-stealing
	// scheduler carved off busy workers' decision trails and handed to
	// idle ones. Like SnapshotRestores it is a scheduling diagnostic —
	// the assembled stream is bit-identical at any steal count — and is
	// excluded from the determinism contract.
	Steals int
	// DPORPruned counts deeper (phase >= 1) crash states the ModelCheck
	// engine pruned by partial-order reduction: their complete post-crash
	// state matched one already enumerated in the same subtree. Unlike
	// SnapshotRestores this reduces Executions; the violation key set is
	// unaffected. Both are 0 in Random mode and in the serial
	// (AfterExecution) engine.
	DPORPruned int
	// Window is the bounded-window size the run used
	// (persist.Config.Window); 0 = classic unbounded traces.
	Window int
	// Ops sums the scheduled memory operations across collected
	// executions — the denominator long-workload throughput reporting
	// wants (executions alone make a 1M-op run look like one unit of
	// work).
	Ops int64
	// Retirements, RetiredStores, and RetiredEvents sum the
	// bounded-window sweeps' work across collected executions; all zero
	// when Window == 0. Like SnapshotRestores they are diagnostics,
	// excluded from the determinism contract (violations, executions,
	// and final heaps are identical at any window).
	Retirements   int64
	RetiredStores int64
	RetiredEvents int64
	// PinnedRootsMax is the largest pin closure (stores kept live) any
	// collected execution's retirement sweep marked — deterministic,
	// since the closure depends only on the execution's trace.
	// SweepNanos sums the sweeps' wall time across collected executions
	// and is a timing diagnostic. Both zero when Window == 0.
	PinnedRootsMax int64
	SweepNanos     int64
	// Violations are deduplicated across executions by bug identity
	// (store-site pair + diagnosis kind), in first-found order.
	Violations []*core.Violation

	// Partial marks a run that stopped before exhausting its work: a
	// deadline or cancellation tripped, or (ModelCheck mode) the
	// Executions budget bound before the frontier was exhausted. A
	// partial result is still sound — every reported violation is real —
	// it just proves nothing about the unexplored remainder.
	Partial bool
	// StopReason says why a stop tripped: "deadline", "canceled", or
	// "exec-budget". It is recorded first-writer-wins (noteStop) and can
	// be set on a *complete* run too: when a cancellation lands in the
	// same tick the frontier drains, Partial stays false but the reason
	// is still reported, so a SIGINT is never silently swallowed.
	StopReason string
	// FrontierRemaining counts known-unexplored work at the stop:
	// executions not run in Random mode; in ModelCheck mode, DFS work
	// units with uncollected work — in-flight units the stop interrupted,
	// stolen units still parked in the scheduler queue, and units whose
	// finished work fell canonically after the cut (a resume re-derives
	// it). It is exact even when a stop lands mid-steal.
	FrontierRemaining int
	// Quarantined counts executions whose engine panic was contained
	// (see ExecErrors); they contribute no violations.
	Quarantined int
	// ExecErrors are the structured records of contained panics, in
	// collection order, capped at execErrorCap entries (Quarantined
	// keeps the true count).
	ExecErrors []*ExecError
	// Checkpoint carries the resume state of a partial run stopped by a
	// deadline or cancellation; nil for complete runs and for budget
	// truncation (re-run with a larger budget instead).
	Checkpoint *Checkpoint

	// --- process isolation (internal/dispatch) ---
	// These fields are zero for in-process runs; the dispatch supervisor
	// fills them when the campaign ran in worker processes.

	// Isolated marks a Result assembled by the dispatch supervisor from
	// worker-process unit results.
	Isolated bool
	// Redeliveries counts work units re-dispatched after a worker died
	// or its lease expired; WorkerRestarts counts worker processes
	// respawned after such a failure.
	Redeliveries   int
	WorkerRestarts int
	// PoisonUnits are work units quarantined after exhausting their
	// retry budget: the campaign's canonical stream is cut at the first
	// of them (Partial, StopReason "poison") and the records carry the
	// provenance a bug report needs — the same discipline as ExecErrors.
	PoisonUnits []*PoisonUnit
	// Degraded marks a supervised campaign that fell back to in-process
	// execution after repeated supervisor-level trouble (fork/exec
	// failing). Results are still bit-identical — the same unit code runs
	// either way — but the isolation guarantee was lost.
	Degraded bool
}

// PerExecution returns the mean wall-clock time per execution, measured
// on the worker that ran it.
func (r *Result) PerExecution() time.Duration {
	if r.Executions == 0 {
		return 0
	}
	if r.WorkerTime > 0 {
		return r.WorkerTime / time.Duration(r.Executions)
	}
	return r.Elapsed / time.Duration(r.Executions)
}

// ViolationKeys returns the sorted bug identities, for stable assertions.
func (r *Result) ViolationKeys() []string {
	return core.KeySet(r.Violations)
}

// String renders a short human-readable summary.
func (r *Result) String() string {
	s := fmt.Sprintf("%s [%s]: %d executions (%d aborted), %d violations, %s total",
		r.Program, r.Mode, r.Executions, r.Aborted, len(r.Violations), r.Elapsed)
	if r.Quarantined > 0 {
		s += fmt.Sprintf(", %d quarantined", r.Quarantined)
	}
	if r.Partial {
		s += fmt.Sprintf(" [PARTIAL: %s]", r.StopReason)
	}
	return s
}

// stopper is the run-wide graceful-degradation switch. It has no
// goroutines: stopped() consults the context and the deadline directly,
// so a stop is observed deterministically at every check site (workers
// check between executions, sub-DFS loops between iterations).
//
// The first observed cause is latched (atomically — workers race to
// observe it), so why() reports the reason that actually stopped the
// run even if a second cause arrives later: a campaign whose wall-clock
// deadline trips and is then SIGINT-ed while draining reports
// "deadline", not "canceled", and vice versa.
type stopper struct {
	ctx      context.Context
	deadline time.Time // zero: none
	// reason is the latched stop cause: stopNone until the first
	// stopped() call that observes one.
	reason atomic.Int32
	em     obs.ExploreMetrics
	fr     *obs.FlightRecorder
}

const (
	stopNone int32 = iota
	stopDeadline
	stopCanceled
)

func newStopper(opt *Options) *stopper {
	s := &stopper{ctx: opt.Context, em: opt.em, fr: opt.fr}
	if s.ctx == nil {
		s.ctx = context.Background()
	}
	if opt.Deadline > 0 {
		s.deadline = time.Now().Add(opt.Deadline)
	}
	return s
}

// stopped reports whether the run should stop claiming new work,
// latching the cause on the first trip.
func (s *stopper) stopped() bool {
	if s.reason.Load() != stopNone {
		return true
	}
	if err := s.ctx.Err(); err != nil {
		if err == context.DeadlineExceeded {
			s.latch(stopDeadline)
		} else {
			s.latch(stopCanceled)
		}
		return true
	}
	if !s.deadline.IsZero() && !time.Now().Before(s.deadline) {
		s.latch(stopDeadline)
		return true
	}
	return false
}

// latch records the first observed stop cause; losers of the CAS keep
// the winner's reason. The stop counter increments exactly once.
func (s *stopper) latch(code int32) {
	if s.reason.CompareAndSwap(stopNone, code) {
		switch code {
		case stopDeadline:
			s.em.StopDeadline.Inc()
			s.fr.Record("explore", "stop", -1, "deadline")
		case stopCanceled:
			s.em.StopCanceled.Inc()
			s.fr.Record("explore", "stop", -1, "canceled")
		}
	}
}

// why names the latched stop reason for Result.StopReason. A stop can
// be observed without a stopped() call — workers select on done() and
// bail — so an unlatched reason is resolved from the live sources here.
func (s *stopper) why() string {
	if s.reason.Load() == stopNone {
		s.stopped()
	}
	if s.reason.Load() == stopCanceled {
		return "canceled"
	}
	return "deadline"
}

// done is a channel view of the context for blocked workers; the
// wall-clock deadline is only checked at the polling sites, which every
// worker reaches between executions.
func (s *stopper) done() <-chan struct{} { return s.ctx.Done() }

// Run explores the program under the given options.
func Run(p Program, opt Options) *Result {
	if opt.Executions == 0 {
		opt.Executions = 1000
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.NumCPU()
	}
	// Resolve the instrument bundle and tracer once; with observability
	// off both are no-op zeros. The observer rides into the backend via
	// the model config so persist counters share the campaign registry.
	opt.em = obs.ExploreInstruments(opt.Obs.Reg())
	opt.tr = opt.Obs.Trace()
	opt.fr = opt.Obs.Recorder()
	if opt.Model.Obs == nil {
		opt.Model.Obs = opt.Obs
	}
	opt.applyWindowConstraints()
	st := newStopper(&opt)
	var res *Result
	switch opt.Mode {
	case ModelCheck:
		res = runModelCheck(p, opt, st)
	default:
		res = runRandom(p, opt, st)
	}
	res.Window = opt.Model.Window
	return res
}

// primeFromCheckpoint folds a resumed checkpoint's already-collected
// totals into the result and seeds the cross-execution dedup set.
func primeFromCheckpoint(res *Result, seen map[string]bool, ck *Checkpoint) {
	res.Executions = ck.Collected
	res.Aborted = ck.Aborted
	res.Quarantined = ck.Quarantined
	for _, k := range ck.ViolationKeys {
		seen[k] = true
	}
}

// noteStop records a stop reason first-writer-wins: the cause that
// actually stopped the run is never overwritten by a later, different
// one, and a reason observed at the moment the frontier drained is kept
// even though the run counts as complete.
func (r *Result) noteStop(reason string) {
	if r.StopReason == "" {
		r.StopReason = reason
	}
}

// mergeViolations folds an execution's violations into the result.
func (r *Result) mergeViolations(seen map[string]bool, vs []*core.Violation, execIndex int) {
	for _, v := range vs {
		if !seen[v.Key()] {
			seen[v.Key()] = true
			r.Violations = append(r.Violations, v)
			r.ExecutionsToAllBugs = execIndex
		}
	}
}

// runPhases executes the program's phases in one world, injecting
// crashes per crashTargets (one entry per non-final phase; a negative
// target crashes at the end of the phase without injection). It reports
// whether the execution aborted on its op budget, and for each non-final
// phase whether the crash injection actually fired (false means the
// phase ran to completion and crashed at its end).
//
// onCrash, when non-nil, is invoked after each crash (machine already
// crashed, sealed image in place) with the phase index and whether the
// injection fired; returning false abandons the remaining phases — the
// state cache uses this to prune continuations it has already explored.
// pruned reports whether that happened.
//
// Any panic other than pmem.AbortSignal is contained: runPhases returns
// it as a structured execErr instead of unwinding the worker, leaving w
// in an undefined state — the caller must discard the world and
// quarantine the schedule (see execerror.go).
//
// tr/tid attach a crash-resolution span per injected crash to the
// worker's trace timeline; a nil tracer costs two nil checks and reads
// no clock.
func runPhases(p Program, w *pmem.World, crashTargets []int, onCrash func(phase int, fired bool) bool, tr *obs.Tracer, tid int) (aborted bool, injected []bool, pruned bool, execErr *ExecError) {
	injected = make([]bool, len(crashTargets))
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(pmem.AbortSignal); ok {
				aborted = true
				return
			}
			execErr = captureExecError(r)
		}
	}()
	phases := p.Phases()
	for i, phase := range phases {
		last := i == len(phases)-1
		if last {
			w.SetCrashTarget(-1)
		} else {
			w.SetCrashTarget(crashTargets[i])
		}
		crashed := w.RunPhase(phase)
		if !last {
			injected[i] = crashed
			cs := tr.Now()
			w.Crash()
			tr.CompleteSince(tid, "explore", "crash-resolution", cs, -1)
			if onCrash != nil && !onCrash(i, crashed) {
				return false, injected, true, nil
			}
		}
	}
	return false, injected, false, nil
}

// runPhasesMC is the model-check-mode phase driver: it executes
// phases[startPhase:] in w, consuming each non-final phase's crash-
// target decision from ctl immediately before that phase runs. Lazy
// consumption keeps the decision trail in decision-*use* order — a
// decision at trail index i influences the execution only from the
// point it is consumed — which is the invariant snapshot validity is
// defined over (pool.go) and means phases never reached leave no trail
// entries at all.
//
// Domain discovery is inlined: a target decision whose injection did
// not fire is closed at target+1 as soon as its phase completes
// ("crash after the last operation", §6.1). On an op-budget abort or a
// contained panic the in-flight phase's open target decision is closed
// the same way, so sibling targets — which would deterministically
// replay the same abort or panic before crashing — are never
// enumerated separately (the pruning the upfront-consumption driver
// achieved by closing all unreached domains).
//
// onCrash matches runPhases: invoked after each crash with the sealed
// image in place; returning false abandons the remaining phases
// (pruned). Panics other than pmem.AbortSignal are contained into
// execErr; the caller must discard the world.
func runPhasesMC(phases []func(*pmem.World), w *pmem.World, ctl *controller, startPhase int, onCrash func(phase int, fired bool) bool, tr *obs.Tracer, tid int) (aborted bool, pruned bool, execErr *ExecError) {
	curDec, curTarget := -1, 0
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(pmem.AbortSignal); ok {
				aborted = true
			} else {
				execErr = captureExecError(r)
			}
			if curDec >= 0 && ctl.trail[curDec].domain < 0 {
				ctl.closeCurrent(curDec, curTarget+1)
			}
		}
	}()
	for i := startPhase; i < len(phases); i++ {
		last := i == len(phases)-1
		if last {
			curDec = -1
			w.SetCrashTarget(-1)
		} else {
			curDec = ctl.pos
			curTarget = ctl.next(-1)
			w.SetCrashTarget(curTarget)
		}
		crashed := w.RunPhase(phases[i])
		if last {
			break
		}
		if !crashed && ctl.trail[curDec].domain < 0 {
			ctl.closeCurrent(curDec, curTarget+1)
		}
		curDec = -1
		cs := tr.Now()
		w.Crash()
		tr.CompleteSince(tid, "explore", "crash-resolution", cs, -1)
		if onCrash != nil && !onCrash(i, crashed) {
			return false, true, nil
		}
	}
	return false, false, nil
}

// hardWatchdogFactor scales StepTimeout into the hard watchdog bound:
// an execution still running this many timeouts past its soft abort is
// stalled — the AbortSignal is evidently being swallowed (a spawned
// thread's unwinder, a port's own recover) — and is quarantined through
// the ExecError path instead of aborted.
const hardWatchdogFactor = 4

// installProbe arms w's watchdog for one execution: the chaos fault
// plan (if any) and the step timeout. The probe runs before every
// memory operation and, via pmem.CountInterpStep's throttle, every 1024
// interpreted statements — so a loop that issues no operations still
// trips the timeout. When neither watchdog applies the probe stays nil
// and the hot path pays nothing.
//
// The timeout is two-tier: past StepTimeout the execution is aborted
// (pmem.AbortSignal, counted in Result.Aborted); past
// hardWatchdogFactor×StepTimeout — reachable only when the abort didn't
// terminate it — a stallFault panic quarantines the schedule as an
// ExecError of kind "stall".
func installProbe(w *pmem.World, opt *Options, ordinal int) {
	var fault Fault
	if opt.InjectFault != nil {
		fault = opt.InjectFault(ordinal)
	}
	if fault == (Fault{}) && opt.StepTimeout <= 0 {
		return
	}
	var start time.Time
	if opt.StepTimeout > 0 {
		start = time.Now()
	}
	delayed := false
	softFired := false
	w.SetProbe(func(ops int) {
		if fault.PanicAtOp > 0 && ops >= fault.PanicAtOp {
			panic(injectedFault{exec: ordinal, op: ops})
		}
		if fault.DelayAtOp > 0 && !delayed && ops >= fault.DelayAtOp {
			delayed = true
			time.Sleep(fault.Delay)
		}
		if opt.StepTimeout > 0 {
			since := time.Since(start)
			// The hard tier arms only after the soft abort was raised: a
			// probe that runs after softFired means something swallowed
			// the AbortSignal and the execution is still going. A single
			// long gap between probes (a slow op, a chaos delay) is not a
			// stall — it aborts like any other timeout.
			if softFired && since > hardWatchdogFactor*opt.StepTimeout {
				panic(stallFault{elapsed: since, limit: opt.StepTimeout})
			}
			if since > opt.StepTimeout {
				softFired = true
				panic(pmem.AbortSignal{})
			}
		}
	})
}

// execOutcome is one execution's contribution to the result, produced
// on a worker and folded in by the collector in index order.
type execOutcome struct {
	index      int // 0-based execution index
	aborted    bool
	violations []*core.Violation
	// world is retained only when AfterExecution needs it.
	world   *pmem.World
	elapsed time.Duration
	// execErr marks a quarantined execution (contained panic): no
	// violations, no world.
	execErr *ExecError
	// ops and the retirement counts carry the execution's world stats
	// into the result sums (noteWorldStats); zero for quarantined
	// executions, whose world is discarded unread.
	ops           int64
	retirements   int64
	retiredStores int64
	retiredEvents int64
	pinnedRoots   int64
	sweepNanos    int64
}

// noteWorldStats records the execution's scheduled-operation count and
// bounded-window retirement totals from the world that ran it.
func (o *execOutcome) noteWorldStats(w *pmem.World) {
	o.ops = int64(w.Ops())
	rs := w.M.Trace().Retired()
	o.retirements = int64(rs.Retirements)
	o.retiredStores = int64(rs.RetiredStores)
	o.retiredEvents = int64(rs.RetiredEvents)
	o.pinnedRoots = int64(rs.MaxPinnedRoots)
	o.sweepNanos = w.SweepNanos()
}

// count classifies the outcome into exactly one of the completion
// counters (quarantined > aborted > completed) and observes the
// execution-duration histogram. It runs at the execution site — every
// execution that ran is counted, even one the ModelCheck assembly later
// truncates at the budget — keeping the invariant
// started == completed + aborted + quarantined (+ pruned, mc mode).
func (o *execOutcome) count(em *obs.ExploreMetrics, fr *obs.FlightRecorder) {
	switch {
	case o.execErr != nil:
		em.Quarantined.Inc()
		fr.Record("explore", "quarantine", -1, o.execErr.Kind)
	case o.aborted:
		em.Aborted.Inc()
	default:
		em.Completed.Inc()
	}
	em.ExecNanos.Observe(int64(o.elapsed))
}

// collect folds one execution's outcome into the result. Callers must
// invoke it in strictly increasing index order (the collector contract
// behind Progress and AfterExecution).
//
// Metric counters (started/completed/aborted/quarantined) are emitted
// at the execution sites, not here: the ModelCheck engine collects at
// assembly time, possibly truncating at the budget, and the counters
// must cover every execution that actually ran. Only the random-mode
// frontier gauge lives here, because "remaining executions" is a
// collector-order notion.
func (r *Result) collect(o execOutcome, seen map[string]bool, opt *Options) {
	if o.aborted {
		r.Aborted++
	}
	if o.execErr != nil {
		r.Quarantined++
		if len(r.ExecErrors) < execErrorCap {
			r.ExecErrors = append(r.ExecErrors, o.execErr)
		}
	}
	r.mergeViolations(seen, o.violations, o.index+1)
	r.Executions++
	r.WorkerTime += o.elapsed
	r.Ops += o.ops
	r.Retirements += o.retirements
	r.RetiredStores += o.retiredStores
	r.RetiredEvents += o.retiredEvents
	if o.pinnedRoots > r.PinnedRootsMax {
		r.PinnedRootsMax = o.pinnedRoots
	}
	r.SweepNanos += o.sweepNanos
	if opt.Mode == Random {
		opt.em.FrontierDepth.Set(int64(opt.Executions - r.Executions))
	}
	if opt.AfterExecution != nil && o.world != nil {
		opt.AfterExecution(o.world)
	}
	if opt.Progress != nil {
		opt.Progress(o.index + 1)
	}
}

// randomPlan is the per-run immutable context shared by all random-mode
// workers: the pilot's crash-point ranges and the derived machine
// configuration. Everything per-execution lives in the World.
type randomPlan struct {
	pilotCounts []int
	chooser     pmem.ReadChooser
	model       persist.Config
	drainPct    int
	keepWorld   bool
	fresh       bool
}

// planRandom runs the pilot execution and fixes the per-run knobs.
func planRandom(p Program, opt *Options) *randomPlan {
	numPre := len(p.Phases()) - 1
	// Pilot execution: run crash-free to size the crash-point ranges.
	pilotCounts := make([]int, numPre)
	// The pilot is sizing scaffolding, not exploration: strip the
	// observer so its ops never land in the campaign's counters. (A
	// supervised campaign runs one pilot per unit; fleet-aggregated
	// counters must still equal the in-process run's, which pilots once.)
	pilotModel := opt.Model
	pilotModel.Obs = nil
	pilot := pmem.NewWorld(pmem.Config{Model: pilotModel, Seed: opt.Seed, OpLimit: opt.OpLimit})
	pilot.Checker.SetEnabled(false)
	countingPilot(p, pilot, pilotCounts)

	chooser := pmem.ChooseAvoidingViolations(pmem.ChooseRandom)
	if opt.NoSteering {
		chooser = pmem.ChooseRandom
	}
	model := opt.Model
	drainPct := 0
	if opt.StoreBuffers {
		model.DelayedCommit = true
		drainPct = 25
	}
	return &randomPlan{
		pilotCounts: pilotCounts,
		chooser:     chooser,
		model:       model,
		drainPct:    drainPct,
		keepWorld:   opt.AfterExecution != nil,
		// A world handed to AfterExecution escapes the worker, so it
		// cannot be reused either.
		fresh: opt.FreshWorlds || opt.AfterExecution != nil,
	}
}

// workerState is one worker's reusable per-execution scratch: the world
// (machine, trace, checker, heap, RNG — reset between executions), the
// crash-target buffer, and the worker's observability identity (trace
// timeline tid and per-worker instrument bundle; zero when off).
type workerState struct {
	w       *pmem.World
	targets []int
	tid     int // 1-based trace timeline id
	tr      *obs.Tracer
	wm      obs.WorkerMetrics
}

func (ws *workerState) targetBuf(n int) []int {
	if cap(ws.targets) < n {
		ws.targets = make([]int, n)
	}
	return ws.targets[:n]
}

// randomExecution runs execution exec of a random-mode run. The seed is
// derived from the execution index alone, so the outcome is independent
// of which worker runs it and of every other execution.
func randomExecution(p Program, opt *Options, plan *randomPlan, ws *workerState, exec int) execOutcome {
	start := time.Now()
	opt.em.Started.Inc()
	seed := opt.Seed + int64(exec)*2654435761
	w := ws.w
	if w != nil && !plan.fresh {
		w.Reset(seed)
	} else {
		w = pmem.NewWorld(pmem.Config{
			Model:              plan.model,
			Seed:               seed,
			OpLimit:            opt.OpLimit,
			Chooser:            plan.chooser,
			RandomDrainPercent: plan.drainPct,
			Provenance:         opt.Provenance,
		})
	}
	if opt.DisableChecker {
		w.Checker.SetEnabled(false)
	}
	installProbe(w, opt, exec)
	targets := ws.targetBuf(len(plan.pilotCounts))
	for i := range targets {
		// Uniform over [0, count]: before each fence-like op, or
		// past the end (crash after the last operation).
		targets[i] = w.Rand().Intn(plan.pilotCounts[i] + 1)
	}
	aborted, _, _, execErr := runPhases(p, w, targets, nil, ws.tr, ws.tid)
	o := execOutcome{
		index:   exec,
		aborted: aborted,
		elapsed: time.Since(start),
		execErr: execErr,
	}
	o.count(&opt.em, opt.fr)
	ws.tr.Complete(ws.tid, "explore", "execution", start, o.elapsed, int64(exec))
	if execErr != nil {
		// The panic left the world in an undefined state: discard it
		// (never reuse, never expose) and drop its violations.
		ws.w = nil
		execErr.Exec = exec
		execErr.Seed = seed
		execErr.Program = p.Name()
		execErr.Mode = Random
		return o
	}
	o.violations = w.Checker.Violations()
	o.noteWorldStats(w)
	if plan.keepWorld {
		o.world = w
	} else if !plan.fresh {
		ws.w = w
	}
	return o
}

// keysOf returns the sorted contents of a dedup set — the cumulative
// violation keys a checkpoint must carry.
func keysOf(seen map[string]bool) []string {
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// runRandom implements random search mode: serial below two workers,
// fan-out through the ordered collector otherwise (pool.go). cursor is
// the canonical stream position: every execution below it has been
// collected (in this run or, via Resume, a previous one).
func runRandom(p Program, opt Options, st *stopper) *Result {
	res := &Result{Program: p.Name(), Mode: Random, Workers: opt.Workers}
	seen := make(map[string]bool)
	start := time.Now()
	startExec := 0
	if ck := opt.Resume; ck != nil {
		primeFromCheckpoint(res, seen, ck)
		startExec = ck.Collected
	}
	plan := planRandom(p, &opt)
	cursor := startExec
	if opt.Workers > 1 {
		cursor = runRandomParallel(p, &opt, plan, res, seen, st, startExec)
	} else {
		ws := &workerState{tid: 1, tr: opt.tr, wm: obs.WorkerInstruments(opt.Obs.Reg(), 1)}
		ws.tr.NameThread(ws.tid, "worker-1")
		for cursor < opt.Executions && !st.stopped() {
			o := randomExecution(p, &opt, plan, ws, cursor)
			ws.wm.BusyNanos.Add(int64(o.elapsed))
			ws.wm.Dispatches.Inc()
			res.collect(o, seen, &opt)
			cursor++
		}
	}
	if cursor < opt.Executions {
		res.Partial = true
		res.noteStop(st.why())
		res.FrontierRemaining = opt.Executions - cursor
		res.Checkpoint = &Checkpoint{
			Version:       checkpointVersion,
			Program:       res.Program,
			Mode:          Random.String(),
			Seed:          opt.Seed,
			Model:         resolveModel(opt.Model.Name),
			Window:        opt.Model.Window,
			Collected:     cursor,
			Aborted:       res.Aborted,
			Quarantined:   res.Quarantined,
			ViolationKeys: keysOf(seen),
		}
	} else if st.stopped() {
		// The stop landed in the same tick the frontier drained (a SIGINT
		// racing the last execution): the run is complete, but the reason
		// is still recorded so the report never swallows it.
		res.noteStop(st.why())
	}
	res.Elapsed = time.Since(start)
	return res
}

// countingPilot runs the program crash-free and records how many
// fence-like operations each non-final phase performs.
func countingPilot(p Program, w *pmem.World, counts []int) {
	defer func() {
		// An aborted pilot still yields usable counts.
		if r := recover(); r != nil {
			if _, ok := r.(pmem.AbortSignal); !ok {
				panic(r)
			}
		}
	}()
	phases := p.Phases()
	for i, phase := range phases {
		w.SetCrashTarget(-1)
		w.RunPhase(phase)
		if i < len(counts) {
			counts[i] = w.FenceOps()
		}
		if i < len(phases)-1 {
			w.Crash()
		}
	}
}

// --- model checking mode: DFS over decision points ---

// decision is one recorded choice in the DFS trail. domain < 0 marks an
// open-ended crash-target decision whose range is discovered when a run
// no longer crashes.
type decision struct {
	val    int
	domain int
}

// controller replays a decision trail and extends it at new decision
// points, always choosing the first alternative.
type controller struct {
	trail []decision
	pos   int
}

func (c *controller) next(domain int) int {
	if c.pos < len(c.trail) {
		d := c.trail[c.pos]
		c.pos++
		return d.val
	}
	c.trail = append(c.trail, decision{val: 0, domain: domain})
	c.pos++
	return 0
}

// closeCurrent marks the most recently consumed decision's domain (used
// when a crash-target decision turns out to be past the phase's end).
func (c *controller) closeCurrent(idx int, domain int) {
	c.trail[idx].domain = domain
}

// backtrack advances the trail to the next unexplored branch, returning
// false when the search space is exhausted.
func (c *controller) backtrack() bool {
	for len(c.trail) > 0 {
		last := &c.trail[len(c.trail)-1]
		if last.domain < 0 || last.val+1 < last.domain {
			last.val++
			c.pos = 0
			return true
		}
		c.trail = c.trail[:len(c.trail)-1]
	}
	return false
}

// mcWorld builds a fresh model-checking world whose read choices replay
// and extend the controller's decision trail.
func mcWorld(opt *Options, ctl *controller) *pmem.World {
	w := pmem.NewWorld(pmem.Config{
		Model:      opt.Model,
		Seed:       0,
		OpLimit:    opt.OpLimit,
		Provenance: opt.Provenance,
		Chooser: func(_ *pmem.World, _ memmodel.ThreadID, _ memmodel.Addr, cands []persist.Candidate, _ trace.LocID) persist.Candidate {
			return cands[ctl.next(len(cands))]
		},
	})
	if opt.DisableChecker {
		w.Checker.SetEnabled(false)
	}
	return w
}

// trailValues flattens a decision trail into the chosen values — the
// reproduction prefix an ExecError records.
func trailValues(trail []decision) []int {
	vals := make([]int, len(trail))
	for i, d := range trail {
		vals[i] = d.val
	}
	return vals
}

// runModelCheck implements the exhaustive mode. The work runs on
// Options.Workers scheduler workers draining a queue of DFS work units
// — one root unit per crash-target subtree, plus any units busy
// workers carve off their trails for idle peers (work stealing,
// pool.go); an AfterExecution callback forces the serial engine, which
// retains and hands over each world.
func runModelCheck(p Program, opt Options, st *stopper) *Result {
	if opt.AfterExecution != nil {
		return runModelCheckSerial(p, opt, st)
	}
	return newMCEngine(p, &opt, st).run()
}

// runModelCheckSerial is the single-goroutine DFS: one controller walks
// the whole decision tree, worlds are handed to AfterExecution as they
// complete, and the state cache is off (every execution is observable).
// Snapshots and DPOR are off too — every world escapes to the callback,
// so none can be reused, and a reduction that skips executions would
// hide them from the post-hoc analysis. The decision order (lazy
// crash-target consumption, runPhasesMC) matches the parallel engine,
// so both enumerate the same canonical stream. A stop yields a Partial
// result without a checkpoint (this engine has no canonical subtree
// cut; use the parallel engine for resumable campaigns). Chaos ordinals
// here are global execution indices.
func runModelCheckSerial(p Program, opt Options, st *stopper) *Result {
	res := &Result{Program: p.Name(), Mode: ModelCheck, Workers: 1}
	seen := make(map[string]bool)
	start := time.Now()
	ctl := &controller{}

	for {
		if st.stopped() {
			res.Partial = true
			res.noteStop(st.why())
			break
		}
		ctl.pos = 0
		execStart := time.Now()
		opt.em.Started.Inc()
		w := mcWorld(&opt, ctl)
		installProbe(w, &opt, res.Executions)
		aborted, _, execErr := runPhasesMC(p.Phases(), w, ctl, 0, nil, opt.tr, 0)
		o := execOutcome{
			index:   res.Executions,
			aborted: aborted,
			elapsed: time.Since(execStart),
			execErr: execErr,
		}
		o.count(&opt.em, opt.fr)
		opt.tr.Complete(0, "explore", "execution", execStart, o.elapsed, int64(res.Executions))
		if execErr != nil {
			execErr.Exec = res.Executions
			execErr.Program = res.Program
			execErr.Mode = ModelCheck
			execErr.Prefix = trailValues(ctl.trail)
		} else {
			o.violations = w.Checker.Violations()
			o.noteWorldStats(w)
			o.world = w
		}
		res.collect(o, seen, &opt)
		if !ctl.backtrack() {
			if st.stopped() {
				res.noteStop(st.why())
			}
			break
		}
		if res.Executions >= opt.Executions {
			res.Partial = true
			res.noteStop("exec-budget")
			break
		}
	}
	res.Elapsed = time.Since(start)
	return res
}
