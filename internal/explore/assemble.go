// Ordered assembly of work-unit streams for the dispatch supervisor.
//
// Assembler is the exported twin of the pool engine's assembly walk
// (pool.go asm): units are fed in canonical order — subtree-ordinal
// order for model checking, range order for random mode — and their
// execution streams are folded into a Result with exactly the engine's
// collector semantics: global indices assigned in order, violations
// merged first-found, truncation at the Executions cap, the cut at the
// first unit with uncollected work, and a v3 checkpoint at the cut.
// Because the fold is a pure function of the unit streams, and each
// unit's stream is deterministic in its spec, the assembled Result is
// bit-identical to an in-process run's at any worker count, under any
// kill schedule, and across supervisor restarts.
package explore

import (
	"time"

	"repro/internal/obs"
)

// Assembler folds unit results, fed in canonical order, into a Result.
type Assembler struct {
	opt   Options
	res   *Result
	seen  map[string]bool
	start time.Time
	idx   int // canonical stream cursor

	cut       *UnitSpec // first unit with uncollected work
	truncated bool      // the Executions cap bound before the frontier drained
	frontier  int

	// cache-registration log for checkpoints, frozen at the cut (the
	// engine's checkpoint covers subtrees up to the cut only; later
	// lookups are re-derived on resume).
	cacheKeys        []CacheEntry
	hits, misses     int
	ckKeys           []CacheEntry
	ckHits, ckMisses int
}

// NewAssembler starts an assembly for program under opt (interpreted as
// in Run; opt.Resume primes the cursor, counters, and dedup set exactly
// like a resumed in-process run).
func NewAssembler(program string, opt Options) *Assembler {
	opt.applyWindowConstraints()
	opt.em = obs.ExploreInstruments(opt.Obs.Reg())
	opt.tr = opt.Obs.Trace()
	a := &Assembler{
		opt:   opt,
		res:   &Result{Program: program, Mode: opt.Mode, Workers: opt.Workers, Window: opt.Model.Window},
		seen:  make(map[string]bool),
		start: time.Now(),
	}
	if ck := opt.Resume; ck != nil {
		primeFromCheckpoint(a.res, a.seen, ck)
		a.idx = ck.Collected
		if ck.MC != nil {
			a.cacheKeys = append(a.cacheKeys, ck.MC.CacheKeys...)
			a.hits, a.misses = ck.MC.CacheHits, ck.MC.CacheMisses
		}
	}
	return a
}

// Collected returns the canonical cursor: how many executions have been
// assembled (including a resumed checkpoint's).
func (a *Assembler) Collected() int { return a.idx }

// Truncated reports whether the Executions cap cut collection short.
func (a *Assembler) Truncated() bool { return a.truncated }

// setCut freezes the checkpoint cut at spec (first-setter wins, like
// the engine walk's a.cut).
func (a *Assembler) setCut(spec *UnitSpec) {
	if a.cut != nil {
		return
	}
	a.cut = spec
	a.ckKeys = append([]CacheEntry(nil), a.cacheKeys...)
	a.ckHits, a.ckMisses = a.hits, a.misses
}

// Add folds one unit's completed stream. Units must arrive in canonical
// order; a unit whose result was lost (poisoned, undelivered at a stop)
// is fed to AddLost in its place.
func (a *Assembler) Add(spec UnitSpec, ur *UnitResult) {
	a.res.WorkerTime += time.Duration(ur.WorkNanos)
	a.res.SnapshotRestores += ur.SnapshotRestores
	a.res.DPORPruned += ur.DPORPruned
	if ur.Classified {
		if ur.Class.Keyed {
			a.cacheKeys = append(a.cacheKeys, ur.Class.Key)
			a.misses++
		}
		if ur.Class.Pruned {
			a.hits++
		}
	}
	collected := true
	for _, ex := range ur.Execs {
		if a.cut == nil && a.idx >= a.opt.Executions {
			a.truncated = true
			a.setCut(&spec)
		}
		if a.cut != nil {
			collected = false
			continue
		}
		if ex.Err != nil && ex.Err.Exec < 0 {
			ex.Err.Exec = a.idx
		}
		a.res.collect(execOutcome{
			index: a.idx, aborted: ex.Aborted, violations: ex.Violations, execErr: ex.Err,
			ops: ex.Ops, retirements: ex.Retirements,
			retiredStores: ex.RetiredStores, retiredEvents: ex.RetiredEvents,
			pinnedRoots: ex.PinnedRoots, sweepNanos: ex.SweepNanos,
		}, a.seen, &a.opt)
		a.idx++
	}
	if !ur.Done {
		a.setCut(&spec)
	}
	if !ur.Done || !collected {
		a.frontier++
	}
}

// AddLost records a unit in canonical position whose stream never
// arrived — poisoned, or undelivered when the campaign stopped. It cuts
// the canonical stream (nothing after it may be collected) and counts
// toward the frontier.
func (a *Assembler) AddLost(spec UnitSpec) {
	a.setCut(&spec)
	a.frontier++
}

// Finish closes the assembly. stopReason is the supervisor's stop cause
// ("" for a run whose frontier drained); like the engines, a cut with
// no external stop is an "exec-budget" truncation, and only a
// non-truncated stop yields a checkpoint.
func (a *Assembler) Finish(stopReason string) *Result {
	res := a.res
	res.CacheHits, res.CacheMisses = a.hits, a.misses
	if a.cut != nil {
		res.Partial = true
		if stopReason != "" {
			res.noteStop(stopReason)
		} else {
			res.noteStop("exec-budget")
		}
		res.FrontierRemaining = a.frontier
		if a.opt.Mode == Random {
			res.FrontierRemaining = a.opt.Executions - a.idx
		}
		// Like the engines, only an external stop yields a checkpoint;
		// budget truncation (cap reached, or a unit that bowed out on its
		// dispatch budget) is re-run with a larger budget instead.
		if stopReason != "" && !a.truncated {
			res.Checkpoint = a.checkpoint()
		}
	} else if stopReason != "" {
		res.noteStop(stopReason)
	}
	res.Elapsed = time.Since(a.start)
	return res
}

// checkpoint builds the v3 resume state at the cut. A model-check cut
// unit's spec is already checkpoint-shaped — its MC block names the cut
// subtree, trail, and spawn flag — so the checkpoint is that block plus
// the frozen cache-registration log. A cut unit that classified but
// whose stream was lost re-classifies on resume (its registration is
// deliberately not in the log; re-registering is idempotent for the
// hit/miss pattern of later subtrees).
func (a *Assembler) checkpoint() *Checkpoint {
	ck := &Checkpoint{
		Version:       checkpointVersion,
		Program:       a.res.Program,
		Mode:          a.opt.Mode.String(),
		Seed:          a.opt.Seed,
		Model:         resolveModel(a.opt.Model.Name),
		Window:        a.opt.Model.Window,
		Collected:     a.idx,
		Aborted:       a.res.Aborted,
		Quarantined:   a.res.Quarantined,
		ViolationKeys: keysOf(a.seen),
	}
	if a.opt.Mode == ModelCheck {
		ck.DPOR = !a.opt.DisableDPOR
		mc := &MCCheckpoint{
			CacheKeys:   a.ckKeys,
			CacheHits:   a.ckHits,
			CacheMisses: a.ckMisses,
		}
		if a.cut.MC != nil {
			mc.Subtree = a.cut.MC.Subtree
			mc.Started = a.cut.MC.Started
			mc.Trail = a.cut.MC.Trail
			mc.SpawnNext = a.cut.MC.SpawnNext
			mc.DPORKeys = a.cut.MC.DPORKeys
		}
		ck.MC = mc
	}
	return ck
}
