package explore

import (
	"testing"
	"time"

	"repro/internal/pmem"
)

// hangProgram's final phase spins forever issuing no memory operations —
// the exact blind spot the interp-step probe covers: without
// CountInterpStep the op-count watchdog would never run and the
// execution would hang the engine.
func hangProgram(loop func(*pmem.World)) Program {
	return &FuncProgram{
		ProgName: "hang",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Store(addrX, 1, "x=1")
				th.Flush(addrX, "flush x")
				th.Store(addrY, 1, "y=1")
			},
			loop,
		},
	}
}

// TestWatchdogNoOpLoop: a loop that issues no pmem operations must
// still trip the soft step timeout via the throttled interp-step probe.
func TestWatchdogNoOpLoop(t *testing.T) {
	res := Run(hangProgram(func(w *pmem.World) {
		for {
			w.CountInterpStep()
		}
	}), Options{
		Mode: ModelCheck, Executions: 50, Workers: 1,
		StepTimeout: 10 * time.Millisecond,
	})
	if res.Partial {
		t.Fatalf("timeouts degrade executions, not the run: %s", res)
	}
	if res.Aborted != res.Executions || res.Executions == 0 {
		t.Fatalf("every execution hangs, so every execution should abort: %s", res)
	}
	if res.Quarantined != 0 {
		t.Fatalf("a clean abort is not a stall: %s", res)
	}
}

// TestWatchdogStall: an execution that swallows the soft AbortSignal
// (as a port's own recover or a spawned thread's unwinder can) and
// keeps running must hit the hard tier and be quarantined as a "stall"
// ExecError instead of wedging the engine.
func TestWatchdogStall(t *testing.T) {
	res := Run(hangProgram(func(w *pmem.World) {
		for {
			func() {
				defer func() {
					if r := recover(); r != nil {
						if _, ok := r.(pmem.AbortSignal); !ok {
							panic(r)
						}
					}
				}()
				for {
					w.CountInterpStep()
				}
			}()
		}
	}), Options{
		Mode: ModelCheck, Executions: 50, Workers: 1,
		StepTimeout: 10 * time.Millisecond,
	})
	if res.Partial {
		t.Fatalf("a stall quarantines its schedule, not the run: %s", res)
	}
	if res.Quarantined == 0 {
		t.Fatalf("abort-swallowing executions should be quarantined: %s", res)
	}
	for _, ee := range res.ExecErrors {
		if ee.Kind != "stall" {
			t.Fatalf("kind %q, want stall: %v", ee.Kind, ee)
		}
	}
}

// TestWatchdogSoftFirst: a single long gap between probes (a slow
// operation) is an ordinary abort, never a stall — the hard tier arms
// only after a soft abort was raised and survived.
func TestWatchdogSoftFirst(t *testing.T) {
	res := Run(figure2(), Options{
		Mode: Random, Executions: 3, Seed: 1, Workers: 1,
		StepTimeout: 5 * time.Millisecond,
		InjectFault: func(ordinal int) Fault {
			if ordinal == 0 {
				// 10x the hard bound in one gap.
				return Fault{DelayAtOp: 1, Delay: 200 * time.Millisecond}
			}
			return Fault{}
		},
	})
	if res.Aborted < 1 {
		t.Fatalf("the delayed execution should abort: %s", res)
	}
	if res.Quarantined != 0 {
		t.Fatalf("one long gap is not a stall: %s", res)
	}
}
