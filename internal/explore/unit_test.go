package explore

import (
	"reflect"
	"testing"
)

// driveMC is a minimal in-test supervisor: dispatch subtree units one
// at a time in canonical order, feeding each classification into the
// next unit's spec, and assemble the streams. budgeted mirrors the
// dispatch supervisor's per-unit budgets (Executions minus collected).
func driveMC(t *testing.T, p Program, opt Options, budgeted bool) *Result {
	t.Helper()
	asm := NewAssembler(p.Name(), opt)
	var keys []CacheEntry
	for v, more := 0, true; more; v++ {
		spec := UnitSpec{MC: &MCCheckpoint{Subtree: v, CacheKeys: append([]CacheEntry(nil), keys...)}}
		if budgeted {
			rem := opt.Executions - asm.Collected()
			if asm.Truncated() || rem <= 0 {
				asm.AddLost(spec)
				break
			}
			spec.Budget = rem
		}
		ur, err := RunUnit(p, opt, spec, UnitHooks{})
		if err != nil {
			t.Fatal(err)
		}
		if !ur.Classified {
			t.Fatalf("fresh subtree %d did not classify", v)
		}
		if ur.Class.Keyed {
			keys = append(keys, ur.Class.Key)
		}
		more = ur.Class.InjectionFired
		asm.Add(spec, ur)
	}
	return asm.Finish("")
}

func driveRandom(t *testing.T, p Program, opt Options, chunk int) *Result {
	t.Helper()
	asm := NewAssembler(p.Name(), opt)
	for lo := 0; lo < opt.Executions; lo += chunk {
		hi := lo + chunk
		if hi > opt.Executions {
			hi = opt.Executions
		}
		spec := UnitSpec{Random: &RandomRange{Lo: lo, Hi: hi}}
		ur, err := RunUnit(p, opt, spec, UnitHooks{})
		if err != nil {
			t.Fatal(err)
		}
		asm.Add(spec, ur)
	}
	return asm.Finish("")
}

// sameResult asserts the fields the bit-identical-merge guarantee
// covers.
func sameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Executions != want.Executions || got.Aborted != want.Aborted ||
		got.Quarantined != want.Quarantined || got.Partial != want.Partial ||
		got.StopReason != want.StopReason {
		t.Fatalf("%s: counters diverge:\n got %s\nwant %s", label, got, want)
	}
	if !reflect.DeepEqual(got.ViolationKeys(), want.ViolationKeys()) {
		t.Fatalf("%s: violation keys diverge: %v vs %v", label, got.ViolationKeys(), want.ViolationKeys())
	}
	if got.ExecutionsToAllBugs != want.ExecutionsToAllBugs {
		t.Fatalf("%s: ExecutionsToAllBugs %d, want %d", label, got.ExecutionsToAllBugs, want.ExecutionsToAllBugs)
	}
	if got.FrontierRemaining != want.FrontierRemaining {
		t.Fatalf("%s: frontier %d, want %d", label, got.FrontierRemaining, want.FrontierRemaining)
	}
	if got.CacheHits != want.CacheHits || got.CacheMisses != want.CacheMisses {
		t.Fatalf("%s: cache %d/%d, want %d/%d", label, got.CacheHits, got.CacheMisses, want.CacheHits, want.CacheMisses)
	}
}

// TestUnitDriveMCEquivalence: unit-at-a-time execution through RunUnit
// plus ordered assembly reproduces the in-process engine bit for bit.
func TestUnitDriveMCEquivalence(t *testing.T) {
	for _, p := range []Program{figure2(), figure2Fixed()} {
		opt := Options{Mode: ModelCheck, Executions: 10000, Workers: 1}
		want := Run(p, opt)
		if want.Partial {
			t.Fatalf("baseline should complete: %s", want)
		}
		got := driveMC(t, p, opt, false)
		sameResult(t, p.Name(), got, want)
		if got.SnapshotRestores != want.SnapshotRestores || got.DPORPruned != want.DPORPruned {
			t.Fatalf("%s: reduction diagnostics diverge: snap %d/%d dpor %d/%d", p.Name(),
				got.SnapshotRestores, want.SnapshotRestores, got.DPORPruned, want.DPORPruned)
		}
	}
}

// TestUnitDriveMCBudget: dispatch-style per-unit budgets truncate at
// the cap exactly like the engine's allowance + assembly walk.
func TestUnitDriveMCBudget(t *testing.T) {
	full := Run(figure2(), Options{Mode: ModelCheck, Executions: 10000, Workers: 1})
	cap := full.Executions / 2
	opt := Options{Mode: ModelCheck, Executions: cap, Workers: 1}
	want := Run(figure2(), opt)
	if !want.Partial || want.StopReason != "exec-budget" {
		t.Fatalf("baseline should truncate: %s", want)
	}
	got := driveMC(t, figure2(), opt, true)
	sameResult(t, "budget", got, want)
	if got.Checkpoint != nil {
		t.Fatalf("budget truncation must not checkpoint (engine parity)")
	}
}

// TestUnitDriveRandomEquivalence: range units at several chunk sizes
// all reproduce the serial random engine.
func TestUnitDriveRandomEquivalence(t *testing.T) {
	opt := Options{Mode: Random, Executions: 60, Seed: 7, Workers: 1}
	want := Run(figure2(), opt)
	for _, chunk := range []int{1, 7, 60} {
		got := driveRandom(t, figure2(), opt, chunk)
		sameResult(t, "random", got, want)
	}
}

// TestUnitHooks: OnClassify fires once before the unit returns;
// OnExec counts monotonically.
func TestUnitHooks(t *testing.T) {
	classified := 0
	var counts []int
	spec := UnitSpec{MC: &MCCheckpoint{Subtree: 0}}
	ur, err := RunUnit(figure2(), Options{Mode: ModelCheck, Executions: 10000}, spec, UnitHooks{
		OnExec:     func(n int) { counts = append(counts, n) },
		OnClassify: func(UnitClassification) { classified++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if classified != 1 {
		t.Fatalf("OnClassify fired %d times, want 1", classified)
	}
	if len(counts) != len(ur.Execs) {
		t.Fatalf("OnExec fired %d times for %d execs", len(counts), len(ur.Execs))
	}
	for i, n := range counts {
		if n != i+1 {
			t.Fatalf("OnExec counts not monotone: %v", counts)
		}
	}
	if !ur.Done {
		t.Fatalf("unbudgeted unit should exhaust its subtree")
	}
}

// TestUnitSpecValidation: a spec must pick exactly one mode.
func TestUnitSpecValidation(t *testing.T) {
	if _, err := RunUnit(figure2(), Options{}, UnitSpec{}, UnitHooks{}); err == nil {
		t.Fatal("empty spec should be rejected")
	}
	both := UnitSpec{Random: &RandomRange{Hi: 1}, MC: &MCCheckpoint{}}
	if _, err := RunUnit(figure2(), Options{}, both, UnitHooks{}); err == nil {
		t.Fatal("double spec should be rejected")
	}
}
