// Differential cross-model checking.
//
// PSan's verdicts are defined relative to a persistency model; trusting
// a simulated model means checking it against an independent one
// (Klimis & Donaldson's persistency-model validation argument). Two
// relations are checkable on every program in the suite:
//
//   - px86 vs ptsosyn: the two weak backends are observationally
//     equivalent, so the same campaign must surface the identical
//     violation key set (DiffModels);
//   - strict vs a weak model: strict persistency is the robustness
//     reference, so a robust program must compute the same final heap
//     under both — every post-crash read of a robust program is
//     consistent with some strict execution (DiffFinalHeaps).
package explore

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/memmodel"
	"repro/internal/persist"
	"repro/internal/pmem"
)

// DiffReport is the outcome of running one program's campaign under two
// persistency-model backends with otherwise identical options.
type DiffReport struct {
	Program        string
	Mode           Mode
	ModelA, ModelB string
	// A and B are the two campaigns' results.
	A, B *Result
	// OnlyA and OnlyB are the violation keys reported under exactly one
	// model, sorted.
	OnlyA, OnlyB []string
	// ExecutionsDiffer reports a coverage divergence: the campaigns ran
	// different execution counts (in model-check mode that means the
	// decision trees themselves differ).
	ExecutionsDiffer bool
}

// Divergent reports whether the two campaigns disagree.
func (d *DiffReport) Divergent() bool {
	return len(d.OnlyA) > 0 || len(d.OnlyB) > 0 || d.ExecutionsDiffer
}

// String renders a one-paragraph summary.
func (d *DiffReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "differential %s [%v] %s vs %s: ", d.Program, d.Mode, d.ModelA, d.ModelB)
	if !d.Divergent() {
		fmt.Fprintf(&b, "agree (%d violation(s), %d executions)", len(d.A.Violations), d.A.Executions)
		return b.String()
	}
	fmt.Fprintf(&b, "DIVERGE:")
	if d.ExecutionsDiffer {
		fmt.Fprintf(&b, " executions %d vs %d;", d.A.Executions, d.B.Executions)
	}
	for _, k := range d.OnlyA {
		fmt.Fprintf(&b, " only-%s: %s;", d.ModelA, k)
	}
	for _, k := range d.OnlyB {
		fmt.Fprintf(&b, " only-%s: %s;", d.ModelB, k)
	}
	return strings.TrimSuffix(b.String(), ";")
}

// DiffModels runs the same campaign (same options, seeds, schedules)
// under two backends and compares the violation key sets. opt.Model's
// Name is overridden by a and b in turn; every other option applies to
// both runs.
func DiffModels(p Program, opt Options, a, b persist.Config) *DiffReport {
	optA, optB := opt, opt
	optA.Model = a
	optB.Model = b
	resA := Run(p, optA)
	resB := Run(p, optB)
	keysA, keysB := resA.ViolationKeys(), resB.ViolationKeys()
	d := &DiffReport{
		Program: p.Name(), Mode: opt.Mode,
		ModelA: modelName(a), ModelB: modelName(b),
		A: resA, B: resB,
		ExecutionsDiffer: resA.Executions != resB.Executions,
	}
	d.OnlyA = keysMissingFrom(keysA, keysB)
	d.OnlyB = keysMissingFrom(keysB, keysA)
	return d
}

// modelName resolves a config to the backend name it selects.
func modelName(cfg persist.Config) string { return resolveModel(cfg.Name) }

// keysMissingFrom returns the sorted elements of have that are absent
// from want.
func keysMissingFrom(have, want []string) []string {
	set := make(map[string]bool, len(want))
	for _, k := range want {
		set[k] = true
	}
	var missing []string
	for _, k := range have {
		if !set[k] {
			missing = append(missing, k)
		}
	}
	sort.Strings(missing)
	return missing
}

// HeapDiff is one word whose final value differs between two models'
// matched executions.
type HeapDiff struct {
	Addr memmodel.Addr
	A, B memmodel.Value
}

// DiffFinalHeaps runs one deterministic everything-persists execution
// of p under each backend — same seed, crash between phases, newest
// candidate at every post-crash read — and compares the final value of
// every word either execution stored. For a robust program the result
// must be empty against the strict oracle: if every store is durably
// ordered before the reads that depend on it, losing nothing at the
// crash (strict) and losing only what px86 allows but the newest-read
// policy retains must agree word for word.
func DiffFinalHeaps(p Program, seed int64, a, b persist.Config) []HeapDiff {
	heapA := finalHeap(p, seed, a)
	heapB := finalHeap(p, seed, b)
	addrs := make(map[memmodel.Addr]bool, len(heapA))
	for addr := range heapA {
		addrs[addr] = true
	}
	for addr := range heapB {
		addrs[addr] = true
	}
	var diffs []HeapDiff
	for addr := range addrs {
		va, vb := heapA[addr], heapB[addr]
		if va != vb {
			diffs = append(diffs, HeapDiff{Addr: addr, A: va, B: vb})
		}
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].Addr < diffs[j].Addr })
	return diffs
}

// finalHeap executes p once under the given backend — crashing between
// phases, reading the newest candidate everywhere — and returns the
// final readable value of every word stored during the execution.
func finalHeap(p Program, seed int64, model persist.Config) map[memmodel.Addr]memmodel.Value {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1, Seed: seed, Model: model})
	phases := p.Phases()
	for i, phase := range phases {
		w.SetCrashTarget(-1)
		w.RunPhase(phase)
		if i < len(phases)-1 {
			w.Crash()
		}
	}
	// Collect every word stored in any sub-execution, then read each
	// one's newest surviving candidate. The read does not go through a
	// thread: it must not disturb the trace-based verdicts being
	// compared, so it inspects candidates directly.
	heap := make(map[memmodel.Addr]memmodel.Value)
	tr := w.M.Trace()
	for _, sub := range tr.SubExecs() {
		for _, st := range sub.Stores {
			heap[st.Addr] = 0
		}
	}
	for addr := range heap {
		cands := w.M.LoadCandidates(0, addr)
		heap[addr] = cands[0].Store.Value
	}
	return heap
}
