package explore

import (
	"context"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/pmem"
)

// counters snapshots the registry and returns the counter map plus a
// summing helper over prefixed names.
func counters(t *testing.T, reg *obs.Registry) map[string]int64 {
	t.Helper()
	return reg.Snapshot().Counters
}

func sumPrefixed(c map[string]int64, prefix, suffix string) int64 {
	var sum int64
	for name, v := range c {
		if len(name) > len(prefix)+len(suffix) &&
			name[:len(prefix)] == prefix && name[len(name)-len(suffix):] == suffix {
			sum += v
		}
	}
	return sum
}

// TestObsCountersUnderContainmentRandom runs the random-mode chaos
// harness at 8 workers with the metrics registry live and checks the
// counter invariants: every started execution is classified into
// exactly one completion counter, and the counters agree with the
// collected Result.
func TestObsCountersUnderContainmentRandom(t *testing.T) {
	const execs = 80
	reg := obs.NewRegistry()
	res := Run(figure2(), Options{
		Mode: Random, Executions: execs, Seed: 11, Workers: 8,
		InjectFault: injectEvery(5, 0, 1),
		Obs:         &obs.Observer{Metrics: reg},
	})
	if res.Partial {
		t.Fatalf("containment must not stop the run: %s", res)
	}
	c := counters(t, reg)
	started := c["explore.executions_started"]
	completed := c["explore.executions_completed"]
	aborted := c["explore.executions_aborted"]
	quarantined := c["explore.executions_quarantined"]
	if started != int64(execs) {
		t.Fatalf("started counter %d, want %d", started, execs)
	}
	if started != completed+aborted+quarantined {
		t.Fatalf("classification leak: started %d != completed %d + aborted %d + quarantined %d",
			started, completed, aborted, quarantined)
	}
	if quarantined != int64(res.Quarantined) {
		t.Fatalf("quarantined counter %d != Result.Quarantined %d", quarantined, res.Quarantined)
	}
	if aborted != int64(res.Aborted) {
		t.Fatalf("aborted counter %d != Result.Aborted %d", aborted, res.Aborted)
	}
	if got := sumPrefixed(c, "pool.worker", ".dispatches"); got != started {
		t.Fatalf("worker dispatches sum %d != started %d", got, started)
	}
	snap := reg.Snapshot()
	if d := snap.Gauges["explore.frontier_depth"]; d != 0 {
		t.Fatalf("frontier gauge %d after a complete run, want 0", d)
	}
	if h := snap.Histograms["explore.execution_ns"]; h.Count != started {
		t.Fatalf("execution_ns histogram count %d != started %d", h.Count, started)
	}
	if c["persist.px86.crashes"] == 0 {
		t.Fatal("backend crash counter never moved")
	}
}

// TestObsCountersUnderContainmentModelCheck does the same for the
// frontier-split DFS, where the classification adds the pruned class
// and the state cache must balance probes against hits + misses.
func TestObsCountersUnderContainmentModelCheck(t *testing.T) {
	reg := obs.NewRegistry()
	res := Run(figure2(), Options{
		Mode: ModelCheck, Executions: 10000, Workers: 8,
		InjectFault: injectEvery(4, 2, 3),
		Obs:         &obs.Observer{Metrics: reg},
	})
	if res.Partial {
		t.Fatalf("containment must not stop the run: %s", res)
	}
	c := counters(t, reg)
	started := c["explore.executions_started"]
	classified := c["explore.executions_completed"] + c["explore.executions_aborted"] +
		c["explore.executions_quarantined"] + c["explore.executions_pruned"]
	if started == 0 || started != classified {
		t.Fatalf("classification leak: started %d != classified %d (%v)", started, classified, c)
	}
	// A complete run collects every non-pruned execution, so the
	// counters and the assembled Result must agree exactly.
	if collected := started - c["explore.executions_pruned"]; collected != int64(res.Executions) {
		t.Fatalf("non-pruned started %d != Result.Executions %d", collected, res.Executions)
	}
	if q := c["explore.executions_quarantined"]; q != int64(res.Quarantined) {
		t.Fatalf("quarantined counter %d != Result.Quarantined %d", q, res.Quarantined)
	}
	probes, hits, misses := c["statecache.probes"], c["statecache.hits"], c["statecache.misses"]
	if probes == 0 || probes != hits+misses {
		t.Fatalf("cache imbalance: probes %d != hits %d + misses %d", probes, hits, misses)
	}
	if hits != int64(res.CacheHits) || misses != int64(res.CacheMisses) {
		t.Fatalf("cache counters (%d/%d) != Result stats (%d/%d)",
			hits, misses, res.CacheHits, res.CacheMisses)
	}
	if split := c["statecache.misses_new_image"] + c["statecache.misses_new_heap"]; split != misses {
		t.Fatalf("miss split %d != misses %d", split, misses)
	}
	if got := sumPrefixed(c, "pool.worker", ".dispatches"); got == 0 || got > started {
		t.Fatalf("worker dispatches sum %d vs %d started subtree executions", got, started)
	}
}

// TestObsCountersReductionsUnderContainment runs the model-check chaos
// harness with the reductions active (the default) and pins the counter
// invariants that the prefix-snapshot and DPOR machinery must preserve
// under fault injection:
//
//   - the classification identity still balances — snapshot-resumed
//     executions are started/completed like any other, and DPOR prunes
//     are a subset of the pruned class;
//   - the reduction counters agree exactly with the assembled Result;
//   - state-cache registrations made inside a pruned-and-restored
//     subtree must not leak into sibling subtrees: probes still balance
//     against hits + misses and match the Result's cumulative stats
//     (the regression this pins surfaced as a probe/hit imbalance after
//     a snapshot restore);
//   - and the violation key set is exactly the unreduced search's.
//
// Runs under -race via the chaos CI job.
func TestObsCountersReductionsUnderContainment(t *testing.T) {
	reg := obs.NewRegistry()
	res := Run(figure2(), Options{
		Mode: ModelCheck, Executions: 10000, Workers: 8,
		InjectFault: injectEvery(4, 2, 3),
		Obs:         &obs.Observer{Metrics: reg},
	})
	if res.Partial {
		t.Fatalf("containment must not stop the run: %s", res)
	}
	c := counters(t, reg)
	started := c["explore.executions_started"]
	pruned := c["explore.executions_pruned"]
	classified := c["explore.executions_completed"] + c["explore.executions_aborted"] +
		c["explore.executions_quarantined"] + pruned
	if started == 0 || started != classified {
		t.Fatalf("classification leak: started %d != classified %d (%v)", started, classified, c)
	}
	// One snapshot can be restored many times (each backtrack that keeps
	// it resumes from it again), so the counters are independently
	// nonzero rather than ordered.
	if taken, restored := c["explore.snapshots_taken"], c["explore.snapshots_restored"]; taken == 0 || restored == 0 {
		t.Fatalf("reduction machinery never engaged: taken %d, restored %d", taken, restored)
	}
	if got := c["explore.snapshots_restored"]; got != int64(res.SnapshotRestores) {
		t.Fatalf("snapshots_restored counter %d != Result.SnapshotRestores %d", got, res.SnapshotRestores)
	}
	if got := c["explore.dpor_pruned"]; got != int64(res.DPORPruned) {
		t.Fatalf("dpor_pruned counter %d != Result.DPORPruned %d", got, res.DPORPruned)
	}
	if got := c["explore.dpor_pruned"]; got > pruned {
		t.Fatalf("dpor_pruned %d exceeds executions_pruned %d", got, pruned)
	}
	probes, hits, misses := c["statecache.probes"], c["statecache.hits"], c["statecache.misses"]
	if probes == 0 || probes != hits+misses {
		t.Fatalf("cache imbalance after restores: probes %d != hits %d + misses %d", probes, hits, misses)
	}
	if hits != int64(res.CacheHits) || misses != int64(res.CacheMisses) {
		t.Fatalf("cache counters (%d/%d) != Result stats (%d/%d)",
			hits, misses, res.CacheHits, res.CacheMisses)
	}
	// The reductions change how executions are produced, never which
	// violations the campaign reports.
	off := Run(figure2(), Options{
		Mode: ModelCheck, Executions: 10000, Workers: 8,
		InjectFault:      injectEvery(4, 2, 3),
		DisableSnapshots: true, DisableDPOR: true,
	})
	if got, want := res.ViolationKeys(), off.ViolationKeys(); !equalKeys(got, want) {
		t.Fatalf("reductions changed the violation set\n  on:  %v\n  off: %v", got, want)
	}
}

func equalKeys(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestObsCountersUnderStealContainment runs the model-check chaos
// harness over a steal-heavy schedule (ForceSteals + fault injection)
// and pins the scheduler's own instruments: the steals counter agrees
// with Result.Steals, the shard-striped cache still balances exactly
// (every probe is one shard-lock acquisition when nothing is resumed),
// the classification identity holds with quarantines landing inside
// stolen units, and the frontier gauge drains back to zero once every
// donated unit has been collected.
func TestObsCountersUnderStealContainment(t *testing.T) {
	reg := obs.NewRegistry()
	res := Run(figure2(), Options{
		Mode: ModelCheck, Executions: 10000, Workers: 8,
		ForceSteals: true,
		InjectFault: injectEvery(4, 2, 3),
		Obs:         &obs.Observer{Metrics: reg},
	})
	if res.Partial {
		t.Fatalf("containment must not stop the run: %s", res)
	}
	c := counters(t, reg)
	if steals := c["explore.steals"]; steals == 0 || steals != int64(res.Steals) {
		t.Fatalf("steals counter %d vs Result.Steals %d, want equal and nonzero", steals, res.Steals)
	}
	started := c["explore.executions_started"]
	classified := c["explore.executions_completed"] + c["explore.executions_aborted"] +
		c["explore.executions_quarantined"] + c["explore.executions_pruned"]
	if started == 0 || started != classified {
		t.Fatalf("classification leak under steals: started %d != classified %d (%v)", started, classified, c)
	}
	if q := c["explore.executions_quarantined"]; q != int64(res.Quarantined) {
		t.Fatalf("quarantined counter %d != Result.Quarantined %d", q, res.Quarantined)
	}
	probes, shard := c["statecache.probes"], c["statecache.shard_probes"]
	if probes == 0 || probes != shard {
		t.Fatalf("shard probes %d != probes %d (no resume ran, every probe is one lock trip)", shard, probes)
	}
	if hits, misses := c["statecache.hits"], c["statecache.misses"]; probes != hits+misses {
		t.Fatalf("cache imbalance under steals: probes %d != hits %d + misses %d", probes, hits, misses)
	}
	if d := reg.Snapshot().Gauges["explore.frontier_depth"]; d != 0 {
		t.Fatalf("frontier gauge %d after a complete steal-heavy run, want 0", d)
	}
}

// TestObsFrontierRemainingMidStealStop extends the PR 5 stop-reason
// latch coverage across a donation: a deadline stop landing while
// donated units are still parked must latch exactly one deadline stop,
// report the parked units in FrontierRemaining, and still drain the
// frontier gauge to zero on the way out (parked units are counted out
// of the gauge even when they never run).
func TestObsFrontierRemainingMidStealStop(t *testing.T) {
	for attempt := 0; attempt < 50; attempt++ {
		reg := obs.NewRegistry()
		res := Run(figure7(), Options{
			Mode: ModelCheck, Executions: 10000, Workers: 4,
			ForceSteals: true,
			Deadline:    100 * time.Microsecond,
			Obs:         &obs.Observer{Metrics: reg},
		})
		snap := reg.Snapshot()
		if d := snap.Gauges["explore.frontier_depth"]; d != 0 {
			t.Fatalf("frontier gauge %d after the run wound down, want 0", d)
		}
		if !res.Partial {
			continue // deadline never tripped; retry with a smaller window
		}
		if got := snap.Counters["explore.stops_deadline"]; got != 1 {
			t.Fatalf("stops_deadline %d, want exactly 1 (latch leaked)", got)
		}
		if got := snap.Counters["explore.stops_canceled"]; got != 0 {
			t.Fatalf("stops_canceled %d on a deadline stop, want 0", got)
		}
		if res.StopReason != "deadline" {
			t.Fatalf("StopReason %q, want deadline", res.StopReason)
		}
		if res.FrontierRemaining == 0 {
			t.Fatalf("partial steal-heavy run reports a drained frontier: %s", res)
		}
		return
	}
	t.Skip("deadline never interrupted the run; nothing to pin")
}

// TestObsWorkerInvarianceUnderContainment asserts that turning the
// registry on does not perturb the deterministic outcome, at any
// worker count.
func TestObsWorkerInvarianceUnderContainment(t *testing.T) {
	run := func(workers int, o *obs.Observer) *Result {
		return Run(figure2(), Options{
			Mode: Random, Executions: 60, Seed: 7, Workers: workers,
			InjectFault: injectEvery(5, 0, 1), Obs: o,
		})
	}
	plain := run(1, nil)
	for _, workers := range []int{1, 8} {
		instr := run(workers, &obs.Observer{Metrics: obs.NewRegistry()})
		if instr.Executions != plain.Executions || instr.Quarantined != plain.Quarantined ||
			instr.Aborted != plain.Aborted {
			t.Fatalf("workers=%d: instrumented outcome diverges: %s vs %s", workers, instr, plain)
		}
	}
}

// TestStopReasonLatchCancelAfterDeadline pins the stopper's
// first-cause-wins latch: once the deadline trips, a later context
// cancellation neither rewrites the reason nor double-counts a stop.
func TestStopReasonLatchCancelAfterDeadline(t *testing.T) {
	reg := obs.NewRegistry()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opt := &Options{Context: ctx, Deadline: time.Nanosecond, em: obs.ExploreInstruments(reg)}
	st := newStopper(opt)
	time.Sleep(time.Millisecond)
	if !st.stopped() {
		t.Fatal("expired deadline not observed")
	}
	if st.why() != "deadline" {
		t.Fatalf("reason %q, want deadline", st.why())
	}
	cancel()
	if !st.stopped() {
		t.Fatal("latched stopper must stay stopped")
	}
	if st.why() != "deadline" {
		t.Fatalf("later cancellation rewrote the reason to %q", st.why())
	}
	c := counters(t, reg)
	if c["explore.stops_deadline"] != 1 || c["explore.stops_canceled"] != 0 {
		t.Fatalf("stop counters deadline=%d canceled=%d, want 1/0",
			c["explore.stops_deadline"], c["explore.stops_canceled"])
	}
}

// TestStopReasonCancelAsFrontierDrains is the satellite regression: a
// cancellation landing in the same tick the frontier drains (a SIGINT
// racing the last execution) must be reported as the StopReason even
// though the run is complete — previously it was silently swallowed.
func TestStopReasonCancelAsFrontierDrains(t *testing.T) {
	const execs = 12
	for _, workers := range []int{1, 8} {
		ctx, cancel := context.WithCancel(context.Background())
		res := Run(figure2(), Options{
			Mode: Random, Executions: execs, Seed: 3, Workers: workers,
			Context: ctx,
			// The collector serializes Progress in index order, so the
			// cancel lands exactly as the final execution is collected:
			// nothing is left to claim, the run completes, and the stop
			// races the drain.
			Progress: func(exec int) {
				if exec == execs {
					cancel()
				}
			},
		})
		cancel()
		if res.Partial {
			t.Fatalf("workers=%d: run completed before the cancel, must not be partial: %s", workers, res)
		}
		if res.Executions != execs {
			t.Fatalf("workers=%d: got %d executions, want %d", workers, res.Executions, execs)
		}
		if res.StopReason != "canceled" {
			t.Fatalf("workers=%d: StopReason %q, want canceled (stop swallowed)", workers, res.StopReason)
		}
	}
}

// TestStopReasonCancelAsFrontierDrainsModelCheck covers the same race
// for both model-check engines (parallel, and the serial engine forced
// by AfterExecution). The uninterrupted pilot run sizes the frontier so
// the cancel can land exactly on the last collected execution.
func TestStopReasonCancelAsFrontierDrainsModelCheck(t *testing.T) {
	for _, serial := range []bool{false, true} {
		// Pilot the same engine uninterrupted to size its frontier (the
		// serial engine runs cacheless and may enumerate more).
		popt := Options{Mode: ModelCheck, Executions: 10000, Workers: 4}
		if serial {
			popt.AfterExecution = func(w *pmem.World) {}
		}
		total := Run(figure2(), popt).Executions

		ctx, cancel := context.WithCancel(context.Background())
		opt := popt
		opt.Context = ctx
		opt.Progress = func(exec int) {
			if exec == total {
				cancel()
			}
		}
		res := Run(figure2(), opt)
		cancel()
		if res.Partial {
			t.Fatalf("serial=%v: run completed before the cancel, must not be partial: %s", serial, res)
		}
		if res.StopReason != "canceled" {
			t.Fatalf("serial=%v: StopReason %q, want canceled", serial, res.StopReason)
		}
	}
}
