package explore

import (
	"context"
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/pmem"
)

// injectEvery returns a chaos plan that panics at op `atOp` on every
// schedule ordinal where ordinal%n == r.
func injectEvery(n, r, atOp int) func(int) Fault {
	return func(ordinal int) Fault {
		if ordinal%n == r {
			return Fault{PanicAtOp: atOp}
		}
		return Fault{}
	}
}

func TestPanicContainmentRandom(t *testing.T) {
	const execs = 60
	base := Options{Mode: Random, Executions: execs, Seed: 7, Workers: 1}
	for _, workers := range []int{1, 8} {
		opt := base
		opt.Workers = workers
		// Every 5th execution panics at its first operation: 12 of 60.
		opt.InjectFault = injectEvery(5, 0, 1)
		res := Run(figure2(), opt)
		if res.Partial {
			t.Fatalf("workers=%d: containment must not stop the run: %s", workers, res)
		}
		if res.Executions != execs {
			t.Fatalf("workers=%d: got %d executions, want %d", workers, res.Executions, execs)
		}
		if res.Quarantined != execs/5 {
			t.Fatalf("workers=%d: got %d quarantined, want %d", workers, res.Quarantined, execs/5)
		}
		if len(res.ExecErrors) != res.Quarantined {
			t.Fatalf("workers=%d: %d ExecErrors for %d quarantined", workers, len(res.ExecErrors), res.Quarantined)
		}
		for _, ee := range res.ExecErrors {
			if ee.Kind != "injected-fault" {
				t.Fatalf("workers=%d: kind %q, want injected-fault: %v", workers, ee.Kind, ee)
			}
			if ee.Exec%5 != 0 {
				t.Fatalf("workers=%d: quarantined execution %d was not injected", workers, ee.Exec)
			}
			if ee.Seed == 0 || ee.Stack == "" {
				t.Fatalf("workers=%d: ExecError missing repro info: %+v", workers, ee)
			}
		}
		if len(res.Violations) == 0 {
			t.Fatalf("workers=%d: surviving executions should still find the figure2 bug", workers)
		}
	}
}

// TestPanicContainmentRandomWorkerInvariance asserts the chaos outcome
// itself is independent of the worker count.
func TestPanicContainmentRandomWorkerInvariance(t *testing.T) {
	run := func(workers int) *Result {
		return Run(figure2(), Options{
			Mode: Random, Executions: 80, Seed: 11, Workers: workers,
			InjectFault: injectEvery(7, 3, 2),
		})
	}
	a, b := run(1), run(8)
	if a.Quarantined != b.Quarantined || a.Executions != b.Executions || a.Aborted != b.Aborted {
		t.Fatalf("worker counts diverge: %s vs %s", a, b)
	}
	if !reflect.DeepEqual(a.ViolationKeys(), b.ViolationKeys()) {
		t.Fatalf("violation keys diverge: %v vs %v", a.ViolationKeys(), b.ViolationKeys())
	}
}

func TestPanicContainmentModelCheck(t *testing.T) {
	run := func(workers int) *Result {
		return Run(figure2(), Options{
			Mode: ModelCheck, Executions: 10000, Workers: workers,
			// Skip each subtree's classifying execution (ordinal 0) so the
			// spawn chain survives; panic at op 3, which lands post-crash
			// for small crash targets and pre-crash for large ones —
			// exercising both containment paths.
			InjectFault: injectEvery(4, 2, 3),
		})
	}
	a, b := run(1), run(8)
	for _, res := range []*Result{a, b} {
		if res.Partial {
			t.Fatalf("containment must not stop the run: %s", res)
		}
		if res.Quarantined == 0 {
			t.Fatalf("expected quarantined executions: %s", res)
		}
		for _, ee := range res.ExecErrors {
			if ee.Kind != "injected-fault" {
				t.Fatalf("kind %q, want injected-fault: %v", ee.Kind, ee)
			}
			if len(ee.Prefix) == 0 {
				t.Fatalf("model-check ExecError should carry its decision prefix: %+v", ee)
			}
		}
		if len(res.Violations) == 0 {
			t.Fatalf("surviving executions should still find the figure2 bug: %s", res)
		}
	}
	if a.Quarantined != b.Quarantined || a.Executions != b.Executions || a.Aborted != b.Aborted {
		t.Fatalf("worker counts diverge: %s vs %s", a, b)
	}
	if !reflect.DeepEqual(a.ViolationKeys(), b.ViolationKeys()) {
		t.Fatalf("violation keys diverge: %v vs %v", a.ViolationKeys(), b.ViolationKeys())
	}
}

// TestPanicContainmentStealModelCheck runs the containment harness over
// a steal-heavy schedule. Fault injection normally suppresses demand
// donations (a hungry peer would make the unit tree timing-dependent),
// but ForceSteals donates deterministically by trail shape alone, so
// quarantines inside stolen units must classify identically at any
// worker count. Injection ordinals are unit-local, so the stolen
// schedule is compared against itself across worker counts, not
// against the never-stealing one.
func TestPanicContainmentStealModelCheck(t *testing.T) {
	run := func(workers int) *Result {
		return Run(figure2(), Options{
			Mode: ModelCheck, Executions: 10000, Workers: workers,
			ForceSteals: true,
			InjectFault: injectEvery(4, 2, 3),
		})
	}
	a := run(1)
	if a.Partial {
		t.Fatalf("containment must not stop the run: %s", a)
	}
	if a.Quarantined == 0 {
		t.Fatalf("expected quarantined executions: %s", a)
	}
	if a.Steals == 0 {
		t.Fatalf("forced donations never fired under injection: %s", a)
	}
	for _, ee := range a.ExecErrors {
		if ee.Kind != "injected-fault" {
			t.Fatalf("kind %q, want injected-fault: %v", ee.Kind, ee)
		}
		if len(ee.Prefix) == 0 {
			t.Fatalf("model-check ExecError should carry its decision prefix: %+v", ee)
		}
	}
	for _, workers := range []int{4, 16} {
		b := run(workers)
		if a.Quarantined != b.Quarantined || a.Executions != b.Executions ||
			a.Aborted != b.Aborted || a.Steals != b.Steals {
			t.Fatalf("workers=%d diverges: %s vs %s", workers, b, a)
		}
		if !reflect.DeepEqual(a.ViolationKeys(), b.ViolationKeys()) {
			t.Fatalf("workers=%d violation keys diverge: %v vs %v",
				workers, b.ViolationKeys(), a.ViolationKeys())
		}
	}
}

// TestPanicContainmentSerialModelCheck covers the serial engine (forced
// by AfterExecution): quarantined executions hand over no world.
func TestPanicContainmentSerialModelCheck(t *testing.T) {
	worlds := 0
	res := Run(figure2(), Options{
		Mode: ModelCheck, Executions: 10000, Workers: 1,
		InjectFault:    injectEvery(6, 2, 3),
		AfterExecution: func(w *pmem.World) { worlds++ },
	})
	if res.Partial {
		t.Fatalf("containment must not stop the serial engine: %s", res)
	}
	if res.Quarantined == 0 {
		t.Fatalf("expected quarantined executions: %s", res)
	}
	if worlds != res.Executions-res.Quarantined {
		t.Fatalf("got %d worlds for %d executions with %d quarantined",
			worlds, res.Executions, res.Quarantined)
	}
}

func TestStepTimeout(t *testing.T) {
	res := Run(figure2(), Options{
		Mode: Random, Executions: 3, Seed: 1, Workers: 1,
		StepTimeout: 25 * time.Millisecond,
		InjectFault: func(ordinal int) Fault {
			if ordinal == 0 {
				return Fault{DelayAtOp: 1, Delay: 150 * time.Millisecond}
			}
			return Fault{}
		},
	})
	if res.Partial {
		t.Fatalf("a step timeout degrades one execution, not the run: %s", res)
	}
	if res.Aborted < 1 {
		t.Fatalf("the delayed execution should have aborted on its step timeout: %s", res)
	}
	if res.Quarantined != 0 {
		t.Fatalf("timeouts are aborts, not quarantines: %s", res)
	}
}

func TestDeadlinePartial(t *testing.T) {
	for _, mode := range []Mode{Random, ModelCheck} {
		res := Run(figure2(), Options{Mode: mode, Executions: 500, Workers: 4, Deadline: time.Nanosecond})
		if !res.Partial || res.StopReason != "deadline" {
			t.Fatalf("%s: want partial deadline stop, got %s", mode, res)
		}
		if res.Executions != 0 {
			t.Fatalf("%s: nothing should have run under a 1ns deadline: %s", mode, res)
		}
		if res.Checkpoint == nil {
			t.Fatalf("%s: a deadline stop must yield a checkpoint", mode)
		}
		if res.FrontierRemaining == 0 {
			t.Fatalf("%s: unexplored frontier should be reported: %s", mode, res)
		}
		if !strings.Contains(res.String(), "PARTIAL") {
			t.Fatalf("%s: summary should flag partiality: %s", mode, res)
		}
	}
}

func TestContextCancelPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Run(figure2(), Options{Mode: Random, Executions: 100, Workers: 4, Context: ctx})
	if !res.Partial || res.StopReason != "canceled" {
		t.Fatalf("want partial canceled stop, got %s", res)
	}
	if res.Checkpoint == nil || res.Checkpoint.Collected != 0 {
		t.Fatalf("pre-canceled run should checkpoint at zero: %+v", res.Checkpoint)
	}
}

func TestCheckpointRoundtrip(t *testing.T) {
	res := Run(figure2(), Options{Mode: ModelCheck, Executions: 500, Workers: 2, Deadline: time.Nanosecond})
	ck := res.Checkpoint
	if ck == nil {
		t.Fatal("no checkpoint to round-trip")
	}
	path := filepath.Join(t.TempDir(), "psan.ckpt")
	if err := ck.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	// Compare serialized forms: omitempty legitimately turns empty
	// slices into nil on the way back.
	want, _ := json.Marshal(ck)
	have, _ := json.Marshal(got)
	if string(want) != string(have) {
		t.Fatalf("round-trip mismatch:\nsaved  %s\nloaded %s", want, have)
	}
	if err := got.Validate("figure2", Options{Mode: ModelCheck}); err != nil {
		t.Fatalf("matching checkpoint rejected: %v", err)
	}
	if err := got.Validate("other", Options{Mode: ModelCheck}); err == nil {
		t.Fatal("program mismatch accepted")
	}
	if err := got.Validate("figure2", Options{Mode: Random}); err == nil {
		t.Fatal("mode mismatch accepted")
	}
}

// runToCompletion chains checkpoint resumes until the run completes,
// returning the final cumulative result and the merged violation keys.
func runToCompletion(t *testing.T, p Program, opt Options) (*Result, []string) {
	t.Helper()
	merged := make(map[string]bool)
	var res *Result
	for leg := 0; ; leg++ {
		if leg > 50 {
			t.Fatal("resume chain did not converge in 50 legs")
		}
		res = Run(p, opt)
		for _, k := range res.ViolationKeys() {
			merged[k] = true
		}
		if !res.Partial {
			break
		}
		if res.Checkpoint == nil {
			t.Fatalf("partial leg %d without a checkpoint: %s", leg, res)
		}
		if err := res.Checkpoint.Validate(p.Name(), opt); err != nil {
			t.Fatalf("leg %d checkpoint invalid: %v", leg, err)
		}
		opt.Resume = res.Checkpoint
		// Double the deadline each leg so the chain always progresses.
		opt.Deadline *= 2
	}
	return res, keysOf(merged)
}

// TestCancelResumeRandom interrupts a random campaign under tiny
// deadlines and checks the chained resumes converge to the
// uninterrupted run's exact outcome.
func TestCancelResumeRandom(t *testing.T) {
	full := Run(figure2(), Options{Mode: Random, Executions: 120, Seed: 3, Workers: 4})
	res, merged := runToCompletion(t, figure2(), Options{
		Mode: Random, Executions: 120, Seed: 3, Workers: 4,
		Deadline: 500 * time.Microsecond,
	})
	if res.Executions != full.Executions || res.Aborted != full.Aborted {
		t.Fatalf("cumulative counts diverge: %s vs %s", res, full)
	}
	if !reflect.DeepEqual(merged, full.ViolationKeys()) {
		t.Fatalf("merged keys %v != uninterrupted %v", merged, full.ViolationKeys())
	}
}

// TestCancelResumeModelCheck does the same for the frontier-split DFS,
// whose checkpoint must also replay the state cache.
func TestCancelResumeModelCheck(t *testing.T) {
	full := Run(figure7(), Options{Mode: ModelCheck, Executions: 10000, Workers: 4})
	res, merged := runToCompletion(t, figure7(), Options{
		Mode: ModelCheck, Executions: 10000, Workers: 4,
		Deadline: 500 * time.Microsecond,
	})
	if res.Executions != full.Executions || res.Aborted != full.Aborted {
		t.Fatalf("cumulative counts diverge: %s vs %s", res, full)
	}
	if res.CacheHits != full.CacheHits || res.CacheMisses != full.CacheMisses {
		t.Fatalf("cumulative cache stats diverge: %d/%d vs %d/%d",
			res.CacheHits, res.CacheMisses, full.CacheHits, full.CacheMisses)
	}
	if !reflect.DeepEqual(merged, full.ViolationKeys()) {
		t.Fatalf("merged keys %v != uninterrupted %v", merged, full.ViolationKeys())
	}
}
