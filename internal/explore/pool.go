// Parallel exploration engine: a worker pool for random mode and a
// deterministic work-stealing scheduler for model-checking mode.
//
// Determinism is the design constraint. Per-execution worlds are fully
// self-contained (machine, trace, checker, heap, RNG), so executions
// can run on any worker; what must not leak is *scheduling*. Random
// mode derives every execution's seed from its index, and a collector
// folds outcomes into the result strictly in index order (workers hand
// batches of consecutive outcomes over in one channel send each).
// Model-check mode runs the DFS as a tree of *work units*: each unit
// owns a sub-range of the decision tree, bounded below by its root
// trail index. A busy unit donates the shallowest still-unexplored
// cut of its own trail to hungry workers (work stealing, inverted:
// the victim carves at its loop top, so the donated range is always a
// whole untouched branch suffix), and the assembly walk at the end
// reorders every unit's execution list back into canonical depth-first
// order — byte-for-byte the order the serial DFS visits, truncated at
// the Executions cap. See DESIGN.md, "Work-stealing scheduler".
//
// Graceful degradation preserves both properties: workers consult the
// run's stopper only *between* executions (an execution, once claimed,
// always runs to completion and is collected), so a stopped run's
// collected stream is always a contiguous prefix of the uninterrupted
// run's canonical stream — which is what makes the checkpoint cut
// well-defined and resume deterministic.
package explore

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pmem"
)

// collectorSlack bounds how far ahead of the collector workers may run:
// at most Workers*collectorSlack batches are in flight or buffered out
// of order at once, which bounds retained worlds/violations.
const collectorSlack = 4

// maxRandomBatch caps how many consecutive executions a random-mode
// worker claims per collector handoff. Batching amortizes the channel
// send and the collector wakeup; the cap keeps stop latency (a claimed
// batch always runs to completion) and out-of-order buffering small.
const maxRandomBatch = 8

// execBatch is one worker's chunk of consecutive outcomes, published to
// the collector in a single channel send.
type execBatch struct {
	base int // index of outs[0]
	outs []execOutcome
}

// randomBatchSize picks the per-claim batch for a run. Worlds retained
// for AfterExecution are heavy, so keepWorld runs stay at one outcome
// per send (the in-flight bound is then identical to the unbatched
// engine); otherwise the batch grows with the per-worker backlog up to
// maxRandomBatch.
func randomBatchSize(opt *Options, plan *randomPlan) int {
	if plan.keepWorld {
		return 1
	}
	b := opt.Executions / (opt.Workers * collectorSlack * 2)
	if b < 1 {
		b = 1
	}
	if b > maxRandomBatch {
		b = maxRandomBatch
	}
	return b
}

// runRandomParallel fans random-mode executions over opt.Workers
// goroutines and folds outcomes through the ordered collector. Results
// are bit-identical to the serial loop: seeds depend only on indices,
// and the collector emits in index order on the calling goroutine. The
// stop check sits before the batch claim, so every claimed batch is
// executed and sent in full — the collected stream has no gaps and the
// returned cursor is the exact resume point. Returns the canonical
// stream position: every execution below it (from startExec) was
// collected.
func runRandomParallel(p Program, opt *Options, plan *randomPlan, res *Result, seen map[string]bool, st *stopper, startExec int) int {
	batch := randomBatchSize(opt, plan)
	tokens := make(chan struct{}, opt.Workers*collectorSlack)
	outc := make(chan execBatch, opt.Workers*collectorSlack)
	next := int64(startExec) - int64(batch)
	var wg sync.WaitGroup
	for i := 0; i < opt.Workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// worker-lifetime reusable world + scratch; tid id+1 is the
			// worker's trace timeline (tid 0 is the campaign thread).
			ws := &workerState{tid: id + 1, tr: opt.tr, wm: obs.WorkerInstruments(opt.Obs.Reg(), id+1)}
			ws.tr.NameThread(ws.tid, "worker-"+strconv.Itoa(ws.tid))
			metered := ws.wm.IdleNanos != nil
			for {
				var idleStart time.Time
				if metered {
					idleStart = time.Now()
				}
				select {
				case tokens <- struct{}{}: // wait for the collector to keep up
				case <-st.done():
					return
				}
				if metered {
					idle := int64(time.Since(idleStart))
					ws.wm.IdleNanos.Add(idle)
					opt.em.WorkerIdle.Add(idle)
				}
				if st.stopped() {
					<-tokens
					return
				}
				base := int(atomic.AddInt64(&next, int64(batch)))
				if base >= opt.Executions {
					<-tokens
					return
				}
				end := base + batch
				if end > opt.Executions {
					end = opt.Executions
				}
				b := execBatch{base: base, outs: make([]execOutcome, 0, end-base)}
				// No stop check inside the batch: a claimed batch always
				// completes, keeping the collected stream gapless.
				for exec := base; exec < end; exec++ {
					ws.wm.Dispatches.Inc()
					o := randomExecution(p, opt, plan, ws, exec)
					ws.wm.BusyNanos.Add(int64(o.elapsed))
					b.outs = append(b.outs, o)
				}
				outc <- b
			}
		}(i)
	}
	go func() {
		wg.Wait()
		close(outc)
	}()
	// Ordered collector: buffer out-of-order batches, emit in base
	// order, releasing one token per emitted batch. Any pending base is
	// held by a worker that owns a token, so the collector can never
	// wait on a worker that is blocked acquiring one; and since claimed
	// bases are contiguous and always delivered, draining outc to close
	// leaves no gap below the final cursor.
	pending := make(map[int][]execOutcome)
	nextBase := startExec
	cursor := startExec
	for b := range outc {
		pending[b.base] = b.outs
		for {
			outs, ok := pending[nextBase]
			if !ok {
				break
			}
			delete(pending, nextBase)
			for _, o := range outs {
				res.collect(o, seen, opt)
			}
			cursor = nextBase + len(outs)
			nextBase += batch
			<-tokens
		}
	}
	return cursor
}

// --- model checking: work-stealing DFS ---

// phaseSnap is one crash-boundary world snapshot on a work unit's
// current DFS path. It is taken immediately after the crash at `phase`,
// with `pos` controller decisions consumed; restoring it and rerunning
// phases phase+1.. replays the execution's suffix without re-executing
// the prefix. A snapshot stays valid for as long as decisions [0, pos)
// are unchanged — i.e. while every backtrack changes a decision at
// index >= pos (lazy consumption in runPhasesMC makes trail order equal
// decision-use order, which is what makes this check sufficient).
type phaseSnap struct {
	ws    *pmem.WorldSnapshot
	phase int
	pos   int
}

// pruneSnaps pops snapshots invalidated by a backtrack that changed the
// decision at index `changed` (and truncated everything after it).
func pruneSnaps(snaps []phaseSnap, changed int) []phaseSnap {
	for len(snaps) > 0 && snaps[len(snaps)-1].pos > changed {
		snaps[len(snaps)-1] = phaseSnap{} // release the snapshot
		snaps = snaps[:len(snaps)-1]
	}
	return snaps
}

// dporKey identifies a deeper (phase >= 1) crash state completely: the
// surviving persistent image, the allocator mark, the op-budget
// position, the checker's constraint state, and the committed trace.
// Two executions of one subtree that reach equal keys along different
// decision prefixes have identical continuation trees — every future
// load sees the same candidates, the checker commits the same future
// constraints, and the op budget trips at the same point — so the
// second continuation is pruned (dynamic partial-order reduction).
// Every component is derived from path-deterministic identities (store
// IDs, label strings), never raw interner IDs, so keys computed in
// different worlds — or different processes, via checkpoints — compare
// correctly. See DESIGN.md, "Prefix snapshots and partial-order
// reduction", for why read-choice decisions need no such check.
type dporKey struct {
	phase   int
	image   uint64
	heap    int
	ops     int
	checker uint64
	trace   uint64
}

// dporKeyOf computes the key of a just-crashed world.
func dporKeyOf(phase int, w *pmem.World) dporKey {
	return dporKey{
		phase:   phase,
		image:   w.M.PersistFingerprint(),
		heap:    w.Heap.Used(),
		ops:     w.Ops(),
		checker: w.Checker.StateFingerprint(),
		trace:   w.M.Trace().CommittedFingerprint(),
	}
}

// dporKeysOf serializes a registration set in a stable order for
// checkpoints.
func dporKeysOf(seen map[dporKey]struct{}) []DPORKey {
	if len(seen) == 0 {
		return nil
	}
	ks := make([]DPORKey, 0, len(seen))
	for k := range seen {
		ks = append(ks, DPORKey{Phase: k.phase, Image: k.image, Heap: k.heap, Ops: k.ops, Checker: k.checker, Trace: k.trace})
	}
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		if a.Image != b.Image {
			return a.Image < b.Image
		}
		if a.Heap != b.Heap {
			return a.Heap < b.Heap
		}
		if a.Ops != b.Ops {
			return a.Ops < b.Ops
		}
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		return a.Trace < b.Trace
	})
	return ks
}

// mcExec is one completed execution inside a work unit, in sub-DFS
// order.
type mcExec struct {
	aborted    bool
	violations []*core.Violation
	// execErr marks a quarantined execution; its canonical index is
	// assigned at assembly time.
	execErr *ExecError
	// ops and the retirement counts mirror execOutcome's world stats;
	// they ride to the assembly walk (and, via UnitExec, across the
	// process boundary) so Result sums match the serial engines'.
	ops           int64
	retirements   int64
	retiredStores int64
	retiredEvents int64
	pinnedRoots   int64
	sweepNanos    int64
}

// capRec records a domain cap placed on a unit's live trail when a
// child was carved off it: the decision at trail index idx kept the
// values below the carve point and the child took the rest, so the
// unit's in-memory domain was clamped. dom is the decision's *original*
// domain (possibly < 0 for a still-open crash decision) — a checkpoint
// cut at this unit restores it, so an unbounded resume backtrack
// re-derives every donated (and therefore canonically-after-the-cut)
// range. Records are dropped as soon as a backtrack pops past their
// index (passCuts): a later execution may re-create a decision at the
// same index with a fresh domain.
type capRec struct {
	idx, dom int
}

// mcChild is one unit carved off this unit's trail. splitAt is the
// parent's execution count at the moment the parent backtracked past
// the carve index (-1 while pending): every parent execution before it
// is canonically before the child's whole range, every one after is
// canonically after, so the assembly walk inserts the child's stream at
// exactly that position.
type mcChild struct {
	unit    *mcUnit
	cut     int // trail index the child was carved at
	splitAt int // parent exec count when passed; -1 while pending
	passed  bool
}

// mcUnit is one work unit of the model-check DFS: a bounded sub-DFS
// over the decision tree, rooted at trail index `root` (backtracking
// never pops past it). The subtree's root unit has root covering the
// primed phase-0 decision; stolen units root at their carve index.
type mcUnit struct {
	sub    *mcSubtree
	subOrd int // subtree ordinal (= phase-0 crash target)
	root   int // lowest trail index this unit may backtrack to
	// trail is the unit's starting decision trail (the worker's live
	// controller adopts it while the unit runs).
	trail []decision
	// path is the starting trail's value vector — the canonical-order
	// sort key for queue and assembly ordering.
	path []int
	// caps are the domain caps currently clamping the live trail (one
	// per unpassed carved child plus the records inherited from
	// ancestors for indices at or below root). See capRec.
	caps []capRec
	// baseOff is a lower bound on the unit's first execution's
	// subtree-relative canonical index (the parent's collected count at
	// carve time; the parent may still produce more path-earlier
	// executions). The allowance check uses it: an underestimate only
	// ever lets a unit overshoot the budget (trimmed at assembly),
	// never stop short of the canonical first-cap prefix.
	baseOff int
	// stolen marks a carved (donated) unit; classify marks the unit
	// that must run the subtree's first execution (cache probe, next-
	// subtree spawn).
	stolen   bool
	classify bool
	seq      int // enqueue sequence number (queue-order tie break)

	// --- owner-worker state (read by assembly/checkpoint after the
	// scheduler quiesces) ---

	execs    []mcExec
	children []*mcChild
	// popped: a worker dequeued the unit (its trail may have advanced);
	// started: it ran at least one execution; done: its sub-DFS ran to
	// exhaustion; stoppedAt/trailSnap: it observed a stop at its loop
	// top and snapshotted its trail — the checkpoint resume point.
	popped    bool
	started   bool
	done      bool
	stoppedAt bool
	trailSnap []decision
	// dporSnap is the unit's partial-order-reduction registration set as
	// of the stop (pre-seeded with the resumed checkpoint's keys so a
	// unit parked before running re-checkpoints them intact).
	dporSnap []DPORKey
	// resumeDPOR holds a resumed checkpoint's keys to replay into the
	// live set when the unit starts.
	resumeDPOR []DPORKey
	// snapRestores/dporPruned/work: per-unit diagnostics, summed into
	// the Result by the assembly walk.
	snapRestores int
	dporPruned   int
	work         time.Duration
}

// mcSubtree is the shared record of one crash-target subtree: the
// classification outcome of its first execution plus the running
// execution total the budget allowance consults. All classification
// fields are written only by the subtree's classify unit's worker and
// read after the scheduler quiesces.
type mcSubtree struct {
	rootUnit *mcUnit
	// nexecs counts executions recorded by all of the subtree's units —
	// the monotone lower bound later subtrees' allowance subtracts.
	nexecs atomic.Int64
	// pruned: the subtree's crash-0 persistent image matched an earlier
	// subtree's, so its whole enumeration was skipped (state cache).
	pruned bool
	// keyed/key: the first execution registered this state-cache key
	// (a miss); replayed into checkpoints.
	keyed bool
	key   cacheKey
	// injectionFired: the first execution's phase-0 crash injection
	// fired, i.e. subtree ordinal+1 exists and was spawned. Restored
	// from the checkpoint on resume so a re-checkpoint still spawns it.
	injectionFired bool
	// started: execution 0 ran (classifying the subtree), in this run
	// or — restored on resume — before the cut. A started subtree's
	// checkpoint must carry its trail; an unstarted one restarts fresh.
	started bool
}

// mcWorkerState is one scheduler worker's reusable machinery: the
// controller its worlds' choosers close over (unit trails are swapped
// in and out of it) and the world reused across executions *and* units
// (World.Reset restores the initial state exactly; the reuse property
// test asserts it).
type mcWorkerState struct {
	w      *pmem.World
	ctl    *controller
	phases []func(*pmem.World)
}

// mcEngine coordinates the parallel model-checking run: a fixed pool of
// workers draining a canonically ordered queue of work units, with
// busy units donating trail cuts to hungry workers.
type mcEngine struct {
	p         Program
	opt       *Options
	st        *stopper
	numPre    int
	reentrant bool

	wg sync.WaitGroup
	// reg is the campaign metrics registry (nil when observability is
	// off); it gates the engine's optional timestamps.
	reg *obs.Registry

	mu      sync.Mutex
	cond    *sync.Cond
	pending []*mcUnit // insertion-sorted by unitBefore
	active  int       // workers currently running a unit
	waiting int       // workers blocked on cond
	seq     int       // enqueue sequence counter
	steals  int       // donated units (Result.Steals)
	subs    []*mcSubtree

	// hungry mirrors (waiting > 0 && pending empty) so busy units can
	// poll the donation trigger without taking the lock.
	hungry atomic.Bool

	// solo runs the engine as a single exported work unit (RunUnit,
	// unit.go): exactly one subtree's root unit, no successor spawning
	// (the dispatch supervisor spawns successors as their own units), and
	// the budget bounds this unit's recorded executions directly instead
	// of the cross-subtree allowance sum.
	solo       bool
	soloBudget int // 0: unbounded
	// onExec and onClassify are the solo unit's progress hooks (worker
	// heartbeats, early classification reporting). Nil in pool runs.
	onExec     func(n int)
	onClassify func(UnitClassification)

	cache *stateCache // nil when disabled

	// --- resume state (from Options.Resume) ---
	haveResume      bool
	baseExecs       int // canonical executions collected before the cut
	startSubtree    int // the cut subtree's ordinal
	resumeStarted   bool
	resumeTrail     []decision
	resumeSpawnNext bool
	resumeDPOR      []DPORKey
	// primedKeys / baseHits / baseMisses replay the pre-cut cache so
	// re-checkpointing a resumed run stays cumulative.
	primedKeys           []CacheEntry
	baseHits, baseMisses int
}

func newMCEngine(p Program, opt *Options, st *stopper) *mcEngine {
	e := &mcEngine{
		p:         p,
		opt:       opt,
		st:        st,
		numPre:    len(p.Phases()) - 1,
		reentrant: phasesReentrant(p),
		reg:       opt.Obs.Reg(),
	}
	e.cond = sync.NewCond(&e.mu)
	if !opt.NoStateCache && e.numPre > 0 {
		e.cache = newStateCache(obs.CacheInstruments(e.reg))
	}
	if ck := opt.Resume; ck != nil && ck.MC != nil {
		e.haveResume = true
		e.baseExecs = ck.Collected
		e.startSubtree = ck.MC.Subtree
		e.resumeStarted = ck.MC.Started
		e.resumeTrail = trailFromCheckpoint(ck.MC.Trail)
		e.resumeSpawnNext = ck.MC.SpawnNext
		e.resumeDPOR = ck.MC.DPORKeys
		e.primedKeys = ck.MC.CacheKeys
		e.baseHits, e.baseMisses = ck.MC.CacheHits, ck.MC.CacheMisses
		if e.cache != nil {
			for _, ce := range ck.MC.CacheKeys {
				e.cache.prime(cacheKey{image: ce.Image, heap: ce.Heap})
			}
			e.cache.seed(ck.MC.CacheHits, ck.MC.CacheMisses)
		}
	}
	return e
}

// subtree returns (allocating if needed) the record for ordinal v.
func (e *mcEngine) subtree(v int) *mcSubtree {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.subs) <= v {
		e.subs = append(e.subs, &mcSubtree{})
	}
	return e.subs[v]
}

// pathLess is canonical DFS path order: lexicographic on decision
// values, a proper prefix before its extensions.
func pathLess(a, b []int) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// unitBefore is the queue's dispatch order: canonical stream order
// (subtree ordinal, then starting-path order), so the earliest pending
// work — the work a stop would cut at — is always dispatched first.
func unitBefore(a, b *mcUnit) bool {
	if a.subOrd != b.subOrd {
		return a.subOrd < b.subOrd
	}
	if pathLess(a.path, b.path) {
		return true
	}
	if pathLess(b.path, a.path) {
		return false
	}
	return a.seq < b.seq
}

// refreshHungry recomputes the lock-free donation trigger; callers hold
// e.mu.
func (e *mcEngine) refreshHungry() {
	e.hungry.Store(e.waiting > 0 && len(e.pending) == 0)
}

// enqueue inserts a unit into the pending queue in canonical order and
// wakes a waiting worker.
func (e *mcEngine) enqueue(u *mcUnit) {
	e.opt.em.FrontierDepth.Add(1)
	e.mu.Lock()
	u.seq = e.seq
	e.seq++
	i := sort.Search(len(e.pending), func(i int) bool { return unitBefore(u, e.pending[i]) })
	e.pending = append(e.pending, nil)
	copy(e.pending[i+1:], e.pending[i:])
	e.pending[i] = u
	if u.stolen {
		e.steals++
	}
	e.refreshHungry()
	e.mu.Unlock()
	e.cond.Broadcast()
}

// spawnRoot enqueues subtree v's root unit. It is called either for the
// start subtree or from subtree v-1's first execution after it
// registered its crash-0 image, which keeps the state-cache
// registration order — and so the hit/miss pattern — deterministic.
func (e *mcEngine) spawnRoot(v int) {
	if e.solo {
		// The classification (sub.injectionFired) is still recorded; the
		// dispatch supervisor — not this engine — owns the successor.
		return
	}
	sub := e.subtree(v)
	u := &mcUnit{sub: sub, subOrd: v, classify: true}
	if e.numPre > 0 {
		u.trail = []decision{{val: v, domain: v + 1}}
	}
	u.path = trailValues(u.trail)
	sub.rootUnit = u
	e.enqueue(u)
}

// start seeds the queue with the first subtree's root unit, restoring
// the resume state when continuing a checkpointed run.
func (e *mcEngine) start() {
	v := e.startSubtree
	sub := e.subtree(v)
	u := &mcUnit{sub: sub, subOrd: v, classify: true}
	if e.numPre > 0 {
		u.trail = []decision{{val: v, domain: v + 1}}
	}
	if e.haveResume && e.resumeStarted {
		// Resume the cut subtree mid-DFS: adopt its snapshotted trail and
		// skip the first-execution classification — its cache
		// registration happened before the cut (replayed from the
		// checkpoint) and its successor, if any, is spawned here. The
		// classification outcome itself (started, injectionFired) is
		// restored too, so a second cut re-checkpoints it faithfully.
		// The DPOR registrations ride along the same way (keys are
		// path-deterministic, so they compare across processes), pre-
		// seeding dporSnap so even a unit parked by an instant stop
		// re-checkpoints them.
		u.classify = false
		u.trail = append([]decision(nil), e.resumeTrail...)
		u.resumeDPOR = e.resumeDPOR
		u.dporSnap = e.resumeDPOR
		sub.started = true
		sub.injectionFired = e.resumeSpawnNext
		if e.resumeSpawnNext {
			e.spawnRoot(v + 1)
		}
	}
	u.path = trailValues(u.trail)
	sub.rootUnit = u
	e.enqueue(u)
}

// allowance reports whether unit u may run another execution under the
// global cap. It compares the unit's lower-bound canonical offset
// against the cap minus the executions recorded by all earlier
// subtrees (plus, on resume, the checkpoint's already-collected
// count): since those counts only grow toward their final values and
// baseOff underestimates the unit's true offset, the bound is
// conservative — a unit can overshoot (trimmed at assembly) but never
// stops before producing every execution the canonical first-cap
// prefix needs.
func (e *mcEngine) allowance(u *mcUnit) bool {
	if e.solo {
		// Solo units get an explicit per-unit budget from the dispatch
		// supervisor (a conservative overestimate of the canonical
		// remainder; the supervisor truncates at assembly exactly like
		// this engine's own walk).
		return e.soloBudget <= 0 || len(u.execs) < e.soloBudget
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	sum := e.baseExecs
	for i := 0; i < u.subOrd && i < len(e.subs); i++ {
		sum += int(e.subs[i].nexecs.Load())
	}
	return u.baseOff+len(u.execs) < e.opt.Executions-sum
}

// donate carves the shallowest still-unexplored cut off ctl's live
// trail into a new stolen unit and enqueues it. A trail index is
// donatable when it has unexplored sibling values: a closed decision
// with val+1 < domain, or a still-open crash decision that already
// fired (it has deeper trail entries) — an open decision at the trail's
// *last* index is excluded, because its current value has not run yet:
// if that value turns out past the phase's op count, the donated val+1
// would re-enumerate the same "crash after the last operation" run.
//
// The child takes values val+1.. at the cut (its trail keeps the
// original domain there); the donor's live domain is clamped to val+1
// and a capRec preserves the original for checkpoints. Inherited caps
// at or below the cut ride along to the child, so a cut at *it* also
// restores every ancestor domain.
func (e *mcEngine) donate(u *mcUnit, ctl *controller) {
	trail := ctl.trail
	for i := u.root; i < len(trail); i++ {
		d := trail[i]
		if d.val+1 < d.domain || (d.domain < 0 && i < len(trail)-1) {
			child := &mcUnit{
				sub:     u.sub,
				subOrd:  u.subOrd,
				root:    i,
				stolen:  true,
				baseOff: u.baseOff + len(u.execs),
			}
			child.trail = append([]decision(nil), trail[:i+1]...)
			child.trail[i].val = d.val + 1
			child.path = trailValues(child.trail)
			for _, c := range u.caps {
				if c.idx <= i {
					child.caps = append(child.caps, c)
				}
			}
			u.caps = append(u.caps, capRec{idx: i, dom: d.domain})
			ctl.trail[i].domain = d.val + 1
			u.children = append(u.children, &mcChild{unit: child, cut: i, splitAt: -1})
			e.opt.em.Steals.Inc()
			e.opt.fr.Record("explore", "steal", -1,
				fmt.Sprintf("subtree %d carved at trail %d", u.subOrd, i))
			e.enqueue(child)
			return
		}
	}
}

// passCuts records that a backtrack changed trail index pChanged: every
// carved child whose cut index was popped is now "passed" — all of the
// donor's future executions are canonically after the child's range —
// and its splitAt freezes at the donor's current execution count. The
// matching caps are dropped: the live trail no longer holds those
// decisions, and a later execution may re-create them with fresh
// domains a stale record would corrupt.
func (u *mcUnit) passCuts(pChanged int) {
	for _, c := range u.children {
		if !c.passed && c.cut > pChanged {
			c.passed = true
			c.splitAt = len(u.execs)
		}
	}
	kept := u.caps[:0]
	for _, c := range u.caps {
		if c.idx <= pChanged {
			kept = append(kept, c)
		}
	}
	u.caps = kept
}

// markDone finishes an exhausted unit: any still-unpassed children
// (carved at indices the final backtrack never popped past, because the
// search ended) sit canonically after everything the unit ran.
func (u *mcUnit) markDone() {
	for _, c := range u.children {
		if !c.passed {
			c.passed = true
			c.splitAt = len(u.execs)
		}
	}
	u.done = true
}

// backtrackFrom advances the trail to the next unexplored branch
// without ever popping the decision at index root — the unit's floor.
// With root 0 it is exactly the serial controller's backtrack (a closed
// exhausted decision at index 0 just reports exhaustion one pop
// earlier, with the trail left in place).
func (c *controller) backtrackFrom(root int) bool {
	for len(c.trail) > root {
		last := &c.trail[len(c.trail)-1]
		if last.domain < 0 || last.val+1 < last.domain {
			last.val++
			c.pos = 0
			return true
		}
		if len(c.trail)-1 == root {
			return false
		}
		c.trail = c.trail[:len(c.trail)-1]
	}
	return false
}

// worker is one scheduler goroutine: pop the canonically earliest
// pending unit, run its bounded sub-DFS, repeat until the queue drains
// with no unit in flight (or a stop parks everything). The stop check
// happens *before* popping, so a stopped run leaves parked units
// parked — the assembly cut then falls on the earliest of them with the
// unit's starting trail intact for the checkpoint.
func (e *mcEngine) worker(id int) {
	defer e.wg.Done()
	tid := id + 1 // 1-based worker timeline, matching random mode
	wm := obs.WorkerInstruments(e.reg, tid)
	e.opt.tr.NameThread(tid, "worker-"+strconv.Itoa(tid))
	metered := wm.IdleNanos != nil
	ws := &mcWorkerState{ctl: &controller{}}
	if e.reentrant {
		// Reentrant phase slices are world-pure; resolve once. The
		// non-reentrant (InstancedProgram) contract is one Phases call
		// per execution, done per execution in runUnit.
		ws.phases = e.p.Phases()
	}
	for {
		var idleStart time.Time
		if metered {
			idleStart = time.Now()
		}
		e.mu.Lock()
		waited := false
		for !e.st.stopped() && len(e.pending) == 0 && e.active > 0 {
			e.waiting++
			e.refreshHungry()
			waited = true
			e.cond.Wait()
			e.waiting--
			e.refreshHungry()
		}
		if e.st.stopped() || len(e.pending) == 0 {
			// Stopped, or natural drain (queue empty, nothing in flight
			// that could refill it). A worker that went hungry and is
			// exiting while work still exists was starved by the stop.
			starved := waited && (len(e.pending) > 0 || e.active > 0)
			e.mu.Unlock()
			if metered {
				idle := int64(time.Since(idleStart))
				wm.IdleNanos.Add(idle)
				e.opt.em.WorkerIdle.Add(idle)
			}
			if starved {
				e.opt.em.StealFailures.Inc()
			}
			return
		}
		u := e.pending[0]
		e.pending = e.pending[1:]
		e.active++
		e.refreshHungry()
		e.mu.Unlock()
		if metered {
			idle := int64(time.Since(idleStart))
			wm.IdleNanos.Add(idle)
			e.opt.em.WorkerIdle.Add(idle)
		}
		wm.Dispatches.Inc()
		start := time.Now()
		e.runUnit(u, ws, tid)
		u.work += time.Since(start)
		wm.BusyNanos.Add(int64(u.work))
		e.opt.em.FrontierDepth.Add(-1)
		e.mu.Lock()
		e.active--
		e.refreshHungry()
		e.mu.Unlock()
		e.cond.Broadcast()
	}
}

// runUnit runs unit u's bounded sub-DFS: every execution of the
// decision tree under u.trail whose backtracks stay at or above
// u.root, enumerated exactly as the serial DFS would (modulo ranges
// donated away, which the assembly walk splices back in order).
//
// Two reductions ride on the sub-DFS, both unit-local so any worker
// count — and any checkpoint cut — produces the same canonical stream:
//
//   - Prefix snapshots (useSnaps): after every crash the world is
//     snapshotted; after a backtrack the deepest snapshot whose decision
//     prefix is still unchanged is restored and only the suffix phases
//     re-run. Bit-identical results, integer-factor fewer phase
//     executions.
//   - DPOR (dporSeen != nil): a deeper crash state equal to one already
//     enumerated in this unit is pruned — counted like a state-cache
//     prune, contributing no execution. The check is skipped while the
//     trail is still replaying the previous execution's prefix
//     (ctl.pos <= pChanged): an unchanged prefix trivially reproduces
//     its own registered states and must not prune its own siblings.
//     DPOR registration sets are subtree-scoped, so a DPOR-active root
//     unit never donates (a carved child would split the set and change
//     which executions are pruned); such programs parallelize across
//     subtrees only, exactly like the pre-stealing engine.
//
// Both require reentrant phases (ReentrantPhases): a snapshot resume
// re-enters a later phase without re-running earlier ones, and DPOR's
// equal-state-equal-continuation argument needs all cross-phase state
// inside the World.
func (e *mcEngine) runUnit(u *mcUnit, ws *mcWorkerState, tid int) {
	sub := u.sub
	ctl := ws.ctl
	ctl.trail = u.trail
	ctl.pos = 0
	u.popped = true
	first := u.classify
	// pChanged is the trail index of the decision the last backtrack
	// changed: decisions at indices <= pChanged replay the previous
	// execution's prefix unchanged. -1 before a fresh subtree's first
	// execution (everything is new); a carved or resumed trail always
	// sits just after a backtrack, so its whole prefix counts.
	pChanged := -1
	if !first {
		pChanged = len(ctl.trail) - 1
	}
	useSnaps := e.reentrant && !e.opt.DisableSnapshots && !e.opt.FreshWorlds
	var dporSeen map[dporKey]struct{}
	if e.reentrant && !e.opt.DisableDPOR && e.numPre > 1 && !u.stolen {
		dporSeen = make(map[dporKey]struct{})
		for _, k := range u.resumeDPOR {
			dporSeen[dporKey{phase: k.Phase, image: k.Image, heap: k.Heap, ops: k.Ops, checker: k.Checker, trace: k.Trace}] = struct{}{}
		}
	}
	// Donation gating: DPOR-active units keep their whole range (see
	// above); armed chaos injection disables demand-driven donation
	// (unit-local fault ordinals must not depend on scheduler timing)
	// unless ForceSteals makes the unit tree trail-driven.
	canDonate := dporSeen == nil && !e.opt.DisableStealing &&
		(e.opt.ForceSteals || e.opt.InjectFault == nil)
	// snaps is unit-local: a unit's first execution always replays from
	// the program start (or a fresh world), never from another unit's
	// snapshot.
	var snaps []phaseSnap
	dporHit := false
	// onCrash runs after every crash of every execution: first-execution
	// subtree classification, then the DPOR probe, then the snapshot.
	onCrash := func(phase int, fired bool) bool {
		if first && phase == 0 {
			// The subtree's first execution classifies the subtree at
			// its first crash: record whether the injection fired (so
			// the next subtree exists), then consult the state cache —
			// every execution of the subtree shares the same phase-0
			// prefix and so the same crash-0 image.
			keep := true
			if e.cache != nil {
				ps := e.opt.tr.Now()
				k := stateKey(ws.w)
				hit := e.cache.lookupOrRegister(k)
				e.opt.tr.CompleteSince(tid, "statecache", "cache-probe", ps, -1)
				if hit {
					sub.pruned = true
					keep = false
				} else {
					sub.keyed = true
					sub.key = k
				}
			}
			if fired && e.numPre > 0 {
				sub.injectionFired = true
				e.spawnRoot(u.subOrd + 1)
			}
			if e.onClassify != nil {
				e.onClassify(UnitClassification{
					Pruned:         sub.pruned,
					Keyed:          sub.keyed,
					Key:            CacheEntry{Image: sub.key.image, Heap: sub.key.heap},
					InjectionFired: sub.injectionFired,
				})
			}
			if !keep {
				return false
			}
		}
		if dporSeen != nil && phase >= 1 && ctl.pos > pChanged {
			k := dporKeyOf(phase, ws.w)
			if _, ok := dporSeen[k]; ok {
				dporHit = true
				return false
			}
			dporSeen[k] = struct{}{}
		}
		if useSnaps {
			snaps = append(snaps, phaseSnap{ws: ws.w.Snapshot(), phase: phase, pos: ctl.pos})
			e.opt.em.SnapshotsTaken.Inc()
		}
		return true
	}
	for {
		if e.st.stopped() {
			// Snapshot the resume point: the trail sits at the next
			// unexplored execution (backtrack already advanced it).
			u.stoppedAt = true
			u.trailSnap = append([]decision(nil), ctl.trail...)
			if dporSeen != nil {
				u.dporSnap = dporKeysOf(dporSeen)
			}
			break
		}
		// Donation before the allowance check: the carve decision must
		// depend only on the trail (and, in demand mode, on worker
		// hunger) — never on the cross-subtree execution totals the
		// allowance reads, which near a binding budget vary with
		// scheduling.
		if canDonate && (e.opt.ForceSteals || e.hungry.Load()) {
			e.donate(u, ctl)
		}
		if !e.allowance(u) {
			break
		}
		e.opt.em.Started.Inc()
		var execStart time.Time
		if e.reg != nil || e.opt.tr != nil {
			execStart = time.Now()
		}
		startPhase := 0
		switch {
		case ws.w == nil || e.opt.FreshWorlds:
			ws.w = mcWorld(e.opt, ctl)
			snaps = pruneSnaps(snaps, -1)
			ctl.pos = 0
		case len(snaps) > 0:
			// Resume from the deepest crash snapshot that survived the
			// last backtrack: the world state after phase `top.phase`'s
			// crash, with `top.pos` decisions consumed, is identical to
			// what a full replay would recompute.
			top := snaps[len(snaps)-1]
			ws.w.Restore(top.ws)
			ctl.pos = top.pos
			startPhase = top.phase + 1
			u.snapRestores++
			e.opt.em.SnapshotsRestored.Inc()
		default:
			ws.w.Reset(0)
			if e.opt.DisableChecker {
				ws.w.Checker.SetEnabled(false)
			}
			ctl.pos = 0
		}
		installProbe(ws.w, e.opt, len(u.execs))
		ph := ws.phases
		if ph == nil {
			ph = e.p.Phases()
		}
		oc := onCrash
		if !first && dporSeen == nil && !useSnaps {
			oc = nil // no per-crash work left; keep the hot path bare
		}
		aborted, pruned, execErr := runPhasesMC(ph, ws.w, ctl, startPhase, oc, e.opt.tr, tid)
		switch {
		case pruned:
			e.opt.em.Pruned.Inc()
		case execErr != nil:
			e.opt.em.Quarantined.Inc()
			e.opt.fr.Record("explore", "quarantine", -1, execErr.Kind)
		case aborted:
			e.opt.em.Aborted.Inc()
		default:
			e.opt.em.Completed.Inc()
		}
		if !execStart.IsZero() {
			d := time.Since(execStart)
			e.opt.em.ExecNanos.Observe(int64(d))
			e.opt.tr.Complete(tid, "explore", "execution", execStart, d, -1)
		}
		if first {
			sub.started = true
		}
		first = false
		u.started = true
		if pruned && !dporHit {
			// The whole subtree is a duplicate of one already explored;
			// it contributes no executions.
			u.markDone()
			break
		}
		if dporHit {
			// A deeper crash state already enumerated in this unit: the
			// continuation is skipped (counted in Pruned, no execution
			// recorded), the sub-DFS walks on.
			dporHit = false
			u.dporPruned++
			e.opt.em.DPORPruned.Inc()
			if !ctl.backtrackFrom(u.root) {
				u.markDone()
				break
			}
			pChanged = len(ctl.trail) - 1
			u.passCuts(pChanged)
			snaps = pruneSnaps(snaps, pChanged)
			continue
		}
		ex := mcExec{aborted: aborted, execErr: execErr}
		if execErr != nil {
			// The panic left the world in an undefined state: discard
			// it (next iteration builds fresh) and drop its violations,
			// along with every snapshot taken in it. DPOR registrations
			// survive — the keys are path-deterministic, not
			// world-relative.
			execErr.Program = e.p.Name()
			execErr.Mode = ModelCheck
			execErr.Prefix = trailValues(ctl.trail)
			ws.w = nil
			snaps = pruneSnaps(snaps, -1)
		} else {
			ex.violations = ws.w.Checker.Violations()
			ex.ops = int64(ws.w.Ops())
			rs := ws.w.M.Trace().Retired()
			ex.retirements = int64(rs.Retirements)
			ex.retiredStores = int64(rs.RetiredStores)
			ex.retiredEvents = int64(rs.RetiredEvents)
			ex.pinnedRoots = int64(rs.MaxPinnedRoots)
			ex.sweepNanos = ws.w.SweepNanos()
		}
		u.execs = append(u.execs, ex)
		sub.nexecs.Add(1)
		if e.onExec != nil {
			e.onExec(len(u.execs))
		}
		if !ctl.backtrackFrom(u.root) {
			u.markDone()
			break
		}
		pChanged = len(ctl.trail) - 1
		u.passCuts(pChanged)
		snaps = pruneSnaps(snaps, pChanged)
	}
	// Hand the (possibly reallocated) live trail back to the unit; the
	// checkpoint path reads trailSnap for units stopped mid-DFS and the
	// starting trail for parked ones, but keeping the field current
	// costs nothing and aids debugging.
	u.trail = ctl.trail
	// Snapshots never outlive the unit (the world is reused by the next
	// one).
	pruneSnaps(snaps, -1)
}

// asm is the assembly walk's accumulator: it splices every unit's
// execution list back into canonical depth-first order, truncates at
// the Executions cap, and finds the cut — the first unit in canonical
// order with uncollected work.
type asm struct {
	e         *mcEngine
	res       *Result
	seen      map[string]bool
	idx       int     // canonical stream cursor
	cut       *mcUnit // first unit with uncollected work
	truncated bool    // the Executions cap bound before the frontier drained
	frontier  int     // units with uncollected work
}

// walk assembles unit u: its own executions interleaved with its passed
// children's streams at their split points — which is exactly canonical
// order (every parent execution before splitAt precedes the child's
// whole range, every one after follows it; children sort by splitAt,
// then path). Past the cut nothing is collected — a resume re-derives
// it — but the walk continues for the frontier count and the
// diagnostic sums. Unpassed children are always canonically after
// their donor's remaining work, so they are walked last, after the
// donor's own cut (if any) is recorded.
func (a *asm) walk(u *mcUnit) {
	a.res.WorkerTime += u.work
	a.res.SnapshotRestores += u.snapRestores
	a.res.DPORPruned += u.dporPruned
	var passed []*mcChild
	for _, c := range u.children {
		if c.passed {
			passed = append(passed, c)
		}
	}
	sort.SliceStable(passed, func(i, j int) bool {
		if passed[i].splitAt != passed[j].splitAt {
			return passed[i].splitAt < passed[j].splitAt
		}
		return pathLess(passed[i].unit.path, passed[j].unit.path)
	})
	collected := true
	pi := 0
	for ei := 0; ei <= len(u.execs); ei++ {
		for pi < len(passed) && passed[pi].splitAt == ei {
			a.walk(passed[pi].unit)
			pi++
		}
		if ei == len(u.execs) {
			break
		}
		if a.cut == nil && a.idx >= a.e.opt.Executions {
			a.truncated = true
			a.cut = u
		}
		if a.cut != nil {
			collected = false
			continue
		}
		ex := u.execs[ei]
		if ex.execErr != nil && ex.execErr.Exec < 0 {
			ex.execErr.Exec = a.idx
		}
		a.res.collect(execOutcome{
			index: a.idx, aborted: ex.aborted, violations: ex.violations, execErr: ex.execErr,
			ops: ex.ops, retirements: ex.retirements,
			retiredStores: ex.retiredStores, retiredEvents: ex.retiredEvents,
			pinnedRoots: ex.pinnedRoots, sweepNanos: ex.sweepNanos,
		}, a.seen, a.e.opt)
		a.idx++
	}
	if !u.done && a.cut == nil {
		a.cut = u
	}
	if !u.done || !collected {
		a.frontier++
	}
	for _, c := range u.children {
		if !c.passed {
			a.walk(c.unit)
		}
	}
}

// run executes the engine and assembles the canonical result.
func (e *mcEngine) run() *Result {
	res := &Result{Program: e.p.Name(), Mode: ModelCheck, Workers: e.opt.Workers}
	start := time.Now()
	seen := make(map[string]bool)
	if e.haveResume {
		primeFromCheckpoint(res, seen, e.opt.Resume)
	}
	e.start()
	for i := 0; i < e.opt.Workers; i++ {
		e.wg.Add(1)
		go e.worker(i)
	}
	e.wg.Wait()
	// Units a stop left parked never ran; retire their frontier-gauge
	// contribution here so the gauge always returns to zero.
	for range e.pending {
		e.opt.em.FrontierDepth.Add(-1)
	}

	// Assembly: walk each subtree's unit tree in subtree order,
	// splicing unit streams into canonical depth-first visit order and
	// truncating at the cap. Collector callbacks (Progress) therefore
	// see strictly increasing indices no matter how units were
	// scheduled or stolen. Collection stops at the cut — the first unit
	// with uncollected work; everything canonically after it is dropped
	// and re-derived on resume.
	a := &asm{e: e, res: res, seen: seen, idx: e.baseExecs}
	for si := e.startSubtree; si < len(e.subs); si++ {
		if u := e.subs[si].rootUnit; u != nil {
			a.walk(u)
		}
	}
	e.mu.Lock()
	res.Steals = e.steals
	e.mu.Unlock()
	if e.cache != nil {
		res.CacheHits, res.CacheMisses = e.cache.stats()
	}
	if a.cut != nil {
		res.Partial = true
		if e.st.stopped() {
			res.noteStop(e.st.why())
		} else {
			res.noteStop("exec-budget")
		}
		res.FrontierRemaining = a.frontier
		// A checkpoint needs the cut unit's canonical position to line
		// up with a trail: either the unit observed the stop at its
		// loop top (trailSnap) or it never ran (its starting trail is
		// the cut). Budget truncation — including a unit that bowed out
		// on its allowance — yields no checkpoint; re-run with a larger
		// budget instead.
		if e.st.stopped() && !a.truncated && (a.cut.stoppedAt || !a.cut.popped) {
			res.Checkpoint = e.checkpoint(res, seen, a.cut, a.idx)
		}
	} else if e.st.stopped() {
		// Stop observed in the same tick the last unit finished: the
		// run is complete but the reason is still reported (noteStop).
		res.noteStop(e.st.why())
	}
	res.Elapsed = time.Since(start)
	return res
}

// checkpoint builds the resume state for a stop cut at unit cutU. The
// persisted trail is the cut unit's with every live domain cap undone
// (capRec.dom): the donated ranges those caps carved off are all
// canonically after the cut, so restoring the original domains makes
// the resumed run's unbounded backtrack re-derive exactly the dropped
// remainder.
func (e *mcEngine) checkpoint(res *Result, seen map[string]bool, cutU *mcUnit, collected int) *Checkpoint {
	mc := &MCCheckpoint{
		Subtree: cutU.subOrd,
		// A stolen unit always carries a trail (its carved prefix); a
		// subtree root only once its first execution ran.
		Started:   cutU.started || !cutU.classify,
		SpawnNext: cutU.sub.injectionFired,
	}
	if mc.Started {
		src := cutU.trail
		if cutU.stoppedAt {
			src = cutU.trailSnap
		}
		t := append([]decision(nil), src...)
		for _, c := range cutU.caps {
			if c.idx < len(t) {
				t[c.idx].domain = c.dom
			}
		}
		mc.Trail = trailToCheckpoint(t)
		mc.DPORKeys = cutU.dporSnap
	}
	// Cache registrations of subtrees up to the cut, in registration
	// (spawn-chain = ordinal) order: the pre-cut primed keys first, then
	// this run's. Hit/miss counters likewise cover only subtrees up to
	// the cut — later subtrees' lookups are re-derived on resume.
	mc.CacheKeys = append(mc.CacheKeys, e.primedKeys...)
	mc.CacheHits, mc.CacheMisses = e.baseHits, e.baseMisses
	for si := e.startSubtree; si <= cutU.subOrd && si < len(e.subs); si++ {
		sub := e.subs[si]
		if sub.keyed {
			mc.CacheKeys = append(mc.CacheKeys, CacheEntry{Image: sub.key.image, Heap: sub.key.heap})
			mc.CacheMisses++
		}
		if sub.pruned {
			mc.CacheHits++
		}
	}
	return &Checkpoint{
		Version:       checkpointVersion,
		Program:       res.Program,
		Mode:          ModelCheck.String(),
		Seed:          e.opt.Seed,
		Model:         resolveModel(e.opt.Model.Name),
		Window:        e.opt.Model.Window,
		DPOR:          !e.opt.DisableDPOR,
		Collected:     collected,
		Aborted:       res.Aborted,
		Quarantined:   res.Quarantined,
		ViolationKeys: keysOf(seen),
		MC:            mc,
	}
}
