// Parallel exploration engine: a worker pool for random mode and a
// frontier-split depth-first search for model-checking mode.
//
// Determinism is the design constraint. Per-execution worlds are fully
// self-contained (machine, trace, checker, heap, RNG), so executions
// can run on any worker; what must not leak is *scheduling*. Random
// mode derives every execution's seed from its index, and a collector
// folds outcomes into the result strictly in index order. Model-check
// mode splits the DFS at the first decision — the phase-0 crash target
// — into independent subtrees, runs each subtree's sub-DFS serially on
// one worker, and assembles the per-subtree execution lists in subtree
// order, truncated at the Executions cap, which is byte-for-byte the
// order the serial DFS visits. See DESIGN.md, "Parallel exploration".
package explore

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/pmem"
)

// collectorSlack bounds how far ahead of the collector workers may run:
// at most Workers*collectorSlack executions are in flight or buffered
// out of order at once, which bounds retained worlds/violations.
const collectorSlack = 4

// runRandomParallel fans random-mode executions over opt.Workers
// goroutines and folds outcomes through the ordered collector. Results
// are bit-identical to the serial loop: seeds depend only on indices,
// and collect runs in index order on the calling goroutine.
func runRandomParallel(p Program, opt *Options, plan *randomPlan, res *Result, seen map[string]bool) {
	tokens := make(chan struct{}, opt.Workers*collectorSlack)
	outc := make(chan execOutcome, opt.Workers*collectorSlack)
	var next int64 = -1
	for i := 0; i < opt.Workers; i++ {
		go func() {
			ws := &workerState{} // worker-lifetime reusable world + scratch
			for {
				tokens <- struct{}{} // wait for the collector to keep up
				exec := int(atomic.AddInt64(&next, 1))
				if exec >= opt.Executions {
					<-tokens
					return
				}
				outc <- randomExecution(p, opt, plan, ws, exec)
			}
		}()
	}
	// Ordered collector: buffer out-of-order outcomes, emit in index
	// order, releasing one token per emitted execution. Any pending
	// index is held by a worker that owns a token, so the collector can
	// never wait on a worker that is blocked acquiring one.
	pending := make(map[int]execOutcome)
	for nextIdx := 0; nextIdx < opt.Executions; {
		o := <-outc
		pending[o.index] = o
		for {
			q, ok := pending[nextIdx]
			if !ok {
				break
			}
			delete(pending, nextIdx)
			res.collect(q, seen, opt)
			nextIdx++
			<-tokens
		}
	}
}

// --- model checking: frontier-split DFS ---

// mcExec is one completed execution inside a subtree, in sub-DFS order.
type mcExec struct {
	aborted    bool
	violations []*core.Violation
}

// mcSubtree is the record of one crash-target subtree: every execution
// of the DFS whose phase-0 crash target equals the subtree's ordinal.
type mcSubtree struct {
	execs []mcExec
	// pruned: the subtree's crash-0 persistent image matched an earlier
	// subtree's, so its whole enumeration was skipped (state cache).
	pruned bool
	// work is the wall-clock time this subtree's worker spent,
	// including a pruned first execution's pre-crash phase.
	work time.Duration
}

// mcEngine coordinates the parallel model-checking run.
type mcEngine struct {
	p      Program
	opt    *Options
	numPre int

	// sem bounds worker concurrency; each subtree goroutine holds one
	// slot for its whole sub-DFS.
	sem chan struct{}
	wg  sync.WaitGroup

	mu    sync.Mutex
	subs  []*mcSubtree // indexed by subtree ordinal (= phase-0 target)
	cache *stateCache  // nil when disabled
}

func newMCEngine(p Program, opt *Options) *mcEngine {
	e := &mcEngine{
		p:      p,
		opt:    opt,
		numPre: len(p.Phases()) - 1,
		sem:    make(chan struct{}, opt.Workers),
	}
	if !opt.NoStateCache && e.numPre > 0 {
		e.cache = newStateCache()
	}
	return e
}

// subtree returns (allocating if needed) the record for ordinal v.
func (e *mcEngine) subtree(v int) *mcSubtree {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.subs) <= v {
		e.subs = append(e.subs, &mcSubtree{})
	}
	return e.subs[v]
}

// allowance reports whether subtree v, having run mine executions, may
// run another under the global cap. It compares against the cap minus
// the executions recorded by all earlier subtrees: since their counts
// only grow toward their final values, the bound is conservative — a
// subtree can overshoot (trimmed at assembly) but never stops before
// producing every execution the canonical first-cap prefix needs.
func (e *mcEngine) allowance(v, mine int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	sum := 0
	for i := 0; i < v && i < len(e.subs); i++ {
		sum += len(e.subs[i].execs)
	}
	return mine < e.opt.Executions-sum
}

// spawn starts subtree v's sub-DFS once a worker slot frees up. It is
// called either for the root (v=0) or from subtree v-1 after its first
// execution registered its crash-0 image, which makes the state-cache
// registration order — and so the hit/miss pattern — deterministic.
func (e *mcEngine) spawn(v int) {
	e.subtree(v) // allocate the record before the goroutine races to it
	e.wg.Add(1)
	go e.runSubtree(v)
}

// runSubtree runs the full sub-DFS of subtree v: every execution whose
// phase-0 crash target is v, enumerated exactly as the serial DFS
// would. The controller trail is primed with the closed decision
// {val: v, domain: v+1}, so backtracking exhausts the subtree and stops.
func (e *mcEngine) runSubtree(v int) {
	defer e.wg.Done()
	e.sem <- struct{}{}
	defer func() { <-e.sem }()

	sub := e.subtree(v)
	start := time.Now()
	defer func() {
		e.mu.Lock()
		sub.work += time.Since(start)
		e.mu.Unlock()
	}()

	ctl := &controller{}
	if e.numPre > 0 {
		ctl.trail = []decision{{val: v, domain: v + 1}}
	}
	first := true
	// One world serves the whole sub-DFS (its chooser closes over this
	// subtree's controller); it is reset between executions.
	var w *pmem.World
	targets := make([]int, e.numPre)
	decIdx := make([]int, e.numPre)
	for {
		if !e.allowance(v, len(sub.execs)) {
			return
		}
		ctl.pos = 0
		if w == nil || e.opt.FreshWorlds {
			w = mcWorld(e.opt, ctl)
		} else {
			w.Reset(0)
			if e.opt.DisableChecker {
				w.Checker.SetEnabled(false)
			}
		}
		for i := range targets {
			decIdx[i] = ctl.pos
			targets[i] = ctl.next(-1)
		}
		var onCrash func(phase int, fired bool) bool
		if first {
			// The subtree's first execution classifies the subtree at
			// its first crash: record whether the injection fired (so
			// the next subtree exists), then consult the state cache —
			// every execution of the subtree shares the same phase-0
			// prefix and so the same crash-0 image.
			onCrash = func(phase int, fired bool) bool {
				if phase != 0 {
					return true
				}
				keep := true
				if e.cache != nil {
					if hit := e.cache.lookupOrRegister(stateKey(w)); hit {
						sub.pruned = true
						keep = false
					}
				}
				if fired && e.numPre > 0 {
					e.spawn(v + 1)
				}
				return keep
			}
		}
		aborted, injected, pruned := runPhases(e.p, w, targets, onCrash)
		first = false
		if pruned {
			// The whole subtree is a duplicate of one already explored;
			// it contributes no executions.
			return
		}
		// Close crash-target decisions whose injection did not fire
		// (phase ran to completion; larger targets are equivalent). The
		// primed phase-0 decision is born closed and skipped here.
		for i, fired := range injected {
			if !fired && ctl.trail[decIdx[i]].domain < 0 {
				ctl.closeCurrent(decIdx[i], targets[i]+1)
			}
		}
		e.mu.Lock()
		sub.execs = append(sub.execs, mcExec{aborted: aborted, violations: w.Checker.Violations()})
		e.mu.Unlock()
		if !ctl.backtrack() {
			return
		}
	}
}

// run executes the engine and assembles the canonical result.
func (e *mcEngine) run() *Result {
	res := &Result{Program: e.p.Name(), Mode: ModelCheck, Workers: e.opt.Workers}
	start := time.Now()
	e.spawn(0)
	e.wg.Wait()

	// Assembly: concatenate subtree execution lists in subtree order —
	// exactly the serial DFS visit order — and truncate at the cap.
	// Collector callbacks (Progress) therefore see strictly increasing
	// indices no matter how the subtrees were scheduled.
	seen := make(map[string]bool)
	idx := 0
	for _, sub := range e.subs {
		res.WorkerTime += sub.work
		for _, ex := range sub.execs {
			if idx >= e.opt.Executions {
				break
			}
			res.collect(execOutcome{index: idx, aborted: ex.aborted, violations: ex.violations}, seen, e.opt)
			idx++
		}
	}
	if e.cache != nil {
		res.CacheHits, res.CacheMisses = e.cache.stats()
	}
	res.Elapsed = time.Since(start)
	return res
}
