// Parallel exploration engine: a worker pool for random mode and a
// frontier-split depth-first search for model-checking mode.
//
// Determinism is the design constraint. Per-execution worlds are fully
// self-contained (machine, trace, checker, heap, RNG), so executions
// can run on any worker; what must not leak is *scheduling*. Random
// mode derives every execution's seed from its index, and a collector
// folds outcomes into the result strictly in index order. Model-check
// mode splits the DFS at the first decision — the phase-0 crash target
// — into independent subtrees, runs each subtree's sub-DFS serially on
// one worker, and assembles the per-subtree execution lists in subtree
// order, truncated at the Executions cap, which is byte-for-byte the
// order the serial DFS visits. See DESIGN.md, "Parallel exploration".
//
// Graceful degradation preserves both properties: workers consult the
// run's stopper only *between* executions (an execution, once claimed,
// always runs to completion and is collected), so a stopped run's
// collected stream is always a contiguous prefix of the uninterrupted
// run's canonical stream — which is what makes the checkpoint cut
// well-defined and resume deterministic.
package explore

import (
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/pmem"
)

// collectorSlack bounds how far ahead of the collector workers may run:
// at most Workers*collectorSlack executions are in flight or buffered
// out of order at once, which bounds retained worlds/violations.
const collectorSlack = 4

// runRandomParallel fans random-mode executions over opt.Workers
// goroutines and folds outcomes through the ordered collector. Results
// are bit-identical to the serial loop: seeds depend only on indices,
// and collect runs in index order on the calling goroutine. The stop
// check sits before the index claim, so every claimed index is executed
// and sent — the collected stream has no gaps and the returned cursor
// is the exact resume point. Returns the canonical stream position:
// every execution below it (from startExec) was collected.
func runRandomParallel(p Program, opt *Options, plan *randomPlan, res *Result, seen map[string]bool, st *stopper, startExec int) int {
	tokens := make(chan struct{}, opt.Workers*collectorSlack)
	outc := make(chan execOutcome, opt.Workers*collectorSlack)
	next := int64(startExec) - 1
	var wg sync.WaitGroup
	for i := 0; i < opt.Workers; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			// worker-lifetime reusable world + scratch; tid id+1 is the
			// worker's trace timeline (tid 0 is the campaign thread).
			ws := &workerState{tid: id + 1, tr: opt.tr, wm: obs.WorkerInstruments(opt.Obs.Reg(), id+1)}
			ws.tr.NameThread(ws.tid, "worker-"+strconv.Itoa(ws.tid))
			metered := ws.wm.IdleNanos != nil
			for {
				var idleStart time.Time
				if metered {
					idleStart = time.Now()
				}
				select {
				case tokens <- struct{}{}: // wait for the collector to keep up
				case <-st.done():
					return
				}
				if metered {
					ws.wm.IdleNanos.Add(int64(time.Since(idleStart)))
				}
				if st.stopped() {
					<-tokens
					return
				}
				exec := int(atomic.AddInt64(&next, 1))
				if exec >= opt.Executions {
					<-tokens
					return
				}
				ws.wm.Dispatches.Inc()
				o := randomExecution(p, opt, plan, ws, exec)
				ws.wm.BusyNanos.Add(int64(o.elapsed))
				outc <- o
			}
		}(i)
	}
	go func() {
		wg.Wait()
		close(outc)
	}()
	// Ordered collector: buffer out-of-order outcomes, emit in index
	// order, releasing one token per emitted execution. Any pending
	// index is held by a worker that owns a token, so the collector can
	// never wait on a worker that is blocked acquiring one; and since
	// claimed indices are contiguous and always delivered, draining outc
	// to close leaves no gap below the final cursor.
	pending := make(map[int]execOutcome)
	nextIdx := startExec
	for o := range outc {
		pending[o.index] = o
		for {
			q, ok := pending[nextIdx]
			if !ok {
				break
			}
			delete(pending, nextIdx)
			res.collect(q, seen, opt)
			nextIdx++
			<-tokens
		}
	}
	return nextIdx
}

// --- model checking: frontier-split DFS ---

// phaseSnap is one crash-boundary world snapshot on a subtree's current
// DFS path. It is taken immediately after the crash at `phase`, with
// `pos` controller decisions consumed; restoring it and rerunning
// phases phase+1.. replays the execution's suffix without re-executing
// the prefix. A snapshot stays valid for as long as decisions [0, pos)
// are unchanged — i.e. while every backtrack changes a decision at
// index >= pos (lazy consumption in runPhasesMC makes trail order equal
// decision-use order, which is what makes this check sufficient).
type phaseSnap struct {
	ws    *pmem.WorldSnapshot
	phase int
	pos   int
}

// pruneSnaps pops snapshots invalidated by a backtrack that changed the
// decision at index `changed` (and truncated everything after it).
func pruneSnaps(snaps []phaseSnap, changed int) []phaseSnap {
	for len(snaps) > 0 && snaps[len(snaps)-1].pos > changed {
		snaps[len(snaps)-1] = phaseSnap{} // release the snapshot
		snaps = snaps[:len(snaps)-1]
	}
	return snaps
}

// dporKey identifies a deeper (phase >= 1) crash state completely: the
// surviving persistent image, the allocator mark, the op-budget
// position, the checker's constraint state, and the committed trace.
// Two executions of one subtree that reach equal keys along different
// decision prefixes have identical continuation trees — every future
// load sees the same candidates, the checker commits the same future
// constraints, and the op budget trips at the same point — so the
// second continuation is pruned (dynamic partial-order reduction).
// Every component is derived from path-deterministic identities (store
// IDs, label strings), never raw interner IDs, so keys computed in
// different worlds — or different processes, via checkpoints — compare
// correctly. See DESIGN.md, "Prefix snapshots and partial-order
// reduction", for why read-choice decisions need no such check.
type dporKey struct {
	phase   int
	image   uint64
	heap    int
	ops     int
	checker uint64
	trace   uint64
}

// dporKeyOf computes the key of a just-crashed world.
func dporKeyOf(phase int, w *pmem.World) dporKey {
	return dporKey{
		phase:   phase,
		image:   w.M.PersistFingerprint(),
		heap:    w.Heap.Used(),
		ops:     w.Ops(),
		checker: w.Checker.StateFingerprint(),
		trace:   w.M.Trace().CommittedFingerprint(),
	}
}

// dporKeysOf serializes a registration set in a stable order for
// checkpoints.
func dporKeysOf(seen map[dporKey]struct{}) []DPORKey {
	if len(seen) == 0 {
		return nil
	}
	ks := make([]DPORKey, 0, len(seen))
	for k := range seen {
		ks = append(ks, DPORKey{Phase: k.phase, Image: k.image, Heap: k.heap, Ops: k.ops, Checker: k.checker, Trace: k.trace})
	}
	sort.Slice(ks, func(i, j int) bool {
		a, b := ks[i], ks[j]
		if a.Phase != b.Phase {
			return a.Phase < b.Phase
		}
		if a.Image != b.Image {
			return a.Image < b.Image
		}
		if a.Heap != b.Heap {
			return a.Heap < b.Heap
		}
		if a.Ops != b.Ops {
			return a.Ops < b.Ops
		}
		if a.Checker != b.Checker {
			return a.Checker < b.Checker
		}
		return a.Trace < b.Trace
	})
	return ks
}

// mcExec is one completed execution inside a subtree, in sub-DFS order.
type mcExec struct {
	aborted    bool
	violations []*core.Violation
	// execErr marks a quarantined execution; its canonical index is
	// assigned at assembly time.
	execErr *ExecError
}

// mcSubtree is the record of one crash-target subtree: every execution
// of the DFS whose phase-0 crash target equals the subtree's ordinal.
type mcSubtree struct {
	execs []mcExec
	// pruned: the subtree's crash-0 persistent image matched an earlier
	// subtree's, so its whole enumeration was skipped (state cache).
	pruned bool
	// work is the wall-clock time this subtree's worker spent,
	// including a pruned first execution's pre-crash phase.
	work time.Duration
	// done: the sub-DFS ran to exhaustion (or was pruned); false on a
	// subtree cut short by a stop or the execution budget.
	done bool
	// stoppedAt/trailSnap: the sub-DFS observed a stop at its loop top
	// and snapshotted its decision trail — the checkpoint resume point.
	stoppedAt bool
	trailSnap []decision
	// dporSnap: the sub-DFS's partial-order-reduction registrations,
	// snapshotted alongside the trail (the set is subtree-local, so the
	// checkpoint carries only the cut subtree's).
	dporSnap []DPORKey
	// snapRestores/dporPruned: reduction diagnostics, summed into
	// Result.SnapshotRestores / Result.DPORPruned at assembly.
	snapRestores int
	dporPruned   int
	// keyed/key: the first execution registered this state-cache key
	// (a miss); replayed into checkpoints.
	keyed bool
	key   cacheKey
	// injectionFired: the first execution's phase-0 crash injection
	// fired, i.e. subtree ordinal+1 exists and was spawned. Restored
	// from the checkpoint on resume so a re-checkpoint still spawns it.
	injectionFired bool
	// started: execution 0 ran (classifying the subtree), in this run
	// or — restored on resume — before the cut. A started subtree's
	// checkpoint must carry its trail; an unstarted one restarts fresh.
	started bool
}

// mcEngine coordinates the parallel model-checking run.
type mcEngine struct {
	p      Program
	opt    *Options
	st     *stopper
	numPre int

	// slots bounds worker concurrency; each subtree goroutine holds one
	// slot for its whole sub-DFS. Slots carry stable worker ids (0-based)
	// so a subtree's spans land on the timeline of the worker that
	// actually ran it and per-worker busy/idle counters attribute time to
	// real workers, not to subtrees.
	slots chan int
	wg    sync.WaitGroup
	// reg is the campaign metrics registry (nil when observability is
	// off); it gates the engine's optional timestamps.
	reg *obs.Registry

	mu    sync.Mutex
	subs  []*mcSubtree // indexed by subtree ordinal (= phase-0 target)
	cache *stateCache  // nil when disabled

	// --- resume state (from Options.Resume) ---
	haveResume      bool
	baseExecs       int // canonical executions collected before the cut
	startSubtree    int // the cut subtree's ordinal
	resumeStarted   bool
	resumeTrail     []decision
	resumeSpawnNext bool
	resumeDPOR      []DPORKey
	// primedKeys / baseHits / baseMisses replay the pre-cut cache so
	// re-checkpointing a resumed run stays cumulative.
	primedKeys           []CacheEntry
	baseHits, baseMisses int
}

func newMCEngine(p Program, opt *Options, st *stopper) *mcEngine {
	e := &mcEngine{
		p:      p,
		opt:    opt,
		st:     st,
		numPre: len(p.Phases()) - 1,
		slots:  make(chan int, opt.Workers),
		reg:    opt.Obs.Reg(),
	}
	for i := 0; i < opt.Workers; i++ {
		e.slots <- i
	}
	if !opt.NoStateCache && e.numPre > 0 {
		e.cache = newStateCache(obs.CacheInstruments(e.reg))
	}
	if ck := opt.Resume; ck != nil && ck.MC != nil {
		e.haveResume = true
		e.baseExecs = ck.Collected
		e.startSubtree = ck.MC.Subtree
		e.resumeStarted = ck.MC.Started
		e.resumeTrail = trailFromCheckpoint(ck.MC.Trail)
		e.resumeSpawnNext = ck.MC.SpawnNext
		e.resumeDPOR = ck.MC.DPORKeys
		e.primedKeys = ck.MC.CacheKeys
		e.baseHits, e.baseMisses = ck.MC.CacheHits, ck.MC.CacheMisses
		if e.cache != nil {
			for _, ce := range ck.MC.CacheKeys {
				e.cache.prime(cacheKey{image: ce.Image, heap: ce.Heap})
			}
			e.cache.seed(ck.MC.CacheHits, ck.MC.CacheMisses)
		}
	}
	return e
}

// subtree returns (allocating if needed) the record for ordinal v.
func (e *mcEngine) subtree(v int) *mcSubtree {
	e.mu.Lock()
	defer e.mu.Unlock()
	for len(e.subs) <= v {
		e.subs = append(e.subs, &mcSubtree{})
	}
	return e.subs[v]
}

// allowance reports whether subtree v, having run mine executions, may
// run another under the global cap. It compares against the cap minus
// the executions recorded by all earlier subtrees (plus, on resume, the
// checkpoint's already-collected count): since their counts only grow
// toward their final values, the bound is conservative — a subtree can
// overshoot (trimmed at assembly) but never stops before producing
// every execution the canonical first-cap prefix needs.
func (e *mcEngine) allowance(v, mine int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	sum := e.baseExecs
	for i := 0; i < v && i < len(e.subs); i++ {
		sum += len(e.subs[i].execs)
	}
	return mine < e.opt.Executions-sum
}

// spawn starts subtree v's sub-DFS once a worker slot frees up. It is
// called either for the start subtree or from subtree v-1 after its
// first execution registered its crash-0 image, which makes the
// state-cache registration order — and so the hit/miss pattern —
// deterministic.
func (e *mcEngine) spawn(v int) {
	e.subtree(v) // allocate the record before the goroutine races to it
	e.opt.em.FrontierDepth.Add(1)
	e.wg.Add(1)
	go e.runSubtree(v)
}

// runSubtree runs the full sub-DFS of subtree v: every execution whose
// phase-0 crash target is v, enumerated exactly as the serial DFS
// would. The controller trail is primed with the closed decision
// {val: v, domain: v+1}, so backtracking exhausts the subtree and stops.
//
// Two reductions ride on the sub-DFS, both subtree-local so any worker
// count — and any checkpoint cut — produces the same canonical stream:
//
//   - Prefix snapshots (useSnaps): after every crash the world is
//     snapshotted; after a backtrack the deepest snapshot whose decision
//     prefix is still unchanged is restored and only the suffix phases
//     re-run. Bit-identical results, integer-factor fewer phase
//     executions.
//   - DPOR (dporSeen != nil): a deeper crash state equal to one already
//     enumerated in this subtree is pruned — counted like a state-cache
//     prune, contributing no execution. The check is skipped while the
//     trail is still replaying the previous execution's prefix
//     (ctl.pos <= pChanged): an unchanged prefix trivially reproduces
//     its own registered states and must not prune its own siblings.
//
// Both require reentrant phases (ReentrantPhases): a snapshot resume
// re-enters a later phase without re-running earlier ones, and DPOR's
// equal-state-equal-continuation argument needs all cross-phase state
// inside the World.
func (e *mcEngine) runSubtree(v int) {
	defer e.wg.Done()
	defer e.opt.em.FrontierDepth.Add(-1)
	var idleStart time.Time
	if e.reg != nil {
		idleStart = time.Now()
	}
	slot := <-e.slots
	defer func() { e.slots <- slot }()
	tid := slot + 1 // 1-based worker timeline, matching random mode
	wm := obs.WorkerInstruments(e.reg, tid)
	if e.reg != nil {
		wm.IdleNanos.Add(int64(time.Since(idleStart)))
	}
	wm.Dispatches.Inc()
	e.opt.tr.NameThread(tid, "worker-"+strconv.Itoa(tid))

	sub := e.subtree(v)
	snapRestores, dporPruned := 0, 0
	start := time.Now()
	defer func() {
		d := time.Since(start)
		wm.BusyNanos.Add(int64(d))
		e.mu.Lock()
		sub.work += d
		sub.snapRestores += snapRestores
		sub.dporPruned += dporPruned
		e.mu.Unlock()
	}()

	ctl := &controller{}
	if e.numPre > 0 {
		ctl.trail = []decision{{val: v, domain: v + 1}}
	}
	first := true
	// pChanged is the trail index of the decision the last backtrack
	// changed: decisions at indices <= pChanged replay the previous
	// execution's prefix unchanged. -1 before the first execution
	// (everything is new).
	pChanged := -1
	reentrant := phasesReentrant(e.p)
	useSnaps := reentrant && !e.opt.DisableSnapshots && !e.opt.FreshWorlds
	var dporSeen map[dporKey]struct{}
	if reentrant && !e.opt.DisableDPOR && e.numPre > 1 {
		dporSeen = make(map[dporKey]struct{})
	}
	if e.haveResume && v == e.startSubtree && e.resumeStarted {
		// Resume the cut subtree mid-DFS: restore its snapshotted trail
		// and skip the first-execution classification — its cache
		// registration happened before the cut (replayed from the
		// checkpoint) and its successor, if any, is spawned here. The
		// classification outcome itself (started, injectionFired) is
		// restored too, so a second cut re-checkpoints it faithfully.
		// The DPOR registrations are replayed the same way (keys are
		// path-deterministic, so they compare across processes), and
		// pChanged starts at the trail's last index — a snapshotted
		// trail always sits just after a backtrack.
		ctl.trail = append([]decision(nil), e.resumeTrail...)
		first = false
		pChanged = len(ctl.trail) - 1
		sub.started = true
		sub.injectionFired = e.resumeSpawnNext
		if dporSeen != nil {
			for _, k := range e.resumeDPOR {
				dporSeen[dporKey{phase: k.Phase, image: k.Image, heap: k.Heap, ops: k.Ops, checker: k.Checker, trace: k.Trace}] = struct{}{}
			}
		}
		if e.resumeSpawnNext {
			e.spawn(v + 1)
		}
	}
	// One world serves the whole sub-DFS (its chooser closes over this
	// subtree's controller); between executions it is either rewound to
	// a crash snapshot or fully reset.
	var w *pmem.World
	var snaps []phaseSnap
	var phases []func(*pmem.World)
	if reentrant {
		// Reentrant phase slices are world-pure; resolve once. The
		// non-reentrant (InstancedProgram) contract is one Phases call
		// per execution, done in the loop.
		phases = e.p.Phases()
	}
	dporHit := false
	// onCrash runs after every crash of every execution: first-execution
	// subtree classification, then the DPOR probe, then the snapshot.
	onCrash := func(phase int, fired bool) bool {
		if first && phase == 0 {
			// The subtree's first execution classifies the subtree at
			// its first crash: record whether the injection fired (so
			// the next subtree exists), then consult the state cache —
			// every execution of the subtree shares the same phase-0
			// prefix and so the same crash-0 image.
			keep := true
			if e.cache != nil {
				ps := e.opt.tr.Now()
				k := stateKey(w)
				hit := e.cache.lookupOrRegister(k)
				e.opt.tr.CompleteSince(tid, "statecache", "cache-probe", ps, -1)
				if hit {
					sub.pruned = true
					keep = false
				} else {
					sub.keyed = true
					sub.key = k
				}
			}
			if fired && e.numPre > 0 {
				sub.injectionFired = true
				e.spawn(v + 1)
			}
			if !keep {
				return false
			}
		}
		if dporSeen != nil && phase >= 1 && ctl.pos > pChanged {
			k := dporKeyOf(phase, w)
			if _, ok := dporSeen[k]; ok {
				dporHit = true
				return false
			}
			dporSeen[k] = struct{}{}
		}
		if useSnaps {
			snaps = append(snaps, phaseSnap{ws: w.Snapshot(), phase: phase, pos: ctl.pos})
			e.opt.em.SnapshotsTaken.Inc()
		}
		return true
	}
	for {
		if e.st.stopped() {
			// Snapshot the resume point: the trail sits at the next
			// unexplored execution (backtrack already advanced it).
			e.mu.Lock()
			sub.stoppedAt = true
			sub.trailSnap = append([]decision(nil), ctl.trail...)
			sub.dporSnap = dporKeysOf(dporSeen)
			e.mu.Unlock()
			return
		}
		if !e.allowance(v, len(sub.execs)) {
			return
		}
		e.opt.em.Started.Inc()
		var execStart time.Time
		if e.reg != nil || e.opt.tr != nil {
			execStart = time.Now()
		}
		startPhase := 0
		switch {
		case w == nil || e.opt.FreshWorlds:
			w = mcWorld(e.opt, ctl)
			snaps = pruneSnaps(snaps, -1)
			ctl.pos = 0
		case len(snaps) > 0:
			// Resume from the deepest crash snapshot that survived the
			// last backtrack: the world state after phase `top.phase`'s
			// crash, with `top.pos` decisions consumed, is identical to
			// what a full replay would recompute.
			top := snaps[len(snaps)-1]
			w.Restore(top.ws)
			ctl.pos = top.pos
			startPhase = top.phase + 1
			snapRestores++
			e.opt.em.SnapshotsRestored.Inc()
		default:
			w.Reset(0)
			if e.opt.DisableChecker {
				w.Checker.SetEnabled(false)
			}
			ctl.pos = 0
		}
		installProbe(w, e.opt, len(sub.execs))
		ph := phases
		if ph == nil {
			ph = e.p.Phases()
		}
		oc := onCrash
		if !first && dporSeen == nil && !useSnaps {
			oc = nil // no per-crash work left; keep the hot path bare
		}
		aborted, pruned, execErr := runPhasesMC(ph, w, ctl, startPhase, oc, e.opt.tr, tid)
		switch {
		case pruned:
			e.opt.em.Pruned.Inc()
		case execErr != nil:
			e.opt.em.Quarantined.Inc()
		case aborted:
			e.opt.em.Aborted.Inc()
		default:
			e.opt.em.Completed.Inc()
		}
		if !execStart.IsZero() {
			d := time.Since(execStart)
			e.opt.em.ExecNanos.Observe(int64(d))
			e.opt.tr.Complete(tid, "explore", "execution", execStart, d, -1)
		}
		if first {
			sub.started = true
		}
		first = false
		if pruned && !dporHit {
			// The whole subtree is a duplicate of one already explored;
			// it contributes no executions.
			e.markDone(sub)
			return
		}
		if dporHit {
			// A deeper crash state already enumerated in this subtree:
			// the continuation is skipped (counted in Pruned, no
			// execution recorded), the sub-DFS walks on.
			dporHit = false
			dporPruned++
			e.opt.em.DPORPruned.Inc()
			if !ctl.backtrack() {
				e.markDone(sub)
				return
			}
			pChanged = len(ctl.trail) - 1
			snaps = pruneSnaps(snaps, pChanged)
			continue
		}
		ex := mcExec{aborted: aborted, execErr: execErr}
		if execErr != nil {
			// The panic left the world in an undefined state: discard
			// it (next iteration builds fresh) and drop its violations,
			// along with every snapshot taken in it. DPOR registrations
			// survive — the keys are path-deterministic, not
			// world-relative.
			execErr.Program = e.p.Name()
			execErr.Mode = ModelCheck
			execErr.Prefix = trailValues(ctl.trail)
			w = nil
			snaps = pruneSnaps(snaps, -1)
		} else {
			ex.violations = w.Checker.Violations()
		}
		e.mu.Lock()
		sub.execs = append(sub.execs, ex)
		e.mu.Unlock()
		if !ctl.backtrack() {
			e.markDone(sub)
			return
		}
		pChanged = len(ctl.trail) - 1
		snaps = pruneSnaps(snaps, pChanged)
	}
}

func (e *mcEngine) markDone(sub *mcSubtree) {
	e.mu.Lock()
	sub.done = true
	e.mu.Unlock()
}

// run executes the engine and assembles the canonical result.
func (e *mcEngine) run() *Result {
	res := &Result{Program: e.p.Name(), Mode: ModelCheck, Workers: e.opt.Workers}
	start := time.Now()
	seen := make(map[string]bool)
	if e.haveResume {
		primeFromCheckpoint(res, seen, e.opt.Resume)
	}
	e.spawn(e.startSubtree)
	e.wg.Wait()

	// Assembly: concatenate subtree execution lists in subtree order —
	// exactly the serial DFS visit order — and truncate at the cap.
	// Collector callbacks (Progress) therefore see strictly increasing
	// indices no matter how the subtrees were scheduled. The collected
	// stream stops at the first subtree with uncollected work (cut):
	// its own executions are a canonical prefix and are collected, but
	// nothing after it can be, so later subtrees' results are dropped —
	// a resume re-derives them.
	idx := e.baseExecs
	cut := -1 // ordinal of the first subtree with uncollected work
	var cutSub *mcSubtree
	frontier := 0
	truncated := false
	for si := e.startSubtree; si < len(e.subs); si++ {
		sub := e.subs[si]
		if cut >= 0 {
			if !sub.done {
				frontier++
			}
			continue
		}
		full := true
		for _, ex := range sub.execs {
			if idx >= e.opt.Executions {
				full = false
				truncated = true
				break
			}
			if ex.execErr != nil && ex.execErr.Exec < 0 {
				ex.execErr.Exec = idx
			}
			res.collect(execOutcome{index: idx, aborted: ex.aborted, violations: ex.violations, execErr: ex.execErr}, seen, e.opt)
			idx++
		}
		if full && sub.done {
			continue
		}
		cut = si
		cutSub = sub
		frontier++
	}
	for _, sub := range e.subs {
		res.WorkerTime += sub.work
		res.SnapshotRestores += sub.snapRestores
		res.DPORPruned += sub.dporPruned
	}
	if e.cache != nil {
		res.CacheHits, res.CacheMisses = e.cache.stats()
	}
	if cut >= 0 {
		res.Partial = true
		if e.st.stopped() {
			res.noteStop(e.st.why())
		} else {
			res.noteStop("exec-budget")
		}
		res.FrontierRemaining = frontier
		// A checkpoint needs the cut subtree's collected executions to
		// line up with its trail snapshot: only a stop observed at the
		// sub-DFS loop top guarantees that. Budget truncation (or a
		// subtree that bowed out on its allowance) yields no checkpoint
		// — re-run with a larger budget instead.
		if e.st.stopped() && !truncated && (cutSub.stoppedAt || !cutSub.started) {
			res.Checkpoint = e.checkpoint(res, seen, cut, cutSub, idx)
		}
	} else if e.st.stopped() {
		// Stop observed in the same tick the last subtree finished: the
		// run is complete but the reason is still reported (noteStop).
		res.noteStop(e.st.why())
	}
	res.Elapsed = time.Since(start)
	return res
}

// checkpoint builds the resume state for a stop cut at subtree `cut`.
func (e *mcEngine) checkpoint(res *Result, seen map[string]bool, cut int, cutSub *mcSubtree, collected int) *Checkpoint {
	mc := &MCCheckpoint{
		Subtree:   cut,
		Started:   cutSub.started,
		SpawnNext: cutSub.injectionFired,
	}
	if mc.Started {
		mc.Trail = trailToCheckpoint(cutSub.trailSnap)
		mc.DPORKeys = cutSub.dporSnap
	}
	// Cache registrations of subtrees up to the cut, in registration
	// (spawn-chain = ordinal) order: the pre-cut primed keys first, then
	// this run's. Hit/miss counters likewise cover only subtrees up to
	// the cut — later subtrees' lookups are re-derived on resume.
	mc.CacheKeys = append(mc.CacheKeys, e.primedKeys...)
	mc.CacheHits, mc.CacheMisses = e.baseHits, e.baseMisses
	for si := e.startSubtree; si <= cut && si < len(e.subs); si++ {
		sub := e.subs[si]
		if sub.keyed {
			mc.CacheKeys = append(mc.CacheKeys, CacheEntry{Image: sub.key.image, Heap: sub.key.heap})
			mc.CacheMisses++
		}
		if sub.pruned {
			mc.CacheHits++
		}
	}
	return &Checkpoint{
		Version:       checkpointVersion,
		Program:       res.Program,
		Mode:          ModelCheck.String(),
		Seed:          e.opt.Seed,
		Model:         resolveModel(e.opt.Model.Name),
		DPOR:          !e.opt.DisableDPOR,
		Collected:     collected,
		Aborted:       res.Aborted,
		Quarantined:   res.Quarantined,
		ViolationKeys: keysOf(seen),
		MC:            mc,
	}
}
