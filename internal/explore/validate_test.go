package explore

import (
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/persist"
)

// TestValidateMismatches: every way a checkpoint can disagree with the
// run resuming it yields a *MismatchError naming the field and both
// sides — a wire-protocol failure mode now that dispatch workers
// Validate their unit cuts.
func TestValidateMismatches(t *testing.T) {
	base := func() *Checkpoint {
		return &Checkpoint{
			Version: checkpointVersion,
			Program: "figure2",
			Mode:    ModelCheck.String(),
			Model:   persist.DefaultModel,
			DPOR:    true,
			MC:      &MCCheckpoint{},
		}
	}
	mcOpts := Options{Mode: ModelCheck}
	cases := []struct {
		name  string
		ck    func() *Checkpoint
		prog  string
		opt   Options
		field string
	}{
		{"ok", base, "figure2", mcOpts, ""},
		{"program", base, "other", mcOpts, "program"},
		{"mode", base, "figure2", Options{Mode: Random}, "mode"},
		{"seed", func() *Checkpoint {
			c := base()
			c.Mode = Random.String()
			c.Seed = 7
			return c
		}, "figure2", Options{Mode: Random, Seed: 8}, "seed"},
		{"seed-ignored-in-mc", func() *Checkpoint {
			c := base()
			c.Seed = 7
			return c
		}, "figure2", mcOpts, ""},
		{"model", func() *Checkpoint {
			c := base()
			c.Model = "no-such-model"
			return c
		}, "figure2", mcOpts, "model"},
		{"empty-model-is-default", func() *Checkpoint {
			c := base()
			c.Model = ""
			return c
		}, "figure2", mcOpts, ""},
		{"mc-state", func() *Checkpoint {
			c := base()
			c.MC = nil
			return c
		}, "figure2", mcOpts, "mc-state"},
		{"dpor", func() *Checkpoint {
			c := base()
			c.DPOR = false
			return c
		}, "figure2", mcOpts, "dpor"},
		{"dpor-ignored-in-random", func() *Checkpoint {
			c := base()
			c.Mode = Random.String()
			c.DPOR = false
			return c
		}, "figure2", Options{Mode: Random}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.ck().Validate(tc.prog, tc.opt)
			if tc.field == "" {
				if err != nil {
					t.Fatalf("want valid, got %v", err)
				}
				return
			}
			var me *MismatchError
			if !errors.As(err, &me) {
				t.Fatalf("want *MismatchError, got %T: %v", err, err)
			}
			if me.Field != tc.field {
				t.Fatalf("field %q, want %q (%v)", me.Field, tc.field, me)
			}
			if me.Have == "" || me.Want == "" || me.Have == me.Want {
				t.Fatalf("mismatch must name both sides distinctly: %+v", me)
			}
		})
	}
}

// TestLoadCheckpointVersionMismatch: a stale on-disk version is the same
// typed error, wrapped with the path.
func TestLoadCheckpointVersionMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	c := &Checkpoint{Version: checkpointVersion - 1, Program: "p", Mode: "random"}
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	_, err := LoadCheckpoint(path)
	var me *MismatchError
	if !errors.As(err, &me) {
		t.Fatalf("want *MismatchError, got %T: %v", err, err)
	}
	if me.Field != "version" {
		t.Fatalf("field %q, want version: %v", me.Field, me)
	}
}
