// Work-unit export for the process-isolation supervisor
// (internal/dispatch): one model-check subtree or one random-mode index
// range, run to completion in this process and returned as a raw,
// unassembled execution stream.
//
// A unit is described in the checkpoint vocabulary (UnitSpec embeds
// MCCheckpoint for model-check units; a random unit is just an index
// range), so the supervisor↔worker wire protocol and the on-disk resume
// format are one format. Determinism is inherited wholesale: a
// model-check unit is exactly the engine's own resume path restricted
// to a single subtree (same trail replay, same primed state cache, same
// DPOR registrations), and a random unit's executions depend only on
// their indices. The supervisor's ordered merge of unit streams is
// therefore bit-identical to the in-process engines' canonical
// assembly, at any worker count and under any kill schedule.
package explore

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/obs"
)

// UnitSpec describes one work unit. Exactly one of Random and MC is set.
type UnitSpec struct {
	// Random is a random-mode index range: executions [Lo, Hi) of the
	// canonical stream.
	Random *RandomRange `json:"random,omitempty"`
	// MC is a model-check subtree in checkpoint vocabulary: the subtree
	// ordinal, the state-cache keys registered by earlier subtrees (in
	// registration order), and — when resuming a mid-subtree checkpoint
	// cut — the started trail, spawn flag, and DPOR registrations.
	MC *MCCheckpoint `json:"mc,omitempty"`
	// Budget caps the executions a model-check unit records (0: none).
	// It is a conservative overestimate of the canonical remainder; an
	// overshoot is truncated at the supervisor's assembly, never here.
	Budget int `json:"budget,omitempty"`
}

// RandomRange is a contiguous slice of random mode's canonical stream.
type RandomRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// Kind names the unit's mode for records and reports.
func (s UnitSpec) Kind() string {
	if s.Random != nil {
		return "random"
	}
	return "mc"
}

// UnitClassification is the outcome of a model-check subtree's first
// crash: whether the state cache pruned the whole subtree, the key it
// registered on a miss, and whether the phase-0 injection fired (i.e.
// the next subtree exists). The supervisor needs it before the unit
// finishes — the next subtree's unit spec embeds this unit's cache
// registration — so it is also delivered early via UnitHooks.OnClassify.
type UnitClassification struct {
	Pruned         bool       `json:"pruned,omitempty"`
	Keyed          bool       `json:"keyed,omitempty"`
	Key            CacheEntry `json:"key"`
	InjectionFired bool       `json:"injectionFired,omitempty"`
}

// UnitExec is one execution of a unit, in canonical sub-DFS (or index)
// order. Violations are deduplicated within the unit — each carries the
// first execution that found it — which is exactly what the
// supervisor's in-order cross-unit merge needs to reproduce the
// in-process engines' first-found ordering and ExecutionsToAllBugs.
type UnitExec struct {
	Aborted    bool
	Err        *ExecError
	Violations []*core.Violation
	// Ops and the retirement counts carry the execution's world stats
	// across the process boundary so supervised Result sums match the
	// in-process engines' (all zero for quarantined executions and, for
	// the retirement trio, whenever the window is 0).
	Ops           int64 `json:",omitempty"`
	Retirements   int64 `json:",omitempty"`
	RetiredStores int64 `json:",omitempty"`
	RetiredEvents int64 `json:",omitempty"`
	// PinnedRoots is the execution's largest retirement pin-closure
	// (deterministic, max-merged); SweepNanos is its total sweep time
	// (timing, summed, never part of the determinism contract).
	PinnedRoots int64 `json:",omitempty"`
	SweepNanos  int64 `json:",omitempty"`
}

// UnitResult is a completed (or stopped) unit's raw stream plus its
// classification and diagnostics.
type UnitResult struct {
	// Classified reports that this run performed the subtree's first-
	// crash classification (false for random units and for resumed
	// mid-subtree trails, whose classification predates the cut).
	Classified bool
	Class      UnitClassification
	Execs      []UnitExec
	// Done reports the unit ran to exhaustion (model check) or completed
	// its range (random); false after a stop or a budget bound.
	Done bool
	// SnapshotRestores/DPORPruned/WorkNanos feed the supervisor's
	// Result diagnostics, exactly like per-unit sums in the pool.
	SnapshotRestores int
	DPORPruned       int
	WorkNanos        int64
}

// UnitHooks are RunUnit's progress callbacks, all optional. They run on
// the executing goroutine between executions — a worker process uses
// OnExec to heartbeat its lease, so a hung execution goes silent and
// the lease expires.
type UnitHooks struct {
	// OnExec runs after each recorded execution with the unit's count so
	// far.
	OnExec func(n int)
	// OnClassify runs once, at a model-check unit's first crash, with
	// the subtree classification.
	OnClassify func(UnitClassification)
}

// PoisonUnit records one work unit the dispatch supervisor quarantined
// after its retry budget was exhausted: every delivery attempt died
// (worker crash, OOM kill, SIGKILL) or went silent past its lease. The
// record carries the same reproduction provenance as an ExecError — the
// failing unit's identity and trail prefix plus the last worker's exit
// status and stderr tail.
type PoisonUnit struct {
	ID       int
	Kind     string // "mc" or "random"
	Subtree  int    // mc: subtree ordinal
	Lo, Hi   int    // random: index range
	Attempts int
	// TrailPrefix is a mc unit's starting decision-trail values (the
	// resume trail for mid-subtree cuts; empty for a fresh subtree).
	TrailPrefix []int
	LastError   string
	ExitStatus  string
	StderrTail  string
}

// String renders the one-line quarantine record for reports.
func (p *PoisonUnit) String() string {
	where := fmt.Sprintf("subtree %d", p.Subtree)
	if p.Kind == "random" {
		where = fmt.Sprintf("executions [%d,%d)", p.Lo, p.Hi)
	}
	s := fmt.Sprintf("[poison] %s unit %d (%s) after %d attempts: %s", p.Kind, p.ID, where, p.Attempts, p.LastError)
	if p.ExitStatus != "" {
		s += fmt.Sprintf(" (last worker: %s)", p.ExitStatus)
	}
	return s
}

// RunUnit executes one work unit in this process and returns its raw
// stream. It is the single execution path behind both the psan-worker
// process and the supervisor's degraded in-process fallback, which is
// what makes the two modes bit-identical.
//
// Options are interpreted as in Run, except: Workers is forced to 1,
// stealing is off (a unit never donates — the supervisor owns the unit
// tree), and Executions is superseded by spec.Budget for model-check
// units and by the range for random ones. A Context/Deadline stop
// parks the unit with Done false.
func RunUnit(p Program, opt Options, spec UnitSpec, hooks UnitHooks) (*UnitResult, error) {
	if (spec.Random == nil) == (spec.MC == nil) {
		return nil, fmt.Errorf("unit spec must set exactly one of random and mc")
	}
	opt.Workers = 1
	opt.DisableStealing = true
	opt.ForceSteals = false
	opt.applyWindowConstraints()
	opt.em = obs.ExploreInstruments(opt.Obs.Reg())
	opt.tr = opt.Obs.Trace()
	opt.fr = opt.Obs.Recorder()
	if opt.Model.Obs == nil {
		opt.Model.Obs = opt.Obs
	}
	st := newStopper(&opt)
	if spec.Random != nil {
		return runRandomUnit(p, &opt, st, spec, hooks), nil
	}
	return runMCUnit(p, &opt, st, spec, hooks), nil
}

// runMCUnit runs one subtree through the pool engine in solo mode: the
// engine's resume machinery primes the cache and restores the trail
// exactly as an in-process resume would, spawnRoot is suppressed (the
// supervisor owns successors), and the sub-DFS runs on the calling
// goroutine.
func runMCUnit(p Program, opt *Options, st *stopper, spec UnitSpec, hooks UnitHooks) *UnitResult {
	// Synthesize the resume checkpoint the engine's constructor already
	// knows how to consume. Collected stays 0: unit-local execution
	// ordinals are the currency; the supervisor assigns global indices.
	opt.Resume = &Checkpoint{
		Version: checkpointVersion,
		Mode:    ModelCheck.String(),
		MC:      spec.MC,
	}
	e := newMCEngine(p, opt, st)
	e.solo = true
	e.soloBudget = spec.Budget
	e.onExec = hooks.OnExec
	e.onClassify = hooks.OnClassify
	e.start()
	e.wg.Add(1)
	e.worker(0)

	sub := e.subs[spec.MC.Subtree]
	u := sub.rootUnit
	ur := &UnitResult{
		Done:             u.done,
		SnapshotRestores: u.snapRestores,
		DPORPruned:       u.dporPruned,
		WorkNanos:        int64(u.work),
	}
	if !spec.MC.Started {
		ur.Classified = true
		ur.Class = UnitClassification{
			Pruned:         sub.pruned,
			Keyed:          sub.keyed,
			Key:            CacheEntry{Image: sub.key.image, Heap: sub.key.heap},
			InjectionFired: sub.injectionFired,
		}
	}
	seen := make(map[string]bool)
	for _, ex := range u.execs {
		ur.Execs = append(ur.Execs, dedupExec(UnitExec{
			Aborted: ex.aborted, Err: ex.execErr,
			Ops: ex.ops, Retirements: ex.retirements,
			RetiredStores: ex.retiredStores, RetiredEvents: ex.retiredEvents,
			PinnedRoots: ex.pinnedRoots, SweepNanos: ex.sweepNanos,
		}, ex.violations, seen))
	}
	return ur
}

// runRandomUnit runs executions [Lo, Hi) of the canonical random
// stream: the same per-index seed derivation as the pool, on one
// reused world.
func runRandomUnit(p Program, opt *Options, st *stopper, spec UnitSpec, hooks UnitHooks) *UnitResult {
	plan := planRandom(p, opt)
	ws := &workerState{tid: 1, tr: opt.tr, wm: obs.WorkerInstruments(opt.Obs.Reg(), 1)}
	ur := &UnitResult{}
	seen := make(map[string]bool)
	for exec := spec.Random.Lo; exec < spec.Random.Hi; exec++ {
		if st.stopped() {
			return ur
		}
		o := randomExecution(p, opt, plan, ws, exec)
		ws.wm.BusyNanos.Add(int64(o.elapsed))
		ws.wm.Dispatches.Inc()
		ur.WorkNanos += int64(o.elapsed)
		ur.Execs = append(ur.Execs, dedupExec(UnitExec{
			Aborted: o.aborted, Err: o.execErr,
			Ops: o.ops, Retirements: o.retirements,
			RetiredStores: o.retiredStores, RetiredEvents: o.retiredEvents,
			PinnedRoots: o.pinnedRoots, SweepNanos: o.sweepNanos,
		}, o.violations, seen))
		if hooks.OnExec != nil {
			hooks.OnExec(len(ur.Execs))
		}
	}
	ur.Done = true
	return ur
}

// dedupExec keeps each violation's first in-unit occurrence, preserving
// within-execution order — the form the supervisor's cross-unit merge
// consumes.
func dedupExec(ue UnitExec, vs []*core.Violation, seen map[string]bool) UnitExec {
	for _, v := range vs {
		if !seen[v.Key()] {
			seen[v.Key()] = true
			ue.Violations = append(ue.Violations, v)
		}
	}
	return ue
}
