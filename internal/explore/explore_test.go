package explore

import (
	"strings"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/pmem"
)

const (
	addrX = memmodel.Addr(0x2000)
	addrY = memmodel.Addr(0x3000)
)

// figure2 is the paper's Figure 2 as a two-phase program: four stores
// with no flushes, then post-crash reads of both variables.
func figure2() Program {
	return &FuncProgram{
		ProgName: "figure2",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Store(addrX, 1, "x=1")
				th.Store(addrY, 1, "y=1")
				th.Store(addrX, 2, "x=2")
				th.Store(addrY, 2, "y=2")
			},
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Load(addrX, "r1=x")
				th.Load(addrY, "r2=y")
			},
		},
	}
}

// figure2Fixed flushes both variables in order: robust.
func figure2Fixed() Program {
	return &FuncProgram{
		ProgName: "figure2-fixed",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Store(addrX, 1, "x=1")
				th.Flush(addrX, "flush x")
				th.Store(addrY, 1, "y=1")
				th.Flush(addrY, "flush y")
				th.Store(addrX, 2, "x=2")
				th.Flush(addrX, "flush x2")
				th.Store(addrY, 2, "y=2")
				th.Flush(addrY, "flush y2")
			},
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Load(addrX, "r1=x")
				th.Load(addrY, "r2=y")
			},
		},
	}
}

// figure7 is the inter-thread example: thread 0 stores x and flushes,
// thread 1 copies x into y and flushes; with the right interleaving and
// crash point the execution is not robust even though every store has a
// flush after it.
func figure7() Program {
	return &FuncProgram{
		ProgName: "figure7",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				w.Spawn(0, func(th *pmem.Thread) {
					th.Store(addrX, 1, "x=1")
					th.Flush(addrX, "flush x")
				})
				w.Spawn(1, func(th *pmem.Thread) {
					r1 := th.Load(addrX, "r1=x")
					th.Store(addrY, r1, "y=r1")
					th.Flush(addrY, "flush y")
				})
				w.RunThreads()
			},
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Load(addrX, "r2=x")
				th.Load(addrY, "r3=y")
			},
		},
	}
}

func TestModelCheckFindsFigure2(t *testing.T) {
	res := Run(figure2(), Options{Mode: ModelCheck, Executions: 10000})
	if len(res.Violations) == 0 {
		t.Fatalf("model checking missed the Figure 2 violation: %s", res)
	}
	found := false
	for _, v := range res.Violations {
		if v.MissingFlush.Loc == "x=2" && v.Persisted.Loc == "y=2" ||
			v.MissingFlush.Loc == "y=2" && v.Persisted.Loc == "x=2" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected the (x=2, y=2) bug pair, got %v", res.ViolationKeys())
	}
}

func TestModelCheckTerminatesOnFixedProgram(t *testing.T) {
	res := Run(figure2Fixed(), Options{Mode: ModelCheck, Executions: 10000})
	if len(res.Violations) != 0 {
		t.Fatalf("fixed program reported violations: %v", res.ViolationKeys())
	}
	if res.Executions >= 10000 {
		t.Fatalf("model checking did not terminate naturally: %d executions", res.Executions)
	}
	if res.ExecutionsToAllBugs != 0 {
		t.Fatalf("ExecutionsToAllBugs = %d, want 0", res.ExecutionsToAllBugs)
	}
}

func TestModelCheckEnumeratesCrashPoints(t *testing.T) {
	// A program with 2 fence-like ops and deterministic reads: the DFS
	// must try crash targets 0, 1, and 2 (= after the end), with the
	// read enumeration multiplying only where candidates exist.
	prog := &FuncProgram{
		ProgName: "two-flushes",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Store(addrX, 1, "x=1")
				th.Flush(addrX, "f1")
				th.Store(addrY, 1, "y=1")
				th.Flush(addrY, "f2")
			},
			func(w *pmem.World) {
				w.Thread(0).Load(addrX, "r=x")
			},
		},
	}
	res := Run(prog, Options{Mode: ModelCheck, Executions: 10000})
	// Crash targets: 0 (before f1: x unguaranteed, 2 read choices),
	// 1 (before f2: x guaranteed, 1 choice), 2 (end: 1 choice).
	// Total executions: 2 + 1 + 1 = 4.
	if res.Executions != 4 {
		t.Fatalf("executions = %d, want 4", res.Executions)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("unexpected violations: %v", res.ViolationKeys())
	}
}

func TestRandomModeFindsFigure2(t *testing.T) {
	res := Run(figure2(), Options{Mode: Random, Executions: 200, Seed: 1})
	if len(res.Violations) == 0 {
		t.Fatalf("random mode missed the Figure 2 violation: %s", res)
	}
	if res.ExecutionsToAllBugs == 0 || res.ExecutionsToAllBugs > res.Executions {
		t.Fatalf("ExecutionsToAllBugs = %d out of %d", res.ExecutionsToAllBugs, res.Executions)
	}
}

func TestRandomModeFindsFigure7AcrossThreads(t *testing.T) {
	res := Run(figure7(), Options{Mode: Random, Executions: 500, Seed: 7})
	found := false
	for _, v := range res.Violations {
		if v.MissingFlush.Loc == "x=1" && v.Persisted.Loc == "y=r1" {
			found = true
		}
	}
	if !found {
		t.Fatalf("random mode missed the Figure 7 inter-thread bug: %v", res.ViolationKeys())
	}
}

func TestDisabledCheckerReportsNothing(t *testing.T) {
	res := Run(figure2(), Options{Mode: Random, Executions: 100, Seed: 1, DisableChecker: true})
	if len(res.Violations) != 0 {
		t.Fatalf("disabled checker reported violations: %v", res.ViolationKeys())
	}
}

func TestModelCheckOnFixedFigure7(t *testing.T) {
	// Applying PSan's suggested fix from Figure 7 — flush x in thread 1
	// after reading it, before storing y — removes the violation.
	prog := &FuncProgram{
		ProgName: "figure7-fixed",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				w.Spawn(0, func(th *pmem.Thread) {
					th.Store(addrX, 1, "x=1")
					th.Flush(addrX, "flush x")
				})
				w.Spawn(1, func(th *pmem.Thread) {
					r1 := th.Load(addrX, "r1=x")
					th.Flush(addrX, "flush x in reader") // PSan's fix
					th.Store(addrY, r1, "y=r1")
					th.Flush(addrY, "flush y")
				})
				w.RunThreads()
			},
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Load(addrX, "r2=x")
				th.Load(addrY, "r3=y")
			},
		},
	}
	res := Run(prog, Options{Mode: Random, Executions: 500, Seed: 7})
	for _, v := range res.Violations {
		if strings.Contains(v.MissingFlush.Loc, "x=1") {
			t.Fatalf("fix did not eliminate the violation: %v", v)
		}
	}
}

func TestResultString(t *testing.T) {
	res := Run(figure2(), Options{Mode: Random, Executions: 10, Seed: 3})
	s := res.String()
	if !strings.Contains(s, "figure2") || !strings.Contains(s, "10 executions") {
		t.Fatalf("summary = %q", s)
	}
	if res.PerExecution() <= 0 {
		t.Fatal("PerExecution should be positive")
	}
}

// Store-buffer mode: the same bugs are found (commit timing is extra
// nondeterminism, not a soundness change), and executions where even
// flushed stores were still sitting in a buffer at the crash appear.
func TestStoreBuffersMode(t *testing.T) {
	res := Run(figure2(), Options{Mode: Random, Executions: 300, Seed: 9, StoreBuffers: true})
	if len(res.Violations) == 0 {
		t.Fatalf("store-buffer mode missed the Figure 2 bug: %s", res)
	}
	if res.Aborted != 0 {
		t.Fatalf("%d aborted executions", res.Aborted)
	}
	// A flushed store can still be lost when the flush itself never left
	// the store buffer: the fixed program's post-crash reads can see the
	// initial value, which is consistent (no violations), unlike in
	// immediate-commit mode where the flush guarantees the store.
	sawInitial := false
	fixed := &FuncProgram{
		ProgName: "buffered-flush",
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				th.Store(addrX, 1, "x=1")
				th.Flush(addrX, "flush x")
			},
			func(w *pmem.World) {
				if w.Thread(0).Load(addrX, "r=x") == 0 {
					sawInitial = true
				}
			},
		},
	}
	// Workers: 1 because the sawInitial closure is shared across
	// executions; parallel workers would race on it.
	res = Run(fixed, Options{Mode: Random, Executions: 300, Seed: 9, StoreBuffers: true, Workers: 1})
	if len(res.Violations) != 0 {
		t.Fatalf("buffered flush program flagged: %v", res.ViolationKeys())
	}
	if !sawInitial {
		t.Fatal("store-buffer mode never lost the buffered store+flush")
	}
}
