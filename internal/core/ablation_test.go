package core

import (
	"testing"

	"repro/internal/memmodel"
	"repro/internal/px86"
)

// ablationHarness couples a machine with a checker built with options.
type ablationHarness struct {
	t *testing.T
	m *px86.Machine
	c *Checker
}

func newAblation(t *testing.T, opt Options) *ablationHarness {
	m := px86.New(px86.Config{})
	return &ablationHarness{t: t, m: m, c: NewWithOptions(m.Trace(), opt)}
}

func (h *ablationHarness) readValue(th memmodel.ThreadID, addr memmodel.Addr, want memmodel.Value, initial bool, loc string) []*Violation {
	h.t.Helper()
	for _, cand := range h.m.LoadCandidates(th, addr) {
		if cand.Store.Initial == initial && (initial || cand.Store.Value == want) {
			lid := h.m.Intern(loc)
			h.m.Load(th, addr, cand, lid)
			return h.c.ObserveRead(th, addr, cand.Store, lid)
		}
	}
	h.t.Fatalf("no candidate %d (initial=%v) for %s", want, initial, addr)
	return nil
}

// driveFigure6 runs the robust Figure 6 execution (r1=0, r2=1).
func driveFigure6(h *ablationHarness) int {
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	h.m.Store(1, addrY, 1, h.m.Intern("y=1"))
	h.m.Flush(1, addrY, h.m.Intern("flush y"))
	h.m.Crash()
	n := len(h.readValue(0, addrX, 0, true, "r1=x"))
	n += len(h.readValue(0, addrY, 1, false, "r2=y"))
	return n
}

// driveFigure7 runs the non-robust Figure 7 execution.
func driveFigure7(h *ablationHarness) int {
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	cands := h.m.LoadCandidates(1, addrX)
	h.m.Load(1, addrX, cands[0], h.m.Intern("r1=x"))
	h.c.ObserveRead(1, addrX, cands[0].Store, h.m.Intern("r1=x"))
	h.m.Store(1, addrY, 1, h.m.Intern("y=r1"))
	h.m.Flush(1, addrY, h.m.Intern("flush y"))
	h.m.Crash()
	n := len(h.readValue(0, addrX, 0, true, "r2=x"))
	n += len(h.readValue(0, addrY, 1, false, "r3=y"))
	return n
}

// The full algorithm: no false positive on Figure 6, detects Figure 7.
func TestFullAlgorithmBaseline(t *testing.T) {
	if n := driveFigure6(newAblation(t, Options{})); n != 0 {
		t.Fatalf("Figure 6 flagged by the full algorithm: %d", n)
	}
	if n := driveFigure7(newAblation(t, Options{})); n == 0 {
		t.Fatal("Figure 7 missed by the full algorithm")
	}
}

// Ablation §4.2.1: a single global interval over TSO sequence numbers
// flags the robust Figure 6 execution — the false positive the paper
// uses to motivate per-thread intervals ("the combination of the two
// constraints ... is unsatisfiable").
func TestGlobalIntervalAblationFalsePositive(t *testing.T) {
	h := newAblation(t, Options{GlobalInterval: true})
	if n := driveFigure6(h); n == 0 {
		t.Fatal("the naïve global interval should flag Figure 6 (that is its flaw)")
	}
}

// Ablation §4.2.2: dropping the happens-before closure (implication
// 4.3) misses the Figure 7 violation — the example the paper uses to
// motivate it.
func TestNoHBClosureAblationMissesFigure7(t *testing.T) {
	h := newAblation(t, Options{NoHBClosure: true})
	if n := driveFigure7(h); n != 0 {
		t.Fatal("without hb-closure, Figure 7 should be missed (that is the ablation's flaw)")
	}
}

// The ablations must not change single-threaded verdicts: Figure 2 is
// caught by all three configurations.
func TestAblationsAgreeOnFigure2(t *testing.T) {
	for _, opt := range []Options{{}, {NoHBClosure: true}, {GlobalInterval: true}} {
		h := newAblation(t, opt)
		h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
		h.m.Store(0, addrY, 1, h.m.Intern("y=1"))
		h.m.Store(0, addrX, 2, h.m.Intern("x=2"))
		h.m.Store(0, addrY, 2, h.m.Intern("y=2"))
		h.m.Crash()
		n := len(h.readValue(0, addrX, 1, false, "r1=x"))
		n += len(h.readValue(0, addrY, 2, false, "r2=y"))
		if n == 0 {
			t.Fatalf("Figure 2 missed under %+v", opt)
		}
	}
}
