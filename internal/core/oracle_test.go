package core

import (
	"math/rand"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/px86"
	"repro/internal/trace"
)

// This file checks the checker against the paper's Definition 2
// directly: for randomly generated pre-crash programs and every
// machine-reachable post-crash read outcome, a brute-force oracle
// decides whether a strictly-persistent equivalent exists — i.e.
// whether some multi-threaded prefix (a per-thread cut of the pre-crash
// stores, closed under happens-before, keeping TSO order) yields
// exactly the observed reads — and PSan's verdict must agree:
// violation reported ⇔ no such prefix exists.

// oracleOp is one pre-crash operation of the generated program.
type oracleOp struct {
	kind   int // 0 store, 1 flush, 2 sync read (thread 1 reads a location)
	thread memmodel.ThreadID
	addr   memmodel.Addr
	value  memmodel.Value
}

// genOps builds a deterministic random pre-crash program over up to
// three locations (two sharing a cache line), two threads, with
// occasional flushes and one optional inter-thread read creating a
// happens-before edge.
func genOps(seed int64) []oracleOp {
	rng := rand.New(rand.NewSource(seed))
	locs := []memmodel.Addr{0x1000, 0x1008, 0x2000} // first two share a line
	n := 2 + rng.Intn(5)
	var ops []oracleOp
	nextVal := memmodel.Value(1)
	for i := 0; i < n; i++ {
		t := memmodel.ThreadID(rng.Intn(2))
		a := locs[rng.Intn(len(locs))]
		switch rng.Intn(5) {
		case 0, 1, 2:
			ops = append(ops, oracleOp{kind: 0, thread: t, addr: a, value: nextVal})
			nextVal++
		case 3:
			ops = append(ops, oracleOp{kind: 1, thread: t, addr: a})
		case 4:
			ops = append(ops, oracleOp{kind: 2, thread: 1, addr: a})
		}
	}
	return ops
}

// runOnce executes the generated program, crashes, and performs the
// post-crash reads with the given candidate picks. It returns the
// observed read-from stores per location, the per-read candidate
// counts (for outcome enumeration), the pre-crash trace, and whether
// PSan reported any violation.
func runOnce(ops []oracleOp, picks []int) (rfs []*trace.Store, counts []int, tr *trace.Trace, flagged bool) {
	m := px86.New(px86.Config{})
	ck := New(m.Trace())
	for _, op := range ops {
		switch op.kind {
		case 0:
			m.Store(op.thread, op.addr, op.value, m.Intern("s"))
		case 1:
			m.Flush(op.thread, op.addr, m.Intern("f"))
		case 2:
			cands := m.LoadCandidates(op.thread, op.addr)
			m.Load(op.thread, op.addr, cands[0], m.Intern("sync read"))
			ck.ObserveRead(op.thread, op.addr, cands[0].Store, m.Intern("sync read"))
		}
	}
	m.Crash()
	readOrder := []memmodel.Addr{0x1000, 0x1008, 0x2000}
	for i, a := range readOrder {
		cands := m.LoadCandidates(0, a)
		counts = append(counts, len(cands))
		pick := 0
		if i < len(picks) && picks[i] < len(cands) {
			pick = picks[i]
		}
		m.Load(0, a, cands[pick], m.Intern("post read"))
		if vs := ck.ObserveRead(0, a, cands[pick].Store, m.Intern("post read")); len(vs) > 0 {
			flagged = true
		}
		rfs = append(rfs, cands[pick].Store)
	}
	return rfs, counts, m.Trace(), flagged
}

// strictEquivalentExists is the ground-truth oracle: it enumerates every
// per-thread cut (k0, k1) of the pre-crash stores, keeps the cuts closed
// under happens-before, and checks whether the cut's memory image (the
// max-Seq store per location within the cut) matches the observed
// reads.
func strictEquivalentExists(tr *trace.Trace, rfs []*trace.Store) bool {
	pre := tr.Sub(0)
	perThread := map[memmodel.ThreadID][]*trace.Store{}
	for _, st := range pre.Stores {
		perThread[st.Thread] = append(perThread[st.Thread], st)
	}
	t0, t1 := perThread[0], perThread[1]
	readOrder := []memmodel.Addr{0x1000, 0x1008, 0x2000}
	for k0 := 0; k0 <= len(t0); k0++ {
		for k1 := 0; k1 <= len(t1); k1++ {
			cut := append(append([]*trace.Store{}, t0[:k0]...), t1[:k1]...)
			if !hbClosed(cut, pre.Stores) {
				continue
			}
			if imageMatches(cut, readOrder, rfs) {
				return true
			}
		}
	}
	return false
}

// hbClosed reports whether every store happening before a cut member is
// itself in the cut.
func hbClosed(cut, all []*trace.Store) bool {
	in := map[*trace.Store]bool{}
	for _, s := range cut {
		in[s] = true
	}
	for _, b := range cut {
		for _, a := range all {
			if a.HappensBefore(b) && !in[a] {
				return false
			}
		}
	}
	return true
}

// imageMatches checks the cut's per-location final stores against the
// observed reads (nil/initial observed ⇒ no store to the location in
// the cut).
func imageMatches(cut []*trace.Store, readOrder []memmodel.Addr, rfs []*trace.Store) bool {
	last := map[memmodel.Addr]*trace.Store{}
	for _, s := range cut {
		if cur, ok := last[s.Addr]; !ok || s.Seq > cur.Seq {
			last[s.Addr] = s
		}
	}
	for i, a := range readOrder {
		want := rfs[i]
		got := last[a]
		if want.Initial {
			if got != nil {
				return false
			}
		} else if got != want {
			return false
		}
	}
	return true
}

// TestOracleAgreement enumerates, for many random programs, every
// machine-reachable post-crash outcome via DFS over candidate picks,
// and requires PSan's verdict to equal the ground truth.
func TestOracleAgreement(t *testing.T) {
	programs, outcomes, violations := 0, 0, 0
	for seed := int64(0); seed < 400; seed++ {
		ops := genOps(seed)
		programs++
		// DFS over pick vectors (3 reads).
		var enumerate func(prefix []int)
		enumerate = func(prefix []int) {
			if len(prefix) == 3 {
				rfs, _, tr, flagged := runOnce(ops, prefix)
				outcomes++
				truth := strictEquivalentExists(tr, rfs)
				if flagged == truth {
					// flagged must equal NOT truth.
					t.Fatalf("seed %d picks %v: PSan flagged=%v but strict equivalent exists=%v\nreads: %v",
						seed, prefix, flagged, truth, rfs)
				}
				if flagged {
					violations++
				}
				return
			}
			_, counts, _, _ := runOnce(ops, prefix)
			n := counts[len(prefix)]
			for pick := 0; pick < n; pick++ {
				enumerate(append(append([]int{}, prefix...), pick))
			}
		}
		enumerate(nil)
	}
	if outcomes == 0 || violations == 0 {
		t.Fatalf("oracle exercised %d programs, %d outcomes, %d violations — too few to be meaningful",
			programs, outcomes, violations)
	}
	t.Logf("oracle: %d programs, %d outcomes, %d violating outcomes, all verdicts agree",
		programs, outcomes, violations)
}
