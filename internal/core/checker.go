// Package core implements PSan, the robustness checker that is the
// paper's primary contribution (§4–§5).
//
// The checker watches an execution trace. Whenever a load in the current
// sub-execution reads from a store of a previous sub-execution, it
// updates potential-crash-interval constraints — one interval per
// (sub-execution, thread) pair — according to the three implications of
// §4.3 and the LOAD-PREV rule of Figure 10:
//
//  1. Observed stores must have executed: the sub-execution's threads
//     crashed no earlier than the last stores that happen before the
//     store read from (implications 4.1 and 4.3, folded together via
//     the store's clock vector).
//  2. Newer stores must not have executed: for every first-per-thread
//     store to the same location TSO-after the store read from — in its
//     own sub-execution or any intervening one — the corresponding
//     thread crashed before that store committed (implication 4.2,
//     extended to multiple crash events per §4.4).
//
// If any interval becomes empty, no strictly-persistent execution is
// consistent with the observed behavior: a robustness violation. The
// checker then localizes the bug to a pair of stores and synthesizes fix
// suggestions (§5.2): flush+drain windows per thread (primary window in
// the thread of the store that is missing the flush, alternates in the
// observing threads — the Figure 7 case), or colocating the two fields
// on one cache line.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/intervals"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// ViolationKind distinguishes the two diagnosis cases of §5.2.
type ViolationKind int

const (
	// ReadTooOld: the load read from a store that is too old — a newer
	// store to the same location was missing a flush, and some other
	// observed store pinned the crash interval after it (Figure 11).
	ReadTooOld ViolationKind = iota
	// ReadTooNew: the load read from a store that is too new — it (or a
	// store happening before it) persisted even though an earlier store,
	// observed stale by a previous load, did not (Figure 12).
	ReadTooNew
)

// String names the violation kind.
func (k ViolationKind) String() string {
	if k == ReadTooOld {
		return "read-too-old"
	}
	return "read-too-new"
}

// FixKind enumerates the repair strategies of §5.2.
type FixKind int

const (
	// FixInsertFlush inserts a flush of the missing store's cache line
	// plus a drain inside the reported window.
	FixInsertFlush FixKind = iota
	// FixColocate changes the memory layout so the two stores share a
	// cache line, making their persist order follow TSO automatically.
	FixColocate
)

// Fix is one suggested repair for a robustness violation.
type Fix struct {
	Kind FixKind
	// Thread is the thread whose code the flush should be inserted in
	// (FixInsertFlush only).
	Thread memmodel.ThreadID
	// AfterLoc and BeforeLoc delimit the insertion window: the flush and
	// drain must be placed after the operation at AfterLoc and before
	// the one at BeforeLoc. BeforeLoc may be empty when the window runs
	// to the end of the thread's code.
	AfterLoc, BeforeLoc string
	// Primary marks the paper's "primary fix interval": the window in
	// the thread that executed the store missing the flush, which is
	// typically the desired fix.
	Primary bool
}

// String renders the fix as an actionable suggestion.
func (f Fix) String() string {
	switch f.Kind {
	case FixColocate:
		return fmt.Sprintf("colocate fields: place both stores on one cache line (after %q, before %q)", f.AfterLoc, f.BeforeLoc)
	default:
		tag := ""
		if f.Primary {
			tag = " [primary]"
		}
		if f.BeforeLoc == "" {
			return fmt.Sprintf("insert flush+drain in thread %d after %q%s", int(f.Thread), f.AfterLoc, tag)
		}
		return fmt.Sprintf("insert flush+drain in thread %d after %q and before %q%s", int(f.Thread), f.AfterLoc, f.BeforeLoc, tag)
	}
}

// StoreRef is a frozen copy of a trace store: everything a bug report
// needs, detached from the trace arenas so a violation stays valid after
// the world that produced it is reset for the next execution. Loc is the
// materialized source label.
type StoreRef struct {
	ID      int64
	Addr    memmodel.Addr
	Value   memmodel.Value
	Thread  memmodel.ThreadID
	SubExec int
	Clock   vclock.Clock
	CV      vclock.CV
	Seq     vclock.Seq
	Kind    memmodel.OpKind
	Loc     string
	Initial bool
}

// String renders a short identification of the store for reports.
func (s *StoreRef) String() string {
	if s == nil {
		return "<nil store>"
	}
	if s.Initial {
		return fmt.Sprintf("init[%s]", s.Addr)
	}
	loc := s.Loc
	if loc == "" {
		loc = fmt.Sprintf("store#%d", s.ID)
	}
	return fmt.Sprintf("%s(%s=%d @t%d e%d clk%d)", loc, s.Addr, uint64(s.Value), int(s.Thread), s.SubExec, int64(s.Clock))
}

// Violation is one detected robustness violation: the execution observed
// an outcome impossible under strict persistency. All store references
// are frozen copies, so a violation remains valid after its world is
// reset or reused.
type Violation struct {
	Kind ViolationKind
	// LoadLoc and LoadThread identify the post-crash load whose read
	// made the constraints unsatisfiable.
	LoadLoc    string
	LoadThread memmodel.ThreadID
	// ReadFrom is the store the load read from.
	ReadFrom *StoreRef
	// MissingFlush is the earlier store in happens-before order that was
	// not made persistent: the store missing a flush operation. Fixing
	// the bug means persisting it before Persisted commits.
	MissingFlush *StoreRef
	// Persisted is the later store that was made persistent and observed
	// by post-crash loads.
	Persisted *StoreRef
	// SubExec and Thread identify the crash interval that became empty.
	SubExec int
	Thread  memmodel.ThreadID
	// Interval is the (empty) conjunction that exposed the violation.
	// Its endpoint Store fields hold *StoreRef.
	Interval intervals.Interval
	// Fixes are the suggested repairs, primary first.
	Fixes []Fix
	// Prov is the minimal event sub-trace explaining the violation,
	// captured at flag time when provenance is enabled (SetProvenance);
	// nil otherwise. Like the StoreRefs it is fully frozen.
	Prov *obs.Provenance

	// key caches Key; vkey is the intra-world dedup identity.
	key  string
	vkey violationKey
}

// Key returns a stable identity for deduplicating the same program bug
// across executions: the pair of store sites plus the diagnosis kind.
func (v *Violation) Key() string {
	if v.key == "" {
		mf, p := "", ""
		if v.MissingFlush != nil {
			mf = v.MissingFlush.Loc
		}
		if v.Persisted != nil {
			p = v.Persisted.Loc
		}
		v.key = fmt.Sprintf("%s|%s|%s", v.Kind, mf, p)
	}
	return v.key
}

// KeySet returns the sorted Key()s of vs — the canonical identity of a
// violation set. Exploration results, checkpoints, and the determinism
// tests all compare and persist violation sets through this one form,
// so a set survives serialization (checkpoint/resume) byte-identically
// even though the frozen StoreRefs behind it do not.
func KeySet(vs []*Violation) []string {
	keys := make([]string, 0, len(vs))
	for _, v := range vs {
		keys = append(keys, v.Key())
	}
	sort.Strings(keys)
	return keys
}

// String renders a full report in the style of the paper's examples.
func (v *Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "robustness violation (%s): load %q read %v\n", v.Kind, v.LoadLoc, v.ReadFrom)
	fmt.Fprintf(&b, "  store missing flush: %v\n", v.MissingFlush)
	fmt.Fprintf(&b, "  persisted store observed: %v\n", v.Persisted)
	fmt.Fprintf(&b, "  crash interval of thread %d in sub-execution %d is empty: %v\n", int(v.Thread), v.SubExec, v.Interval)
	for _, f := range v.Fixes {
		fmt.Fprintf(&b, "  fix: %s\n", f)
	}
	return b.String()
}

// consKey addresses one crash interval: the map C of §4.4 specialized to
// a (sub-execution, thread) pair.
type consKey struct {
	subExec int
	thread  memmodel.ThreadID
}

// violationKey is the intra-world dedup identity of a violation: the
// diagnosis kind plus the two interned store sites. LocIDs are stable
// within one world, which is exactly the scope of the checker's seen
// set; cross-execution dedup goes through the string Key.
type violationKey struct {
	kind   ViolationKind
	mfLoc  trace.LocID
	perLoc trace.LocID
}

// update is one pending interval constraint derived from a load.
type update struct {
	key consKey
	// lo is true for a lower-bound update ([clock, ∞)), false for an
	// upper-bound update ([0, clock)).
	lo    bool
	clock vclock.Clock
	// store is the endpoint's provenance (the store whose commit bounds
	// the crash point).
	store *trace.Store
}

// Options enables the ablations of the two ideas §4.2 argues are
// necessary. Both default to off (the full algorithm).
type Options struct {
	// NoHBClosure disables implication 4.3: lower bounds come only from
	// the read store's own thread, not from its happens-before
	// predecessors. The §4.2.2 ablation — the Figure 7 violation is
	// missed.
	NoHBClosure bool
	// GlobalInterval replaces per-thread crash intervals with a single
	// interval per sub-execution over TSO sequence numbers — the naïve
	// approach §4.2.1 shows is overly restrictive: the robust Figure 6
	// execution is flagged as a false positive.
	GlobalInterval bool
}

// globalThread keys the single interval used in GlobalInterval mode.
const globalThread = memmodel.ThreadID(-2)

// Checker is a PSan robustness checker attached to one execution trace.
// It is not safe for concurrent use, mirroring the serialized simulator.
// All of its state — the constraint map, violation list, and seen-set —
// is per-instance with no package-level sharing, so the parallel
// exploration engine runs one Checker per world on its own goroutine
// and never shares one across executions.
type Checker struct {
	tr       *trace.Trace
	opt      Options
	disabled bool
	prov     bool
	cons     map[consKey]intervals.Interval
	// violations accumulates committed violations in detection order.
	violations []*Violation
	seen       map[violationKey]bool
	// checksum deferral (§6.4): while a thread is inside an annotated
	// checksum region, its cross-crash loads are buffered here.
	deferred map[memmodel.ThreadID][]deferredLoad

	// ups is updatesFor's scratch buffer; apply is applyUpdates'
	// speculative-interval scratch. Both are reused across loads.
	ups   []update
	apply map[consKey]intervals.Interval
}

// deferredLoad is a cross-crash read buffered inside a checksum region.
type deferredLoad struct {
	thread memmodel.ThreadID
	addr   memmodel.Addr
	rf     *trace.Store
	loc    trace.LocID
}

// New returns a checker for the given trace with no constraints — every
// strictly persistent pre-crash execution is initially consistent.
func New(tr *trace.Trace) *Checker {
	return NewWithOptions(tr, Options{})
}

// NewWithOptions returns a checker running one of the §4.2 ablations.
func NewWithOptions(tr *trace.Trace, opt Options) *Checker {
	return &Checker{
		tr:       tr,
		opt:      opt,
		cons:     make(map[consKey]intervals.Interval),
		seen:     make(map[violationKey]bool),
		deferred: make(map[memmodel.ThreadID][]deferredLoad),
		apply:    make(map[consKey]intervals.Interval),
	}
}

// Reset clears the checker for the next execution on the same (reset)
// trace. The accumulated violations slice is dropped, not truncated —
// it escapes to the exploration harness, which may retain it after the
// reset. The enabled/disabled state and ablation options are kept.
func (c *Checker) Reset() {
	clear(c.cons)
	c.violations = nil
	clear(c.seen)
	clear(c.deferred)
}

// Intern maps a source label to the trace's dense LocID, the form the
// checker's read hooks take.
func (c *Checker) Intern(loc string) trace.LocID { return c.tr.Intern(loc) }

// MarkRetireRoots pins the stores the checker still needs during a
// bounded-window retirement (the pmem world passes it to the model's
// Retire as the extra-roots hook). The checker's constraint map keys
// crash intervals by (sub-execution, thread) and its violations freeze
// store sites into StoreRefs at flag time, so the only live store
// pointers it owns are the read-from stores of loads deferred inside
// open checksum regions: those replay through OnRead at region end and
// must survive until then.
func (c *Checker) MarkRetireRoots(mark func(*trace.Store)) {
	for _, loads := range c.deferred {
		for _, dl := range loads {
			mark(dl.rf)
		}
	}
}

// freeze copies a trace store into a report-stable StoreRef,
// materializing its source label.
func (c *Checker) freeze(s *trace.Store) *StoreRef {
	if s == nil {
		return nil
	}
	return &StoreRef{
		ID:      s.ID,
		Addr:    s.Addr,
		Value:   s.Value,
		Thread:  s.Thread,
		SubExec: s.SubExec,
		Clock:   s.Clock,
		CV:      s.CV,
		Seq:     s.Seq,
		Kind:    s.Kind,
		Loc:     c.tr.LocString(s.Loc),
		Initial: s.Initial,
	}
}

// freezeEndpoint rebinds an interval endpoint's provenance from the
// trace store to its frozen copy.
func (c *Checker) freezeEndpoint(e intervals.Endpoint) intervals.Endpoint {
	if s, ok := e.Store.(*trace.Store); ok {
		e.Store = c.freeze(s)
	}
	return e
}

// Violations returns the violations committed so far, in detection order.
func (c *Checker) Violations() []*Violation { return c.violations }

// SetEnabled turns checking on or off. A disabled checker observes
// nothing and reports nothing; the harness uses it to measure the
// simulator's baseline cost (the Jaaru column of Table 3).
func (c *Checker) SetEnabled(on bool) { c.disabled = !on }

// SetProvenance turns violation-provenance capture on or off. Like fix
// synthesis it walks the event log only when a bug is first recorded, so
// the per-load checking cost is unchanged; violation-free executions pay
// nothing either way. Off by default, and like the enabled state and
// options it survives Reset.
func (c *Checker) SetProvenance(on bool) { c.prov = on }

// Interval returns the current crash interval for a (sub-execution,
// thread) pair, mainly for tests and the litmus printer.
func (c *Checker) Interval(subExec int, t memmodel.ThreadID) intervals.Interval {
	if iv, ok := c.cons[consKey{subExec, t}]; ok {
		return iv
	}
	return intervals.New()
}

// updatesFor computes the constraint updates a read of rf by a load in
// the current sub-execution implies. It returns nil when the read is
// within the current sub-execution (nothing to check). The returned
// slice is a checker-owned scratch buffer, valid until the next
// updatesFor call.
func (c *Checker) updatesFor(rf *trace.Store) []update {
	if c.disabled {
		return nil
	}
	cur := c.tr.Current()
	if rf == nil || rf.SubExec == cur.Index && !rf.Initial {
		return nil
	}
	if rf.Initial && cur.Index == 0 {
		return nil
	}
	if c.opt.GlobalInterval {
		return c.updatesGlobal(rf, cur.Index)
	}
	c.ups = c.ups[:0]
	e := c.tr.GetExec(rf)
	// C0 (implications 4.1 and 4.3): every thread of rf's sub-execution
	// crashed no earlier than its last store happening before rf. For
	// rf's own thread that is rf itself. Initial stores have an empty
	// clock vector, so they contribute no lower bounds.
	if !rf.Initial {
		rf.CV.ForEach(func(tau memmodel.ThreadID, clk vclock.Clock) {
			if c.opt.NoHBClosure && tau != rf.Thread {
				return // ablation: drop implication 4.3
			}
			c.ups = append(c.ups, update{
				key:   consKey{e.Index, tau},
				lo:    true,
				clock: clk,
				store: e.StoreByClock(tau, clk),
			})
		})
	}
	// Implication 4.2 extended across sub-executions (§4.4): the first
	// store to the location per thread, TSO-after rf or in intervening
	// sub-executions, must not have committed before its crash.
	for _, st := range c.tr.Next(rf, cur.Index) {
		c.ups = append(c.ups, update{
			key:   consKey{st.SubExec, st.Thread},
			lo:    false,
			clock: st.Clock,
			store: st,
		})
	}
	return c.ups
}

// updatesGlobal is the §4.2.1 naïve variant: one interval per
// sub-execution over TSO sequence numbers.
func (c *Checker) updatesGlobal(rf *trace.Store, cur int) []update {
	c.ups = c.ups[:0]
	if !rf.Initial {
		c.ups = append(c.ups, update{
			key:   consKey{rf.SubExec, globalThread},
			lo:    true,
			clock: vclock.Clock(rf.Seq),
			store: rf,
		})
	}
	for _, st := range c.tr.Next(rf, cur) {
		c.ups = append(c.ups, update{
			key:   consKey{st.SubExec, globalThread},
			lo:    false,
			clock: vclock.Clock(st.Seq),
			store: st,
		})
	}
	return c.ups
}

// applyMode selects how applyUpdates treats the constraint state.
type applyMode int

const (
	// modeCheck: speculative — neither constraints nor violations are
	// recorded.
	modeCheck applyMode = iota
	// modeObserve: the read happened — commit constraints and record
	// violations.
	modeObserve
	// modeFlag: the read was possible but steered around — record the
	// violations it would cause, but commit nothing.
	modeFlag
)

// applyUpdates applies the updates to the constraint state. In
// modeObserve, non-violating updates are recorded; an update that would
// empty an interval is reported but not recorded, so the checker can
// keep scanning the rest of the execution for further independent bugs
// (§5.2 Implementation).
//
// In modeObserve and modeFlag an emptying update whose violation
// identity is already in the seen set is skipped before any report is
// materialized: the diagnosis was recorded (with fixes) the first time,
// and a re-run of diagnose would freeze three StoreRefs only for the
// post-loop dedup to throw the copy away. Workloads that keep re-reading
// a bugged location spend most of their checking time there. Callers
// therefore see each distinct violation in a return value exactly once
// per execution; the committed Violations() list is unchanged.
func (c *Checker) applyUpdates(t memmodel.ThreadID, addr memmodel.Addr, rf *trace.Store, loc trace.LocID, ups []update, mode applyMode) []*Violation {
	if len(ups) == 0 {
		// Same-sub-execution reads constrain nothing; skip the scratch
		// clear — most loads in store-heavy phases take this path.
		return nil
	}
	var found []*Violation
	scratch := c.apply
	clear(scratch)
	for _, u := range ups {
		iv, ok := scratch[u.key]
		if !ok {
			if iv, ok = c.cons[u.key]; !ok {
				iv = intervals.New()
			}
		}
		var next intervals.Interval
		if u.lo {
			next, _ = iv.ConstrainLo(u.clock, u.store)
		} else {
			next, _ = iv.ConstrainHi(u.clock, u.store)
		}
		if next.Empty() {
			if mode != modeCheck && c.seen[violationKeyFor(rf, u, iv)] {
				continue // already recorded; skip re-materializing
			}
			v := c.diagnose(t, addr, rf, loc, u, iv, next)
			found = append(found, v)
			continue // do not record the emptying constraint
		}
		scratch[u.key] = next
		if mode == modeObserve {
			c.cons[u.key] = next
		}
	}
	if mode != modeCheck {
		for _, v := range found {
			if !c.seen[v.vkey] {
				c.seen[v.vkey] = true
				// Fix synthesis walks the event log, so it runs only
				// when a bug is first recorded, keeping the per-load
				// checking cost flat (Table 3's minimal-overhead claim).
				v.Fixes = c.computeFixes(v)
				if c.prov {
					v.Prov = c.computeProvenance(v)
				}
				c.violations = append(c.violations, v)
			}
		}
	}
	return found
}

// locOf returns a store's interned label (NoLoc for nil).
func locOf(s *trace.Store) trace.LocID {
	if s == nil {
		return trace.NoLoc
	}
	return s.Loc
}

// violationKeyFor derives the dedup identity of the violation an
// emptying update would diagnose, without materializing the report. It
// mirrors diagnose's case split: a lower-bound update that passed the
// recorded upper bound is a read-too-new whose missing flush is the
// store that set that upper bound; an upper-bound update that passed the
// recorded lower bound is a read-too-old whose missing flush is the
// update's own store.
func violationKeyFor(rf *trace.Store, u update, before intervals.Interval) violationKey {
	if u.lo {
		mf, _ := before.Hi.Store.(*trace.Store)
		return violationKey{kind: ReadTooNew, mfLoc: locOf(mf), perLoc: locOf(rf)}
	}
	per, _ := before.Lo.Store.(*trace.Store)
	return violationKey{kind: ReadTooOld, mfLoc: locOf(u.store), perLoc: locOf(per)}
}

// diagnose builds the violation report for an update that emptied an
// interval, per the two cases of §5.2. Every store reference is frozen
// here, so the report survives trace recycling.
func (c *Checker) diagnose(t memmodel.ThreadID, addr memmodel.Addr, rf *trace.Store, loc trace.LocID, u update, before, after intervals.Interval) *Violation {
	v := &Violation{
		LoadLoc:    c.tr.LocString(loc),
		LoadThread: t,
		ReadFrom:   c.freeze(rf),
		SubExec:    u.key.subExec,
		Thread:     u.key.thread,
		Interval: intervals.Interval{
			Lo: c.freezeEndpoint(after.Lo),
			Hi: c.freezeEndpoint(after.Hi),
		},
	}
	var mf, per *trace.Store
	if u.lo {
		// The new lower bound passed the recorded upper bound: the load
		// observed a too-new store. The store that set the interval's
		// end is the one missing the flush.
		v.Kind = ReadTooNew
		mf, _ = before.Hi.Store.(*trace.Store)
		per = rf
	} else {
		// The new upper bound passed the recorded lower bound: the load
		// read a too-old store; the upper bound's store (the TSO-later
		// store to the same location) is missing a flush, and the lower
		// bound's store was observed persisted.
		v.Kind = ReadTooOld
		mf = u.store
		per, _ = before.Lo.Store.(*trace.Store)
	}
	v.MissingFlush = c.freeze(mf)
	v.Persisted = c.freeze(per)
	v.vkey = violationKeyFor(rf, u, before)
	return v
}

// WouldViolate reports whether a load by thread t reading rf would cause
// at least one robustness violation. It is the allocation-free form of
// CheckRead for the read-steering hot path, which needs only the
// boolean: no constraint is committed and no report is materialized.
// Inside a checksum region the read would be deferred, so it cannot
// violate yet.
func (c *Checker) WouldViolate(t memmodel.ThreadID, rf *trace.Store) bool {
	if _, in := c.deferred[t]; in {
		return false
	}
	ups := c.updatesFor(rf)
	if len(ups) == 0 {
		return false
	}
	scratch := c.apply
	clear(scratch)
	for _, u := range ups {
		iv, ok := scratch[u.key]
		if !ok {
			if iv, ok = c.cons[u.key]; !ok {
				iv = intervals.New()
			}
		}
		var next intervals.Interval
		if u.lo {
			next, _ = iv.ConstrainLo(u.clock, u.store)
		} else {
			next, _ = iv.ConstrainHi(u.clock, u.store)
		}
		if next.Empty() {
			return true
		}
		scratch[u.key] = next
	}
	return false
}

// CheckRead reports the violations that a load by thread t of addr would
// cause if it read from rf, without changing the checker state. The
// explorer uses it to steer loads away from already-diagnosed outcomes
// so one execution can expose multiple bugs.
func (c *Checker) CheckRead(t memmodel.ThreadID, addr memmodel.Addr, rf *trace.Store, loc trace.LocID) []*Violation {
	if _, in := c.deferred[t]; in {
		return nil // inside a checksum region the read would be deferred
	}
	return c.applyUpdates(t, addr, rf, loc, c.updatesFor(rf), modeCheck)
}

// FlagRead records the violations a read from rf would cause without
// committing any constraints. The explorer calls it for candidates it
// steers away from: the buggy outcome is reachable and must be reported
// even though this execution avoids it.
func (c *Checker) FlagRead(t memmodel.ThreadID, addr memmodel.Addr, rf *trace.Store, loc trace.LocID) []*Violation {
	if _, in := c.deferred[t]; in {
		return nil // inside a checksum region the read would be deferred
	}
	return c.applyUpdates(t, addr, rf, loc, c.updatesFor(rf), modeFlag)
}

// ObserveRead records a load that has been performed: thread t read rf
// at addr. It returns any new violations. Inside a checksum region the
// read is deferred instead (§6.4).
func (c *Checker) ObserveRead(t memmodel.ThreadID, addr memmodel.Addr, rf *trace.Store, loc trace.LocID) []*Violation {
	if _, in := c.deferred[t]; in {
		c.deferred[t] = append(c.deferred[t], deferredLoad{thread: t, addr: addr, rf: rf, loc: loc})
		return nil
	}
	return c.applyUpdates(t, addr, rf, loc, c.updatesFor(rf), modeObserve)
}

// BeginChecksumRegion starts deferring thread t's cross-crash reads: the
// program is reading checksummed data it may discard (§6.4 Harmless
// Violations).
func (c *Checker) BeginChecksumRegion(t memmodel.ThreadID) {
	if _, in := c.deferred[t]; !in {
		c.deferred[t] = []deferredLoad{}
	}
}

// EndChecksumRegion finishes a checksum region. If the checksum validated
// the loads are processed now and any violations returned; if validation
// failed the program discards the data, so the loads constrain nothing.
func (c *Checker) EndChecksumRegion(t memmodel.ThreadID, valid bool) []*Violation {
	loads, in := c.deferred[t]
	if !in {
		return nil
	}
	delete(c.deferred, t)
	if !valid {
		return nil
	}
	var all []*Violation
	for _, dl := range loads {
		all = append(all, c.applyUpdates(dl.thread, dl.addr, dl.rf, dl.loc, c.updatesFor(dl.rf), modeObserve)...)
	}
	return all
}
