package core

import (
	"repro/internal/memmodel"
	"repro/internal/trace"
)

// computeFixes synthesizes the repair suggestions of §5.2 for a
// diagnosed violation: per-thread flush+drain insertion windows (the
// window in the thread of the store missing the flush is the primary
// fix), plus a cache-line colocation alternative.
//
// A window for thread τ starts at the first operation of τ that happens
// after the missing-flush store and ends at the last operation of τ that
// happens before the persisted store. Happens-before between an
// operation and a store is approximated by comparing the operation's
// clock vector with the store's, which is exact for operations in the
// two stores' own threads — the cases the paper distinguishes.
//
// It runs at record time, on the frozen store copies, while the trace of
// the detecting execution is still intact; window boundaries are
// materialized as label strings so the resulting Fix outlives the trace.
func (c *Checker) computeFixes(v *Violation) []Fix {
	mf, p := v.MissingFlush, v.Persisted
	if mf == nil || p == nil || mf.ID == p.ID || mf.Initial || p.Initial {
		return nil
	}
	var fixes []Fix
	e := mf.SubExec
	// Candidate threads: the missing-flush store's own thread first (its
	// window is the primary fix), then every other thread that has
	// events in the sub-execution.
	threads := []memmodel.ThreadID{mf.Thread}
	seen := map[memmodel.ThreadID]bool{mf.Thread: true}
	for _, ev := range c.tr.SubEvents(e) {
		if ev.Thread != memmodel.NoThread && !seen[ev.Thread] {
			seen[ev.Thread] = true
			threads = append(threads, ev.Thread)
		}
	}
	for _, tau := range threads {
		if fix, ok := c.flushWindow(tau, mf, p); ok {
			fix.Primary = tau == mf.Thread
			fixes = append(fixes, fix)
		}
	}
	// Layout alternative: make the two stores share a cache line so
	// their persist order follows TSO automatically.
	if !memmodel.SameLine(mf.Addr, p.Addr) {
		fixes = append(fixes, Fix{Kind: FixColocate, AfterLoc: mf.Loc, BeforeLoc: p.Loc})
	}
	return fixes
}

// flushWindow computes the flush insertion window for thread tau, if one
// exists: a range of tau's operations that happen after mf and before p.
func (c *Checker) flushWindow(tau memmodel.ThreadID, mf, p *StoreRef) (Fix, bool) {
	evs := c.tr.EventsOf(mf.SubExec, tau)
	start := -1
	for i, ev := range evs {
		if ev.Store != nil && ev.Store.ID == mf.ID {
			continue // the store itself; the window starts strictly after
		}
		if mf.CV.Leq(ev.CV) {
			start = i
			break
		}
	}
	if tau == mf.Thread && tau == p.Thread {
		// Single-thread case: the window is simply between the two
		// stores in program order; it exists even when mf is the
		// thread's last event.
		return Fix{Kind: FixInsertFlush, Thread: tau, AfterLoc: mf.Loc, BeforeLoc: p.Loc}, true
	}
	if start < 0 {
		// No operation of tau happens after mf: the thread stopped (or
		// never observed the store) — the Figure 7 empty-window case.
		return Fix{}, false
	}
	// Find the last operation of tau that happens before p.
	end := -1
	for i := start; i < len(evs); i++ {
		if evs[i].CV.Leq(p.CV) {
			end = i
		}
	}
	if tau == p.Thread {
		// Operations of p's own thread before p are hb-before p by
		// program order; anchor the window end at p itself.
		return Fix{Kind: FixInsertFlush, Thread: tau, AfterLoc: c.evLoc(evs[start]), BeforeLoc: p.Loc}, true
	}
	if end < 0 {
		return Fix{}, false
	}
	before := ""
	if end+1 < len(evs) {
		before = c.evLoc(evs[end+1])
	}
	return Fix{Kind: FixInsertFlush, Thread: tau, AfterLoc: c.evLoc(evs[start]), BeforeLoc: before}, true
}

// evLoc materializes an event's interned label.
func (c *Checker) evLoc(ev *trace.Event) string { return c.tr.LocString(ev.Loc) }
