package core

import (
	"strings"
	"testing"

	"repro/internal/memmodel"
)

// Four sub-executions: a read in e4 of a store from e1 must constrain
// every intervening sub-execution that overwrote the location (§4.4's
// next() spans them all).
func TestDeepMultiCrashConstrainsAllIntervening(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrX, 1, h.m.Intern("e1:x=1"))
	h.m.Crash()
	h.m.Store(0, addrX, 2, h.m.Intern("e2:x=2"))
	h.m.Crash()
	h.m.Store(0, addrX, 3, h.m.Intern("e3:x=3"))
	h.m.Crash()
	if vs := h.readValue(0, addrX, 1, false, "e4: r=x"); len(vs) != 0 {
		t.Fatalf("reading e1's store alone is consistent: %v", vs)
	}
	// The read pins e1 after x=1 and forces e2 and e3 to crash before
	// their overwrites committed.
	if iv := h.c.Interval(0, 0); iv.Lo.Clock != 1 {
		t.Fatalf("C(e1) = %v, want lo 1", iv)
	}
	for _, sub := range []int{1, 2} {
		iv := h.c.Interval(sub, 0)
		if iv.Hi.Clock != 1 {
			t.Fatalf("C(e%d) = %v, want hi 1 (crash before the overwrite)", sub+1, iv)
		}
	}
}

// After reading the old store, observing any intervening overwrite as
// persisted is a violation in that sub-execution.
func TestDeepMultiCrashViolationInMiddleSubExec(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrX, 1, h.m.Intern("e1:x=1"))
	h.m.Store(0, addrY, 1, h.m.Intern("e1:y=1"))
	h.m.Crash()
	h.m.Store(0, addrX, 2, h.m.Intern("e2:x=2"))
	h.m.Store(0, addrY, 2, h.m.Intern("e2:y=2"))
	h.m.Crash()
	h.m.Crash() // e3 empty
	// e4: read y from e2 (fresh there), then x from e1 (stale across
	// e2's overwrite): C(e2) must become unsatisfiable.
	if vs := h.readValue(0, addrY, 2, false, "e4: r1=y"); len(vs) != 0 {
		t.Fatalf("unexpected: %v", vs)
	}
	vs := h.readValue(0, addrX, 1, false, "e4: r2=x")
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1", len(vs))
	}
	if vs[0].SubExec != 1 {
		t.Fatalf("violation in sub-execution %d, want 1 (e2)", vs[0].SubExec)
	}
	if vs[0].MissingFlush.Loc != "e2:x=2" || vs[0].Persisted.Loc != "e2:y=2" {
		t.Fatalf("bug pair = (%s, %s)", vs[0].MissingFlush.Loc, vs[0].Persisted.Loc)
	}
}

// RMW reads are checked like loads: a post-crash CAS observing a stale
// store raises the same violation a load would.
func TestRMWReadsAreChecked(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	h.m.Store(0, addrY, 1, h.m.Intern("y=1"))
	h.m.Store(0, addrX, 2, h.m.Intern("x=2"))
	h.m.Store(0, addrY, 2, h.m.Intern("y=2"))
	h.m.Crash()
	h.readValue(0, addrX, 1, false, "r1=x")
	// CAS on y reading the too-new store: find the y=2 candidate.
	for _, c := range h.m.LoadCandidates(0, addrY) {
		if c.Store.Value == 2 {
			h.m.CAS(0, addrY, c, 2, 9, h.m.Intern("cas y"))
			vs := h.c.ObserveRead(0, addrY, c.Store, h.m.Intern("cas y"))
			if len(vs) != 1 || vs[0].Kind != ReadTooNew {
				t.Fatalf("CAS read not checked: %v", vs)
			}
			return
		}
	}
	t.Fatal("no y=2 candidate")
}

// Violation rendering must carry everything a developer needs: kind,
// the two stores, the interval, and at least one fix.
func TestViolationReportContents(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	h.m.Store(0, addrY, 1, h.m.Intern("y=1"))
	h.m.Store(0, addrX, 2, h.m.Intern("x=2"))
	h.m.Store(0, addrY, 2, h.m.Intern("y=2"))
	h.m.Crash()
	h.readValue(0, addrX, 1, false, "r1=x")
	vs := h.readValue(0, addrY, 2, false, "r2=y")
	out := vs[0].String()
	for _, want := range []string{
		"read-too-new", "x=2", "y=2", "sub-execution 0",
		"fix: insert flush+drain", "[primary]", "colocate",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
	if k := vs[0].Key(); !strings.Contains(k, "x=2") || !strings.Contains(k, "y=2") {
		t.Fatalf("key = %q", k)
	}
}

// A violation whose evidence spans three threads: writer, propagator,
// and a third thread whose fix window PSan must also consider.
func TestThreeThreadFixWindows(t *testing.T) {
	h := newHarness(t)
	// t0 stores x (no flush), t1 reads x and stores y (flushed), t2
	// reads y pre-crash and stores z (flushed).
	h.m.Store(0, addrX, 1, h.m.Intern("t0: x=1"))
	c := h.m.LoadCandidates(1, addrX)
	h.m.Load(1, addrX, c[0], h.m.Intern("t1: r=x"))
	h.c.ObserveRead(1, addrX, c[0].Store, h.m.Intern("t1: r=x"))
	h.m.Store(1, addrY, 1, h.m.Intern("t1: y=1"))
	h.m.Flush(1, addrY, h.m.Intern("t1: flush y"))
	cy := h.m.LoadCandidates(2, addrY)
	h.m.Load(2, addrY, cy[0], h.m.Intern("t2: s=y"))
	h.c.ObserveRead(2, addrY, cy[0].Store, h.m.Intern("t2: s=y"))
	h.m.Store(2, addrZ, 1, h.m.Intern("t2: z=1"))
	h.m.Flush(2, addrZ, h.m.Intern("t2: flush z"))
	h.m.Crash()
	h.readValue(0, addrX, 0, true, "post: r=x")
	vs := h.readValue(0, addrZ, 1, false, "post: r=z")
	if len(vs) != 1 {
		t.Fatalf("violations = %d, want 1", len(vs))
	}
	v := vs[0]
	if v.MissingFlush.Loc != "t0: x=1" {
		t.Fatalf("missing flush = %s", v.MissingFlush.Loc)
	}
	// Fix windows must exist in the observing threads (t1 and/or t2)
	// since t0 stopped after its store.
	threads := map[memmodel.ThreadID]bool{}
	for _, f := range v.Fixes {
		if f.Kind == FixInsertFlush {
			threads[f.Thread] = true
			if f.Primary {
				t.Fatalf("primary window should not exist: %+v", f)
			}
		}
	}
	if !threads[1] && !threads[2] {
		t.Fatalf("no fix window in the observing threads: %v", v.Fixes)
	}
}
