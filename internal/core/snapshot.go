package core

import (
	"sort"

	"repro/internal/intervals"
	"repro/internal/memmodel"
	"repro/internal/trace"
)

// Snapshot is the checker's restorable state at a crash boundary:
// constraint intervals, the violation dedup set, deferred checksum
// loads, and the committed violation list. Interval endpoints and
// deferred loads reference prefix trace stores, which the explorer's
// trace rewind leaves untouched, so a snapshot stays valid for as long
// as its trace mark does.
type Snapshot struct {
	cons       map[consKey]intervals.Interval
	seen       map[violationKey]bool
	deferred   map[memmodel.ThreadID][]deferredLoad
	violations []*Violation
}

// Snapshot captures the checker's state for later Restores. The copied
// slices are allocated with capacity equal to length, so appends after a
// Restore always reallocate instead of scribbling on the shared backing
// arrays.
func (c *Checker) Snapshot() *Snapshot {
	s := &Snapshot{
		cons:     make(map[consKey]intervals.Interval, len(c.cons)),
		seen:     make(map[violationKey]bool, len(c.seen)),
		deferred: make(map[memmodel.ThreadID][]deferredLoad, len(c.deferred)),
	}
	for k, v := range c.cons {
		s.cons[k] = v
	}
	for k := range c.seen {
		s.seen[k] = true
	}
	for t, dl := range c.deferred {
		cp := make([]deferredLoad, len(dl))
		copy(cp, dl)
		s.deferred[t] = cp
	}
	s.violations = make([]*Violation, len(c.violations))
	copy(s.violations, c.violations)
	return s
}

// Restore rewinds the checker to a previously captured Snapshot. The
// violation list is restored by slice-header assignment: the snapshot
// copy has no spare capacity, so the next append reallocates and
// violations retained by the harness from executions since the snapshot
// are never overwritten in place (the same reason Reset drops the slice
// instead of truncating it).
func (c *Checker) Restore(s *Snapshot) {
	clear(c.cons)
	for k, v := range s.cons {
		c.cons[k] = v
	}
	clear(c.seen)
	for k := range s.seen {
		c.seen[k] = true
	}
	clear(c.deferred)
	for t, dl := range s.deferred {
		c.deferred[t] = dl
	}
	c.violations = s.violations
}

// StateFingerprint hashes everything about the checker's state that can
// influence the remainder of an execution: the constraint intervals with
// their provenance, the violation dedup set, and any deferred checksum
// loads. Two checkers with equal fingerprints (over the same trace)
// commit the same future constraints and report the same future
// violation keys. The explorer uses this as one component of its
// partial-order-reduction key; see DESIGN.md.
//
// Locations are folded in by label *string*, not LocID, and the
// violation set is sorted by string too: LocIDs are private to one
// interner, and the fingerprint must agree between worlds (and between
// processes — DPOR registrations ride in checkpoints) that reached the
// same state along different interning histories. Store IDs are safe as
// numbers: a trace reset rewinds them, so they depend only on the
// execution's decision path.
func (c *Checker) StateFingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	in := c.tr.Interner()
	mixLoc := func(id trace.LocID) {
		s := in.Str(id)
		mix(uint64(len(s)))
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	endpoint := func(e intervals.Endpoint) {
		mix(uint64(e.Clock))
		if s, ok := e.Store.(*trace.Store); ok && s != nil {
			mix(uint64(s.ID))
			mixLoc(s.Loc)
		} else {
			mix(^uint64(0))
		}
	}

	consKeys := make([]consKey, 0, len(c.cons))
	for k := range c.cons {
		consKeys = append(consKeys, k)
	}
	sort.Slice(consKeys, func(i, j int) bool {
		a, b := consKeys[i], consKeys[j]
		if a.subExec != b.subExec {
			return a.subExec < b.subExec
		}
		return a.thread < b.thread
	})
	mix(uint64(len(consKeys)))
	for _, k := range consKeys {
		iv := c.cons[k]
		mix(uint64(k.subExec))
		mix(uint64(int64(k.thread)))
		endpoint(iv.Lo)
		endpoint(iv.Hi)
	}

	seenKeys := make([]violationKey, 0, len(c.seen))
	for k := range c.seen {
		seenKeys = append(seenKeys, k)
	}
	sort.Slice(seenKeys, func(i, j int) bool {
		a, b := seenKeys[i], seenKeys[j]
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if as, bs := in.Str(a.mfLoc), in.Str(b.mfLoc); as != bs {
			return as < bs
		}
		return in.Str(a.perLoc) < in.Str(b.perLoc)
	})
	mix(uint64(len(seenKeys)))
	for _, k := range seenKeys {
		mix(uint64(k.kind))
		mixLoc(k.mfLoc)
		mixLoc(k.perLoc)
	}

	threads := make([]memmodel.ThreadID, 0, len(c.deferred))
	for t := range c.deferred {
		threads = append(threads, t)
	}
	sort.Slice(threads, func(i, j int) bool { return threads[i] < threads[j] })
	mix(uint64(len(threads)))
	for _, t := range threads {
		mix(uint64(int64(t)))
		dls := c.deferred[t]
		mix(uint64(len(dls)))
		for _, dl := range dls {
			mix(uint64(int64(dl.thread)))
			mix(uint64(dl.addr))
			if dl.rf != nil {
				mix(uint64(dl.rf.ID))
			} else {
				mix(^uint64(0))
			}
			mixLoc(dl.loc)
		}
	}
	return h
}
