package core

import (
	"testing"

	"repro/internal/memmodel"
	"repro/internal/px86"
	"repro/internal/trace"
)

const (
	addrX = memmodel.Addr(0x1000)
	addrY = memmodel.Addr(0x2000)
	addrZ = memmodel.Addr(0x3000)
)

// harness couples a machine with a checker the way the explorer does.
type harness struct {
	t *testing.T
	m *px86.Machine
	c *Checker
}

func newHarness(t *testing.T) *harness {
	m := px86.New(px86.Config{})
	return &harness{t: t, m: m, c: New(m.Trace())}
}

// readValue makes thread th load addr choosing the candidate with the
// given value (or the initial store when initial is true), observes the
// read, and returns any violations.
func (h *harness) readValue(th memmodel.ThreadID, addr memmodel.Addr, want memmodel.Value, initial bool, loc string) []*Violation {
	h.t.Helper()
	for _, cand := range h.m.LoadCandidates(th, addr) {
		if cand.Store.Initial == initial && (initial || cand.Store.Value == want) {
			lid := h.m.Intern(loc)
			h.m.Load(th, addr, cand, lid)
			return h.c.ObserveRead(th, addr, cand.Store, lid)
		}
	}
	h.t.Fatalf("no candidate with value %d (initial=%v) for %s", want, initial, addr)
	return nil
}

// TestFigure2 reproduces the paper's Figure 2: pre-crash x=1;y=1;x=2;y=2,
// post-crash r1=x reads 1 and r2=y reads 2 — not robust.
func TestFigure2(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	h.m.Store(0, addrY, 1, h.m.Intern("y=1"))
	h.m.Store(0, addrX, 2, h.m.Intern("x=2"))
	h.m.Store(0, addrY, 2, h.m.Intern("y=2"))
	h.m.Crash()
	if vs := h.readValue(0, addrX, 1, false, "r1=x"); len(vs) != 0 {
		t.Fatalf("reading x=1 alone must be consistent, got %v", vs)
	}
	vs := h.readValue(0, addrY, 2, false, "r2=y")
	if len(vs) != 1 {
		t.Fatalf("want 1 violation, got %d", len(vs))
	}
	v := vs[0]
	if v.Kind != ReadTooNew {
		t.Fatalf("kind = %v, want read-too-new", v.Kind)
	}
	if v.MissingFlush.Loc != "x=2" || v.Persisted.Loc != "y=2" {
		t.Fatalf("bug pair = (%s, %s), want (x=2, y=2)", v.MissingFlush.Loc, v.Persisted.Loc)
	}
	// The paper: "PSan determines a flush instruction must be inserted
	// after x = 2 to fix the robustness violation".
	if len(v.Fixes) == 0 {
		t.Fatal("no fixes suggested")
	}
	f := v.Fixes[0]
	if !f.Primary || f.AfterLoc != "x=2" || f.BeforeLoc != "y=2" {
		t.Fatalf("primary fix = %+v, want flush after x=2 before y=2", f)
	}
}

// TestFigure2Robust checks the complementary reads are accepted: r1=2,
// r2=2 corresponds to a strict execution crashing at the end.
func TestFigure2Robust(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	h.m.Store(0, addrY, 1, h.m.Intern("y=1"))
	h.m.Store(0, addrX, 2, h.m.Intern("x=2"))
	h.m.Store(0, addrY, 2, h.m.Intern("y=2"))
	h.m.Crash()
	if vs := h.readValue(0, addrX, 2, false, "r1=x"); len(vs) != 0 {
		t.Fatalf("unexpected violation: %v", vs)
	}
	if vs := h.readValue(0, addrY, 2, false, "r2=y"); len(vs) != 0 {
		t.Fatalf("unexpected violation: %v", vs)
	}
}

// TestFigure5 reproduces Figures 4 and 5: five alternating stores,
// post-crash reads r1=y=2 then r2=x=5.
func TestFigure5(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	h.m.Store(0, addrY, 2, h.m.Intern("y=2"))
	h.m.Store(0, addrX, 3, h.m.Intern("x=3"))
	h.m.Store(0, addrY, 4, h.m.Intern("y=4"))
	h.m.Store(0, addrX, 5, h.m.Intern("x=5"))
	h.m.Crash()
	if vs := h.readValue(0, addrY, 2, false, "r1=y"); len(vs) != 0 {
		t.Fatalf("interval should be [2,4), not violated: %v", vs)
	}
	iv := h.c.Interval(0, 0)
	if iv.String() != "[2, 4)" {
		t.Fatalf("interval after r1=y is %v, want [2, 4)", iv)
	}
	vs := h.readValue(0, addrX, 5, false, "r2=x")
	if len(vs) != 1 || vs[0].Kind != ReadTooNew {
		t.Fatalf("want one read-too-new violation, got %v", vs)
	}
	if vs[0].MissingFlush.Loc != "y=4" || vs[0].Persisted.Loc != "x=5" {
		t.Fatalf("bug pair = (%s, %s), want (y=4, x=5)",
			vs[0].MissingFlush.Loc, vs[0].Persisted.Loc)
	}
}

// TestFigure5ReverseOrder drives the same execution with the loads
// reversed, exercising the read-too-old diagnosis path: the same bug
// pair must be reported.
func TestFigure5ReverseOrder(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	h.m.Store(0, addrY, 2, h.m.Intern("y=2"))
	h.m.Store(0, addrX, 3, h.m.Intern("x=3"))
	h.m.Store(0, addrY, 4, h.m.Intern("y=4"))
	h.m.Store(0, addrX, 5, h.m.Intern("x=5"))
	h.m.Crash()
	if vs := h.readValue(0, addrX, 5, false, "r2=x"); len(vs) != 0 {
		t.Fatalf("unexpected violation: %v", vs)
	}
	vs := h.readValue(0, addrY, 2, false, "r1=y")
	if len(vs) != 1 || vs[0].Kind != ReadTooOld {
		t.Fatalf("want one read-too-old violation, got %v", vs)
	}
	if vs[0].MissingFlush.Loc != "y=4" || vs[0].Persisted.Loc != "x=5" {
		t.Fatalf("bug pair = (%s, %s), want (y=4, x=5)",
			vs[0].MissingFlush.Loc, vs[0].Persisted.Loc)
	}
}

// TestFigure6 reproduces Figure 6: per-thread crash intervals make the
// r1=0, r2=1 outcome robust.
func TestFigure6(t *testing.T) {
	h := newHarness(t)
	// Thread 0 issues x=1 but crashes before its flush executes; thread
	// 1 stores and flushes y.
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	h.m.Store(1, addrY, 1, h.m.Intern("y=1"))
	h.m.Flush(1, addrY, h.m.Intern("flush y"))
	h.m.Crash()
	if vs := h.readValue(0, addrX, 0, true, "r1=x"); len(vs) != 0 {
		t.Fatalf("r1=0 must be consistent: %v", vs)
	}
	if vs := h.readValue(0, addrY, 1, false, "r2=y"); len(vs) != 0 {
		t.Fatalf("r2=1 must be consistent (per-thread intervals): %v", vs)
	}
}

// TestFigure7 reproduces Figure 7: flush-after-every-store is not enough;
// the fix must go in the second thread.
func TestFigure7(t *testing.T) {
	h := newHarness(t)
	// Thread 0 stores x=1 and is paused before its flush.
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	// Thread 1 reads x, stores y=r1, and flushes it.
	cands := h.m.LoadCandidates(1, addrX)
	h.m.Load(1, addrX, cands[0], h.m.Intern("r1=x"))
	h.c.ObserveRead(1, addrX, cands[0].Store, h.m.Intern("r1=x"))
	h.m.Store(1, addrY, 1, h.m.Intern("y=r1"))
	h.m.Flush(1, addrY, h.m.Intern("flush y"))
	h.m.Crash()
	if vs := h.readValue(0, addrX, 0, true, "r2=x"); len(vs) != 0 {
		t.Fatalf("r2=0 alone is consistent: %v", vs)
	}
	vs := h.readValue(0, addrY, 1, false, "r3=y")
	if len(vs) != 1 || vs[0].Kind != ReadTooNew {
		t.Fatalf("want one read-too-new violation, got %v", vs)
	}
	v := vs[0]
	if v.MissingFlush.Loc != "x=1" || v.Persisted.Loc != "y=r1" {
		t.Fatalf("bug pair = (%s, %s), want (x=1, y=r1)", v.MissingFlush.Loc, v.Persisted.Loc)
	}
	// The primary fix interval (thread 0) is empty — thread 0 stopped
	// right after the store — so the suggested flush must go in thread 1
	// after the load that observed x=1 (§5.2).
	for _, f := range v.Fixes {
		if f.Primary {
			t.Fatalf("primary fix should not exist (thread stopped): %+v", f)
		}
	}
	var alt *Fix
	for i := range v.Fixes {
		if v.Fixes[i].Kind == FixInsertFlush && v.Fixes[i].Thread == 1 {
			alt = &v.Fixes[i]
		}
	}
	if alt == nil {
		t.Fatalf("no alternate fix in thread 1: %v", v.Fixes)
	}
	if alt.AfterLoc != "r1=x" || alt.BeforeLoc != "y=r1" {
		t.Fatalf("alternate fix window = after %q before %q, want after r1=x before y=r1",
			alt.AfterLoc, alt.BeforeLoc)
	}
}

// TestFigure8 reproduces the multi-crash example of Figure 8: reads r=0
// and s=1 leave C(e1) unsatisfiable.
func TestFigure8(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	h.m.Store(0, addrY, 1, h.m.Intern("y=1"))
	h.m.Crash()
	h.m.Store(0, addrY, 2, h.m.Intern("y=2"))
	if vs := h.readValue(0, addrX, 0, true, "r=x"); len(vs) != 0 {
		t.Fatalf("r=0 alone is consistent: %v", vs)
	}
	h.m.Crash()
	vs := h.readValue(0, addrY, 1, false, "s=y")
	if len(vs) != 1 {
		t.Fatalf("want 1 violation, got %v", vs)
	}
	v := vs[0]
	if v.SubExec != 0 {
		t.Fatalf("violated interval in sub-execution %d, want 0 (C(e1) in the paper)", v.SubExec)
	}
	if v.MissingFlush.Loc != "x=1" || v.Persisted.Loc != "y=1" {
		t.Fatalf("bug pair = (%s, %s), want (x=1, y=1)", v.MissingFlush.Loc, v.Persisted.Loc)
	}
	// Reading s=y also constrains C(e2): the second sub-execution must
	// have crashed before y=2 committed.
	iv := h.c.Interval(1, 0)
	if iv.String() != "[0, 1)" {
		t.Fatalf("C(e2) = %v, want [0, 1)", iv)
	}
}

// TestFigure8RobustReads drives Figure 8 with reads that are consistent:
// r=0 and s=2 (the newer y persisted).
func TestFigure8RobustReads(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	h.m.Store(0, addrY, 1, h.m.Intern("y=1"))
	h.m.Crash()
	h.m.Store(0, addrY, 2, h.m.Intern("y=2"))
	h.readValue(0, addrX, 0, true, "r=x")
	h.m.Crash()
	if vs := h.readValue(0, addrY, 2, false, "s=y"); len(vs) != 0 {
		t.Fatalf("s=2 must be consistent: %v", vs)
	}
}

// TestSameSubExecReadsUnchecked: reads within the current sub-execution
// never constrain crash intervals.
func TestSameSubExecReadsUnchecked(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	h.m.Store(0, addrX, 2, h.m.Intern("x=2"))
	if vs := h.readValue(1, addrX, 2, false, "r=x"); len(vs) != 0 {
		t.Fatalf("same-sub-execution read must not be checked: %v", vs)
	}
	if !h.c.Interval(0, 0).Unconstrained() {
		t.Fatal("interval must remain unconstrained")
	}
}

// TestFlushedCommitStorePattern encodes Figure 1's addChild/readChild:
// flush data, then commit store, then flush the commit store — robust
// even when the crash hits between the two flushes.
func TestFlushedCommitStorePattern(t *testing.T) {
	// Crash after the commit store but before its flush: the post-crash
	// reader either sees the child (data guaranteed flushed) or not.
	for _, sawChild := range []bool{true, false} {
		h := newHarness(t)
		h.m.Store(0, addrY, 42, h.m.Intern("tmp->data=42"))
		h.m.Flush(0, addrY, h.m.Intern("clflush tmp"))
		h.m.Store(0, addrX, 1, h.m.Intern("ptr->child=tmp"))
		// crash before "clflush &ptr->child"
		h.m.Crash()
		var vs []*Violation
		if sawChild {
			vs = h.readValue(0, addrX, 1, false, "read child ptr")
			if len(vs) != 0 {
				t.Fatalf("sawChild: %v", vs)
			}
			vs = h.readValue(0, addrY, 42, false, "read child data")
		} else {
			vs = h.readValue(0, addrX, 0, true, "read child ptr")
		}
		if len(vs) != 0 {
			t.Fatalf("Figure 1 pattern is robust, got %v", vs)
		}
	}
}

// TestUnflushedCommitStorePattern breaks Figure 1 by removing the data
// flush: seeing the commit store without the data is a violation.
func TestUnflushedCommitStorePattern(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrY, 42, h.m.Intern("tmp->data=42"))
	// missing: clflush tmp
	h.m.Store(0, addrX, 1, h.m.Intern("ptr->child=tmp"))
	h.m.Flush(0, addrX, h.m.Intern("clflush &ptr->child"))
	h.m.Crash()
	if vs := h.readValue(0, addrX, 1, false, "read child ptr"); len(vs) != 0 {
		t.Fatalf("reading the commit store alone is consistent: %v", vs)
	}
	vs := h.readValue(0, addrY, 0, true, "read child data")
	if len(vs) != 1 || vs[0].Kind != ReadTooOld {
		t.Fatalf("want read-too-old on stale data, got %v", vs)
	}
	if vs[0].MissingFlush.Loc != "tmp->data=42" {
		t.Fatalf("missing flush on %s, want tmp->data=42", vs[0].MissingFlush.Loc)
	}
}

// TestCheckReadDoesNotMutate: the speculative API leaves state untouched.
func TestCheckReadDoesNotMutate(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	h.m.Store(0, addrX, 2, h.m.Intern("x=2"))
	h.m.Crash()
	cands := h.m.LoadCandidates(0, addrX)
	var old *trace.Store
	for _, c := range cands {
		if c.Store.Value == 1 {
			old = c.Store
		}
	}
	if vs := h.c.CheckRead(0, addrX, old, h.m.Intern("r=x")); len(vs) != 0 {
		t.Fatalf("reading x=1 is consistent, got %v", vs)
	}
	if !h.c.Interval(0, 0).Unconstrained() {
		t.Fatal("CheckRead mutated the constraint state")
	}
}

// TestCheckReadPredictsViolation: CheckRead flags a read that ObserveRead
// would flag, letting the explorer steer around it.
func TestCheckReadPredictsViolation(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	h.m.Store(0, addrY, 1, h.m.Intern("y=1"))
	h.m.Store(0, addrX, 2, h.m.Intern("x=2"))
	h.m.Store(0, addrY, 2, h.m.Intern("y=2"))
	h.m.Crash()
	h.readValue(0, addrX, 1, false, "r1=x")
	// Speculatively reading y=2 must be flagged; reading y=1 must not.
	var s1, s2 *trace.Store
	for _, c := range h.m.LoadCandidates(0, addrY) {
		switch c.Store.Value {
		case 1:
			s1 = c.Store
		case 2:
			s2 = c.Store
		}
	}
	if vs := h.c.CheckRead(0, addrY, s2, h.m.Intern("r2=y")); len(vs) != 1 {
		t.Fatalf("CheckRead(y=2) = %v, want 1 violation", vs)
	}
	if vs := h.c.CheckRead(0, addrY, s1, h.m.Intern("r2=y")); len(vs) != 0 {
		t.Fatalf("CheckRead(y=1) = %v, want none", vs)
	}
}

// TestViolationDedup: the same bug observed twice is recorded once.
func TestViolationDedup(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	h.m.Store(0, addrY, 1, h.m.Intern("y=1"))
	h.m.Store(0, addrX, 2, h.m.Intern("x=2"))
	h.m.Store(0, addrY, 2, h.m.Intern("y=2"))
	h.m.Crash()
	h.readValue(0, addrX, 1, false, "r1=x")
	h.readValue(0, addrY, 2, false, "r2=y")
	h.readValue(0, addrY, 2, false, "r3=y") // same outcome again
	if n := len(h.c.Violations()); n != 1 {
		t.Fatalf("violations recorded = %d, want 1 (deduplicated)", n)
	}
}

// TestContinuesPastViolation: after a violation the emptying constraint
// is dropped so an independent second bug is still found.
func TestContinuesPastViolation(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	h.m.Store(0, addrY, 1, h.m.Intern("y=1"))
	h.m.Store(0, addrX, 2, h.m.Intern("x=2"))
	h.m.Store(0, addrY, 2, h.m.Intern("y=2"))
	h.m.Store(1, addrZ, 1, h.m.Intern("z=1"))
	h.m.Store(1, addrZ+8, 1, h.m.Intern("w=1")) // same line as z
	h.m.Crash()
	h.readValue(0, addrX, 1, false, "r1=x")
	h.readValue(0, addrY, 2, false, "r2=y") // bug 1
	// Thread 1's interval is independent; no violation reading z.
	if vs := h.readValue(0, addrZ, 1, false, "r3=z"); len(vs) != 0 {
		t.Fatalf("independent read violated: %v", vs)
	}
	if n := len(h.c.Violations()); n != 1 {
		t.Fatalf("violations = %d, want 1", n)
	}
}

// TestChecksumRegionDiscardsInvalid: loads inside a checksum region whose
// validation fails constrain nothing (§6.4, violations #33–#35).
func TestChecksumRegionDiscardsInvalid(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	h.m.Store(0, addrY, 1, h.m.Intern("y=1"))
	h.m.Store(0, addrX, 2, h.m.Intern("x=2"))
	h.m.Store(0, addrY, 2, h.m.Intern("y=2"))
	h.m.Crash()
	h.c.BeginChecksumRegion(0)
	h.readValue(0, addrX, 1, false, "r1=x")
	h.readValue(0, addrY, 2, false, "r2=y")
	if vs := h.c.EndChecksumRegion(0, false); len(vs) != 0 {
		t.Fatalf("failed checksum must discard loads: %v", vs)
	}
	if n := len(h.c.Violations()); n != 0 {
		t.Fatalf("violations = %d, want 0", n)
	}
	if !h.c.Interval(0, 0).Unconstrained() {
		t.Fatal("discarded loads must not constrain")
	}
}

// TestChecksumRegionValidatesAndReports: if the checksum validates, the
// deferred loads are processed and violations surface normally.
func TestChecksumRegionValidatesAndReports(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	h.m.Store(0, addrY, 1, h.m.Intern("y=1"))
	h.m.Store(0, addrX, 2, h.m.Intern("x=2"))
	h.m.Store(0, addrY, 2, h.m.Intern("y=2"))
	h.m.Crash()
	h.c.BeginChecksumRegion(0)
	h.readValue(0, addrX, 1, false, "r1=x")
	h.readValue(0, addrY, 2, false, "r2=y")
	vs := h.c.EndChecksumRegion(0, true)
	if len(vs) != 1 {
		t.Fatalf("validated checksum must report the violation: %v", vs)
	}
	if n := len(h.c.Violations()); n != 1 {
		t.Fatalf("violations = %d, want 1", n)
	}
}

// TestColocationFixSuggested: cross-line bug pairs come with a layout
// suggestion (§5.2 "Alternatively, ... colocating fields").
func TestColocationFixSuggested(t *testing.T) {
	h := newHarness(t)
	h.m.Store(0, addrX, 1, h.m.Intern("x=1"))
	h.m.Store(0, addrY, 1, h.m.Intern("y=1"))
	h.m.Store(0, addrX, 2, h.m.Intern("x=2"))
	h.m.Store(0, addrY, 2, h.m.Intern("y=2"))
	h.m.Crash()
	h.readValue(0, addrX, 1, false, "r1=x")
	vs := h.readValue(0, addrY, 2, false, "r2=y")
	found := false
	for _, f := range vs[0].Fixes {
		if f.Kind == FixColocate {
			found = true
		}
	}
	if !found {
		t.Fatalf("no colocation fix suggested: %v", vs[0].Fixes)
	}
}

// TestSameLineStoresNeedNoFlush: consecutive writes to one cache line
// persist in TSO order, so the Figure 2 pattern on a single line is
// robust (§1.1 point 2 of the transformation discussion).
func TestSameLineStoresNeedNoFlush(t *testing.T) {
	h := newHarness(t)
	a, b := addrX, addrX+8 // same line
	h.m.Store(0, a, 1, h.m.Intern("a=1"))
	h.m.Store(0, b, 1, h.m.Intern("b=1"))
	h.m.Store(0, a, 2, h.m.Intern("a=2"))
	h.m.Store(0, b, 2, h.m.Intern("b=2"))
	h.m.Crash()
	// b=2 persisted implies a=2 persisted: reading a=1 is impossible at
	// the machine level, so only consistent outcomes are reachable.
	h.readValue(0, addrX, 2, false, "r1=a")
	if vs := h.readValue(0, b, 2, false, "r2=b"); len(vs) != 0 {
		t.Fatalf("same-line TSO prefix must be robust: %v", vs)
	}
}
