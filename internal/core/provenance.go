package core

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/trace"
)

// computeProvenance captures the minimal event sub-trace that explains a
// diagnosed violation: the racing store (the one missing its flush), the
// flush/fence context around it in the crashed sub-execution, the crash
// point, the store observed persisted, and the post-crash read that made
// the constraints unsatisfiable.
//
// Like computeFixes it runs at record time — once per distinct violation,
// while the detecting execution's trace is still intact — and everything
// it emits is a materialized copy (strings and ints), so the record
// outlives trace recycling.
func (c *Checker) computeProvenance(v *Violation) *obs.Provenance {
	p := &obs.Provenance{Kind: v.Kind.String()}
	mf, per := v.MissingFlush, v.Persisted

	if mf != nil {
		note := "the racing store: nothing guaranteed it persisted before the crash"
		if mf.Initial {
			note = "the initial (never-written) contents survived in its place"
		}
		p.Events = append(p.Events, provStoreEvent("racing-store", mf, note))
		if !mf.Initial {
			c.appendFlushContext(p, mf)
		}
	}

	crashSub := v.SubExec
	if mf != nil {
		crashSub = mf.SubExec
	}
	if crashSub < c.tr.NumCrashes() {
		p.Events = append(p.Events, obs.ProvEvent{
			Role: "crash", Op: "crash", Thread: int(v.Thread), SubExec: crashSub,
			Note: fmt.Sprintf("power failure ends sub-execution %d; thread %d's potential-crash interval becomes empty", crashSub, int(v.Thread)),
		})
	}

	if per != nil {
		p.Events = append(p.Events, provStoreEvent("persisted-store", per,
			"made persistent and observed after the crash, pinning the crash point after it"))
	}

	read := obs.ProvEvent{
		Role: "post-crash-read", Op: "load",
		Loc:     v.LoadLoc,
		Thread:  int(v.LoadThread),
		SubExec: c.tr.Current().Index,
		Note:    "this read is inconsistent with every strictly-persistent execution",
	}
	if v.ReadFrom != nil {
		read.Addr = v.ReadFrom.Addr.String()
		read.Value = uint64(v.ReadFrom.Value)
		if v.Kind == ReadTooOld {
			read.Note = fmt.Sprintf("read the stale value %d: inconsistent with every strictly-persistent execution", uint64(v.ReadFrom.Value))
		} else {
			read.Note = fmt.Sprintf("read the too-new value %d: inconsistent with every strictly-persistent execution", uint64(v.ReadFrom.Value))
		}
	}
	p.Events = append(p.Events, read)
	return p
}

// provStoreEvent freezes a StoreRef into a provenance step.
func provStoreEvent(role string, s *StoreRef, note string) obs.ProvEvent {
	ev := obs.ProvEvent{
		Role:    role,
		Op:      s.Kind.String(),
		Loc:     s.Loc,
		Thread:  int(s.Thread),
		SubExec: s.SubExec,
		Addr:    s.Addr.String(),
		Value:   uint64(s.Value),
		Note:    note,
	}
	if s.Initial {
		ev.Op = "init"
		ev.Loc = ""
	}
	return ev
}

// appendFlushContext walks the crashed sub-execution's events after the
// racing store, reporting the first flush of its cache line (if any) and
// the first drain by its thread — the context that shows why the store's
// persistence was not guaranteed.
func (c *Checker) appendFlushContext(p *obs.Provenance, mf *StoreRef) {
	evs := c.tr.SubEvents(mf.SubExec)
	line := mf.Addr.Line()
	start := -1
	for i, ev := range evs {
		if ev.Store != nil && ev.Store.ID == mf.ID {
			start = i + 1
			break
		}
	}
	if start < 0 {
		// On a bounded-window trace the racing store's event — and with
		// it the flush/fence context that followed — may already have
		// been retired. Walking the retained suffix would report a
		// *later* flush or fence as "first", which is worse than saying
		// nothing; emit an honest placeholder instead.
		if c.tr.WindowSize() > 0 {
			p.Events = append(p.Events, obs.ProvEvent{
				Role:    "flush-context",
				Thread:  int(mf.Thread),
				SubExec: mf.SubExec,
				Addr:    line.String(),
				Note:    "flush/fence context released by the bounded trace window before the violation was diagnosed",
			})
			return
		}
		start = 0
	}
	var flushEv, fenceEv *trace.Event
	for _, ev := range evs[start:] {
		switch ev.Kind {
		case memmodel.OpFlush, memmodel.OpFlushOpt:
			if ev.Addr == line && flushEv == nil {
				flushEv = ev
			}
		case memmodel.OpSFence, memmodel.OpMFence:
			if ev.Thread == mf.Thread && fenceEv == nil {
				fenceEv = ev
			}
		}
	}
	if flushEv != nil {
		p.Events = append(p.Events, obs.ProvEvent{
			Role: "flush-context", Op: flushEv.Kind.String(),
			Loc:     c.tr.LocString(flushEv.Loc),
			Thread:  int(flushEv.Thread),
			SubExec: mf.SubExec,
			Addr:    flushEv.Addr.String(),
			Note:    "flushes the store's cache line, but its completion was not guaranteed before the crash",
		})
	} else {
		p.Events = append(p.Events, obs.ProvEvent{
			Role:    "flush-context",
			Thread:  int(mf.Thread),
			SubExec: mf.SubExec,
			Addr:    line.String(),
			Note:    "no later flush of this cache line appears in the crashed sub-execution",
		})
	}
	if fenceEv != nil {
		p.Events = append(p.Events, obs.ProvEvent{
			Role: "fence-context", Op: fenceEv.Kind.String(),
			Loc:     c.tr.LocString(fenceEv.Loc),
			Thread:  int(fenceEv.Thread),
			SubExec: mf.SubExec,
			Note:    "the storing thread's first drain after the store — too late or draining the wrong flush",
		})
	}
}
