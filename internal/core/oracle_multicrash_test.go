package core

import (
	"math/rand"
	"testing"

	"repro/internal/memmodel"
	"repro/internal/px86"
	"repro/internal/trace"
)

// Multi-crash ground truth: programs with two crash events. The final
// sub-execution only reads, and the middle one only writes, so
// Definition 2 reduces to: there exist per-sub-execution cuts (each a
// per-thread prefix closed under happens-before) whose stacked image —
// the newer sub-execution's cut overriding the older's per location —
// matches every observed read. The checker's verdict must agree.

// genOps2 returns the two pre-crash phases (phase 1 on two threads,
// phase 2 on one).
func genOps2(seed int64) (p1, p2 []oracleOp) {
	rng := rand.New(rand.NewSource(seed))
	locs := []memmodel.Addr{0x1000, 0x1008, 0x2000}
	n1 := 2 + rng.Intn(4)
	var next memmodel.Value = 1
	for i := 0; i < n1; i++ {
		t := memmodel.ThreadID(rng.Intn(2))
		a := locs[rng.Intn(len(locs))]
		if rng.Intn(4) == 3 {
			p1 = append(p1, oracleOp{kind: 1, thread: t, addr: a})
		} else {
			p1 = append(p1, oracleOp{kind: 0, thread: t, addr: a, value: next})
			next++
		}
	}
	n2 := 1 + rng.Intn(3)
	for i := 0; i < n2; i++ {
		a := locs[rng.Intn(len(locs))]
		if rng.Intn(4) == 3 {
			p2 = append(p2, oracleOp{kind: 1, thread: 0, addr: a})
		} else {
			p2 = append(p2, oracleOp{kind: 0, thread: 0, addr: a, value: next})
			next++
		}
	}
	return p1, p2
}

// runOnce2 executes both phases with crashes and performs the picked
// post-crash reads in sub-execution 3.
func runOnce2(p1, p2 []oracleOp, picks []int) (rfs []*trace.Store, counts []int, tr *trace.Trace, flagged bool) {
	m := px86.New(px86.Config{})
	ck := New(m.Trace())
	apply := func(ops []oracleOp) {
		for _, op := range ops {
			switch op.kind {
			case 0:
				m.Store(op.thread, op.addr, op.value, m.Intern("s"))
			case 1:
				m.Flush(op.thread, op.addr, m.Intern("f"))
			}
		}
	}
	apply(p1)
	m.Crash()
	apply(p2)
	m.Crash()
	readOrder := []memmodel.Addr{0x1000, 0x1008, 0x2000}
	for i, a := range readOrder {
		cands := m.LoadCandidates(0, a)
		counts = append(counts, len(cands))
		pick := 0
		if i < len(picks) && picks[i] < len(cands) {
			pick = picks[i]
		}
		m.Load(0, a, cands[pick], m.Intern("post read"))
		if vs := ck.ObserveRead(0, a, cands[pick].Store, m.Intern("post read")); len(vs) > 0 {
			flagged = true
		}
		rfs = append(rfs, cands[pick].Store)
	}
	return rfs, counts, m.Trace(), flagged
}

// strictEquivalentExists2 brute-forces the stacked-cut existence.
func strictEquivalentExists2(tr *trace.Trace, rfs []*trace.Store) bool {
	readOrder := []memmodel.Addr{0x1000, 0x1008, 0x2000}
	e1, e2 := tr.Sub(0), tr.Sub(1)
	per1 := map[memmodel.ThreadID][]*trace.Store{}
	for _, st := range e1.Stores {
		per1[st.Thread] = append(per1[st.Thread], st)
	}
	t0, t1 := per1[0], per1[1]
	e2s := e2.Stores // single thread: prefixes in commit order
	for k0 := 0; k0 <= len(t0); k0++ {
		for k1 := 0; k1 <= len(t1); k1++ {
			cut1 := append(append([]*trace.Store{}, t0[:k0]...), t1[:k1]...)
			if !hbClosed(cut1, e1.Stores) {
				continue
			}
			for k2 := 0; k2 <= len(e2s); k2++ {
				if stackedImageMatches(cut1, e2s[:k2], readOrder, rfs) {
					return true
				}
			}
		}
	}
	return false
}

// stackedImageMatches applies cut2 over cut1 per location.
func stackedImageMatches(cut1, cut2 []*trace.Store, readOrder []memmodel.Addr, rfs []*trace.Store) bool {
	last := map[memmodel.Addr]*trace.Store{}
	for _, s := range cut1 {
		if cur, ok := last[s.Addr]; !ok || s.Seq > cur.Seq {
			last[s.Addr] = s
		}
	}
	for _, s := range cut2 { // commit order; later entries override
		last[s.Addr] = s
	}
	for i, a := range readOrder {
		want := rfs[i]
		got := last[a]
		if want.Initial {
			if got != nil {
				return false
			}
		} else if got != want {
			return false
		}
	}
	return true
}

// TestOracleAgreementMultiCrash enumerates every reachable outcome of
// two-crash programs and compares the checker's verdict against the
// stacked-cut ground truth.
func TestOracleAgreementMultiCrash(t *testing.T) {
	outcomes, violations := 0, 0
	for seed := int64(0); seed < 300; seed++ {
		p1, p2 := genOps2(seed)
		var enumerate func(prefix []int)
		enumerate = func(prefix []int) {
			if len(prefix) == 3 {
				rfs, _, tr, flagged := runOnce2(p1, p2, prefix)
				outcomes++
				truth := strictEquivalentExists2(tr, rfs)
				if flagged == truth {
					t.Fatalf("seed %d picks %v: flagged=%v but strict equivalent exists=%v\nreads: %v",
						seed, prefix, flagged, truth, rfs)
				}
				if flagged {
					violations++
				}
				return
			}
			_, counts, _, _ := runOnce2(p1, p2, prefix)
			for pick := 0; pick < counts[len(prefix)]; pick++ {
				enumerate(append(append([]int{}, prefix...), pick))
			}
		}
		enumerate(nil)
	}
	if outcomes == 0 || violations == 0 {
		t.Fatalf("oracle too weak: %d outcomes, %d violations", outcomes, violations)
	}
	t.Logf("multi-crash oracle: %d outcomes, %d violating, all verdicts agree", outcomes, violations)
}
