package core
