package report

import (
	"strings"
	"testing"
)

func TestRenderTableAlignment(t *testing.T) {
	out := RenderTable("T", []string{"a", "bbbb"}, [][]string{{"xx", "y"}, {"z", "wwwww"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "T") {
		t.Fatalf("missing title: %q", lines[0])
	}
	// All non-title lines share a width.
	w := len(lines[1])
	for _, l := range lines[2:] {
		if len(l) > w+2 {
			t.Fatalf("misaligned line %q (header %q)", l, lines[1])
		}
	}
}

// Table 1's live demo must show the subsumption story: PSan finds both
// litmus bugs, the dependence heuristic misses the Figure 7 shape, and
// the assertion oracle sees nothing without an assertion.
func TestTable1Subsumption(t *testing.T) {
	rows, text := Table1()
	byTool := map[string]Table1Row{}
	for _, r := range rows {
		byTool[r.Tool] = r
	}
	psan := byTool["PSan"]
	if !psan.FindsCommit || !psan.FindsFig7 {
		t.Fatalf("PSan must find both: %+v", psan)
	}
	witcher := byTool["Witcher"]
	if !witcher.FindsCommit {
		t.Fatalf("Witcher heuristic should find the commit-store bug: %+v", witcher)
	}
	if witcher.FindsFig7 {
		t.Fatalf("Witcher heuristic should miss the Figure 7 shape: %+v", witcher)
	}
	jaaru := byTool["Jaaru"]
	if jaaru.FindsCommit || jaaru.FindsFig7 {
		t.Fatalf("assertion oracle should be silent without assertions: %+v", jaaru)
	}
	if !strings.Contains(text, "Robustness") {
		t.Fatalf("rendered table missing content:\n%s", text)
	}
}

// A reduced Table 2 run must find every non-memory-management row and
// leave every fixed variant clean.
func TestTable2AllRowsFound(t *testing.T) {
	if testing.Short() {
		t.Skip("full table run")
	}
	res := Table2(Options{Seed: 1})
	for _, row := range res.Rows {
		if !row.Found {
			t.Errorf("row %d (%s %s) missed", row.ID, row.Benchmark, row.Field)
		}
	}
	for name, clean := range res.FixedClean {
		if !clean {
			t.Errorf("fixed variant of %s still reports violations", name)
		}
	}
	if res.MemMgmt["P-ART"] != 9 {
		t.Errorf("P-ART memory-management violations = %d, want 9", res.MemMgmt["P-ART"])
	}
	if res.MemMgmt["P-BwTree"] != 4 {
		t.Errorf("P-BwTree memory-management violations = %d, want 4", res.MemMgmt["P-BwTree"])
	}
	if res.NewBugs == 0 {
		t.Error("no previously-unreported bugs counted")
	}
	out := res.Render()
	if !strings.Contains(out, "CCEH") || !strings.Contains(out, "FAST_FAIR") {
		t.Fatalf("render missing benchmarks:\n%s", out)
	}
}

// Table 3's reproduced claim is the shape: PSan's per-execution time is
// close to the bare simulator's (the paper reports "minimal overhead"),
// and the bug-discovery execution counts are positive for the buggy
// ports.
func TestTable3OverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing run")
	}
	rows := Table3(Options{Seed: 1})
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 index benchmarks", len(rows))
	}
	for _, r := range rows {
		if r.PSanTime <= 0 || r.JaaruTime <= 0 {
			t.Errorf("%s: non-positive timing %v/%v", r.Benchmark, r.JaaruTime, r.PSanTime)
		}
		// Generous bound: the paper reports near-zero overhead; allow
		// noise on a shared machine.
		if r.Overhead() > 5 {
			t.Errorf("%s: overhead %.2fx implausibly high", r.Benchmark, r.Overhead())
		}
		if r.Benchmark != "P-Masstree" && r.Executions == 0 {
			t.Errorf("%s: found no bugs in discovery run", r.Benchmark)
		}
		if r.Benchmark == "P-Masstree" && r.Executions != 0 {
			t.Errorf("P-Masstree should report no bugs, got discovery at execution %d", r.Executions)
		}
	}
	out := RenderTable3(rows)
	if !strings.Contains(out, "P-Masstree") {
		t.Fatalf("render missing rows:\n%s", out)
	}
}

func TestViolationsReport(t *testing.T) {
	out, err := Violations("CCEH", Options{Executions: 150, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "robustness violation") || !strings.Contains(out, "fix:") {
		t.Fatalf("report missing detail:\n%s", out)
	}
	if _, err := Violations("nope", Options{}); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}
