package report

import (
	"fmt"

	"repro/internal/baseline"
	"repro/internal/benchmarks"
	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/pmem"
)

// ComparisonRow is one benchmark's entry in the §6.4 tool comparison:
// distinct bugs reported by PSan, by the Witcher-style dependence
// heuristic, by the pmemcheck-style flush scan, and by the Jaaru-style
// assertion oracle, over the same explored executions.
type ComparisonRow struct {
	Benchmark string
	// PSan is the number of distinct robustness violations (bug sites).
	PSan int
	// Witcher is the number of distinct dependence-heuristic findings.
	Witcher int
	// WitcherMissed counts PSan bugs with no Witcher finding naming the
	// same missing-flush site ("PSan reported 31 bugs that could not be
	// found by Witcher").
	WitcherMissed int
	// Pmemcheck is the number of distinct unflushed-store sites flagged
	// (order-insensitive, includes harmless temporaries).
	Pmemcheck int
	// AssertFailures counts executions with at least one assertion
	// failure — all the Jaaru-style oracle reports.
	AssertFailures int
}

// Comparison runs each benchmark port once and feeds every explored
// execution's trace to the baseline checkers, reproducing the §6.4
// comparison on identical executions.
func Comparison(opt Options) []ComparisonRow {
	var rows []ComparisonRow
	for _, b := range benchmarks.All() {
		execs := b.Executions
		if opt.Executions > 0 {
			execs = opt.Executions
		}
		witcherKeys := map[string]bool{}
		pmemcheckKeys := map[string]bool{}
		assertExecs := 0
		res := explore.Run(b.Build(bench.Buggy), explore.Options{
			Mode:       b.PreferredMode,
			Executions: execs,
			Seed:       opt.Seed + 1,
			Workers:    opt.Workers,
			Model:      opt.modelConfig(),
			Obs:        opt.Obs,
			Context:    opt.Context,
			AfterExecution: func(w *pmem.World) {
				for _, f := range baseline.Witcher(w.M.Trace()) {
					witcherKeys[f.Key()] = true
				}
				for _, u := range baseline.Pmemcheck(w.M.Trace()) {
					pmemcheckKeys[u.Loc] = true
				}
				if len(baseline.AssertOracle(w)) > 0 {
					assertExecs++
				}
			},
		})
		// Count PSan bugs whose missing-flush site Witcher never named.
		missed := 0
		for _, v := range res.Violations {
			found := false
			for k := range witcherKeys {
				if len(k) > 0 && k[:indexOrEnd(k, '|')] == v.MissingFlush.Loc {
					found = true
					break
				}
			}
			if !found {
				missed++
			}
		}
		rows = append(rows, ComparisonRow{
			Benchmark:      b.Name,
			PSan:           len(res.Violations),
			Witcher:        len(witcherKeys),
			WitcherMissed:  missed,
			Pmemcheck:      len(pmemcheckKeys),
			AssertFailures: assertExecs,
		})
	}
	return rows
}

func indexOrEnd(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return len(s)
}

// RenderComparison lays the §6.4 comparison out.
func RenderComparison(rows []ComparisonRow) string {
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			r.Benchmark,
			fmt.Sprintf("%d", r.PSan),
			fmt.Sprintf("%d", r.Witcher),
			fmt.Sprintf("%d", r.WitcherMissed),
			fmt.Sprintf("%d", r.Pmemcheck),
			fmt.Sprintf("%d", r.AssertFailures),
		})
	}
	return RenderTable(
		"§6.4 comparison on identical executions (distinct bug sites per tool)",
		[]string{"Benchmark", "PSan", "Witcher", "PSan-only vs Witcher", "pmemcheck (noisy)", "assert-failure execs"},
		table)
}
