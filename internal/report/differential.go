package report

import (
	"fmt"

	"repro/internal/benchmarks"
	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/persist"
)

// DifferentialRow is one benchmark's cross-model agreement summary:
// the px86-vs-ptsosyn violation-set comparison in the benchmark's
// preferred exploration mode, plus the strict-oracle checks (a robust
// program's final heap matches strict; strict itself reports nothing).
type DifferentialRow struct {
	Benchmark string
	Mode      explore.Mode
	// Violations is the (shared) weak-model violation count.
	Violations int
	// Agree reports px86 and ptsosyn produced identical violation key
	// sets and execution counts.
	Agree bool
	// Detail lists the divergence when Agree is false.
	Detail string
	// StrictClean reports the strict backend found no violations in the
	// buggy variant (it never can: strict is the robustness reference).
	StrictClean bool
	// OracleHeapDiffs counts final-heap words where the Fixed (robust)
	// variant differs between strict and px86; 0 for a truly robust fix.
	OracleHeapDiffs int
}

// Differential runs the cross-model checks over every registered
// benchmark.
func Differential(opt Options) []DifferentialRow {
	var rows []DifferentialRow
	for _, b := range benchmarks.All() {
		execs := b.Executions
		if opt.Executions > 0 {
			execs = opt.Executions
		}
		d := explore.DiffModels(b.Build(bench.Buggy), explore.Options{
			Mode: b.PreferredMode, Executions: execs, Seed: opt.Seed + 1,
			Workers: opt.Workers, Deadline: opt.Deadline,
			Obs: opt.Obs, Context: opt.Context,
		}, persist.Config{Name: "px86"}, persist.Config{Name: "ptsosyn"})
		strictRes := explore.Run(b.Build(bench.Buggy), explore.Options{
			Mode: b.PreferredMode, Executions: execs, Seed: opt.Seed + 1,
			Workers: opt.Workers, Deadline: opt.Deadline,
			Model: persist.Config{Name: "strict"},
			Obs:   opt.Obs, Context: opt.Context,
		})
		heapDiffs := explore.DiffFinalHeaps(b.Build(bench.Fixed), opt.Seed+1,
			persist.Config{Name: "strict"}, persist.Config{Name: "px86"})
		row := DifferentialRow{
			Benchmark:       b.Name,
			Mode:            b.PreferredMode,
			Violations:      len(d.A.Violations),
			Agree:           !d.Divergent(),
			StrictClean:     len(strictRes.Violations) == 0,
			OracleHeapDiffs: len(heapDiffs),
		}
		if d.Divergent() {
			row.Detail = d.String()
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderDifferential lays the cross-model table out.
func RenderDifferential(rows []DifferentialRow) string {
	table := make([][]string, 0, len(rows))
	allAgree := true
	for _, r := range rows {
		agree := "agree"
		if !r.Agree {
			agree = "DIVERGE"
			allAgree = false
		}
		clean := "clean"
		if !r.StrictClean {
			clean = "VIOLATIONS"
			allAgree = false
		}
		oracle := "match"
		if r.OracleHeapDiffs > 0 {
			oracle = fmt.Sprintf("%d words differ", r.OracleHeapDiffs)
			allAgree = false
		}
		table = append(table, []string{
			r.Benchmark, r.Mode.String(), fmt.Sprintf("%d", r.Violations), agree, clean, oracle,
		})
	}
	out := RenderTable(
		"Differential cross-model checks (px86 vs ptsosyn; strict oracle)",
		[]string{"Benchmark", "mode", "violations", "px86 vs ptsosyn", "strict verdict", "fixed-heap vs strict"},
		table)
	if allAgree {
		out += "\nall models agree\n"
	} else {
		out += "\nDIVERGENCE DETECTED — see rows above\n"
		for _, r := range rows {
			if r.Detail != "" {
				out += r.Detail + "\n"
			}
		}
	}
	return out
}
