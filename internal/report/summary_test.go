package report

import (
	"strings"
	"testing"

	"repro/internal/explore"
)

// TestRunSummaryPartialStop pins the degraded-run rendering: the stop
// reason, the coverage counts, and the resume hint.
func TestRunSummaryPartialStop(t *testing.T) {
	res := &explore.Result{
		Program: "p", Mode: explore.ModelCheck, Executions: 7,
		Partial: true, StopReason: "deadline", FrontierRemaining: 3,
		Checkpoint: &explore.Checkpoint{},
	}
	out := RunSummary(res)
	for _, want := range []string{
		"partial coverage: stopped on deadline with 7 executions run",
		"frontier of 3 remaining",
		"resume state available",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestRunSummaryStopOnCompleteRun is the regression for the swallowed
// SIGINT: a cancellation that lands in the same tick the frontier
// drains leaves a complete result whose StopReason must still be
// rendered — before the fix this summary said nothing about the stop.
func TestRunSummaryStopOnCompleteRun(t *testing.T) {
	res := &explore.Result{
		Program: "p", Mode: explore.Random, Executions: 12,
		Partial: false, StopReason: "canceled",
	}
	out := RunSummary(res)
	if !strings.Contains(out, "stop (canceled) observed as the frontier drained; coverage is complete") {
		t.Fatalf("complete-run stop reason swallowed:\n%s", out)
	}
	if strings.Contains(out, "partial coverage") {
		t.Fatalf("complete run rendered as partial:\n%s", out)
	}
}

// TestRunSummaryCleanRun asserts a plain complete run stays one line
// plus the verdict — no stop chatter when nothing stopped.
func TestRunSummaryCleanRun(t *testing.T) {
	res := &explore.Result{Program: "p", Mode: explore.Random, Executions: 5}
	out := RunSummary(res)
	if strings.Contains(out, "stop") || strings.Contains(out, "partial") {
		t.Fatalf("clean run mentions a stop:\n%s", out)
	}
}

// TestRunSummaryPoison pins the poison-run rendering: a supervised
// campaign that quarantined a work unit must not read like plain
// success — the stop reason is "poison", the quarantine records are
// listed with their provenance, and the redelivery tally is shown.
func TestRunSummaryPoison(t *testing.T) {
	res := &explore.Result{
		Program: "p", Mode: explore.Random, Executions: 20,
		Partial: true, StopReason: "poison", FrontierRemaining: 40,
		Isolated: true, Redeliveries: 3, WorkerRestarts: 2,
		PoisonUnits: []*explore.PoisonUnit{{
			ID: 1, Kind: "random", Lo: 20, Hi: 40, Attempts: 4,
			LastError: "worker-exit: died mid-unit", ExitStatus: "signal: killed",
		}},
	}
	out := RunSummary(res)
	for _, want := range []string{
		"partial coverage: stopped on poison",
		"1 work unit(s) quarantined as poison",
		"[poison] random unit 1",
		"after 4 attempts",
		"process isolation: 3 unit redeliveries, 2 worker restarts",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestRunSummaryDegraded: a campaign that fell back to in-process
// execution says so loudly.
func TestRunSummaryDegraded(t *testing.T) {
	res := &explore.Result{
		Program: "p", Mode: explore.Random, Executions: 20, Degraded: true,
	}
	out := RunSummary(res)
	if !strings.Contains(out, "DEGRADED") {
		t.Fatalf("degraded run not flagged:\n%s", out)
	}
}
