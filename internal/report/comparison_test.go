package report

import (
	"strings"
	"testing"
)

// The §6.4 comparison's reproduced shape: PSan reports at least as many
// distinct bug sites as the dependence heuristic on every benchmark,
// strictly more somewhere, and the assertion oracle alone reports
// almost nothing.
func TestComparisonShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full comparison run")
	}
	rows := Comparison(Options{Executions: 200, Seed: 3})
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	strictlyMore := false
	for _, r := range rows {
		if r.Benchmark == "P-Masstree" {
			if r.PSan != 0 {
				t.Errorf("P-Masstree: PSan = %d, want 0", r.PSan)
			}
			continue
		}
		if r.PSan == 0 {
			t.Errorf("%s: PSan found nothing", r.Benchmark)
		}
		if r.WitcherMissed > 0 {
			strictlyMore = true
		}
	}
	if !strictlyMore {
		t.Error("PSan should report bugs the dependence heuristic misses")
	}
	out := RenderComparison(rows)
	if !strings.Contains(out, "PSan") || !strings.Contains(out, "Witcher") {
		t.Fatalf("render missing columns:\n%s", out)
	}
}
