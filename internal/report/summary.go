package report

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/explore"
)

// RunSummary renders one exploration result for the CLI: the one-line
// outcome, coverage when the run degraded (partial stop or quarantined
// schedules), and the contained-panic records a bug report needs.
//
// A stop reason is reported whenever one was recorded, not only on
// partial runs: a SIGINT that lands in the same tick the frontier
// drains leaves a complete result with a StopReason, and silently
// dropping it would make the interrupt look ignored.
func RunSummary(res *explore.Result) string {
	var b strings.Builder
	fmt.Fprintln(&b, res)
	if res.Partial {
		fmt.Fprintf(&b, "partial coverage: stopped on %s with %d executions run", res.StopReason, res.Executions)
		if res.FrontierRemaining > 0 {
			fmt.Fprintf(&b, ", frontier of %d remaining", res.FrontierRemaining)
		}
		b.WriteByte('\n')
		if res.Checkpoint != nil {
			fmt.Fprintln(&b, "resume state available (use -checkpoint to save it)")
		}
	} else if res.StopReason != "" {
		fmt.Fprintf(&b, "stop (%s) observed as the frontier drained; coverage is complete\n", res.StopReason)
	}
	if res.Steals > 0 {
		fmt.Fprintf(&b, "work stealing: %d unit(s) donated to idle workers\n", res.Steals)
	}
	// Streaming-window record (bounded-window runs only, keeping the
	// -window 0 output byte-identical to pre-window builds): throughput
	// and how much trace history the retirement frontier released.
	if res.Window > 0 {
		fmt.Fprintf(&b, "window %d: %d ops", res.Window, res.Ops)
		if secs := res.Elapsed.Seconds(); secs > 0 && res.Ops > 0 {
			fmt.Fprintf(&b, " (%.0f ops/s)", float64(res.Ops)/secs)
		}
		fmt.Fprintf(&b, ", %d retirements released %d stores and %d events",
			res.Retirements, res.RetiredStores, res.RetiredEvents)
		// Sweep diagnostics: the largest pin-closure any sweep kept live
		// (deterministic) and the total wall time spent sweeping (timing).
		if res.PinnedRootsMax > 0 {
			fmt.Fprintf(&b, ", pinned <= %d roots", res.PinnedRootsMax)
		}
		if res.SweepNanos > 0 {
			fmt.Fprintf(&b, ", %v sweeping", time.Duration(res.SweepNanos).Round(time.Microsecond))
		}
		fmt.Fprintln(&b)
	}
	// Supervision record (dispatch-supervised campaigns only): how the
	// isolation machinery behaved. Redeliveries and restarts are routine
	// fault recovery; poison and degradation are coverage- or
	// guarantee-affecting and always reported.
	if res.Isolated && (res.Redeliveries > 0 || res.WorkerRestarts > 0) {
		fmt.Fprintf(&b, "process isolation: %d unit redeliveries, %d worker restarts\n",
			res.Redeliveries, res.WorkerRestarts)
	}
	if res.Degraded {
		fmt.Fprintln(&b, "DEGRADED: worker processes could not be spawned; the campaign ran in-process (results identical, isolation guarantee lost)")
	}
	if len(res.PoisonUnits) > 0 {
		fmt.Fprintf(&b, "%d work unit(s) quarantined as poison; the canonical stream is cut at the first:\n", len(res.PoisonUnits))
		for _, p := range res.PoisonUnits {
			fmt.Fprintf(&b, "  %s\n", p)
		}
	}
	if res.Quarantined > 0 {
		fmt.Fprintf(&b, "%d schedule(s) quarantined after contained panics:\n", res.Quarantined)
		for _, ee := range res.ExecErrors {
			fmt.Fprintf(&b, "  %s\n", ee.Error())
		}
		if res.Quarantined > len(res.ExecErrors) {
			fmt.Fprintf(&b, "  … and %d more (record cap reached)\n", res.Quarantined-len(res.ExecErrors))
		}
	}
	return b.String()
}
