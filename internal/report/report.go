// Package report regenerates the paper's evaluation artifacts: Table 1
// (the tool comparison), Table 2 (the robustness violations found per
// benchmark), and Table 3 (PSan-vs-Jaaru overhead and executions to find
// all bugs). The harness binaries and the repository's bench targets
// both render through this package so the numbers come from one place.
package report

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/baseline"
	"repro/internal/benchmarks"
	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/pmem"
)

// RenderTable lays out an aligned text table.
func RenderTable(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// Options parameterizes the table runs.
type Options struct {
	// Executions per benchmark in random mode (0: each port's default).
	Executions int
	// Seed for random exploration.
	Seed int64
	// Workers is the parallel exploration worker count (0: all CPUs,
	// 1: serial). Table results are identical for any count.
	Workers int
	// Deadline bounds each benchmark run's wall-clock time (0: none);
	// runs that trip it report partial coverage instead of hanging a
	// table build.
	Deadline time.Duration
	// Model names the persistency-model backend the benchmarks run
	// against ("" means the default, px86). Table 1's litmus demo always
	// uses the paper's model.
	Model string
	// Obs carries the campaign's observability sinks (metrics registry
	// and tracer) into every exploration the tables run; nil disables
	// instrumentation.
	Obs *obs.Observer
	// Context cancels table builds early with partial coverage, same
	// semantics as explore.Options.Context.
	Context context.Context
	// DisableSnapshots and DisableDPOR switch off the model-check
	// reductions (explore.Options fields of the same names) in every
	// exploration the tables run — the psan-bench -reduction flag.
	DisableSnapshots bool
	DisableDPOR      bool
	// DisableStealing turns off work stealing in every model-check
	// exploration the tables run (explore.Options.DisableStealing) —
	// the psan-bench -steal=false escape hatch. Table results are
	// identical either way; only wall-clock timing changes.
	DisableStealing bool
}

// modelConfig is the explore/pmem model configuration the options select.
func (o Options) modelConfig() persist.Config { return persist.Config{Name: o.Model} }

// --- Table 1 ---

// Table1Row is one tool's entry in the comparison, with a live
// demonstration on two litmus shapes: the Figure 1 commit-store bug and
// the Figure 7 inter-thread bug.
type Table1Row struct {
	Tool, Condition        string
	FindsCommit, FindsFig7 bool
	Notes                  string
}

// Table1 reproduces the paper's tool comparison, demonstrating on live
// traces that robustness subsumes each prior condition: the same two
// executions are checked by PSan, the Witcher-style heuristic, the
// pmemcheck-style flush scan, and the Jaaru-style assertion oracle.
func Table1() ([]Table1Row, string) {
	commitPSan, commitWitcher, commitPmemcheck, commitAssert := runCommitStoreLitmus()
	fig7PSan, fig7Witcher, fig7Pmemcheck, fig7Assert := runFigure7Litmus()
	rows := []Table1Row{
		{"PSan", "Robustness", commitPSan, fig7PSan, "no annotations needed"},
		{"Witcher", "Dependence heuristic", commitWitcher, fig7Witcher, "misses non-dependence shapes"},
		{"PMDebugger", "User annotations", false, false, "needs ordering annotations"},
		{"PMTest", "User annotations", false, false, "needs ordering annotations"},
		{"XFDetector", "Commit store annotations", false, false, "needs commit variable annotations"},
		{"Jaaru", "Crash/assertion failure", commitAssert, fig7Assert, "manual localization"},
		{"Yat", "Crash/assertion failure", commitAssert, fig7Assert, "manual localization"},
		{"Agamotto", "Does not check order", commitPmemcheck, fig7Pmemcheck, "flush-presence only (noisy)"},
		{"Pmemcheck", "Does not check order", commitPmemcheck, fig7Pmemcheck, "flush-presence only (noisy)"},
	}
	table := make([][]string, 0, len(rows))
	yn := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	for _, r := range rows {
		table = append(table, []string{r.Tool, r.Condition, yn(r.FindsCommit), yn(r.FindsFig7), r.Notes})
	}
	return rows, RenderTable(
		"Table 1: persistent-order conditions checked by each tool (live demo on two litmus executions)",
		[]string{"Tool", "Persistent Order", "finds commit-store bug", "finds Figure-7 bug", "notes"},
		table)
}

// runCommitStoreLitmus drives the broken Figure 1 shape (data store
// missing its flush before the commit store) and asks each approach.
func runCommitStoreLitmus() (psan, witcher, pmemcheck, assertOracle bool) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	data, commit := memmodel.Addr(0x2000), memmodel.Addr(0x3000)
	th.Store(data, 42, "tmp->data=42")
	th.Store(commit, 1, "ptr->child=tmp")
	th.Flush(commit, "clflush child")
	w.Crash()
	readStore(w, 0, commit, 1, false, "read child")
	readStore(w, 0, data, 0, true, "read data")
	psan = len(w.Checker.Violations()) > 0
	witcher = len(baseline.Witcher(w.M.Trace())) > 0
	pmemcheck = len(baseline.Pmemcheck(w.M.Trace())) > 0
	assertOracle = len(baseline.AssertOracle(w)) > 0
	return
}

// runFigure7Litmus drives the paper's Figure 7 execution.
func runFigure7Litmus() (psan, witcher, pmemcheck, assertOracle bool) {
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	t0, t1 := w.Thread(0), w.Thread(1)
	x, y := memmodel.Addr(0x2000), memmodel.Addr(0x3000)
	t0.Store(x, 1, "x=1")
	r1 := t1.Load(x, "r1=x")
	t1.Store(y, r1, "y=r1")
	t1.Flush(y, "flush y")
	w.Crash()
	readStore(w, 0, x, 0, true, "r2=x")
	readStore(w, 0, y, 1, false, "r3=y")
	psan = len(w.Checker.Violations()) > 0
	witcher = len(baseline.Witcher(w.M.Trace())) > 0
	// pmemcheck reports x unflushed, but cannot say it is an ordering
	// bug; count it as detecting the store-level symptom.
	pmemcheck = len(baseline.Pmemcheck(w.M.Trace())) > 0
	assertOracle = len(baseline.AssertOracle(w)) > 0
	return
}

// readStore picks a specific candidate (by value, or the initial store)
// and performs the load, reporting it to the checker.
func readStore(w *pmem.World, t memmodel.ThreadID, a memmodel.Addr, v memmodel.Value, initial bool, loc string) {
	lid := w.M.Intern(loc)
	for _, c := range w.M.LoadCandidates(t, a) {
		if c.Store.Initial == initial && (initial || c.Store.Value == v) {
			w.M.Load(t, a, c, lid)
			w.Checker.ObserveRead(t, a, c.Store, lid)
			return
		}
	}
}

// --- Table 2 ---

// Table2Row is one reported violation row.
type Table2Row struct {
	ID        int
	Benchmark string
	Field     string
	Cause     string
	Known     bool
	Found     bool
}

// Table2Result aggregates a full Table 2 regeneration.
type Table2Result struct {
	Rows []Table2Row
	// MemMgmt counts the memory-management violations per benchmark
	// (§6.2: 9 in P-ART, 4 in P-BwTree).
	MemMgmt map[string]int
	// FixedClean records whether each Fixed variant reported nothing.
	FixedClean map[string]bool
	// TotalFound and NewBugs summarize the §6.2 headline counts.
	TotalFound, NewBugs int
}

// Table2 runs every benchmark port's buggy and fixed variants and
// matches the reported violations against the paper's rows.
func Table2(opt Options) *Table2Result {
	res := &Table2Result{MemMgmt: map[string]int{}, FixedClean: map[string]bool{}}
	for _, b := range benchmarks.All() {
		execs := b.Executions
		if opt.Executions > 0 {
			execs = opt.Executions
		}
		buggy := explore.Run(b.Build(bench.Buggy), explore.Options{
			Mode: b.PreferredMode, Executions: execs, Seed: opt.Seed + 1, Workers: opt.Workers, Deadline: opt.Deadline,
			Model: opt.modelConfig(), Obs: opt.Obs, Context: opt.Context,
			DisableSnapshots: opt.DisableSnapshots, DisableDPOR: opt.DisableDPOR, DisableStealing: opt.DisableStealing,
		})
		covered, missed := bench.MatchExpected(b.Expected, buggy.Violations)
		for _, c := range covered {
			if c.Bug.MemMgmt {
				res.MemMgmt[b.Name]++
				res.TotalFound++
				continue
			}
			res.Rows = append(res.Rows, Table2Row{
				ID: c.Bug.ID, Benchmark: b.Name, Field: c.Bug.Field,
				Cause: c.Bug.Cause, Known: c.Bug.Known, Found: true,
			})
			res.TotalFound++
			if !c.Bug.Known {
				res.NewBugs++
			}
		}
		for _, mbug := range missed {
			if mbug.MemMgmt {
				continue
			}
			res.Rows = append(res.Rows, Table2Row{
				ID: mbug.ID, Benchmark: b.Name, Field: mbug.Field,
				Cause: mbug.Cause, Known: mbug.Known, Found: false,
			})
		}
		fixed := explore.Run(b.Build(bench.Fixed), explore.Options{
			Mode: b.PreferredMode, Executions: execs, Seed: opt.Seed + 1, Workers: opt.Workers, Deadline: opt.Deadline,
			Model: opt.modelConfig(), Obs: opt.Obs, Context: opt.Context,
			DisableSnapshots: opt.DisableSnapshots, DisableDPOR: opt.DisableDPOR, DisableStealing: opt.DisableStealing,
		})
		res.FixedClean[b.Name] = len(fixed.Violations) == 0
	}
	return res
}

// Render lays the Table 2 result out in the paper's format.
func (r *Table2Result) Render() string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		id := ""
		if row.ID > 0 {
			id = fmt.Sprintf("%d", row.ID)
			if row.Known {
				id += "*"
			}
		}
		found := "FOUND"
		if !row.Found {
			found = "MISSED"
		}
		rows = append(rows, []string{id, row.Benchmark, row.Field, row.Cause, found})
	}
	var b strings.Builder
	b.WriteString(RenderTable(
		"Table 2: robustness violations (rows with * were previously known)",
		[]string{"#", "Benchmark", "Field", "Cause of Robustness Violation", "status"},
		rows))
	fmt.Fprintf(&b, "\nMemory-management violations (§6.2): ")
	for _, name := range []string{"P-ART", "P-BwTree"} {
		fmt.Fprintf(&b, "%s=%d ", name, r.MemMgmt[name])
	}
	fmt.Fprintf(&b, "\nFixed variants clean: ")
	for name, clean := range r.FixedClean {
		if !clean {
			fmt.Fprintf(&b, "%s=DIRTY ", name)
		}
	}
	fmt.Fprintf(&b, "(all clean unless listed)\n")
	fmt.Fprintf(&b, "Total violations matched: %d (new, previously unreported: %d)\n", r.TotalFound, r.NewBugs)
	return b.String()
}

// --- Table 3 ---

// Table3Row is one benchmark's performance comparison.
type Table3Row struct {
	Benchmark  string
	JaaruTime  time.Duration // per random execution, checker off
	PSanTime   time.Duration // per random execution, checker on
	Executions int           // executions to find all reported bugs
}

// Overhead returns PSan's relative slowdown over the bare simulator.
func (r Table3Row) Overhead() float64 {
	if r.JaaruTime == 0 {
		return 0
	}
	return float64(r.PSanTime) / float64(r.JaaruTime)
}

// Table3 reproduces the performance comparison: timed random executions
// per benchmark with the checker on and off (the paper's PSan and Jaaru
// columns), plus the number of executions needed to find all bugs.
func Table3(opt Options) []Table3Row {
	timingExecs := 300
	var rows []Table3Row
	for _, b := range benchmarks.Indexes() {
		// Both timing runs use the plain random read policy, so the
		// difference is exactly the checker's constraint maintenance —
		// the paper's PSan-vs-Jaaru methodology.
		jaaru := explore.Run(b.Build(bench.Buggy), explore.Options{
			Mode: explore.Random, Executions: timingExecs, Seed: opt.Seed + 2,
			Workers: opt.Workers, Deadline: opt.Deadline, DisableChecker: true, NoSteering: true,
			Model: opt.modelConfig(), Obs: opt.Obs, Context: opt.Context,
			DisableSnapshots: opt.DisableSnapshots, DisableDPOR: opt.DisableDPOR, DisableStealing: opt.DisableStealing,
		})
		psan := explore.Run(b.Build(bench.Buggy), explore.Options{
			Mode: explore.Random, Executions: timingExecs, Seed: opt.Seed + 2,
			Workers: opt.Workers, Deadline: opt.Deadline, NoSteering: true,
			Model: opt.modelConfig(), Obs: opt.Obs, Context: opt.Context,
			DisableSnapshots: opt.DisableSnapshots, DisableDPOR: opt.DisableDPOR, DisableStealing: opt.DisableStealing,
		})
		execs := b.Executions
		if opt.Executions > 0 {
			execs = opt.Executions
		}
		discovery := explore.Run(b.Build(bench.Buggy), explore.Options{
			Mode: explore.Random, Executions: execs, Seed: opt.Seed + 2, Workers: opt.Workers, Deadline: opt.Deadline,
			Model: opt.modelConfig(), Obs: opt.Obs, Context: opt.Context,
			DisableSnapshots: opt.DisableSnapshots, DisableDPOR: opt.DisableDPOR, DisableStealing: opt.DisableStealing,
		})
		rows = append(rows, Table3Row{
			Benchmark:  b.Name,
			JaaruTime:  jaaru.PerExecution(),
			PSanTime:   psan.PerExecution(),
			Executions: discovery.ExecutionsToAllBugs,
		})
	}
	return rows
}

// RenderTable3 lays the rows out in the paper's format.
func RenderTable3(rows []Table3Row) string {
	table := make([][]string, 0, len(rows))
	for _, r := range rows {
		table = append(table, []string{
			r.Benchmark,
			fmt.Sprintf("%.3fms", float64(r.JaaruTime.Microseconds())/1000),
			fmt.Sprintf("%.3fms", float64(r.PSanTime.Microseconds())/1000),
			fmt.Sprintf("%.2fx", r.Overhead()),
			fmt.Sprintf("%d", r.Executions),
		})
	}
	return RenderTable(
		"Table 3: per-execution times (300 random executions) and executions to find all bugs",
		[]string{"Benchmark", "Jaaru Time", "PSan Time", "overhead", "# executions"},
		table)
}

// Violations returns a rendered list of every distinct violation a
// benchmark reports, with fixes and the provenance narrative (the
// minimal event sub-trace that explains each diagnosis) — the detailed
// report behind Table 2.
func Violations(name string, opt Options) (string, error) {
	b := benchmarks.ByName(name)
	if b == nil {
		return "", fmt.Errorf("unknown benchmark %q", name)
	}
	execs := b.Executions
	if opt.Executions > 0 {
		execs = opt.Executions
	}
	res := explore.Run(b.Build(bench.Buggy), explore.Options{
		Mode: b.PreferredMode, Executions: execs, Seed: opt.Seed + 1, Workers: opt.Workers,
		Model: opt.modelConfig(), Obs: opt.Obs, Context: opt.Context,
		DisableSnapshots: opt.DisableSnapshots, DisableDPOR: opt.DisableDPOR, DisableStealing: opt.DisableStealing,
		Provenance: true,
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n\n", res)
	for i, v := range res.Violations {
		fmt.Fprintf(&sb, "[%d] %s\n", i+1, v)
		if v.Prov != nil && !v.Prov.Empty() {
			sb.WriteString(v.Prov.Narrative())
		}
	}
	return sb.String(), nil
}
