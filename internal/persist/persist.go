// Package persist defines the persistency-model backend layer: the
// Model interface every simulated persistency semantics implements, the
// model-neutral post-crash read Candidate, and a registry of built-in
// backends.
//
// PSan's robustness algorithm (internal/core) is defined relative to a
// persistency model but consumes only the event trace and the per-read
// candidate sets — not x86 specifics. This package captures exactly that
// consumption surface, so the checker, the pmem world, the exploration
// engine, and the CLIs are generic over the model:
//
//   - px86 (internal/px86): Px86sim of Raad et al. — the paper's model
//     and the default backend;
//   - ptsosyn (internal/persist/ptsosyn): the Khyzha–Lahav PTSOsyn
//     synchronous variant, observationally equivalent to Px86sim on this
//     op vocabulary and used as a differential twin;
//   - strict (internal/persist/strict): strict persistency — every
//     committed store is immediately persistent, in order. The
//     robustness reference model, doubling as a differential oracle:
//     a robust program must compute the same final heap under strict
//     and px86.
//
// Backends register themselves in init functions; blank-import
// internal/persist/backends (pmem does) to link all built-ins.
package persist

import (
	"fmt"

	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Candidate describes one store a post-crash load may read, along with
// the crash-image bookkeeping needed to commit the choice. The fields
// beyond Store are resolution state owned by the issuing backend's
// Image; exploration policies treat them as opaque and must pass
// candidates back to the same model unmodified.
type Candidate struct {
	Store *trace.Store
	// Resolve marks candidates that narrow crash-image nondeterminism
	// when chosen: stores surviving from sealed epochs and the initial
	// value. Volatile reads (store-buffer forwarding and words written
	// in the current sub-execution) are uniquely determined and resolve
	// nothing.
	Resolve bool
	// Epoch is the index into the line's sealed epochs, or -1 for the
	// initial value and for volatile reads.
	Epoch int
	// LoNew and HiNew are the narrowed persisted-prefix range for that
	// epoch if this candidate is chosen.
	LoNew, HiNew int
}

// Model is a simulated machine under one persistency semantics. It is
// the exact surface the upper layers consume: store issue/commit, flush
// and fence operations, crash transitions to legal post-crash candidate
// sets, candidate-steered loads, a persistent-state fingerprint, and
// Reset for world reuse.
//
// A Model is not safe for concurrent use: simulated threads are
// interleaved by the caller, not by goroutines. Distinct Models may be
// driven from distinct goroutines concurrently (one world per
// goroutine, as the parallel exploration engine does).
type Model interface {
	// Name identifies the backend ("px86", "strict", "ptsosyn").
	Name() string
	// Trace returns the execution trace recorded so far.
	Trace() *trace.Trace
	// Intern maps a source label to the trace's dense LocID, the form
	// every instruction method takes.
	Intern(loc string) trace.LocID
	// Reset rewinds the machine (and its trace) to the
	// freshly-constructed state, recycling internal arenas. Pointers
	// previously obtained from the machine or its trace become invalid.
	Reset()

	// Store issues a store of v to word a by thread t.
	Store(t memmodel.ThreadID, a memmodel.Addr, v memmodel.Value, loc trace.LocID) *trace.Store
	// Flush issues a synchronous cache-line write-back (clflush) of the
	// line containing a.
	Flush(t memmodel.ThreadID, a memmodel.Addr, loc trace.LocID)
	// FlushOpt issues an asynchronous write-back (clflushopt/clwb) whose
	// persistence is guaranteed only after a subsequent drain by t.
	FlushOpt(t memmodel.ThreadID, a memmodel.Addr, loc trace.LocID)
	// SFence issues a store fence (a drain operation).
	SFence(t memmodel.ThreadID, loc trace.LocID)
	// MFence issues a full fence (a drain operation).
	MFence(t memmodel.ThreadID, loc trace.LocID)

	// DrainAll commits every pending entry of t's store buffer in FIFO
	// order; a no-op for models without store buffers.
	DrainAll(t memmodel.ThreadID)
	// DrainOne commits the oldest pending entry of t's store buffer,
	// reporting whether there was one. Exploration harnesses use it to
	// exercise store-buffer interleavings.
	DrainOne(t memmodel.ThreadID) bool
	// BufferLen returns the number of pending entries in t's store
	// buffer (always 0 for bufferless models).
	BufferLen(t memmodel.ThreadID) int

	// LoadCandidates returns the stores a load of word a by thread t may
	// read, newest-possible first. The returned slice is a model-owned
	// scratch buffer, valid only until the next LoadCandidates call on
	// the same model; callers that keep more than one candidate set
	// alive must copy.
	LoadCandidates(t memmodel.ThreadID, a memmodel.Addr) []Candidate
	// Load performs a load of word a by thread t reading from the chosen
	// candidate, which must come from LoadCandidates for the same (t, a).
	Load(t memmodel.ThreadID, a memmodel.Addr, c Candidate, loc trace.LocID) memmodel.Value
	// LoadDefault performs a load reading the newest legal store — the
	// behavior of an execution where everything persisted.
	LoadDefault(t memmodel.ThreadID, a memmodel.Addr, loc trace.LocID) memmodel.Value
	// CAS performs an atomic compare-and-swap on word a reading from the
	// chosen candidate, returning the value read and whether the swap
	// happened. RMW operations act as drains.
	CAS(t memmodel.ThreadID, a memmodel.Addr, c Candidate, expected, newV memmodel.Value, loc trace.LocID) (memmodel.Value, bool)
	// FAA performs an atomic fetch-and-add on word a reading from the
	// chosen candidate, returning the previous value. Like CAS it drains.
	FAA(t memmodel.ThreadID, a memmodel.Addr, c Candidate, delta memmodel.Value, loc trace.LocID) memmodel.Value

	// Crash simulates a power failure: volatile state is lost and each
	// cache line's committed history is sealed with the legal range of
	// persisted prefixes. A new sub-execution begins.
	Crash()
	// PersistFingerprint hashes the machine's persistent state. Call it
	// immediately after Crash: two machines of the same backend with
	// equal fingerprints present identical candidate sets to every
	// future post-crash load — the contract the exploration state cache
	// depends on (see DESIGN.md, "Persistency-model backends").
	PersistFingerprint() uint64

	// Snapshot captures the machine's persistent state for a later
	// Restore. Call it only immediately after Crash, when volatile
	// machine state (store buffers, pending flushes, the DRAM cache) is
	// empty: the snapshot then reduces to the crash image's sealed-epoch
	// bounds, making it O(sealed epochs) rather than O(machine).
	Snapshot() *ImageSnapshot
	// Restore rewinds the machine to a previously captured Snapshot,
	// discarding everything executed since: volatile state is cleared
	// and the crash image's epochs and prefix bounds are rewound. The
	// caller is responsible for rewinding the shared trace to the
	// matching mark.
	Restore(*ImageSnapshot)
}

// Config selects and configures a persistency-model backend. It is the
// single model-config path shared by pmem.Config and explore.Options.
type Config struct {
	// Name is the registered backend name; "" selects DefaultModel.
	Name string
	// DelayedCommit keeps stores in per-thread store buffers until a
	// fence, RMW, or explicit drain commits them, exposing TSO
	// store-buffer effects. When false, stores commit immediately after
	// issue, which is a legal TSO behavior and keeps model checking
	// tractable. Bufferless models (strict) ignore it.
	DelayedCommit bool
	// Window, when positive, puts the machine's trace in bounded-window
	// (streaming) mode: every Window operations the pmem world asks the
	// model to retire history behind the frontier — stores that can no
	// longer be read by any future load (not a crash-image candidate,
	// not volatile state, not pinned by the checker or by clock-vector
	// resolution) are unlinked and released to the GC. 0 (the default)
	// keeps the classic record-everything arena pipeline, byte-identical
	// to previous releases. Window changes which exploration features
	// are available (snapshots, DPOR, and the post-crash state cache are
	// forced off) and is validated by checkpoints.
	Window int
	// Obs, when it carries a metrics registry, makes backends built from
	// this config emit per-model instruction counters
	// (persist.<model>.stores, .flushes, .fences, ...). Nil disables
	// instrumentation; every counter call is then a nil-check no-op, so
	// the hot path is unchanged. Obs is campaign-scoped plumbing, not
	// model semantics: it never affects execution and is ignored by
	// checkpoint validation.
	Obs *obs.Observer
}

// Retirable is implemented by models that support bounded-window
// retirement. Retire runs one retirement on the machine's trace: it
// opens a mark generation, pins every store the machine itself can
// still surface (volatile memory, store buffers, crash-image epochs
// that can still produce candidates), lets extraRoots pin stores owned
// by upper layers (the checker's deferred reads), and sweeps the rest.
// extraRoots may be nil. The pmem world invokes it every Window
// operations when Config.Window > 0; models reached through a zero
// Window never see a Retire call.
type Retirable interface {
	Retire(extraRoots func(mark func(*trace.Store)))
}

// InvariantError is the panic value raised when a model detects an
// internal inconsistency — a crash-image prefix range that became empty
// or contradictory. These are engine bugs, never program-under-test
// bugs, and the value is typed so the exploration layer's panic
// isolation can classify the record it quarantines (explore.ExecError)
// instead of losing the whole campaign to one broken schedule.
type InvariantError struct {
	// Model is the backend that tripped the invariant ("px86", ...).
	Model string
	// Check names the violated invariant ("crash-image resolution",
	// "prefix range").
	Check string
	// Addr is the word whose line state exposed the inconsistency.
	Addr memmodel.Addr
	// Loc is the materialized (interned) source location of the access
	// being resolved when the invariant tripped; empty when unknown.
	Loc string
}

// Error implements error, so the panic value reads well in logs.
func (e InvariantError) Error() string {
	if e.Loc == "" {
		return fmt.Sprintf("%s: %s invariant violated for %s", e.Model, e.Check, e.Addr)
	}
	return fmt.Sprintf("%s: %s invariant violated for %s at %s", e.Model, e.Check, e.Addr, e.Loc)
}

// String mirrors Error for %v rendering of the bare panic value.
func (e InvariantError) String() string { return e.Error() }
