package persist_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/memmodel"
	"repro/internal/persist"
	_ "repro/internal/persist/backends"
)

var words = []memmodel.Addr{0x1000, 0x1008, 0x1040, 0x1048}

// randomProgram drives a model through a pseudo-random pre-crash
// program derived from the seed: stores, flushes, flushopts, fences,
// RMWs, and (when the model buffers) partial drains over a handful of
// words spread across two cache lines. The op sequence depends only on
// the seed, so two models driven with the same seed see the same
// instruction stream.
func randomProgram(m persist.Model, seed int64, alwaysFlush bool) {
	rng := rand.New(rand.NewSource(seed))
	n := 5 + rng.Intn(20)
	for i := 0; i < n; i++ {
		t := memmodel.ThreadID(rng.Intn(2))
		a := words[rng.Intn(len(words))]
		switch rng.Intn(7) {
		case 0, 1, 2:
			m.Store(t, a, memmodel.Value(rng.Intn(100)+1), m.Intern("store"))
			if alwaysFlush {
				m.Flush(t, a, m.Intern("flush-after-store"))
				m.SFence(t, m.Intern("sfence-after-store"))
			}
		case 3:
			m.Flush(t, a, m.Intern("flush"))
		case 4:
			m.FlushOpt(t, a, m.Intern("flushopt"))
			if rng.Intn(2) == 0 {
				m.SFence(t, m.Intern("sfence"))
			}
		case 5:
			c := m.LoadCandidates(t, a)
			m.FAA(t, a, c[0], 1, m.Intern("faa"))
			if alwaysFlush {
				m.Flush(t, a, m.Intern("flush-after-faa"))
				m.SFence(t, m.Intern("sfence-after-faa"))
			}
		case 6:
			// Exercise store-buffer interleavings where they exist; a
			// no-op on bufferless models. The rng draw happens either
			// way, keeping the instruction stream aligned.
			m.DrainOne(t)
		}
	}
}

// sameCandidates reports whether two candidate sets are identical in
// order, store identity (ID and value), and resolution bookkeeping.
func sameCandidates(a, b []persist.Candidate) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		ca, cb := a[i], b[i]
		if ca.Store.ID != cb.Store.ID || ca.Store.Value != cb.Store.Value ||
			ca.Store.Initial != cb.Store.Initial ||
			ca.Resolve != cb.Resolve || ca.Epoch != cb.Epoch ||
			ca.LoNew != cb.LoNew || ca.HiNew != cb.HiNew {
			return false
		}
	}
	return true
}

// copyCandidates snapshots a model-owned scratch slice.
func copyCandidates(cands []persist.Candidate) []persist.Candidate {
	return append([]persist.Candidate(nil), cands...)
}

// Property: a fully-flushed program is verdict- and heap-identical
// under every registered backend — after the crash each word has
// exactly one candidate, and its value agrees across models. This is
// the differential core: when no weak behavior is left, strict, px86,
// and ptsosyn are the same machine.
func TestPropertyCrossModelFullyFlushed(t *testing.T) {
	names := persist.Names()
	prop := func(seed int64) bool {
		values := make(map[string][]memmodel.Value)
		for _, name := range names {
			m := persist.MustNew(persist.Config{Name: name})
			randomProgram(m, seed, true)
			m.Crash()
			vals := make([]memmodel.Value, len(words))
			for i, a := range words {
				cands := m.LoadCandidates(0, a)
				if len(cands) != 1 {
					t.Logf("model %s seed %d: %d candidates at %v", name, seed, len(cands), a)
					return false
				}
				vals[i] = cands[0].Store.Value
			}
			values[name] = vals
		}
		ref := values[names[0]]
		for _, name := range names[1:] {
			for i := range words {
				if values[name][i] != ref[i] {
					t.Logf("seed %d: %s and %s disagree at %v: %d vs %d",
						seed, names[0], name, words[i], ref[i], values[name][i])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("fully-flushed cross-model property violated: %v", err)
	}
}

// Property: px86 and ptsosyn are observationally equivalent on
// arbitrary programs — identical candidate sets at every word after a
// crash, and identical persistent-state fingerprints. Checked in both
// immediate-commit and delayed-commit (store-buffer) modes.
func TestPropertyPx86PTSOsynEquivalent(t *testing.T) {
	for _, delayed := range []bool{false, true} {
		delayed := delayed
		name := "immediate"
		if delayed {
			name = "delayed"
		}
		t.Run(name, func(t *testing.T) {
			prop := func(seed int64) bool {
				a := persist.MustNew(persist.Config{Name: "px86", DelayedCommit: delayed})
				b := persist.MustNew(persist.Config{Name: "ptsosyn", DelayedCommit: delayed})
				randomProgram(a, seed, false)
				randomProgram(b, seed, false)
				a.Crash()
				b.Crash()
				if a.PersistFingerprint() != b.PersistFingerprint() {
					t.Logf("seed %d: fingerprints differ", seed)
					return false
				}
				for _, w := range words {
					ca := copyCandidates(a.LoadCandidates(0, w))
					cb := b.LoadCandidates(0, w)
					if !sameCandidates(ca, cb) {
						t.Logf("seed %d: candidate sets differ at %v: %v vs %v", seed, w, ca, cb)
						return false
					}
				}
				// Resolve a word identically on both and compare again:
				// narrowing must also agree.
				ca := copyCandidates(a.LoadCandidates(1, words[0]))
				cb := copyCandidates(b.LoadCandidates(1, words[0]))
				pick := int(seed&0x7fffffff) % len(ca)
				va := a.Load(1, words[0], ca[pick], a.Intern("r"))
				vb := b.Load(1, words[0], cb[pick], b.Intern("r"))
				if va != vb {
					return false
				}
				for _, w := range words {
					ca := copyCandidates(a.LoadCandidates(0, w))
					cb := b.LoadCandidates(0, w)
					if !sameCandidates(ca, cb) {
						return false
					}
				}
				return true
			}
			if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
				t.Errorf("px86/ptsosyn equivalence violated (%s commit): %v", name, err)
			}
		})
	}
}

// Property: under strict persistency every post-crash load has exactly
// one candidate — the newest committed store (or the initial value) —
// on arbitrary programs, flushed or not. Strict is the deterministic
// oracle; nondeterministic candidate sets would make it useless as one.
func TestPropertyStrictSingleCandidate(t *testing.T) {
	prop := func(seed int64, crashes uint8) bool {
		m := persist.MustNew(persist.Config{Name: "strict"})
		n := 1 + int(crashes%3)
		for c := 0; c < n; c++ {
			randomProgram(m, seed+int64(c), false)
			// Track the newest committed value per word before crashing.
			want := make(map[memmodel.Addr]memmodel.Value)
			for _, a := range words {
				cands := m.LoadCandidates(0, a)
				if len(cands) != 1 {
					return false
				}
				want[a] = cands[0].Store.Value
			}
			m.Crash()
			for _, a := range words {
				cands := m.LoadCandidates(0, a)
				if len(cands) != 1 {
					t.Logf("seed %d crash %d: %d candidates at %v", seed, c, len(cands), a)
					return false
				}
				if cands[0].Store.Value != want[a] {
					t.Logf("seed %d crash %d: lost newest value at %v", seed, c, a)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("strict single-candidate property violated: %v", err)
	}
}

// Property: px86/ptsosyn equivalence survives multiple crashes with
// interleaved post-crash reads — the lazy resolution state carried
// across sub-executions narrows identically.
func TestPropertyPx86PTSOsynMultiCrash(t *testing.T) {
	prop := func(seed int64, picks []uint8) bool {
		a := persist.MustNew(persist.Config{Name: "px86"})
		b := persist.MustNew(persist.Config{Name: "ptsosyn"})
		for c := 0; c < 3; c++ {
			randomProgram(a, seed+int64(c), false)
			randomProgram(b, seed+int64(c), false)
			a.Crash()
			b.Crash()
			for i, w := range words {
				ca := copyCandidates(a.LoadCandidates(0, w))
				cb := copyCandidates(b.LoadCandidates(0, w))
				if !sameCandidates(ca, cb) {
					return false
				}
				pick := 0
				if len(picks) > i {
					pick = int(picks[i]) % len(ca)
				}
				if a.Load(0, w, ca[pick], a.Intern("r")) != b.Load(0, w, cb[pick], b.Intern("r")) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Errorf("multi-crash px86/ptsosyn equivalence violated: %v", err)
	}
}

// Reset must restore cross-model equivalence from a clean slate: a
// reused machine replays exactly like a fresh one.
func TestCrossModelReset(t *testing.T) {
	for _, name := range persist.Names() {
		m := persist.MustNew(persist.Config{Name: name})
		randomProgram(m, 7, false)
		m.Crash()
		m.Reset()
		fresh := persist.MustNew(persist.Config{Name: name})
		randomProgram(m, 11, false)
		randomProgram(fresh, 11, false)
		m.Crash()
		fresh.Crash()
		if m.PersistFingerprint() != fresh.PersistFingerprint() {
			t.Errorf("%s: reset machine fingerprint differs from fresh machine", name)
		}
	}
}
