// Package strict implements strict persistency: every store becomes
// persistent at the moment it commits, in commit order, as if the
// persistence domain extended to the cache. It is the robustness
// reference model of the paper — a program is robust exactly when its
// post-crash behaviors under the weak model are behaviors it already
// has under strict persistency — and doubles as a differential oracle:
// under strict, every post-crash load has exactly one legal candidate
// (the newest committed store), so a robust program must compute the
// same final heap here as under px86, and the checker must report no
// violations for any program.
//
// Flushes and fences are recorded in the trace (the checker still sees
// them) but have no persistence effect — there is nothing left to
// flush. Store buffers do not exist: DelayedCommit is ignored, stores
// commit at issue.
package strict

import (
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/trace"
)

func init() {
	persist.Register(persist.Info{
		Name:        "strict",
		Description: "strict persistency: stores persist immediately, in order (differential oracle)",
		Weak:        false,
	}, func(cfg persist.Config) persist.Model {
		m := New()
		m.met = obs.PersistInstruments(cfg.Obs.Reg(), "strict")
		m.tr.SetWindow(cfg.Window)
		return m
	})
}

// Machine simulates a machine with strict persistency. Like the other
// backends it is not safe for concurrent use; drive one Machine per
// goroutine.
type Machine struct {
	tr  *trace.Trace
	mem map[memmodel.Addr]*trace.Store // last committed store per word, this sub-execution
	img persist.Image
	met obs.PersistMetrics // zero value (all nil) = counting disabled

	cands []persist.Candidate // LoadCandidates scratch
}

// New returns a machine with all of persistent memory zero-initialized.
func New() *Machine {
	m := &Machine{
		tr:  trace.New(),
		mem: make(map[memmodel.Addr]*trace.Store),
	}
	m.img.Init("strict")
	return m
}

// Name implements persist.Model.
func (m *Machine) Name() string { return "strict" }

// Trace returns the execution trace recorded so far.
func (m *Machine) Trace() *trace.Trace { return m.tr }

// Intern maps a source label to the trace's dense LocID.
func (m *Machine) Intern(loc string) trace.LocID { return m.tr.Intern(loc) }

// Reset rewinds the machine and its trace to the freshly-constructed
// state; see the Model contract.
func (m *Machine) Reset() {
	clear(m.mem)
	m.img.Reset()
	m.tr.Reset()
}

// commit makes a store globally visible, appends it to its line's
// history, and — the strict-persistency step — marks the whole line
// history guaranteed persistent.
func (m *Machine) commit(st *trace.Store) {
	m.tr.StoreCommit(st)
	m.mem[st.Addr] = st
	m.img.Commit(st)
	m.img.Guarantee(st.Addr)
}

// Store issues and immediately commits a store of v to word a.
func (m *Machine) Store(t memmodel.ThreadID, a memmodel.Addr, v memmodel.Value, loc trace.LocID) *trace.Store {
	m.met.Stores.Inc()
	st := m.tr.StoreIssue(t, a, v, memmodel.OpStore, loc)
	m.commit(st)
	return st
}

// Flush records a clflush in the trace; persistence-wise a no-op.
func (m *Machine) Flush(t memmodel.ThreadID, a memmodel.Addr, loc trace.LocID) {
	m.met.Flushes.Inc()
	m.tr.Fence(t, memmodel.OpFlush, a.Line(), loc)
}

// FlushOpt records a clflushopt in the trace; persistence-wise a no-op.
func (m *Machine) FlushOpt(t memmodel.ThreadID, a memmodel.Addr, loc trace.LocID) {
	m.met.FlushOpts.Inc()
	m.tr.Fence(t, memmodel.OpFlushOpt, a.Line(), loc)
}

// SFence records a store fence; nothing is buffered, so nothing drains.
func (m *Machine) SFence(t memmodel.ThreadID, loc trace.LocID) {
	m.met.Fences.Inc()
	m.tr.Fence(t, memmodel.OpSFence, 0, loc)
}

// MFence records a full fence; nothing is buffered, so nothing drains.
func (m *Machine) MFence(t memmodel.ThreadID, loc trace.LocID) {
	m.met.Fences.Inc()
	m.tr.Fence(t, memmodel.OpMFence, 0, loc)
}

// DrainAll implements persist.Model; there are no store buffers.
func (m *Machine) DrainAll(t memmodel.ThreadID) {}

// DrainOne implements persist.Model; there is never anything to drain.
func (m *Machine) DrainOne(t memmodel.ThreadID) bool { return false }

// BufferLen implements persist.Model; buffers are always empty.
func (m *Machine) BufferLen(t memmodel.ThreadID) int { return 0 }

// LoadCandidates returns the single store a load of word a may read:
// the newest committed store, or — before any store to a — the store
// surviving the last crash (under strict persistency the whole history
// survives, so that is the newest pre-crash store), or the initial
// value. The returned slice is machine-owned scratch, valid until the
// next call.
func (m *Machine) LoadCandidates(t memmodel.ThreadID, a memmodel.Addr) []persist.Candidate {
	a = a.Word()
	cands := m.cands[:0]
	if st, ok := m.mem[a]; ok {
		m.cands = append(cands, persist.Candidate{Store: st, Epoch: -1})
		return m.cands
	}
	// Sealed epochs all have lo = hi = len: the walk yields exactly the
	// newest surviving store to a, or falls through to the initial value.
	cands, blocked := m.img.AppendSealedCandidates(cands, a)
	if !blocked {
		cands = append(cands, persist.Candidate{Store: m.tr.Initial(a), Resolve: true, Epoch: -1})
	}
	m.cands = cands
	return cands
}

// Load performs a load of word a reading from the chosen candidate.
func (m *Machine) Load(t memmodel.ThreadID, a memmodel.Addr, c persist.Candidate, loc trace.LocID) memmodel.Value {
	a = a.Word()
	m.resolve(a, c, loc)
	m.tr.Load(t, a, c.Store, memmodel.OpLoad, loc)
	return c.Store.Value
}

// LoadDefault performs a load reading the newest (only) legal store.
func (m *Machine) LoadDefault(t memmodel.ThreadID, a memmodel.Addr, loc trace.LocID) memmodel.Value {
	cands := m.LoadCandidates(t, a)
	return m.Load(t, a, cands[0], loc)
}

// CAS performs an atomic compare-and-swap on word a.
func (m *Machine) CAS(t memmodel.ThreadID, a memmodel.Addr, c persist.Candidate, expected, newV memmodel.Value, loc trace.LocID) (memmodel.Value, bool) {
	a = a.Word()
	m.resolve(a, c, loc)
	m.tr.Load(t, a, c.Store, memmodel.OpCAS, loc)
	old := c.Store.Value
	if old != expected {
		return old, false
	}
	st := m.tr.StoreIssue(t, a, newV, memmodel.OpCAS, loc)
	m.commit(st)
	return old, true
}

// FAA performs an atomic fetch-and-add on word a.
func (m *Machine) FAA(t memmodel.ThreadID, a memmodel.Addr, c persist.Candidate, delta memmodel.Value, loc trace.LocID) memmodel.Value {
	a = a.Word()
	m.resolve(a, c, loc)
	m.tr.Load(t, a, c.Store, memmodel.OpFAA, loc)
	old := c.Store.Value
	st := m.tr.StoreIssue(t, a, old+delta, memmodel.OpFAA, loc)
	m.commit(st)
	return old
}

// resolve narrows the crash image to the chosen candidate, counting
// resolutions that actually consumed nondeterminism.
func (m *Machine) resolve(a memmodel.Addr, c persist.Candidate, loc trace.LocID) {
	if c.Resolve {
		m.met.Resolved.Inc()
	}
	m.img.Resolve(a, c, m.tr, loc)
}

// Crash simulates a power failure. Under strict persistency nothing is
// lost: every line's full history is sealed with lo = hi = len, so the
// post-crash state is uniquely the newest committed values.
func (m *Machine) Crash() {
	m.met.Crashes.Inc()
	clear(m.mem)
	m.img.Seal()
	m.tr.Crash()
}

// PersistFingerprint hashes the persistent state; see the Model
// contract and DESIGN.md for the state-cache soundness argument.
func (m *Machine) PersistFingerprint() uint64 { return m.img.Fingerprint() }

// Snapshot captures the machine's persistent state for a later Restore;
// call only immediately after Crash (see the Model contract).
func (m *Machine) Snapshot() *persist.ImageSnapshot { return m.img.Snapshot() }

// Restore rewinds the machine to a previously captured Snapshot; the
// shared trace is rewound by the caller.
func (m *Machine) Restore(snap *persist.ImageSnapshot) {
	clear(m.mem)
	m.img.Restore(snap)
}

// Retire implements persist.Retirable: one bounded-window retirement.
// Strict machines have no buffers; the roots are the volatile cache and
// the crash image's still-readable entries (under strict every sealed
// epoch has lo = hi = len, so the image retains exactly the newest
// surviving store per word and kills everything older).
func (m *Machine) Retire(extraRoots func(mark func(*trace.Store))) {
	m.tr.BeginRetire()
	mark := m.tr.MarkRetireRoot
	for _, st := range m.mem {
		mark(st)
	}
	m.img.Retire(mark)
	if extraRoots != nil {
		extraRoots(mark)
	}
	m.tr.FinishRetire()
}

// GuaranteedPersistCount mirrors the px86 diagnostic: under strict it
// always equals the line's committed-history length.
func (m *Machine) GuaranteedPersistCount(a memmodel.Addr) int {
	return m.img.GuaranteedCount(a)
}
