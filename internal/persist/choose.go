package persist

import "math/rand"

// Steering helpers over candidate sets. LoadCandidates orders
// candidates newest-possible first, so these are positional; they live
// here so read-steering policies need no backend import.

// Newest returns the newest-possible candidate — the behavior of an
// execution where everything persisted.
func Newest(cands []Candidate) Candidate { return cands[0] }

// Oldest returns the oldest legal candidate (typically the initial
// value), maximizing observable staleness.
func Oldest(cands []Candidate) Candidate { return cands[len(cands)-1] }

// Random returns a uniformly random candidate drawn from rng.
func Random(rng *rand.Rand, cands []Candidate) Candidate {
	return cands[rng.Intn(len(cands))]
}
