// Package ptsosyn implements the PTSOsyn persistency semantics of
// Khyzha & Lahav ("Taming x86-TSO Persistency", POPL 2021): a
// synchronous reformulation of Px86 in which each cache line has its
// own persistence buffer and asynchronous flushes become in-buffer
// markers. On the op vocabulary of this simulator PTSOsyn is
// observationally equivalent to Px86sim — same committed histories,
// same guaranteed-prefix evolution, same post-crash candidate sets —
// while being operationally simpler to state:
//
//   - stores commit from TSO store buffers into their line's
//     persistence buffer (the live epoch history);
//   - clflush empties the line's persistence buffer synchronously at
//     store-buffer exit: everything committed so far is persistent;
//   - clflushopt deposits a marker in the line's persistence buffer at
//     the current depth; a later drain (sfence/mfence/RMW) by the same
//     thread guarantees persistence up to that thread's markers;
//   - a crash discards store buffers and unfulfilled markers and seals
//     each line's history with the persisted-prefix range [guaranteed,
//     committed].
//
// The equivalence with px86 (which tracks exited clflushopt coverage
// per thread instead of per line) is exercised by the cross-model
// property tests in internal/persist and the differential runner in
// internal/explore: identical traces, candidate orders, fingerprints,
// and violation sets on every benchmark.
package ptsosyn

import (
	"repro/internal/memmodel"
	"repro/internal/obs"
	"repro/internal/persist"
	"repro/internal/trace"
)

func init() {
	persist.Register(persist.Info{
		Name:        "ptsosyn",
		Description: "PTSOsyn (Khyzha-Lahav): per-line persistence buffers with flush markers; equivalent to px86",
		Weak:        true,
	}, func(cfg persist.Config) persist.Model {
		return New(Config{
			DelayedCommit: cfg.DelayedCommit,
			Window:        cfg.Window,
			Metrics:       obs.PersistInstruments(cfg.Obs.Reg(), "ptsosyn"),
		})
	})
}

// Config controls simulation behavior; DelayedCommit is as in px86.
type Config struct {
	DelayedCommit bool
	// Window, when positive, puts the machine's trace in bounded-window
	// (streaming) mode; see persist.Config.Window.
	Window int
	// Metrics receives per-instruction counters; the zero value disables
	// counting.
	Metrics obs.PersistMetrics
}

// bufEntry is one TSO store-buffer slot: a pending store or a pending
// flush instruction awaiting buffer exit.
type bufEntry struct {
	kind  memmodel.OpKind
	store *trace.Store  // for OpStore/OpCAS/OpFAA
	line  memmodel.Addr // for OpFlush/OpFlushOpt
	loc   trace.LocID
}

// marker is an unfulfilled clflushopt sitting in a line's persistence
// buffer: thread t asked the line to persist up to depth pos; a drain
// by t makes that guarantee real.
type marker struct {
	t   memmodel.ThreadID
	pos int
}

// Machine simulates a PTSOsyn multiprocessor with persistent memory.
// Not safe for concurrent use; drive one Machine per goroutine.
type Machine struct {
	cfg     Config
	tr      *trace.Trace
	mem     map[memmodel.Addr]*trace.Store // volatile cache: last committed store per word, this sub-execution
	buffers map[memmodel.ThreadID][]bufEntry
	// markers holds each line's unfulfilled flush markers, oldest first
	// — the per-location persistence-buffer content beyond the committed
	// stores themselves (which live in img).
	markers map[memmodel.Addr][]marker
	img     persist.Image

	cands []persist.Candidate // LoadCandidates scratch
}

// New returns a machine with all of persistent memory zero-initialized.
func New(cfg Config) *Machine {
	m := &Machine{
		cfg:     cfg,
		tr:      trace.New(),
		mem:     make(map[memmodel.Addr]*trace.Store),
		buffers: make(map[memmodel.ThreadID][]bufEntry),
		markers: make(map[memmodel.Addr][]marker),
	}
	m.img.Init("ptsosyn")
	m.tr.SetWindow(cfg.Window)
	return m
}

// Name implements persist.Model.
func (m *Machine) Name() string { return "ptsosyn" }

// Trace returns the execution trace recorded so far.
func (m *Machine) Trace() *trace.Trace { return m.tr }

// Intern maps a source label to the trace's dense LocID.
func (m *Machine) Intern(loc string) trace.LocID { return m.tr.Intern(loc) }

// Reset rewinds the machine and its trace to the freshly-constructed
// state; see the Model contract.
func (m *Machine) Reset() {
	clear(m.mem)
	clear(m.buffers)
	clear(m.markers)
	m.img.Reset()
	m.tr.Reset()
}

// exitEntry applies the oldest store-buffer entry of thread t, per the
// PTSOsyn buffer-exit transitions.
func (m *Machine) exitEntry(t memmodel.ThreadID, e bufEntry) {
	switch e.kind {
	case memmodel.OpFlush:
		// clflush synchronously empties the line's persistence buffer:
		// the whole committed history persists, and every pending marker
		// is trivially fulfilled.
		m.img.Guarantee(e.line)
		if mk := m.markers[e.line]; len(mk) > 0 {
			m.markers[e.line] = mk[:0]
		}
	case memmodel.OpFlushOpt:
		// clflushopt enters the line's persistence buffer as a marker at
		// the current depth.
		m.markers[e.line] = append(m.markers[e.line], marker{t: t, pos: m.img.LiveLen(e.line)})
	default:
		m.commit(e.store)
	}
}

// commit makes a store globally visible and appends it to its line's
// persistence buffer (the live history).
func (m *Machine) commit(st *trace.Store) {
	m.tr.StoreCommit(st)
	m.mem[st.Addr] = st
	m.img.Commit(st)
}

// DrainAll commits every pending entry of thread t's store buffer, in
// FIFO order.
func (m *Machine) DrainAll(t memmodel.ThreadID) {
	for _, e := range m.buffers[t] {
		m.exitEntry(t, e)
	}
	m.buffers[t] = nil
}

// DrainOne commits the oldest pending entry of thread t's store buffer,
// reporting whether there was one.
func (m *Machine) DrainOne(t memmodel.ThreadID) bool {
	buf := m.buffers[t]
	if len(buf) == 0 {
		return false
	}
	m.cfg.Metrics.Drains.Inc()
	m.exitEntry(t, buf[0])
	m.buffers[t] = buf[1:]
	return true
}

// BufferLen returns the number of pending entries in t's store buffer.
func (m *Machine) BufferLen(t memmodel.ThreadID) int { return len(m.buffers[t]) }

// drainCompletes fulfils thread t's markers in every line's persistence
// buffer: the line is guaranteed persistent at least up to each marker's
// depth. The guarantee is a running maximum, so the map iteration order
// is immaterial.
func (m *Machine) drainCompletes(t memmodel.ThreadID) {
	for line, mks := range m.markers {
		kept := mks[:0]
		for _, mk := range mks {
			if mk.t == t {
				m.img.GuaranteeUpTo(line, mk.pos)
			} else {
				kept = append(kept, mk)
			}
		}
		m.markers[line] = kept
	}
}

// Store issues a store of v to word a by thread t; in delayed-commit
// mode it waits in t's TSO buffer.
func (m *Machine) Store(t memmodel.ThreadID, a memmodel.Addr, v memmodel.Value, loc trace.LocID) *trace.Store {
	m.cfg.Metrics.Stores.Inc()
	st := m.tr.StoreIssue(t, a, v, memmodel.OpStore, loc)
	if m.cfg.DelayedCommit {
		m.buffers[t] = append(m.buffers[t], bufEntry{kind: memmodel.OpStore, store: st, loc: loc})
	} else {
		m.commit(st)
	}
	return st
}

// Flush issues a clflush of the line containing a; it is ordered
// through the store buffer like a store.
func (m *Machine) Flush(t memmodel.ThreadID, a memmodel.Addr, loc trace.LocID) {
	m.cfg.Metrics.Flushes.Inc()
	m.tr.Fence(t, memmodel.OpFlush, a.Line(), loc)
	e := bufEntry{kind: memmodel.OpFlush, line: a.Line(), loc: loc}
	if m.cfg.DelayedCommit {
		m.buffers[t] = append(m.buffers[t], e)
	} else {
		m.exitEntry(t, e)
	}
}

// FlushOpt issues a clflushopt/clwb of the line containing a.
func (m *Machine) FlushOpt(t memmodel.ThreadID, a memmodel.Addr, loc trace.LocID) {
	m.cfg.Metrics.FlushOpts.Inc()
	m.tr.Fence(t, memmodel.OpFlushOpt, a.Line(), loc)
	e := bufEntry{kind: memmodel.OpFlushOpt, line: a.Line(), loc: loc}
	if m.cfg.DelayedCommit {
		m.buffers[t] = append(m.buffers[t], e)
	} else {
		m.exitEntry(t, e)
	}
}

// SFence drains t's store buffer and fulfils t's flush markers.
func (m *Machine) SFence(t memmodel.ThreadID, loc trace.LocID) {
	m.cfg.Metrics.Fences.Inc()
	m.tr.Fence(t, memmodel.OpSFence, 0, loc)
	m.DrainAll(t)
	m.drainCompletes(t)
}

// MFence behaves like SFence for persistency purposes.
func (m *Machine) MFence(t memmodel.ThreadID, loc trace.LocID) {
	m.cfg.Metrics.Fences.Inc()
	m.tr.Fence(t, memmodel.OpMFence, 0, loc)
	m.DrainAll(t)
	m.drainCompletes(t)
}

// LoadCandidates returns the stores a load of word a by thread t may
// read, newest-possible first; same contract and ordering as px86.
// The returned slice is machine-owned scratch, valid until the next
// call.
func (m *Machine) LoadCandidates(t memmodel.ThreadID, a memmodel.Addr) []persist.Candidate {
	a = a.Word()
	cands := m.cands[:0]
	// TSO store-buffer forwarding: newest buffered store to a by t.
	buf := m.buffers[t]
	for i := len(buf) - 1; i >= 0; i-- {
		if e := buf[i]; e.store != nil && e.store.Addr == a {
			m.cands = append(cands, persist.Candidate{Store: e.store, Epoch: -1})
			return m.cands
		}
	}
	// Committed this sub-execution: the cache holds a definite value.
	if st, ok := m.mem[a]; ok {
		m.cands = append(cands, persist.Candidate{Store: st, Epoch: -1})
		return m.cands
	}
	// Unresolved: walk sealed epochs newest-first.
	cands, blocked := m.img.AppendSealedCandidates(cands, a)
	if !blocked {
		cands = append(cands, persist.Candidate{Store: m.tr.Initial(a), Resolve: true, Epoch: -1})
	}
	m.cands = cands
	return cands
}

// resolve narrows the crash image to the chosen candidate, counting
// resolutions that actually consumed nondeterminism.
func (m *Machine) resolve(a memmodel.Addr, c persist.Candidate, loc trace.LocID) {
	if c.Resolve {
		m.cfg.Metrics.Resolved.Inc()
	}
	m.img.Resolve(a, c, m.tr, loc)
}

// Load performs a load of word a reading from the chosen candidate.
func (m *Machine) Load(t memmodel.ThreadID, a memmodel.Addr, c persist.Candidate, loc trace.LocID) memmodel.Value {
	a = a.Word()
	m.resolve(a, c, loc)
	m.tr.Load(t, a, c.Store, memmodel.OpLoad, loc)
	return c.Store.Value
}

// LoadDefault performs a load reading the newest legal store.
func (m *Machine) LoadDefault(t memmodel.ThreadID, a memmodel.Addr, loc trace.LocID) memmodel.Value {
	cands := m.LoadCandidates(t, a)
	return m.Load(t, a, cands[0], loc)
}

// rmwBegin: locked RMW operations are drain operations.
func (m *Machine) rmwBegin(t memmodel.ThreadID) {
	m.DrainAll(t)
	m.drainCompletes(t)
}

// CAS performs an atomic compare-and-swap on word a; it acts as a drain
// either way.
func (m *Machine) CAS(t memmodel.ThreadID, a memmodel.Addr, c persist.Candidate, expected, newV memmodel.Value, loc trace.LocID) (memmodel.Value, bool) {
	a = a.Word()
	m.rmwBegin(t)
	m.resolve(a, c, loc)
	m.tr.Load(t, a, c.Store, memmodel.OpCAS, loc)
	old := c.Store.Value
	if old != expected {
		return old, false
	}
	st := m.tr.StoreIssue(t, a, newV, memmodel.OpCAS, loc)
	m.commit(st)
	return old, true
}

// FAA performs an atomic fetch-and-add on word a; like CAS it drains.
func (m *Machine) FAA(t memmodel.ThreadID, a memmodel.Addr, c persist.Candidate, delta memmodel.Value, loc trace.LocID) memmodel.Value {
	a = a.Word()
	m.rmwBegin(t)
	m.resolve(a, c, loc)
	m.tr.Load(t, a, c.Store, memmodel.OpFAA, loc)
	old := c.Store.Value
	st := m.tr.StoreIssue(t, a, old+delta, memmodel.OpFAA, loc)
	m.commit(st)
	return old
}

// Crash simulates a power failure: store buffers and unfulfilled flush
// markers are lost, the volatile cache vanishes, and each line's
// history is sealed with its persisted-prefix range.
func (m *Machine) Crash() {
	m.cfg.Metrics.Crashes.Inc()
	clear(m.buffers)
	clear(m.markers)
	clear(m.mem)
	m.img.Seal()
	m.tr.Crash()
}

// PersistFingerprint hashes the persistent state; see the Model
// contract.
func (m *Machine) PersistFingerprint() uint64 { return m.img.Fingerprint() }

// Snapshot captures the machine's persistent state for a later Restore;
// call only immediately after Crash (see the Model contract).
func (m *Machine) Snapshot() *persist.ImageSnapshot { return m.img.Snapshot() }

// Restore rewinds the machine to a previously captured Snapshot; the
// shared trace is rewound by the caller.
func (m *Machine) Restore(snap *persist.ImageSnapshot) {
	clear(m.buffers)
	clear(m.markers)
	clear(m.mem)
	m.img.Restore(snap)
}

// Retire implements persist.Retirable: one bounded-window retirement.
// The machine's roots are the volatile cache, TSO-buffered stores, and
// the crash image's still-readable entries; flush markers record
// (thread, depth) pairs and hold no store pointers.
func (m *Machine) Retire(extraRoots func(mark func(*trace.Store))) {
	m.tr.BeginRetire()
	mark := m.tr.MarkRetireRoot
	for _, st := range m.mem {
		mark(st)
	}
	for _, buf := range m.buffers {
		for _, e := range buf {
			if e.store != nil {
				mark(e.store)
			}
		}
	}
	m.img.Retire(mark)
	if extraRoots != nil {
		extraRoots(mark)
	}
	m.tr.FinishRetire()
}

// GuaranteedPersistCount mirrors the px86 diagnostic.
func (m *Machine) GuaranteedPersistCount(a memmodel.Addr) int {
	return m.img.GuaranteedCount(a)
}
