// Package backends links every built-in persistency-model backend into
// the persist registry. Blank-import it from any package that
// constructs models by name (pmem does, so every binary and test built
// on the world has all built-ins available).
package backends

import (
	_ "repro/internal/persist/ptsosyn"
	_ "repro/internal/persist/strict"
	_ "repro/internal/px86"
)
