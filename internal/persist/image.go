package persist

import (
	"sort"

	"repro/internal/memmodel"
	"repro/internal/trace"
)

// epoch is the committed store history of one cache line within one
// crash-delimited sub-execution, together with the unresolved range of
// prefixes that may have persisted. A prefix length p with lo ≤ p ≤ hi
// means the first p stores of the epoch reached persistent memory.
type epoch struct {
	stores []*trace.Store
	lo, hi int
}

// indexOfFirst returns the index of the first store to word w, or -1.
// Retired entries are nil holes (see Retire) and never match: a retired
// first-store-to-w implies the epoch's guaranteed prefix already covers
// a newer store to w, so the narrowing that would have used it can no
// longer be asked for.
func (ep *epoch) indexOfFirst(w memmodel.Addr) int {
	for i, s := range ep.stores {
		if s != nil && s.Addr == w {
			return i
		}
	}
	return -1
}

// lineState is the full persistence state of one cache line: sealed
// epochs from previous sub-executions (oldest first) plus the live epoch
// of the current sub-execution. For the live epoch, lo is the number of
// stores guaranteed persistent by completed flushes; hi is unused until
// the epoch is sealed by a crash.
type lineState struct {
	sealed []*epoch
	live   *epoch
}

// Image is the persistent-memory state shared by every backend: the
// per-cache-line committed store histories, their persisted-prefix
// ranges, and the lazy crash-image resolution that narrows them read by
// read. Backends differ in *when* stores commit and *when* persistence
// is guaranteed (buffers, flush/drain rules); they agree on what a
// sealed crash image is and how candidate sets are derived from it.
// Keeping that logic here keeps candidate ordering and fingerprints
// byte-identical across backends that produce the same commit and
// guarantee sequences.
//
// An Image is not safe for concurrent use, matching the Model contract.
type Image struct {
	name  string // owning backend, for InvariantError attribution
	lines map[memmodel.Addr]*lineState

	// epochFree recycles sealed epochs across Reset; Seal draws from it
	// before allocating.
	epochFree []*epoch
	// candIdxs is AppendSealedCandidates' per-epoch store-index scratch.
	candIdxs []int
	// retireLast is Retire's per-epoch nearest-following-index scratch,
	// allocated on first retirement so unbounded machines never pay it.
	retireLast map[memmodel.Addr]int
}

// NewImage returns an empty image owned by the named backend.
func NewImage(name string) *Image {
	im := &Image{}
	im.Init(name)
	return im
}

// Init readies an empty image in place, so backends can embed an Image
// by value and avoid a separate allocation per machine.
func (im *Image) Init(name string) {
	im.name = name
	im.lines = make(map[memmodel.Addr]*lineState)
}

// Reset rewinds the image to empty, recycling cache-line records and
// sealed epochs.
func (im *Image) Reset() {
	for _, ls := range im.lines {
		im.epochFree = append(im.epochFree, ls.sealed...)
		ls.sealed = ls.sealed[:0]
		if ls.live != nil {
			im.epochFree = append(im.epochFree, ls.live)
		}
		ls.live = im.newEpoch()
	}
}

// newEpoch returns a zeroed epoch, recycled when possible.
func (im *Image) newEpoch() *epoch {
	if n := len(im.epochFree); n > 0 {
		ep := im.epochFree[n-1]
		im.epochFree = im.epochFree[:n-1]
		ep.stores = ep.stores[:0]
		ep.lo, ep.hi = 0, 0
		return ep
	}
	return &epoch{}
}

// line returns (creating on demand) the state of the line containing a.
func (im *Image) line(a memmodel.Addr) *lineState {
	l := a.Line()
	ls, ok := im.lines[l]
	if !ok {
		ls = &lineState{live: &epoch{}}
		im.lines[l] = ls
	}
	return ls
}

// Commit appends a committed store to its cache line's live history.
func (im *Image) Commit(st *trace.Store) {
	ls := im.line(st.Addr)
	ls.live.stores = append(ls.live.stores, st)
}

// LiveLen returns the committed-history length of the line containing a
// in the current sub-execution — the coverage an asynchronous flush
// records at issue/buffer-exit time.
func (im *Image) LiveLen(a memmodel.Addr) int {
	return len(im.line(a).live.stores)
}

// Guarantee marks every store committed so far to the line containing a
// as guaranteed persistent — the effect of a synchronous flush.
func (im *Image) Guarantee(a memmodel.Addr) {
	ls := im.line(a)
	if n := len(ls.live.stores); n > ls.live.lo {
		ls.live.lo = n
	}
}

// GuaranteeUpTo raises the guaranteed-persistent prefix of the line
// containing a to at least n — the effect of a drain completing an
// asynchronous flush whose coverage was n.
func (im *Image) GuaranteeUpTo(a memmodel.Addr, n int) {
	ls := im.line(a)
	if n > ls.live.lo {
		ls.live.lo = n
	}
}

// GuaranteedCount returns how many committed stores to the line
// containing a are guaranteed persistent in the current sub-execution.
func (im *Image) GuaranteedCount(a memmodel.Addr) int {
	if ls := im.lines[a.Line()]; ls != nil {
		return ls.live.lo
	}
	return 0
}

// Seal is the image half of a crash: each cache line's committed
// history is sealed into an epoch whose persisted prefix is any length
// from the flush-guaranteed lower bound up to the full history, and a
// fresh live epoch begins.
func (im *Image) Seal() {
	for _, ls := range im.lines {
		if len(ls.live.stores) > 0 || ls.live.lo > 0 {
			ls.live.hi = len(ls.live.stores)
			ls.sealed = append(ls.sealed, ls.live)
			ls.live = im.newEpoch()
		} else {
			// Nothing to seal: keep the (empty) live epoch.
			ls.live.lo, ls.live.hi = 0, 0
		}
	}
}

// AppendSealedCandidates appends to cands the stores of word a that may
// have survived past crashes, walking sealed epochs newest-first, and
// reports whether some epoch blocks visibility of anything older (its
// guaranteed prefix includes a store to a). When it does not, the caller
// appends the initial-value candidate.
func (im *Image) AppendSealedCandidates(cands []Candidate, a memmodel.Addr) ([]Candidate, bool) {
	ls := im.lines[a.Line()]
	var sealed []*epoch
	if ls != nil {
		sealed = ls.sealed
	}
	blocked := false
	for j := len(sealed) - 1; j >= 0 && !blocked; j-- {
		ep := sealed[j]
		// Indices of stores to a within this epoch. Retired entries are
		// nil holes; skipping them is exact because retirement only
		// removes stores whose visibility window is already empty (see
		// Retire), and positions — which the prefix arithmetic below
		// depends on — are preserved.
		idxs := im.candIdxs[:0]
		for i, s := range ep.stores {
			if s != nil && s.Addr == a {
				idxs = append(idxs, i)
			}
		}
		im.candIdxs = idxs
		for k, i := range idxs {
			// Store at index i is visible for prefix lengths in
			// [i+1, next], where next is the index of the next store to
			// a (exclusive upper bound on prefixes that still show i).
			next := len(ep.stores)
			if k+1 < len(idxs) {
				next = idxs[k+1]
			}
			lo := max(ep.lo, i+1)
			hi := min(ep.hi, next)
			if lo <= hi {
				cands = append(cands, Candidate{Store: ep.stores[i], Resolve: true, Epoch: j, LoNew: lo, HiNew: hi})
			}
		}
		if len(idxs) > 0 {
			// Older epochs are visible only if this epoch's prefix can
			// exclude all stores to a.
			if ep.lo > idxs[0] {
				blocked = true
			}
		}
	}
	return cands, blocked
}

// Resolve narrows epoch ranges so that future reads agree with the
// chosen candidate. tr and loc identify the access's source location,
// carried into the InvariantError panic raised when narrowing exposes
// an internal inconsistency.
func (im *Image) Resolve(a memmodel.Addr, c Candidate, tr *trace.Trace, loc trace.LocID) {
	if !c.Resolve {
		return // volatile read: nothing to narrow
	}
	ls := im.lines[a.Line()]
	if ls == nil {
		return
	}
	// All epochs newer than the chosen one must exclude their stores
	// to a; for the initial value (Epoch -1 via sealed path) every
	// epoch must.
	from := len(ls.sealed) - 1
	for j := from; j > c.Epoch; j-- {
		ep := ls.sealed[j]
		if first := ep.indexOfFirst(a); first >= 0 && ep.hi > first {
			ep.hi = first
			if ep.lo > ep.hi {
				panic(InvariantError{Model: im.name, Check: "crash-image resolution", Addr: a, Loc: tr.LocString(loc)})
			}
		}
	}
	if c.Epoch >= 0 {
		ep := ls.sealed[c.Epoch]
		ep.lo, ep.hi = c.LoNew, c.HiNew
		if ep.lo > ep.hi {
			panic(InvariantError{Model: im.name, Check: "prefix range", Addr: a, Loc: tr.LocString(loc)})
		}
	}
}

// Retire is the image half of a bounded-window retirement: it pins (via
// mark) every store some future load could still read through the crash
// image, and unlinks the entries that provably cannot be candidates
// ever again so the trace sweep may release them.
//
// A store at epoch index i is visible exactly for persisted-prefix
// lengths in [i+1, next], where next is the position of the next store
// to the same word (or the epoch length). The guaranteed lower bound
// ep.lo only ever rises — flushes raise it live, Resolve narrows it
// upward when a read commits to a newer survivor — so once next < ep.lo
// the window [max(lo,i+1), min(hi,next)] is empty forever: the entry is
// dead and becomes a nil hole (positions carry the prefix arithmetic,
// so the slot must stay). Everything else is marked. The newest entry
// per word has no follower and always survives, which is what keeps
// final-heap reconstruction's address set intact. Killed entries form a
// per-word prefix of the word's index list, so the candidate walk in
// AppendSealedCandidates sees the same (lo, hi) windows and the same
// blocked verdict it would have computed on the full history.
func (im *Image) Retire(mark func(*trace.Store)) {
	if im.retireLast == nil {
		im.retireLast = make(map[memmodel.Addr]int)
	}
	for _, ls := range im.lines {
		for _, ep := range ls.sealed {
			im.retireEpoch(ep, mark)
		}
		im.retireEpoch(ls.live, mark)
	}
}

// retireEpoch applies the per-epoch kill rule; see Retire.
func (im *Image) retireEpoch(ep *epoch, mark func(*trace.Store)) {
	if ep == nil || len(ep.stores) == 0 {
		return
	}
	last := im.retireLast
	for k := range last {
		delete(last, k)
	}
	for i := len(ep.stores) - 1; i >= 0; i-- {
		s := ep.stores[i]
		if s == nil {
			continue
		}
		// last holds the nearest following non-hole index per word. A
		// previously killed follower is fine to stand in for a live one:
		// kills only happen below ep.lo, so the comparison agrees.
		if j, ok := last[s.Addr]; ok && j < ep.lo {
			ep.stores[i] = nil
		} else {
			mark(s)
		}
		last[s.Addr] = i
	}
}

// epochBounds is the restorable state of one sealed epoch: its
// persisted-prefix range. The store history itself is immutable after
// Seal, so bounds are all a snapshot needs per epoch.
type epochBounds struct {
	lo, hi int
}

// ImageSnapshot captures the restorable state of an Image at a crash
// boundary. Take it immediately after Seal, when every live epoch is
// empty: the snapshot then consists solely of per-line sealed-epoch
// counts and prefix bounds, so its cost is O(sealed epochs), not
// O(stores).
type ImageSnapshot struct {
	bounds map[memmodel.Addr][]epochBounds
}

// Snapshot captures the image's state for a later Restore. The caller
// must be at a crash boundary (immediately after Seal).
func (im *Image) Snapshot() *ImageSnapshot {
	snap := &ImageSnapshot{bounds: make(map[memmodel.Addr][]epochBounds)}
	for l, ls := range im.lines {
		if len(ls.sealed) == 0 {
			continue
		}
		bs := make([]epochBounds, len(ls.sealed))
		for i, ep := range ls.sealed {
			bs[i] = epochBounds{lo: ep.lo, hi: ep.hi}
		}
		snap.bounds[l] = bs
	}
	return snap
}

// Restore rewinds the image to a previously captured snapshot: epochs
// sealed since the snapshot are recycled, prefix bounds narrowed by
// post-snapshot reads are widened back, and live epochs restart empty
// (they were empty when the snapshot was taken). Lines first touched
// after the snapshot revert to an inert empty state.
func (im *Image) Restore(snap *ImageSnapshot) {
	for l, ls := range im.lines {
		bs := snap.bounds[l]
		if len(ls.sealed) > len(bs) {
			im.epochFree = append(im.epochFree, ls.sealed[len(bs):]...)
			ls.sealed = ls.sealed[:len(bs)]
		}
		for i, ep := range ls.sealed {
			ep.lo, ep.hi = bs[i].lo, bs[i].hi
		}
		ls.live.stores = ls.live.stores[:0]
		ls.live.lo, ls.live.hi = 0, 0
	}
}

// Fingerprint hashes the image's persistent state: every cache line's
// sealed store history (IDs and values) together with its
// persisted-prefix bounds. Call it immediately after Seal, when the
// live epochs are empty — two images with equal fingerprints then
// present identical candidate sets to every future post-crash load.
// Store IDs are deterministic per instruction-stream prefix, so across
// executions of one deterministically replayed program, equal
// fingerprints mean the surviving images are the same image, not merely
// similar ones.
func (im *Image) Fingerprint() uint64 {
	lines := make([]memmodel.Addr, 0, len(im.lines))
	for l, ls := range im.lines {
		if len(ls.sealed) > 0 {
			lines = append(lines, l)
		}
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		// FNV-1a over the value's bytes, low to high.
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, l := range lines {
		ls := im.lines[l]
		mix(uint64(l))
		mix(uint64(len(ls.sealed)))
		for _, ep := range ls.sealed {
			mix(uint64(ep.lo))
			mix(uint64(ep.hi))
			mix(uint64(len(ep.stores)))
			for _, s := range ep.stores {
				if s == nil {
					// Retired entry: fingerprints are only consumed by the
					// state cache / DPOR, which bounded-window mode forces
					// off, but stay well-defined regardless.
					mix(0)
					continue
				}
				mix(uint64(s.ID))
				mix(uint64(s.Value))
			}
		}
	}
	return h
}
