package persist_test

import (
	"strings"
	"testing"

	"repro/internal/persist"
	_ "repro/internal/persist/backends"
)

func TestRegistryNames(t *testing.T) {
	names := persist.Names()
	for _, want := range []string{"px86", "ptsosyn", "strict"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("backend %q not registered; have %v", want, names)
		}
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names() not sorted: %v", names)
		}
	}
}

func TestRegistryDefault(t *testing.T) {
	m, err := persist.New(persist.Config{})
	if err != nil {
		t.Fatalf("zero config: %v", err)
	}
	if m.Name() != persist.DefaultModel {
		t.Errorf("zero config selected %q, want default %q", m.Name(), persist.DefaultModel)
	}
}

func TestRegistryUnknown(t *testing.T) {
	_, err := persist.New(persist.Config{Name: "epoch-nvm"})
	if err == nil {
		t.Fatal("unknown model accepted")
	}
	// The error must name the registered backends so a CLI user can
	// correct a typo without reading source.
	for _, want := range []string{"px86", "ptsosyn", "strict"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list backend %q", err, want)
		}
	}
}

func TestRegistryIsWeak(t *testing.T) {
	cases := map[string]bool{
		"px86":    true,
		"ptsosyn": true,
		"strict":  false,
		"":        true, // default model (px86) is weak
		"bogus":   true, // unknown: assume weak, the conservative answer
	}
	for name, want := range cases {
		if got := persist.IsWeak(name); got != want {
			t.Errorf("IsWeak(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestRegistryInfos(t *testing.T) {
	for _, info := range persist.Infos() {
		if info.Description == "" {
			t.Errorf("backend %q has no description", info.Name)
		}
		if _, ok := persist.Lookup(info.Name); !ok {
			t.Errorf("Infos lists %q but Lookup misses it", info.Name)
		}
	}
}
