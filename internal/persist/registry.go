package persist

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultModel is the backend selected by a zero Config: the paper's
// Px86sim semantics.
const DefaultModel = "px86"

// Info describes a registered backend for discovery and reporting.
type Info struct {
	// Name is the registry key, as accepted by Config.Name and the
	// CLIs' -model flag.
	Name string
	// Description is a one-line summary for -model usage text.
	Description string
	// Weak reports whether the model admits weak persistency behaviors
	// (post-crash states beyond the strict in-order one). Litmus
	// expectations and differential oracles key off it: under a
	// non-weak model every robustness litmus test is expected clean.
	Weak bool
}

// Factory constructs a fresh machine for one backend.
type Factory func(cfg Config) Model

type registration struct {
	info    Info
	factory Factory
}

var (
	registryMu sync.RWMutex
	registry   = map[string]registration{}
)

// Register adds a backend to the registry; it is called from backend
// init functions. Registering a duplicate or empty name panics — both
// are programmer errors caught at link time by any test.
func Register(info Info, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if info.Name == "" {
		panic("persist: Register with empty model name")
	}
	if _, dup := registry[info.Name]; dup {
		panic("persist: duplicate model registration: " + info.Name)
	}
	registry[info.Name] = registration{info: info, factory: f}
}

// New constructs a machine for the backend named by cfg ("" selects
// DefaultModel). Unknown names report the registered alternatives —
// the error surfaced by the CLIs' -model flag.
func New(cfg Config) (Model, error) {
	name := cfg.Name
	if name == "" {
		name = DefaultModel
	}
	registryMu.RLock()
	reg, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("persist: unknown model %q (registered: %v)", name, Names())
	}
	return reg.factory(cfg), nil
}

// MustNew is New for callers that have already validated cfg.Name
// (or use a built-in name); it panics on unknown models.
func MustNew(cfg Config) Model {
	m, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// Lookup returns the Info for a backend name ("" selects DefaultModel)
// and whether it is registered.
func Lookup(name string) (Info, bool) {
	if name == "" {
		name = DefaultModel
	}
	registryMu.RLock()
	defer registryMu.RUnlock()
	reg, ok := registry[name]
	return reg.info, ok
}

// IsWeak reports whether the named backend admits weak persistency
// behaviors; unknown names default to true (the conservative answer
// for expectation checks).
func IsWeak(name string) bool {
	info, ok := Lookup(name)
	if !ok {
		return true
	}
	return info.Weak
}

// Names returns the registered backend names, sorted.
func Names() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Infos returns the registered backends' Info records, sorted by name.
func Infos() []Info {
	registryMu.RLock()
	defer registryMu.RUnlock()
	infos := make([]Info, 0, len(registry))
	for _, reg := range registry {
		infos = append(infos, reg.info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}
