package memmodel

import (
	"testing"
	"testing/quick"
)

func TestLineGeometry(t *testing.T) {
	if CacheLineSize != 64 || WordSize != 8 || WordsPerLine != 8 {
		t.Fatalf("geometry changed: line=%d word=%d words/line=%d",
			CacheLineSize, WordSize, WordsPerLine)
	}
}

func TestLineAndWord(t *testing.T) {
	a := Addr(0x1234)
	if a.Line() != 0x1200 {
		t.Fatalf("Line(0x1234) = %v", a.Line())
	}
	if a.Word() != 0x1230 {
		t.Fatalf("Word(0x1234) = %v", a.Word())
	}
	if a.LineIndex() != 6 {
		t.Fatalf("LineIndex(0x1234) = %d", a.LineIndex())
	}
}

func TestSameLine(t *testing.T) {
	if !SameLine(0x1000, 0x103f) {
		t.Fatal("0x1000 and 0x103f share a line")
	}
	if SameLine(0x1000, 0x1040) {
		t.Fatal("0x1000 and 0x1040 are on different lines")
	}
}

// Properties of the address arithmetic.
func TestAddrProperties(t *testing.T) {
	idempotent := func(a uint64) bool {
		x := Addr(a)
		return x.Line().Line() == x.Line() && x.Word().Word() == x.Word()
	}
	if err := quick.Check(idempotent, nil); err != nil {
		t.Errorf("Line/Word not idempotent: %v", err)
	}
	contained := func(a uint64) bool {
		x := Addr(a)
		return x.Line() <= x && x < x.Line()+CacheLineSize &&
			x.Word() <= x && x < x.Word()+WordSize
	}
	if err := quick.Check(contained, nil); err != nil {
		t.Errorf("address not within its line/word: %v", err)
	}
	index := func(a uint64) bool {
		x := Addr(a)
		i := x.LineIndex()
		return i >= 0 && i < WordsPerLine &&
			x.Line()+Addr(i*WordSize) == x.Word()
	}
	if err := quick.Check(index, nil); err != nil {
		t.Errorf("LineIndex inconsistent: %v", err)
	}
}

func TestOpKindClassification(t *testing.T) {
	drains := map[OpKind]bool{OpMFence: true, OpSFence: true, OpCAS: true, OpFAA: true}
	fenceLike := map[OpKind]bool{
		OpMFence: true, OpSFence: true, OpCAS: true, OpFAA: true,
		OpFlush: true, OpFlushOpt: true,
	}
	memory := map[OpKind]bool{
		OpLoad: true, OpStore: true, OpCAS: true, OpFAA: true,
		OpFlush: true, OpFlushOpt: true,
	}
	for k := OpLoad; k <= OpCrash; k++ {
		if got := k.IsDrain(); got != drains[k] {
			t.Errorf("%v.IsDrain() = %v", k, got)
		}
		if got := k.IsFenceLike(); got != fenceLike[k] {
			t.Errorf("%v.IsFenceLike() = %v", k, got)
		}
		if got := k.AccessesMemory(); got != memory[k] {
			t.Errorf("%v.AccessesMemory() = %v", k, got)
		}
		if got := k.IsRMW(); got != (k == OpCAS || k == OpFAA) {
			t.Errorf("%v.IsRMW() = %v", k, got)
		}
	}
}

func TestOpKindString(t *testing.T) {
	if OpFlush.String() != "clflush" || OpFlushOpt.String() != "clflushopt" {
		t.Fatal("flush mnemonics wrong")
	}
	if OpKind(99).String() == "" {
		t.Fatal("out-of-range kind must still render")
	}
}

func TestAddrString(t *testing.T) {
	if Addr(0x1f).String() != "0x1f" {
		t.Fatalf("Addr.String = %q", Addr(0x1f).String())
	}
}
