// Package memmodel defines the shared vocabulary of the persistent-memory
// simulation: addresses, cache-line geometry, thread identifiers, values,
// and the kinds of operations that appear in execution traces.
//
// Every other layer — the Px86 simulator, the PSan robustness checker, the
// exploration harness, and the benchmark ports — speaks in these types, so
// the package is deliberately small and dependency-free.
package memmodel

import "fmt"

// CacheLineSize is the cache-line granularity of flush operations, in
// bytes. Intel x86 flush instructions (clflush, clflushopt, clwb) operate
// on 64-byte lines.
const CacheLineSize = 64

// WordSize is the granularity of a single memory location. The simulated
// machine is word-addressed: every load and store touches one 8-byte word,
// matching the aligned 64-bit accesses that PM data structures use for
// their commit stores.
const WordSize = 8

// WordsPerLine is the number of distinct memory locations per cache line.
const WordsPerLine = CacheLineSize / WordSize

// Addr is a simulated persistent-memory address. Addresses are byte
// granular, but accesses are word granular; Word normalizes an address to
// its word boundary.
type Addr uint64

// Line returns the cache line containing a, identified by the address of
// the line's first byte. Stores to the same Line persist atomically in
// TSO order under Px86, which is why colocating two fields on one line is
// a valid robustness fix (paper §5.2).
func (a Addr) Line() Addr { return a &^ (CacheLineSize - 1) }

// Word returns the word-aligned address containing a.
func (a Addr) Word() Addr { return a &^ (WordSize - 1) }

// LineIndex returns the word offset of a within its cache line, in
// [0, WordsPerLine).
func (a Addr) LineIndex() int { return int(a%CacheLineSize) / WordSize }

// String formats the address in hex.
func (a Addr) String() string { return fmt.Sprintf("0x%x", uint64(a)) }

// SameLine reports whether two addresses share a cache line.
func SameLine(a, b Addr) bool { return a.Line() == b.Line() }

// ThreadID identifies a thread within a sub-execution. Thread identifiers
// are scoped to a sub-execution: after a crash the program restarts and
// the recovery code runs on fresh threads, matching the paper's reset of
// the clock-vector map at crash events (Figure 3, [CRASH]).
type ThreadID int

// NoThread is the zero-value sentinel for "no thread" in diagnostics.
const NoThread ThreadID = -1

// Value is the contents of one memory word.
type Value uint64

// OpKind enumerates the primitive operations of the Px86 machine, which
// are exactly the PCom productions of the paper's Figure 9 language plus
// the crash event.
type OpKind int

const (
	// OpLoad is an atomic read of one word.
	OpLoad OpKind = iota
	// OpStore is an atomic write of one word.
	OpStore
	// OpCAS is an atomic compare-and-swap; it is analyzed as a load
	// immediately followed by a store (paper §5) and acts as a drain.
	OpCAS
	// OpFAA is an atomic fetch-and-add; like OpCAS it is a load+store
	// and a drain.
	OpFAA
	// OpMFence is a full memory fence; it drains the store buffer and
	// orders pending clflushopt/clwb operations (a drain operation).
	OpMFence
	// OpSFence is a store fence; for persistency purposes it is a drain
	// that orders clflushopt relative to flushes and stores.
	OpSFence
	// OpFlush is the clflush instruction: it is inserted into the store
	// buffer like a store and synchronously persists its cache line
	// when it commits.
	OpFlush
	// OpFlushOpt is the clflushopt/clwb instruction: asynchronous; the
	// flush is only guaranteed persistent after a subsequent drain.
	// The paper treats clflushopt and clwb identically (§2), so we
	// model a single operation.
	OpFlushOpt
	// OpCrash is a crash event: the volatile cache contents vanish and
	// a new sub-execution begins.
	OpCrash
)

var opKindNames = [...]string{
	OpLoad:     "load",
	OpStore:    "store",
	OpCAS:      "cas",
	OpFAA:      "faa",
	OpMFence:   "mfence",
	OpSFence:   "sfence",
	OpFlush:    "clflush",
	OpFlushOpt: "clflushopt",
	OpCrash:    "crash",
}

// String returns the instruction mnemonic for the operation kind.
func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// IsDrain reports whether the operation kind is a drain operation in the
// sense of the paper (§2): mfence, sfence, and locked RMW instructions
// all force pending clflushopt/clwb operations to complete.
func (k OpKind) IsDrain() bool {
	switch k {
	case OpMFence, OpSFence, OpCAS, OpFAA:
		return true
	}
	return false
}

// IsFenceLike reports whether the model-checking explorer inserts a crash
// point immediately before this operation. The paper's model checking
// mode "systematically inserts crashes before each fence-like operation
// and after the last operation of the program" (§6.1).
func (k OpKind) IsFenceLike() bool {
	switch k {
	case OpMFence, OpSFence, OpCAS, OpFAA, OpFlush, OpFlushOpt:
		return true
	}
	return false
}

// IsRMW reports whether the operation is an atomic read-modify-write.
func (k OpKind) IsRMW() bool { return k == OpCAS || k == OpFAA }

// AccessesMemory reports whether the operation reads or writes a memory
// location (as opposed to fences and crashes).
func (k OpKind) AccessesMemory() bool {
	switch k {
	case OpLoad, OpStore, OpCAS, OpFAA, OpFlush, OpFlushOpt:
		return true
	}
	return false
}
