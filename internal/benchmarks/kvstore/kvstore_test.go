package kvstore

import (
	"testing"

	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
	"repro/internal/pmlib"
)

func TestMemcachedSetGet(t *testing.T) {
	m := &Memcached{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	for k := memmodel.Value(1); k <= 4; k++ {
		m.Set(th, k, k*11)
	}
	for k := memmodel.Value(1); k <= 4; k++ {
		v, ok := m.Get(th, k)
		if !ok || v != k*11 {
			t.Fatalf("get(%d) = (%d, %v)", k, v, ok)
		}
	}
	if _, ok := m.Get(th, 99); ok {
		t.Fatal("get(99) should miss")
	}
	if got := th.Load(mcStatsAddr, "stats"); got != 4 {
		t.Fatalf("curr_items = %d, want 4", got)
	}
}

func TestMemcachedOverwriteShadows(t *testing.T) {
	m := &Memcached{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	m.Set(th, 1, 10)
	m.Set(th, 1, 20) // newer item prepends to the chain
	if v, ok := m.Get(th, 1); !ok || v != 20 {
		t.Fatalf("get(1) = (%d, %v), want (20, true)", v, ok)
	}
}

func TestMemcachedBuggyReportsItemKeyBug(t *testing.T) {
	b := MemcachedBenchmark()
	res := explore.Run(b.Build(bench.Buggy), explore.Options{
		Mode: explore.Random, Executions: b.Executions, Seed: 21,
	})
	_, missed := bench.MatchExpected(b.Expected, res.Violations)
	if len(missed) != 0 {
		t.Fatalf("missed: %+v\nfound: %v", missed, res.ViolationKeys())
	}
}

func TestMemcachedFixedIsClean(t *testing.T) {
	b := MemcachedBenchmark()
	res := explore.Run(b.Build(bench.Fixed), explore.Options{
		Mode: explore.Random, Executions: b.Executions, Seed: 21,
	})
	if len(res.Violations) != 0 {
		t.Fatalf("fixed variant reports: %v", res.ViolationKeys())
	}
}

func TestRedisSetGet(t *testing.T) {
	r := &Redis{opt: pmlib.Options{Variant: bench.Fixed}}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	p := pmlib.Create(th, RedisPoolBase, r.opt)
	dict := p.AllocLines(th, 1)
	p.SetRoot(th, dict)
	for k := memmodel.Value(1); k <= 6; k++ {
		r.Set(p, th, dict, k, k*13)
	}
	for k := memmodel.Value(1); k <= 6; k++ {
		v, ok := r.Get(th, dict, k)
		if !ok || v != k*13 {
			t.Fatalf("get(%d) = (%d, %v)", k, v, ok)
		}
	}
}

func TestRedisBuggyReportsLibraryRows(t *testing.T) {
	b := RedisBenchmark()
	res := explore.Run(b.Build(bench.Buggy), explore.Options{
		Mode: explore.Random, Executions: b.Executions, Seed: 22,
	})
	_, missed := bench.MatchExpected(b.Expected, res.Violations)
	if len(missed) != 0 {
		t.Fatalf("missed: %+v\nfound: %v", missed, res.ViolationKeys())
	}
}

func TestRedisFixedIsClean(t *testing.T) {
	b := RedisBenchmark()
	res := explore.Run(b.Build(bench.Fixed), explore.Options{
		Mode: explore.Random, Executions: b.Executions, Seed: 22,
	})
	if len(res.Violations) != 0 {
		t.Fatalf("fixed variant reports: %v", res.ViolationKeys())
	}
}

func TestServersNeverAbort(t *testing.T) {
	for _, build := range []func(bench.Variant) explore.Program{BuildMemcached, BuildRedis} {
		for _, v := range []bench.Variant{bench.Buggy, bench.Fixed} {
			res := explore.Run(build(v), explore.Options{Mode: explore.Random, Executions: 100, Seed: 23})
			if res.Aborted != 0 {
				t.Fatalf("%s: %d aborted executions", res.Program, res.Aborted)
			}
		}
	}
}

// The concurrent driver finds the same do_item_link bug under scheduled
// interleavings, and the fixed variant stays clean.
func TestMemcachedConcurrentDriver(t *testing.T) {
	res := explore.Run(BuildMemcachedConcurrent(bench.Buggy), explore.Options{
		Mode: explore.Random, Executions: 400, Seed: 31,
	})
	found := false
	for _, v := range res.Violations {
		if v.MissingFlush.Loc == "item::key in do_item_link" {
			found = true
		}
	}
	if !found {
		t.Fatalf("concurrent driver missed the item::key bug: %v", res.ViolationKeys())
	}
	clean := explore.Run(BuildMemcachedConcurrent(bench.Fixed), explore.Options{
		Mode: explore.Random, Executions: 400, Seed: 31,
	})
	if len(clean.Violations) != 0 {
		t.Fatalf("fixed concurrent variant reports: %v", clean.ViolationKeys())
	}
	if res.Aborted != 0 || clean.Aborted != 0 {
		t.Fatalf("aborted executions: %d/%d", res.Aborted, clean.Aborted)
	}
}

// Concurrent SETs from two clients must all be durable when each SET is
// fully persisted (fixed variant, crash at end, newest reads).
func TestMemcachedConcurrentAllItemsRecoverable(t *testing.T) {
	m := &Memcached{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1, Seed: 5})
	w.Spawn(0, func(th *pmem.Thread) {
		for k := memmodel.Value(1); k <= 3; k++ {
			m.Set(th, k, k*11)
		}
	})
	w.Spawn(1, func(th *pmem.Thread) {
		for k := memmodel.Value(4); k <= 6; k++ {
			m.Set(th, k, k*11)
		}
	})
	w.RunThreads()
	w.Crash()
	th := w.Thread(0)
	for k := memmodel.Value(1); k <= 6; k++ {
		v, ok := m.Get(th, k)
		if !ok || v != k*11 {
			t.Fatalf("get(%d) = (%d, %v) after crash", k, v, ok)
		}
	}
}
