// Package kvstore ports the two real-world applications of the paper's
// evaluation (§6.1): a memcached-style in-memory cache that stores items
// in persistent memory through the low-level (libpmem-style) direct
// API, and a Redis-style server that persists its dictionary through
// the pmlib transactional API. As in the paper, both are driven by a
// client that issues insertion and lookup requests, and both are
// explored in random mode (an outside client makes model checking
// impractical, §6.1).
//
// The memcached port seeds one representative application-level
// ordering bug in do_item_link (the class of unreported-by-prior-tools
// bugs §6.2 counts); the Redis port's violations come from the pmlib
// library it links, exactly as the paper attributes Redis's rows to
// libpmemobj.
package kvstore

import (
	"fmt"

	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
	"repro/internal/pmlib"
)

// --- memcached-style server: direct persistence ---

const (
	mcBuckets = 4

	// Item layout: the header (value, flags, next) on the first line,
	// the key data on the second — memcached items embed the key string
	// past the fixed header, so flushing the header never covers it.
	itValOff   = 0
	itFlagsOff = 8
	itNextOff  = 16
	itKeyOff   = memmodel.CacheLineSize

	// Server root: bucket array line + stats line.
	mcBucketsAddr = pmem.RootAddr
	mcStatsAddr   = pmem.RootAddr + memmodel.CacheLineSize
	mcMarkerAddr  = pmem.RootAddr + 2*memmodel.CacheLineSize
)

// Memcached is the memcached-pmem-style server.
type Memcached struct {
	v bench.Variant
}

func (m *Memcached) persistIfFixed(th *pmem.Thread, a memmodel.Addr, size int, loc string) {
	if m.v == bench.Fixed {
		th.Persist(a, size, loc)
	}
}

// Set handles a client SET: allocate an item, fill it, link it into the
// bucket chain (do_item_link). The key store is missing its flush in
// the buggy variant — the seeded ordering bug.
func (m *Memcached) Set(th *pmem.Thread, key, val memmodel.Value) {
	w := th.World()
	item := w.Heap.AllocLines(2)
	th.Store(item+itValOff, val, "item::value in do_item_link")
	th.Store(item+itFlagsOff, 1, "item::flags in do_item_link")
	th.Persist(item+itValOff, 2*memmodel.WordSize, "persist item value+flags")
	th.Store(item+itKeyOff, key, "item::key in do_item_link") // seeded bug
	m.persistIfFixed(th, item+itKeyOff, memmodel.WordSize, "persist item key")
	slot := mcBucketsAddr + memmodel.Addr(int(key)%mcBuckets*memmodel.WordSize)
	head := th.Load(slot, "read bucket head in do_item_link")
	th.Store(item+itNextOff, head, "item::next in do_item_link")
	th.Persist(item+itNextOff, memmodel.WordSize, "persist item next")
	th.Store(slot, memmodel.Value(item), "bucket head publish in do_item_link")
	th.Persist(slot, memmodel.WordSize, "persist bucket head")
	// Stats are volatile in spirit; keep them persisted so they add no
	// extra rows.
	n := th.Load(mcStatsAddr, "read curr_items")
	th.Store(mcStatsAddr, n+1, "curr_items update")
	th.Persist(mcStatsAddr, memmodel.WordSize, "persist curr_items")
}

// Get handles a client GET.
func (m *Memcached) Get(th *pmem.Thread, key memmodel.Value) (memmodel.Value, bool) {
	slot := mcBucketsAddr + memmodel.Addr(int(key)%mcBuckets*memmodel.WordSize)
	for it := memmodel.Addr(th.Load(slot, "read bucket head in get")); it != 0; {
		if th.Load(it+itKeyOff, "read item key in get") == key {
			return th.Load(it+itValOff, "read item value in get"), true
		}
		it = memmodel.Addr(th.Load(it+itNextOff, "read item next in get"))
	}
	return 0, false
}

// Restart walks the persisted items the way memcached-pmem's warm
// restart does, validating each chain.
func (m *Memcached) Restart(th *pmem.Thread) {
	th.Load(mcMarkerAddr, "read driver marker in Restart")
	for b := 0; b < mcBuckets; b++ {
		slot := mcBucketsAddr + memmodel.Addr(b*memmodel.WordSize)
		for it := memmodel.Addr(th.Load(slot, "read bucket head in Restart")); it != 0; {
			v := th.Load(it+itValOff, "read item value in Restart")
			fl := th.Load(it+itFlagsOff, "read item flags in Restart")
			k := th.Load(it+itKeyOff, "read item key in Restart")
			if fl != 0 && k == 0 {
				th.World().RecordAssertFailure(fmt.Sprintf("memcached: linked item with empty key (val=%d)", uint64(v)))
			}
			it = memmodel.Addr(th.Load(it+itNextOff, "read item next in Restart"))
		}
	}
	th.Load(mcStatsAddr, "read curr_items in Restart")
	for k := memmodel.Value(1); k <= 4; k++ {
		m.Get(th, k)
	}
}

// BuildMemcached constructs the exploration program: a client issuing
// four SETs, then a crash, then a warm restart plus GETs.
func BuildMemcached(v bench.Variant) explore.Program {
	m := &Memcached{v: v}
	return &explore.FuncProgram{
		ProgName: "Memcached-" + v.String(),
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				for k := memmodel.Value(1); k <= 4; k++ {
					m.Set(th, k, k*11)
				}
				th.Store(mcMarkerAddr, 4, "driver marker")
				th.Persist(mcMarkerAddr, memmodel.WordSize, "persist driver marker")
			},
			func(w *pmem.World) {
				m.Restart(w.Thread(0))
			},
		},
	}
}

// MemcachedBenchmark describes the port for the harness.
func MemcachedBenchmark() *bench.Benchmark {
	return &bench.Benchmark{
		Name: "Memcached",
		Expected: []bench.ExpectedBug{
			{Field: "item::key", Cause: "writing key in do_item_link without flushing before publish", LocSubstr: "item::key in do_item_link"},
		},
		Build:         BuildMemcached,
		PreferredMode: explore.Random,
		Executions:    400,
	}
}

// --- Redis-style server: pmlib transactions ---

// RedisPoolBase places the Redis pool clear of the harness heap.
const RedisPoolBase = memmodel.Addr(0xA00000)

const redisBuckets = 4

// Redis is the Redis-on-PMDK-style server: its dictionary entries are
// updated through redo-log transactions.
type Redis struct {
	opt pmlib.Options
}

// dictEntry layout: key, val, next.
const (
	deKeyOff  = 0
	deValOff  = 8
	deNextOff = 16
)

// Set handles a client SET inside one transaction.
func (r *Redis) Set(p *pmlib.Pool, th *pmem.Thread, dict memmodel.Addr, key, val memmodel.Value) {
	entry := p.Alloc(th, 3*memmodel.WordSize)
	th.Store(entry+deKeyOff, key, "dictEntry key init")
	th.Store(entry+deValOff, val, "dictEntry val init")
	th.Persist(entry, 3*memmodel.WordSize, "persist dictEntry")
	slot := dict + memmodel.Addr(int(key)%redisBuckets*memmodel.WordSize)
	head := th.Load(slot, "read dict slot in set")
	tx := p.TxBegin(th)
	tx.Set(entry+deNextOff, head)
	tx.Set(slot, memmodel.Value(entry))
	tx.Commit()
}

// Get handles a client GET.
func (r *Redis) Get(th *pmem.Thread, dict memmodel.Addr, key memmodel.Value) (memmodel.Value, bool) {
	slot := dict + memmodel.Addr(int(key)%redisBuckets*memmodel.WordSize)
	for e := memmodel.Addr(th.Load(slot, "read dict slot in get")); e != 0; {
		if th.Load(e+deKeyOff, "read dictEntry key in get") == key {
			return th.Load(e+deValOff, "read dictEntry val in get"), true
		}
		e = memmodel.Addr(th.Load(e+deNextOff, "read dictEntry next in get"))
	}
	return 0, false
}

// BuildRedis constructs the exploration program: create the pool and
// dictionary, serve four SETs, crash, reopen and serve GETs.
func BuildRedis(v bench.Variant) explore.Program {
	r := &Redis{opt: pmlib.Options{Variant: v}}
	return &explore.FuncProgram{
		ProgName: "Redis-" + v.String(),
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				p := pmlib.Create(th, RedisPoolBase, r.opt)
				dict := p.AllocLines(th, 1)
				p.SetRoot(th, dict)
				for k := memmodel.Value(1); k <= 4; k++ {
					r.Set(p, th, dict, k, k*13)
				}
			},
			func(w *pmem.World) {
				th := w.Thread(0)
				p, ok := pmlib.Open(th, RedisPoolBase, r.opt)
				if !ok {
					return
				}
				p.Recover(th)
				dict := p.Root(th)
				if dict == 0 {
					return
				}
				for k := memmodel.Value(1); k <= 4; k++ {
					r.Get(th, dict, k)
				}
			},
		},
	}
}

// RedisBenchmark describes the port for the harness: its violations are
// the pmlib library rows, as the paper attributes Redis's findings to
// PMDK's libpmemobj.
func RedisBenchmark() *bench.Benchmark {
	return &bench.Benchmark{
		Name: "Redis",
		Expected: []bench.ExpectedBug{
			{ID: 32, Field: "PMEMobjpool", Cause: "memcpy operation on pool object in libpmemobj library", LocSubstr: "memcpy on pool object in libpmemobj"},
			{ID: 33, Field: "ulog", Cause: "storing ulog in libpmemobj library", LocSubstr: "storing ulog in libpmemobj library"},
			{ID: 34, Field: "ulog_entry_base", Cause: "memcpy in applying modifications on a single ulog_entry_base", LocSubstr: "memcpy on a single ulog_entry_base"},
		},
		Build:         BuildRedis,
		PreferredMode: explore.Random,
		Executions:    400,
	}
}

// BuildMemcachedConcurrent is the multi-client variant: two simulated
// client threads issue interleaved SETs under the cooperative
// scheduler, matching the paper's concurrent server workloads. Random
// exploration varies the interleaving with the seed.
func BuildMemcachedConcurrent(v bench.Variant) explore.Program {
	m := &Memcached{v: v}
	return &explore.FuncProgram{
		ProgName: "Memcached-mt-" + v.String(),
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				w.Spawn(0, func(th *pmem.Thread) {
					for k := memmodel.Value(1); k <= 3; k++ {
						m.Set(th, k, k*11)
					}
				})
				w.Spawn(1, func(th *pmem.Thread) {
					for k := memmodel.Value(4); k <= 6; k++ {
						m.Set(th, k, k*11)
					}
				})
				w.RunThreads()
				th := w.Thread(2)
				th.Store(mcMarkerAddr, 6, "driver marker")
				th.Persist(mcMarkerAddr, memmodel.WordSize, "persist driver marker")
			},
			func(w *pmem.World) {
				m.Restart(w.Thread(0))
			},
		},
	}
}
