// Package part ports P-ART, the persistent Adaptive Radix Tree from the
// RECIPE collection (Lee et al., SOSP '19). The port reproduces the
// persistence skeleton of the original: optimistic version locks stored
// in PM (typeVersionLockObsolete), N4 nodes that grow into N16 nodes,
// and the epoch-based memory reclamation machinery (Epoche /
// DeletionList) whose missing flushes account for P-ART's
// memory-management violations in §6.2.
//
// Seeded bugs, rows #14–#23 of Table 2:
//
//	#14 typeVersionLockObsolete  locking it in N::writeLockOrRestart
//	#15 typeVersionLockObsolete  locking it in N::lockVersionOrRestart
//	#16 typeVersionLockObsolete  unlocking it in N::writeUnlock
//	#17 nodesCount               updating it in DeletionList::add
//	#18 N16::keys                updating it in N16::insert
//	#19 N16::count               updating it in N16::insert
//	#20 N4::keys                 updating it in N4::insert
//	#21 N4::children             updating it in N4::insert
//	#22 deletionLists            writing to deletionLists in Epoche constructor
//	#23 Tree::root               writing to root in Tree constructor
//
// plus nine memory-management violations in the Epoche/DeletionList and
// node-allocator code, reported separately in §6.2 because fixing them
// requires redesigning the (intentionally unfinished) RECIPE memory
// management rather than adding flushes.
package part

import (
	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

const (
	n4Cap  = 4
	n16Cap = 16

	// Node layout: metadata line, then keys, then children.
	nodeVersionOff = 0
	nodeCountOff   = 8
	nodeTypeOff    = 16
	nodeKeysOff    = memmodel.CacheLineSize

	typeN4  = 4
	typeN16 = 16

	// Epoche object layout (one line).
	epDeletionListsOff = 0
	epCurrentOff       = 8
	epOldestOff        = 16

	// DeletionList layout (one line header + node slots).
	dlHeadOff    = 0
	dlCountOff   = 8 // nodesCount — Table 2 row #17
	dlAddedOff   = 16
	dlDeletedOff = 24
	dlThreshOff  = 32
	dlNodesOff   = memmodel.CacheLineSize

	// Allocator bookkeeping (one line).
	allocFreeListOff = 0
	allocEpochOff    = 8

	// Root object: Tree::root at RootAddr; the Epoche pointer and driver
	// marker live on separate lines so persisting one never masks the
	// others.
	treeRootAddr  = pmem.RootAddr
	epochePtrAddr = pmem.RootAddr + 1*memmodel.CacheLineSize
	markerAddr    = pmem.RootAddr + 2*memmodel.CacheLineSize
)

// art is the runtime handle of one simulated P-ART.
type art struct {
	v bench.Variant
	// volatile mirrors of allocation addresses (re-read from PM in
	// recovery; kept here only for the pre-crash phase's convenience).
	epoche memmodel.Addr
	dl     memmodel.Addr
	alloc  memmodel.Addr
}

func (a *art) persistIfFixed(th *pmem.Thread, addr memmodel.Addr, size int, loc string) {
	if a.v == bench.Fixed {
		th.Persist(addr, size, loc)
	}
}

func keySlot(node memmodel.Addr, i int) memmodel.Addr {
	return node + nodeKeysOff + memmodel.Addr(i*memmodel.WordSize)
}

func childSlot(node memmodel.Addr, cap int, i int) memmodel.Addr {
	return node + nodeKeysOff + memmodel.Addr((cap+i)*memmodel.WordSize)
}

// writeLockOrRestart acquires a node's PM-resident version lock — the
// lock word is never flushed (bug #14).
func (a *art) writeLockOrRestart(th *pmem.Thread, node memmodel.Addr) {
	for {
		if _, ok := th.CAS(node+nodeVersionOff, 0, 1, "typeVersionLockObsolete in N::writeLockOrRestart"); ok {
			break
		}
	}
	a.persistIfFixed(th, node+nodeVersionOff, memmodel.WordSize, "persist version lock")
}

// lockVersionOrRestart is the version-validated lock used on the grow
// path (bug #15).
func (a *art) lockVersionOrRestart(th *pmem.Thread, node memmodel.Addr) {
	for {
		v := th.Load(node+nodeVersionOff, "read version in N::lockVersionOrRestart")
		if v != 0 {
			continue
		}
		if _, ok := th.CAS(node+nodeVersionOff, 0, 1, "typeVersionLockObsolete in N::lockVersionOrRestart"); ok {
			break
		}
	}
	a.persistIfFixed(th, node+nodeVersionOff, memmodel.WordSize, "persist version lock")
}

// writeUnlock releases the version lock (bug #16).
func (a *art) writeUnlock(th *pmem.Thread, node memmodel.Addr) {
	th.Store(node+nodeVersionOff, 0, "typeVersionLockObsolete in N::writeUnlock")
	a.persistIfFixed(th, node+nodeVersionOff, memmodel.WordSize, "persist version unlock")
}

// allocNode carves a node out of the PM allocator, updating the
// allocator's PM-resident free-list head without a flush (one of the
// §6.2 memory-management violations).
func (a *art) allocNode(th *pmem.Thread, cap int) memmodel.Addr {
	w := th.World()
	lines := 1 + (2*cap*memmodel.WordSize+memmodel.CacheLineSize-1)/memmodel.CacheLineSize
	node := w.Heap.AllocLines(lines)
	th.Store(a.alloc+allocFreeListOff, memmodel.Value(node)+memmodel.Value(lines*memmodel.CacheLineSize), "Allocator::freeList in allocNode") // memmgmt
	a.persistIfFixed(th, a.alloc+allocFreeListOff, memmodel.WordSize, "persist Allocator::freeList")
	return node
}

// newEpoche is the Epoche constructor: it publishes the deletion-list
// array without flushes (bug #22) and initializes the epoch counters
// (memory-management violations).
func (a *art) newEpoche(th *pmem.Thread) {
	w := th.World()
	a.epoche = w.Heap.AllocLines(1)
	a.dl = w.Heap.AllocLines(2)
	th.Store(a.epoche+epDeletionListsOff, memmodel.Value(a.dl), "deletionLists in Epoche constructor") // bug #22
	a.persistIfFixed(th, a.epoche+epDeletionListsOff, memmodel.WordSize, "persist deletionLists")
	th.Store(a.epoche+epCurrentOff, 1, "Epoche::currentEpoche in Epoche constructor") // memmgmt
	a.persistIfFixed(th, a.epoche+epCurrentOff, memmodel.WordSize, "persist currentEpoche")
	th.Store(a.epoche+epOldestOff, 1, "Epoche::oldestEpoche in Epoche constructor") // memmgmt
	a.persistIfFixed(th, a.epoche+epOldestOff, memmodel.WordSize, "persist oldestEpoche")
	th.Store(epochePtrAddr, memmodel.Value(a.epoche), "Tree::epoche pointer in Tree constructor")
	th.Persist(epochePtrAddr, memmodel.WordSize, "persist Tree::epoche pointer")
}

// deletionListAdd is DeletionList::add: it links a retired node into the
// list and updates the PM-resident counters, none of which are flushed
// (bug #17 plus several memory-management violations).
func (a *art) deletionListAdd(th *pmem.Thread, node memmodel.Addr) {
	count := th.Load(a.dl+dlCountOff, "read nodesCount in DeletionList::add")
	slot := a.dl + dlNodesOff + memmodel.Addr(int(count)%4*memmodel.WordSize)
	th.Store(slot, memmodel.Value(node), "LabelDelete::nodes[i] in DeletionList::add") // memmgmt
	a.persistIfFixed(th, slot, memmodel.WordSize, "persist LabelDelete::nodes[i]")
	th.Store(a.dl+dlHeadOff, memmodel.Value(slot), "headDeletionList in DeletionList::add") // memmgmt
	a.persistIfFixed(th, a.dl+dlHeadOff, memmodel.WordSize, "persist headDeletionList")
	th.Store(a.dl+dlCountOff, count+1, "nodesCount in DeletionList::add") // bug #17
	a.persistIfFixed(th, a.dl+dlCountOff, memmodel.WordSize, "persist nodesCount")
	added := th.Load(a.dl+dlAddedOff, "read added in DeletionList::add")
	th.Store(a.dl+dlAddedOff, added+1, "DeletionList::added in DeletionList::add") // memmgmt
	a.persistIfFixed(th, a.dl+dlAddedOff, memmodel.WordSize, "persist added")
	th.Store(a.dl+dlThreshOff, (count+1)/2, "DeletionList::thresholdCounter in DeletionList::add") // memmgmt
	a.persistIfFixed(th, a.dl+dlThreshOff, memmodel.WordSize, "persist thresholdCounter")
}

// collectGarbage is the epoch-advance + reclamation step; its epoch and
// counter stores are missing flushes (memory-management violations).
func (a *art) collectGarbage(th *pmem.Thread) {
	cur := th.Load(a.epoche+epCurrentOff, "read currentEpoche in collectGarbage")
	th.Store(a.epoche+epCurrentOff, cur+1, "Epoche::currentEpoche in enterEpoche") // memmgmt
	a.persistIfFixed(th, a.epoche+epCurrentOff, memmodel.WordSize, "persist currentEpoche advance")
	th.Store(a.epoche+epOldestOff, cur, "Epoche::oldestEpoche in collectGarbage") // memmgmt
	a.persistIfFixed(th, a.epoche+epOldestOff, memmodel.WordSize, "persist oldestEpoche advance")
	deleted := th.Load(a.dl+dlDeletedOff, "read deleted in collectGarbage")
	th.Store(a.dl+dlDeletedOff, deleted+1, "DeletionList::deleted in collectGarbage") // memmgmt
	a.persistIfFixed(th, a.dl+dlDeletedOff, memmodel.WordSize, "persist deleted")
}

// create is the Tree constructor (bug #23) plus the Epoche constructor
// and the allocator bootstrap.
func (a *art) create(th *pmem.Thread) memmodel.Addr {
	w := th.World()
	a.alloc = w.Heap.AllocLines(1)
	th.Store(a.alloc+allocEpochOff, 1, "Allocator::epoch in bootstrap")
	th.Persist(a.alloc+allocEpochOff, memmodel.WordSize, "persist Allocator::epoch")
	a.newEpoche(th)
	root := a.allocNode(th, n4Cap)
	th.Store(root+nodeTypeOff, typeN4, "N::type in N4 constructor")
	th.Persist(root+nodeTypeOff, memmodel.WordSize, "persist N::type")
	th.Store(treeRootAddr, memmodel.Value(root), "Tree::root in Tree constructor") // bug #23
	a.persistIfFixed(th, treeRootAddr, memmodel.WordSize, "persist Tree::root")
	return root
}

// n4Insert adds (key, leaf) into an N4 node under its write lock —
// bugs #14, #16, #20, #21.
func (a *art) n4Insert(th *pmem.Thread, node memmodel.Addr, key, leaf memmodel.Value) bool {
	a.writeLockOrRestart(th, node)
	count := int(th.Load(node+nodeCountOff, "read N4::count in N4::insert"))
	if count >= n4Cap {
		a.writeUnlock(th, node)
		return false
	}
	th.Store(childSlot(node, n4Cap, count), leaf, "N4::children in N4::insert") // bug #21
	a.persistIfFixed(th, childSlot(node, n4Cap, count), memmodel.WordSize, "persist N4::children")
	th.Store(keySlot(node, count), key, "N4::keys in N4::insert") // bug #20
	a.persistIfFixed(th, keySlot(node, count), memmodel.WordSize, "persist N4::keys")
	th.Store(node+nodeCountOff, memmodel.Value(count+1), "N4::count in N4::insert")
	th.Persist(node+nodeCountOff, memmodel.WordSize, "persist N4::count")
	a.writeUnlock(th, node)
	return true
}

// growToN16 copies a full N4 into a fresh N16 — bugs #15, #18, #19 —
// and republishes it into the slot that referenced the old node
// (properly persisted: the republish itself is not one of the reported
// bugs).
func (a *art) growToN16(th *pmem.Thread, n4, slot memmodel.Addr) memmodel.Addr {
	a.lockVersionOrRestart(th, n4)
	n16 := a.allocNode(th, n16Cap)
	th.Store(n16+nodeTypeOff, typeN16, "N::type in N16 constructor")
	th.Persist(n16+nodeTypeOff, memmodel.WordSize, "persist N::type")
	count := int(th.Load(n4+nodeCountOff, "read N4::count in grow"))
	for i := 0; i < count; i++ {
		k := th.Load(keySlot(n4, i), "read N4::keys in grow")
		c := th.Load(childSlot(n4, n4Cap, i), "read N4::children in grow")
		th.Store(childSlot(n16, n16Cap, i), c, "N16::children in N16::insert")
		th.Persist(childSlot(n16, n16Cap, i), memmodel.WordSize, "persist N16::children")
		th.Store(keySlot(n16, i), k, "N16::keys in N16::insert") // bug #18
		a.persistIfFixed(th, keySlot(n16, i), memmodel.WordSize, "persist N16::keys")
	}
	th.Store(n16+nodeCountOff, memmodel.Value(count), "N16::count in N16::insert") // bug #19
	a.persistIfFixed(th, n16+nodeCountOff, memmodel.WordSize, "persist N16::count")
	th.Store(slot, memmodel.Value(n16), "N republish in grow")
	th.Persist(slot, memmodel.WordSize, "persist N republish")
	// The N4 is retired through the epoch machinery.
	a.writeUnlock(th, n4)
	a.deletionListAdd(th, n4)
	return n16
}

// n16Insert adds into an N16 node — reuses bugs #15, #16, #18, #19.
func (a *art) n16Insert(th *pmem.Thread, node memmodel.Addr, key, leaf memmodel.Value) bool {
	a.lockVersionOrRestart(th, node)
	count := int(th.Load(node+nodeCountOff, "read N16::count in N16::insert"))
	if count >= n16Cap {
		a.writeUnlock(th, node)
		return false
	}
	th.Store(childSlot(node, n16Cap, count), leaf, "N16::children in N16::insert")
	th.Persist(childSlot(node, n16Cap, count), memmodel.WordSize, "persist N16::children")
	th.Store(keySlot(node, count), key, "N16::keys in N16::insert") // bug #18
	a.persistIfFixed(th, keySlot(node, count), memmodel.WordSize, "persist N16::keys")
	th.Store(node+nodeCountOff, memmodel.Value(count+1), "N16::count in N16::insert") // bug #19
	a.persistIfFixed(th, node+nodeCountOff, memmodel.WordSize, "persist N16::count")
	a.writeUnlock(th, node)
	return true
}

// nodeInsert routes to the node-type-specific insert, growing the node
// (through the slot that references it) when full.
func (a *art) nodeInsert(th *pmem.Thread, slot memmodel.Addr, partial, child memmodel.Value) {
	node := memmodel.Addr(th.Load(slot, "read node in insert"))
	typ := th.Load(node+nodeTypeOff, "read N::type in insert")
	if typ == typeN4 {
		if a.n4Insert(th, node, partial, child) {
			return
		}
		node = a.growToN16(th, node, slot)
	}
	a.n16Insert(th, node, partial, child)
}

// findChild scans a node for a partial key, returning the child value
// and the child slot's address (for grow republish); ok is false when
// the partial key is absent or the node is malformed.
func (a *art) findChild(th *pmem.Thread, node memmodel.Addr, partial memmodel.Value) (memmodel.Value, memmodel.Addr, bool) {
	typ := th.Load(node+nodeTypeOff, "read N::type in findChild")
	cap := n4Cap
	if typ == typeN16 {
		cap = n16Cap
	} else if typ != typeN4 {
		return 0, 0, false
	}
	count := int(th.Load(node+nodeCountOff, "read N::count in findChild"))
	if count > cap {
		count = cap
	}
	for i := 0; i < count; i++ {
		if th.Load(keySlot(node, i), "read keys in findChild") == partial {
			slot := childSlot(node, cap, i)
			return th.Load(slot, "read children in findChild"), slot, true
		}
	}
	return 0, 0, false
}

// Keys are two radix levels: the high nibble indexes the root node, the
// low nibble the second-level node. Leaves are tagged with the low bit
// (ART's pointer-tagging), so child slots hold either a node address
// (even) or a leaf (odd).
func hiNibble(key memmodel.Value) memmodel.Value { return (key >> 4) & 0xf }
func loNibble(key memmodel.Value) memmodel.Value { return key & 0xf }

func tagLeaf(v memmodel.Value) memmodel.Value   { return v<<1 | 1 }
func untagLeaf(v memmodel.Value) memmodel.Value { return v >> 1 }
func isLeaf(v memmodel.Value) bool              { return v&1 == 1 }

// insert descends the radix levels, creating the intermediate node on
// first use, and places the tagged leaf at the second level.
func (a *art) insert(th *pmem.Thread, key, leaf memmodel.Value) {
	root := memmodel.Addr(th.Load(treeRootAddr, "read Tree::root in insert"))
	if root == 0 {
		return
	}
	child, _, ok := a.findChild(th, root, hiNibble(key))
	if !ok || child == 0 {
		// First key with this prefix: allocate the second-level node
		// and link it into the root (an N4/N16 insert, bugs #20/#21).
		n := a.allocNode(th, n4Cap)
		th.Store(n+nodeTypeOff, typeN4, "N::type in N4 constructor")
		th.Persist(n+nodeTypeOff, memmodel.WordSize, "persist N::type")
		a.nodeInsert(th, treeRootAddr, hiNibble(key), memmodel.Value(n))
		child, _, ok = a.findChild(th, root, hiNibble(key))
		if !ok {
			return
		}
	}
	if isLeaf(child) {
		return // duplicate prefix collision; the port does not update in place
	}
	// Insert the leaf into the second-level node, addressed through its
	// slot in the root so a grow republishes correctly.
	a.nodeInsertAt(th, root, hiNibble(key), loNibble(key), tagLeaf(leaf))
}

// nodeInsertAt re-locates the child slot (it may have moved if the
// parent itself grew) and inserts into the second-level node.
func (a *art) nodeInsertAt(th *pmem.Thread, parent memmodel.Addr, partial, sub, child memmodel.Value) {
	_, slot, ok := a.findChild(th, parent, partial)
	if !ok || slot == 0 {
		return
	}
	a.nodeInsert(th, slot, sub, child)
}

// lookup descends both radix levels.
func (a *art) lookup(th *pmem.Thread, key memmodel.Value) (memmodel.Value, bool) {
	root := memmodel.Addr(th.Load(treeRootAddr, "read Tree::root in lookup"))
	if root == 0 {
		return 0, false
	}
	child, _, ok := a.findChild(th, root, hiNibble(key))
	if !ok || child == 0 || isLeaf(child) {
		return 0, false
	}
	leaf, _, ok := a.findChild(th, memmodel.Addr(child), loNibble(key))
	if !ok || leaf == 0 || !isLeaf(leaf) {
		return 0, false
	}
	return untagLeaf(leaf), true
}

// recover walks everything a P-ART restart touches: the root node (in
// first-written order per line), then the epoch machinery state.
func (a *art) recover(th *pmem.Thread) {
	th.Load(markerAddr, "read driver marker in Recovery")
	node := memmodel.Addr(th.Load(treeRootAddr, "read Tree::root in Recovery"))
	if node != 0 {
		a.recoverNode(th, node, 0)
	}
	ep := memmodel.Addr(th.Load(epochePtrAddr, "read Tree::epoche in Recovery"))
	if ep != 0 {
		dl := memmodel.Addr(th.Load(ep+epDeletionListsOff, "read deletionLists in Recovery"))
		th.Load(ep+epCurrentOff, "read currentEpoche in Recovery")
		th.Load(ep+epOldestOff, "read oldestEpoche in Recovery")
		if dl != 0 {
			th.Load(dl+dlHeadOff, "read headDeletionList in Recovery")
			th.Load(dl+dlCountOff, "read nodesCount in Recovery")
			th.Load(dl+dlAddedOff, "read added in Recovery")
			th.Load(dl+dlDeletedOff, "read deleted in Recovery")
			th.Load(dl+dlThreshOff, "read thresholdCounter in Recovery")
			th.Load(dl+dlNodesOff, "read LabelDelete::nodes[0] in Recovery")
		}
	}
	// Allocator bookkeeping is re-read on restart.
	if a.alloc != 0 {
		th.Load(a.alloc+allocFreeListOff, "read Allocator::freeList in Recovery")
		th.Load(a.alloc+allocEpochOff, "read Allocator::epoch in Recovery")
	}
	for k := memmodel.Value(1); k <= 6; k++ {
		a.lookup(th, k)
	}
}

// recoverNode reads one node's persistent words in first-written order
// (child pointer before the key that published it), then descends into
// untagged children up to the radix depth.
func (a *art) recoverNode(th *pmem.Thread, node memmodel.Addr, depth int) {
	th.Load(node+nodeVersionOff, "read typeVersionLockObsolete in Recovery")
	th.Load(node+nodeCountOff, "read N::count in Recovery")
	typ := th.Load(node+nodeTypeOff, "read N::type in Recovery")
	cap := n4Cap
	if typ == typeN16 {
		cap = n16Cap
	} else if typ != typeN4 {
		return
	}
	var children []memmodel.Value
	for i := 0; i < cap; i++ {
		c := th.Load(childSlot(node, cap, i), "read children in Recovery")
		th.Load(keySlot(node, i), "read keys in Recovery")
		children = append(children, c)
	}
	if depth >= 1 {
		return // leaves below this level
	}
	for _, c := range children {
		if c != 0 && !isLeaf(c) {
			a.recoverNode(th, memmodel.Addr(c), depth+1)
		}
	}
}

// Build constructs the exploration program for a variant: constructor,
// six inserts (forcing the N4→N16 grow), a GC pass, then recovery.
func Build(v bench.Variant) explore.Program {
	return build(v)
}

// workloadPhase is the pre-crash phase: constructor, six inserts
// (forcing the N4→N16 grow), a GC pass, driver marker.
func workloadPhase(a *art) func(*pmem.World) {
	return func(w *pmem.World) {
		th := w.Thread(0)
		a.create(th)
		for k := memmodel.Value(1); k <= 6; k++ {
			a.insert(th, k, k*10)
		}
		a.collectGarbage(th)
		th.Store(markerAddr, 6, "driver marker")
		th.Persist(markerAddr, memmodel.WordSize, "persist driver marker")
	}
}

// template runs the workload once, crash-free, on a throwaway world to
// learn the mirror addresses (Epoche, deletion lists, allocator). The
// heap allocator is deterministic, so every execution allocates the
// same addresses; recovery treats the mirrors as statically-known
// restart-time layout even when the crash preempted the assignment.
func template(v bench.Variant) *art {
	a := &art{v: v}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	w.Checker.SetEnabled(false)
	w.RunPhase(workloadPhase(a))
	return a
}

func build(v bench.Variant) explore.Program {
	tmpl := template(v)
	return &explore.InstancedProgram{
		ProgName: "P-ART-" + v.String(),
		New: func() []func(*pmem.World) {
			a := &art{}
			*a = *tmpl
			return []func(*pmem.World){
				workloadPhase(a),
				func(w *pmem.World) {
					a.recover(w.Thread(0))
				},
			}
		},
	}
}

// Benchmark describes the port for the evaluation harness.
func Benchmark() *bench.Benchmark {
	return &bench.Benchmark{
		Name: "P-ART",
		Expected: []bench.ExpectedBug{
			{ID: 14, Field: "typeVersionLockObsolete", Cause: "locking it in N::writeLockOrRestart", LocSubstr: "typeVersionLockObsolete in N::writeLockOrRestart"},
			{ID: 15, Field: "typeVersionLockObsolete", Cause: "locking it in N::lockVersionOrRestart", LocSubstr: "typeVersionLockObsolete in N::lockVersionOrRestart"},
			{ID: 16, Field: "typeVersionLockObsolete", Cause: "unlocking it in N::writeUnlock", LocSubstr: "typeVersionLockObsolete in N::writeUnlock"},
			{ID: 17, Field: "nodesCount", Cause: "updating it in DeletionList::add", LocSubstr: "nodesCount in DeletionList::add"},
			{ID: 18, Field: "N16::keys", Cause: "updating it in N16::insert", LocSubstr: "N16::keys in N16::insert"},
			{ID: 19, Field: "N16::count", Cause: "updating it in N16::insert", LocSubstr: "N16::count in N16::insert"},
			{ID: 20, Field: "N4::keys", Cause: "updating it in N4::insert", LocSubstr: "N4::keys in N4::insert", Known: true},
			{ID: 21, Field: "N4::children", Cause: "updating it in N4::insert", LocSubstr: "N4::children in N4::insert", Known: true},
			{ID: 22, Field: "deletionLists", Cause: "writing to deletionLists in Epoche constructor", LocSubstr: "deletionLists in Epoche constructor", Known: true},
			{ID: 23, Field: "Tree::root", Cause: "writing to root in Tree constructor", LocSubstr: "Tree::root in Tree constructor", Known: true},
			// Memory-management violations (§6.2: nine more in P-ART).
			{Field: "headDeletionList", Cause: "DeletionList::add", LocSubstr: "headDeletionList in DeletionList::add", MemMgmt: true},
			{Field: "LabelDelete::nodes[i]", Cause: "DeletionList::add", LocSubstr: "LabelDelete::nodes[i] in DeletionList::add", MemMgmt: true},
			{Field: "DeletionList::added", Cause: "DeletionList::add", LocSubstr: "DeletionList::added in DeletionList::add", MemMgmt: true},
			{Field: "DeletionList::thresholdCounter", Cause: "DeletionList::add", LocSubstr: "thresholdCounter in DeletionList::add", MemMgmt: true},
			{Field: "DeletionList::deleted", Cause: "collectGarbage", LocSubstr: "DeletionList::deleted in collectGarbage", MemMgmt: true},
			{Field: "Epoche::currentEpoche", Cause: "Epoche constructor", LocSubstr: "currentEpoche in Epoche constructor", MemMgmt: true},
			{Field: "Epoche::currentEpoche", Cause: "enterEpoche", LocSubstr: "currentEpoche in enterEpoche", MemMgmt: true},
			{Field: "Epoche::oldestEpoche", Cause: "collectGarbage/constructor", LocSubstr: "oldestEpoche in", MemMgmt: true},
			{Field: "Allocator::freeList", Cause: "allocNode", LocSubstr: "Allocator::freeList in allocNode", MemMgmt: true},
		},
		Build:         Build,
		PreferredMode: explore.Random,
		Executions:    400,
	}
}
