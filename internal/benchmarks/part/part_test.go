package part

import (
	"testing"

	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

func TestFunctionalInsertLookupAndGrow(t *testing.T) {
	a := &art{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	a.create(th)
	for k := memmodel.Value(1); k <= 6; k++ {
		a.insert(th, k, k*10)
	}
	// Keys 1..6 share the high nibble, so six inserts grow the shared
	// second-level node into an N16 while the root stays an N4.
	root := memmodel.Addr(th.Load(treeRootAddr, "root"))
	if typ := th.Load(root+nodeTypeOff, "type"); typ != typeN4 {
		t.Fatalf("root type = %d, want N4", typ)
	}
	child, _, ok := a.findChild(th, root, 0)
	if !ok || child == 0 || isLeaf(child) {
		t.Fatalf("second-level node missing: %v ok=%v", child, ok)
	}
	if typ := th.Load(memmodel.Addr(child)+nodeTypeOff, "child type"); typ != typeN16 {
		t.Fatalf("second-level type = %d, want N16 (grown)", typ)
	}
	for k := memmodel.Value(1); k <= 6; k++ {
		v, ok := a.lookup(th, k)
		if !ok || v != k*10 {
			t.Fatalf("lookup(%d) = (%d, %v)", k, v, ok)
		}
	}
	if _, ok := a.lookup(th, 99); ok {
		t.Fatal("lookup(99) should miss")
	}
}

func TestDeletionListTracksRetiredNodes(t *testing.T) {
	a := &art{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	a.create(th)
	for k := memmodel.Value(1); k <= 5; k++ { // fifth insert triggers grow
		a.insert(th, k, k*10)
	}
	if got := th.Load(a.dl+dlCountOff, "count"); got != 1 {
		t.Fatalf("nodesCount = %d, want 1 (retired N4)", got)
	}
}

func TestBuggyVariantReportsTable2Rows(t *testing.T) {
	b := Benchmark()
	res := explore.Run(b.Build(bench.Buggy), explore.Options{
		Mode:       explore.Random,
		Executions: b.Executions,
		Seed:       3,
	})
	_, missed := bench.MatchExpected(b.Expected, res.Violations)
	if len(missed) != 0 {
		t.Fatalf("missed rows: %+v\nfound: %v", missed, res.ViolationKeys())
	}
}

func TestMemMgmtViolationsCountedSeparately(t *testing.T) {
	b := Benchmark()
	var mm int
	for _, eb := range b.Expected {
		if eb.MemMgmt {
			mm++
		}
	}
	if mm != 9 {
		t.Fatalf("memory-management rows = %d, want 9 (§6.2)", mm)
	}
}

func TestFixedVariantIsClean(t *testing.T) {
	b := Benchmark()
	res := explore.Run(b.Build(bench.Fixed), explore.Options{
		Mode:       explore.Random,
		Executions: b.Executions,
		Seed:       3,
	})
	if len(res.Violations) != 0 {
		t.Fatalf("fixed variant still reports: %v", res.ViolationKeys())
	}
}

func TestRecoveryNeverAborts(t *testing.T) {
	for _, v := range []bench.Variant{bench.Buggy, bench.Fixed} {
		res := explore.Run(Build(v), explore.Options{Mode: explore.Random, Executions: 150, Seed: 8})
		if res.Aborted != 0 {
			t.Fatalf("%v: %d aborted executions", v, res.Aborted)
		}
	}
}

// Keys with distinct high nibbles get distinct second-level nodes: the
// radix structure actually branches.
func TestRadixBranching(t *testing.T) {
	a := &art{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	a.create(th)
	keys := []memmodel.Value{0x11, 0x12, 0x21, 0x22, 0x31}
	for _, k := range keys {
		a.insert(th, k, k*10)
	}
	for _, k := range keys {
		v, ok := a.lookup(th, k)
		if !ok || v != k*10 {
			t.Fatalf("lookup(%#x) = (%d, %v)", k, v, ok)
		}
	}
	// Three distinct prefixes → three children in the root.
	root := memmodel.Addr(th.Load(treeRootAddr, "root"))
	if n := th.Load(root+nodeCountOff, "count"); n != 3 {
		t.Fatalf("root count = %d, want 3 branches", n)
	}
	if _, ok := a.lookup(th, 0x41); ok {
		t.Fatal("lookup(0x41) should miss")
	}
}

// Leaf tagging: child slots distinguish node pointers (even) from
// tagged leaves (odd), so lookups never dereference a leaf as a node.
func TestLeafTagging(t *testing.T) {
	if !isLeaf(tagLeaf(7)) || untagLeaf(tagLeaf(7)) != 7 {
		t.Fatal("leaf tag round trip broken")
	}
	if isLeaf(memmodel.Value(0x100000)) {
		t.Fatal("aligned node address misread as leaf")
	}
}
