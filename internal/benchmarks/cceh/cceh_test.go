package cceh

import (
	"testing"

	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

// TestFunctionalInsertGet checks the data structure works when nothing
// crashes.
func TestFunctionalInsertGet(t *testing.T) {
	h := &hashTable{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	h.create(th)
	for k := memmodel.Value(10); k < 14; k++ {
		if !h.insert(th, k, k*100) {
			t.Fatalf("insert(%d) failed", k)
		}
	}
	for k := memmodel.Value(10); k < 14; k++ {
		v, ok := h.get(th, k)
		if !ok || v != k*100 {
			t.Fatalf("get(%d) = (%d, %v), want (%d, true)", k, v, ok, k*100)
		}
	}
	if _, ok := h.get(th, 99); ok {
		t.Fatal("get(99) should miss")
	}
}

// TestSegmentFull checks insert reports failure once a segment's slots
// are exhausted (the port does not implement directory doubling).
func TestSegmentFull(t *testing.T) {
	h := &hashTable{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	h.create(th)
	for i := 0; i < nSlots; i++ {
		if !h.insert(th, memmodel.Value(2*i+2), 1) { // all even keys: segment 0
			t.Fatalf("insert %d failed early", i)
		}
	}
	if h.insert(th, 100, 1) {
		t.Fatal("insert into full segment should fail")
	}
}

// TestBuggyVariantReportsTable2Rows runs the buggy port under random
// exploration and checks every Table 2 row (#1–#6) is reported.
func TestBuggyVariantReportsTable2Rows(t *testing.T) {
	b := Benchmark()
	res := explore.Run(b.Build(bench.Buggy), explore.Options{
		Mode:       explore.Random,
		Executions: b.Executions,
		Seed:       1,
	})
	covered, missed := bench.MatchExpected(b.Expected, res.Violations)
	if len(missed) != 0 {
		t.Fatalf("missed rows: %+v\nfound: %v", missed, res.ViolationKeys())
	}
	if len(covered) != len(b.Expected) {
		t.Fatalf("covered %d of %d rows", len(covered), len(b.Expected))
	}
}

// TestFixedVariantIsClean applies PSan's suggested fixes and re-runs:
// no violations may remain (§6.2: "we simply applied PSan's suggestions
// and reran the program until no robustness violations were reported").
func TestFixedVariantIsClean(t *testing.T) {
	b := Benchmark()
	res := explore.Run(b.Build(bench.Fixed), explore.Options{
		Mode:       explore.Random,
		Executions: b.Executions,
		Seed:       1,
	})
	if len(res.Violations) != 0 {
		t.Fatalf("fixed variant still reports: %v", res.ViolationKeys())
	}
}

// TestRecoveryNeverPanics: whatever the crash point and read choices,
// recovery must handle the surviving image (nil pointers, zero keys).
func TestRecoveryNeverPanics(t *testing.T) {
	for _, v := range []bench.Variant{bench.Buggy, bench.Fixed} {
		res := explore.Run(Build(v), explore.Options{
			Mode:       explore.Random,
			Executions: 150,
			Seed:       99,
		})
		if res.Aborted != 0 {
			t.Fatalf("%v: %d aborted executions", v, res.Aborted)
		}
	}
}

// Dynamic hashing: overflowing a segment splits it; local depths catch
// up with the global depth and force directory doubling; every key
// stays findable afterwards.
func TestSegmentSplitAndDirectoryDoubling(t *testing.T) {
	h := &hashTable{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	h.create(th)
	// Even keys all hash to slot 0 at depth 1: five of them overflow the
	// 4-slot segment and force a split (and doubling, since local depth
	// equals global depth).
	keys := []memmodel.Value{2, 4, 6, 8, 10, 12, 3, 5, 7}
	for _, k := range keys {
		if !h.Insert(th, k, k*100) {
			t.Fatalf("Insert(%d) failed", k)
		}
	}
	if depth := th.Load(pmem.RootAddr+rootDepthOff, "depth"); depth < 2 {
		t.Fatalf("global_depth = %d, want >= 2 (directory doubled)", depth)
	}
	dir := memmodel.Addr(th.Load(pmem.RootAddr+rootDirOff, "dir"))
	if cap := th.Load(dir+dirCapOff, "cap"); cap < 4 {
		t.Fatalf("capacity = %d, want >= 4", cap)
	}
	for _, k := range keys {
		v, ok := h.get(th, k)
		if !ok || v != k*100 {
			t.Fatalf("get(%d) = (%d, %v)", k, v, ok)
		}
	}
	if _, ok := h.get(th, 99); ok {
		t.Fatal("get(99) should miss")
	}
}

// After a split, the two new segments partition the old keys by the new
// depth bit — no key is lost or duplicated.
func TestSplitRedistributesExactly(t *testing.T) {
	h := &hashTable{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	h.create(th)
	for _, k := range []memmodel.Value{2, 4, 6, 8} { // fill slot-0 segment
		h.Insert(th, k, k)
	}
	h.Insert(th, 10, 10) // overflow: split + doubling
	count := 0
	for _, k := range []memmodel.Value{2, 4, 6, 8, 10} {
		if _, ok := h.get(th, k); ok {
			count++
		}
	}
	if count != 5 {
		t.Fatalf("found %d of 5 keys after split", count)
	}
}

// The dynamic driver (splits + doubling) still reports the constructor
// and Segment::Insert rows and stays clean when fixed.
func TestDynamicDriverDetection(t *testing.T) {
	res := explore.Run(BuildDynamic(bench.Buggy), explore.Options{
		Mode: explore.Random, Executions: 400, Seed: 41,
	})
	_, missed := bench.MatchExpected(Benchmark().Expected, res.Violations)
	if len(missed) != 0 {
		t.Fatalf("dynamic driver missed rows: %+v", missed)
	}
	clean := explore.Run(BuildDynamic(bench.Fixed), explore.Options{
		Mode: explore.Random, Executions: 400, Seed: 41,
	})
	if len(clean.Violations) != 0 {
		t.Fatalf("fixed dynamic driver reports: %v", clean.ViolationKeys())
	}
	if res.Aborted != 0 || clean.Aborted != 0 {
		t.Fatalf("aborted executions: %d/%d", res.Aborted, clean.Aborted)
	}
}
