// Package cceh ports CCEH (Cacheline-Conscious Extendible Hashing,
// Nam et al., FAST '19), the persistent hash table the paper evaluates
// first. The port reproduces the persistence skeleton of the original:
// a root object pointing at a directory of segment pointers, segments
// holding (key, value) slot pairs guarded by a PM-resident lock word
// (sema), insertion under the lock, and recovery by walking the
// directory.
//
// The Buggy variant seeds rows #1–#6 of the paper's Table 2:
//
//	#1 sema            locking sema in Segment::Insert
//	#2 sema            unlocking sema in Segment::Insert
//	#3 key             writing to key in Segment::Insert
//	#4 Directory::_[i] writing to _[i] in CCEH constructor
//	#5 Directory::_    writing to _ in CCEH constructor
//	#6 CCEH            writing to CCEH fields in CCEH constructor
//
// The Fixed variant persists each of those stores with clflushopt +
// sfence, which is the repair PSan suggests.
package cceh

import (
	"fmt"

	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

const (
	// nSegments is the initial directory capacity.
	nSegments = 2
	// nSlots is the number of (key, value) pairs per segment.
	nSlots = 4

	// Root object field offsets.
	rootDirOff   = 0
	rootDepthOff = 8

	// Directory field offsets: the segment-pointer array pointer (the
	// original's `Segment** _`) and the capacity.
	dirArrOff = 0
	dirCapOff = 8

	// Segment field offsets. The lock word and metadata live on the
	// segment's first cache line; the slot pairs start on the next line,
	// as in the original's large (16 KiB) segments where the lock and
	// the slot array never share a line.
	segSemaOff  = 0
	segDepthOff = 8
	segPairsOff = memmodel.CacheLineSize
)

// hashTable is the runtime handle for one simulated CCEH instance.
type hashTable struct {
	v bench.Variant
}

// persistIfFixed makes a store durable only in the Fixed variant — it
// marks the exact store sites Table 2 reports.
func (h *hashTable) persistIfFixed(th *pmem.Thread, a memmodel.Addr, size int, loc string) {
	if h.v == bench.Fixed {
		th.Persist(a, size, loc)
	}
}

// pairAddr returns the address of slot i's key word; the value word
// follows it.
func pairAddr(seg memmodel.Addr, i int) memmodel.Addr {
	return seg + segPairsOff + memmodel.Addr(i*2*memmodel.WordSize)
}

// segmentFor picks the directory slot for a key at the initial global
// depth (the port's "hash" uses the key's low bits; see segIndex for
// the depth-aware form the dynamic paths use).
func segmentFor(key memmodel.Value) int { return int(key) % nSegments }

// create is the CCEH constructor: it allocates segments, the directory,
// and initializes the root object. Bugs #4, #5, and #6 live here.
func (h *hashTable) create(th *pmem.Thread) {
	w := th.World()
	// Allocate and initialize the segments. localDepth initialization is
	// not one of the reported bugs, so both variants persist it.
	segs := make([]memmodel.Addr, nSegments)
	for i := range segs {
		segs[i] = w.Heap.AllocLines(3)
		th.Store(segs[i]+segDepthOff, 1, "Segment::local_depth in Segment()")
		th.Persist(segs[i]+segDepthOff, memmodel.WordSize, "persist Segment::local_depth")
	}
	// Directory: the segment-pointer array plus the directory object.
	arr := w.Heap.AllocLines(1)
	for i, seg := range segs {
		slot := arr + memmodel.Addr(i*memmodel.WordSize)
		th.Store(slot, memmodel.Value(seg), "Directory::_[i] in CCEH constructor") // bug #4
		h.persistIfFixed(th, slot, memmodel.WordSize, "persist Directory::_[i]")
	}
	dir := w.Heap.AllocLines(1)
	th.Store(dir+dirArrOff, memmodel.Value(arr), "Directory::_ in CCEH constructor") // bug #5
	h.persistIfFixed(th, dir+dirArrOff, memmodel.WordSize, "persist Directory::_")
	// The original constructor flushes nothing in the Directory; the
	// capacity store shares `_`'s fate (and cache line).
	th.Store(dir+dirCapOff, nSegments, "Directory::capacity in CCEH constructor")
	h.persistIfFixed(th, dir+dirCapOff, memmodel.WordSize, "persist Directory::capacity")
	// Root object (the CCEH class fields). Bug #6.
	th.Store(pmem.RootAddr+rootDirOff, memmodel.Value(dir), "CCEH::dir in CCEH constructor")
	th.Store(pmem.RootAddr+rootDepthOff, 1, "CCEH::global_depth in CCEH constructor")
	h.persistIfFixed(th, pmem.RootAddr, 2*memmodel.WordSize, "persist CCEH fields")
}

// insert adds (key, value) under the segment lock: Segment::Insert.
// Bugs #1 (lock), #2 (unlock), and #3 (key) live here.
func (h *hashTable) insert(th *pmem.Thread, key, value memmodel.Value) bool {
	dir, arr, depth := loadDir(th)
	if dir == 0 || arr == 0 {
		return false
	}
	seg := memmodel.Addr(th.Load(arr+memmodel.Addr(segIndex(key, depth)*memmodel.WordSize), "read Directory::_[i] in Insert"))
	if seg == 0 {
		return false
	}

	// Acquire the PM-resident lock. The lock word's cache line is never
	// flushed in the original — bug #1.
	for {
		if _, ok := th.CAS(seg+segSemaOff, 0, 1, "Segment::sema lock in Segment::Insert"); ok {
			break
		}
	}
	h.persistIfFixed(th, seg+segSemaOff, memmodel.WordSize, "persist sema lock")

	ok := false
	for i := 0; i < nSlots; i++ {
		pa := pairAddr(seg, i)
		if th.Load(pa, "read slot key in Segment::Insert") == 0 {
			// Write the value first and persist it, then publish the
			// key. The key store is missing its flush — bug #3.
			th.Store(pa+memmodel.WordSize, value, "entry value in Segment::Insert")
			th.Persist(pa+memmodel.WordSize, memmodel.WordSize, "persist entry value")
			th.Store(pa, key, "key in Segment::Insert") // bug #3
			h.persistIfFixed(th, pa, memmodel.WordSize, "persist key")
			ok = true
			break
		}
	}

	// Release the lock; also unflushed in the original — bug #2.
	th.Store(seg+segSemaOff, 0, "Segment::sema unlock in Segment::Insert")
	h.persistIfFixed(th, seg+segSemaOff, memmodel.WordSize, "persist sema unlock")
	return ok
}

// get looks a key up; used by the recovery phase.
func (h *hashTable) get(th *pmem.Thread, key memmodel.Value) (memmodel.Value, bool) {
	dir := memmodel.Addr(th.Load(pmem.RootAddr+rootDirOff, "read CCEH::dir in Get"))
	if dir == 0 {
		return 0, false
	}
	arr := memmodel.Addr(th.Load(dir+dirArrOff, "read Directory::_ in Get"))
	if arr == 0 {
		return 0, false
	}
	depth := int(th.Load(pmem.RootAddr+rootDepthOff, "read CCEH::global_depth in Get"))
	if depth < 1 || depth > maxGlobalDepth {
		return 0, false
	}
	seg := memmodel.Addr(th.Load(arr+memmodel.Addr(segIndex(key, depth)*memmodel.WordSize), "read Directory::_[i] in Get"))
	if seg == 0 {
		return 0, false
	}
	for i := 0; i < nSlots; i++ {
		pa := pairAddr(seg, i)
		if th.Load(pa, "read key in Get") == key {
			return th.Load(pa+memmodel.WordSize, "read value in Get"), true
		}
	}
	return 0, false
}

// recover walks the whole structure the way CCEH's directory recovery
// does, touching every persistent field so stale state is observable.
func (h *hashTable) recover(th *pmem.Thread) {
	th.Load(pmem.RootAddr+rootDepthOff, "read CCEH::global_depth in Recovery")
	dir := memmodel.Addr(th.Load(pmem.RootAddr+rootDirOff, "read CCEH::dir in Recovery"))
	if dir == 0 {
		return
	}
	arr := memmodel.Addr(th.Load(dir+dirArrOff, "read Directory::_ in Recovery"))
	cap := int(th.Load(dir+dirCapOff, "read Directory::capacity in Recovery"))
	if arr == 0 || cap <= 0 || cap > maxDirCap {
		return
	}
	for i := 0; i < cap; i++ {
		seg := memmodel.Addr(th.Load(arr+memmodel.Addr(i*memmodel.WordSize), "read Directory::_[i] in Recovery"))
		if seg == 0 {
			continue
		}
		th.Load(seg+segDepthOff, "read Segment::local_depth in Recovery")
		th.Load(seg+segSemaOff, "read Segment::sema in Recovery")
		for s := 0; s < nSlots; s++ {
			pa := pairAddr(seg, s)
			k := th.Load(pa, "read key in Recovery")
			if k != 0 {
				v := th.Load(pa+memmodel.WordSize, "read value in Recovery")
				if v == 0 {
					th.World().RecordAssertFailure(fmt.Sprintf("CCEH: key %d present with zero value", uint64(k)))
				}
			}
		}
		// Re-check the lock word after touching the slots: CCEH's
		// recovery clears stale locks, and the second read is where a
		// stale sema becomes observable alongside fresh slot data.
		th.Load(seg+segSemaOff, "re-read Segment::sema in Recovery")
	}
	for k := memmodel.Value(10); k < 10+2*nSegments; k++ {
		h.get(th, k)
	}
}

// Build constructs the exploration program for a variant: one pre-crash
// phase (constructor + four inserts) and a recovery phase.
func Build(v bench.Variant) explore.Program {
	h := &hashTable{v: v}
	return &explore.FuncProgram{
		ProgName: "CCEH-" + v.String(),
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				h.create(th)
				for k := memmodel.Value(10); k < 10+2*nSegments; k++ {
					h.insert(th, k, k*100)
				}
			},
			func(w *pmem.World) {
				h.recover(w.Thread(0))
			},
		},
	}
}

// Benchmark describes the port for the evaluation harness.
func Benchmark() *bench.Benchmark {
	return &bench.Benchmark{
		Name: "CCEH",
		Expected: []bench.ExpectedBug{
			{ID: 1, Field: "sema", Cause: "locking sema in Segment::Insert", LocSubstr: "sema lock in Segment::Insert"},
			{ID: 2, Field: "sema", Cause: "unlocking sema in Segment::Insert", LocSubstr: "sema unlock in Segment::Insert"},
			{ID: 3, Field: "key", Cause: "writing to key in Segment::Insert", LocSubstr: "key in Segment::Insert", Known: true},
			{ID: 4, Field: "Directory::_[i]", Cause: "writing to _[i] in CCEH constructor", LocSubstr: "Directory::_[i] in CCEH constructor", Known: true},
			{ID: 5, Field: "Directory::_", Cause: "writing to _ in CCEH constructor", LocSubstr: "Directory::_ in CCEH constructor", Known: true},
			{ID: 5, Field: "Directory::capacity", Cause: "writing to capacity in CCEH constructor (same object write as #5)", LocSubstr: "Directory::capacity in CCEH constructor", Known: true},
			{ID: 6, Field: "CCEH", Cause: "writing to CCEH fields in CCEH constructor", LocSubstr: "CCEH::", Known: true},
		},
		Build:         Build,
		PreferredMode: explore.Random,
		Executions:    400,
	}
}
