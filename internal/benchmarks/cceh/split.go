package cceh

import (
	"repro/internal/benchmarks/bench"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

// This file implements CCEH's extendible-hashing machinery: segment
// splits with local depths and directory doubling — the paths that make
// CCEH "dynamic". The split and doubling stores follow the original's
// discipline (they are flushed: CCEH gets these right); the seeded
// Table 2 bugs remain in the constructor and Segment::Insert.

const (
	// maxGlobalDepth bounds the directory for the simulated workloads.
	maxGlobalDepth = 3
	maxDirCap      = 1 << maxGlobalDepth
)

// segIndex picks the directory slot for a key at the given depth (the
// port's hash uses the low bits directly).
func segIndex(key memmodel.Value, depth int) int {
	return int(key) & (1<<depth - 1)
}

// loadDir reads the current directory pointers.
func loadDir(th *pmem.Thread) (dir, arr memmodel.Addr, depth int) {
	dir = memmodel.Addr(th.Load(pmem.RootAddr+rootDirOff, "read CCEH::dir in Insert"))
	depth = int(th.Load(pmem.RootAddr+rootDepthOff, "read CCEH::global_depth in Insert"))
	if dir != 0 {
		arr = memmodel.Addr(th.Load(dir+dirArrOff, "read Directory::_ in Insert"))
	}
	return dir, arr, depth
}

// allocSegment builds an empty segment with the given local depth; its
// initialization is persisted, as in create.
func (h *hashTable) allocSegment(th *pmem.Thread, localDepth int) memmodel.Addr {
	seg := th.World().Heap.AllocLines(3)
	th.Store(seg+segDepthOff, memmodel.Value(localDepth), "Segment::local_depth in Segment()")
	th.Persist(seg+segDepthOff, memmodel.WordSize, "persist Segment::local_depth")
	return seg
}

// splitSegment replaces a full segment with two depth+1 segments,
// redistributing its pairs, and rewrites the directory slots that
// pointed at it. The original persists this whole path (its correctness
// depends on it), and so does the port — in both variants.
func (h *hashTable) splitSegment(th *pmem.Thread, seg memmodel.Addr, globalDepth int, arr memmodel.Addr) {
	local := int(th.Load(seg+segDepthOff, "read Segment::local_depth in split"))
	s0 := h.allocSegment(th, local+1)
	s1 := h.allocSegment(th, local+1)
	// Redistribute the old pairs by the new depth bit.
	counts := [2]int{}
	for i := 0; i < nSlots; i++ {
		pa := pairAddr(seg, i)
		k := th.Load(pa, "read key in split")
		if k == 0 {
			continue
		}
		v := th.Load(pa+memmodel.WordSize, "read value in split")
		bit := (int(k) >> local) & 1
		target := s0
		if bit == 1 {
			target = s1
		}
		npa := pairAddr(target, counts[bit])
		counts[bit]++
		th.Store(npa+memmodel.WordSize, v, "entry value in Segment::Split")
		th.Store(npa, k, "key in Segment::Split")
		th.Persist(npa, 2*memmodel.WordSize, "persist split pair")
	}
	// Rewrite every directory slot that referenced the old segment.
	cap := 1 << globalDepth
	for i := 0; i < cap; i++ {
		slot := arr + memmodel.Addr(i*memmodel.WordSize)
		if memmodel.Addr(th.Load(slot, "read Directory::_[i] in split")) != seg {
			continue
		}
		target := s0
		if (i>>local)&1 == 1 {
			target = s1
		}
		th.Store(slot, memmodel.Value(target), "Directory::_[i] in Directory::Update")
		th.Persist(slot, memmodel.WordSize, "persist Directory::_[i] update")
	}
}

// doubleDirectory grows the directory when a segment's local depth has
// reached the global depth: a new array twice the size, each old slot
// duplicated, then the directory and root are republished durably.
func (h *hashTable) doubleDirectory(th *pmem.Thread, dir, arr memmodel.Addr, globalDepth int) (memmodel.Addr, int) {
	newDepth := globalDepth + 1
	newCap := 1 << newDepth
	newArr := th.World().Heap.AllocLines((newCap*memmodel.WordSize + memmodel.CacheLineSize - 1) / memmodel.CacheLineSize)
	for i := 0; i < newCap; i++ {
		old := th.Load(arr+memmodel.Addr((i&(1<<globalDepth-1))*memmodel.WordSize), "read Directory::_[i] in doubling")
		th.Store(newArr+memmodel.Addr(i*memmodel.WordSize), old, "Directory::_[i] in Directory doubling")
	}
	th.Persist(newArr, newCap*memmodel.WordSize, "persist doubled directory array")
	th.Store(dir+dirArrOff, memmodel.Value(newArr), "Directory::_ in Directory doubling")
	th.Store(dir+dirCapOff, memmodel.Value(newCap), "Directory::capacity in Directory doubling")
	th.Persist(dir+dirArrOff, 2*memmodel.WordSize, "persist doubled directory header")
	th.Store(pmem.RootAddr+rootDepthOff, memmodel.Value(newDepth), "CCEH::global_depth in Directory doubling")
	th.Persist(pmem.RootAddr+rootDepthOff, memmodel.WordSize, "persist doubled global_depth")
	return newArr, newDepth
}

// Insert is the full CCEH insert: locate the segment, try the slot
// insert, and on a full segment split (doubling the directory first
// when the local depth has caught up), then retry.
func (h *hashTable) Insert(th *pmem.Thread, key, value memmodel.Value) bool {
	for attempt := 0; attempt < 4; attempt++ {
		if h.insert(th, key, value) {
			return true
		}
		dir, arr, depth := loadDir(th)
		if dir == 0 || arr == 0 {
			return false
		}
		seg := memmodel.Addr(th.Load(arr+memmodel.Addr(segIndex(key, depth)*memmodel.WordSize), "read Directory::_[i] in split path"))
		if seg == 0 {
			return false
		}
		local := int(th.Load(seg+segDepthOff, "read Segment::local_depth in split path"))
		if local >= depth {
			if depth >= maxGlobalDepth {
				return false
			}
			arr, depth = h.doubleDirectory(th, dir, arr, depth)
		}
		h.splitSegment(th, seg, depth, arr)
	}
	return false
}

// BuildDynamic is the exploration program exercising splits and
// doubling: enough inserts to overflow a segment, split it, and double
// the directory, followed by the standard recovery walk.
func BuildDynamic(v bench.Variant) explore.Program {
	h := &hashTable{v: v}
	keys := []memmodel.Value{2, 4, 6, 8, 10, 12, 3, 5, 7}
	return &explore.FuncProgram{
		ProgName: "CCEH-dynamic-" + v.String(),
		PhaseFns: []func(*pmem.World){
			func(w *pmem.World) {
				th := w.Thread(0)
				h.create(th)
				for _, k := range keys {
					h.Insert(th, k, k*100)
				}
			},
			func(w *pmem.World) {
				h.recover(w.Thread(0))
			},
		},
	}
}
