package fastfair

import (
	"testing"

	"repro/internal/benchmarks/bench"
	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

func TestFunctionalInsertLookup(t *testing.T) {
	tr := &tree{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	page := tr.create(th)
	for k := memmodel.Value(100); k < 104; k++ {
		if !tr.insertKey(th, page, k, k+1000) {
			t.Fatalf("insert(%d) failed", k)
		}
	}
	for k := memmodel.Value(100); k < 104; k++ {
		v, ok := tr.lookup(th, page, k)
		if !ok || v != k+1000 {
			t.Fatalf("lookup(%d) = (%d, %v)", k, v, ok)
		}
	}
	if _, ok := tr.lookup(th, page, 999); ok {
		t.Fatal("lookup(999) should miss")
	}
}

func TestPageFull(t *testing.T) {
	tr := &tree{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	page := tr.create(th)
	for i := 0; i < cardinality; i++ {
		if !tr.insertKey(th, page, memmodel.Value(100+i), 1) {
			t.Fatalf("insert %d failed early", i)
		}
	}
	if tr.insertKey(th, page, 999, 1) {
		t.Fatal("insert into full page should succeed only up to cardinality")
	}
}

func TestKeyAndPtrOnDifferentLines(t *testing.T) {
	// The layout hazard behind bug #9/#10: an entry's key and ptr words
	// must not share a cache line in this port.
	page := memmodel.Addr(0x100000)
	for i := 0; i < cardinality; i++ {
		if memmodel.SameLine(keyAddr(page, i), ptrAddr(page, i)) {
			t.Fatalf("entry %d key and ptr share a line", i)
		}
	}
	// And the dummy word sits on the header line, not the key line.
	if memmodel.SameLine(page+hdrDummyOff, keyAddr(page, 0)) {
		t.Fatal("dummy must be on the header line")
	}
	if !memmodel.SameLine(page+hdrDummyOff, page+hdrSwitchOff) {
		t.Fatal("dummy must share the header line with switch_counter")
	}
}

func TestBuggyVariantReportsTable2Rows(t *testing.T) {
	b := Benchmark()
	res := explore.Run(b.Build(bench.Buggy), explore.Options{
		Mode:       explore.Random,
		Executions: b.Executions,
		Seed:       2,
	})
	_, missed := bench.MatchExpected(b.Expected, res.Violations)
	if len(missed) != 0 {
		t.Fatalf("missed rows: %+v\nfound: %v", missed, res.ViolationKeys())
	}
}

func TestFixedVariantIsClean(t *testing.T) {
	b := Benchmark()
	res := explore.Run(b.Build(bench.Fixed), explore.Options{
		Mode:       explore.Random,
		Executions: b.Executions,
		Seed:       2,
	})
	if len(res.Violations) != 0 {
		t.Fatalf("fixed variant still reports: %v", res.ViolationKeys())
	}
}

// The alignment bug's cache-line colocation fix must appear among the
// suggestions for row #9 (§5.2 "colocating fields").
func TestAlignmentBugSuggestsColocation(t *testing.T) {
	b := Benchmark()
	res := explore.Run(b.Build(bench.Buggy), explore.Options{
		Mode:       explore.Random,
		Executions: b.Executions,
		Seed:       2,
	})
	for _, v := range res.Violations {
		if v.MissingFlush.Loc == "dummy in header class (page::insert_key)" {
			for _, f := range v.Fixes {
				if f.Kind == core.FixColocate {
					return
				}
			}
		}
	}
	t.Fatal("no colocation fix suggested for the dummy alignment bug")
}

func TestRecoveryNeverAborts(t *testing.T) {
	for _, v := range []bench.Variant{bench.Buggy, bench.Fixed} {
		res := explore.Run(Build(v), explore.Options{Mode: explore.Random, Executions: 150, Seed: 5})
		if res.Aborted != 0 {
			t.Fatalf("%v: %d aborted executions", v, res.Aborted)
		}
	}
}

// Multi-level behavior: inserting past one page's cardinality splits
// the root, creates a height-2 tree with sibling-linked leaves, and
// every key stays findable through the descent + sibling-chase path.
func TestSplitCreatesMultiLevelTree(t *testing.T) {
	tr := &tree{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	tr.create(th)
	keys := []memmodel.Value{100, 101, 103, 104, 105, 106, 102, 107, 108, 109, 110}
	for _, k := range keys {
		tr.Insert(th, k, k+1000)
	}
	root := memmodel.Addr(th.Load(pmem.RootAddr, "root"))
	if lvl := th.Load(root+hdrLevelOff, "level"); lvl != 1 {
		t.Fatalf("root level = %d, want 1 (tree grew)", lvl)
	}
	for _, k := range keys {
		v, ok := tr.Search(th, k)
		if !ok || v != k+1000 {
			t.Fatalf("Search(%d) = (%d, %v)", k, v, ok)
		}
	}
	if _, ok := tr.Search(th, 999); ok {
		t.Fatal("Search(999) should miss")
	}
}

// The FAST shift keeps leaves sorted even with out-of-order inserts.
func TestShiftKeepsLeavesSorted(t *testing.T) {
	tr := &tree{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	page := tr.create(th)
	for _, k := range []memmodel.Value{105, 101, 103, 102, 104} {
		if !tr.insertKey(th, page, k, k) {
			t.Fatalf("insertKey(%d) failed", k)
		}
	}
	prev := memmodel.Value(0)
	for i := 0; i < 5; i++ {
		k := th.Load(keyAddr(page, i), "check")
		if k < prev {
			t.Fatalf("keys unsorted at %d: %d < %d", i, k, prev)
		}
		prev = k
	}
}

// Sibling chains never cycle: each sibling points at a later-allocated
// page, so the recovery walk terminates.
func TestSiblingChainMonotone(t *testing.T) {
	tr := &tree{v: bench.Fixed}
	w := pmem.NewWorld(pmem.Config{CrashTarget: -1})
	th := w.Thread(0)
	tr.create(th)
	for k := memmodel.Value(100); k < 120; k++ {
		tr.Insert(th, k, k)
	}
	// Walk level-0 siblings from the leftmost leaf.
	root := memmodel.Addr(th.Load(pmem.RootAddr, "root"))
	page := memmodel.Addr(th.Load(root+hdrLeftmostOff, "leftmost"))
	seen := map[memmodel.Addr]bool{}
	for hops := 0; page != 0; hops++ {
		if seen[page] || hops > maxWalkPages {
			t.Fatal("sibling chain cycles or overruns")
		}
		seen[page] = true
		next := memmodel.Addr(th.Load(page+hdrSiblingOff, "sib"))
		if next != 0 && next <= page {
			t.Fatalf("sibling %v not allocated after %v", next, page)
		}
		page = next
	}
	if len(seen) < 2 {
		t.Fatalf("only %d leaves after 20 inserts", len(seen))
	}
}
