package fastfair

import (
	"repro/internal/memmodel"
	"repro/internal/pmem"
)

// This file implements FAST_FAIR's multi-level structure: node splits
// with the right-sibling pointer (the FAIR half of the design — readers
// chase siblings instead of blocking on rebalancing), parent updates,
// and tree descent. The split path follows the original's persistence
// discipline — moved entries and the sibling link are flushed — while
// the seeded Table 2 bugs stay where they are (constructors and
// insert_key).

const (
	maxLevels    = 4
	maxWalkPages = 16
)

// split divides a full page: the upper half moves to a fresh right
// sibling, the sibling link is published durably, and the old page's
// last_index shrinks. It returns the split key and the new page.
func (t *tree) split(th *pmem.Thread, page memmodel.Addr) (memmodel.Value, memmodel.Addr) {
	level := int(th.Load(page+hdrLevelOff, "read level in split"))
	half := cardinality / 2
	splitKey := th.Load(keyAddr(page, half), "read split key in split")
	// For an internal split, the middle entry's child becomes the new
	// page's leftmost; for a leaf it stays in place.
	newLeftmost := memmodel.Addr(0)
	moveFrom := half
	if level > 0 {
		newLeftmost = memmodel.Addr(th.Load(ptrAddr(page, half), "read split child in split"))
		moveFrom = half + 1
	}
	sibling := t.newPage(th, level, newLeftmost)
	// Move the upper half; the split path persists every moved word
	// (the original flushes each migrated cache line).
	moved := 0
	for i := moveFrom; i < cardinality; i++ {
		kv := th.Load(keyAddr(page, i), "read key in split move")
		pv := th.Load(ptrAddr(page, i), "read ptr in split move")
		th.Store(ptrAddr(sibling, moved), pv, "entry::ptr in split move")
		th.Persist(ptrAddr(sibling, moved), memmodel.WordSize, "persist split ptr")
		th.Store(keyAddr(sibling, moved), kv, "entry::key in split move")
		th.Persist(keyAddr(sibling, moved), memmodel.WordSize, "persist split key")
		moved++
	}
	th.Store(sibling+hdrLastIdxOff, memmodel.Value(moved), "last_index in split (new page)")
	th.Persist(sibling+hdrLastIdxOff, memmodel.WordSize, "persist split last_index")
	// Chain and publish the sibling — the split's commit store.
	oldSib := th.Load(page+hdrSiblingOff, "read sibling in split")
	th.Store(sibling+hdrSiblingOff, oldSib, "sibling_ptr chain in split")
	th.Persist(sibling+hdrSiblingOff, memmodel.WordSize, "persist sibling chain")
	th.Store(page+hdrSiblingOff, memmodel.Value(sibling), "sibling_ptr publish in split")
	th.Persist(page+hdrSiblingOff, memmodel.WordSize, "persist sibling publish")
	// Shrink the old page.
	th.Store(page+hdrLastIdxOff, memmodel.Value(half), "last_index shrink in split")
	th.Persist(page+hdrLastIdxOff, memmodel.WordSize, "persist last_index shrink")
	return splitKey, sibling
}

// childFor picks the descent child within an internal page.
func (t *tree) childFor(th *pmem.Thread, page memmodel.Addr, key memmodel.Value) memmodel.Addr {
	n := int(th.Load(page+hdrLastIdxOff, "read last_index in descend"))
	if n > cardinality {
		n = cardinality
	}
	child := memmodel.Addr(th.Load(page+hdrLeftmostOff, "read leftmost_ptr in descend"))
	for i := 0; i < n; i++ {
		k := th.Load(keyAddr(page, i), "read key in descend")
		if key < k {
			break
		}
		child = memmodel.Addr(th.Load(ptrAddr(page, i), "read ptr in descend"))
	}
	return child
}

// leafFor descends from the root to the leaf responsible for key,
// chasing right siblings when a concurrent-style split moved the range.
func (t *tree) leafFor(th *pmem.Thread, key memmodel.Value) memmodel.Addr {
	page := memmodel.Addr(th.Load(pmem.RootAddr, "read btree::root in descend"))
	for depth := 0; page != 0 && depth < maxLevels; depth++ {
		level := int(th.Load(page+hdrLevelOff, "read level in descend"))
		if level <= 0 {
			return page
		}
		next := t.childFor(th, page, key)
		if next == 0 {
			return page // degenerate post-crash shape; treat as leaf
		}
		page = next
	}
	return page
}

// Insert descends to the right leaf and inserts, splitting upward as
// needed (the driver's key counts keep the tree within two levels, as
// FAST_FAIR's own unit drivers do).
func (t *tree) Insert(th *pmem.Thread, key, ptr memmodel.Value) {
	root := memmodel.Addr(th.Load(pmem.RootAddr, "read btree::root in insert"))
	leaf := t.leafFor(th, key)
	if t.insertKey(th, leaf, key, ptr) {
		return
	}
	splitKey, sibling := t.split(th, leaf)
	target := leaf
	if key >= splitKey {
		target = sibling
	}
	t.insertKey(th, target, key, ptr)
	if leaf == root {
		// Grow a new root referencing both halves.
		newRoot := t.newPage(th, 1, leaf)
		t.insertKey(th, newRoot, splitKey, memmodel.Value(sibling))
		th.Store(pmem.RootAddr, memmodel.Value(newRoot), "btree::root update in split")
		th.Persist(pmem.RootAddr, memmodel.WordSize, "persist btree::root update")
		return
	}
	// Height-2 tree: the parent is the root.
	t.insertKey(th, root, splitKey, memmodel.Value(sibling))
}

// Search descends to the leaf and scans it plus its sibling chain — the
// FAIR read path that tolerates in-flight splits.
func (t *tree) Search(th *pmem.Thread, key memmodel.Value) (memmodel.Value, bool) {
	page := t.leafFor(th, key)
	for hops := 0; page != 0 && hops < maxWalkPages; hops++ {
		n := int(th.Load(page+hdrLastIdxOff, "read last_index in search"))
		if n > cardinality {
			n = cardinality
		}
		for i := 0; i < n; i++ {
			if th.Load(keyAddr(page, i), "read entry::key in search") == key {
				return th.Load(ptrAddr(page, i), "read entry::ptr in search"), true
			}
		}
		page = memmodel.Addr(th.Load(page+hdrSiblingOff, "read sibling_ptr in search"))
	}
	return 0, false
}

// walkRecover re-reads every page of the tree after a crash: descend
// the leftmost spine, then traverse each level's sibling chain, reading
// each page's fields in first-written order so stale state stays
// observable.
func (t *tree) walkRecover(th *pmem.Thread) {
	th.Load(metaOpsAddr, "read driver ops marker in Recovery")
	page := memmodel.Addr(th.Load(pmem.RootAddr, "read btree::root in Recovery"))
	for depth := 0; page != 0 && depth < maxLevels; depth++ {
		// Walk this level's sibling chain.
		levelStart := page
		next := memmodel.Addr(0)
		p := levelStart
		for hops := 0; p != 0 && hops < maxWalkPages; hops++ {
			t.readPage(th, p)
			if next == 0 {
				if lm := memmodel.Addr(th.Load(p+hdrLeftmostOff, "read leftmost_ptr in Recovery walk")); lm != 0 {
					next = lm
				}
			}
			p = memmodel.Addr(th.Load(p+hdrSiblingOff, "read sibling_ptr in Recovery"))
		}
		page = next
	}
}

// readPage touches every word of one page in first-written order.
func (t *tree) readPage(th *pmem.Thread, page memmodel.Addr) {
	var present int
	for i := 0; i < cardinality; i++ {
		k := th.Load(keyAddr(page, i), "read entry::key in Recovery")
		p := th.Load(ptrAddr(page, i), "read entry::ptr in Recovery")
		if k != 0 {
			present++
		}
		_ = p
	}
	th.Load(page+hdrLeftmostOff, "read leftmost_ptr in Recovery")
	th.Load(page+hdrDummyOff, "read dummy in Recovery")
	th.Load(page+hdrSwitchOff, "read switch_counter in Recovery")
	th.Load(page+hdrLastIdxOff, "read last_index in Recovery")
	th.Load(page+hdrLevelOff, "read level in Recovery")
}
